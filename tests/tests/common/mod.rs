//! Shared fixtures for the integration tests.
#![allow(dead_code)] // each test binary uses a different subset

pub mod instances;

use bcdb_chain::bitcoin_catalog;
use bcdb_core::BlockchainDb;
use bcdb_storage::{tuple, RelationId, Tuple};

/// 1 bitcoin in satoshis.
pub const BTC: i64 = 100_000_000;

/// Converts a (small) BTC amount to satoshis exactly.
pub fn btc(x: f64) -> i64 {
    (x * BTC as f64).round() as i64
}

fn txout(txid: &str, ser: i64, pk: &str, amount: i64) -> Tuple {
    tuple![txid, ser, pk, amount]
}

fn txin(prev: &str, pser: i64, pk: &str, amount: i64, new: &str, sig: &str) -> Tuple {
    tuple![prev, pser, pk, amount, new, sig]
}

/// Builds the paper's Figure 2 blockchain database exactly: the simplified
/// Bitcoin schema and constraints of Example 1, the current state, and the
/// five pending transactions T1..T5.
pub fn figure2() -> (BlockchainDb, RelationId, RelationId) {
    let (catalog, constraints) = bitcoin_catalog();
    let out = catalog.resolve("TxOut").unwrap();
    let inp = catalog.resolve("TxIn").unwrap();
    let mut db = BlockchainDb::new(catalog, constraints);

    for t in [
        txout("1", 1, "U1Pk", btc(1.0)),
        txout("2", 1, "U1Pk", btc(1.0)),
        txout("2", 2, "U2Pk", btc(4.0)),
        txout("3", 1, "U3Pk", btc(1.0)),
        txout("3", 2, "U4Pk", btc(0.5)),
        txout("3", 3, "U1Pk", btc(0.5)),
    ] {
        db.insert_current(out, t).unwrap();
    }
    for t in [
        txin("1", 1, "U1Pk", btc(1.0), "3", "U1Sig"),
        txin("2", 1, "U1Pk", btc(1.0), "3", "U1Sig"),
    ] {
        db.insert_current(inp, t).unwrap();
    }

    db.add_transaction(
        "T1",
        [
            (inp, txin("2", 2, "U2Pk", btc(4.0), "4", "U2Sig")),
            (out, txout("4", 1, "U5Pk", btc(1.0))),
            (out, txout("4", 2, "U2Pk", btc(3.0))),
        ],
    )
    .unwrap();
    db.add_transaction(
        "T2",
        [
            (inp, txin("4", 2, "U2Pk", btc(3.0), "5", "U2Sig")),
            (out, txout("5", 1, "U4Pk", btc(3.0))),
        ],
    )
    .unwrap();
    db.add_transaction(
        "T3",
        [
            (inp, txin("3", 3, "U1Pk", btc(0.5), "6", "U1Sig")),
            (out, txout("6", 1, "U4Pk", btc(0.5))),
        ],
    )
    .unwrap();
    db.add_transaction(
        "T4",
        [
            (inp, txin("6", 1, "U4Pk", btc(0.5), "7", "U4Sig")),
            (inp, txin("5", 1, "U4Pk", btc(3.0), "7", "U4Sig")),
            (out, txout("7", 1, "U7Pk", btc(2.5))),
            (out, txout("7", 2, "U8Pk", btc(1.0))),
        ],
    )
    .unwrap();
    db.add_transaction(
        "T5",
        [
            (inp, txin("2", 2, "U2Pk", btc(4.0), "8", "U2Sig")),
            (out, txout("8", 1, "U7Pk", btc(4.0))),
        ],
    )
    .unwrap();
    (db, out, inp)
}
