//! Shared random-instance machinery for the differential and metamorphic
//! suites: a generated schema/constraint/mempool/denial-constraint tuple
//! plus its blockchain-database builder.
#![allow(dead_code)] // each test binary uses a different subset

use bcdb_core::{BlockchainDb, BudgetSpec};
use bcdb_storage::{
    tuple, Catalog, ConstraintSet, Fd, Ind, RelationSchema, Tuple, Value, ValueType,
};
use proptest::prelude::*;
use proptest::test_runner::TestRng;

/// One generated differential-test instance: a random schema (R of arity 2
/// or 3, plus S), random integrity constraints, a random repaired base,
/// random pending transactions, and a random denial constraint.
#[derive(Clone, Debug)]
pub struct Instance {
    pub arity: usize,
    pub key: bool,
    pub ind: bool,
    pub base_r: Vec<Vec<i64>>,
    pub base_s: Vec<i64>,
    pub txs: Vec<(Vec<Vec<i64>>, Vec<i64>)>,
    pub query: String,
}

pub const VARS: [&str; 4] = ["x", "y", "z", "w"];
pub const OPS: [&str; 6] = ["=", "!=", "<", ">", "<=", ">="];

/// A random, safe-by-construction denial constraint over R/S: positive
/// atoms bind variables; negated atoms and θ-comparisons only use bound
/// variables or constants; aggregates (all five functions, all six
/// comparators) aggregate a bound variable.
pub fn gen_query(arity: usize, seed: u64) -> String {
    let mut g = TestRng::new(seed);
    let mut bound: Vec<&str> = Vec::new();
    let mut parts: Vec<String> = Vec::new();

    // Positive atoms, introducing variables.
    let n_atoms = 1 + g.below(2) as usize;
    for _ in 0..n_atoms {
        let term = |g: &mut TestRng, bound: &mut Vec<&str>| -> String {
            if g.below(10) < 7 {
                let v = VARS[g.below(VARS.len() as u64) as usize];
                if !bound.contains(&v) {
                    bound.push(v);
                }
                v.to_string()
            } else {
                g.below(4).to_string()
            }
        };
        if g.below(3) == 0 {
            let a = term(&mut g, &mut bound);
            parts.push(format!("S({a})"));
        } else {
            let args: Vec<String> = (0..arity).map(|_| term(&mut g, &mut bound)).collect();
            parts.push(format!("R({})", args.join(", ")));
        }
    }
    let aggregate = g.below(3) == 0;

    // A guarded term: only already-bound variables or constants.
    let guarded = |g: &mut TestRng, bound: &[&str]| -> String {
        if !bound.is_empty() && g.below(10) < 6 {
            bound[g.below(bound.len() as u64) as usize].to_string()
        } else {
            g.below(4).to_string()
        }
    };

    // Optionally one negated atom (boolean queries only — aggregate bodies
    // stay positive, matching the paper's aggregate fragment).
    if !aggregate && g.below(4) == 0 {
        if g.below(2) == 0 {
            let a = guarded(&mut g, &bound);
            parts.push(format!("!S({a})"));
        } else {
            let args: Vec<String> = (0..arity).map(|_| guarded(&mut g, &bound)).collect();
            parts.push(format!("!R({})", args.join(", ")));
        }
    }

    // Optionally one θ-comparison over a bound variable.
    if !bound.is_empty() && g.below(3) == 0 {
        let v = bound[g.below(bound.len() as u64) as usize];
        let rhs = guarded(&mut g, &bound);
        let op = OPS[g.below(6) as usize];
        parts.push(format!("{v} {op} {rhs}"));
    }

    let body = parts.join(", ");
    if aggregate {
        let func = if bound.is_empty() || g.below(5) == 0 {
            "count()".to_string()
        } else {
            let f = ["sum", "max", "min", "cntd"][g.below(4) as usize];
            let v = bound[g.below(bound.len() as u64) as usize];
            format!("{f}({v})")
        };
        let op = OPS[g.below(6) as usize];
        let c = g.below(5);
        format!("[q({func}) <- {body}] {op} {c}")
    } else {
        format!("q() <- {body}")
    }
}

pub fn instance_strategy() -> impl Strategy<Value = Instance> {
    (2..=3usize).prop_flat_map(|arity| {
        let row = move || prop::collection::vec(0..4i64, arity..=arity);
        (
            prop::bool::ANY,
            prop::bool::ANY,
            prop::collection::vec(row(), 0..4),
            prop::collection::vec(0..4i64, 0..2),
            prop::collection::vec(
                (
                    prop::collection::vec(row(), 0..3),
                    prop::collection::vec(0..4i64, 0..2),
                )
                    .prop_filter("transactions must be non-empty", |(r, s)| {
                        !r.is_empty() || !s.is_empty()
                    }),
                1..5,
            ),
            0..u64::MAX,
        )
            .prop_map(move |(key, ind, base_r, base_s, txs, qseed)| Instance {
                arity,
                key,
                ind,
                base_r,
                base_s,
                txs,
                query: gen_query(arity, qseed),
            })
    })
}

/// Builds the blockchain database for an instance: R of the given arity
/// with an optional key on its first column, S(x) with an optional IND
/// S[x] ⊆ R[first]. The random base is repaired so R |= I holds (first
/// tuple per key wins; dangling S rows are dropped).
pub fn build_db(inst: &Instance) -> Option<BlockchainDb> {
    let mut cat = Catalog::new();
    let cols: Vec<(String, ValueType)> = (0..inst.arity)
        .map(|i| (format!("c{i}"), ValueType::Int))
        .collect();
    cat.add(RelationSchema::new("R", cols).unwrap()).unwrap();
    cat.add(RelationSchema::new("S", [("x", ValueType::Int)]).unwrap())
        .unwrap();
    let mut cs = ConstraintSet::new();
    if inst.key {
        cs.add_fd(Fd::named_key(&cat, "R", &["c0"]).unwrap());
    }
    if inst.ind {
        cs.add_ind(Ind::named(&cat, "S", &["x"], "R", &["c0"]).unwrap());
    }
    let mut db = BlockchainDb::new(cat, cs);
    let r = db.database().catalog().resolve("R").unwrap();
    let s = db.database().catalog().resolve("S").unwrap();
    let mut seen_keys = std::collections::HashSet::new();
    let mut kept_keys = std::collections::HashSet::new();
    for row in &inst.base_r {
        if inst.key && !seen_keys.insert(row[0]) {
            continue;
        }
        kept_keys.insert(row[0]);
        db.insert_current(r, Tuple::new(row.iter().map(|&v| Value::Int(v)))).unwrap();
    }
    for &x in &inst.base_s {
        if inst.ind && !kept_keys.contains(&x) {
            continue;
        }
        db.insert_current(s, tuple![x]).unwrap();
    }
    db.check_current_state()
        .expect("repaired base is consistent");
    for (i, (rt, st)) in inst.txs.iter().enumerate() {
        let tuples: Vec<(bcdb_storage::RelationId, Tuple)> = rt
            .iter()
            .map(|row| (r, Tuple::new(row.iter().map(|&v| Value::Int(v)))))
            .chain(st.iter().map(|&x| (s, tuple![x])))
            .collect();
        if tuples.is_empty() {
            return None; // empty transactions are uninteresting
        }
        db.add_transaction(format!("T{i}"), tuples).unwrap();
    }
    Some(db)
}

/// Large-but-finite limits: the governed path must never exhaust them on
/// these tiny instances, so a definite verdict is mandatory.
pub fn generous_budget() -> BudgetSpec {
    BudgetSpec {
        max_worlds: Some(1 << 20),
        max_cliques: Some(1 << 20),
        max_tuples: Some(1 << 30),
        ..BudgetSpec::UNLIMITED
    }
}

/// Base rows as `(relation-name, tuple)`, the monitor's wire shape.
pub type NamedRows = Vec<(String, Tuple)>;
/// Pending transactions as `(name, rows)`, the monitor's wire shape.
pub type NamedTxs = Vec<(String, NamedRows)>;

/// The instance in monitor-event form: catalog, constraints, the repaired
/// base as `(relation-name, tuple)` rows and the pending set as named
/// transactions — exactly the payload of a depth-0 [`Reorg`] resync that
/// bootstraps a `MonitorSession` onto the instance. Mirrors [`build_db`]'s
/// repair (first tuple per key wins, dangling S rows dropped); returns
/// `None` for instances with an empty transaction.
///
/// [`Reorg`]: bcdb_monitor::ChainEvent::Reorg
pub fn named_export(inst: &Instance) -> Option<(Catalog, ConstraintSet, NamedRows, NamedTxs)> {
    let mut cat = Catalog::new();
    let cols: Vec<(String, ValueType)> = (0..inst.arity)
        .map(|i| (format!("c{i}"), ValueType::Int))
        .collect();
    cat.add(RelationSchema::new("R", cols).unwrap()).unwrap();
    cat.add(RelationSchema::new("S", [("x", ValueType::Int)]).unwrap())
        .unwrap();
    let mut cs = ConstraintSet::new();
    if inst.key {
        cs.add_fd(Fd::named_key(&cat, "R", &["c0"]).unwrap());
    }
    if inst.ind {
        cs.add_ind(Ind::named(&cat, "S", &["x"], "R", &["c0"]).unwrap());
    }
    let mut base = Vec::new();
    let mut seen_keys = std::collections::HashSet::new();
    let mut kept_keys = std::collections::HashSet::new();
    for row in &inst.base_r {
        if inst.key && !seen_keys.insert(row[0]) {
            continue;
        }
        kept_keys.insert(row[0]);
        base.push((
            "R".to_string(),
            Tuple::new(row.iter().map(|&v| Value::Int(v))),
        ));
    }
    for &x in &inst.base_s {
        if inst.ind && !kept_keys.contains(&x) {
            continue;
        }
        base.push(("S".to_string(), tuple![x]));
    }
    let mut pending = Vec::new();
    for (i, (rt, st)) in inst.txs.iter().enumerate() {
        let tuples: Vec<(String, Tuple)> = rt
            .iter()
            .map(|row| {
                (
                    "R".to_string(),
                    Tuple::new(row.iter().map(|&v| Value::Int(v))),
                )
            })
            .chain(st.iter().map(|&x| ("S".to_string(), tuple![x])))
            .collect();
        if tuples.is_empty() {
            return None; // empty transactions are uninteresting
        }
        pending.push((format!("T{i}"), tuples));
    }
    Some((cat, cs, base, pending))
}

