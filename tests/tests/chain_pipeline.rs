//! End-to-end pipeline tests: simulate a chain, export it to the paper's
//! relational schema, load a blockchain database, and reason over it.

use bcdb_chain::{export, generate, Dataset, ScenarioConfig};
use bcdb_core::{Algorithm, BlockchainDb, DcSatOptions, Precomputed, Solver};
use bcdb_query::parse_denial_constraint;
use bcdb_storage::TxId;

fn small_cfg(seed: u64) -> ScenarioConfig {
    ScenarioConfig {
        seed,
        wallets: 15,
        blocks: 12,
        txs_per_block: 6,
        pending_txs: 50,
        contradictions: 4,
        chain_dependency_pct: 35,
        ..ScenarioConfig::default()
    }
}

fn load(seed: u64) -> BlockchainDb {
    let scenario = generate(&small_cfg(seed));
    let e = export(&scenario).unwrap();
    let mut db = BlockchainDb::new(e.catalog, e.constraints);
    for (rel, t) in e.base {
        db.insert_current(rel, t).unwrap();
    }
    for (name, tuples) in e.pending {
        db.add_transaction(name, tuples).unwrap();
    }
    db
}

/// The exported current state must satisfy Example 1's constraints — the
/// defining property of a blockchain database.
#[test]
fn exported_base_is_consistent() {
    for seed in [1, 2, 3] {
        load(seed)
            .check_current_state()
            .unwrap_or_else(|e| panic!("seed {seed}: exported chain violates constraints: {e}"));
    }
}

/// Injected double spends must surface as missing `GfTd` edges, and the
/// number of FD-conflicting pairs must be at least the injected count.
#[test]
fn contradictions_become_fd_conflicts() {
    let scenario = generate(&small_cfg(7));
    let conflicts = scenario.mempool.conflict_pairs();
    assert!(conflicts.len() >= 4);
    let e = export(&scenario).unwrap();
    let mut db = BlockchainDb::new(e.catalog, e.constraints);
    for (rel, t) in e.base {
        db.insert_current(rel, t).unwrap();
    }
    // Map txid -> TxId as we add.
    let mut ids = std::collections::HashMap::new();
    for (name, tuples) in e.pending {
        let id = db.add_transaction(name.clone(), tuples).unwrap();
        ids.insert(name, id);
    }
    let pre = Precomputed::build(&db);
    for (a, b) in &conflicts {
        let ta = ids[&a.short()];
        let tb = ids[&b.short()];
        assert!(
            !pre.fd_graph.has_edge(ta.index(), tb.index()),
            "double-spend pair {a}/{b} must conflict in GfTd"
        );
    }
    // And at least one non-conflicting pair has an edge.
    assert!(pre.fd_graph.edge_count() > 0);
}

/// Every pending transaction exported from the mempool is individually
/// appendable after its dependencies — getMaximal over everything should
/// absorb every *viable* transaction whose ancestry is intact.
#[test]
fn get_maximal_absorbs_dependency_chains() {
    let db = load(11);
    let pre = Precomputed::build(&db);
    let all: Vec<TxId> = db.tx_ids().collect();
    let world = bcdb_core::get_maximal(&db, &pre, &all);
    // The maximal world is a possible world...
    let txs: Vec<TxId> = world.txs().collect();
    assert!(bcdb_core::is_possible_world(&db, &pre, &txs));
    // ...and it is genuinely maximal: no remaining tx can be appended.
    for tx in db.tx_ids() {
        if !world.contains_tx(tx) {
            assert!(
                !bcdb_core::can_append(&db, &pre, &world, tx),
                "{tx} should not be appendable to the maximal world"
            );
        }
    }
    // Most of the mempool should be absorbable (conflicts lose one side).
    assert!(txs.len() + 10 >= db.pending_count());
}

/// The fundamental safety property on real-shaped data: no outpoint can be
/// spent twice in any possible world (the TxIn key forbids it).
#[test]
fn no_double_spend_in_any_world() {
    let db = load(13);
    let dc = parse_denial_constraint(
        "q() <- TxIn(pt, ps, pk1, a1, n1, s1), TxIn(pt, ps, pk2, a2, n2, s2), n1 != n2",
        db.database().catalog(),
    )
    .unwrap();
    let mut solver = Solver::builder(db).build();
    for algorithm in [Algorithm::Naive, Algorithm::Auto] {
        solver.set_options(DcSatOptions::default().with_algorithm(algorithm));
        let out = solver.check_ungoverned(&dc).unwrap();
        assert!(out.satisfied, "{algorithm:?}");
    }
}

/// Accepting a block's worth of transactions folds them into `R` and the
/// result is still a consistent blockchain database.
#[test]
fn accept_transactions_preserves_consistency() {
    let db = load(17);
    let pre = Precomputed::build(&db);
    let all: Vec<TxId> = db.tx_ids().collect();
    let world = bcdb_core::get_maximal(&db, &pre, &all);
    let accepted: Vec<TxId> = world.txs().take(10).collect();
    // Accept a prefix of the maximal world in dependency order: the world
    // was built greedily, so earlier txs never depend on later ones.
    let (next, mapping) = db.accept_transactions(&accepted).unwrap();
    next.check_current_state().unwrap();
    assert_eq!(next.pending_count(), db.pending_count() - accepted.len());
    assert_eq!(mapping.len(), next.pending_count());
    // Surviving transactions keep their names.
    for (old, new) in mapping {
        assert_eq!(db.transaction(old).name, next.transaction(new).name);
    }
}

/// Dataset presets generate the paper's pending-set sizes.
#[test]
fn presets_hit_paper_pending_sizes() {
    let cfg = Dataset::Small.config(3);
    let s = generate(&cfg);
    assert!(s.mempool.len() >= cfg.pending_txs);
    let e = export(&s).unwrap();
    assert_eq!(e.pending_counts.transactions, s.mempool.len());
    assert!(e.base_counts.transactions > 0);
    assert!(e.base_counts.blocks as usize >= 20);
}

/// Determinism across the whole pipeline: same seed, same database.
#[test]
fn pipeline_is_deterministic() {
    let a = load(23);
    let b = load(23);
    assert_eq!(a.pending_count(), b.pending_count());
    assert_eq!(a.database().total_rows(), b.database().total_rows());
    for (ta, tb) in a.tx_ids().zip(b.tx_ids()) {
        assert_eq!(a.transaction(ta), b.transaction(tb));
    }
}
