//! Soundness of the governed solver: a *definite* verdict produced under
//! any resource budget must agree with the unbudgeted oracle, on random
//! instances and on chain-level fault-injected databases. `Unknown` is
//! always an acceptable answer; a wrong `Holds`/`Violated` never is.

use bcdb_chain::{export, generate, Fault, ScenarioConfig};
use bcdb_core::{Algorithm, BlockchainDb, BudgetSpec, DcSatOptions, Solver, Verdict};
use bcdb_query::parse_denial_constraint;
use bcdb_storage::{tuple, Catalog, ConstraintSet, Fd, RelationSchema, ValueType};
use proptest::prelude::*;
use std::time::Duration;

/// Builds a small R(a, b) blockchain database with key R[a]: `base` seeds
/// the current state (first tuple per key wins), each entry of `txs` is one
/// pending transaction.
fn build_db(base: &[(i64, i64)], txs: &[Vec<(i64, i64)>]) -> Option<BlockchainDb> {
    let mut cat = Catalog::new();
    cat.add(RelationSchema::new("R", [("a", ValueType::Int), ("b", ValueType::Int)]).unwrap())
        .unwrap();
    let mut cs = ConstraintSet::new();
    cs.add_fd(Fd::named_key(&cat, "R", &["a"]).unwrap());
    let mut db = BlockchainDb::new(cat, cs);
    let r = db.database().catalog().resolve("R").unwrap();
    let mut seen = std::collections::HashSet::new();
    for &(a, b) in base {
        if seen.insert(a) {
            db.insert_current(r, tuple![a, b]).unwrap();
        }
    }
    for (i, rows) in txs.iter().enumerate() {
        if rows.is_empty() {
            return None;
        }
        let tuples: Vec<_> = rows.iter().map(|&(a, b)| (r, tuple![a, b])).collect();
        db.add_transaction(format!("T{i}"), tuples).unwrap();
    }
    Some(db)
}

fn query_pool() -> Vec<&'static str> {
    vec![
        "q() <- R(x, y)",
        "q() <- R(x, 1)",
        "q() <- R(x, y), R(y, z)",
        "q() <- R(x, y), x != y",
        "q() <- R(x, y), !R(y, x)",
        "[q(count()) <- R(x, y)] > 2",
        "[q(sum(y)) <- R(x, y)] > 3",
        "[q(max(y)) <- R(x, y)] = 2",
    ]
}

/// Budget ladder the property sweeps: from crippling to generous. `None`
/// components are unlimited.
fn budget_pool() -> Vec<BudgetSpec> {
    vec![
        BudgetSpec {
            max_tuples: Some(0),
            ..BudgetSpec::UNLIMITED
        },
        BudgetSpec {
            max_worlds: Some(1),
            ..BudgetSpec::UNLIMITED
        },
        BudgetSpec {
            max_cliques: Some(1),
            ..BudgetSpec::UNLIMITED
        },
        BudgetSpec {
            max_worlds: Some(4),
            max_cliques: Some(4),
            ..BudgetSpec::UNLIMITED
        },
        BudgetSpec {
            max_tuples: Some(200),
            ..BudgetSpec::UNLIMITED
        },
        BudgetSpec {
            timeout: Some(Duration::from_millis(5)),
            ..BudgetSpec::UNLIMITED
        },
    ]
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 64,
        ..ProptestConfig::default()
    })]

    /// Definite verdicts under any budget agree with the unbudgeted
    /// oracle; witnesses really violate the constraint.
    #[test]
    fn budgeted_definite_answers_agree_with_oracle(
        base in prop::collection::vec((0..4i64, 0..4i64), 0..4),
        txs in prop::collection::vec(prop::collection::vec((0..4i64, 0..4i64), 0..3), 1..5),
        query_idx in 0..8usize,
        budget_idx in 0..6usize,
        algorithm in prop_oneof![
            Just(Algorithm::Auto),
            Just(Algorithm::Naive),
            Just(Algorithm::Oracle),
        ],
    ) {
        let Some(db) = build_db(&base, &txs) else { return Ok(()) };
        let text = query_pool()[query_idx];
        let dc = parse_denial_constraint(text, db.database().catalog()).unwrap();
        let mut solver = Solver::builder(db).build();

        solver.set_options(DcSatOptions::default().with_algorithm(Algorithm::Oracle));
        let oracle = solver.check_ungoverned(&dc).unwrap();

        let budget = budget_pool()[budget_idx];
        solver.set_options(
            DcSatOptions::default()
                .with_algorithm(algorithm)
                .with_budget(budget),
        );
        let governed = solver.check(&dc).unwrap();

        match &governed.verdict {
            Verdict::Holds => prop_assert!(
                oracle.satisfied,
                "budget {budget:?} made {algorithm:?} claim Holds but the oracle found a \
                 violation of {text} (degraded_to {:?})", governed.degraded_to),
            Verdict::Violated(w) => {
                prop_assert!(
                    !oracle.satisfied,
                    "budget {budget:?} made {algorithm:?} claim Violated but {text} holds \
                     (degraded_to {:?})", governed.degraded_to);
                // The witness itself must violate the constraint.
                let db = solver.db_mut();
                let pre = bcdb_core::Precomputed::build(db);
                let txids: Vec<_> = w.txs().collect();
                prop_assert!(bcdb_core::is_possible_world(db, &pre, &txids));
                let pc = bcdb_core::PreparedConstraint::prepare(db.database_mut(), &dc);
                prop_assert!(pc.holds(db.database(), w));
            }
            Verdict::Unknown(_) => {} // always sound
        }
    }
}

fn faulted_db(seed: u64, faults: &[Fault]) -> BlockchainDb {
    let mut scenario = generate(&ScenarioConfig {
        seed,
        wallets: 10,
        blocks: 8,
        txs_per_block: 5,
        pending_txs: 25,
        contradictions: 3,
        chain_dependency_pct: 35,
        ..ScenarioConfig::default()
    });
    bcdb_chain::inject_all(&mut scenario, faults, seed);
    scenario
        .mempool
        .check_invariants(&scenario.chain)
        .expect("faulted scenario stays consistent");
    let e = export(&scenario).unwrap();
    let mut db = BlockchainDb::new(e.catalog, e.constraints);
    for (rel, t) in e.base {
        db.insert_current(rel, t).unwrap();
    }
    for (name, tuples) in e.pending {
        db.add_transaction(name, tuples).unwrap();
    }
    db
}

/// Budgeted runs over fault-injected chains never contradict the
/// unbudgeted answer, across reorgs, eviction storms, conflict floods, and
/// replay storms.
#[test]
fn faulted_chains_never_contradict_unbudgeted_answer() {
    let storms: [&[Fault]; 4] = [
        &[Fault::Reorg { depth: 2 }],
        &[
            Fault::ConflictFlood { count: 8 },
            Fault::EvictionStorm { count: 5 },
        ],
        &[
            Fault::DuplicateReplay { count: 10 },
            Fault::OrphanReplay { count: 10 },
        ],
        &[
            Fault::Reorg { depth: 1 },
            Fault::ConflictFlood { count: 5 },
            Fault::Reorg { depth: 3 },
            Fault::EvictionStorm { count: 3 },
        ],
    ];
    let queries = [
        // Double-spend safety: no outpoint spent twice in any world.
        "q() <- TxIn(pt, ps, pk1, a1, n1, s1), TxIn(pt, ps, pk2, a2, n2, s2), n1 != n2",
        // Monotone reachability-style query.
        "q() <- TxOut(t, s, p, a), TxIn(t, s, p, a2, n, g)",
        // Unsatisfiable address query.
        "q() <- TxOut(t, s, 'pkNOSUCH', a)",
    ];
    for (i, faults) in storms.iter().enumerate() {
        let seed = 31 + i as u64;
        let mut solver = Solver::builder(faulted_db(seed, faults)).build();
        for text in queries {
            let dc = parse_denial_constraint(text, solver.db().database().catalog()).unwrap();
            solver.set_options(DcSatOptions::default());
            let unbudgeted = solver.check_ungoverned(&dc).unwrap();
            for budget in budget_pool() {
                solver.set_options(DcSatOptions::default().with_budget(budget));
                let governed = solver.check(&dc).unwrap();
                match governed.verdict {
                    Verdict::Holds => assert!(
                        unbudgeted.satisfied,
                        "storm {i}, budget {budget:?}: false Holds on {text}"
                    ),
                    Verdict::Violated(_) => assert!(
                        !unbudgeted.satisfied,
                        "storm {i}, budget {budget:?}: false Violated on {text}"
                    ),
                    Verdict::Unknown(_) => {}
                }
            }
        }
    }
}
