//! Smoke tests at the experiment harness's own scale: the §7 query
//! families over a generated dataset, both regimes, both paper algorithms.

use bcdb_bench_shims::*;

/// Minimal local reimplementation of the bench helpers (the bench crate is
/// not a dependency of the test crate; these shims keep the test
/// self-contained and also cross-check the harness logic independently).
mod bcdb_bench_shims {
    use bcdb_chain::{export, generate, Scenario, ScenarioConfig};
    use bcdb_core::BlockchainDb;

    pub fn scenario() -> Scenario {
        generate(&ScenarioConfig {
            seed: 99,
            wallets: 20,
            blocks: 25,
            txs_per_block: 10,
            pending_txs: 120,
            contradictions: 8,
            chain_dependency_pct: 30,
            ..ScenarioConfig::default()
        })
    }

    pub fn load(s: &Scenario) -> BlockchainDb {
        let e = export(s).unwrap();
        let mut db = BlockchainDb::new(e.catalog, e.constraints);
        for (rel, t) in e.base {
            db.insert_current(rel, t).unwrap();
        }
        for (name, tuples) in e.pending {
            db.add_transaction(name, tuples).unwrap();
        }
        db
    }

    pub fn qs(x: &str) -> String {
        format!("q() <- TxOut(ntx, s, '{x}', a)")
    }

    pub fn qp3(x: &str, y: &str) -> String {
        format!(
            "q() <- TxOut(ntx1, s1, '{x}', a1), TxIn(ntx1, s1, pk2, a2, ntx2, sig2), \
             TxOut(ntx2, s2, pk3, a3), TxIn(ntx2, s2, '{y}', a3, ntx4, sig3)"
        )
    }

    pub fn qr2(x: &str) -> String {
        format!(
            "q() <- TxIn(p1, s1, '{x}', a1, n1, g1), TxOut(n1, o1, k1, b1), \
             TxIn(p2, s2, '{x}', a2, n2, g2), TxOut(n2, o2, k2, b2), n1 != n2"
        )
    }
}

use bcdb_core::{Algorithm, DcSatOptions, Solver};
use bcdb_query::parse_denial_constraint;

const ABSENT: &str = "pkNOSUCHADDRESS00";

#[test]
fn satisfied_families_across_algorithms() {
    let s = scenario();
    let mut solver = Solver::builder(load(&s)).build();
    for text in [
        qs(ABSENT),
        qp3(ABSENT, ABSENT),
        qr2(ABSENT),
        format!("[q(sum(a)) <- TxOut(n, s, '{ABSENT}', a)] >= 100"),
    ] {
        let dc = parse_denial_constraint(&text, solver.db().database().catalog()).unwrap();
        for algorithm in [Algorithm::Naive, Algorithm::Auto] {
            solver.set_options(DcSatOptions::default().with_algorithm(algorithm));
            let out = solver.check_ungoverned(&dc).unwrap();
            assert!(out.satisfied, "{algorithm:?} on {text}");
            assert!(
                out.stats.precheck_short_circuit || out.stats.worlds_evaluated <= 1,
                "satisfied constraints should short-circuit"
            );
        }
    }
}

#[test]
fn unsatisfied_qs_with_witness() {
    let s = scenario();
    let mut solver = Solver::builder(load(&s)).build();
    // An address that certainly receives coins in a pending transaction.
    let recv = s.mempool.entries()[0].tx.outputs()[0]
        .script
        .display_owner();
    let dc = parse_denial_constraint(&qs(&recv), solver.db().database().catalog()).unwrap();
    for algorithm in [Algorithm::Naive, Algorithm::Opt, Algorithm::Auto] {
        solver.set_options(DcSatOptions::default().with_algorithm(algorithm));
        let out = solver.check_ungoverned(&dc).unwrap();
        assert!(!out.satisfied, "{algorithm:?}");
        // The witness world must actually pay `recv`... which the check
        // already verified by evaluation; sanity-check the mask is nonempty
        // OR the address was already paid on chain.
        assert!(out.witness.is_some());
    }
}

#[test]
fn naive_and_opt_agree_on_families() {
    let s = scenario();
    let mut solver = Solver::builder(load(&s)).build();
    let recv = s.mempool.entries()[0].tx.outputs()[0]
        .script
        .display_owner();
    let spender = {
        // Any address that spends in the mempool.
        let e = &s.mempool.entries()[0];
        let prev = e.tx.inputs()[0].prev;
        // Resolve the owner through the export invariants: the TxIn row
        // carries the consumed output's pk, which equals the spender's key
        // for P2PK outputs.
        let _ = prev;
        e.tx.inputs()[0].spender.as_str().to_string()
    };
    for text in [qs(&recv), qr2(&spender), qp3(&spender, &spender)] {
        let dc = parse_denial_constraint(&text, solver.db().database().catalog()).unwrap();
        solver.set_options(DcSatOptions::default().with_algorithm(Algorithm::Naive));
        let naive = solver.check_ungoverned(&dc).unwrap();
        solver.set_options(DcSatOptions::default().with_algorithm(Algorithm::Opt));
        let opt = solver.check_ungoverned(&dc).unwrap();
        assert_eq!(naive.satisfied, opt.satisfied, "on {text}");
        solver.set_options(
            DcSatOptions::default()
                .with_algorithm(Algorithm::Opt)
                .with_parallel(true),
        );
        let par = solver.check_ungoverned(&dc).unwrap();
        assert_eq!(naive.satisfied, par.satisfied, "parallel on {text}");
    }
}
