//! Behavioral guarantees of the telemetry layer that only show up under a
//! real solver workload:
//!
//! 1. Snapshot determinism: the counters (and histogram sample counts) a
//!    two-level parallel run records do not depend on thread interleaving —
//!    they are plain atomic adds over a fixed work set.
//! 2. Disabled overhead: with telemetry off, every probe costs one relaxed
//!    atomic load, so the probes fired by a workload account for well under
//!    5% of that workload's wall time.

mod common;

use std::sync::{Mutex, MutexGuard};
use std::time::Instant;

use bcdb_core::{Algorithm, DcSatOptions, Solver, Verdict};
use bcdb_query::parse_denial_constraint;
use bcdb_telemetry as telemetry;
use common::instances::{build_db, Instance};

/// Serializes the tests in this binary: they flip the global telemetry
/// flag and reset the shared probe registry.
fn telemetry_lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// A fixed instance with several overlapping transactions, a key, and an
/// inclusion dependency, so the conflict graph has real structure.
fn fixed_instance(query: &str) -> Instance {
    Instance {
        arity: 2,
        key: true,
        ind: true,
        base_r: vec![vec![0, 1], vec![1, 2], vec![2, 3]],
        base_s: vec![0, 2],
        txs: vec![
            (vec![vec![3, 0]], vec![1]),
            (vec![vec![0, 2]], vec![3]),
            (vec![vec![1, 1], vec![2, 0]], vec![]),
            (vec![vec![4, 4]], vec![4]),
        ],
        query: query.to_string(),
    }
}

/// Two-level parallel runs on the same instance always record the same
/// event counts, whatever the thread schedule. The constraint holds, so no
/// early-exit race can truncate the enumeration.
#[test]
fn parallel_run_snapshots_are_deterministic() {
    let _lock = telemetry_lock();
    // x > 9 never holds (domain is 0..=4): the constraint Holds and every
    // candidate world is visited.
    let inst = fixed_instance("q() <- R(x, y), S(x), x > 9");
    let opts = DcSatOptions::default()
        .with_algorithm(Algorithm::Opt)
        .with_parallel(true)
        .with_parallel_intra(true)
        .with_threads(Some(4));
    type ProbeValues = Vec<(&'static str, u64)>;
    let mut reference: Option<(ProbeValues, ProbeValues)> = None;
    for round in 0..6 {
        let db = build_db(&inst).expect("fixed instance builds");
        let dc = parse_denial_constraint(&inst.query, db.database().catalog()).unwrap();
        let mut solver = Solver::builder(db).options(opts.clone()).build();
        let _guard = telemetry::EnabledGuard::new();
        telemetry::reset();
        let out = solver.check(&dc).unwrap();
        assert!(
            matches!(out.verdict, Verdict::Holds),
            "the fixture constraint must hold"
        );
        let snap = telemetry::snapshot();
        let counters: Vec<(&str, u64)> =
            snap.counters.iter().map(|c| (c.name, c.value)).collect();
        let hist_counts: Vec<(&str, u64)> =
            snap.histograms.iter().map(|h| (h.name, h.count)).collect();
        assert!(
            snap.active_probes() > 0,
            "an enabled parallel run must fire probes"
        );
        match &reference {
            None => reference = Some((counters, hist_counts)),
            Some((c0, h0)) => {
                assert_eq!(&counters, c0, "counter totals diverged on round {round}");
                assert_eq!(
                    &hist_counts, h0,
                    "histogram sample counts diverged on round {round}"
                );
            }
        }
    }
}

/// The batch-engine probes are registered in the fixed table (so every
/// snapshot — including `bcdb check --telemetry` output — carries them)
/// and fire under a `check_batch` workload: one `batch_constraints` event
/// per submitted constraint, and a `clique_reuse` event for every
/// component check answered by replaying a cached enumeration.
#[test]
fn solver_batch_probes_are_registered_and_fire() {
    let _lock = telemetry_lock();
    let inst = fixed_instance("q() <- R(x, y), S(x), x > 9");
    let db = build_db(&inst).expect("fixed instance builds");
    // The same constraint three times over: identical Θq, identical
    // refined partition, so every component after the first replays.
    let dc = parse_denial_constraint(&inst.query, db.database().catalog()).unwrap();
    let dcs = vec![dc.clone(), dc.clone(), dc];
    let mut solver = Solver::builder(db)
        .options(
            DcSatOptions::default()
                .with_algorithm(Algorithm::Opt)
                .with_precheck(false),
        )
        .build();
    let _guard = telemetry::EnabledGuard::new();
    telemetry::reset();
    let batch = solver.check_batch(&dcs);
    assert!(batch.outcomes.iter().all(|o| o.is_ok()));
    assert!(batch.components_reused > 0, "duplicates must replay cliques");

    let snap = telemetry::snapshot();
    let counter = |name: &str| {
        snap.counters
            .iter()
            .find(|c| c.name == name)
            .unwrap_or_else(|| panic!("probe {name} missing from the registry"))
            .value
    };
    assert_eq!(counter("core.solver.batch_constraints"), dcs.len() as u64);
    assert_eq!(counter("core.solver.clique_reuse"), batch.components_reused);
}

/// With telemetry disabled, the probes a workload would fire cost less
/// than 5% of the workload itself. Measured structurally rather than by
/// differencing two noisy end-to-end timings: count the events one enabled
/// run fires, measure the per-call disabled-probe cost in a tight loop,
/// and bound the product against the disabled workload time.
#[test]
fn disabled_probe_overhead_is_under_five_percent() {
    let _lock = telemetry_lock();
    telemetry::set_enabled(false);
    let inst = fixed_instance("q() <- R(x, y), S(x)");
    let run = |inst: &Instance| {
        let db = build_db(inst).unwrap();
        let dc = parse_denial_constraint(&inst.query, db.database().catalog()).unwrap();
        let mut solver = Solver::builder(db).build();
        std::hint::black_box(solver.check_ungoverned(&dc).unwrap());
    };

    // Warm up, then time the disabled workload over enough repetitions to
    // dominate clock granularity.
    run(&inst);
    let reps = 200u32;
    let t0 = Instant::now();
    for _ in 0..reps {
        run(&inst);
    }
    let per_run = t0.elapsed() / reps;

    // Count the probe events one run fires (enabled). A counter's value
    // bounds its call count from above (`add(n)` is one call); a histogram
    // sample is a span, i.e. at most two probe touches.
    let events = {
        let _guard = telemetry::EnabledGuard::new();
        telemetry::reset();
        run(&inst);
        let snap = telemetry::snapshot();
        let counter_events: u64 = snap.counters.iter().map(|c| c.value).sum();
        let span_events: u64 = snap.histograms.iter().map(|h| 2 * h.count).sum();
        counter_events + span_events + telemetry::probes::GAUGES.len() as u64
    };
    assert!(events > 0, "the workload must fire probes when enabled");

    // Per-call disabled cost: one relaxed atomic load and a branch.
    let calls = 4_000_000u32;
    let before = telemetry::probes::QUERY_TUPLES_SCANNED.get();
    let t1 = Instant::now();
    for i in 0..calls {
        std::hint::black_box(i);
        telemetry::probes::QUERY_TUPLES_SCANNED.incr();
    }
    let per_call = t1.elapsed() / calls;
    assert_eq!(
        telemetry::probes::QUERY_TUPLES_SCANNED.get(),
        before,
        "disabled probes must not record"
    );

    let overhead = per_call * events as u32;
    assert!(
        overhead.as_nanos() * 20 < per_run.as_nanos(),
        "disabled-probe overhead {overhead:?} ({events} events at {per_call:?} each) \
         exceeds 5% of the {per_run:?} workload"
    );
}
