//! Behavioral guarantees of the telemetry layer that only show up under a
//! real solver workload:
//!
//! 1. Snapshot determinism: the counters (and histogram sample counts) a
//!    two-level parallel run records do not depend on thread interleaving —
//!    they are plain atomic adds over a fixed work set.
//! 2. Disabled overhead: with telemetry off, every probe costs one relaxed
//!    atomic load, so the probes fired by a workload account for well under
//!    5% of that workload's wall time.

mod common;

use std::sync::{Mutex, MutexGuard};
use std::time::Instant;

use bcdb_core::{dcsat, dcsat_governed, Algorithm, DcSatOptions, Verdict};
use bcdb_query::parse_denial_constraint;
use bcdb_telemetry as telemetry;
use common::instances::{build_db, Instance};

/// Serializes the tests in this binary: they flip the global telemetry
/// flag and reset the shared probe registry.
fn telemetry_lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// A fixed instance with several overlapping transactions, a key, and an
/// inclusion dependency, so the conflict graph has real structure.
fn fixed_instance(query: &str) -> Instance {
    Instance {
        arity: 2,
        key: true,
        ind: true,
        base_r: vec![vec![0, 1], vec![1, 2], vec![2, 3]],
        base_s: vec![0, 2],
        txs: vec![
            (vec![vec![3, 0]], vec![1]),
            (vec![vec![0, 2]], vec![3]),
            (vec![vec![1, 1], vec![2, 0]], vec![]),
            (vec![vec![4, 4]], vec![4]),
        ],
        query: query.to_string(),
    }
}

/// Two-level parallel runs on the same instance always record the same
/// event counts, whatever the thread schedule. The constraint holds, so no
/// early-exit race can truncate the enumeration.
#[test]
fn parallel_run_snapshots_are_deterministic() {
    let _lock = telemetry_lock();
    // x > 9 never holds (domain is 0..=4): the constraint Holds and every
    // candidate world is visited.
    let inst = fixed_instance("q() <- R(x, y), S(x), x > 9");
    let opts = DcSatOptions {
        algorithm: Algorithm::Opt,
        parallel: true,
        parallel_intra: true,
        threads: Some(4),
        ..DcSatOptions::default()
    };
    type ProbeValues = Vec<(&'static str, u64)>;
    let mut reference: Option<(ProbeValues, ProbeValues)> = None;
    for round in 0..6 {
        let mut db = build_db(&inst).expect("fixed instance builds");
        let dc = parse_denial_constraint(&inst.query, db.database().catalog()).unwrap();
        let _guard = telemetry::EnabledGuard::new();
        telemetry::reset();
        let out = dcsat_governed(&mut db, &dc, &opts).unwrap();
        assert!(
            matches!(out.verdict, Verdict::Holds),
            "the fixture constraint must hold"
        );
        let snap = telemetry::snapshot();
        let counters: Vec<(&str, u64)> =
            snap.counters.iter().map(|c| (c.name, c.value)).collect();
        let hist_counts: Vec<(&str, u64)> =
            snap.histograms.iter().map(|h| (h.name, h.count)).collect();
        assert!(
            snap.active_probes() > 0,
            "an enabled parallel run must fire probes"
        );
        match &reference {
            None => reference = Some((counters, hist_counts)),
            Some((c0, h0)) => {
                assert_eq!(&counters, c0, "counter totals diverged on round {round}");
                assert_eq!(
                    &hist_counts, h0,
                    "histogram sample counts diverged on round {round}"
                );
            }
        }
    }
}

/// With telemetry disabled, the probes a workload would fire cost less
/// than 5% of the workload itself. Measured structurally rather than by
/// differencing two noisy end-to-end timings: count the events one enabled
/// run fires, measure the per-call disabled-probe cost in a tight loop,
/// and bound the product against the disabled workload time.
#[test]
fn disabled_probe_overhead_is_under_five_percent() {
    let _lock = telemetry_lock();
    telemetry::set_enabled(false);
    let inst = fixed_instance("q() <- R(x, y), S(x)");
    let opts = DcSatOptions::default();
    let run = |inst: &Instance| {
        let mut db = build_db(inst).unwrap();
        let dc = parse_denial_constraint(&inst.query, db.database().catalog()).unwrap();
        std::hint::black_box(dcsat(&mut db, &dc, &opts).unwrap());
    };

    // Warm up, then time the disabled workload over enough repetitions to
    // dominate clock granularity.
    run(&inst);
    let reps = 200u32;
    let t0 = Instant::now();
    for _ in 0..reps {
        run(&inst);
    }
    let per_run = t0.elapsed() / reps;

    // Count the probe events one run fires (enabled). A counter's value
    // bounds its call count from above (`add(n)` is one call); a histogram
    // sample is a span, i.e. at most two probe touches.
    let events = {
        let _guard = telemetry::EnabledGuard::new();
        telemetry::reset();
        run(&inst);
        let snap = telemetry::snapshot();
        let counter_events: u64 = snap.counters.iter().map(|c| c.value).sum();
        let span_events: u64 = snap.histograms.iter().map(|h| 2 * h.count).sum();
        counter_events + span_events + telemetry::probes::GAUGES.len() as u64
    };
    assert!(events > 0, "the workload must fire probes when enabled");

    // Per-call disabled cost: one relaxed atomic load and a branch.
    let calls = 4_000_000u32;
    let before = telemetry::probes::QUERY_TUPLES_SCANNED.get();
    let t1 = Instant::now();
    for i in 0..calls {
        std::hint::black_box(i);
        telemetry::probes::QUERY_TUPLES_SCANNED.incr();
    }
    let per_call = t1.elapsed() / calls;
    assert_eq!(
        telemetry::probes::QUERY_TUPLES_SCANNED.get(),
        before,
        "disabled probes must not record"
    );

    let overhead = per_call * events as u32;
    assert!(
        overhead.as_nanos() * 20 < per_run.as_nanos(),
        "disabled-probe overhead {overhead:?} ({events} events at {per_call:?} each) \
         exceeds 5% of the {per_run:?} workload"
    );
}
