//! The incremental-apply differential matrix: random event streams —
//! arrivals, evictions, mined blocks in both snapshot and delta form,
//! snapshot reorgs, and depth-d delta reorgs — over the solver-matrix
//! instance generator, applied to a `MonitorSession` running the default
//! incremental epoch policy. After *every* event the session's state is
//! compared field-by-field against a cold session rebuilt from scratch by
//! the `EpochApply::Rebuild` oracle: epoch, pending order, every
//! relation's rows and sources, the steady-state structures (viability,
//! inclusion status, `GfTd`, the IND components), and the registered
//! constraint's verdict must all agree.
//!
//! A driver model mirrors the chain the events describe, so every
//! generated event is valid (evictions name live transactions, delta
//! reorgs never exceed the journaled undo depth) and the expected state
//! after each event is known exactly. Delta reorgs are only generated
//! over churn-free windows — the inverse-delta journal reverses epoch
//! events, so the model can predict the result exactly only when no
//! intra-epoch arrival/eviction happened since the undone records were
//! written (churn-tolerant undo under interleaved arrivals is pinned
//! separately by the reorg-inversion suite).
//!
//! Failing seeds persist to `proptest-regressions/` and are replayed
//! before fresh random cases.

mod common;

use bcdb_monitor::{ChainEvent, EpochApply, MonitorConfig, MonitorSession};
use bcdb_query::parse_denial_constraint;
use bcdb_storage::{tuple, Tuple, Value};
use common::instances::{generous_budget, instance_strategy, named_export, Instance};
use proptest::prelude::*;

type NamedRows = Vec<(String, Tuple)>;
type NamedPending = Vec<(String, Vec<(String, Tuple)>)>;

/// One abstract mutation, materialized against the running model.
#[derive(Clone, Debug)]
enum Op {
    /// A new transaction enters the mempool.
    Arrive { rows: Vec<Vec<i64>>, xs: Vec<i64> },
    /// A pending transaction is evicted.
    Evict { pick: usize },
    /// A block is mined; `snapshot` picks the wire form (`TxMined` with a
    /// full post-state snapshot vs the thin `TxMinedDelta`).
    Mine {
        mask: u64,
        coinbase: bool,
        snapshot: bool,
    },
    /// A reorg announced as a full post-state snapshot, restoring an
    /// earlier chain state.
    ReorgSnap { back: usize },
    /// A reorg announced as a depth only, replayed from journaled
    /// inverse deltas.
    ReorgDelta { depth: usize },
}

fn op_strategy(arity: usize) -> impl Strategy<Value = Op> {
    let row = move || prop::collection::vec(0..4i64, arity..=arity);
    let arrive = move || {
        (
            prop::collection::vec(row(), 0..3),
            prop::collection::vec(0..4i64, 0..2),
        )
            .prop_filter("transactions must be non-empty", |(r, s)| {
                !r.is_empty() || !s.is_empty()
            })
            .prop_map(|(rows, xs)| Op::Arrive { rows, xs })
    };
    let mine = || {
        (0..u64::MAX, prop::bool::ANY, prop::bool::ANY).prop_map(|(mask, coinbase, snapshot)| {
            Op::Mine {
                mask,
                coinbase,
                snapshot,
            }
        })
    };
    // The vendored prop_oneof! has no weight syntax; repeating arms
    // biases the stream toward a populated mempool and mined blocks.
    prop_oneof![
        arrive(),
        arrive(),
        (0..8usize).prop_map(|pick| Op::Evict { pick }),
        mine(),
        mine(),
        (0..6usize).prop_map(|back| Op::ReorgSnap { back }),
        (1..4usize).prop_map(|depth| Op::ReorgDelta { depth }),
    ]
}

/// A chain state the monitor should hold: base rows in append order plus
/// the ordered pending set.
#[derive(Clone)]
struct State {
    base: NamedRows,
    pending: NamedPending,
}

/// The driver's model of the session: the current state, the pre-state
/// of every undo record the session holds (bottom → top), and how many of
/// the topmost records have seen no intra-epoch churn since they were
/// written (only those are exactly invertible by the model).
struct Model {
    arity: usize,
    state: State,
    history: Vec<State>,
    clean_suffix: usize,
    epoch: u64,
    next: usize,
}

impl Model {
    fn new(arity: usize, base: NamedRows, pending: NamedPending) -> Model {
        Model {
            arity,
            state: State { base, pending },
            history: Vec::new(),
            clean_suffix: 0,
            epoch: 0,
            next: 0,
        }
    }

    /// Materializes one op, or `None` when it does not apply in the
    /// current state.
    fn step(&mut self, op: &Op) -> Option<ChainEvent> {
        match op {
            Op::Arrive { rows, xs } => {
                let name = format!("a{}", self.next);
                self.next += 1;
                let tuples: Vec<(String, Tuple)> = rows
                    .iter()
                    .map(|row| {
                        (
                            "R".to_string(),
                            Tuple::new(row.iter().map(|&v| Value::Int(v))),
                        )
                    })
                    .chain(xs.iter().map(|&x| ("S".to_string(), tuple![x])))
                    .collect();
                self.state.pending.push((name.clone(), tuples.clone()));
                self.clean_suffix = 0;
                Some(ChainEvent::TxArrived { name, tuples })
            }
            Op::Evict { pick } => {
                if self.state.pending.is_empty() {
                    return None;
                }
                let idx = pick % self.state.pending.len();
                let (name, _) = self.state.pending.remove(idx);
                self.clean_suffix = 0;
                Some(ChainEvent::TxEvicted { name })
            }
            Op::Mine {
                mask,
                coinbase,
                snapshot,
            } => {
                let n = self.state.pending.len();
                if n == 0 {
                    return None;
                }
                // A non-empty subset of the pending set, in pending order.
                let sel = if n >= 63 { *mask } else { mask % ((1 << n) - 1) + 1 };
                let mined: Vec<usize> = (0..n).filter(|i| sel >> i & 1 == 1).collect();
                if mined.is_empty() {
                    return None;
                }
                let pre = self.state.clone();
                let names: Vec<String> = mined
                    .iter()
                    .map(|&i| self.state.pending[i].0.clone())
                    .collect();
                let mut appended: NamedRows = mined
                    .iter()
                    .flat_map(|&i| self.state.pending[i].1.iter().cloned())
                    .collect();
                if *coinbase {
                    // A block-reward-style row no transaction carries; its
                    // key is outside the generator's value pool so it never
                    // breaks the base key.
                    let row: Vec<i64> = (0..self.arity).map(|_| 100 + self.next as i64).collect();
                    self.next += 1;
                    appended.push((
                        "R".to_string(),
                        Tuple::new(row.iter().map(|&v| Value::Int(v))),
                    ));
                }
                self.state.base.extend(appended.iter().cloned());
                let mut keep = 0;
                self.state.pending.retain(|_| {
                    let m = !mined.contains(&keep);
                    keep += 1;
                    m
                });
                self.history.push(pre);
                self.clean_suffix += 1;
                self.epoch += 1;
                Some(if *snapshot {
                    ChainEvent::TxMined {
                        mined: names,
                        base: self.state.base.clone(),
                        pending: self.state.pending.clone(),
                    }
                } else {
                    ChainEvent::TxMinedDelta {
                        mined: names,
                        appended,
                    }
                })
            }
            Op::ReorgSnap { back } => {
                if self.history.is_empty() {
                    return None;
                }
                let depth = back % self.history.len() + 1;
                let target = self.history[self.history.len() - depth].clone();
                let pre = std::mem::replace(&mut self.state, target);
                self.history.push(pre);
                self.clean_suffix += 1;
                self.epoch += 1;
                Some(ChainEvent::Reorg {
                    depth: depth as u64,
                    base: self.state.base.clone(),
                    pending: self.state.pending.clone(),
                })
            }
            Op::ReorgDelta { depth } => {
                let d = *depth;
                if self.history.len() < d || self.clean_suffix < d {
                    return None;
                }
                let target = self.history[self.history.len() - d].clone();
                let pre = std::mem::replace(&mut self.state, target);
                self.history.truncate(self.history.len() - d);
                self.history.push(pre);
                self.clean_suffix = self.clean_suffix - d + 1;
                self.epoch += 1;
                Some(ChainEvent::ReorgDelta { depth: d as u64 })
            }
        }
    }
}

fn config(apply: EpochApply) -> MonitorConfig {
    MonitorConfig {
        budget: generous_budget(),
        epoch_apply: apply,
        ..MonitorConfig::default()
    }
}

fn verdict_label(v: &bcdb_core::Verdict) -> &'static str {
    match v {
        bcdb_core::Verdict::Holds => "holds",
        bcdb_core::Verdict::Violated(_) => "violated",
        bcdb_core::Verdict::Unknown(_) => "unknown",
    }
}

/// Compares the incrementally maintained session against a cold session
/// rebuilt by the snapshot oracle from the model's expected state —
/// rows, pending order, steady-state structures, and the verdict.
fn assert_matches_cold(
    inst: &Instance,
    live: &mut MonitorSession,
    live_dc: usize,
    model: &Model,
    at: usize,
) -> Result<(), TestCaseError> {
    prop_assert_eq!(
        live.epoch(),
        model.epoch,
        "epoch diverged after event {}",
        at
    );

    let cat = live.bcdb().database().catalog().clone();
    let cs = live.bcdb().constraints().clone();
    let mut cold = MonitorSession::new(cat, cs);
    cold.set_config(config(EpochApply::Rebuild));
    cold.apply(&ChainEvent::Reorg {
        depth: 0,
        base: model.state.base.clone(),
        pending: model.state.pending.clone(),
    })
    .unwrap();

    let live_names: Vec<String> = live.pending_names().iter().map(|n| n.to_string()).collect();
    let cold_names: Vec<String> = cold.pending_names().iter().map(|n| n.to_string()).collect();
    prop_assert_eq!(live_names, cold_names, "pending order diverged after event {}", at);

    let rows = |s: &MonitorSession| -> Vec<String> {
        let db = s.bcdb().database();
        let mut out = Vec::new();
        for (rid, schema) in db.catalog().iter() {
            for (_, row) in db.relation(rid).scan_all() {
                out.push(format!("{} {:?} {:?}", schema.name(), row.tuple, row.source));
            }
        }
        out
    };
    prop_assert_eq!(rows(live), rows(&cold), "rows diverged after event {}", at);

    let lp = live.precomputed();
    let cp = cold.precomputed();
    prop_assert_eq!(&lp.viable, &cp.viable, "viability diverged after event {}", at);
    prop_assert_eq!(
        &lp.includable,
        &cp.includable,
        "inclusion status diverged after event {}",
        at
    );
    let n = lp.fd_graph.node_count();
    prop_assert_eq!(
        n,
        cp.fd_graph.node_count(),
        "GfTd node count diverged after event {}",
        at
    );
    let mut live_uf = lp.ind_uf.clone();
    let mut cold_uf = cp.ind_uf.clone();
    for a in 0..n {
        for b in a + 1..n {
            prop_assert_eq!(
                lp.fd_graph.has_edge(a, b),
                cp.fd_graph.has_edge(a, b),
                "GfTd edge ({}, {}) diverged after event {}",
                a,
                b,
                at
            );
            prop_assert_eq!(
                live_uf.connected(a, b),
                cold_uf.connected(a, b),
                "IND component of ({}, {}) diverged after event {}",
                a,
                b,
                at
            );
        }
    }

    let dc = parse_denial_constraint(&inst.query, cold.bcdb().database().catalog()).unwrap();
    let cold_dc = cold.register("q", dc);
    let lv = live.recheck(live_dc).verdict;
    let cv = cold.recheck(cold_dc).verdict;
    prop_assert_eq!(
        verdict_label(&lv),
        verdict_label(&cv),
        "verdict diverged after event {}: live {:?} vs cold {:?}",
        at,
        lv,
        cv
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24,
        ..ProptestConfig::default()
    })]

    /// After every event of a random stream, the incremental session is
    /// byte-identical to a cold rebuild of the expected state.
    #[test]
    fn incremental_session_equals_cold_rebuild_after_every_event(
        (inst, ops) in instance_strategy().prop_flat_map(|inst| {
            let arity = inst.arity;
            (Just(inst), prop::collection::vec(op_strategy(arity), 1..12))
        }),
    ) {
        let Some((cat, cs, base, pending)) = named_export(&inst) else {
            return Ok(());
        };
        let mut live = MonitorSession::new(cat.clone(), cs.clone());
        live.set_config(config(EpochApply::Incremental));
        let dc = parse_denial_constraint(&inst.query, live.bcdb().database().catalog()).unwrap();
        let live_dc = live.register("q", dc);

        let mut model = Model::new(inst.arity, base, pending);

        // Bootstrap: a depth-0 resync loads the instance into the session.
        let boot = ChainEvent::Reorg {
            depth: 0,
            base: model.state.base.clone(),
            pending: model.state.pending.clone(),
        };
        model.history.push(State { base: Vec::new(), pending: Vec::new() });
        model.clean_suffix += 1;
        model.epoch += 1;
        live.apply(&boot).unwrap();
        assert_matches_cold(&inst, &mut live, live_dc, &model, 0)?;

        for (i, op) in ops.iter().enumerate() {
            let Some(event) = model.step(op) else { continue };
            live.apply(&event).unwrap();
            assert_matches_cold(&inst, &mut live, live_dc, &model, i + 1)?;
        }

        // The whole stream ran on the incremental path: the oracle never
        // fired and nothing fell back to a snapshot rebuild.
        prop_assert_eq!(live.stats().rebuilds, 0);
        prop_assert_eq!(live.stats().apply_fallbacks, 0);
    }
}
