//! The N-way differential solver matrix: every DCSat path — Naive, Opt
//! (serial, with and without constant covers), the governed solver under a
//! generous budget, and the two-level parallel scheduler — must agree with
//! the exhaustive possible-worlds oracle on randomized blockchain
//! databases, randomized integrity constraints, and randomized denial
//! constraints.
//!
//! This replaces the two scattered pairwise agreement tests
//! (`algorithms_agree_with_oracle`, `two_level_parallel_agrees_with_serial_
//! and_naive`) with one harness: a single generated instance is pushed
//! through every applicable path, so a disagreement pinpoints the deviating
//! solver immediately. Failing seeds persist to
//! `proptest-regressions/` and are replayed before fresh random cases.

mod common;

use bcdb_core::{
    dcsat, dcsat_governed, is_possible_world, Algorithm, DcSatOptions, Precomputed,
    PreparedConstraint, Verdict,
};
use bcdb_query::{
    atom_graph_complete, is_connected, monotonicity, parse_denial_constraint, DenialConstraint,
};
use bcdb_storage::TxId;
use common::instances::{build_db, generous_budget, instance_strategy};
use proptest::prelude::*;

macro_rules! assert_valid_witness {
    ($db:expr, $dc:expr, $w:expr, $path:expr) => {{
        let pre = Precomputed::build($db);
        let txids: Vec<TxId> = $w.txs().collect();
        prop_assert!(
            is_possible_world($db, &pre, &txids),
            "{} produced a witness that is not a possible world",
            $path
        );
        let pc = PreparedConstraint::prepare($db.database_mut(), $dc);
        prop_assert!(
            pc.holds($db.database(), $w),
            "{} produced a witness world that does not satisfy the query",
            $path
        );
    }};
}

proptest! {
    /// Every solver path that accepts the instance agrees with the
    /// exhaustive oracle; every `Violated` verdict carries a genuine
    /// violating possible world.
    #[test]
    fn four_solver_paths_agree_with_the_oracle(inst in instance_strategy()) {
        let trace = std::env::var("SOLVER_MATRIX_TRACE").is_ok();
        let Some(mut db) = build_db(&inst) else {
            if trace {
                eprintln!("[solver_matrix] skip (empty transaction): {}", inst.query);
            }
            return Ok(()); // inconsistent base: not a blockchain database
        };
        let dc = match parse_denial_constraint(&inst.query, db.database().catalog()) {
            Ok(dc) => dc,
            Err(e) => panic!("generator produced an unparseable query '{}': {e}", inst.query),
        };
        let text = &inst.query;

        // Ground truth: exhaustive enumeration of Poss(D).
        let oracle = dcsat(&mut db, &dc, &DcSatOptions {
            algorithm: Algorithm::Oracle, ..DcSatOptions::default()
        }).unwrap();
        if let Some(w) = &oracle.witness {
            assert_valid_witness!(&mut db, &dc, w, "oracle");
        }

        // Path 0: the router must always agree, whatever it picks.
        let auto = dcsat(&mut db, &dc, &DcSatOptions::default()).unwrap();
        prop_assert_eq!(auto.satisfied, oracle.satisfied,
            "auto ({}) vs oracle on {}", auto.stats.algorithm, text);

        // Path 1: NaiveDCSat — sound for monotone constraints, with and
        // without the base-world pre-check.
        if monotonicity(&dc).is_monotone() {
            for precheck in [false, true] {
                let naive = dcsat(&mut db, &dc, &DcSatOptions {
                    algorithm: Algorithm::Naive, use_precheck: precheck,
                    ..DcSatOptions::default()
                }).unwrap();
                prop_assert_eq!(naive.satisfied, oracle.satisfied,
                    "naive(precheck={}) vs oracle on {}", precheck, text);
                if let Some(w) = &naive.witness {
                    assert_valid_witness!(&mut db, &dc, w, "naive");
                }
            }
        }

        // Paths 2 and 4 share Proposition 2's applicability condition:
        // monotone + connected + complete atom graph, conjunctive only.
        let opt_applicable = match &dc {
            DenialConstraint::Conjunctive(q) => {
                monotonicity(&dc).is_monotone() && is_connected(q) && atom_graph_complete(q)
            }
            _ => false,
        };

        if trace {
            eprintln!(
                "[solver_matrix] {} | naive={} opt={} | oracle satisfied={}",
                text, monotonicity(&dc).is_monotone(), opt_applicable, oracle.satisfied
            );
        }

        // Path 2: serial OptDCSat, with and without constant covers.
        if opt_applicable {
            for covers in [true, false] {
                let opt = dcsat(&mut db, &dc, &DcSatOptions {
                    algorithm: Algorithm::Opt, use_precheck: false, use_covers: covers,
                    ..DcSatOptions::default()
                }).unwrap();
                prop_assert_eq!(opt.satisfied, oracle.satisfied,
                    "opt(covers={}) vs oracle on {}", covers, text);
                if let Some(w) = &opt.witness {
                    assert_valid_witness!(&mut db, &dc, w, "opt");
                }
            }
        }

        // Path 3: the governed solver under a generous budget must reach a
        // definite verdict and agree.
        let governed = dcsat_governed(&mut db, &dc, &DcSatOptions {
            budget: generous_budget(), ..DcSatOptions::default()
        }).unwrap();
        match &governed.verdict {
            Verdict::Holds => prop_assert!(oracle.satisfied,
                "governed claims Holds but the oracle found a violation of {}", text),
            Verdict::Violated(w) => {
                prop_assert!(!oracle.satisfied,
                    "governed claims Violated but {} holds", text);
                assert_valid_witness!(&mut db, &dc, w, "governed");
            }
            Verdict::Unknown(r) => prop_assert!(false,
                "generous budget exhausted on a tiny instance ({:?}) for {}", r, text),
        }

        // Path 4: the two-level parallel scheduler (component-parallel plus
        // intra-component subproblem splitting) must also be definite.
        if opt_applicable {
            let two_level = dcsat_governed(&mut db, &dc, &DcSatOptions {
                algorithm: Algorithm::Opt,
                parallel: true,
                parallel_intra: true,
                threads: Some(4),
                ..DcSatOptions::default()
            }).unwrap();
            match &two_level.verdict {
                Verdict::Holds => prop_assert!(oracle.satisfied,
                    "two-level claims Holds but the oracle found a violation of {}", text),
                Verdict::Violated(w) => {
                    prop_assert!(!oracle.satisfied,
                        "two-level claims Violated but {} holds", text);
                    assert_valid_witness!(&mut db, &dc, w, "two-level");
                }
                Verdict::Unknown(r) => prop_assert!(false,
                    "unbudgeted fault-free two-level run must be definite on {} ({:?})", text, r),
            }
        }
    }
}
