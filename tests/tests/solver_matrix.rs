//! The N-way differential solver matrix: every DCSat path — Naive, Opt
//! (serial, with and without constant covers), the governed solver under a
//! generous budget, and the two-level parallel scheduler — must agree with
//! the exhaustive possible-worlds oracle on randomized blockchain
//! databases, randomized integrity constraints, and randomized denial
//! constraints. All paths run through the [`Solver`] session facade, so
//! the matrix also exercises session option swaps, the base-verdict hint
//! cache, and epoch handling.
//!
//! A second property pins the batch engine's contract: `check_batch(qs)`
//! agrees with checking each constraint sequentially on a fresh session —
//! definite verdicts never flip, and indefinite outcomes (shared-budget
//! exhaustion, injected mid-batch panics) may only widen to `Unknown`.
//!
//! Failing seeds persist to `proptest-regressions/` and are replayed
//! before fresh random cases.

mod common;

use bcdb_core::{
    is_possible_world, Algorithm, BudgetSpec, DcSatOptions, Precomputed, PreparedConstraint,
    Solver, Verdict,
};
use bcdb_query::{
    atom_graph_complete, is_connected, monotonicity, parse_denial_constraint, DenialConstraint,
};
use bcdb_storage::TxId;
use common::instances::{build_db, gen_query, generous_budget, instance_strategy};
use proptest::prelude::*;

macro_rules! assert_valid_witness {
    ($solver:expr, $dc:expr, $w:expr, $path:expr) => {{
        let db = $solver.db_mut();
        let pre = Precomputed::build(db);
        let txids: Vec<TxId> = $w.txs().collect();
        prop_assert!(
            is_possible_world(db, &pre, &txids),
            "{} produced a witness that is not a possible world",
            $path
        );
        let pc = PreparedConstraint::prepare(db.database_mut(), $dc);
        prop_assert!(
            pc.holds(db.database(), $w),
            "{} produced a witness world that does not satisfy the query",
            $path
        );
    }};
}

proptest! {
    /// Every solver path that accepts the instance agrees with the
    /// exhaustive oracle; every `Violated` verdict carries a genuine
    /// violating possible world.
    #[test]
    fn four_solver_paths_agree_with_the_oracle(inst in instance_strategy()) {
        let trace = std::env::var("SOLVER_MATRIX_TRACE").is_ok();
        let Some(db) = build_db(&inst) else {
            if trace {
                eprintln!("[solver_matrix] skip (empty transaction): {}", inst.query);
            }
            return Ok(()); // inconsistent base: not a blockchain database
        };
        let dc = match parse_denial_constraint(&inst.query, db.database().catalog()) {
            Ok(dc) => dc,
            Err(e) => panic!("generator produced an unparseable query '{}': {e}", inst.query),
        };
        let text = &inst.query;
        let mut solver = Solver::builder(db).build();

        // Ground truth: exhaustive enumeration of Poss(D).
        solver.set_options(DcSatOptions::default().with_algorithm(Algorithm::Oracle));
        let oracle = solver.check_ungoverned(&dc).unwrap();
        if let Some(w) = &oracle.witness {
            assert_valid_witness!(&mut solver, &dc, w, "oracle");
        }

        // Path 0: the router must always agree, whatever it picks.
        solver.set_options(DcSatOptions::default());
        let auto = solver.check_ungoverned(&dc).unwrap();
        prop_assert_eq!(auto.satisfied, oracle.satisfied,
            "auto ({}) vs oracle on {}", auto.stats.algorithm, text);

        // Path 1: NaiveDCSat — sound for monotone constraints, with and
        // without the base-world pre-check.
        if monotonicity(&dc).is_monotone() {
            for precheck in [false, true] {
                solver.set_options(
                    DcSatOptions::default()
                        .with_algorithm(Algorithm::Naive)
                        .with_precheck(precheck),
                );
                let naive = solver.check_ungoverned(&dc).unwrap();
                prop_assert_eq!(naive.satisfied, oracle.satisfied,
                    "naive(precheck={}) vs oracle on {}", precheck, text);
                if let Some(w) = &naive.witness {
                    assert_valid_witness!(&mut solver, &dc, w, "naive");
                }
            }
        }

        // Paths 2 and 4 share Proposition 2's applicability condition:
        // monotone + connected + complete atom graph, conjunctive only.
        let opt_applicable = match &dc {
            DenialConstraint::Conjunctive(q) => {
                monotonicity(&dc).is_monotone() && is_connected(q) && atom_graph_complete(q)
            }
            _ => false,
        };

        if trace {
            eprintln!(
                "[solver_matrix] {} | naive={} opt={} | oracle satisfied={}",
                text, monotonicity(&dc).is_monotone(), opt_applicable, oracle.satisfied
            );
        }

        // Path 2: serial OptDCSat, with and without constant covers.
        if opt_applicable {
            for covers in [true, false] {
                solver.set_options(
                    DcSatOptions::default()
                        .with_algorithm(Algorithm::Opt)
                        .with_precheck(false)
                        .with_covers(covers),
                );
                let opt = solver.check_ungoverned(&dc).unwrap();
                prop_assert_eq!(opt.satisfied, oracle.satisfied,
                    "opt(covers={}) vs oracle on {}", covers, text);
                if let Some(w) = &opt.witness {
                    assert_valid_witness!(&mut solver, &dc, w, "opt");
                }
            }
        }

        // Path 3: the governed solver under a generous budget must reach a
        // definite verdict and agree.
        solver.set_options(DcSatOptions::default().with_budget(generous_budget()));
        let governed = solver.check(&dc).unwrap();
        match &governed.verdict {
            Verdict::Holds => prop_assert!(oracle.satisfied,
                "governed claims Holds but the oracle found a violation of {}", text),
            Verdict::Violated(w) => {
                prop_assert!(!oracle.satisfied,
                    "governed claims Violated but {} holds", text);
                assert_valid_witness!(&mut solver, &dc, w, "governed");
            }
            Verdict::Unknown(r) => prop_assert!(false,
                "generous budget exhausted on a tiny instance ({:?}) for {}", r, text),
        }

        // Path 4: the two-level parallel scheduler (component-parallel plus
        // intra-component subproblem splitting) must also be definite.
        if opt_applicable {
            solver.set_options(
                DcSatOptions::default()
                    .with_algorithm(Algorithm::Opt)
                    .with_parallel(true)
                    .with_parallel_intra(true)
                    .with_threads(Some(4)),
            );
            let two_level = solver.check(&dc).unwrap();
            match &two_level.verdict {
                Verdict::Holds => prop_assert!(oracle.satisfied,
                    "two-level claims Holds but the oracle found a violation of {}", text),
                Verdict::Violated(w) => {
                    prop_assert!(!oracle.satisfied,
                        "two-level claims Violated but {} holds", text);
                    assert_valid_witness!(&mut solver, &dc, w, "two-level");
                }
                Verdict::Unknown(r) => prop_assert!(false,
                    "unbudgeted fault-free two-level run must be definite on {} ({:?})", text, r),
            }
        }
    }

    /// Batch-vs-sequential agreement: `check_batch(qs)` over one session
    /// matches checking each constraint on a fresh session. Definite
    /// verdicts must be identical; a tight shared budget or an injected
    /// mid-batch panic may only turn answers `Unknown` — never flip a
    /// definite verdict. Config errors must match variant-for-variant.
    #[test]
    fn batch_agrees_with_sequential(
        inst in instance_strategy(),
        extra_seeds in prop::collection::vec(0..u64::MAX, 0..3),
        tight_budget in prop::bool::ANY,
        panic_sel in 0usize..8,
    ) {
        // The vendored proptest has no `prop::option`: selector values past
        // the pending-set bound mean "no injected fault".
        let panic_tx = (panic_sel < 4).then_some(panic_sel);
        let Some(db) = build_db(&inst) else { return Ok(()); };
        let mut texts = vec![inst.query.clone()];
        texts.extend(extra_seeds.iter().map(|&s| gen_query(inst.arity, s)));
        let dcs: Vec<_> = texts
            .iter()
            .map(|t| parse_denial_constraint(t, db.database().catalog())
                .expect("generator produces parseable queries"))
            .collect();

        // Reference run: each constraint on its own fresh session with a
        // fresh generous budget and no faults.
        let sequential: Vec<_> = dcs
            .iter()
            .map(|dc| {
                let mut one = Solver::builder(build_db(&inst).unwrap())
                    .budget(generous_budget())
                    .build();
                one.check(dc)
            })
            .collect();

        // Batch run: one session, one shared budget, optionally starved
        // and/or poisoned with a mid-batch panic.
        let budget = if tight_budget {
            BudgetSpec {
                max_worlds: Some(2),
                max_cliques: Some(2),
                max_tuples: Some(64),
                ..BudgetSpec::UNLIMITED
            }
        } else {
            generous_budget()
        };
        let mut batch_solver = Solver::builder(db)
            .budget(budget)
            .fault_inject_panic_tx(panic_tx)
            .build();
        let batch = batch_solver.check_batch(&dcs);
        prop_assert_eq!(batch.outcomes.len(), dcs.len());

        for (i, (seq, bat)) in sequential.iter().zip(batch.outcomes.iter()).enumerate() {
            match (seq, bat) {
                (Ok(s), Ok(b)) => match (&s.verdict, &b.verdict) {
                    // Both definite: must agree exactly (witness worlds may
                    // differ, satisfaction may not).
                    (Verdict::Holds, Verdict::Violated(_)) | (Verdict::Violated(_), Verdict::Holds) => {
                        prop_assert!(false,
                            "definite verdict flipped for '{}': sequential {:?} vs batch {:?}",
                            texts[i], s.verdict, b.verdict);
                    }
                    // Batch may degrade to Unknown under the shared budget
                    // or an injected panic — but only if starved/poisoned.
                    (_, Verdict::Unknown(r)) => {
                        prop_assert!(tight_budget || panic_tx.is_some(),
                            "unstarved fault-free batch returned Unknown({:?}) for '{}'",
                            r, texts[i]);
                    }
                    // The reference run uses a generous budget: it must be
                    // definite (asserted by the oracle property above), so
                    // a definite batch answer pairs with a definite
                    // sequential one and the equality holds.
                    _ => prop_assert_eq!(
                        s.verdict.satisfied(), b.verdict.satisfied(),
                        "verdict mismatch for '{}'", texts[i]),
                },
                // Configuration errors are deterministic per constraint and
                // unaffected by batching.
                (Err(se), Err(be)) => {
                    prop_assert_eq!(
                        std::mem::discriminant(se), std::mem::discriminant(be),
                        "error variant mismatch for '{}': {se} vs {be}", texts[i]);
                }
                (Ok(s), Err(be)) => prop_assert!(false,
                    "sequential succeeded ({:?}) but batch errored ({be}) for '{}'",
                    s.verdict, texts[i]),
                (Err(se), Ok(b)) => prop_assert!(false,
                    "sequential errored ({se}) but batch succeeded ({:?}) for '{}'",
                    b.verdict, texts[i]),
            }
        }
    }
}
