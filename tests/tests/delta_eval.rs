//! Delta-seeded incremental evaluation agrees with full re-evaluation on
//! every possible world.
//!
//! The invariant under test (see DESIGN.md): for a seedable (negation-free)
//! conjunctive query `q` and any world `W ⊇ base`,
//!
//! ```text
//! q(W)  ==  q(base) || delta(q, W)
//! ```
//!
//! where `delta` only explores assignments touching at least one pending
//! tuple of `W`. Negation-bearing queries must *fall back* to full
//! evaluation instead — adding delta rows can destroy their matches.

use bcdb_core::{
    delta_row_count, possible_worlds, BlockchainDb, BudgetSpec, DcSatOptions, Precomputed, Solver,
};
use bcdb_query::{
    evaluate_bool, evaluate_bool_delta_governed, evaluate_bool_incremental_governed,
    parse_denial_constraint, prepare,
};
use bcdb_storage::{tuple, Catalog, ConstraintSet, Fd, RelationSchema, ValueType};
use proptest::prelude::*;

/// Same generator as `governed_soundness`: a small R(a, b) database with
/// key R[a]; first base tuple per key wins, every pending transaction
/// needs at least one row.
fn build_db(base: &[(i64, i64)], txs: &[Vec<(i64, i64)>]) -> Option<BlockchainDb> {
    let mut cat = Catalog::new();
    cat.add(RelationSchema::new("R", [("a", ValueType::Int), ("b", ValueType::Int)]).unwrap())
        .unwrap();
    let mut cs = ConstraintSet::new();
    cs.add_fd(Fd::named_key(&cat, "R", &["a"]).unwrap());
    let mut db = BlockchainDb::new(cat, cs);
    let r = db.database().catalog().resolve("R").unwrap();
    let mut seen = std::collections::HashSet::new();
    for &(a, b) in base {
        if seen.insert(a) {
            db.insert_current(r, tuple![a, b]).unwrap();
        }
    }
    for (i, rows) in txs.iter().enumerate() {
        if rows.is_empty() {
            return None;
        }
        let tuples: Vec<_> = rows.iter().map(|&(a, b)| (r, tuple![a, b])).collect();
        db.add_transaction(format!("T{i}"), tuples).unwrap();
    }
    Some(db)
}

/// Negation-free conjunctive queries — all seedable.
fn seedable_queries() -> Vec<&'static str> {
    vec![
        "q() <- R(x, y)",
        "q() <- R(x, 1)",
        "q() <- R(x, y), R(y, z)",
        "q() <- R(x, y), x != y",
        "q() <- R(1, y), R(y, 2)",
    ]
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 96,
        ..ProptestConfig::default()
    })]

    /// Per-world delta-seeded evaluation equals full re-evaluation on every
    /// possible world, worlds with an empty delta included.
    #[test]
    fn delta_matches_full_on_every_world(
        base in prop::collection::vec((0..4i64, 0..4i64), 0..4),
        txs in prop::collection::vec(prop::collection::vec((0..4i64, 0..4i64), 1..3), 1..5),
        query_idx in 0..5usize,
    ) {
        let Some(mut db) = build_db(&base, &txs) else { return Ok(()) };
        let text = seedable_queries()[query_idx];
        let dc = parse_denial_constraint(text, db.database().catalog()).unwrap();
        let pq = prepare(db.database_mut(), dc.body());
        prop_assert!(pq.seedable(), "{text} must be seedable");
        let pre = Precomputed::build(&db);
        let budget = BudgetSpec::UNLIMITED.start();
        let base_mask = db.database().base_mask();
        let base_holds = evaluate_bool(db.database(), &pq, &base_mask);

        // The base world is the canonical empty-delta world: incremental
        // evaluation must answer it from the cached verdict alone.
        prop_assert_eq!(delta_row_count(db.database(), &base_mask), 0);
        prop_assert_eq!(
            evaluate_bool_incremental_governed(
                db.database(), &pq, &base_mask, base_holds, &budget).unwrap(),
            base_holds
        );

        for world in possible_worlds(&db, &pre) {
            let full = evaluate_bool(db.database(), &pq, &world);
            let incremental = evaluate_bool_incremental_governed(
                db.database(), &pq, &world, base_holds, &budget).unwrap();
            prop_assert_eq!(
                incremental, full,
                "incremental disagrees on {} over world {:?}",
                text, world.txs().collect::<Vec<_>>());
            if !base_holds {
                // With a false base verdict the delta passes alone must
                // reconstruct the full answer (the dcsat fast path).
                let delta = evaluate_bool_delta_governed(
                    db.database(), &pq, &world, &budget).unwrap();
                prop_assert_eq!(
                    delta, full,
                    "delta-only disagrees on {} over world {:?}",
                    text, world.txs().collect::<Vec<_>>());
            }
        }
    }

    /// Negation-bearing constraints are not seedable: `use_delta` must be a
    /// no-op for them — identical verdict, zero delta counters.
    #[test]
    fn negated_constraints_fall_back_to_full_eval(
        base in prop::collection::vec((0..4i64, 0..4i64), 0..4),
        txs in prop::collection::vec(prop::collection::vec((0..4i64, 0..4i64), 1..3), 1..5),
    ) {
        let Some(mut db) = build_db(&base, &txs) else { return Ok(()) };
        let dc = parse_denial_constraint("q() <- R(x, y), !R(y, x)", db.database().catalog())
            .unwrap();
        let pq = prepare(db.database_mut(), dc.body());
        prop_assert!(!pq.seedable(), "negation must disable seeding");
        let mut solver = Solver::builder(db).build();
        solver.set_options(DcSatOptions::default().with_delta(true));
        let with = solver.check_ungoverned(&dc).unwrap();
        solver.set_options(DcSatOptions::default().with_delta(false));
        let without = solver.check_ungoverned(&dc).unwrap();
        prop_assert_eq!(with.satisfied, without.satisfied);
        prop_assert_eq!(with.stats.delta_seeded_evals, 0);
        // The session supplies the same base-verdict hint either way, so
        // hint-driven cache hits must not depend on `use_delta`; no
        // *additional* hits may come from the (disabled) delta path.
        prop_assert_eq!(with.stats.base_cache_hits, without.stats.base_cache_hits);
    }
}
