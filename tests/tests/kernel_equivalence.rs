//! Cross-crate equivalence of the enumeration kernels: over the
//! solver-matrix instance generator, the degeneracy-ordered Bron–Kerbosch
//! outer loop must produce the *exact same* maximal-clique set as the
//! pivoting and plain orderings on the real `GfTd` contradiction graphs a
//! solver sees — and the solver itself must reach identical verdicts under
//! either strategy. The word-parallel kernel flavours themselves are
//! proptested inside `bcdb-graph`; this suite pins the end-to-end story.
//!
//! Failing seeds persist to `proptest-regressions/` and are replayed
//! before fresh random cases.

mod common;

use bcdb_core::{DcSatOptions, Precomputed, Solver, Verdict};
use bcdb_graph::{collect_maximal_cliques, CliqueStrategy};
use bcdb_query::parse_denial_constraint;
use common::instances::{build_db, generous_budget, instance_strategy};
use proptest::prelude::*;

/// Canonical form of an enumeration: each clique sorted (the enumerator
/// already reports them sorted), the set of cliques sorted.
fn canonical(mut cliques: Vec<Vec<usize>>) -> Vec<Vec<usize>> {
    for c in &mut cliques {
        c.sort_unstable();
    }
    cliques.sort();
    cliques
}

proptest! {
    /// All three clique strategies enumerate the same maximal-clique set
    /// on the instance's real contradiction graph `GfTd`.
    #[test]
    fn strategies_agree_on_gftd(inst in instance_strategy()) {
        let Some(db) = build_db(&inst) else { return Ok(()) };
        let pre = Precomputed::build(&db);
        let pivot = canonical(collect_maximal_cliques(&pre.fd_graph, CliqueStrategy::Pivot));
        let plain = canonical(collect_maximal_cliques(&pre.fd_graph, CliqueStrategy::Plain));
        let degen = canonical(collect_maximal_cliques(&pre.fd_graph, CliqueStrategy::Degeneracy));
        prop_assert_eq!(&plain, &pivot, "plain vs pivot on GfTd");
        prop_assert_eq!(&degen, &pivot, "degeneracy vs pivot on GfTd");
    }

    /// The solver reaches the same verdict whichever clique strategy
    /// drives the enumeration (witness worlds may differ; the
    /// holds/violated split may not).
    #[test]
    fn solver_verdicts_agree_across_strategies(inst in instance_strategy()) {
        let Some(db) = build_db(&inst) else { return Ok(()) };
        let Ok(dc) = parse_denial_constraint(&inst.query, db.database().catalog()) else {
            return Ok(());
        };
        let budget = generous_budget();
        let mut solver = Solver::builder(db)
            .options(DcSatOptions::default().with_budget(budget))
            .build();
        let base = match solver.check(&dc) {
            Ok(out) => out.verdict,
            Err(_) => return Ok(()), // constraint outside the solvable fragment
        };
        for strategy in [CliqueStrategy::Plain, CliqueStrategy::Degeneracy] {
            solver.set_options(
                DcSatOptions::default()
                    .with_budget(budget)
                    .with_clique_strategy(strategy),
            );
            let got = solver.check(&dc).expect("same fragment as base run").verdict;
            match (&base, &got) {
                (Verdict::Holds, Verdict::Holds) => {}
                (Verdict::Violated(_), Verdict::Violated(_)) => {}
                (b, g) => prop_assert!(
                    false,
                    "strategy {strategy:?} flipped the verdict: {b:?} vs {g:?}"
                ),
            }
        }
    }
}
