//! Crash-point recovery equals uninterrupted replay.
//!
//! The journal's contract (see DESIGN.md): events are written ahead of
//! being applied, each record is CRC-checksummed, and recovery keeps the
//! longest valid prefix. A monitor that crashes after journaling `k`
//! events, recovers, replays the surviving prefix, and then re-applies
//! the remaining live events must end in *exactly* the state of a
//! monitor that never crashed — same epoch, same rows, same pending
//! order, same verdicts for every registered constraint.

use bcdb_monitor::{ChainEvent, Journal, MonitorSession, tear_last_record};
use bcdb_query::parse_denial_constraint;
use bcdb_storage::{tuple, Catalog, ConstraintSet, Fd, RelationSchema, Tuple, ValueType};
use proptest::prelude::*;
use std::path::PathBuf;

const CONFLICT_DC: &str = "q() <- Pay(i, u), Pay(i, v), u != v";

fn schema() -> (Catalog, ConstraintSet) {
    let mut cat = Catalog::new();
    cat.add(RelationSchema::new("Pay", [("id", ValueType::Int), ("to", ValueType::Text)]).unwrap())
        .unwrap();
    let mut cs = ConstraintSet::new();
    cs.add_fd(Fd::named_key(&cat, "Pay", &["id"]).unwrap());
    (cat, cs)
}

fn scratch(name: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../target/monitor-scratch");
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    let path = dir.join(format!("{name}.journal"));
    let _ = std::fs::remove_file(&path);
    path
}

/// One abstract mutation, materialized against a running model so every
/// generated event is valid (evictions name a live transaction, mined
/// rows never break the base key).
#[derive(Clone, Copy, Debug)]
enum Op {
    Arrive { id: i64 },
    Evict { pick: usize },
    Mine { pick: usize },
    Reorg,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    // The vendored prop_oneof! has no weight syntax; repeating the
    // arrival arm biases the stream toward a populated mempool.
    prop_oneof![
        (0..5i64).prop_map(|id| Op::Arrive { id }),
        (0..5i64).prop_map(|id| Op::Arrive { id }),
        (0..5i64).prop_map(|id| Op::Arrive { id }),
        (0..8usize).prop_map(|pick| Op::Evict { pick }),
        (0..8usize).prop_map(|pick| Op::Mine { pick }),
        Just(Op::Reorg),
    ]
}

/// A model of the chain the monitor observes: enough state to emit
/// snapshot events (`TxMined`/`Reorg` carry the full base + mempool).
#[derive(Default)]
struct Model {
    base: Vec<(String, Tuple)>,
    base_ids: std::collections::HashSet<i64>,
    pending: Vec<(String, i64, Tuple)>,
    next: usize,
}

impl Model {
    fn named_pending(&self) -> Vec<(String, Vec<(String, Tuple)>)> {
        self.pending
            .iter()
            .map(|(n, _, t)| (n.clone(), vec![("Pay".to_string(), t.clone())]))
            .collect()
    }

    /// Materializes one op, or `None` when it does not apply (eviction
    /// from an empty mempool, mining when every candidate conflicts).
    fn step(&mut self, op: Op) -> Option<ChainEvent> {
        match op {
            Op::Arrive { id } => {
                let name = format!("t{}", self.next);
                self.next += 1;
                let row = tuple![id, format!("w{}", self.next)];
                self.pending.push((name.clone(), id, row.clone()));
                Some(ChainEvent::TxArrived {
                    name,
                    tuples: vec![("Pay".to_string(), row)],
                })
            }
            Op::Evict { pick } => {
                if self.pending.is_empty() {
                    return None;
                }
                let (name, _, _) = self.pending.remove(pick % self.pending.len());
                Some(ChainEvent::TxEvicted { name })
            }
            Op::Mine { pick } => {
                if self.pending.is_empty() {
                    return None;
                }
                // Rotate from `pick` to the first transaction whose key is
                // still free in the base relation.
                let n = self.pending.len();
                let idx = (0..n)
                    .map(|i| (pick + i) % n)
                    .find(|&i| !self.base_ids.contains(&self.pending[i].1))?;
                let (name, id, row) = self.pending.remove(idx);
                self.base.push(("Pay".to_string(), row));
                self.base_ids.insert(id);
                Some(ChainEvent::TxMined {
                    mined: vec![name],
                    base: self.base.clone(),
                    pending: self.named_pending(),
                })
            }
            Op::Reorg => Some(ChainEvent::Reorg {
                depth: 1,
                base: self.base.clone(),
                pending: self.named_pending(),
            }),
        }
    }
}

fn materialize(ops: &[Op]) -> Vec<ChainEvent> {
    let mut model = Model::default();
    ops.iter().filter_map(|&op| model.step(op)).collect()
}

/// Everything observable about a session, in comparable form.
fn fingerprint(s: &mut MonitorSession) -> (u64, Vec<String>, Vec<String>, String) {
    let epoch = s.epoch();
    let pending: Vec<String> = s.pending_names().iter().map(|n| n.to_string()).collect();
    let cat = s.bcdb().database().catalog();
    let mut rows = Vec::new();
    for (rid, schema) in cat.iter() {
        for (_, row) in s.bcdb().database().relation(rid).scan_all() {
            rows.push(format!("{} {:?} {:?}", schema.name(), row.tuple, row.source));
        }
    }
    let idx = s.register("conflict", {
        let dc = parse_denial_constraint(CONFLICT_DC, s.bcdb().database().catalog()).unwrap();
        dc
    });
    let verdict = format!("{:?}", s.recheck(idx).verdict);
    (epoch, pending, rows, verdict)
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 48,
        ..ProptestConfig::default()
    })]

    /// Crash anywhere (with an optional torn final write), recover,
    /// replay, re-apply the tail: the result equals never crashing.
    #[test]
    fn recovery_then_replay_equals_uninterrupted(
        ops in prop::collection::vec(op_strategy(), 1..24),
        crash_sel in 0..100usize,
        torn in prop::bool::ANY,
        keep in 0..6u64,
        case in 0..1_000_000u64,
    ) {
        let events = materialize(&ops);
        if events.is_empty() {
            return Ok(());
        }
        let (cat, cs) = schema();

        // The uninterrupted run.
        let mut live = MonitorSession::new(cat.clone(), cs.clone());
        for e in &events {
            live.apply(e).unwrap();
        }
        let want = fingerprint(&mut live);

        // The crashing run: journal the first `c` events, then die —
        // possibly mid-write, shearing bytes off the final record.
        let c = crash_sel % (events.len() + 1);
        let path = scratch(&format!("proptest-{case}"));
        let mut crashed = MonitorSession::new(cat.clone(), cs.clone());
        crashed.attach_journal(Journal::create(&path).unwrap());
        for e in &events[..c] {
            crashed.apply(e).unwrap();
        }
        drop(crashed);
        if torn && c > 0 {
            tear_last_record(&path, keep).unwrap();
        }

        // Recover the longest valid prefix and replay it. Epoch-advancing
        // events journal an extra undo (`U`) record after their `E`
        // record, so count *events*, not records: a torn final line costs
        // one event unless the last journaled line was that trailing undo.
        let recovery = Journal::recover(&path).unwrap();
        let survived = recovery.records.iter().filter(|r| r.event().is_some()).count();
        let expect_survived = if torn && c > 0 {
            if events[c - 1].advances_epoch() { c } else { c - 1 }
        } else {
            c
        };
        prop_assert_eq!(survived, expect_survived);
        let mut recovered = MonitorSession::replay(cat, cs, &recovery.records).unwrap();

        // Re-apply everything the crash lost plus the rest of the stream.
        for e in &events[survived..] {
            recovered.apply(e).unwrap();
        }
        let got = fingerprint(&mut recovered);
        prop_assert_eq!(got, want);
        let _ = std::fs::remove_file(&path);
    }
}

#[test]
fn empty_journal_recovers_to_a_fresh_session() {
    let path = scratch("empty");
    // No file at all: recovery yields an empty, appendable journal.
    let recovery = Journal::recover(&path).unwrap();
    assert_eq!(recovery.records.len(), 0);
    assert_eq!(recovery.dropped_lines, 0);
    let (cat, cs) = schema();
    let mut s = MonitorSession::replay(cat, cs, &recovery.records).unwrap();
    assert_eq!(s.epoch(), 0);
    assert!(s.pending_names().is_empty());
    // The recovered journal accepts new appends.
    let mut journal = recovery.journal;
    journal
        .append(
            0,
            &ChainEvent::TxArrived {
                name: "t0".into(),
                tuples: vec![("Pay".to_string(), tuple![1, "w"])],
            },
        )
        .unwrap();
    s.attach_journal(journal);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn corrupt_tail_drops_only_the_tail() {
    let (cat, cs) = schema();
    let path = scratch("corrupt-tail");
    let mut s = MonitorSession::new(cat.clone(), cs.clone());
    s.attach_journal(Journal::create(&path).unwrap());
    let events: Vec<ChainEvent> = (0..5)
        .map(|i| ChainEvent::TxArrived {
            name: format!("t{i}"),
            tuples: vec![("Pay".to_string(), tuple![i, format!("w{i}")])],
        })
        .collect();
    for e in &events {
        s.apply(e).unwrap();
    }
    drop(s);

    // Flip a byte inside the last record's checksum.
    let mut bytes = std::fs::read(&path).unwrap();
    let n = bytes.len();
    bytes[n - 3] ^= 0x55;
    std::fs::write(&path, &bytes).unwrap();

    let recovery = Journal::recover(&path).unwrap();
    assert_eq!(recovery.records.len(), 4, "only the corrupt tail goes");
    assert_eq!(recovery.dropped_lines, 1);
    let recovered = MonitorSession::replay(cat.clone(), cs.clone(), &recovery.records).unwrap();

    let mut expect = MonitorSession::new(cat, cs);
    for e in &events[..4] {
        expect.apply(e).unwrap();
    }
    assert_eq!(recovered.pending_names(), expect.pending_names());
    assert_eq!(recovered.epoch(), expect.epoch());
    let _ = std::fs::remove_file(&path);
}
