//! The paper's running example (Figure 2), verified end to end against
//! every worked example in the text.

mod common;

use bcdb_core::{
    can_append, is_possible_world, possible_worlds, Algorithm, DcSatOptions, Precomputed, Solver,
};
use bcdb_graph::collect_maximal_cliques;
use bcdb_query::parse_denial_constraint;
use bcdb_storage::TxId;
use common::figure2;

const T1: TxId = TxId(0);
const T2: TxId = TxId(1);
const T3: TxId = TxId(2);
const T4: TxId = TxId(3);
const T5: TxId = TxId(4);

#[test]
fn current_state_satisfies_constraints() {
    let (db, _, _) = figure2();
    db.check_current_state().unwrap();
}

/// Example 3: Poss(D) = { R, R∪T1, R∪T3, R∪T1∪T3, R∪T1∪T2,
/// R∪T1∪T2∪T3, R∪T1∪T2∪T3∪T4, R∪T5, R∪T3∪T5 }.
#[test]
fn example_3_possible_worlds() {
    let (db, _, _) = figure2();
    let pre = Precomputed::build(&db);
    let worlds = possible_worlds(&db, &pre);
    let mut sets: Vec<Vec<TxId>> = worlds.iter().map(|w| w.txs().collect()).collect();
    sets.sort();
    let mut expected = vec![
        vec![],
        vec![T1],
        vec![T3],
        vec![T1, T3],
        vec![T1, T2],
        vec![T1, T2, T3],
        vec![T1, T2, T3, T4],
        vec![T5],
        vec![T3, T5],
    ];
    expected.sort();
    assert_eq!(sets, expected);
}

/// Example 3's side observations: T1/T5 are mutually inconsistent
/// (double spend of (2,2)); T4 depends on T2 and T3; T2 depends on T1.
#[test]
fn example_3_dependencies() {
    let (db, _, _) = figure2();
    let pre = Precomputed::build(&db);
    assert!(!is_possible_world(&db, &pre, &[T1, T5]));
    assert!(!is_possible_world(&db, &pre, &[T2])); // needs T1
    assert!(!is_possible_world(&db, &pre, &[T4, T2, T1])); // needs T3 too
    assert!(is_possible_world(&db, &pre, &[T4, T3, T2, T1]));
    // can-append stepping: T2 only after T1.
    let base = db.database().base_mask();
    assert!(!can_append(&db, &pre, &base, T2));
    let mut with_t1 = base.clone();
    with_t1.activate(T1);
    assert!(can_append(&db, &pre, &with_t1, T2));
}

/// Figure 3 (left): GfTd has every edge except T1–T5.
#[test]
fn figure_3_fd_graph() {
    let (db, _, _) = figure2();
    let pre = Precomputed::build(&db);
    for a in 0..5usize {
        for b in a + 1..5 {
            let expect = !(a == T1.index() && b == T5.index());
            assert_eq!(
                pre.fd_graph.has_edge(a, b),
                expect,
                "edge T{}-T{}",
                a + 1,
                b + 1
            );
        }
    }
    // Example 6: the two maximal cliques are {T2,T3,T4,T5} and {T1,T2,T3,T4}.
    let mut cliques = collect_maximal_cliques(&pre.fd_graph, bcdb_graph::CliqueStrategy::Pivot);
    cliques.sort();
    assert_eq!(
        cliques,
        vec![
            vec![T1.index(), T2.index(), T3.index(), T4.index()],
            vec![T2.index(), T3.index(), T4.index(), T5.index()],
        ]
    );
}

/// Example 6: `qs() ← TxOut(t, s, 'U8Pk', a)` is NOT satisfied —
/// the maximal world of clique {T1,T2,T3,T4} pays U8Pk.
#[test]
fn example_6_qs_not_satisfied() {
    let (db, _, _) = figure2();
    let qs =
        parse_denial_constraint("q() <- TxOut(t, s, 'U8Pk', a)", db.database().catalog()).unwrap();
    let mut solver = Solver::builder(db).build();
    for algorithm in [
        Algorithm::Naive,
        Algorithm::Opt,
        Algorithm::Oracle,
        Algorithm::Auto,
    ] {
        solver.set_options(
            DcSatOptions::default()
                .with_algorithm(algorithm)
                .with_precheck(false),
        );
        let out = solver.check_ungoverned(&qs).unwrap();
        assert!(!out.satisfied, "{algorithm:?}");
        let w = out.witness.unwrap();
        assert!(w.contains_tx(T4), "{algorithm:?}: U8Pk is paid by T4");
    }
}

/// Example 8: qs implies no query equalities, so Gq,ind is the IND-derived
/// graph; it has two connected components and only {T1,T2,T3,T4} covers
/// the constant U8Pk.
#[test]
fn example_8_components_and_covers() {
    let (db, _, _) = figure2();
    let qs =
        parse_denial_constraint("q() <- TxOut(t, s, 'U8Pk', a)", db.database().catalog()).unwrap();
    let mut solver = Solver::builder(db)
        .algorithm(Algorithm::Opt)
        .precheck(false)
        .build();
    let out = solver.check_ungoverned(&qs).unwrap();
    assert!(!out.satisfied);
    assert_eq!(
        out.stats.components_total, 2,
        "Figure 3 right: two components"
    );
    assert_eq!(out.stats.components_checked, 1, "only one covers 'U8Pk'");

    // And the IND components themselves match Figure 3 (right):
    // {T1, T2, T3, T4} and {T5}.
    let pre = Precomputed::build(solver.db());
    let mut uf = pre.ind_uf.clone();
    assert!(uf.connected(T1.index(), T2.index()));
    assert!(uf.connected(T2.index(), T4.index()));
    assert!(uf.connected(T3.index(), T4.index()));
    assert!(!uf.connected(T1.index(), T5.index()));
}

/// The denial constraint of Example 4's pattern, instantiated for the
/// double spend of (2,2): "the 4-BTC output is never spent twice".
#[test]
fn double_spend_constraint_satisfied() {
    let (db, _, _) = figure2();
    let dc = parse_denial_constraint(
        "q() <- TxIn('2', 2, p1, a1, n1, s1), TxIn('2', 2, p2, a2, n2, s2), n1 != n2",
        db.database().catalog(),
    )
    .unwrap();
    let mut solver = Solver::builder(db).build();
    for algorithm in [
        Algorithm::Naive,
        Algorithm::Opt,
        Algorithm::Oracle,
        Algorithm::Auto,
    ] {
        solver.set_options(DcSatOptions::default().with_algorithm(algorithm));
        let out = solver.check_ungoverned(&dc).unwrap();
        assert!(
            out.satisfied,
            "{algorithm:?}: key constraint forbids both spends"
        );
    }
}

/// Aggregate over the running example: U4Pk can receive at most
/// 0.5 + 3 + 0.5 = 4 BTC across all worlds.
#[test]
fn aggregate_receipts_bound() {
    let (db, _, _) = figure2();
    let over = parse_denial_constraint(
        &format!(
            "[q(sum(a)) <- TxOut(t, s, 'U4Pk', a)] > {}",
            common::btc(4.0)
        ),
        db.database().catalog(),
    )
    .unwrap();
    let reachable = parse_denial_constraint(
        &format!(
            "[q(sum(a)) <- TxOut(t, s, 'U4Pk', a)] >= {}",
            common::btc(4.0)
        ),
        db.database().catalog(),
    )
    .unwrap();
    let mut solver = Solver::builder(db).build();
    let out = solver.check_ungoverned(&over).unwrap();
    assert!(out.satisfied);
    let out = solver.check_ungoverned(&reachable).unwrap();
    assert!(!out.satisfied, "world R∪T1∪T2∪T3 pays U4Pk exactly 4 BTC");
}
