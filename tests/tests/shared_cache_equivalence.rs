//! Cross-tenant shared-cache and parallel-round equivalence.
//!
//! The serving layer's contract (see DESIGN.md "Shared enumeration
//! cache"): the `SharedEnumCache` and the multi-threaded round executor
//! are pure *performance* features. For any subscription mix — including
//! alpha-renamed duplicates of the same constraint shape spread across
//! tenants — and any event stream, every subscription's verdict sequence
//! must be identical with the cache on or off and at any worker count.
//! The cache may only change *how fast* a verdict is reached, never
//! *which* verdict; the executor schedules and merges serially, so
//! thread count must be unobservable.
//!
//! Budgets are unlimited and the round envelope generous, so verdicts
//! are decided by the data alone and cannot differ by timing.

use bcdb_monitor::ChainEvent;
use bcdb_server::{ServeConfig, ServerCore};
use bcdb_storage::{tuple, Catalog, ConstraintSet, Fd, RelationSchema, Tuple, ValueType};
use proptest::prelude::*;
use std::time::Duration;

fn schema() -> (Catalog, ConstraintSet) {
    let mut cat = Catalog::new();
    cat.add(RelationSchema::new("Pay", [("id", ValueType::Int), ("to", ValueType::Text)]).unwrap())
        .unwrap();
    let mut cs = ConstraintSet::new();
    cs.add_fd(Fd::named_key(&cat, "Pay", &["id"]).unwrap());
    (cat, cs)
}

/// One constraint *shape*, rendered with caller-chosen variable names so
/// alpha-renamed duplicates share a canonical form but not their text.
/// `salt` picks the variable alphabet.
fn render_shape(shape: usize, salt: usize) -> String {
    let v: Vec<String> = (0..3).map(|i| format!("v{salt}_{i}")).collect();
    match shape % 3 {
        // Two transactions paying the same payee.
        0 => format!(
            "q() <- Pay({a}, {c}), Pay({b}, {c}), {a} != {b}",
            a = v[0],
            b = v[1],
            c = v[2]
        ),
        // Key conflict: one id, two payees.
        1 => format!(
            "q() <- Pay({a}, {b}), Pay({a}, {c}), {b} != {c}",
            a = v[0],
            b = v[1],
            c = v[2]
        ),
        // Constant payee.
        _ => format!("q() <- Pay({a}, 'cam')", a = v[0]),
    }
}

/// One abstract mutation, materialized against a running model so every
/// generated event is valid (same scheme as monitor_recovery.rs).
#[derive(Clone, Copy, Debug)]
enum Op {
    Arrive { id: i64 },
    Evict { pick: usize },
    Mine { pick: usize },
    Reorg,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..5i64).prop_map(|id| Op::Arrive { id }),
        (0..5i64).prop_map(|id| Op::Arrive { id }),
        (0..5i64).prop_map(|id| Op::Arrive { id }),
        (0..8usize).prop_map(|pick| Op::Evict { pick }),
        (0..8usize).prop_map(|pick| Op::Mine { pick }),
        Just(Op::Reorg),
    ]
}

#[derive(Default)]
struct Model {
    base: Vec<(String, Tuple)>,
    base_ids: std::collections::HashSet<i64>,
    pending: Vec<(String, i64, Tuple)>,
    next: usize,
}

impl Model {
    fn named_pending(&self) -> Vec<(String, Vec<(String, Tuple)>)> {
        self.pending
            .iter()
            .map(|(n, _, t)| (n.clone(), vec![("Pay".to_string(), t.clone())]))
            .collect()
    }

    fn step(&mut self, op: Op) -> Option<ChainEvent> {
        match op {
            Op::Arrive { id } => {
                let name = format!("t{}", self.next);
                self.next += 1;
                // A small payee alphabet (including the constant shape's
                // 'cam') so duplicate-payee conflicts actually occur.
                let payee = ["cam", "dana", "eve"][self.next % 3].to_string();
                let row = tuple![id, payee];
                self.pending.push((name.clone(), id, row.clone()));
                Some(ChainEvent::TxArrived {
                    name,
                    tuples: vec![("Pay".to_string(), row)],
                })
            }
            Op::Evict { pick } => {
                if self.pending.is_empty() {
                    return None;
                }
                let (name, _, _) = self.pending.remove(pick % self.pending.len());
                Some(ChainEvent::TxEvicted { name })
            }
            Op::Mine { pick } => {
                if self.pending.is_empty() {
                    return None;
                }
                let n = self.pending.len();
                let idx = (0..n)
                    .map(|i| (pick + i) % n)
                    .find(|&i| !self.base_ids.contains(&self.pending[i].1))?;
                let (name, id, row) = self.pending.remove(idx);
                self.base.push(("Pay".to_string(), row));
                self.base_ids.insert(id);
                Some(ChainEvent::TxMined {
                    mined: vec![name],
                    base: self.base.clone(),
                    pending: self.named_pending(),
                })
            }
            Op::Reorg => Some(ChainEvent::Reorg {
                depth: 1,
                base: self.base.clone(),
                pending: self.named_pending(),
            }),
        }
    }
}

fn materialize(ops: &[Op]) -> Vec<ChainEvent> {
    let mut model = Model::default();
    ops.iter().filter_map(|&op| model.step(op)).collect()
}

/// Unlimited budgets and a generous envelope: verdicts depend on the
/// data alone, never on wall-clock, so every flavour must agree exactly.
fn config(shared_cache: bool, round_threads: usize) -> ServeConfig {
    ServeConfig {
        envelope: Duration::from_secs(30),
        shared_cache,
        round_threads,
        ..ServeConfig::default()
    }
}

/// Builds a core, subscribes the given (tenant, text) list, drives it
/// through `events` (a round after each), and returns every
/// subscription's verdict sequence: one vector of per-round labels per
/// subscription, in subscription order.
fn drive(
    subs: &[(String, String)],
    events: &[ChainEvent],
    shared_cache: bool,
    round_threads: usize,
) -> (Vec<Vec<&'static str>>, u64) {
    let (cat, cs) = schema();
    let mut core = ServerCore::new_in_memory(cat, cs, config(shared_cache, round_threads));
    let ids: Vec<u64> = subs
        .iter()
        .enumerate()
        .map(|(i, (tenant, text))| {
            core.subscribe(tenant, &format!("s{i}"), text, 1 + (i % 3) as u32, false)
                .expect("subscribe")
        })
        .collect();
    let mut verdicts: Vec<Vec<&'static str>> = vec![Vec::new(); ids.len()];
    for event in events {
        core.ingest(event).expect("ingest");
        let report = core.run_round();
        assert_eq!(report.refusals, 0, "generous envelope must refuse nothing");
        for (vi, id) in ids.iter().enumerate() {
            verdicts[vi].push(core.poll(*id).expect("poll").verdict);
        }
    }
    let hits = core.stats().cache_hits;
    (verdicts, hits)
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24,
        ..ProptestConfig::default()
    })]

    /// Shared cache on/off and 1-vs-many workers all yield identical
    /// verdict sequences for every subscription, even when tenants hold
    /// alpha-renamed duplicates of the same shapes.
    #[test]
    fn cache_and_thread_count_never_change_verdicts(
        ops in prop::collection::vec(op_strategy(), 1..14),
        picks in prop::collection::vec((0..3usize, 0..4usize), 4..10),
    ) {
        let events = materialize(&ops);
        if events.is_empty() {
            return Ok(());
        }
        // Each pick is (shape, tenant); the variable alphabet is salted
        // by position, so equal shapes land as alpha-renamed duplicates
        // across tenants.
        let subs: Vec<(String, String)> = picks
            .iter()
            .enumerate()
            .map(|(i, &(shape, tenant))| (format!("tenant-{tenant}"), render_shape(shape, i)))
            .collect();

        let (baseline, _) = drive(&subs, &events, false, 1);
        let (cached, hits) = drive(&subs, &events, true, 1);
        let (wide, _) = drive(&subs, &events, false, 4);
        let (cached_wide, _) = drive(&subs, &events, true, 4);

        prop_assert_eq!(&cached, &baseline, "shared cache changed a verdict");
        prop_assert_eq!(&wide, &baseline, "worker count changed a verdict");
        prop_assert_eq!(&cached_wide, &baseline, "cache+workers changed a verdict");

        // With at least one duplicated shape the cached run must share
        // work (hits are attributed per subscription as rounds execute).
        let mut shapes: Vec<usize> = picks.iter().map(|&(s, _)| s).collect();
        shapes.sort_unstable();
        shapes.dedup();
        if shapes.len() < picks.len() {
            prop_assert!(hits > 0, "duplicate shapes produced no cache hits");
        }
    }
}

/// A pinned, deterministic spot-check of the same property — useful as a
/// fast signal when the proptest shrinks something large.
#[test]
fn pinned_duplicate_shapes_agree_across_flavours() {
    let events = materialize(&[
        Op::Arrive { id: 1 },
        Op::Arrive { id: 1 },
        Op::Arrive { id: 2 },
        Op::Mine { pick: 0 },
        Op::Reorg,
    ]);
    let subs: Vec<(String, String)> = (0..6)
        .map(|i| (format!("tenant-{}", i % 3), render_shape(i % 2, i)))
        .collect();
    let (baseline, _) = drive(&subs, &events, false, 1);
    let (cached, hits) = drive(&subs, &events, true, 1);
    let (wide, _) = drive(&subs, &events, true, 3);
    assert_eq!(cached, baseline);
    assert_eq!(wide, baseline);
    assert!(hits > 0, "six subs over two shapes must share enumerations");
}
