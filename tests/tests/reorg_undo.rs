//! Reorg undo/redo inversion: journaled inverse deltas exactly invert
//! mined blocks.
//!
//! Over random solver-matrix instances, the suite mines `k` delta-form
//! blocks on top of a churned mempool and then reorgs `d ≤ k` of them
//! away via `ReorgDelta` — the path that replays journaled inverse
//! deltas instead of reconciling to a snapshot. Three identities are
//! pinned:
//!
//! 1. **Undo**: the reorged session equals a session that only ever saw
//!    the canonical history (the same stream minus the last `d` blocks) —
//!    same rows, same pending order, same steady-state structures, same
//!    verdict.
//! 2. **Redo**: the reorg's own undo record re-applies the disconnected
//!    blocks — a depth-1 `ReorgDelta` right after the reorg restores the
//!    full-history state exactly.
//! 3. **Crash**: a session that crashes mid-reorg — its journal torn in
//!    the middle of the reorg's trailing undo (`U`) record, and again
//!    with the whole reorg lost — recovers by replay (plus re-applying
//!    the lost tail) into the same reorged state.

mod common;

use bcdb_monitor::{
    drop_tail_records, tear_last_record, ChainEvent, EpochApply, Journal, MonitorConfig,
    MonitorSession,
};
use bcdb_query::parse_denial_constraint;
use bcdb_storage::{tuple, Tuple, Value};
use common::instances::{generous_budget, instance_strategy, named_export, Instance};
use proptest::prelude::*;
use std::path::PathBuf;

type NamedRows = Vec<(String, Tuple)>;
type NamedPending = Vec<(String, Vec<(String, Tuple)>)>;

fn scratch(name: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../target/monitor-scratch");
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    let path = dir.join(format!("{name}.journal"));
    let _ = std::fs::remove_file(&path);
    path
}

fn config() -> MonitorConfig {
    MonitorConfig {
        budget: generous_budget(),
        epoch_apply: EpochApply::Incremental,
        ..MonitorConfig::default()
    }
}

/// Mempool churn before the blocks: arrivals and evictions.
#[derive(Clone, Debug)]
enum Churn {
    Arrive { rows: Vec<Vec<i64>>, xs: Vec<i64> },
    Evict { pick: usize },
}

fn churn_strategy(arity: usize) -> impl Strategy<Value = Churn> {
    let row = move || prop::collection::vec(0..4i64, arity..=arity);
    prop_oneof![
        (
            prop::collection::vec(row(), 0..3),
            prop::collection::vec(0..4i64, 0..2),
        )
            .prop_filter("transactions must be non-empty", |(r, s)| {
                !r.is_empty() || !s.is_empty()
            })
            .prop_map(|(rows, xs)| Churn::Arrive { rows, xs }),
        (0..8usize).prop_map(|pick| Churn::Evict { pick }),
    ]
}

/// The chain the sessions observe, just deep enough to emit valid events.
struct Model {
    arity: usize,
    base: NamedRows,
    pending: NamedPending,
    next: usize,
}

impl Model {
    fn churn(&mut self, c: &Churn) -> Option<ChainEvent> {
        match c {
            Churn::Arrive { rows, xs } => {
                let name = format!("a{}", self.next);
                self.next += 1;
                let tuples: Vec<(String, Tuple)> = rows
                    .iter()
                    .map(|row| {
                        (
                            "R".to_string(),
                            Tuple::new(row.iter().map(|&v| Value::Int(v))),
                        )
                    })
                    .chain(xs.iter().map(|&x| ("S".to_string(), tuple![x])))
                    .collect();
                self.pending.push((name.clone(), tuples.clone()));
                Some(ChainEvent::TxArrived { name, tuples })
            }
            Churn::Evict { pick } => {
                if self.pending.is_empty() {
                    return None;
                }
                let (name, _) = self.pending.remove(pick % self.pending.len());
                Some(ChainEvent::TxEvicted { name })
            }
        }
    }

    /// Mines a non-empty subset of the pending set as a delta-form block.
    fn mine(&mut self, mask: u64, coinbase: bool) -> Option<ChainEvent> {
        let n = self.pending.len();
        if n == 0 {
            return None;
        }
        let sel = if n >= 63 { mask } else { mask % ((1 << n) - 1) + 1 };
        let mined: Vec<usize> = (0..n).filter(|i| sel >> i & 1 == 1).collect();
        if mined.is_empty() {
            return None;
        }
        let names: Vec<String> = mined.iter().map(|&i| self.pending[i].0.clone()).collect();
        let mut appended: NamedRows = mined
            .iter()
            .flat_map(|&i| self.pending[i].1.iter().cloned())
            .collect();
        if coinbase {
            let row: Vec<i64> = (0..self.arity).map(|_| 100 + self.next as i64).collect();
            self.next += 1;
            appended.push((
                "R".to_string(),
                Tuple::new(row.iter().map(|&v| Value::Int(v))),
            ));
        }
        self.base.extend(appended.iter().cloned());
        let mut i = 0;
        self.pending.retain(|_| {
            let keep = !mined.contains(&i);
            i += 1;
            keep
        });
        Some(ChainEvent::TxMinedDelta {
            mined: names,
            appended,
        })
    }
}

/// Everything observable about a session except the epoch counter (the
/// compared sessions advance different event counts by construction).
fn fingerprint(s: &mut MonitorSession, dc_idx: usize) -> Vec<String> {
    let mut out = Vec::new();
    out.extend(s.pending_names().iter().map(|n| n.to_string()));
    let db = s.bcdb().database();
    for (rid, schema) in db.catalog().iter() {
        for (_, row) in db.relation(rid).scan_all() {
            out.push(format!("{} {:?} {:?}", schema.name(), row.tuple, row.source));
        }
    }
    let pre = s.precomputed();
    out.push(format!("viable {:?}", pre.viable));
    out.push(format!("includable {:?}", pre.includable));
    let n = pre.fd_graph.node_count();
    let mut uf = pre.ind_uf.clone();
    for a in 0..n {
        for b in a + 1..n {
            if pre.fd_graph.has_edge(a, b) {
                out.push(format!("edge {a} {b}"));
            }
            if uf.connected(a, b) {
                out.push(format!("ind {a} {b}"));
            }
        }
    }
    let v = s.recheck(dc_idx).verdict;
    out.push(format!(
        "verdict {}",
        match v {
            bcdb_core::Verdict::Holds => "holds",
            bcdb_core::Verdict::Violated(_) => "violated",
            bcdb_core::Verdict::Unknown(_) => "unknown",
        }
    ));
    out
}

/// A fresh session with the instance's constraint registered, fed the
/// given event prefix.
fn session_over(
    inst: &Instance,
    cat: &bcdb_storage::Catalog,
    cs: &bcdb_storage::ConstraintSet,
    events: &[ChainEvent],
) -> (MonitorSession, usize) {
    let mut s = MonitorSession::new(cat.clone(), cs.clone());
    s.set_config(config());
    let dc = parse_denial_constraint(&inst.query, s.bcdb().database().catalog()).unwrap();
    let idx = s.register("q", dc);
    for e in events {
        s.apply(e).unwrap();
    }
    (s, idx)
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24,
        ..ProptestConfig::default()
    })]

    /// Mine k blocks, reorg d ≤ k: the session equals one that only saw
    /// the canonical history; a follow-up depth-1 reorg redoes the
    /// disconnected blocks; crashing mid-reorg and recovering lands in
    /// the same state.
    #[test]
    fn reorg_depth_d_inverts_the_last_d_blocks(
        (inst, churn, masks) in instance_strategy().prop_flat_map(|inst| {
            let arity = inst.arity;
            (
                Just(inst),
                prop::collection::vec(churn_strategy(arity), 0..6),
                prop::collection::vec((0..u64::MAX, prop::bool::ANY), 1..5),
            )
        }),
        d_sel in 0..16usize,
        keep in 0..6u64,
        case in 0..1_000_000u64,
    ) {
        let Some((cat, cs, base, pending)) = named_export(&inst) else {
            return Ok(());
        };
        let mut model = Model { arity: inst.arity, base, pending, next: 0 };

        // The shared stream: bootstrap resync, mempool churn, k blocks.
        let mut events = vec![ChainEvent::Reorg {
            depth: 0,
            base: model.base.clone(),
            pending: model.pending.clone(),
        }];
        for c in &churn {
            events.extend(model.churn(c));
        }
        let prefix_len = events.len();
        for (mask, coinbase) in &masks {
            events.extend(model.mine(*mask, *coinbase));
        }
        let k = events.len() - prefix_len;
        if k == 0 {
            return Ok(());
        }
        let d = 1 + d_sel % k;

        // Full history, then the reorg.
        let (mut full, full_dc) = session_over(&inst, &cat, &cs, &events);
        let want_full = fingerprint(&mut full, full_dc);
        full.apply(&ChainEvent::ReorgDelta { depth: d as u64 }).unwrap();
        let got_reorged = fingerprint(&mut full, full_dc);

        // 1. Undo: identical to the canonical-history-only session.
        let canonical = &events[..events.len() - d];
        let (mut canon, canon_dc) = session_over(&inst, &cat, &cs, canonical);
        let want_reorged = fingerprint(&mut canon, canon_dc);
        prop_assert_eq!(&got_reorged, &want_reorged, "undo diverged from canonical history");

        // 2. Redo: the reorg's own undo record reconnects the blocks.
        full.apply(&ChainEvent::ReorgDelta { depth: 1 }).unwrap();
        let got_redone = fingerprint(&mut full, full_dc);
        prop_assert_eq!(&got_redone, &want_full, "redo diverged from full history");

        // 3. Crash drill: journal the stream and the reorg, then tear the
        // journal inside the reorg's trailing undo record — the crash
        // window where the reorg applied but its own inverse delta was
        // still being written.
        let path = scratch(&format!("reorg-undo-{case}"));
        {
            let mut j = MonitorSession::new(cat.clone(), cs.clone());
            j.set_config(config());
            j.attach_journal(Journal::create(&path).unwrap());
            for e in &events {
                j.apply(e).unwrap();
            }
            j.apply(&ChainEvent::ReorgDelta { depth: d as u64 }).unwrap();
        }
        tear_last_record(&path, keep).unwrap();
        let rec = Journal::recover(&path).unwrap();
        // The torn record is the reorg's undo line; every event survived.
        let survived = rec.records.iter().filter(|r| r.event().is_some()).count();
        prop_assert_eq!(survived, events.len() + 1);
        let mut replayed =
            MonitorSession::replay_with(cat.clone(), cs.clone(), &rec.records, config()).unwrap();
        let dc = parse_denial_constraint(&inst.query, replayed.bcdb().database().catalog()).unwrap();
        let rp_dc = replayed.register("q", dc);
        prop_assert_eq!(
            &fingerprint(&mut replayed, rp_dc),
            &want_reorged,
            "recovery after a torn undo record diverged"
        );

        // Lose the reorg entirely (its event and undo records), recover,
        // and re-apply it live: same destination.
        drop_tail_records(&path, 2).unwrap();
        let rec = Journal::recover(&path).unwrap();
        let survived = rec.records.iter().filter(|r| r.event().is_some()).count();
        prop_assert_eq!(survived, events.len());
        let mut replayed =
            MonitorSession::replay_with(cat.clone(), cs.clone(), &rec.records, config()).unwrap();
        replayed.apply(&ChainEvent::ReorgDelta { depth: d as u64 }).unwrap();
        let dc = parse_denial_constraint(&inst.query, replayed.bcdb().database().catalog()).unwrap();
        let rp_dc = replayed.register("q", dc);
        prop_assert_eq!(
            &fingerprint(&mut replayed, rp_dc),
            &want_reorged,
            "recovery after a lost reorg diverged"
        );
        let _ = std::fs::remove_file(&path);
    }
}
