//! Property tests: Poss(D) membership recognition agrees with exhaustive
//! enumeration on randomized blockchain databases. (Cross-algorithm
//! agreement lives in the N-way differential harness, `solver_matrix.rs`.)

use bcdb_core::{is_possible_world, BlockchainDb, Precomputed};
use bcdb_storage::{
    tuple, Catalog, ConstraintSet, Fd, Ind, RelationSchema, Tuple, TxId, ValueType,
};
use proptest::prelude::*;

/// Constraint regimes swept by the generator.
#[derive(Clone, Copy, Debug)]
enum Regime {
    None,
    KeyOnly,
    IndOnly,
    KeyAndInd,
}

/// One random transaction: tuples for R and for S.
type TxSpec = (Vec<(i64, i64)>, Vec<i64>);

/// R(a, b) and S(x); key R[a] -> all; IND S[x] ⊆ R[a].
fn build_db(
    regime: Regime,
    base_r: &[(i64, i64)],
    base_s: &[i64],
    txs: &[TxSpec],
) -> Option<BlockchainDb> {
    let mut cat = Catalog::new();
    cat.add(RelationSchema::new("R", [("a", ValueType::Int), ("b", ValueType::Int)]).unwrap())
        .unwrap();
    cat.add(RelationSchema::new("S", [("x", ValueType::Int)]).unwrap())
        .unwrap();
    let mut cs = ConstraintSet::new();
    let (key, ind) = match regime {
        Regime::None => (false, false),
        Regime::KeyOnly => (true, false),
        Regime::IndOnly => (false, true),
        Regime::KeyAndInd => (true, true),
    };
    if key {
        cs.add_fd(Fd::named_key(&cat, "R", &["a"]).unwrap());
    }
    if ind {
        cs.add_ind(Ind::named(&cat, "S", &["x"], "R", &["a"]).unwrap());
    }
    let mut db = BlockchainDb::new(cat, cs);
    let r = db.database().catalog().resolve("R").unwrap();
    let s = db.database().catalog().resolve("S").unwrap();
    // Repair the random base so R |= I holds (the definition of a
    // blockchain database): keep the first tuple per key, and drop S rows
    // dangling under the IND.
    let mut seen_keys = std::collections::HashSet::new();
    let mut kept_keys = std::collections::HashSet::new();
    for &(a, b) in base_r {
        if key && !seen_keys.insert(a) {
            continue;
        }
        kept_keys.insert(a);
        db.insert_current(r, tuple![a, b]).unwrap();
    }
    for &x in base_s {
        if ind && !kept_keys.contains(&x) {
            continue;
        }
        db.insert_current(s, tuple![x]).unwrap();
    }
    db.check_current_state()
        .expect("repaired base is consistent");
    for (i, (rt, st)) in txs.iter().enumerate() {
        let tuples: Vec<(bcdb_storage::RelationId, Tuple)> = rt
            .iter()
            .map(|&(a, b)| (r, tuple![a, b]))
            .chain(st.iter().map(|&x| (s, tuple![x])))
            .collect();
        if tuples.is_empty() {
            return None; // empty transactions are uninteresting
        }
        db.add_transaction(format!("T{i}"), tuples).unwrap();
    }
    Some(db)
}

fn regime_strategy() -> impl Strategy<Value = Regime> {
    prop_oneof![
        Just(Regime::None),
        Just(Regime::KeyOnly),
        Just(Regime::IndOnly),
        Just(Regime::KeyAndInd),
    ]
}

fn value() -> impl Strategy<Value = i64> {
    0..4i64
}

fn tx_strategy() -> impl Strategy<Value = TxSpec> {
    (
        prop::collection::vec((value(), value()), 0..3),
        prop::collection::vec(value(), 0..2),
    )
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 96,
        ..ProptestConfig::default()
    })]

    /// Poss(D) membership: every enumerated world passes Proposition 1
    /// recognition, and recognition rejects any superset that the
    /// enumeration did not produce.
    #[test]
    fn possible_world_recognition_matches_enumeration(
        regime in regime_strategy(),
        base_r in prop::collection::vec((value(), value()), 0..3),
        txs in prop::collection::vec(tx_strategy(), 1..5),
    ) {
        let Some(db) = build_db(regime, &base_r, &[], &txs) else { return Ok(()) };
        let pre = Precomputed::build(&db);
        let worlds = bcdb_core::possible_worlds(&db, &pre);
        let world_sets: std::collections::HashSet<Vec<TxId>> =
            worlds.iter().map(|w| w.txs().collect()).collect();
        // Enumerated ⇒ recognized.
        for set in &world_sets {
            prop_assert!(is_possible_world(&db, &pre, set));
        }
        // Recognized ⇒ enumerated, over all subsets (≤ 2^4).
        let n = db.pending_count();
        for bits in 0u32..(1 << n) {
            let set: Vec<TxId> = (0..n)
                .filter(|i| bits & (1 << i) != 0)
                .map(|i| TxId(i as u32))
                .collect();
            let recognized = is_possible_world(&db, &pre, &set);
            prop_assert_eq!(recognized, world_sets.contains(&set),
                "subset {:?} under {:?}", set, regime);
        }
    }
}
