//! Metamorphic properties of DCSat: transformations of the input that must
//! not change — or may only tighten — the verdict.
//!
//! 1. Reordering: permuting the (repaired) base rows, the tuples inside a
//!    pending transaction, and the transactions themselves never changes
//!    the verdict — Poss(D) is a set, not a sequence.
//! 2. Variable renaming: consistently renaming query variables yields an
//!    α-equivalent constraint with an identical verdict.
//! 3. Union-then-split: merging two pending transactions into one shrinks
//!    Poss(D) (worlds must now take both or neither), so `Holds` is
//!    preserved one way; splitting back to the original transactions
//!    restores the exact verdict.
//! 4. Witness replay: every `Violated` verdict carries a witness world that
//!    is a genuine possible world and genuinely satisfies the query.

mod common;

use bcdb_core::{
    is_possible_world, BlockchainDb, DcSatOptions, Precomputed, PreparedConstraint, Solver,
    Verdict,
};
use bcdb_query::parse_denial_constraint;
use bcdb_storage::TxId;
use common::instances::{build_db, generous_budget, instance_strategy, Instance};
use proptest::prelude::*;
use proptest::test_runner::TestRng;

fn shuffle<T>(v: &mut [T], g: &mut TestRng) {
    for i in (1..v.len()).rev() {
        v.swap(i, g.below(i as u64 + 1) as usize);
    }
}

/// The base rows that survive `build_db`'s repair, in insertion order.
fn repaired_base(inst: &Instance) -> (Vec<Vec<i64>>, Vec<i64>) {
    let mut seen = std::collections::HashSet::new();
    let mut kept = std::collections::HashSet::new();
    let mut base_r = Vec::new();
    for row in &inst.base_r {
        if inst.key && !seen.insert(row[0]) {
            continue;
        }
        kept.insert(row[0]);
        base_r.push(row.clone());
    }
    let base_s = inst
        .base_s
        .iter()
        .copied()
        .filter(|x| !inst.ind || kept.contains(x))
        .collect();
    (base_r, base_s)
}

/// Builds the instance's database with every ordering degree of freedom
/// shuffled: base rows, tuples within each transaction, transaction order.
/// The repaired base is computed first so the shuffle cannot change which
/// duplicate-key row survives.
fn build_reordered(inst: &Instance, seed: u64) -> Option<BlockchainDb> {
    let mut g = TestRng::new(seed);
    let (mut base_r, mut base_s) = repaired_base(inst);
    shuffle(&mut base_r, &mut g);
    shuffle(&mut base_s, &mut g);
    let mut reordered = Instance {
        base_r,
        base_s,
        key: false, // base is already repaired; a reordered insert must not re-repair
        ind: false,
        ..inst.clone()
    };
    for (rt, st) in &mut reordered.txs {
        shuffle(rt, &mut g);
        shuffle(st, &mut g);
    }
    shuffle(&mut reordered.txs, &mut g);
    // Restore the integrity constraints themselves (only the repair had to
    // be disabled, and it is a no-op on an already-repaired base).
    let db = build_db(&Instance {
        key: inst.key,
        ind: inst.ind,
        ..reordered
    })?;
    Some(db)
}

/// Token-aware renaming of the generator's variable names; leaves relation
/// and aggregate-function names untouched.
fn rename_vars(query: &str) -> String {
    let mut out = String::with_capacity(query.len() + 16);
    let mut chars = query.chars().peekable();
    while let Some(c) = chars.next() {
        if c.is_ascii_alphabetic() || c == '_' {
            let mut ident = String::new();
            ident.push(c);
            while let Some(&n) = chars.peek() {
                if n.is_ascii_alphanumeric() || n == '_' {
                    ident.push(n);
                    chars.next();
                } else {
                    break;
                }
            }
            out.push_str(match ident.as_str() {
                "x" => "alpha",
                "y" => "beta",
                "z" => "gamma",
                "w" => "delta",
                other => other,
            });
        } else {
            out.push(c);
        }
    }
    out
}

/// The instance's transactions with pending transactions `i` and `j`
/// merged into one.
fn union_txs(inst: &Instance, i: usize, j: usize) -> Vec<(Vec<Vec<i64>>, Vec<i64>)> {
    let mut txs = Vec::new();
    let (lo, hi) = (i.min(j), i.max(j));
    for (k, tx) in inst.txs.iter().enumerate() {
        if k == hi {
            continue;
        }
        let mut tx = tx.clone();
        if k == lo {
            tx.0.extend(inst.txs[hi].0.iter().cloned());
            tx.1.extend(inst.txs[hi].1.iter().cloned());
        }
        txs.push(tx);
    }
    txs
}

macro_rules! assert_valid_witness {
    ($solver:expr, $dc:expr, $w:expr, $path:expr) => {{
        let db = $solver.db_mut();
        let pre = Precomputed::build(db);
        let txids: Vec<TxId> = $w.txs().collect();
        prop_assert!(
            is_possible_world(db, &pre, &txids),
            "{} produced a witness that is not a possible world",
            $path
        );
        let pc = PreparedConstraint::prepare(db.database_mut(), $dc);
        prop_assert!(
            pc.holds(db.database(), $w),
            "{} produced a witness world that does not satisfy the query",
            $path
        );
    }};
}

/// One ungoverned auto-routed check on a throwaway session (the
/// metamorphic properties compare verdicts across *different* databases,
/// so each gets its own session).
fn check_auto(db: BlockchainDb, dc: &bcdb_query::DenialConstraint) -> bcdb_core::DcSatOutcome {
    Solver::builder(db).build().check_ungoverned(dc).unwrap()
}

proptest! {
    /// Poss(D) is order-independent: shuffling base rows, tuples within a
    /// transaction, and the transactions themselves preserves the verdict.
    #[test]
    fn verdict_is_invariant_under_reordering(
        inst in instance_strategy(),
        shuffle_seed in 0..u64::MAX,
    ) {
        let Some(db) = build_db(&inst) else { return Ok(()) };
        let Some(db2) = build_reordered(&inst, shuffle_seed) else {
            panic!("reordering must not invalidate an instance");
        };
        let dc = parse_denial_constraint(&inst.query, db.database().catalog()).unwrap();
        let a = check_auto(db, &dc);
        let b = check_auto(db2, &dc);
        prop_assert_eq!(a.satisfied, b.satisfied,
            "verdict changed under reordering (seed {}) on {}", shuffle_seed, &inst.query);
    }

    /// α-equivalence: a consistent variable renaming yields the same
    /// verdict on the same database.
    #[test]
    fn verdict_is_invariant_under_variable_renaming(inst in instance_strategy()) {
        let Some(db) = build_db(&inst) else { return Ok(()) };
        let renamed = rename_vars(&inst.query);
        let dc = parse_denial_constraint(&inst.query, db.database().catalog()).unwrap();
        let dc_renamed = match parse_denial_constraint(&renamed, db.database().catalog()) {
            Ok(dc) => dc,
            Err(e) => panic!("renamed query '{renamed}' must stay parseable: {e}"),
        };
        let mut solver = Solver::builder(db).build();
        let a = solver.check_ungoverned(&dc).unwrap();
        let b = solver.check_ungoverned(&dc_renamed).unwrap();
        prop_assert_eq!(a.satisfied, b.satisfied,
            "verdict changed under renaming: {} vs {}", &inst.query, &renamed);
    }

    /// Merging two pending transactions restricts Poss(D), so a constraint
    /// that holds keeps holding; splitting them apart again restores the
    /// original verdict exactly.
    #[test]
    fn union_preserves_holds_and_split_restores_the_verdict(
        inst in instance_strategy(),
        pick in (0..64u64, 0..64u64),
    ) {
        if inst.txs.len() < 2 {
            return Ok(());
        }
        let i = (pick.0 as usize) % inst.txs.len();
        let mut j = (pick.1 as usize) % inst.txs.len();
        if i == j {
            j = (j + 1) % inst.txs.len();
        }
        let Some(db) = build_db(&inst) else { return Ok(()) };
        let dc = parse_denial_constraint(&inst.query, db.database().catalog()).unwrap();
        let original = check_auto(db, &dc);

        let merged_inst = Instance { txs: union_txs(&inst, i, j), ..inst.clone() };
        let merged_db = build_db(&merged_inst).expect("merged transactions stay non-empty");
        let merged = check_auto(merged_db, &dc);
        if original.satisfied {
            prop_assert!(merged.satisfied,
                "unioning T{} and T{} manufactured a violation of {}", i, j, &inst.query);
        }

        // Split back apart: the exact original verdict returns.
        let split_db = build_db(&inst).unwrap();
        let split = check_auto(split_db, &dc);
        prop_assert_eq!(split.satisfied, original.satisfied,
            "union-then-split failed to round-trip on {}", &inst.query);
    }

    /// Every `Violated` verdict replays: its witness is a possible world on
    /// which the query genuinely fires.
    #[test]
    fn violated_verdicts_carry_replayable_witnesses(inst in instance_strategy()) {
        let Some(db) = build_db(&inst) else { return Ok(()) };
        let dc = parse_denial_constraint(&inst.query, db.database().catalog()).unwrap();
        let mut solver = Solver::builder(db).build();
        let plain = solver.check_ungoverned(&dc).unwrap();
        if !plain.satisfied {
            let w = plain.witness.as_ref()
                .expect("a violation found by the router carries a witness");
            assert_valid_witness!(&mut solver, &dc, w, "auto");
        }
        solver.set_options(DcSatOptions::default().with_budget(generous_budget()));
        let governed = solver.check(&dc).unwrap();
        if let Verdict::Violated(w) = &governed.verdict {
            assert_valid_witness!(&mut solver, &dc, w, "governed");
        }
    }
}

/// A deterministic anchor on the paper's Figure 2 running example. The
/// double-spend constraint holds (T1 and T5 conflict, so no possible world
/// takes both) and stays held under α-renaming; a payment-to-U5Pk query is
/// violated in any world taking T1, and its witness replays.
#[test]
fn figure2_verdicts_are_stable_under_renaming_and_witnesses_replay() {
    let (db, _out, _inp) = common::figure2();
    let mut solver = Solver::builder(db).build();
    // Double-spend safety: invariant under renaming, and it holds.
    for text in [
        "q() <- TxIn(pt, ps, pk1, a1, n1, s1), TxIn(pt, ps, pk2, a2, n2, s2), n1 != n2",
        "q() <- TxIn(x, y, pkx, ax, nx, sx), TxIn(x, y, pky, ay, ny, sy), nx != ny",
    ] {
        let dc = parse_denial_constraint(text, solver.db().database().catalog()).unwrap();
        let out = solver.check_ungoverned(&dc).unwrap();
        assert!(
            out.satisfied,
            "conflicting spends never coexist in a possible world, so the \
             double-spend constraint must hold"
        );
    }
    // A violated query: some world applies T1, paying U5Pk.
    for text in [
        "q() <- TxOut(t, s, 'U5Pk', a)",
        "q() <- TxOut(renamed_t, renamed_s, 'U5Pk', renamed_a)",
    ] {
        let dc = parse_denial_constraint(text, solver.db().database().catalog()).unwrap();
        let out = solver.check_ungoverned(&dc).unwrap();
        assert!(!out.satisfied, "T1 pays U5Pk in some possible world");
        let w = out.witness.as_ref().expect("violations carry a witness").clone();
        let db = solver.db_mut();
        let pre = Precomputed::build(db);
        let txids: Vec<TxId> = w.txs().collect();
        assert!(is_possible_world(db, &pre, &txids));
        let pc = PreparedConstraint::prepare(db.database_mut(), &dc);
        assert!(pc.holds(db.database(), &w));
    }
}
