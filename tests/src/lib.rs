//! Test-only crate; see `tests/` directory.
