//! Resource governance for the DCSat solver stack.
//!
//! DCSat is Σ₂ᵖ-hard in general (Cohen, Rosenthal, Zohar; ICDE 2020), so a
//! production deployment cannot promise an answer within any fixed time:
//! clique enumeration over the conflict graph and possible-world
//! materialization are both worst-case exponential. This crate provides the
//! shared [`Budget`] that every hot loop in the stack checks — clique
//! enumeration in `bcdb-graph`, world-masked evaluation in `bcdb-query`,
//! world enumeration and the DCSat drivers in `bcdb-core` — so that a
//! caller can bound wall-clock time and work, cancel cooperatively from
//! another thread, and still receive a *sound* partial answer
//! (`Unknown(reason)` rather than a guess) when the budget runs out.
//!
//! Design notes:
//! - A [`Budget`] is shared by reference across worker threads; all
//!   counters are atomics, so parallel workers draw from one pool.
//! - Deadline checks are amortized: [`Budget::tick`] reads the clock only
//!   every [`DEADLINE_CHECK_INTERVAL`] calls, keeping the per-iteration
//!   cost of governance to one relaxed atomic increment.
//! - [`Budget::unlimited`] is `const` and check-free on every limit, so
//!   ungoverned callers pay (almost) nothing.

pub mod retry;

pub use retry::RetryPolicy;

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Why a governed computation stopped early.
///
/// Carried inside `Verdict::Unknown` (in `bcdb-core`) together with the
/// partial statistics accumulated before exhaustion.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ExhaustionReason {
    /// The wall-clock deadline passed.
    DeadlineExceeded {
        /// Time actually elapsed when the deadline check fired.
        elapsed: Duration,
    },
    /// More maximal cliques were enumerated than the budget allows.
    CliqueLimit(u64),
    /// More candidate worlds were materialized than the budget allows.
    WorldLimit(u64),
    /// More tuples were examined during evaluation than the budget allows.
    TupleLimit(u64),
    /// [`Budget::cancel`] was called (e.g. by a supervising thread).
    Cancelled,
    /// A parallel worker panicked; its component is unresolved.
    WorkerPanicked {
        /// Index of the poisoned component (deterministic: lowest wins).
        component: usize,
        /// Best-effort panic message.
        message: String,
    },
}

impl std::fmt::Display for ExhaustionReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExhaustionReason::DeadlineExceeded { elapsed } => {
                write!(f, "deadline exceeded after {elapsed:?}")
            }
            ExhaustionReason::CliqueLimit(n) => write!(f, "clique budget exhausted ({n})"),
            ExhaustionReason::WorldLimit(n) => write!(f, "world budget exhausted ({n})"),
            ExhaustionReason::TupleLimit(n) => write!(f, "tuple budget exhausted ({n})"),
            ExhaustionReason::Cancelled => write!(f, "cancelled"),
            ExhaustionReason::WorkerPanicked { component, message } => {
                write!(f, "worker panicked on component {component}: {message}")
            }
        }
    }
}

/// How often [`Budget::tick`] actually reads the clock. Power of two so the
/// amortization test is a mask.
pub const DEADLINE_CHECK_INTERVAL: u64 = 256;

/// Declarative limits from which a live [`Budget`] is started.
///
/// This is the `Copy` value that travels through option structs, CLI flags,
/// and bench configs; `Budget::start` captures the wall clock.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BudgetSpec {
    /// Wall-clock limit for the whole computation.
    pub timeout: Option<Duration>,
    /// Maximum maximal cliques enumerated across all components/threads.
    pub max_cliques: Option<u64>,
    /// Maximum candidate worlds materialized.
    pub max_worlds: Option<u64>,
    /// Maximum tuples examined during query evaluation.
    pub max_tuples: Option<u64>,
}

impl BudgetSpec {
    /// No limits at all.
    pub const UNLIMITED: BudgetSpec = BudgetSpec {
        timeout: None,
        max_cliques: None,
        max_worlds: None,
        max_tuples: None,
    };

    /// True if every limit is absent (a started budget can never exhaust,
    /// though it can still be cancelled).
    pub fn is_unlimited(&self) -> bool {
        self.timeout.is_none()
            && self.max_cliques.is_none()
            && self.max_worlds.is_none()
            && self.max_tuples.is_none()
    }

    /// Starts the clock and returns a live budget.
    pub fn start(self) -> Budget {
        Budget {
            deadline: self.timeout.map(|t| Instant::now() + t),
            started: Some(Instant::now()),
            max_cliques: self.max_cliques.unwrap_or(u64::MAX),
            max_worlds: self.max_worlds.unwrap_or(u64::MAX),
            max_tuples: self.max_tuples.unwrap_or(u64::MAX),
            cliques: AtomicU64::new(0),
            worlds: AtomicU64::new(0),
            tuples: AtomicU64::new(0),
            ticks: AtomicU64::new(0),
            cancelled: AtomicBool::new(false),
        }
    }
}

/// A live, shared resource budget. See the crate docs.
///
/// All mutation is interior and atomic: hand `&Budget` to as many threads
/// as needed and they draw from the same pool.
#[derive(Debug)]
pub struct Budget {
    deadline: Option<Instant>,
    started: Option<Instant>,
    max_cliques: u64,
    max_worlds: u64,
    max_tuples: u64,
    cliques: AtomicU64,
    worlds: AtomicU64,
    tuples: AtomicU64,
    ticks: AtomicU64,
    cancelled: AtomicBool,
}

impl Budget {
    /// A check-free budget: every charge succeeds, `tick` never reads the
    /// clock. `const` so it can back a `static` for ungoverned call paths.
    pub const fn unlimited() -> Budget {
        Budget {
            deadline: None,
            started: None,
            max_cliques: u64::MAX,
            max_worlds: u64::MAX,
            max_tuples: u64::MAX,
            cliques: AtomicU64::new(0),
            worlds: AtomicU64::new(0),
            tuples: AtomicU64::new(0),
            ticks: AtomicU64::new(0),
            cancelled: AtomicBool::new(false),
        }
    }

    /// True when no limit is set and cancellation is impossible to observe
    /// cheaply wrong: used by callers to skip governed code paths.
    pub fn is_unlimited(&self) -> bool {
        self.deadline.is_none()
            && self.max_cliques == u64::MAX
            && self.max_worlds == u64::MAX
            && self.max_tuples == u64::MAX
    }

    /// Requests cooperative cancellation; hot loops observe it at their
    /// next `tick`/charge.
    pub fn cancel(&self) {
        self.cancelled.store(true, Ordering::Relaxed);
    }

    /// Whether `cancel` has been called.
    pub fn is_cancelled(&self) -> bool {
        self.cancelled.load(Ordering::Relaxed)
    }

    /// Time elapsed since the budget was started (zero for `unlimited`).
    pub fn elapsed(&self) -> Duration {
        self.started.map(|s| s.elapsed()).unwrap_or(Duration::ZERO)
    }

    /// The cheap per-iteration check: cancellation always, deadline every
    /// [`DEADLINE_CHECK_INTERVAL`] calls. Call from the innermost loops
    /// (clique recursion, per-tuple scans).
    #[inline]
    pub fn tick(&self) -> Result<(), ExhaustionReason> {
        bcdb_telemetry::probes::GOVERNOR_TICKS.incr();
        if self.cancelled.load(Ordering::Relaxed) {
            return Err(ExhaustionReason::Cancelled);
        }
        if let Some(deadline) = self.deadline {
            let t = self.ticks.fetch_add(1, Ordering::Relaxed);
            if t & (DEADLINE_CHECK_INTERVAL - 1) == 0 {
                let now = Instant::now();
                if now >= deadline {
                    return Err(ExhaustionReason::DeadlineExceeded {
                        elapsed: self.elapsed(),
                    });
                }
            }
        }
        Ok(())
    }

    /// Forces a clock read (used at coarse boundaries like "before the
    /// next component" where amortization would be too lazy).
    pub fn check_deadline(&self) -> Result<(), ExhaustionReason> {
        if self.cancelled.load(Ordering::Relaxed) {
            return Err(ExhaustionReason::Cancelled);
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                return Err(ExhaustionReason::DeadlineExceeded {
                    elapsed: self.elapsed(),
                });
            }
        }
        Ok(())
    }

    /// Charges one enumerated maximal clique.
    #[inline]
    pub fn charge_clique(&self) -> Result<(), ExhaustionReason> {
        let n = self.cliques.fetch_add(1, Ordering::Relaxed) + 1;
        if n > self.max_cliques {
            return Err(ExhaustionReason::CliqueLimit(self.max_cliques));
        }
        self.tick()
    }

    /// Charges one materialized candidate world.
    #[inline]
    pub fn charge_world(&self) -> Result<(), ExhaustionReason> {
        let n = self.worlds.fetch_add(1, Ordering::Relaxed) + 1;
        if n > self.max_worlds {
            return Err(ExhaustionReason::WorldLimit(self.max_worlds));
        }
        self.tick()
    }

    /// Charges `n` examined tuples (batched so per-tuple scans can charge
    /// per-row-group rather than per row).
    #[inline]
    pub fn charge_tuples(&self, n: u64) -> Result<(), ExhaustionReason> {
        bcdb_telemetry::probes::GOVERNOR_TUPLES_CHARGED.add(n);
        let total = self.tuples.fetch_add(n, Ordering::Relaxed) + n;
        if total > self.max_tuples {
            return Err(ExhaustionReason::TupleLimit(self.max_tuples));
        }
        self.tick()
    }

    /// Cliques charged so far.
    pub fn cliques_used(&self) -> u64 {
        self.cliques.load(Ordering::Relaxed)
    }

    /// Worlds charged so far.
    pub fn worlds_used(&self) -> u64 {
        self.worlds.load(Ordering::Relaxed)
    }

    /// Tuples charged so far.
    pub fn tuples_used(&self) -> u64 {
        self.tuples.load(Ordering::Relaxed)
    }
}

/// A static unlimited budget for ungoverned call paths, so legacy entry
/// points can pass `&UNGOVERNED` without allocating.
pub static UNGOVERNED: Budget = Budget::unlimited();

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn unlimited_never_exhausts() {
        let b = Budget::unlimited();
        assert!(b.is_unlimited());
        for _ in 0..10_000 {
            b.tick().unwrap();
            b.charge_clique().unwrap();
            b.charge_world().unwrap();
            b.charge_tuples(1_000).unwrap();
        }
    }

    #[test]
    fn clique_limit_fires_exactly() {
        let b = BudgetSpec {
            max_cliques: Some(3),
            ..BudgetSpec::UNLIMITED
        }
        .start();
        assert!(!b.is_unlimited());
        for _ in 0..3 {
            b.charge_clique().unwrap();
        }
        assert_eq!(b.charge_clique(), Err(ExhaustionReason::CliqueLimit(3)));
        assert_eq!(b.cliques_used(), 4);
    }

    #[test]
    fn world_and_tuple_limits() {
        let b = BudgetSpec {
            max_worlds: Some(1),
            max_tuples: Some(10),
            ..BudgetSpec::UNLIMITED
        }
        .start();
        b.charge_world().unwrap();
        assert_eq!(b.charge_world(), Err(ExhaustionReason::WorldLimit(1)));
        b.charge_tuples(10).unwrap();
        assert_eq!(b.charge_tuples(1), Err(ExhaustionReason::TupleLimit(10)));
    }

    #[test]
    fn cancellation_observed_by_tick_and_charges() {
        let b = BudgetSpec::UNLIMITED.start();
        b.tick().unwrap();
        b.cancel();
        assert!(b.is_cancelled());
        assert_eq!(b.tick(), Err(ExhaustionReason::Cancelled));
        assert_eq!(b.charge_clique(), Err(ExhaustionReason::Cancelled));
        assert_eq!(b.check_deadline(), Err(ExhaustionReason::Cancelled));
    }

    #[test]
    fn deadline_fires_within_interval() {
        let b = BudgetSpec {
            timeout: Some(Duration::from_millis(5)),
            ..BudgetSpec::UNLIMITED
        }
        .start();
        std::thread::sleep(Duration::from_millis(10));
        // check_deadline is immediate.
        assert!(matches!(
            b.check_deadline(),
            Err(ExhaustionReason::DeadlineExceeded { .. })
        ));
        // tick fires within one amortization interval.
        let mut fired = false;
        for _ in 0..=DEADLINE_CHECK_INTERVAL {
            if b.tick().is_err() {
                fired = true;
                break;
            }
        }
        assert!(fired, "tick never observed an expired deadline");
    }

    #[test]
    fn shared_across_threads() {
        let b = BudgetSpec {
            max_cliques: Some(1_000),
            ..BudgetSpec::UNLIMITED
        }
        .start();
        let exhausted = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..500 {
                        if b.charge_clique().is_err() {
                            exhausted.fetch_add(1, Ordering::Relaxed);
                            return;
                        }
                    }
                });
            }
        });
        // 4×500 = 2000 attempted charges against a pool of 1000: at least
        // one worker must hit the limit, and the pool is globally bounded.
        assert!(exhausted.load(Ordering::Relaxed) >= 1);
        assert!(b.cliques_used() >= 1_000);
    }

    #[test]
    fn display_is_informative() {
        let r = ExhaustionReason::CliqueLimit(7);
        assert_eq!(r.to_string(), "clique budget exhausted (7)");
        let r = ExhaustionReason::WorkerPanicked {
            component: 2,
            message: "boom".into(),
        };
        assert!(r.to_string().contains("component 2"));
    }
}
