//! Bounded exponential retry with deterministic jitter.
//!
//! A monitor that re-checks constraints while the chain mutates will race
//! its own event stream: a check can exhaust its [`Budget`](crate::Budget)
//! because a reorg landed mid-evaluation, and retrying immediately just
//! loses the same race again. [`RetryPolicy`] spaces the attempts out —
//! exponentially, with deterministic jitter so two monitors started from
//! the same seed behave identically, and bounded both by an attempt count
//! and by the caller's deadline.

use std::ops::ControlFlow;
use std::time::{Duration, Instant};

/// splitmix64: the jitter source. Fully determined by its input, so retry
/// schedules are reproducible.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A bounded, jittered exponential backoff schedule.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Maximum retries *after* the first attempt (0 = never retry).
    pub max_retries: u32,
    /// Delay before the first retry; doubles on each subsequent one.
    pub base_delay: Duration,
    /// Ceiling on any single delay.
    pub max_delay: Duration,
    /// Seed for the deterministic jitter.
    pub seed: u64,
    /// Attempt-site discriminator mixed into the jitter (see
    /// [`for_site`](RetryPolicy::for_site)). Site 0 is the anonymous
    /// default and leaves the legacy seed-only schedule unchanged.
    pub site: u64,
}

impl RetryPolicy {
    /// No retries at all: every failure is final.
    pub const NONE: RetryPolicy = RetryPolicy {
        max_retries: 0,
        base_delay: Duration::ZERO,
        max_delay: Duration::ZERO,
        seed: 0,
        site: 0,
    };

    /// A policy with `max_retries` attempts starting at `base_delay`,
    /// capped at 32 × `base_delay`.
    pub fn new(max_retries: u32, base_delay: Duration, seed: u64) -> RetryPolicy {
        RetryPolicy {
            max_retries,
            base_delay,
            max_delay: base_delay.saturating_mul(32),
            seed,
            site: 0,
        }
    }

    /// The same policy bound to one attempt *site* — a constraint index, a
    /// subscription id, a connection number. Two sites sharing a seed get
    /// decorrelated jitter, so a fleet of sessions configured identically
    /// does not retry in lockstep and re-collide on every backoff step.
    pub fn for_site(self, site: u64) -> RetryPolicy {
        RetryPolicy { site, ..self }
    }

    /// The delay before retry number `retry` (0-based): `base · 2^retry`,
    /// capped at `max_delay`, then scaled by a deterministic jitter factor
    /// in `[½, 1]`. Jittered *down* rather than up so the cap is a real
    /// upper bound a deadline calculation can rely on.
    ///
    /// The jitter input mixes the policy seed, the retry number, and the
    /// attempt site. The site contribution is a golden-ratio multiply so
    /// neighbouring sites decorrelate completely (and site 0 contributes
    /// nothing, preserving seed-only schedules).
    pub fn delay(&self, retry: u32) -> Duration {
        let exp = self.base_delay.saturating_mul(1u32 << retry.min(31));
        let capped = exp.min(self.max_delay);
        let site_mix = self.site.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let r = splitmix64(self.seed ^ site_mix ^ u64::from(retry));
        let scale = 512 + (r % 512); // in [512, 1024)
        capped.mul_f64(scale as f64 / 1024.0)
    }

    /// The full schedule of delays, one per allowed retry.
    pub fn schedule(&self) -> impl Iterator<Item = Duration> + '_ {
        (0..self.max_retries).map(|i| self.delay(i))
    }

    /// Runs `attempt` up to `1 + max_retries` times, sleeping the
    /// scheduled delay between attempts.
    ///
    /// `attempt` receives the 0-based attempt number and steers the loop
    /// through [`ControlFlow`]: `Break(value)` is final (success, or a
    /// failure not worth retrying); `Continue(value)` requests a retry,
    /// with `value` kept as the result in case this was the last allowed
    /// attempt. A retry is abandoned — returning the last `Continue` value
    /// — when its delay would overrun `deadline`.
    pub fn run<T>(
        &self,
        deadline: Option<Instant>,
        mut attempt: impl FnMut(u32) -> ControlFlow<T, T>,
    ) -> T {
        let mut last = match attempt(0) {
            ControlFlow::Break(v) => return v,
            ControlFlow::Continue(v) => v,
        };
        for retry in 0..self.max_retries {
            let delay = self.delay(retry);
            if let Some(d) = deadline {
                if Instant::now() + delay >= d {
                    return last; // sleeping would eat the caller's deadline
                }
            }
            std::thread::sleep(delay);
            bcdb_telemetry::probes::GOVERNOR_RETRY_ATTEMPTS.incr();
            last = match attempt(retry + 1) {
                ControlFlow::Break(v) => return v,
                ControlFlow::Continue(v) => v,
            };
        }
        last
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy() -> RetryPolicy {
        RetryPolicy::new(4, Duration::from_millis(8), 42)
    }

    #[test]
    fn delays_grow_exponentially_within_bounds() {
        let p = policy();
        let delays: Vec<Duration> = p.schedule().collect();
        assert_eq!(delays.len(), 4);
        for (i, d) in delays.iter().enumerate() {
            let cap = p.base_delay.saturating_mul(1 << i).min(p.max_delay);
            assert!(*d <= cap, "retry {i}: {d:?} > cap {cap:?}");
            assert!(*d >= cap / 2, "retry {i}: {d:?} < half of {cap:?}");
        }
        // The cap binds eventually.
        let p_long = RetryPolicy::new(10, Duration::from_millis(8), 42);
        assert!(p_long.delay(9) <= p_long.max_delay);
    }

    #[test]
    fn jitter_is_deterministic_and_seed_sensitive() {
        let a = policy();
        let b = policy();
        assert_eq!(a.schedule().collect::<Vec<_>>(), b.schedule().collect::<Vec<_>>());
        let c = RetryPolicy { seed: 43, ..policy() };
        assert_ne!(a.schedule().collect::<Vec<_>>(), c.schedule().collect::<Vec<_>>());
    }

    /// Pins the site-discriminated jitter: same seed + different sites ⇒
    /// different schedules (no cross-site lockstep), same site ⇒ identical
    /// schedule, and site 0 ⇒ exactly the legacy seed-only schedule. The
    /// exact scale factors are pinned so the mixing function cannot drift
    /// silently.
    #[test]
    fn site_discriminator_decorrelates_same_seed_schedules() {
        let base = policy();
        assert_eq!(
            base.for_site(0).schedule().collect::<Vec<_>>(),
            base.schedule().collect::<Vec<_>>(),
            "site 0 must preserve the legacy schedule"
        );
        let s1 = base.for_site(1);
        let s2 = base.for_site(2);
        assert_eq!(
            s1.schedule().collect::<Vec<_>>(),
            base.for_site(1).schedule().collect::<Vec<_>>(),
            "per-site schedules are deterministic"
        );
        assert_ne!(
            s1.schedule().collect::<Vec<_>>(),
            s2.schedule().collect::<Vec<_>>(),
            "two sites with one seed must not correlate"
        );
        assert_ne!(
            s1.schedule().collect::<Vec<_>>(),
            base.schedule().collect::<Vec<_>>(),
            "a named site must not shadow the anonymous schedule"
        );
        // Pin the jitter scale (units of 1/1024 of the capped delay) for
        // the first three retries at each site. Recompute only if the
        // mixing function changes deliberately.
        let scales = |p: &RetryPolicy| -> Vec<u64> {
            (0..3)
                .map(|i| {
                    let cap = p.base_delay.saturating_mul(1 << i).min(p.max_delay);
                    (p.delay(i).as_nanos() * 1024 / cap.as_nanos()) as u64
                })
                .collect()
        };
        assert_eq!(scales(&base), vec![661, 904, 786]);
        assert_eq!(scales(&s1), vec![771, 844, 795]);
        assert_eq!(scales(&s2), vec![994, 1004, 938]);
    }

    /// Neighbouring sites must decorrelate: across many sites with one
    /// seed, first-retry delays should not collapse to a few values.
    #[test]
    fn sites_spread_across_the_jitter_range() {
        let p = policy();
        let mut distinct: Vec<u128> = (0..64u64)
            .map(|s| p.for_site(s).delay(0).as_nanos())
            .collect();
        distinct.sort_unstable();
        distinct.dedup();
        assert!(distinct.len() > 32, "only {} distinct delays", distinct.len());
    }

    #[test]
    fn run_stops_on_break() {
        let p = RetryPolicy::new(5, Duration::from_micros(10), 1);
        let mut calls = 0;
        let out = p.run(None, |attempt| {
            calls += 1;
            if attempt == 2 {
                ControlFlow::Break(format!("ok at {attempt}"))
            } else {
                ControlFlow::Continue(format!("try {attempt}"))
            }
        });
        assert_eq!(out, "ok at 2");
        assert_eq!(calls, 3);
    }

    #[test]
    fn run_exhausts_retries_keeping_last_value() {
        let p = RetryPolicy::new(3, Duration::from_micros(10), 1);
        let mut calls = 0;
        let out: String = p.run(None, |attempt| {
            calls += 1;
            ControlFlow::Continue(format!("try {attempt}"))
        });
        assert_eq!(out, "try 3");
        assert_eq!(calls, 4); // first attempt + 3 retries
    }

    #[test]
    fn run_respects_deadline() {
        let p = RetryPolicy::new(10, Duration::from_millis(50), 1);
        let deadline = Instant::now() + Duration::from_millis(5);
        let started = Instant::now();
        let mut calls = 0;
        let out: u32 = p.run(Some(deadline), |attempt| {
            calls += 1;
            ControlFlow::Continue(attempt)
        });
        // First delay (≥25 ms after jitter) overruns the 5 ms deadline, so
        // no retry happens at all.
        assert_eq!(out, 0);
        assert_eq!(calls, 1);
        assert!(started.elapsed() < Duration::from_millis(50));
    }

    #[test]
    fn none_policy_never_retries() {
        let mut calls = 0;
        let out: u32 = RetryPolicy::NONE.run(None, |a| {
            calls += 1;
            ControlFlow::Continue(a)
        });
        assert_eq!((out, calls), (0, 1));
    }
}
