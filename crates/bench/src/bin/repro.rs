//! Regenerates every table and figure of the paper's evaluation (§7).
//!
//! ```text
//! cargo run -p bcdb-bench --release --bin repro [-- <experiment>] [--seed N]
//! ```
//!
//! Experiments: `table1`, `fig6a`–`fig6h`, or `all` (default). Each prints
//! a plain-text table with the same rows/series the paper reports;
//! EXPERIMENTS.md records paper-vs-measured shapes.
//!
//! `bench [--smoke] [--constraints N] [--components N] [--giant-size N]
//! [--profile] [--profile-out PATH] [--compare PATH] [--out PATH]` runs the
//! two-level-scheduler / delta-seeding / shared-precompute-batch
//! micro-benchmark (not part of `all`) and writes a JSON report
//! (default `BENCH_dcsat.json`). `--components N` checks N disjoint giant
//! components (component-level parallelism becomes available),
//! `--giant-size N` overrides the per-component contradiction-pair count,
//! `--profile` prints a per-phase wall-clock table from the `core.phase.*`
//! probes (`--profile-out` also writes it as JSON), and `--compare PATH`
//! gates the run against a previous report: >20% wall-clock regression on
//! any config exits nonzero.
//!
//! `soak [--epochs N] [--storage memory|disk:<dir>]` runs the reorg/fault
//! soak; with disk storage, journal drills recover through the unified
//! snapshot + WAL-tail path. `crashstorm [--smoke] [--epochs N]` kills the
//! durable store at every write boundary (or a ≤48-point stride with
//! `--smoke`) and demands byte-identical recovery (default
//! `CRASH_report.json`).

use bcdb_bench::datasets::{load_config, load_dataset, LoadedDataset};
use bcdb_bench::picker::ConstantPicker;
use bcdb_bench::queries::{qa_text, qp_text, qr_text, qs_text, SAT_ADDRESS};
use bcdb_bench::report::{
    config_walls, governed_record, json_escape, json_find_bool, json_find_num, secs, stats_json,
    time_avg, time_runs, JsonObject, Table,
};
use bcdb_bench::workload::{constraint_variants, multi_component};
use bcdb_chain::Dataset;
use bcdb_core::{
    delta_row_count, possible_worlds, Algorithm, BudgetSpec, DcSatOptions, Solver, Verdict,
};
use bcdb_query::parse_denial_constraint;
use std::time::Duration;

const RUNS: usize = 3;

fn opts(algorithm: Algorithm) -> DcSatOptions {
    DcSatOptions::default().with_algorithm(algorithm)
}

/// Times an ungoverned solver check over `RUNS` executions; the solver
/// session owns the steady-state structures (the paper maintains these as
/// transactions arrive, §6.3, so per-query timings exclude them); also
/// reports satisfaction.
fn run_query(solver: &mut Solver, text: &str, algorithm: Algorithm) -> (Duration, bool) {
    let dc =
        parse_denial_constraint(text, solver.db().database().catalog()).expect("harness query");
    solver.set_options(opts(algorithm));
    // Warm-up run also builds any missing indexes so the timed runs
    // measure the algorithm, not one-time preparation.
    let outcome = solver.check_ungoverned(&dc).expect("harness query applies");
    let d = time_avg(RUNS, || {
        solver.check_ungoverned(&dc).expect("harness query applies");
    });
    (d, outcome.satisfied)
}

fn check(sat: bool, expect_sat: bool, label: &str) {
    if sat != expect_sat {
        eprintln!(
            "  [note] {label}: expected {} constraint, data gave {}",
            if expect_sat {
                "satisfied"
            } else {
                "unsatisfied"
            },
            if sat { "satisfied" } else { "unsatisfied" },
        );
    }
}

/// Table 1: dataset sizes.
fn table1(seed: u64) {
    println!("== Table 1: datasets (scaled; see DESIGN.md substitutions) ==");
    let mut current = Table::new(&["R", "Blocks", "Transactions", "Input", "Output"]);
    let mut pending = Table::new(&["T", "Transactions", "Input", "Output"]);
    for ds in Dataset::paper_presets() {
        let d = load_dataset(ds, seed);
        current.row(&[
            d.name.clone(),
            d.base_counts.blocks.to_string(),
            d.base_counts.transactions.to_string(),
            d.base_counts.inputs.to_string(),
            d.base_counts.outputs.to_string(),
        ]);
        pending.row(&[
            d.name.clone(),
            d.pending_counts.transactions.to_string(),
            d.pending_counts.inputs.to_string(),
            d.pending_counts.outputs.to_string(),
        ]);
    }
    println!("{}", current.render());
    println!("{}", pending.render());
}

/// The four §7 query families instantiated for one dataset.
struct FamilyQueries {
    qs: String,
    qp3: String,
    qr3: String,
    qa: String,
}

fn satisfied_queries() -> FamilyQueries {
    FamilyQueries {
        qs: qs_text(SAT_ADDRESS),
        qp3: qp_text(3, SAT_ADDRESS, SAT_ADDRESS),
        qr3: qr_text(3, SAT_ADDRESS),
        qa: qa_text(100, SAT_ADDRESS),
    }
}

fn unsatisfied_queries(d: &LoadedDataset) -> Option<FamilyQueries> {
    let p = ConstantPicker::new(&d.scenario);
    let recv = p.receiver_unsat()?;
    let (px, py) = p.path_unsat(3)?;
    let star = p.star_unsat(3)?;
    Some(FamilyQueries {
        qs: qs_text(&recv),
        qp3: qp_text(3, &px, &py),
        qr3: qr_text(3, &star),
        qa: qa_text(100, &recv),
    })
}

/// Fig 6a/6b: query types × {Naive, Opt}.
fn fig6_query_types(seed: u64, satisfied: bool) {
    let tag = if satisfied {
        "6a (satisfied)"
    } else {
        "6b (unsatisfied)"
    };
    println!("== Figure {tag}: query types over D200 ==");
    let d = load_dataset(Dataset::D200, seed);
    let qs = if satisfied {
        Some(satisfied_queries())
    } else {
        unsatisfied_queries(&d)
    };
    let Some(q) = qs else {
        println!("  (data offered no unsatisfied constants — rerun with another seed)");
        return;
    };
    let mut solver = Solver::builder(d.db).build();
    let mut t = Table::new(&["query", "NaiveDCSat (s)", "OptDCSat (s)", "satisfied"]);
    for (name, text, opt_applicable) in [
        ("qs", q.qs.as_str(), true),
        ("qp3", q.qp3.as_str(), true),
        ("qr3", q.qr3.as_str(), true),
        ("qa100", q.qa.as_str(), false), // aggregate: not connected -> Naive only
    ] {
        let (naive, sat) = run_query(&mut solver, text, Algorithm::Naive);
        check(sat, satisfied, name);
        let opt = if opt_applicable {
            let (o, _) = run_query(&mut solver, text, Algorithm::Opt);
            secs(o)
        } else {
            "n/a".to_string()
        };
        t.row(&[name.into(), secs(naive), opt, sat.to_string()]);
    }
    println!("{}", t.render());
}

/// Fig 6c/6d: pending-transaction sweep (qp3 over D200).
fn fig6_pending(seed: u64, satisfied: bool) {
    let tag = if satisfied {
        "6c (satisfied)"
    } else {
        "6d (unsatisfied)"
    };
    println!("== Figure {tag}: pending-transaction sweep, qp3 over D200 ==");
    // The paper's 10..50 pending blocks gave 1150/2764/3753/5079/7382 txs.
    let pending_sizes = [1150usize, 2764, 3753, 5079, 7382];
    let mut t = Table::new(&["pending txs", "NaiveDCSat (s)", "OptDCSat (s)"]);
    for n in pending_sizes {
        let mut cfg = Dataset::D200.config(seed);
        cfg.pending_txs = n;
        let d = load_config("D200", &cfg);
        let text = if satisfied {
            Some(qp_text(3, SAT_ADDRESS, SAT_ADDRESS))
        } else {
            ConstantPicker::new(&d.scenario)
                .path_unsat(3)
                .map(|(x, y)| qp_text(3, &x, &y))
        };
        let Some(text) = text else {
            t.row(&[n.to_string(), "n/a".into(), "n/a".into()]);
            continue;
        };
        let mut solver = Solver::builder(d.db).build();
        let (naive, sat) = run_query(&mut solver, &text, Algorithm::Naive);
        let (opt, _) = run_query(&mut solver, &text, Algorithm::Opt);
        check(sat, satisfied, &format!("pending={n}"));
        t.row(&[n.to_string(), secs(naive), secs(opt)]);
    }
    println!("{}", t.render());
}

/// Fig 6e/6f: contradiction sweep (qp3 over D200).
fn fig6_contradictions(seed: u64, satisfied: bool) {
    let tag = if satisfied {
        "6e (satisfied)"
    } else {
        "6f (unsatisfied)"
    };
    println!("== Figure {tag}: contradiction sweep, qp3 over D200 ==");
    let mut t = Table::new(&["contradictions", "NaiveDCSat (s)", "OptDCSat (s)"]);
    for c in [10usize, 20, 30, 40, 50] {
        let mut cfg = Dataset::D200.config(seed);
        cfg.contradictions = c;
        let d = load_config("D200", &cfg);
        let text = if satisfied {
            Some(qp_text(3, SAT_ADDRESS, SAT_ADDRESS))
        } else {
            ConstantPicker::new(&d.scenario)
                .path_unsat(3)
                .map(|(x, y)| qp_text(3, &x, &y))
        };
        let Some(text) = text else {
            t.row(&[c.to_string(), "n/a".into(), "n/a".into()]);
            continue;
        };
        let mut solver = Solver::builder(d.db).build();
        let (naive, sat) = run_query(&mut solver, &text, Algorithm::Naive);
        let (opt, _) = run_query(&mut solver, &text, Algorithm::Opt);
        check(sat, satisfied, &format!("contradictions={c}"));
        t.row(&[c.to_string(), secs(naive), secs(opt)]);
    }
    println!("{}", t.render());
}

/// Fig 6g: path-query size sweep (unsatisfied, D200).
fn fig6g(seed: u64) {
    println!("== Figure 6g: query-size sweep (unsatisfied), D200 ==");
    let d = load_dataset(Dataset::D200, seed);
    let picker_scenario = d.scenario.clone();
    let p = ConstantPicker::new(&picker_scenario);
    let mut solver = Solver::builder(d.db).build();
    let mut t = Table::new(&["path size", "NaiveDCSat (s)", "OptDCSat (s)"]);
    for i in 2..=5 {
        match p.path_unsat(i) {
            Some((x, y)) => {
                let text = qp_text(i, &x, &y);
                let (naive, sat) = run_query(&mut solver, &text, Algorithm::Naive);
                let (opt, _) = run_query(&mut solver, &text, Algorithm::Opt);
                check(sat, false, &format!("qp{i}"));
                t.row(&[i.to_string(), secs(naive), secs(opt)]);
            }
            None => t.row(&[i.to_string(), "n/a".into(), "n/a".into()]),
        }
    }
    println!("{}", t.render());
}

/// Fig 6h: data-size sweep (unsatisfied, qp3, ~3000 pending each).
fn fig6h(seed: u64) {
    println!("== Figure 6h: data-size sweep (unsatisfied), qp3 ==");
    let mut t = Table::new(&["dataset", "NaiveDCSat (s)", "OptDCSat (s)"]);
    for ds in Dataset::paper_presets() {
        let mut cfg = ds.config(seed);
        cfg.pending_txs = 3000; // the paper holds pending ≈ 3000 here
        let d = load_config(ds.name(), &cfg);
        match ConstantPicker::new(&d.scenario).path_unsat(3) {
            Some((x, y)) => {
                let text = qp_text(3, &x, &y);
                let mut solver = Solver::builder(d.db).build();
                let (naive, sat) = run_query(&mut solver, &text, Algorithm::Naive);
                let (opt, _) = run_query(&mut solver, &text, Algorithm::Opt);
                check(sat, false, ds.name());
                t.row(&[ds.name().into(), secs(naive), secs(opt)]);
            }
            None => t.row(&[ds.name().into(), "n/a".into(), "n/a".into()]),
        }
    }
    println!("{}", t.render());
}

/// Ablation: each optimization toggled off, qp3 over the Small dataset,
/// both regimes.
///
/// Small, not D200: without the pre-check (for Naive) or without covers
/// (for Opt), a satisfied — or even an unsatisfied — constraint forces
/// exhaustive clique enumeration over components with many contradictions,
/// which is exponential at D200 scale (~2^20 cliques). That blow-up *is*
/// the ablation's headline result; the table below quantifies the relative
/// effects where every variant terminates.
fn ablation(seed: u64) {
    println!("== Ablation: optimizations, qp3 over Small ==");
    println!("(no-pre-check / no-covers variants are exponential at D200 scale;");
    println!(" see EXPERIMENTS.md — this table uses the Small dataset)");
    let d = load_dataset(Dataset::Small, seed);
    let sat_text = qp_text(3, SAT_ADDRESS, SAT_ADDRESS);
    let unsat_text = match ConstantPicker::new(&d.scenario).path_unsat(3) {
        Some((x, y)) => qp_text(3, &x, &y),
        None => {
            println!("  (no unsatisfied constants for this seed)");
            return;
        }
    };
    let mut solver = Solver::builder(d.db).build();
    let variants: [(&str, DcSatOptions); 6] = [
        (
            "opt (full)",
            DcSatOptions::default().with_algorithm(Algorithm::Opt),
        ),
        (
            "opt, no pre-check",
            DcSatOptions::default()
                .with_algorithm(Algorithm::Opt)
                .with_precheck(false),
        ),
        (
            "opt, no covers",
            DcSatOptions::default()
                .with_algorithm(Algorithm::Opt)
                .with_precheck(false)
                .with_covers(false),
        ),
        (
            "opt, parallel",
            DcSatOptions::default()
                .with_algorithm(Algorithm::Opt)
                .with_precheck(false)
                .with_parallel(true),
        ),
        (
            "naive (full)",
            DcSatOptions::default().with_algorithm(Algorithm::Naive),
        ),
        (
            "naive, no pre-check",
            DcSatOptions::default()
                .with_algorithm(Algorithm::Naive)
                .with_precheck(false),
        ),
    ];
    let mut t = Table::new(&["variant", "satisfied (s)", "unsatisfied (s)"]);
    for (name, options) in &variants {
        eprintln!("[ablation] {name}");
        solver.set_options(options.clone());
        let mut time = |text: &str| {
            let dc = parse_denial_constraint(text, solver.db().database().catalog()).unwrap();
            solver.check_ungoverned(&dc).unwrap();
            time_avg(RUNS, || {
                solver.check_ungoverned(&dc).unwrap();
            })
        };
        let sat = time(&sat_text);
        let unsat = time(&unsat_text);
        t.row(&[name.to_string(), secs(sat), secs(unsat)]);
    }
    println!("{}", t.render());
}

/// Governed runs: qp3 over Small under a ladder of budgets, one JSON
/// record per run (budget, verdict, degradation, stats) so downstream
/// tooling can diff resource/answer trade-offs across revisions.
fn governed(seed: u64) {
    println!("== Governed runs: qp3 over Small, JSON records ==");
    let d = load_dataset(Dataset::Small, seed);
    let sat_text = qp_text(3, SAT_ADDRESS, SAT_ADDRESS);
    let unsat_text = ConstantPicker::new(&d.scenario)
        .path_unsat(3)
        .map(|(x, y)| qp_text(3, &x, &y));
    let mut solver = Solver::builder(d.db).build();
    let budgets: [(&str, BudgetSpec); 3] = [
        ("unlimited", BudgetSpec::UNLIMITED),
        (
            "timeout-50ms",
            BudgetSpec {
                timeout: Some(Duration::from_millis(50)),
                ..BudgetSpec::UNLIMITED
            },
        ),
        (
            "tight",
            BudgetSpec {
                max_cliques: Some(64),
                max_worlds: Some(64),
                ..BudgetSpec::UNLIMITED
            },
        ),
    ];
    let mut texts = vec![("sat", sat_text)];
    match unsat_text {
        Some(t) => texts.push(("unsat", t)),
        None => println!("  (no unsatisfied constants for this seed — sat only)"),
    }
    for (kind, text) in &texts {
        let dc = parse_denial_constraint(text, solver.db().database().catalog())
            .expect("harness query");
        for (name, budget) in &budgets {
            solver.set_options(DcSatOptions::default().with_budget(*budget));
            let outcome = solver.check(&dc).expect("harness query applies");
            println!(
                "{}",
                governed_record(&format!("qp3-{kind}/{name}"), budget, &outcome)
            );
        }
    }
}

/// Options for the `bench` subcommand (see the module docs).
struct BenchArgs<'a> {
    smoke: bool,
    out: &'a str,
    constraints: usize,
    components: usize,
    giant_size: Option<usize>,
    profile: bool,
    profile_out: Option<&'a str>,
    compare: Option<&'a str>,
}

/// `bench`: two-level scheduler + delta-seeding micro-benchmark over
/// `components` giant independence components (`2^pairs` maximal cliques
/// each; with one component no component-level parallelism is available,
/// with several it is), written as machine-readable JSON to `out` for CI
/// artifact diffing. `--smoke` shrinks the workload for a fast
/// correctness-of-the-harness pass; `--constraints N` sizes the
/// shared-precompute batch section.
fn bench(args: &BenchArgs<'_>) {
    let BenchArgs {
        smoke,
        out,
        constraints,
        components,
        ..
    } = *args;
    let (default_pairs, inert) = if smoke { (8usize, 200usize) } else { (12, 1000) };
    let pairs = args.giant_size.unwrap_or(default_pairs);
    println!("== bench: two-level DCSat over {components} giant component(s) ==");
    // Per-phase telemetry for the whole bench run: reset first so the
    // snapshot covers exactly this workload.
    bcdb_telemetry::reset();
    bcdb_telemetry::set_enabled(true);
    let threads_avail = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let w = multi_component(components, pairs, inert);
    let dcs = constraint_variants(&w, constraints);
    let dc = w.dc.clone();
    let mut solver = Solver::builder(w.db).build();
    // Average pending (delta) rows per possible world — context for the
    // delta-seeding counters: a full evaluation probes every matching base
    // row per world, a seeded one starts from only these. Worlds multiply
    // across components (~2^(pairs·components)), so the exhaustive
    // diagnostic is only affordable on the single-component workload.
    let (worlds_len, delta_rows_avg) = if components == 1 {
        let worlds = possible_worlds(solver.db(), solver.precomputed_ref());
        let delta_rows: usize = worlds
            .iter()
            .map(|m| delta_row_count(solver.db().database(), m))
            .sum();
        let avg = delta_rows as f64 / worlds.len().max(1) as f64;
        (Some(worlds.len()), Some(avg))
    } else {
        (None, None)
    };
    match (worlds_len, delta_rows_avg) {
        (Some(n), Some(avg)) => println!(
            "pairs={pairs} worlds={n} inert_base_rows={inert} threads={threads_avail} \
             avg_delta_rows_per_world={avg:.1}"
        ),
        _ => println!(
            "pairs={pairs} components={components} inert_base_rows={inert} \
             threads={threads_avail} (world diagnostics skipped: multi-component)"
        ),
    }

    let configs: [(&str, DcSatOptions); 4] = [
        (
            "naive",
            DcSatOptions::default().with_algorithm(Algorithm::Naive),
        ),
        (
            "opt-serial",
            DcSatOptions::default()
                .with_algorithm(Algorithm::Opt)
                .with_parallel(false),
        ),
        (
            "opt-component-parallel",
            DcSatOptions::default()
                .with_algorithm(Algorithm::Opt)
                .with_parallel(true)
                .with_parallel_intra(false),
        ),
        (
            "opt-two-level",
            DcSatOptions::default()
                .with_algorithm(Algorithm::Opt)
                .with_parallel(true)
                .with_parallel_intra(true),
        ),
    ];
    let mut t = Table::new(&["config", "wall (s)", "cliques", "subproblems", "delta evals"]);
    let mut records = Vec::new();
    let mut walls: Vec<(String, Duration)> = Vec::new();
    for (name, options) in &configs {
        eprintln!("[bench] {name}");
        solver.set_options(options.clone());
        let outcome = solver.check_ungoverned(&dc).expect("bench query applies");
        check(outcome.satisfied, true, name);
        let (wall, wall_min) = time_runs(RUNS, || {
            solver.check_ungoverned(&dc).expect("bench query applies");
        });
        t.row(&[
            name.to_string(),
            secs(wall),
            outcome.stats.cliques_enumerated.to_string(),
            outcome.stats.subproblems_spawned.to_string(),
            outcome.stats.delta_seeded_evals.to_string(),
        ]);
        records.push(
            JsonObject::new()
                .str("config", name)
                .num("wall_ms", format!("{:.3}", wall.as_secs_f64() * 1e3))
                .num(
                    "wall_min_ms",
                    format!("{:.3}", wall_min.as_secs_f64() * 1e3),
                )
                .bool("satisfied", outcome.satisfied)
                .raw("stats", &stats_json(&outcome.stats))
                .finish(),
        );
        walls.push((name.to_string(), wall));
    }
    println!("{}", t.render());
    let wall_of = |name: &str| {
        walls
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, d)| d.as_secs_f64())
            .unwrap_or(f64::NAN)
    };
    println!(
        "[bench] two-level vs component-parallel: {:.2}x on {threads_avail} thread(s)",
        wall_of("opt-component-parallel") / wall_of("opt-two-level")
    );
    // With several disjoint components the parallel configs are genuinely
    // distinguishable from the serial one: report the headline speedup.
    let parallel_speedup = (components > 1).then(|| {
        let best_parallel = wall_of("opt-component-parallel").min(wall_of("opt-two-level"));
        let speedup = wall_of("opt-serial") / best_parallel;
        println!(
            "[bench] best parallel vs opt-serial: {speedup:.2}x over {components} components \
             on {threads_avail} thread(s)"
        );
        speedup
    });

    // Delta-seeding ablation on the serial path (deterministic work totals):
    // a fresh unlimited budget per run exposes the tuples actually charged.
    let mut ablation = Vec::new();
    let mut tuples: Vec<u64> = Vec::new();
    for (name, use_delta) in [("delta-on", true), ("delta-off", false)] {
        let options = DcSatOptions::default()
            .with_algorithm(Algorithm::Opt)
            .with_parallel(false)
            .with_delta(use_delta);
        solver.set_options(options);
        let budget = BudgetSpec::UNLIMITED.start();
        let outcome = solver
            .check_with_budget(&dc, &budget)
            .expect("bench query applies");
        let (wall, wall_min) = time_runs(RUNS, || {
            solver.check_ungoverned(&dc).expect("bench query applies");
        });
        tuples.push(budget.tuples_used());
        ablation.push(
            JsonObject::new()
                .str("config", name)
                .bool("use_delta", use_delta)
                .num("wall_ms", format!("{:.3}", wall.as_secs_f64() * 1e3))
                .num(
                    "wall_min_ms",
                    format!("{:.3}", wall_min.as_secs_f64() * 1e3),
                )
                .num("tuples_charged", budget.tuples_used())
                .raw("stats", &stats_json(&outcome.stats))
                .finish(),
        );
    }
    println!(
        "[bench] delta-seeding tuples charged: {} (on) vs {} (off)",
        tuples[0], tuples[1]
    );

    // Multi-constraint batch: `constraints` alpha-renamed variants of the
    // giant-component constraint share one refined partition, so the single
    // fused component is enumerated once and replayed for the rest. The
    // clique-reuse ratio is the headline number (>1 means sharing worked).
    eprintln!("[bench] batch x{constraints}");
    solver.set_options(
        DcSatOptions::default()
            .with_algorithm(Algorithm::Opt)
            .with_parallel(true)
            .with_parallel_intra(true),
    );
    let batch = solver.check_batch(&dcs);
    let all_hold = batch
        .verdicts()
        .iter()
        .all(|v| matches!(v, Ok(Verdict::Holds)));
    check(all_hold, true, "batch");
    println!(
        "[bench] batch: {} constraints in {:.3}ms — {} component enumeration(s), \
         {} replay(s), clique-reuse ratio {:.2}",
        constraints,
        batch.elapsed.as_secs_f64() * 1e3,
        batch.components_enumerated,
        batch.components_reused,
        batch.clique_reuse_ratio()
    );
    let batch_json = JsonObject::new()
        .num("constraints", constraints)
        .num(
            "wall_ms",
            format!("{:.3}", batch.elapsed.as_secs_f64() * 1e3),
        )
        .bool("all_hold", all_hold)
        .num("components_enumerated", batch.components_enumerated)
        .num("components_reused", batch.components_reused)
        .num(
            "clique_reuse_ratio",
            format!("{:.4}", batch.clique_reuse_ratio()),
        )
        .finish();

    bcdb_telemetry::set_enabled(false);
    let telemetry = bcdb_telemetry::snapshot();
    println!("[bench] telemetry phase breakdown:");
    println!("{}", telemetry.render_table());
    if args.profile || args.profile_out.is_some() {
        profile_phases(&telemetry, args.profile_out);
    }

    let json = JsonObject::new()
        .str("bench", "dcsat-giant-component")
        .bool("smoke", smoke)
        .num("pairs", pairs)
        .num("components", components)
        .opt_num("worlds", worlds_len)
        .num("inert_base_rows", inert)
        .num("threads", threads_avail)
        .num("runs", RUNS)
        .opt_num(
            "delta_rows_avg",
            delta_rows_avg.map(|avg| format!("{avg:.2}")),
        )
        .opt_num(
            "parallel_speedup",
            parallel_speedup.map(|s| format!("{s:.4}")),
        )
        .raw("records", &format!("[{}]", records.join(",")))
        .raw("delta_ablation", &format!("[{}]", ablation.join(",")))
        .raw("batch", &batch_json)
        .raw("telemetry", &telemetry.to_json())
        .finish();
    std::fs::write(out, format!("{json}\n")).expect("write bench report");
    println!("[bench] wrote {out}");
    if let Some(baseline) = args.compare {
        compare_reports(&json, baseline);
    }
}

/// `--profile`: per-phase wall-clock table distilled from the
/// `core.phase.*` span histograms of the snapshot — where a check's time
/// actually went (Θ-partitioning, covers, clique enumeration, world
/// checks), with call counts and order-of-magnitude p95s. `--profile-out`
/// also writes the same rows as a JSON array.
fn profile_phases(telemetry: &bcdb_telemetry::TelemetrySnapshot, out: Option<&str>) {
    let phases: Vec<_> = telemetry
        .histograms
        .iter()
        .filter(|h| h.name.starts_with("core.phase."))
        .collect();
    let total_ns: u64 = phases.iter().map(|h| h.sum).sum();
    let mut t = Table::new(&["phase", "calls", "total (ms)", "share", "mean (µs)", "p95 (µs)"]);
    let mut rows = Vec::new();
    for h in &phases {
        let share = if total_ns == 0 {
            0.0
        } else {
            h.sum as f64 / total_ns as f64 * 100.0
        };
        t.row(&[
            h.name.trim_start_matches("core.phase.").to_string(),
            h.count.to_string(),
            format!("{:.3}", h.sum as f64 / 1e6),
            format!("{share:.1}%"),
            format!("{:.1}", h.mean() as f64 / 1e3),
            format!("{:.1}", h.quantile(95) as f64 / 1e3),
        ]);
        rows.push(
            JsonObject::new()
                .str("phase", h.name)
                .num("calls", h.count)
                .num("total_ns", h.sum)
                .num("mean_ns", h.mean())
                .num("p95_ns", h.quantile(95))
                .num("max_ns", h.max)
                .finish(),
        );
    }
    println!("[bench] per-phase profile (core.phase.* spans):");
    println!("{}", t.render());
    if let Some(path) = out {
        let json = JsonObject::new()
            .num("total_ns", total_ns)
            .raw("phases", &format!("[{}]", rows.join(",")))
            .finish();
        std::fs::write(path, format!("{json}\n")).expect("write profile report");
        println!("[bench] wrote {path}");
    }
}

/// `--compare`: gates the current run against a previous report. A shape
/// mismatch (different smoke flag, pairs, components, or config set) or
/// an unreadable baseline exits with the distinct code 4 — the baseline
/// is from another workload (or is broken), so there is nothing sound to
/// gate on, and callers retrying a noisy timing failure must *not* retry
/// this: it fails identically every time. With matching shapes, any
/// config whose wall clock regressed by more than 20% *and* by more than
/// 5 ms (sub-5 ms smoke timings are dominated by noise) exits 1.
///
/// When both reports carry `wall_min_ms` (min over the `RUNS` repetitions,
/// the noise-robust estimator) the gate diffs that; otherwise it falls back
/// to the mean `wall_ms` so pre-existing baselines still gate.
fn compare_reports(current: &str, baseline_path: &str) {
    let baseline = match std::fs::read_to_string(baseline_path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("[bench] compare: cannot read baseline {baseline_path} ({e})");
            std::process::exit(4);
        }
    };
    for key in ["smoke", "pairs", "components"] {
        let (cur, base) = if key == "smoke" {
            (
                json_find_bool(current, key).map(|b| b as u8 as f64),
                json_find_bool(&baseline, key).map(|b| b as u8 as f64),
            )
        } else {
            (json_find_num(current, key), json_find_num(&baseline, key))
        };
        if cur != base {
            eprintln!(
                "[bench] compare: baseline shape differs ({key}: {base:?} vs {cur:?}) — \
                 nothing sound to gate on"
            );
            std::process::exit(4);
        }
    }
    let mut key = "wall_min_ms";
    let mut base_walls = config_walls(&baseline, key);
    if base_walls.is_empty() {
        key = "wall_ms";
        base_walls = config_walls(&baseline, key);
    }
    let cur_walls = config_walls(current, key);
    let mut regressions = Vec::new();
    let mut worst: f64 = 0.0;
    for (name, cur_ms) in &cur_walls {
        let Some((_, base_ms)) = base_walls.iter().find(|(n, _)| n == name) else {
            eprintln!("[bench] compare: baseline lacks config '{name}' — shape mismatch");
            std::process::exit(4);
        };
        let ratio = cur_ms / base_ms;
        worst = worst.max(ratio);
        if ratio > 1.20 && cur_ms - base_ms > 5.0 {
            regressions.push(format!(
                "{name}: {base_ms:.3}ms -> {cur_ms:.3}ms ({:.0}% slower)",
                (ratio - 1.0) * 100.0
            ));
        }
    }
    if regressions.is_empty() {
        println!(
            "[bench] compare vs {baseline_path}: PASS ({} configs on {key}, \
             worst ratio {worst:.2}x)",
            cur_walls.len()
        );
    } else {
        eprintln!("[bench] compare vs {baseline_path}: FAIL — {key} regression >20%:");
        for r in &regressions {
            eprintln!("[bench]   {r}");
        }
        std::process::exit(1);
    }
}

/// Parses a `--storage` argument: `memory` (the default in-memory store,
/// no durable snapshots) or `disk:<dir>` (epoch snapshots + unified
/// recovery under `<dir>`).
fn parse_storage(arg: &str) -> Option<std::path::PathBuf> {
    match arg {
        "memory" => None,
        _ => match arg.strip_prefix("disk:") {
            Some(dir) if !dir.is_empty() => Some(std::path::PathBuf::from(dir)),
            _ => {
                eprintln!("--storage takes 'memory' or 'disk:<dir>', got '{arg}'");
                std::process::exit(2);
            }
        },
    }
}

/// Parses an `--apply-mode` argument: how the monitor handles
/// epoch-advancing events. `incremental` (in-place delta apply, the
/// default), `rebuild` (the full-snapshot oracle), or `verified`
/// (incremental plus a timed shadow rebuild compared against it).
fn parse_apply_mode(arg: &str) -> bcdb_monitor::EpochApply {
    match arg {
        "incremental" => bcdb_monitor::EpochApply::Incremental,
        "rebuild" => bcdb_monitor::EpochApply::Rebuild,
        "verified" => bcdb_monitor::EpochApply::IncrementalVerified,
        _ => {
            eprintln!("--apply-mode takes 'incremental', 'rebuild', or 'verified', got '{arg}'");
            std::process::exit(2);
        }
    }
}

fn apply_mode_label(mode: bcdb_monitor::EpochApply) -> &'static str {
    match mode {
        bcdb_monitor::EpochApply::Incremental => "incremental",
        bcdb_monitor::EpochApply::Rebuild => "rebuild",
        bcdb_monitor::EpochApply::IncrementalVerified => "verified",
    }
}

/// Runs the reorg/fault soak (`bcdb_monitor::run_soak`) and writes its
/// report as JSON. Exits nonzero if any epoch diverged from a cold
/// rebuild, or (in verified mode) if any shadow-oracle apply diverged.
fn soak(
    epochs: u64,
    seed: u64,
    out: &str,
    storage_dir: Option<std::path::PathBuf>,
    apply_mode: bcdb_monitor::EpochApply,
) {
    let journal = format!("{out}.journal");
    let mut cfg = bcdb_monitor::SoakConfig::new(epochs, seed, &journal);
    // The library default scenario is sized for sub-second unit tests;
    // the CLI soaks at a scale where the apply-vs-rebuild asymmetry is
    // measurable (rebuild cost grows with chain + mempool size, delta
    // apply with block size). Block size is capped so a mined block
    // carries ~a dozen transactions instead of draining the pool — the
    // paper's regime, where the per-block delta is small relative to
    // the accumulated state.
    cfg.scenario.wallets = 40;
    cfg.scenario.blocks = 300;
    cfg.scenario.txs_per_block = 8;
    cfg.scenario.pending_txs = 150;
    cfg.scenario.contradictions = 8;
    cfg.scenario.chain.max_block_vsize = 1_400;
    cfg.storage_dir = storage_dir;
    cfg.monitor.epoch_apply = apply_mode;
    let mode = apply_mode_label(apply_mode);
    match &cfg.storage_dir {
        Some(dir) => println!(
            "[soak] {epochs} epochs, seed {seed}, {mode} apply, journal {journal}, \
             snapshots under {}",
            dir.display()
        ),
        None => println!("[soak] {epochs} epochs, seed {seed}, {mode} apply, journal {journal}"),
    }
    bcdb_telemetry::reset();
    bcdb_telemetry::set_enabled(true);
    let report = match bcdb_monitor::run_soak(&cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("[soak] aborted: {e}");
            std::process::exit(2);
        }
    };
    bcdb_telemetry::set_enabled(false);
    let telemetry = bcdb_telemetry::snapshot();
    println!("[soak] telemetry phase breakdown:");
    println!("{}", telemetry.render_table());
    let divergences = format!(
        "[{}]",
        report
            .divergences
            .iter()
            .map(|d| format!("\"{}\"", json_escape(d)))
            .collect::<Vec<_>>()
            .join(",")
    );
    // Per-event averages: journal drills re-count replayed prefixes, so
    // raw nanosecond totals across modes are only comparable per event.
    let apply_per_event = if report.applies > 0 {
        report.block_apply_ns as f64 / report.applies as f64
    } else {
        0.0
    };
    let delta_per_event = if report.delta_applies > 0 {
        report.delta_apply_ns as f64 / report.delta_applies as f64
    } else {
        0.0
    };
    let rebuild_events = report.rebuilds + report.shadow_builds;
    let rebuild_per_event = if rebuild_events > 0 {
        report.block_rebuild_ns as f64 / rebuild_events as f64
    } else {
        0.0
    };
    // The headline claim — a mined block handled as an O(block) wire
    // delta vs what rebuilding from a snapshot costs. (Snapshot-form
    // events still resolve and reconcile O(state) input, so the
    // aggregate `apply_speedup` is the conservative overall figure.)
    let delta_speedup = if delta_per_event > 0.0 && rebuild_per_event > 0.0 {
        rebuild_per_event / delta_per_event
    } else {
        0.0
    };
    let apply_speedup = if apply_per_event > 0.0 && rebuild_per_event > 0.0 {
        rebuild_per_event / apply_per_event
    } else {
        0.0
    };
    let json = JsonObject::new()
        .str("bench", "monitor-soak")
        .num("epochs", report.epochs)
        .num("seed", seed)
        .num("events_applied", report.events_applied)
        .num("faults_injected", report.faults_injected)
        .num("blocks_mined", report.blocks_mined)
        .num("reorgs", report.reorgs)
        .num("verdict_checks", report.verdict_checks)
        .num("holds", report.holds)
        .num("violated", report.violated)
        .num("unknown", report.unknown)
        .num("crash_drills", report.crash_drills)
        .num("recoveries", report.recoveries)
        .num("snapshot_recoveries", report.snapshot_recoveries)
        .num("snapshots_persisted", report.snapshots_persisted)
        .num("journal_lines_dropped", report.journal_lines_dropped)
        .num("journal_bytes_dropped", report.journal_bytes_dropped)
        .num("final_epoch", report.final_epoch)
        .str("apply_mode", mode)
        .num("applies", report.applies)
        .num("rebuilds", report.rebuilds)
        .num("apply_fallbacks", report.apply_fallbacks)
        .num("apply_divergences", report.apply_divergences)
        .num("shadow_builds", report.shadow_builds)
        .num("apply_ns", report.block_apply_ns)
        .num("rebuild_ns", report.block_rebuild_ns)
        .num("delta_applies", report.delta_applies)
        .num("delta_apply_ns", report.delta_apply_ns)
        .raw("apply_ns_per_event", &format!("{:.1}", apply_per_event))
        .raw("delta_apply_ns_per_event", &format!("{:.1}", delta_per_event))
        .raw("rebuild_ns_per_event", &format!("{:.1}", rebuild_per_event))
        .raw("apply_speedup", &format!("{:.2}", apply_speedup))
        .raw("delta_apply_speedup", &format!("{:.2}", delta_speedup))
        .num("elapsed_ms", report.elapsed_ms)
        .num("divergence_count", report.divergences.len())
        .raw("divergences", &divergences)
        .raw("telemetry", &telemetry.to_json())
        .finish();
    std::fs::write(out, format!("{json}\n")).expect("write soak report");
    println!(
        "[soak] {} epochs: {} events, {} faults, {} blocks mined, {} reorgs, \
         {} crash drills ({} recoveries)",
        report.epochs,
        report.events_applied,
        report.faults_injected,
        report.blocks_mined,
        report.reorgs,
        report.crash_drills,
        report.recoveries
    );
    println!(
        "[soak] verdicts: {} checks ({} holds / {} violated / {} unknown)",
        report.verdict_checks, report.holds, report.violated, report.unknown
    );
    println!(
        "[soak] epoch apply: {} incremental ({:.0} ns/event; {} wire deltas at {:.0} ns/event), \
         {} rebuilds + {} shadow builds ({:.0} ns/event), {} fallbacks",
        report.applies,
        apply_per_event,
        report.delta_applies,
        delta_per_event,
        report.rebuilds,
        report.shadow_builds,
        rebuild_per_event,
        report.apply_fallbacks
    );
    if apply_speedup > 0.0 {
        println!("[soak] incremental apply speedup over rebuild: {apply_speedup:.1}x");
    }
    if delta_speedup > 0.0 {
        println!("[soak] mined-block delta apply speedup over rebuild: {delta_speedup:.1}x");
    }
    println!("[soak] wrote {out}");
    let mut failed = false;
    if report.divergences.is_empty() {
        println!("[soak] PASS: incremental state matched cold rebuild every epoch");
    } else {
        eprintln!(
            "[soak] FAIL: {} divergence(s) from cold rebuild:",
            report.divergences.len()
        );
        for d in &report.divergences {
            eprintln!("[soak]   {d}");
        }
        failed = true;
    }
    if report.apply_divergences > 0 {
        eprintln!(
            "[soak] FAIL: {} shadow-oracle apply divergence(s)",
            report.apply_divergences
        );
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
}

/// Runs the crash-point injection matrix (`bcdb_monitor::run_crashstorm`):
/// kill the durable store at (every, or a strided subset of) write
/// boundaries, recover, resume, and demand byte-identical final state.
/// Writes a JSON report; exits 1 on any divergence.
fn crashstorm(smoke: bool, epochs: u64, seed: u64, out: &str) {
    let workdir = format!("{out}.workdir");
    let mut cfg = bcdb_monitor::CrashStormConfig::new(epochs, seed, &workdir);
    if smoke {
        cfg.max_crash_points = 48;
    }
    println!(
        "[crashstorm] {epochs} epochs, seed {seed}, workdir {workdir}{}",
        if smoke { ", smoke (≤48 crash points)" } else { ", every write boundary" }
    );
    bcdb_telemetry::reset();
    bcdb_telemetry::set_enabled(true);
    let report = match bcdb_monitor::run_crashstorm(&cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("[crashstorm] aborted: {e}");
            std::process::exit(2);
        }
    };
    bcdb_telemetry::set_enabled(false);
    let telemetry = bcdb_telemetry::snapshot();
    let scale_json = |s: &bcdb_monitor::ScaleStats| {
        JsonObject::new()
            .num("base_rows", s.base_rows)
            .num("total_records", s.total_records)
            .num("wal_tail_records", s.wal_tail_records)
            .num("recovery_ns", s.recovery_ns)
            .num("full_replay_ns", s.full_replay_ns)
            .finish()
    };
    let tail_scaling = report
        .tail_scaling
        .as_ref()
        .map(|ts| {
            JsonObject::new()
                .raw("small", &scale_json(&ts.small))
                .raw("large", &scale_json(&ts.large))
                .finish()
        })
        .unwrap_or_else(|| "null".to_string());
    let divergences = format!(
        "[{}]",
        report
            .divergences
            .iter()
            .map(|d| format!("\"{}\"", json_escape(d)))
            .collect::<Vec<_>>()
            .join(",")
    );
    let json = JsonObject::new()
        .str("bench", "storage-crashstorm")
        .bool("smoke", smoke)
        .num("epochs", report.epochs)
        .num("seed", seed)
        .num("events", report.events)
        .num("write_boundaries", report.write_boundaries)
        .num("crash_points_tested", report.crash_points_tested)
        .num("crashes_fired", report.crashes_fired)
        .num("recoveries", report.recoveries)
        .num("snapshot_recoveries", report.snapshot_recoveries)
        .num("full_replays", report.full_replays)
        .num("snapshots_rejected", report.snapshots_rejected)
        .num("wal_tail_max", report.wal_tail_max)
        .num("recovery_ns_total", report.recovery_ns_total)
        .num("recovery_ns_max", report.recovery_ns_max)
        .num("elapsed_ms", report.elapsed_ms)
        .num("divergence_count", report.divergences.len())
        .raw("tail_scaling", &tail_scaling)
        .raw("divergences", &divergences)
        .raw("telemetry", &telemetry.to_json())
        .finish();
    std::fs::write(out, format!("{json}\n")).expect("write crashstorm report");
    println!(
        "[crashstorm] {} events, {} write boundaries, {} crash points tested \
         ({} fired), {} recoveries ({} from snapshots, {} full replays)",
        report.events,
        report.write_boundaries,
        report.crash_points_tested,
        report.crashes_fired,
        report.recoveries,
        report.snapshot_recoveries,
        report.full_replays
    );
    if let Some(ts) = &report.tail_scaling {
        println!(
            "[crashstorm] tail scaling: small {} base rows -> tail {}/{} records, \
             recovery {:.2}ms (full replay {:.2}ms); large {} base rows -> tail {}/{} \
             records, recovery {:.2}ms (full replay {:.2}ms)",
            ts.small.base_rows,
            ts.small.wal_tail_records,
            ts.small.total_records,
            ts.small.recovery_ns as f64 / 1e6,
            ts.small.full_replay_ns as f64 / 1e6,
            ts.large.base_rows,
            ts.large.wal_tail_records,
            ts.large.total_records,
            ts.large.recovery_ns as f64 / 1e6,
            ts.large.full_replay_ns as f64 / 1e6,
        );
    }
    println!("[crashstorm] wrote {out}");
    if report.divergences.is_empty() {
        println!(
            "[crashstorm] PASS: byte-identical recovery at every tested crash point"
        );
    } else {
        eprintln!(
            "[crashstorm] FAIL: {} divergence(s):",
            report.divergences.len()
        );
        for d in &report.divergences {
            eprintln!("[crashstorm]   {d}");
        }
        std::process::exit(1);
    }
}

fn serve_storm(smoke: bool, seed: u64, out: &str) {
    let workdir = format!("{out}.workdir");
    let cfg = if smoke {
        bcdb_server::ServeStormConfig::smoke(seed, &workdir)
    } else {
        bcdb_server::ServeStormConfig::full(seed, &workdir)
    };
    println!(
        "[serve-storm] {} subscriptions, {} tenants, {} rounds, seed {seed}, store {workdir}",
        cfg.subscriptions, cfg.tenants, cfg.rounds
    );
    bcdb_telemetry::reset();
    bcdb_telemetry::set_enabled(true);
    let report = match bcdb_server::run_serve_storm(&cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("[serve-storm] aborted: {e}");
            std::process::exit(2);
        }
    };
    bcdb_telemetry::set_enabled(false);
    let telemetry = bcdb_telemetry::snapshot();
    let divergences = format!(
        "[{}]",
        report
            .divergences
            .iter()
            .map(|d| format!("\"{}\"", json_escape(d)))
            .collect::<Vec<_>>()
            .join(",")
    );
    let (p50, p95, p99) = report.flip_latency_ns;
    // Reuse gates: the duplicate-shape cohort must actually share work.
    // The parallel gate is lenient on single-core hosts, where the
    // measurement phase never sees more than one worker.
    let reuse_hit_ok = report.cache_hit_ratio > 0.5;
    let cache_speedup_ok = report.cache_speedup >= 2.0;
    let parallel_ok = report.parallel_speedup >= 1.5 || report.round_parallel_workers < 2;
    let passed = report.passed() && reuse_hit_ok && cache_speedup_ok && parallel_ok;
    let json = JsonObject::new()
        .str("bench", "serve-storm")
        .bool("smoke", smoke)
        .num("seed", seed)
        .num("rounds", report.rounds)
        .num("subscriptions", report.subscriptions)
        .num("tenants", report.tenants)
        .num("events", report.events)
        .num("faults_injected", report.faults_injected)
        .num("blocks_mined", report.blocks_mined)
        .num("reorgs", report.reorgs)
        .num("checks", report.checks)
        .num("refusals", report.refusals)
        .num("sheds", report.sheds)
        .num("flips", report.flips)
        .num("coalesced", report.coalesced)
        .num("panics_contained", report.panics_contained)
        .num("adversary_exhausted_rounds", report.adversary_exhausted_rounds)
        .bool("kill_recover", report.kill_recover)
        .num("recovered_subs", report.recovered_subs)
        .num("recovery_wal_tail", report.recovery_wal_tail)
        .num("oracle_checks", report.oracle_checks)
        .raw("definite_fraction", &format!("{:.6}", report.definite_fraction))
        .bool("adversary_all_unknown", report.adversary_all_unknown)
        .num("flip_latency_ns_p50", p50)
        .num("flip_latency_ns_p95", p95)
        .num("flip_latency_ns_p99", p99)
        .num("cache_hits", report.cache_hits)
        .num("cache_misses", report.cache_misses)
        .num("cache_invalidations", report.cache_invalidations)
        .raw("cache_hit_ratio", &format!("{:.6}", report.cache_hit_ratio))
        .raw("cache_speedup", &format!("{:.4}", report.cache_speedup))
        .raw("parallel_speedup", &format!("{:.4}", report.parallel_speedup))
        .num("round_parallel_workers", report.round_parallel_workers)
        .num("elapsed_ms", report.elapsed_ms)
        .num("divergence_count", report.divergences.len())
        .raw("divergences", &divergences)
        .bool("passed", passed)
        .raw("telemetry", &telemetry.to_json())
        .finish();
    std::fs::write(out, format!("{json}\n")).expect("write serve-storm report");
    println!(
        "[serve-storm] {} rounds, {} events, {} checks ({} refusals, {} shed-tightened), \
         {} flips ({} coalesced), {} panics contained, {} oracle cross-checks",
        report.rounds,
        report.events,
        report.checks,
        report.refusals,
        report.sheds,
        report.flips,
        report.coalesced,
        report.panics_contained,
        report.oracle_checks
    );
    println!(
        "[serve-storm] kill/recover: {} ({} subscriptions restored, {} WAL-tail records); \
         honest definite fraction {:.4}; adversary Unknown: {} (envelope dry {} rounds); \
         flip latency p50/p95/p99 = {:.2}/{:.2}/{:.2} ms",
        if report.kill_recover { "ran" } else { "SKIPPED" },
        report.recovered_subs,
        report.recovery_wal_tail,
        report.definite_fraction,
        report.adversary_all_unknown,
        report.adversary_exhausted_rounds,
        p50 as f64 / 1e6,
        p95 as f64 / 1e6,
        p99 as f64 / 1e6,
    );
    println!(
        "[serve-storm] reuse: {} cache hits / {} misses (hit ratio {:.4}), \
         {} invalidations; cache speedup {:.2}x, parallel speedup {:.2}x \
         ({} workers)",
        report.cache_hits,
        report.cache_misses,
        report.cache_hit_ratio,
        report.cache_invalidations,
        report.cache_speedup,
        report.parallel_speedup,
        report.round_parallel_workers,
    );
    println!("[serve-storm] wrote {out}");
    if passed {
        println!(
            "[serve-storm] PASS: fault isolation held and the shared cache paid for itself"
        );
    } else {
        eprintln!("[serve-storm] FAIL:");
        if !report.divergences.is_empty() {
            eprintln!(
                "[serve-storm]   {} cross-tenant divergence(s) vs the single-tenant oracle:",
                report.divergences.len()
            );
            for d in &report.divergences {
                eprintln!("[serve-storm]     {d}");
            }
        }
        if !report.adversary_all_unknown {
            eprintln!("[serve-storm]   adversarial tenant obtained a definite verdict");
        }
        if report.definite_fraction < 0.99 {
            eprintln!(
                "[serve-storm]   honest tenants degraded: definite fraction {:.4} < 0.99",
                report.definite_fraction
            );
        }
        if report.panics_contained == 0 {
            eprintln!("[serve-storm]   the panic window never fired");
        }
        if report.coalesced == 0 {
            eprintln!("[serve-storm]   stalled clients never coalesced a notification");
        }
        if report.adversary_exhausted_rounds == 0 {
            eprintln!("[serve-storm]   the adversary's envelope never ran dry");
        }
        if !report.kill_recover {
            eprintln!("[serve-storm]   the kill/recover drill did not run");
        }
        if !reuse_hit_ok {
            eprintln!(
                "[serve-storm]   duplicate-shape cohort missed the cache: \
                 hit ratio {:.4} <= 0.5",
                report.cache_hit_ratio
            );
        }
        if !cache_speedup_ok {
            eprintln!(
                "[serve-storm]   shared cache did not pay for itself: \
                 speedup {:.2}x < 2.0x",
                report.cache_speedup
            );
        }
        if !parallel_ok {
            eprintln!(
                "[serve-storm]   parallel rounds did not pay for themselves: \
                 speedup {:.2}x < 1.5x with {} workers",
                report.parallel_speedup, report.round_parallel_workers
            );
        }
        std::process::exit(1);
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut seed = 42u64;
    let mut smoke = false;
    let mut epochs: Option<u64> = None;
    let mut constraints = 8usize;
    let mut components = 1usize;
    let mut giant_size: Option<usize> = None;
    let mut profile = false;
    let mut profile_out: Option<String> = None;
    let mut compare: Option<String> = None;
    let mut out: Option<String> = None;
    let mut storage: Option<String> = None;
    let mut apply_mode = bcdb_monitor::EpochApply::Incremental;
    let mut which = "all".to_string();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--seed" => {
                seed = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .expect("--seed takes an integer");
            }
            "--smoke" => smoke = true,
            "--epochs" => {
                epochs = Some(
                    it.next()
                        .and_then(|s| s.parse().ok())
                        .expect("--epochs takes an integer"),
                );
            }
            "--constraints" => {
                constraints = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .expect("--constraints takes an integer");
            }
            "--components" => {
                components = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .expect("--components takes an integer >= 1");
            }
            "--giant-size" => {
                giant_size = Some(
                    it.next()
                        .and_then(|s| s.parse().ok())
                        .expect("--giant-size takes an integer >= 2"),
                );
            }
            "--profile" => profile = true,
            "--profile-out" => {
                profile_out = Some(it.next().expect("--profile-out takes a path").clone());
            }
            "--compare" => {
                compare = Some(it.next().expect("--compare takes a path").clone());
            }
            "--out" => {
                out = Some(it.next().expect("--out takes a path").clone());
            }
            "--storage" => {
                storage = Some(it.next().expect("--storage takes a value").clone());
            }
            "--apply-mode" => {
                apply_mode = parse_apply_mode(it.next().expect("--apply-mode takes a value"));
            }
            other => which = other.to_string(),
        }
    }
    let start = std::time::Instant::now();
    match which.as_str() {
        "table1" => table1(seed),
        "fig6a" => fig6_query_types(seed, true),
        "fig6b" => fig6_query_types(seed, false),
        "fig6c" => fig6_pending(seed, true),
        "fig6d" => fig6_pending(seed, false),
        "fig6e" => fig6_contradictions(seed, true),
        "fig6f" => fig6_contradictions(seed, false),
        "fig6g" => fig6g(seed),
        "fig6h" => fig6h(seed),
        "ablation" => ablation(seed),
        "governed" => governed(seed),
        "bench" => bench(&BenchArgs {
            smoke,
            out: out.as_deref().unwrap_or("BENCH_dcsat.json"),
            constraints,
            components,
            giant_size,
            profile,
            profile_out: profile_out.as_deref(),
            compare: compare.as_deref(),
        }),
        "soak" => soak(
            epochs.unwrap_or(50),
            seed,
            out.as_deref().unwrap_or("SOAK_report.json"),
            storage.as_deref().and_then(parse_storage),
            apply_mode,
        ),
        "crashstorm" => crashstorm(
            smoke,
            epochs.unwrap_or(if smoke { 10 } else { 100 }),
            seed,
            out.as_deref().unwrap_or("CRASH_report.json"),
        ),
        "serve-storm" => serve_storm(
            smoke,
            seed,
            out.as_deref().unwrap_or("SERVE_report.json"),
        ),
        "all" => {
            table1(seed);
            fig6_query_types(seed, true);
            fig6_query_types(seed, false);
            fig6_pending(seed, true);
            fig6_pending(seed, false);
            fig6_contradictions(seed, true);
            fig6_contradictions(seed, false);
            fig6g(seed);
            fig6h(seed);
            ablation(seed);
            governed(seed);
        }
        other => {
            eprintln!("unknown experiment '{other}'");
            eprintln!(
                "choose: table1 fig6a fig6b fig6c fig6d fig6e fig6f fig6g fig6h ablation governed \
                 bench [--smoke] [--constraints N] [--components N] [--giant-size N] \
                 [--profile] [--profile-out PATH] [--compare PATH] [--out PATH] \
                 soak [--epochs N] [--seed S] [--out PATH] [--storage memory|disk:<dir>] \
                 [--apply-mode incremental|rebuild|verified] \
                 crashstorm [--smoke] [--epochs N] [--seed S] [--out PATH] \
                 serve-storm [--smoke] [--seed S] [--out PATH] all"
            );
            std::process::exit(2);
        }
    }
    eprintln!(
        "[repro] total wall time: {:.1}s",
        start.elapsed().as_secs_f64()
    );
}
