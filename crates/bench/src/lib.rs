#![warn(missing_docs)]

//! Shared harness code for the experiment reproduction (`repro` binary)
//! and the Criterion micro-benchmarks.

pub mod datasets;
pub mod picker;
pub mod queries;
pub mod report;
pub mod workload;

pub use datasets::{load_dataset, load_export, LoadedDataset};
pub use picker::ConstantPicker;
pub use queries::{pick_unsat_constants, qa_text, qp_text, qr_text, qs_text, SAT_ADDRESS};
pub use report::{budget_json, governed_record, stats_json, time_avg, JsonObject, Table};
pub use workload::{giant_component, GiantComponent};
