//! Timing and plain-text table rendering for the experiment harness.

use std::time::{Duration, Instant};

/// Runs `f` `runs` times and returns the mean wall-clock duration (the
/// paper reports the average of three executions).
pub fn time_avg(runs: usize, mut f: impl FnMut()) -> Duration {
    let mut total = Duration::ZERO;
    for _ in 0..runs {
        let start = Instant::now();
        f();
        total += start.elapsed();
    }
    total / runs as u32
}

/// A plain-text table with aligned columns.
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Starts a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header's column count).
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.header.len());
        self.rows.push(cells.to_vec());
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let fmt_row = |cells: &[String]| -> String {
            let mut s = String::new();
            for i in 0..cols {
                if i > 0 {
                    s.push_str("  ");
                }
                s.push_str(&format!("{:<width$}", cells[i], width = widths[i]));
            }
            s.trim_end().to_string()
        };
        let mut out = fmt_row(&self.header);
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }
}

/// Formats a duration in seconds with millisecond precision.
pub fn secs(d: Duration) -> String {
    format!("{:.4}", d.as_secs_f64())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["name", "value"]);
        t.row(&["a".into(), "1".into()]);
        t.row(&["longer".into(), "22".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[3].starts_with("longer"));
    }

    #[test]
    fn time_avg_runs_n_times() {
        let mut n = 0;
        let d = time_avg(3, || n += 1);
        assert_eq!(n, 3);
        assert!(d < Duration::from_secs(1));
    }

    #[test]
    fn secs_formatting() {
        assert_eq!(secs(Duration::from_millis(1500)), "1.5000");
    }
}
