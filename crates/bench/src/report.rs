//! Timing, plain-text table rendering, and machine-readable JSON records
//! for the experiment harness.

use bcdb_core::{BudgetSpec, DcSatStats, GovernedOutcome, Verdict};
use std::fmt::Write as _;
use std::time::{Duration, Instant};

/// Runs `f` `runs` times and returns the mean wall-clock duration (the
/// paper reports the average of three executions).
pub fn time_avg(runs: usize, f: impl FnMut()) -> Duration {
    time_runs(runs, f).0
}

/// Runs `f` `runs` times and returns `(mean, min)` wall-clock durations.
/// The mean matches the paper's reporting; the min is the noise-robust
/// estimator (least interference from the rest of the machine) that the
/// `--compare` trajectory gate diffs against.
pub fn time_runs(runs: usize, mut f: impl FnMut()) -> (Duration, Duration) {
    let mut total = Duration::ZERO;
    let mut min = Duration::MAX;
    for _ in 0..runs {
        let start = Instant::now();
        f();
        let d = start.elapsed();
        total += d;
        min = min.min(d);
    }
    (total / runs as u32, min)
}

/// A plain-text table with aligned columns.
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Starts a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header's column count).
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.header.len());
        self.rows.push(cells.to_vec());
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let fmt_row = |cells: &[String]| -> String {
            let mut s = String::new();
            for i in 0..cols {
                if i > 0 {
                    s.push_str("  ");
                }
                s.push_str(&format!("{:<width$}", cells[i], width = widths[i]));
            }
            s.trim_end().to_string()
        };
        let mut out = fmt_row(&self.header);
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }
}

/// Formats a duration in seconds with millisecond precision.
pub fn secs(d: Duration) -> String {
    format!("{:.4}", d.as_secs_f64())
}

/// Escapes a string for inclusion inside a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                write!(out, "\\u{:04x}", c as u32).unwrap();
            }
            c => out.push(c),
        }
    }
    out
}

/// Builder for one flat JSON object. The workspace is vendored and carries
/// no serde, so bench reports hand-roll their (small, flat) records.
pub struct JsonObject {
    buf: String,
}

impl JsonObject {
    /// Starts an empty object.
    pub fn new() -> Self {
        JsonObject { buf: "{".into() }
    }

    fn key(&mut self, key: &str) {
        if self.buf.len() > 1 {
            self.buf.push(',');
        }
        write!(self.buf, "\"{}\":", json_escape(key)).unwrap();
    }

    /// Adds a string field.
    pub fn str(mut self, key: &str, value: &str) -> Self {
        self.key(key);
        write!(self.buf, "\"{}\"", json_escape(value)).unwrap();
        self
    }

    /// Adds a numeric field.
    pub fn num(mut self, key: &str, value: impl std::fmt::Display) -> Self {
        self.key(key);
        write!(self.buf, "{value}").unwrap();
        self
    }

    /// Adds a numeric-or-null field (`None` renders as `null`).
    pub fn opt_num(mut self, key: &str, value: Option<impl std::fmt::Display>) -> Self {
        self.key(key);
        match value {
            Some(v) => write!(self.buf, "{v}").unwrap(),
            None => self.buf.push_str("null"),
        }
        self
    }

    /// Adds a boolean field.
    pub fn bool(mut self, key: &str, value: bool) -> Self {
        self.key(key);
        self.buf.push_str(if value { "true" } else { "false" });
        self
    }

    /// Adds a pre-rendered JSON value (e.g. a nested object).
    pub fn raw(mut self, key: &str, value: &str) -> Self {
        self.key(key);
        self.buf.push_str(value);
        self
    }

    /// Closes the object and returns the JSON text.
    pub fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

impl Default for JsonObject {
    fn default() -> Self {
        JsonObject::new()
    }
}

/// Finds the first `"key":` anywhere in `json` and parses the number that
/// follows. Hand-rolled (the vendored workspace carries no serde) and only
/// meant for the bench harness's own flat reports, where the first
/// occurrence of a top-level key precedes any nested shadow.
pub fn json_find_num(json: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let at = json.find(&needle)? + needle.len();
    let rest = &json[at..];
    let end = rest
        .find(|c: char| !matches!(c, '0'..='9' | '-' | '+' | '.' | 'e' | 'E'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Finds the first `"key":` and parses the boolean that follows.
pub fn json_find_bool(json: &str, key: &str) -> Option<bool> {
    let needle = format!("\"{key}\":");
    let at = json.find(&needle)? + needle.len();
    let rest = &json[at..];
    if rest.starts_with("true") {
        Some(true)
    } else if rest.starts_with("false") {
        Some(false)
    } else {
        None
    }
}

/// Extracts every `"config":"NAME" … "<key>":N` pair from a bench report,
/// in document order (`key` is `wall_ms` or `wall_min_ms`). Matches the
/// records and delta-ablation entries the harness itself writes (the batch
/// object carries `wall_ms` without a `config` and is skipped by
/// construction). The search for `key` is bounded by the next `"config"`
/// so a record missing the key is skipped rather than mispaired.
pub fn config_walls(json: &str, key: &str) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    let mut rest = json;
    while let Some(at) = rest.find("\"config\":\"") {
        rest = &rest[at + "\"config\":\"".len()..];
        let Some(name_end) = rest.find('"') else { break };
        let name = rest[..name_end].to_string();
        rest = &rest[name_end..];
        let window = match rest.find("\"config\":\"") {
            Some(next) => &rest[..next],
            None => rest,
        };
        if let Some(w) = json_find_num(window, key) {
            out.push((name, w));
        }
    }
    out
}

/// Renders a [`BudgetSpec`] as a JSON object (absent limits are `null`).
pub fn budget_json(budget: &BudgetSpec) -> String {
    JsonObject::new()
        .opt_num("timeout_ms", budget.timeout.map(|d| d.as_millis()))
        .opt_num("max_cliques", budget.max_cliques)
        .opt_num("max_worlds", budget.max_worlds)
        .opt_num("max_tuples", budget.max_tuples)
        .finish()
}

/// Renders [`DcSatStats`] as a JSON object (the solver-work counters shared
/// by governed records and the `repro bench` report).
pub fn stats_json(stats: &DcSatStats) -> String {
    JsonObject::new()
        .str("algorithm", stats.algorithm)
        .num("worlds_evaluated", stats.worlds_evaluated)
        .num("cliques_enumerated", stats.cliques_enumerated)
        .num("subproblems_spawned", stats.subproblems_spawned)
        .num("delta_seeded_evals", stats.delta_seeded_evals)
        .num("base_cache_hits", stats.base_cache_hits)
        .num("poisoned_workers", stats.poisoned_workers)
        .finish()
}

/// Renders one governed DCSat run as a single-line JSON record: the budget
/// that governed it, the verdict it reached, and the solver statistics.
pub fn governed_record(label: &str, budget: &BudgetSpec, outcome: &GovernedOutcome) -> String {
    let (verdict, reason, witness_txs) = match &outcome.verdict {
        Verdict::Holds => ("holds", None, None),
        Verdict::Violated(w) => ("violated", None, Some(w.txs().count())),
        Verdict::Unknown(r) => ("unknown", Some(r.to_string()), None),
    };
    let stats = stats_json(&outcome.stats);
    let mut o = JsonObject::new()
        .str("label", label)
        .raw("budget", &budget_json(budget))
        .str("verdict", verdict);
    if let Some(r) = &reason {
        o = o.str("reason", r);
    }
    o = o.opt_num("witness_txs", witness_txs);
    if let Some(d) = outcome.degraded_to {
        o = o.str("degraded_to", d);
    }
    o.num("elapsed_ms", format!("{:.3}", outcome.elapsed.as_secs_f64() * 1e3))
        .raw("stats", &stats)
        .finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["name", "value"]);
        t.row(&["a".into(), "1".into()]);
        t.row(&["longer".into(), "22".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[3].starts_with("longer"));
    }

    #[test]
    fn time_avg_runs_n_times() {
        let mut n = 0;
        let d = time_avg(3, || n += 1);
        assert_eq!(n, 3);
        assert!(d < Duration::from_secs(1));
    }

    #[test]
    fn secs_formatting() {
        assert_eq!(secs(Duration::from_millis(1500)), "1.5000");
    }

    #[test]
    fn json_object_renders() {
        let s = JsonObject::new()
            .str("name", "a\"b\\c\nd")
            .num("n", 3)
            .opt_num("absent", None::<u64>)
            .bool("flag", true)
            .raw("inner", "{\"x\":1}")
            .finish();
        assert_eq!(
            s,
            "{\"name\":\"a\\\"b\\\\c\\nd\",\"n\":3,\"absent\":null,\"flag\":true,\"inner\":{\"x\":1}}"
        );
    }

    #[test]
    fn json_extractors_round_trip_a_bench_report() {
        let report = JsonObject::new()
            .bool("smoke", true)
            .num("pairs", 8)
            .num("components", 1)
            .raw(
                "records",
                "[{\"config\":\"naive\",\"wall_ms\":12.5,\"wall_min_ms\":11.0,\
                   \"stats\":{\"x\":1}},\
                 {\"config\":\"opt-serial\",\"wall_ms\":3.25}]",
            )
            .raw("batch", "{\"constraints\":8,\"wall_ms\":99.0}")
            .finish();
        assert_eq!(json_find_bool(&report, "smoke"), Some(true));
        assert_eq!(json_find_num(&report, "pairs"), Some(8.0));
        assert_eq!(json_find_num(&report, "absent"), None);
        let walls = config_walls(&report, "wall_ms");
        assert_eq!(
            walls,
            vec![("naive".to_string(), 12.5), ("opt-serial".to_string(), 3.25)],
            "batch wall_ms (no config) must not be picked up"
        );
        let mins = config_walls(&report, "wall_min_ms");
        assert_eq!(
            mins,
            vec![("naive".to_string(), 11.0)],
            "a record lacking the key is skipped, not mispaired with the next"
        );
    }

    #[test]
    fn budget_json_renders_limits_and_nulls() {
        let mut b = BudgetSpec::UNLIMITED;
        b.timeout = Some(Duration::from_millis(50));
        b.max_worlds = Some(64);
        assert_eq!(
            budget_json(&b),
            "{\"timeout_ms\":50,\"max_cliques\":null,\"max_worlds\":64,\"max_tuples\":null}"
        );
    }
}
