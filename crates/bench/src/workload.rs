//! Synthetic single-giant-component workload for the `repro bench`
//! subcommand.
//!
//! `pairs` contradiction pairs over a keyed `Pay` relation: transaction
//! `a_j` writes `Pay(j, ..)` plus `Ack((j+1) mod pairs)`, while its rival
//! `b_j` writes only `Pay(j, ..)` with a different payee. The shared key
//! makes `a_j`/`b_j` mutually exclusive, so GfTd is the complete
//! multipartite graph K_{2×pairs} with `2^pairs` maximal cliques, while
//! the `Ack → Pay` inclusion dependency chains every pair to the next and
//! fuses all `2·pairs` transactions into ONE independence component.
//! OptDCSat therefore gets no component-level parallelism at all — only
//! the intra-component subproblem split can spread the clique enumeration
//! over cores, which is exactly the regime this workload benchmarks.
//!
//! `inert_base_rows` pre-existing `Pay` ledger rows match the first query
//! atom's payee but can never complete a violation, so a full per-world
//! evaluation re-probes all of them in every world while the delta-seeded
//! evaluator only touches each world's pending tuples.
//!
//! One corner is intentional: the all-`a` clique is a *cyclic*
//! acknowledgment chain that no append order can bootstrap, so `getMaximal`
//! collapses it to the base world and the delta evaluator answers it from
//! the cached base verdict with no join work (`base_cache_hits` exceeds
//! `delta_seeded_evals` by exactly one).

use bcdb_core::BlockchainDb;
use bcdb_query::{parse_denial_constraint, DenialConstraint};
use bcdb_storage::{tuple, Catalog, ConstraintSet, Fd, Ind, RelationSchema, ValueType};

/// A built giant-component scenario plus the constraint to check over it.
pub struct GiantComponent {
    /// The blockchain database (base ledger + pending transactions).
    pub db: BlockchainDb,
    /// "No id is ever paid to both payees" — false in the base world, true
    /// in `R ∪ ⋃T`, and false in every possible world, so every algorithm
    /// must enumerate all `2^pairs` maximal cliques to prove it holds.
    pub dc: DenialConstraint,
    /// Number of contradiction pairs *per component* (`2^pairs` maximal
    /// cliques each).
    pub pairs: usize,
    /// Number of disjoint giant components (1 for the classic workload).
    pub components: usize,
    /// Number of inert base ledger rows.
    pub inert_base_rows: usize,
}

/// Builds the workload; see the module docs for the construction.
pub fn giant_component(pairs: usize, inert_base_rows: usize) -> GiantComponent {
    multi_component(1, pairs, inert_base_rows)
}

/// `components` disjoint copies of the [`giant_component`] gadget: copy `c`
/// uses `Pay` ids `c·pairs ..< (c+1)·pairs` and its `Ack` chain stays inside
/// the copy, so `Gq,ind` has exactly `components` independence components of
/// `2·pairs` transactions each. Every copy reuses the same two payees, so
/// the covers check prunes nothing and OptDCSat gets *component-level*
/// parallelism (each component still splits further when large enough) —
/// the regime where `opt-component-parallel` and `opt-serial` become
/// distinguishable.
pub fn multi_component(
    components: usize,
    pairs: usize,
    inert_base_rows: usize,
) -> GiantComponent {
    assert!(components >= 1, "need at least one component");
    assert!(pairs >= 2, "need at least two contradiction pairs");
    let mut cat = Catalog::new();
    cat.add(
        RelationSchema::new(
            "Pay",
            [
                ("id", ValueType::Int),
                ("payer", ValueType::Text),
                ("payee", ValueType::Text),
                ("amt", ValueType::Int),
            ],
        )
        .unwrap(),
    )
    .unwrap();
    cat.add(RelationSchema::new("Ack", [("payRef", ValueType::Int)]).unwrap())
        .unwrap();
    let mut cs = ConstraintSet::new();
    cs.add_fd(Fd::named_key(&cat, "Pay", &["id"]).unwrap());
    cs.add_ind(Ind::named(&cat, "Ack", &["payRef"], "Pay", &["id"]).unwrap());
    let mut db = BlockchainDb::new(cat, cs);
    let pay = db.database().catalog().resolve("Pay").unwrap();
    let ack = db.database().catalog().resolve("Ack").unwrap();
    for i in 0..inert_base_rows {
        // Ledger history matching the first query atom's payee; its ids
        // never gain a 'carol' payment, so each row only costs probe work.
        db.insert_current(pay, tuple![-(1 + i as i64), "ledger", "bob", 0i64])
            .unwrap();
    }
    let k = pairs as i64;
    for c in 0..components as i64 {
        let base = c * k;
        for j in 0..k {
            db.add_transaction(
                format!("a{c}_{j}"),
                [
                    (pay, tuple![base + j, "alice", "bob", 1i64]),
                    (ack, tuple![base + (j + 1) % k]),
                ],
            )
            .unwrap();
            db.add_transaction(
                format!("b{c}_{j}"),
                [(pay, tuple![base + j, "alice", "carol", 1i64])],
            )
            .unwrap();
        }
    }
    let dc = parse_denial_constraint(
        "q() <- Pay(i, p, 'bob', a), Pay(i, p2, 'carol', a2)",
        db.database().catalog(),
    )
    .unwrap();
    GiantComponent {
        db,
        dc,
        pairs,
        components,
        inert_base_rows,
    }
}

/// `n` distinct-but-structurally-identical variants of
/// [`GiantComponent::dc`] for the multi-constraint batch benchmark: each
/// renames the variables and alternates the atom order, leaving Θq, the
/// covers constants, and the Gaifman shape untouched. A batch of these
/// shares one refined partition, so the single giant component's clique
/// enumeration is re-used by every constraint after the first.
pub fn constraint_variants(w: &GiantComponent, n: usize) -> Vec<DenialConstraint> {
    (0..n)
        .map(|j| {
            let text = if j % 2 == 0 {
                format!("q() <- Pay(i{j}, p{j}, 'bob', a{j}), Pay(i{j}, q{j}, 'carol', b{j})")
            } else {
                format!("q() <- Pay(i{j}, p{j}, 'carol', a{j}), Pay(i{j}, q{j}, 'bob', b{j})")
            };
            parse_denial_constraint(&text, w.db.database().catalog()).expect("variant parses")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bcdb_core::{Algorithm, DcSatOptions, Solver, Verdict};

    #[test]
    fn giant_component_shape_and_verdict() {
        let w = giant_component(5, 20);
        let dc = w.dc.clone();
        let mut solver = Solver::builder(w.db)
            .algorithm(Algorithm::Opt)
            .build();
        let out = solver.check_ungoverned(&dc).unwrap();
        assert!(out.satisfied, "constraint holds in every world");
        assert_eq!(out.stats.components_total, 1, "one fused component");
        assert_eq!(out.stats.cliques_enumerated, 1 << 5, "2^pairs cliques");
    }

    #[test]
    fn multi_component_shape_and_verdict() {
        let w = multi_component(3, 4, 10);
        let dc = w.dc.clone();
        let mut solver = Solver::builder(w.db)
            .algorithm(Algorithm::Opt)
            .build();
        let out = solver.check_ungoverned(&dc).unwrap();
        assert!(out.satisfied, "constraint holds in every world");
        assert_eq!(out.stats.components_total, 3, "one component per copy");
        assert_eq!(
            out.stats.components_checked,
            3,
            "shared payees keep covers from pruning any copy"
        );
        assert_eq!(
            out.stats.cliques_enumerated,
            3 * (1 << 4),
            "2^pairs cliques per component"
        );
    }

    #[test]
    fn multi_component_parallel_configs_agree_with_serial() {
        let w = multi_component(4, 3, 5);
        let dc = w.dc.clone();
        let mut solver = Solver::builder(w.db)
            .options(
                DcSatOptions::default()
                    .with_algorithm(Algorithm::Opt)
                    .with_parallel(true),
            )
            .build();
        let out = solver.check_ungoverned(&dc).unwrap();
        assert!(out.satisfied);
        assert_eq!(out.stats.cliques_enumerated, 4 * (1 << 3));
    }

    #[test]
    fn batch_variants_reuse_the_giant_component() {
        let w = giant_component(4, 10);
        let dcs = constraint_variants(&w, 4);
        let mut solver = Solver::builder(w.db)
            .options(DcSatOptions::default().with_algorithm(Algorithm::Opt))
            .build();
        let batch = solver.check_batch(&dcs);
        for outcome in &batch.outcomes {
            let out = outcome.as_ref().expect("variants are well-formed");
            assert!(matches!(out.verdict, Verdict::Holds));
        }
        assert_eq!(batch.components_enumerated, 1, "one fresh enumeration");
        assert_eq!(batch.components_reused, 3, "replayed for the other three");
        assert!(batch.clique_reuse_ratio() > 1.0);
    }
}
