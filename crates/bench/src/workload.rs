//! Synthetic single-giant-component workload for the `repro bench`
//! subcommand.
//!
//! `pairs` contradiction pairs over a keyed `Pay` relation: transaction
//! `a_j` writes `Pay(j, ..)` plus `Ack((j+1) mod pairs)`, while its rival
//! `b_j` writes only `Pay(j, ..)` with a different payee. The shared key
//! makes `a_j`/`b_j` mutually exclusive, so GfTd is the complete
//! multipartite graph K_{2×pairs} with `2^pairs` maximal cliques, while
//! the `Ack → Pay` inclusion dependency chains every pair to the next and
//! fuses all `2·pairs` transactions into ONE independence component.
//! OptDCSat therefore gets no component-level parallelism at all — only
//! the intra-component subproblem split can spread the clique enumeration
//! over cores, which is exactly the regime this workload benchmarks.
//!
//! `inert_base_rows` pre-existing `Pay` ledger rows match the first query
//! atom's payee but can never complete a violation, so a full per-world
//! evaluation re-probes all of them in every world while the delta-seeded
//! evaluator only touches each world's pending tuples.
//!
//! One corner is intentional: the all-`a` clique is a *cyclic*
//! acknowledgment chain that no append order can bootstrap, so `getMaximal`
//! collapses it to the base world and the delta evaluator answers it from
//! the cached base verdict with no join work (`base_cache_hits` exceeds
//! `delta_seeded_evals` by exactly one).

use bcdb_core::BlockchainDb;
use bcdb_query::{parse_denial_constraint, DenialConstraint};
use bcdb_storage::{tuple, Catalog, ConstraintSet, Fd, Ind, RelationSchema, ValueType};

/// A built giant-component scenario plus the constraint to check over it.
pub struct GiantComponent {
    /// The blockchain database (base ledger + pending transactions).
    pub db: BlockchainDb,
    /// "No id is ever paid to both payees" — false in the base world, true
    /// in `R ∪ ⋃T`, and false in every possible world, so every algorithm
    /// must enumerate all `2^pairs` maximal cliques to prove it holds.
    pub dc: DenialConstraint,
    /// Number of contradiction pairs (`2^pairs` possible worlds).
    pub pairs: usize,
    /// Number of inert base ledger rows.
    pub inert_base_rows: usize,
}

/// Builds the workload; see the module docs for the construction.
pub fn giant_component(pairs: usize, inert_base_rows: usize) -> GiantComponent {
    assert!(pairs >= 2, "need at least two contradiction pairs");
    let mut cat = Catalog::new();
    cat.add(
        RelationSchema::new(
            "Pay",
            [
                ("id", ValueType::Int),
                ("payer", ValueType::Text),
                ("payee", ValueType::Text),
                ("amt", ValueType::Int),
            ],
        )
        .unwrap(),
    )
    .unwrap();
    cat.add(RelationSchema::new("Ack", [("payRef", ValueType::Int)]).unwrap())
        .unwrap();
    let mut cs = ConstraintSet::new();
    cs.add_fd(Fd::named_key(&cat, "Pay", &["id"]).unwrap());
    cs.add_ind(Ind::named(&cat, "Ack", &["payRef"], "Pay", &["id"]).unwrap());
    let mut db = BlockchainDb::new(cat, cs);
    let pay = db.database().catalog().resolve("Pay").unwrap();
    let ack = db.database().catalog().resolve("Ack").unwrap();
    for i in 0..inert_base_rows {
        // Ledger history matching the first query atom's payee; its ids
        // never gain a 'carol' payment, so each row only costs probe work.
        db.insert_current(pay, tuple![-(1 + i as i64), "ledger", "bob", 0i64])
            .unwrap();
    }
    let k = pairs as i64;
    for j in 0..k {
        db.add_transaction(
            format!("a{j}"),
            [
                (pay, tuple![j, "alice", "bob", 1i64]),
                (ack, tuple![(j + 1) % k]),
            ],
        )
        .unwrap();
        db.add_transaction(format!("b{j}"), [(pay, tuple![j, "alice", "carol", 1i64])])
            .unwrap();
    }
    let dc = parse_denial_constraint(
        "q() <- Pay(i, p, 'bob', a), Pay(i, p2, 'carol', a2)",
        db.database().catalog(),
    )
    .unwrap();
    GiantComponent {
        db,
        dc,
        pairs,
        inert_base_rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bcdb_core::{dcsat, Algorithm, DcSatOptions};

    #[test]
    fn giant_component_shape_and_verdict() {
        let mut w = giant_component(5, 20);
        let out = dcsat(
            &mut w.db,
            &w.dc,
            &DcSatOptions {
                algorithm: Algorithm::Opt,
                ..DcSatOptions::default()
            },
        )
        .unwrap();
        assert!(out.satisfied, "constraint holds in every world");
        assert_eq!(out.stats.components_total, 1, "one fused component");
        assert_eq!(out.stats.cliques_enumerated, 1 << 5, "2^pairs cliques");
    }
}
