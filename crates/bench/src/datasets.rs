//! Dataset generation and loading into blockchain databases.

use bcdb_chain::{
    export, generate, Dataset, ExportCounts, RelationalExport, Scenario, ScenarioConfig,
};
use bcdb_core::BlockchainDb;

/// A generated dataset loaded into a [`BlockchainDb`].
pub struct LoadedDataset {
    /// The dataset's display name.
    pub name: String,
    /// The loaded database (current state + pending transactions).
    pub db: BlockchainDb,
    /// Table 1 counts for the current state.
    pub base_counts: ExportCounts,
    /// Table 1 counts for the pending set.
    pub pending_counts: ExportCounts,
    /// The underlying simulated scenario (used by structural constant
    /// pickers).
    pub scenario: Scenario,
}

/// Loads a relational export into a fresh [`BlockchainDb`].
pub fn load_export(e: &RelationalExport) -> BlockchainDb {
    let mut db = BlockchainDb::new(e.catalog.clone(), e.constraints.clone());
    for (rel, tuple) in &e.base {
        db.insert_current(*rel, tuple.clone())
            .expect("export is schema-consistent");
    }
    for (name, tuples) in &e.pending {
        db.add_transaction(name.clone(), tuples.iter().cloned())
            .expect("export is schema-consistent");
    }
    db
}

/// Generates and loads a preset dataset.
pub fn load_dataset(ds: Dataset, seed: u64) -> LoadedDataset {
    load_config(ds.name(), &ds.config(seed))
}

/// Generates and loads a custom configuration.
pub fn load_config(name: &str, cfg: &ScenarioConfig) -> LoadedDataset {
    let scenario = generate(cfg);
    let e = export(&scenario).expect("generated scenarios always export");
    LoadedDataset {
        name: name.to_string(),
        db: load_export(&e),
        base_counts: e.base_counts,
        pending_counts: e.pending_counts,
        scenario,
    }
}
