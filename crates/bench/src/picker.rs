//! Structural constant selection for the unsatisfied-constraint regime.
//!
//! Probing a joined query for satisfying constants can itself be
//! combinatorial; instead these pickers walk the simulated chain/mempool
//! structure directly, which is linear and deterministic:
//!
//! * `qs`/`qa`: the owner of a pending transaction's output;
//! * `qpᵢ`: walk a pending transaction's ancestry back `i-1` spend hops;
//! * `qrᵢ`: an address whose inputs feed `≥ i` distinct transactions, at
//!   least one of them pending.

use bcdb_chain::{Digest, OutPoint, Scenario, Transaction};
use rustc_hash::{FxHashMap, FxHashSet};

/// Picks query constants from a generated scenario.
pub struct ConstantPicker<'a> {
    scenario: &'a Scenario,
    index: FxHashMap<Digest, &'a Transaction>,
}

impl<'a> ConstantPicker<'a> {
    /// Indexes the scenario's transactions.
    pub fn new(scenario: &'a Scenario) -> Self {
        let mut index: FxHashMap<Digest, &'a Transaction> = FxHashMap::default();
        for block in scenario.chain.blocks() {
            for tx in &block.transactions {
                index.insert(tx.txid(), tx);
            }
        }
        for e in scenario.mempool.entries() {
            index.insert(e.tx.txid(), &e.tx);
        }
        ConstantPicker { scenario, index }
    }

    fn owner_of(&self, point: &OutPoint) -> Option<String> {
        let tx = self.index.get(&point.txid)?;
        tx.outputs()
            .get((point.vout - 1) as usize)
            .map(|o| o.script.display_owner())
    }

    /// An address receiving coins in a pending transaction (for `qs`/`qa`).
    pub fn receiver_unsat(&self) -> Option<String> {
        let e = self.scenario.mempool.entries().first()?;
        e.tx.outputs().first().map(|o| o.script.display_owner())
    }

    /// `(X, Y)` for `qpᵢ`: walks back from a pending transaction through
    /// `i-1` spend hops. `Y` owns the output the pending transaction
    /// spends; `X` owns the output at the start of the chain.
    pub fn path_unsat(&self, i: usize) -> Option<(String, String)> {
        assert!(i >= 2);
        let hops = i - 1;
        for e in self.scenario.mempool.entries() {
            for input in e.tx.inputs() {
                // o_h = the outpoint the pending tx spends.
                let last = input.prev;
                let Some(y) = self.owner_of(&last) else {
                    continue;
                };
                // Walk back hops-1 further steps.
                let mut current = last;
                let mut ok = true;
                for _ in 0..hops - 1 {
                    let Some(tx) = self.index.get(&current.txid) else {
                        ok = false;
                        break;
                    };
                    let Some(parent_input) = tx.inputs().first() else {
                        ok = false; // coinbase: chain too short
                        break;
                    };
                    current = parent_input.prev;
                }
                if !ok {
                    continue;
                }
                if let Some(x) = self.owner_of(&current) {
                    return Some((x, y));
                }
            }
        }
        None
    }

    /// `X` for `qrᵢ`: an address whose inputs appear in `≥ i` distinct
    /// transactions, at least one pending. The paper's star constraint
    /// also requires each of those transactions to have outputs, which
    /// every generated transaction does.
    pub fn star_unsat(&self, i: usize) -> Option<String> {
        // pk -> (distinct spending txids, any pending?)
        let mut spends: FxHashMap<String, (FxHashSet<Digest>, bool)> = FxHashMap::default();
        let mut scan = |tx: &Transaction, pending: bool| {
            for input in tx.inputs() {
                if let Some(owner) = self.owner_of(&input.prev) {
                    let entry = spends.entry(owner).or_default();
                    entry.0.insert(tx.txid());
                    entry.1 |= pending;
                }
            }
        };
        for block in self.scenario.chain.blocks() {
            for tx in &block.transactions {
                scan(tx, false);
            }
        }
        for e in self.scenario.mempool.entries() {
            scan(&e.tx, true);
        }
        let mut best: Option<&String> = None;
        for (pk, (txids, pending)) in &spends {
            if *pending && txids.len() >= i && best.is_none_or(|b| pk < b) {
                best = Some(pk);
            }
        }
        best.cloned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bcdb_chain::{generate, ScenarioConfig};

    fn scenario() -> Scenario {
        generate(&ScenarioConfig {
            seed: 5,
            wallets: 12,
            blocks: 15,
            txs_per_block: 8,
            pending_txs: 40,
            contradictions: 3,
            chain_dependency_pct: 40,
            ..ScenarioConfig::default()
        })
    }

    #[test]
    fn receiver_found() {
        let s = scenario();
        let p = ConstantPicker::new(&s);
        let r = p.receiver_unsat().unwrap();
        assert!(r.starts_with("pk"));
    }

    #[test]
    fn path_constants_found_for_small_sizes() {
        let s = scenario();
        let p = ConstantPicker::new(&s);
        for i in 2..=4 {
            let got = p.path_unsat(i);
            assert!(got.is_some(), "no path constants for size {i}");
        }
    }

    #[test]
    fn star_constants_found() {
        let s = scenario();
        let p = ConstantPicker::new(&s);
        let x = p.star_unsat(2);
        assert!(x.is_some());
    }

    #[test]
    fn star_requires_enough_fanout() {
        let s = scenario();
        let p = ConstantPicker::new(&s);
        // An absurd fan-out requirement returns None rather than junk.
        assert!(p.star_unsat(10_000).is_none());
    }
}
