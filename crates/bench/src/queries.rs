//! The paper's four denial-constraint families (§7) and constant selection.
//!
//! * `qs` — an address received bitcoins;
//! * `qpᵢ` — a transfer path through `i-1` (output, input) hops;
//! * `qrᵢ` — one address transferred to `i` distinct transactions (star);
//! * `qaⁿ` — an address received at least `n` satoshis in total.
//!
//! Constants are chosen either so the underlying query is unsatisfiable
//! over `R ∪ ⋃T` (the **satisfied**-constraint regime, where the monotone
//! pre-check answers instantly) or by probing the data for values realised
//! in some possible world (the **unsatisfied** regime, which forces world
//! enumeration).

use bcdb_core::BlockchainDb;
use bcdb_query::{for_each_match, parse_denial_constraint, prepare, DenialConstraint, EvalOptions};
use std::ops::ControlFlow;

/// An address guaranteed absent from generated datasets (satisfied regime).
pub const SAT_ADDRESS: &str = "pkNOSUCHADDRESS00";

/// `qs() ← TxOut(ntx, s, X, a)`.
pub fn qs_text(x: &str) -> String {
    format!("q() <- TxOut(ntx, s, '{x}', a)")
}

/// `qpᵢ`: the paper's path constraint. Size `i ≥ 2` produces `i-1`
/// (TxOut, TxIn) hops; `qp3` reproduces the paper's query verbatim
/// (including the shared amount variable in the final hop).
pub fn qp_text(i: usize, x: &str, y: &str) -> String {
    assert!(i >= 2, "path queries start at size 2");
    let hops = i - 1;
    let mut atoms: Vec<String> = Vec::new();
    for j in 1..=hops {
        let owner = if j == 1 {
            format!("'{x}'")
        } else {
            format!("pkout{j}")
        };
        let spender = if j == hops {
            format!("'{y}'")
        } else {
            format!("pkin{j}")
        };
        // Final hop spends the amount named in its TxOut (paper's a3).
        let (out_amt, in_amt) = if j == hops {
            (format!("a{j}"), format!("a{j}"))
        } else {
            (format!("a{j}"), format!("b{j}"))
        };
        atoms.push(format!("TxOut(ntx{j}, s{j}, {owner}, {out_amt})"));
        atoms.push(format!(
            "TxIn(ntx{j}, s{j}, {spender}, {in_amt}, ntx{}, sig{j})",
            j + 1
        ));
    }
    format!("q() <- {}", atoms.join(", "))
}

/// `qrᵢ`: the star constraint — address `X` spends inputs into `i`
/// pairwise-distinct new transactions, each of which has an output.
pub fn qr_text(i: usize, x: &str) -> String {
    assert!(i >= 2, "star queries start at size 2");
    let mut atoms = Vec::new();
    for j in 1..=i {
        atoms.push(format!("TxIn(pntx{j}, s{j}, '{x}', a{j}, ntx{j}, sig{j})"));
        atoms.push(format!("TxOut(ntx{j}, os{j}, pk{j}, b{j})"));
    }
    let mut cmps = Vec::new();
    for j in 1..=i {
        for k in j + 1..=i {
            cmps.push(format!("ntx{j} != ntx{k}"));
        }
    }
    format!("q() <- {}, {}", atoms.join(", "), cmps.join(", "))
}

/// `qaⁿ`: aggregate constraint — address `X` received `≥ n` satoshis.
pub fn qa_text(n: i64, x: &str) -> String {
    format!("[q(sum(a)) <- TxOut(ntx, s, '{x}', a)] >= {n}")
}

/// Probes the dataset for constants that make a query family's underlying
/// query satisfiable in some world reachable through pending transactions.
///
/// `probe` is the family's text with the constants replaced by the
/// variables named in `wanted` (e.g. `xx`, `yy`); the first match over
/// `R ∪ ⋃T` whose support includes at least one pending transaction
/// provides the values. Returns `None` if the data offers no such match.
pub fn pick_unsat_constants(
    db: &mut BlockchainDb,
    probe: &str,
    wanted: &[&str],
) -> Option<Vec<String>> {
    let dc = parse_denial_constraint(probe, db.database().catalog())
        .expect("probe queries are well-formed");
    let DenialConstraint::Conjunctive(q) = dc else {
        panic!("probe queries are conjunctive");
    };
    let var_idx: Vec<usize> = wanted
        .iter()
        .map(|name| {
            q.var_names
                .iter()
                .position(|n| n == name)
                .unwrap_or_else(|| panic!("probe lacks variable {name}"))
        })
        .collect();
    let pq = prepare(db.database_mut(), &q);
    let all = db.database().all_mask();
    let mut found: Option<Vec<String>> = None;
    for_each_match(db.database(), &pq, &all, EvalOptions::default(), |m| {
        if m.sources.iter().any(|s| s.tx().is_some()) {
            found = Some(
                var_idx
                    .iter()
                    .map(|&i| {
                        m.assignment[i]
                            .as_text()
                            .expect("address variables are text")
                            .to_string()
                    })
                    .collect(),
            );
            ControlFlow::Break(())
        } else {
            ControlFlow::Continue(())
        }
    });
    found
}

#[cfg(test)]
mod tests {
    use super::*;
    use bcdb_chain::bitcoin_catalog;

    #[test]
    fn qp3_matches_paper_shape() {
        let text = qp_text(3, "X", "Y");
        let (cat, _) = bitcoin_catalog();
        let dc = parse_denial_constraint(&text, &cat).unwrap();
        let q = dc.body();
        assert_eq!(q.positive.len(), 4); // TxOut, TxIn, TxOut, TxIn
        assert!(bcdb_query::is_connected(q));
        // Sizes 2..5 all parse and stay connected.
        for i in 2..=5 {
            let dc = parse_denial_constraint(&qp_text(i, "X", "Y"), &cat).unwrap();
            assert_eq!(dc.body().positive.len(), 2 * (i - 1));
            assert!(bcdb_query::is_connected(dc.body()));
        }
    }

    #[test]
    fn qr3_has_distinctness_comparisons() {
        let (cat, _) = bitcoin_catalog();
        let dc = parse_denial_constraint(&qr_text(3, "X"), &cat).unwrap();
        let q = dc.body();
        assert_eq!(q.positive.len(), 6);
        assert_eq!(q.comparisons.len(), 3); // C(3,2)
        assert!(bcdb_query::is_connected(q));
    }

    #[test]
    fn qa_is_aggregate() {
        let (cat, _) = bitcoin_catalog();
        let dc = parse_denial_constraint(&qa_text(100, "X"), &cat).unwrap();
        assert!(dc.is_aggregate());
        assert!(bcdb_query::monotonicity(&dc).is_monotone());
    }

    #[test]
    fn qs_parses() {
        let (cat, _) = bitcoin_catalog();
        assert!(parse_denial_constraint(&qs_text(SAT_ADDRESS), &cat).is_ok());
    }
}
