//! End-to-end DCSat benchmarks and ablations of each optimization the
//! paper (and this implementation) adds:
//!
//! * pre-check on/off (§6.3's monotone short-circuit);
//! * covers on/off (`OptDCSat`'s constant pruning);
//! * clique pivoting on/off;
//! * parallel component checking on/off (extension).
//!
//! All runs go through the [`Solver`] session facade: one session per
//! benchmark group owns the steady-state `Precomputed` structures, and
//! variants swap options on it via `set_options`.

use bcdb_bench::datasets::load_dataset;
use bcdb_bench::picker::ConstantPicker;
use bcdb_bench::queries::{qp_text, qs_text, SAT_ADDRESS};
use bcdb_chain::Dataset;
use bcdb_core::{Algorithm, DcSatOptions, Solver};
use bcdb_graph::CliqueStrategy;
use bcdb_query::parse_denial_constraint;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_end_to_end(c: &mut Criterion) {
    let d = load_dataset(Dataset::Small, 42);
    let scenario = d.scenario.clone();
    let picker = ConstantPicker::new(&scenario);
    let (px, py) = picker.path_unsat(3).expect("constants");

    let sat = parse_denial_constraint(
        &qp_text(3, SAT_ADDRESS, SAT_ADDRESS),
        d.db.database().catalog(),
    )
    .unwrap();
    let unsat = parse_denial_constraint(&qp_text(3, &px, &py), d.db.database().catalog()).unwrap();
    let mut solver = Solver::builder(d.db).build();

    let mut group = c.benchmark_group("dcsat/qp3");
    group.sample_size(10);
    for (regime, dc) in [("satisfied", &sat), ("unsatisfied", &unsat)] {
        for (name, algorithm) in [("naive", Algorithm::Naive), ("opt", Algorithm::Opt)] {
            solver.set_options(DcSatOptions::default().with_algorithm(algorithm));
            group.bench_function(format!("{name}/{regime}"), |b| {
                b.iter(|| solver.check_ungoverned(dc).unwrap())
            });
        }
    }
    group.finish();
}

fn bench_ablations(c: &mut Criterion) {
    let d = load_dataset(Dataset::Small, 42);
    let scenario = d.scenario.clone();
    let picker = ConstantPicker::new(&scenario);
    let recv = picker.receiver_unsat().expect("constants");
    let sat = parse_denial_constraint(&qs_text(SAT_ADDRESS), d.db.database().catalog()).unwrap();
    let unsat = parse_denial_constraint(&qs_text(&recv), d.db.database().catalog()).unwrap();
    let mut solver = Solver::builder(d.db).build();

    let mut group = c.benchmark_group("dcsat/ablations");
    group.sample_size(10);
    let variants: [(&str, DcSatOptions); 5] = [
        (
            "opt/full",
            DcSatOptions::default().with_algorithm(Algorithm::Opt),
        ),
        (
            "opt/no_precheck",
            DcSatOptions::default()
                .with_algorithm(Algorithm::Opt)
                .with_precheck(false),
        ),
        (
            "opt/no_covers",
            DcSatOptions::default()
                .with_algorithm(Algorithm::Opt)
                .with_precheck(false)
                .with_covers(false),
        ),
        (
            "opt/plain_bk",
            DcSatOptions::default()
                .with_algorithm(Algorithm::Opt)
                .with_precheck(false)
                .with_clique_strategy(CliqueStrategy::Plain),
        ),
        (
            "opt/parallel",
            DcSatOptions::default()
                .with_algorithm(Algorithm::Opt)
                .with_precheck(false)
                .with_parallel(true),
        ),
    ];
    for (name, options) in &variants {
        for (regime, dc) in [("satisfied", &sat), ("unsatisfied", &unsat)] {
            solver.set_options(options.clone());
            group.bench_function(format!("{name}/{regime}"), |b| {
                b.iter(|| solver.check_ungoverned(dc).unwrap())
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_end_to_end, bench_ablations);
criterion_main!(benches);
