//! End-to-end DCSat benchmarks and ablations of each optimization the
//! paper (and this implementation) adds:
//!
//! * pre-check on/off (§6.3's monotone short-circuit);
//! * covers on/off (`OptDCSat`'s constant pruning);
//! * clique pivoting on/off;
//! * parallel component checking on/off (extension).

use bcdb_bench::datasets::load_dataset;
use bcdb_bench::picker::ConstantPicker;
use bcdb_bench::queries::{qp_text, qs_text, SAT_ADDRESS};
use bcdb_chain::Dataset;
use bcdb_core::{dcsat_with, Algorithm, DcSatOptions, Precomputed};
use bcdb_graph::CliqueStrategy;
use bcdb_query::parse_denial_constraint;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_end_to_end(c: &mut Criterion) {
    let mut d = load_dataset(Dataset::Small, 42);
    let scenario = d.scenario.clone();
    let picker = ConstantPicker::new(&scenario);
    let (px, py) = picker.path_unsat(3).expect("constants");
    let pre = Precomputed::build(&d.db);

    let sat = parse_denial_constraint(
        &qp_text(3, SAT_ADDRESS, SAT_ADDRESS),
        d.db.database().catalog(),
    )
    .unwrap();
    let unsat = parse_denial_constraint(&qp_text(3, &px, &py), d.db.database().catalog()).unwrap();

    let mut group = c.benchmark_group("dcsat/qp3");
    group.sample_size(10);
    for (regime, dc) in [("satisfied", &sat), ("unsatisfied", &unsat)] {
        for (name, algorithm) in [("naive", Algorithm::Naive), ("opt", Algorithm::Opt)] {
            group.bench_function(format!("{name}/{regime}"), |b| {
                b.iter(|| {
                    dcsat_with(
                        &mut d.db,
                        &pre,
                        dc,
                        &DcSatOptions {
                            algorithm,
                            ..DcSatOptions::default()
                        },
                    )
                    .unwrap()
                })
            });
        }
    }
    group.finish();
}

fn bench_ablations(c: &mut Criterion) {
    let mut d = load_dataset(Dataset::Small, 42);
    let scenario = d.scenario.clone();
    let picker = ConstantPicker::new(&scenario);
    let recv = picker.receiver_unsat().expect("constants");
    let pre = Precomputed::build(&d.db);
    let sat = parse_denial_constraint(&qs_text(SAT_ADDRESS), d.db.database().catalog()).unwrap();
    let unsat = parse_denial_constraint(&qs_text(&recv), d.db.database().catalog()).unwrap();

    let mut group = c.benchmark_group("dcsat/ablations");
    group.sample_size(10);
    let variants: [(&str, DcSatOptions); 5] = [
        (
            "opt/full",
            DcSatOptions {
                algorithm: Algorithm::Opt,
                ..DcSatOptions::default()
            },
        ),
        (
            "opt/no_precheck",
            DcSatOptions {
                algorithm: Algorithm::Opt,
                use_precheck: false,
                ..DcSatOptions::default()
            },
        ),
        (
            "opt/no_covers",
            DcSatOptions {
                algorithm: Algorithm::Opt,
                use_precheck: false,
                use_covers: false,
                ..DcSatOptions::default()
            },
        ),
        (
            "opt/plain_bk",
            DcSatOptions {
                algorithm: Algorithm::Opt,
                use_precheck: false,
                clique_strategy: CliqueStrategy::Plain,
                ..DcSatOptions::default()
            },
        ),
        (
            "opt/parallel",
            DcSatOptions {
                algorithm: Algorithm::Opt,
                use_precheck: false,
                parallel: true,
                ..DcSatOptions::default()
            },
        ),
    ];
    for (name, options) in &variants {
        for (regime, dc) in [("satisfied", &sat), ("unsatisfied", &unsat)] {
            group.bench_function(format!("{name}/{regime}"), |b| {
                b.iter(|| dcsat_with(&mut d.db, &pre, dc, options).unwrap())
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_end_to_end, bench_ablations);
criterion_main!(benches);
