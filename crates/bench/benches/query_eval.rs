//! Query-evaluation micro-benchmarks: world-masked evaluation of the §7
//! query families over base-only, single-transaction, and all-pending
//! worlds.

use bcdb_bench::datasets::load_dataset;
use bcdb_bench::picker::ConstantPicker;
use bcdb_bench::queries::{qp_text, qr_text, qs_text, SAT_ADDRESS};
use bcdb_chain::Dataset;
use bcdb_query::{evaluate_bool, parse_denial_constraint, prepare, DenialConstraint};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_families(c: &mut Criterion) {
    let mut d = load_dataset(Dataset::Small, 42);
    let picker_scenario = d.scenario.clone();
    let picker = ConstantPicker::new(&picker_scenario);
    let recv = picker.receiver_unsat().expect("pending receiver exists");
    let (px, py) = picker.path_unsat(3).expect("path constants exist");

    let cases = [
        ("qs_absent", qs_text(SAT_ADDRESS)),
        ("qs_present", qs_text(&recv)),
        ("qp3_absent", qp_text(3, SAT_ADDRESS, SAT_ADDRESS)),
        ("qp3_present", qp_text(3, &px, &py)),
        ("qr3_absent", qr_text(3, SAT_ADDRESS)),
    ];

    let mut group = c.benchmark_group("query_eval");
    group.sample_size(20);
    for (name, text) in &cases {
        let dc = parse_denial_constraint(text, d.db.database().catalog()).unwrap();
        let DenialConstraint::Conjunctive(q) = dc else {
            unreachable!()
        };
        let pq = prepare(d.db.database_mut(), &q);
        let base = d.db.database().base_mask();
        let all = d.db.database().all_mask();
        group.bench_with_input(BenchmarkId::new(*name, "base"), &base, |b, m| {
            b.iter(|| evaluate_bool(d.db.database(), &pq, m))
        });
        group.bench_with_input(BenchmarkId::new(*name, "all"), &all, |b, m| {
            b.iter(|| evaluate_bool(d.db.database(), &pq, m))
        });
    }
    group.finish();
}

fn bench_prepare(c: &mut Criterion) {
    let mut d = load_dataset(Dataset::Small, 42);
    let text = qp_text(4, SAT_ADDRESS, SAT_ADDRESS);
    let dc = parse_denial_constraint(&text, d.db.database().catalog()).unwrap();
    let DenialConstraint::Conjunctive(q) = dc else {
        unreachable!()
    };
    // First preparation builds indexes; steady-state re-preparation is
    // what this measures.
    let _ = prepare(d.db.database_mut(), &q);
    c.bench_function("query_eval/prepare_qp4", |b| {
        b.iter(|| prepare(d.db.database_mut(), &q))
    });
}

criterion_group!(benches, bench_families, bench_prepare);
criterion_main!(benches);
