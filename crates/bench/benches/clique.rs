//! Maximal-clique enumeration micro-benchmarks: the three Bron–Kerbosch
//! strategies on worst-case (Moon–Moser) graphs and on the paper's regime
//! (near-complete graphs: everything compatible except a few injected
//! contradictions).

use bcdb_graph::{count_maximal_cliques, CliqueStrategy, UndirectedGraph};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// K_{3,3,…,3}: 3^(n/3) maximal cliques — the theoretical maximum.
fn moon_moser(groups: usize) -> UndirectedGraph {
    let n = groups * 3;
    let mut g = UndirectedGraph::new(n);
    for u in 0..n {
        for v in u + 1..n {
            if u / 3 != v / 3 {
                g.add_edge(u, v);
            }
        }
    }
    g
}

/// Complete graph on `n` nodes minus `conflicts` random edges — the shape
/// of `GfTd` with few double spends.
fn near_complete(n: usize, conflicts: usize, seed: u64) -> UndirectedGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut removed = std::collections::HashSet::new();
    while removed.len() < conflicts {
        let a = rng.random_range(0..n);
        let b = rng.random_range(0..n);
        if a != b {
            removed.insert((a.min(b), a.max(b)));
        }
    }
    let mut g = UndirectedGraph::new(n);
    for u in 0..n {
        for v in u + 1..n {
            if !removed.contains(&(u, v)) {
                g.add_edge(u, v);
            }
        }
    }
    g
}

fn bench_moon_moser(c: &mut Criterion) {
    let mut group = c.benchmark_group("clique/moon_moser");
    group.sample_size(10);
    for groups in [4usize, 5, 6] {
        let g = moon_moser(groups);
        for strategy in [
            CliqueStrategy::Plain,
            CliqueStrategy::Pivot,
            CliqueStrategy::Degeneracy,
        ] {
            group.bench_with_input(
                BenchmarkId::new(format!("{strategy:?}"), groups * 3),
                &g,
                |b, g| b.iter(|| count_maximal_cliques(g, strategy)),
            );
        }
    }
    group.finish();
}

fn bench_near_complete(c: &mut Criterion) {
    let mut group = c.benchmark_group("clique/near_complete");
    group.sample_size(10);
    // Conflict counts stay near 10: maximal cliques grow ~2^conflicts
    // (the CoNP wall), and a bench iteration must stay sub-second.
    for (n, conflicts) in [(100, 8), (200, 10), (400, 12)] {
        let g = near_complete(n, conflicts, 7);
        for strategy in [CliqueStrategy::Pivot, CliqueStrategy::Degeneracy] {
            group.bench_with_input(
                BenchmarkId::new(format!("{strategy:?}"), format!("n{n}_c{conflicts}")),
                &g,
                |b, g| b.iter(|| count_maximal_cliques(g, strategy)),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_moon_moser, bench_near_complete);
criterion_main!(benches);
