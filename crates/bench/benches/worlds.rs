//! Possible-world machinery micro-benchmarks: steady-state precomputation
//! (§6.3), `getMaximal`, and Proposition-1 recognition.

use bcdb_bench::datasets::load_dataset;
use bcdb_chain::Dataset;
use bcdb_core::{get_maximal, is_possible_world, Precomputed};
use bcdb_storage::TxId;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_precompute(c: &mut Criterion) {
    let mut group = c.benchmark_group("worlds/precompute");
    group.sample_size(10);
    for ds in [Dataset::Small, Dataset::D100] {
        let d = load_dataset(ds, 42);
        group.bench_with_input(
            BenchmarkId::from_parameter(d.name.clone()),
            &d.db,
            |b, db| b.iter(|| Precomputed::build(db)),
        );
    }
    group.finish();
}

fn bench_get_maximal(c: &mut Criterion) {
    let mut group = c.benchmark_group("worlds/get_maximal");
    group.sample_size(10);
    for ds in [Dataset::Small, Dataset::D100] {
        let d = load_dataset(ds, 42);
        let pre = Precomputed::build(&d.db);
        let all: Vec<TxId> = d.db.tx_ids().collect();
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{}_{}txs", d.name, all.len())),
            &(&d.db, &pre, &all),
            |b, (db, pre, all)| b.iter(|| get_maximal(db, pre, all)),
        );
    }
    group.finish();
}

fn bench_incremental_maintenance(c: &mut Criterion) {
    // Cost of absorbing one newly issued transaction: incremental update
    // vs full rebuild (the §6.3 steady-state ablation).
    let d = load_dataset(Dataset::Small, 42);
    let mut group = c.benchmark_group("worlds/steady_state");
    group.sample_size(10);
    group.bench_function("rebuild_after_issue", |b| {
        b.iter_batched(
            || {
                let mut db = d.db.clone();
                let pre = Precomputed::build(&db);
                let txout = db.database().catalog().resolve("TxOut").unwrap();
                db.add_transaction(
                    "new",
                    [(txout, bcdb_storage::tuple!["fresh", 1i64, "pkZ", 5i64])],
                )
                .unwrap();
                (db, pre)
            },
            |(db, _pre)| Precomputed::build(&db),
            criterion::BatchSize::SmallInput,
        )
    });
    group.bench_function("incremental_after_issue", |b| {
        b.iter_batched(
            || {
                let mut db = d.db.clone();
                let pre = Precomputed::build(&db);
                let txout = db.database().catalog().resolve("TxOut").unwrap();
                let tx = db
                    .add_transaction(
                        "new",
                        [(txout, bcdb_storage::tuple!["fresh", 1i64, "pkZ", 5i64])],
                    )
                    .unwrap();
                (db, pre, tx)
            },
            |(db, mut pre, tx)| {
                pre.note_transaction_added(&db, tx);
                pre
            },
            criterion::BatchSize::SmallInput,
        )
    });
    group.finish();
}

fn bench_recognition(c: &mut Criterion) {
    let d = load_dataset(Dataset::Small, 42);
    let pre = Precomputed::build(&d.db);
    let all: Vec<TxId> = d.db.tx_ids().collect();
    let world = get_maximal(&d.db, &pre, &all);
    let members: Vec<TxId> = world.txs().collect();
    c.bench_function("worlds/is_possible_world", |b| {
        b.iter(|| is_possible_world(&d.db, &pre, &members))
    });
}

criterion_group!(
    benches,
    bench_precompute,
    bench_get_maximal,
    bench_incremental_maintenance,
    bench_recognition
);
criterion_main!(benches);
