//! Property tests for the snapshot codec: encode/decode round trips over
//! arbitrary snapshots, and corruption rejection — a snapshot file with a
//! single flipped byte, a truncated tail, or trailing garbage must never
//! decode (every section CRC covers its tag and length, so single-byte
//! damage is always caught).
//!
//! Failing cases persist their seeds to `proptest-regressions/` (see the
//! vendored proptest's crate docs); pin a run with `PROPTEST_SEED`.

use bcdb_storage::{decode_snapshot, encode_snapshot, DbSnapshot, Tuple, Value};
use proptest::prelude::*;

fn value_strat() -> impl Strategy<Value = Value> {
    prop_oneof![
        (-1000..1000i64).prop_map(Value::Int),
        (0..8usize).prop_map(|i| Value::text(format!("s{i}"))),
        (0..2usize).prop_map(|i| Value::text(if i == 0 { "" } else { "päyload % \n" })),
        prop::bool::ANY.prop_map(Value::Bool),
    ]
}

fn tuple_strat() -> impl Strategy<Value = Tuple> {
    prop::collection::vec(value_strat(), 0..4).prop_map(Tuple::new)
}

/// Arbitrary snapshots honouring the codec's structural invariants:
/// distinct relation names, pending rows referencing base relations.
fn snapshot_strat() -> impl Strategy<Value = DbSnapshot> {
    (0..5usize).prop_flat_map(|nrel| {
        let base = prop::collection::vec(prop::collection::vec(tuple_strat(), 0..4), nrel..=nrel)
            .prop_map(|rels| {
                rels.into_iter()
                    .enumerate()
                    .map(|(i, rows)| (format!("R{i}"), rows))
                    .collect::<Vec<_>>()
            });
        // A pending row needs a base relation to point at; with an empty
        // catalog the pending transactions carry no rows.
        let rows_per_tx = if nrel == 0 { 0..1usize } else { 0..3usize };
        let pending = prop::collection::vec(
            prop::collection::vec((0..nrel.max(1), tuple_strat()), rows_per_tx),
            0..3,
        )
        .prop_map(move |txs| {
            txs.into_iter()
                .enumerate()
                .map(|(i, rows)| {
                    (
                        format!("t{i}"),
                        rows.into_iter()
                            .map(|(r, t)| (format!("R{r}"), t))
                            .collect::<Vec<_>>(),
                    )
                })
                .collect::<Vec<_>>()
        });
        (0..10_000u64, base, pending).prop_map(|(epoch, base, pending)| DbSnapshot {
            epoch,
            base,
            pending,
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    /// decode ∘ encode is the identity, and re-encoding the decoded
    /// snapshot reproduces the same bytes (the encoding is canonical).
    #[test]
    fn encode_decode_roundtrip(snap in snapshot_strat()) {
        let bytes = encode_snapshot(&snap);
        let back = decode_snapshot(&bytes).expect("clean snapshot decodes");
        prop_assert_eq!(&back, &snap);
        prop_assert_eq!(encode_snapshot(&back), bytes);
    }

    /// Flipping any single byte anywhere in the file — magic, tags,
    /// lengths, payloads, CRCs — makes the snapshot undecodable.
    #[test]
    fn single_byte_corruption_is_rejected(
        snap in snapshot_strat(),
        offset in 0..1_000_000usize,
        flip in 1..256usize,
    ) {
        let mut bytes = encode_snapshot(&snap);
        let pos = offset % bytes.len();
        bytes[pos] ^= flip as u8;
        prop_assert!(
            decode_snapshot(&bytes).is_err(),
            "flip 0x{:02x} at offset {} of {} decoded anyway",
            flip, pos, bytes.len()
        );
    }

    /// Every strict prefix of a snapshot file is rejected (the END
    /// section means truncation can never masquerade as a short file).
    #[test]
    fn truncation_is_rejected(snap in snapshot_strat(), offset in 0..1_000_000usize) {
        let bytes = encode_snapshot(&snap);
        let cut = offset % bytes.len();
        prop_assert!(
            decode_snapshot(&bytes[..cut]).is_err(),
            "prefix of {} of {} bytes decoded anyway",
            cut, bytes.len()
        );
    }

    /// Trailing garbage after the END section is rejected: decoding is
    /// strict about consuming exactly the file.
    #[test]
    fn trailing_garbage_is_rejected(snap in snapshot_strat(), tail in 1..64usize) {
        let mut bytes = encode_snapshot(&snap);
        bytes.extend(std::iter::repeat_n(0xAB, tail));
        prop_assert!(decode_snapshot(&bytes).is_err());
    }
}
