//! Property tests: the optimized constraint checkers (indexed IND checks,
//! FD fingerprints) against quadratic brute-force references.

use bcdb_storage::{
    build_ind_indexes, collect_all_fingerprints, tuple, world_satisfies, Catalog, ConstraintSet,
    Database, Fd, Ind, RelationSchema, Source, Tuple, TxId, ValueType, WorldMask,
};
use proptest::prelude::*;

fn setup() -> (Database, ConstraintSet) {
    let mut cat = Catalog::new();
    cat.add(RelationSchema::new("R", [("a", ValueType::Int), ("b", ValueType::Int)]).unwrap())
        .unwrap();
    cat.add(RelationSchema::new("S", [("x", ValueType::Int)]).unwrap())
        .unwrap();
    let mut cs = ConstraintSet::new();
    cs.add_fd(Fd::named_key(&cat, "R", &["a"]).unwrap());
    cs.add_ind(Ind::named(&cat, "S", &["x"], "R", &["a"]).unwrap());
    let mut db = Database::new(cat);
    build_ind_indexes(&mut db, &cs);
    (db, cs)
}

/// Brute force: materialise the world's tuples and check definitions
/// directly.
fn reference_satisfies(db: &Database, mask: &WorldMask) -> bool {
    let r = db.catalog().resolve("R").unwrap();
    let s = db.catalog().resolve("S").unwrap();
    let r_rows: Vec<Tuple> = db
        .relation(r)
        .scan(mask)
        .map(|(_, row)| row.tuple.clone())
        .collect();
    let s_rows: Vec<Tuple> = db
        .relation(s)
        .scan(mask)
        .map(|(_, row)| row.tuple.clone())
        .collect();
    // Key on R[a]: no two distinct tuples agree on a.
    for (i, t) in r_rows.iter().enumerate() {
        for u in &r_rows[i + 1..] {
            if t[0] == u[0] && t != u {
                return false;
            }
        }
    }
    // IND S[x] ⊆ R[a].
    for t in &s_rows {
        if !r_rows.iter().any(|u| u[0] == t[0]) {
            return false;
        }
    }
    true
}

type TxSpec = (Vec<(i64, i64)>, Vec<i64>);

fn populate(db: &mut Database, base_r: &[(i64, i64)], txs: &[TxSpec]) {
    let r = db.catalog().resolve("R").unwrap();
    let s = db.catalog().resolve("S").unwrap();
    for &(a, b) in base_r {
        db.insert_base(r, tuple![a, b]).unwrap();
    }
    for (i, (rt, st)) in txs.iter().enumerate() {
        let src = Source::Pending(TxId(i as u32));
        for &(a, b) in rt {
            db.insert(r, tuple![a, b], src).unwrap();
        }
        for &x in st {
            db.insert(s, tuple![x], src).unwrap();
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    /// The indexed checker agrees with brute force over every mask.
    #[test]
    fn checker_matches_reference(
        base_r in prop::collection::vec((0..4i64, 0..3i64), 0..4),
        txs in prop::collection::vec(
            (prop::collection::vec((0..4i64, 0..3i64), 0..3),
             prop::collection::vec(0..4i64, 0..2)),
            0..4),
    ) {
        let (mut db, cs) = setup();
        populate(&mut db, &base_r, &txs);
        let n = db.tx_count();
        for bits in 0u32..(1 << n) {
            let mask = WorldMask::from_txs(
                n,
                (0..n).filter(|i| bits & (1 << i) != 0).map(|i| TxId(i as u32)),
            );
            prop_assert_eq!(
                world_satisfies(&db, &cs, &mask),
                reference_satisfies(&db, &mask),
                "mask {:?}", mask
            );
        }
    }

    /// Pairwise fingerprint consistency equals checking the two-transaction
    /// world directly (FDs only: drop the IND by checking just key safety).
    #[test]
    fn fingerprints_match_pairwise_worlds(
        txs in prop::collection::vec(
            prop::collection::vec((0..3i64, 0..3i64), 1..3),
            2..5),
    ) {
        let (mut db, cs) = setup();
        let specs: Vec<TxSpec> = txs.into_iter().map(|rt| (rt, vec![])).collect();
        populate(&mut db, &[], &specs);
        let (base, per_tx) = collect_all_fingerprints(&db, &cs);
        let n = db.tx_count();
        for i in 0..n {
            for j in i + 1..n {
                let mask = WorldMask::from_txs(n, [TxId(i as u32), TxId(j as u32)]);
                // No S tuples and empty base: only the key matters.
                let direct = reference_satisfies(&db, &mask);
                let via_fp = per_tx[i].self_consistent()
                    && per_tx[j].self_consistent()
                    && base.consistent_with(&per_tx[i])
                    && base.consistent_with(&per_tx[j])
                    && per_tx[i].consistent_with(&per_tx[j]);
                prop_assert_eq!(via_fp, direct, "pair {} {}", i, j);
            }
        }
    }
}
