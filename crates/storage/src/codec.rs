//! The epoch-snapshot file codec.
//!
//! A snapshot file is the durable form of a [`DbSnapshot`]:
//! an 8-byte magic followed by length-prefixed, CRC-checksummed sections
//! in a fixed order:
//!
//! ```text
//! magic  "BCDBSNP\x01"                                     (8 bytes)
//! META   epoch, relation count, pending-tx count
//! REL ×n relation name + base rows (one section per relation)
//! PEND   pending transactions (name + rows, relations by table index)
//! INDEX  per-relation row-hash table (FxHash64 of each encoded row)
//! END    empty terminator section
//! ```
//!
//! Every section is `tag(u8) · len(u64 LE) · payload · crc32(u32 LE)`,
//! with the CRC covering tag, length, and payload. The layout is
//! mmap-friendly: sections can be located by walking the fixed-size
//! headers without decoding payloads, and the `INDEX` section gives a
//! per-row content hash for point lookups without materialising tuples.
//! Decoding is strict — any flipped byte, truncation, out-of-order or
//! trailing section is rejected with a typed [`SnapshotCodecError`];
//! a clean decode is the identity on the encoded snapshot.

use crate::backend::DbSnapshot;
use crate::error::StorageError;
use crate::tuple::Tuple;
use crate::value::Value;
use std::fmt;
use std::hash::Hasher;

/// First 8 bytes of every snapshot file (version byte included).
pub const SNAPSHOT_MAGIC: &[u8; 8] = b"BCDBSNP\x01";

const TAG_META: u8 = 0x01;
const TAG_RELATION: u8 = 0x02;
const TAG_PENDING: u8 = 0x03;
const TAG_INDEX: u8 = 0x04;
const TAG_END: u8 = 0xFF;

/// CRC-32 (IEEE 802.3, reflected polynomial `0xEDB88320`), bitwise — no
/// table, no external crate. Shared by the snapshot sections here and the
/// journal lines in `bcdb-monitor`.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// Why a snapshot file failed to decode.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SnapshotCodecError {
    /// The file does not start with [`SNAPSHOT_MAGIC`].
    BadMagic,
    /// The file ended inside the named structure.
    Truncated(&'static str),
    /// A section's CRC does not match its contents.
    ChecksumMismatch {
        /// The section's tag byte.
        tag: u8,
    },
    /// A section appeared out of order, duplicated, or with an unknown tag.
    UnexpectedSection {
        /// The tag byte actually found.
        got: u8,
        /// What the decoder was expecting at this position.
        expected: &'static str,
    },
    /// A payload field was structurally invalid (bad value tag, non-UTF-8
    /// string, count mismatch against the META section, …).
    Malformed(String),
    /// The INDEX section's hash for a row disagrees with the row content.
    HashMismatch {
        /// Relation whose index entry failed.
        relation: String,
        /// Row position within that relation's section.
        row: usize,
    },
    /// Bytes remained after the END section.
    TrailingBytes {
        /// How many bytes were left over.
        count: usize,
    },
}

impl fmt::Display for SnapshotCodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotCodecError::BadMagic => write!(f, "bad snapshot magic"),
            SnapshotCodecError::Truncated(what) => write!(f, "truncated snapshot: {what}"),
            SnapshotCodecError::ChecksumMismatch { tag } => {
                write!(f, "checksum mismatch in section 0x{tag:02x}")
            }
            SnapshotCodecError::UnexpectedSection { got, expected } => {
                write!(f, "unexpected section 0x{got:02x} (expected {expected})")
            }
            SnapshotCodecError::Malformed(detail) => write!(f, "malformed snapshot: {detail}"),
            SnapshotCodecError::HashMismatch { relation, row } => {
                write!(f, "row-hash mismatch in relation '{relation}' row {row}")
            }
            SnapshotCodecError::TrailingBytes { count } => {
                write!(f, "{count} trailing bytes after END section")
            }
        }
    }
}

impl std::error::Error for SnapshotCodecError {}

impl From<SnapshotCodecError> for StorageError {
    fn from(e: SnapshotCodecError) -> Self {
        StorageError::CorruptSnapshot {
            detail: e.to_string(),
        }
    }
}

/// FxHash64 of a row's canonical encoding — the content hash stored per
/// row in the INDEX section.
pub fn row_hash(tuple: &Tuple) -> u64 {
    let mut buf = Vec::new();
    put_tuple(&mut buf, tuple);
    let mut h = rustc_hash::FxHasher::default();
    h.write(&buf);
    h.finish()
}

// ---- encoding primitives ----

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

fn put_value(out: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Int(i) => {
            out.push(0);
            out.extend_from_slice(&i.to_le_bytes());
        }
        Value::Text(s) => {
            out.push(1);
            put_str(out, s);
        }
        Value::Bool(b) => {
            out.push(2);
            out.push(u8::from(*b));
        }
    }
}

fn put_tuple(out: &mut Vec<u8>, t: &Tuple) {
    put_u32(out, t.arity() as u32);
    for v in t.values() {
        put_value(out, v);
    }
}

fn section(tag: u8, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(payload.len() + 13);
    out.push(tag);
    put_u64(&mut out, payload.len() as u64);
    out.extend_from_slice(payload);
    let crc = crc32(&out);
    out.extend_from_slice(&crc.to_le_bytes());
    out
}

/// Encodes a snapshot as the chunk sequence a durable writer should emit:
/// the magic, then one chunk per section. Concatenating the chunks gives
/// exactly [`encode_snapshot`]'s output; writing them through a
/// [`DurableFile`](crate::durable::DurableFile) makes each section a
/// crash-injectable write boundary.
pub fn encode_snapshot_chunks(snap: &DbSnapshot) -> Vec<Vec<u8>> {
    let mut chunks = Vec::with_capacity(snap.base.len() + 5);
    chunks.push(SNAPSHOT_MAGIC.to_vec());

    let mut meta = Vec::new();
    put_u64(&mut meta, snap.epoch);
    put_u32(&mut meta, snap.base.len() as u32);
    put_u32(&mut meta, snap.pending.len() as u32);
    chunks.push(section(TAG_META, &meta));

    for (name, rows) in &snap.base {
        let mut p = Vec::new();
        put_str(&mut p, name);
        put_u32(&mut p, rows.len() as u32);
        for row in rows {
            put_tuple(&mut p, row);
        }
        chunks.push(section(TAG_RELATION, &p));
    }

    let mut pend = Vec::new();
    put_u32(&mut pend, snap.pending.len() as u32);
    for (tx_name, rows) in &snap.pending {
        put_str(&mut pend, tx_name);
        put_u32(&mut pend, rows.len() as u32);
        for (rel_name, tuple) in rows {
            let idx = snap
                .base
                .iter()
                .position(|(n, _)| n == rel_name)
                .expect("pending rows reference relations present in the base table");
            put_u32(&mut pend, idx as u32);
            put_tuple(&mut pend, tuple);
        }
    }
    chunks.push(section(TAG_PENDING, &pend));

    let mut index = Vec::new();
    put_u32(&mut index, snap.base.len() as u32);
    for (_, rows) in &snap.base {
        put_u32(&mut index, rows.len() as u32);
        for row in rows {
            put_u64(&mut index, row_hash(row));
        }
    }
    chunks.push(section(TAG_INDEX, &index));

    chunks.push(section(TAG_END, &[]));
    chunks
}

/// Encodes a snapshot into one contiguous byte string.
pub fn encode_snapshot(snap: &DbSnapshot) -> Vec<u8> {
    encode_snapshot_chunks(snap).concat()
}

// ---- decoding ----

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], SnapshotCodecError> {
        if self.bytes.len() - self.pos < n {
            return Err(SnapshotCodecError::Truncated(what));
        }
        let out = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    fn u8(&mut self, what: &'static str) -> Result<u8, SnapshotCodecError> {
        Ok(self.take(1, what)?[0])
    }

    fn u32(&mut self, what: &'static str) -> Result<u32, SnapshotCodecError> {
        Ok(u32::from_le_bytes(self.take(4, what)?.try_into().unwrap()))
    }

    fn u64(&mut self, what: &'static str) -> Result<u64, SnapshotCodecError> {
        Ok(u64::from_le_bytes(self.take(8, what)?.try_into().unwrap()))
    }

    fn str(&mut self, what: &'static str) -> Result<String, SnapshotCodecError> {
        let len = self.u32(what)? as usize;
        let bytes = self.take(len, what)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| SnapshotCodecError::Malformed(format!("{what}: non-UTF-8 string")))
    }

    fn value(&mut self, what: &'static str) -> Result<Value, SnapshotCodecError> {
        match self.u8(what)? {
            0 => Ok(Value::Int(i64::from_le_bytes(
                self.take(8, what)?.try_into().unwrap(),
            ))),
            1 => Ok(Value::Text(self.str(what)?.into())),
            2 => match self.u8(what)? {
                0 => Ok(Value::Bool(false)),
                1 => Ok(Value::Bool(true)),
                b => Err(SnapshotCodecError::Malformed(format!(
                    "{what}: bool byte 0x{b:02x}"
                ))),
            },
            t => Err(SnapshotCodecError::Malformed(format!(
                "{what}: unknown value tag 0x{t:02x}"
            ))),
        }
    }

    fn tuple(&mut self, what: &'static str) -> Result<Tuple, SnapshotCodecError> {
        let arity = self.u32(what)? as usize;
        if arity > 1 << 16 {
            return Err(SnapshotCodecError::Malformed(format!(
                "{what}: implausible arity {arity}"
            )));
        }
        let mut values = Vec::with_capacity(arity);
        for _ in 0..arity {
            values.push(self.value(what)?);
        }
        Ok(Tuple::new(values))
    }

    fn done(&self) -> bool {
        self.pos == self.bytes.len()
    }
}

/// One validated section: its tag and payload, CRC already checked.
fn next_section<'a>(
    r: &mut Reader<'a>,
    expected: &'static str,
) -> Result<(u8, &'a [u8]), SnapshotCodecError> {
    let start = r.pos;
    let tag = r.u8("section tag")?;
    let len = r.u64("section length")? as usize;
    // Guard the length before allocating or slicing: a flipped length byte
    // must fail as truncation, not wrap or OOM.
    if r.bytes.len() - r.pos < len + 4 {
        return Err(SnapshotCodecError::Truncated(expected));
    }
    let payload = r.take(len, expected)?;
    let stored = u32::from_le_bytes(r.take(4, "section crc")?.try_into().unwrap());
    let computed = crc32(&r.bytes[start..start + 9 + len]);
    if stored != computed {
        return Err(SnapshotCodecError::ChecksumMismatch { tag });
    }
    Ok((tag, payload))
}

fn expect_tag(tag: u8, want: u8, expected: &'static str) -> Result<(), SnapshotCodecError> {
    if tag != want {
        return Err(SnapshotCodecError::UnexpectedSection { got: tag, expected });
    }
    Ok(())
}

/// Decodes a snapshot file, validating magic, section order, every CRC,
/// and the INDEX section's row hashes. Strict: trailing bytes after the
/// END section are an error.
pub fn decode_snapshot(bytes: &[u8]) -> Result<DbSnapshot, SnapshotCodecError> {
    let mut r = Reader { bytes, pos: 0 };
    if r.take(8, "magic").map(|m| m != SNAPSHOT_MAGIC).unwrap_or(true) {
        return Err(SnapshotCodecError::BadMagic);
    }

    let (tag, meta) = next_section(&mut r, "META section")?;
    expect_tag(tag, TAG_META, "META")?;
    let mut m = Reader { bytes: meta, pos: 0 };
    let epoch = m.u64("meta epoch")?;
    let relation_count = m.u32("meta relation count")? as usize;
    let pending_count = m.u32("meta pending count")? as usize;
    if !m.done() {
        return Err(SnapshotCodecError::Malformed("META has trailing bytes".into()));
    }

    let mut base = Vec::with_capacity(relation_count);
    for _ in 0..relation_count {
        let (tag, payload) = next_section(&mut r, "RELATION section")?;
        expect_tag(tag, TAG_RELATION, "RELATION")?;
        let mut p = Reader { bytes: payload, pos: 0 };
        let name = p.str("relation name")?;
        let rows = p.u32("relation row count")? as usize;
        let mut tuples = Vec::with_capacity(rows.min(1 << 20));
        for _ in 0..rows {
            tuples.push(p.tuple("relation row")?);
        }
        if !p.done() {
            return Err(SnapshotCodecError::Malformed(format!(
                "relation '{name}' section has trailing bytes"
            )));
        }
        if base.iter().any(|(n, _): &(String, _)| *n == name) {
            return Err(SnapshotCodecError::Malformed(format!(
                "relation '{name}' appears twice"
            )));
        }
        base.push((name, tuples));
    }

    let (tag, payload) = next_section(&mut r, "PENDING section")?;
    expect_tag(tag, TAG_PENDING, "PENDING")?;
    let mut p = Reader { bytes: payload, pos: 0 };
    let txs = p.u32("pending tx count")? as usize;
    if txs != pending_count {
        return Err(SnapshotCodecError::Malformed(format!(
            "PENDING holds {txs} txs, META declared {pending_count}"
        )));
    }
    let mut pending = Vec::with_capacity(txs.min(1 << 20));
    for _ in 0..txs {
        let tx_name = p.str("pending tx name")?;
        let rows = p.u32("pending row count")? as usize;
        let mut tuples = Vec::with_capacity(rows.min(1 << 20));
        for _ in 0..rows {
            let rel_idx = p.u32("pending relation index")? as usize;
            let rel_name = base
                .get(rel_idx)
                .map(|(n, _)| n.clone())
                .ok_or_else(|| {
                    SnapshotCodecError::Malformed(format!(
                        "pending row references relation index {rel_idx} of {relation_count}"
                    ))
                })?;
            tuples.push((rel_name, p.tuple("pending row")?));
        }
        pending.push((tx_name, tuples));
    }
    if !p.done() {
        return Err(SnapshotCodecError::Malformed("PENDING has trailing bytes".into()));
    }

    let (tag, payload) = next_section(&mut r, "INDEX section")?;
    expect_tag(tag, TAG_INDEX, "INDEX")?;
    let mut p = Reader { bytes: payload, pos: 0 };
    let idx_relations = p.u32("index relation count")? as usize;
    if idx_relations != relation_count {
        return Err(SnapshotCodecError::Malformed(format!(
            "INDEX covers {idx_relations} relations, META declared {relation_count}"
        )));
    }
    for (name, rows) in &base {
        let idx_rows = p.u32("index row count")? as usize;
        if idx_rows != rows.len() {
            return Err(SnapshotCodecError::Malformed(format!(
                "INDEX has {idx_rows} hashes for relation '{name}' with {} rows",
                rows.len()
            )));
        }
        for (i, row) in rows.iter().enumerate() {
            let stored = p.u64("index row hash")?;
            if stored != row_hash(row) {
                return Err(SnapshotCodecError::HashMismatch {
                    relation: name.clone(),
                    row: i,
                });
            }
        }
    }
    if !p.done() {
        return Err(SnapshotCodecError::Malformed("INDEX has trailing bytes".into()));
    }

    let (tag, payload) = next_section(&mut r, "END section")?;
    expect_tag(tag, TAG_END, "END")?;
    if !payload.is_empty() {
        return Err(SnapshotCodecError::Malformed("END has a payload".into()));
    }
    if !r.done() {
        return Err(SnapshotCodecError::TrailingBytes {
            count: bytes.len() - r.pos,
        });
    }

    Ok(DbSnapshot {
        epoch,
        base,
        pending,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> DbSnapshot {
        DbSnapshot {
            epoch: 7,
            base: vec![
                (
                    "Pay".to_string(),
                    vec![
                        Tuple::new([Value::Int(1), Value::text("ann")]),
                        Tuple::new([Value::Int(2), Value::text("bob")]),
                    ],
                ),
                ("Audit".to_string(), vec![Tuple::new([Value::Bool(true)])]),
                ("Empty".to_string(), vec![]),
            ],
            pending: vec![
                (
                    "t0".to_string(),
                    vec![("Pay".to_string(), Tuple::new([Value::Int(3), Value::text("cam")]))],
                ),
                ("empty-tx".to_string(), vec![]),
            ],
        }
    }

    #[test]
    fn crc32_matches_known_vectors() {
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn clean_roundtrip_is_identity() {
        let snap = sample();
        let bytes = encode_snapshot(&snap);
        let back = decode_snapshot(&bytes).unwrap();
        assert_eq!(back.epoch, snap.epoch);
        assert_eq!(back.base, snap.base);
        assert_eq!(back.pending, snap.pending);
    }

    #[test]
    fn chunks_concat_to_the_contiguous_encoding() {
        let snap = sample();
        assert_eq!(encode_snapshot_chunks(&snap).concat(), encode_snapshot(&snap));
    }

    #[test]
    fn every_single_byte_flip_is_rejected() {
        let bytes = encode_snapshot(&sample());
        for i in 0..bytes.len() {
            let mut corrupt = bytes.clone();
            corrupt[i] ^= 0x01;
            assert!(
                decode_snapshot(&corrupt).is_err(),
                "flip at offset {i} of {} went undetected",
                bytes.len()
            );
        }
    }

    #[test]
    fn every_truncation_is_rejected() {
        let bytes = encode_snapshot(&sample());
        for end in 0..bytes.len() {
            assert!(
                decode_snapshot(&bytes[..end]).is_err(),
                "truncation to {end} of {} went undetected",
                bytes.len()
            );
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = encode_snapshot(&sample());
        bytes.push(0);
        assert!(matches!(
            decode_snapshot(&bytes),
            Err(SnapshotCodecError::TrailingBytes { count: 1 })
        ));
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut bytes = encode_snapshot(&sample());
        bytes[0] = b'X';
        assert_eq!(decode_snapshot(&bytes), Err(SnapshotCodecError::BadMagic));
    }

    #[test]
    fn index_hash_mismatch_is_named() {
        // Corrupt one INDEX hash *and* patch that section's CRC so the
        // failure surfaces as a hash mismatch, not a checksum mismatch.
        let snap = sample();
        let chunks = encode_snapshot_chunks(&snap);
        let index_chunk_pos = chunks.len() - 2;
        let mut index = chunks[index_chunk_pos].clone();
        let body_len = index.len() - 4;
        // First hash lives after tag(1)+len(8)+rel_count(4)+row_count(4).
        index[17] ^= 0xFF;
        let crc = crc32(&index[..body_len]).to_le_bytes();
        index[body_len..].copy_from_slice(&crc);
        let mut bytes = Vec::new();
        for (i, c) in chunks.iter().enumerate() {
            bytes.extend_from_slice(if i == index_chunk_pos { &index } else { c });
        }
        assert!(matches!(
            decode_snapshot(&bytes),
            Err(SnapshotCodecError::HashMismatch { row: 0, .. })
        ));
    }
}
