//! Error types for the relational substrate.

use crate::value::ValueType;
use std::fmt;

/// Errors raised by schema construction, typechecking, and store operations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StorageError {
    /// A relation name was declared twice in a catalog.
    DuplicateRelation {
        /// The offending relation name.
        relation: String,
    },
    /// An attribute name appeared twice in one schema.
    DuplicateAttribute {
        /// Relation being declared.
        relation: String,
        /// The offending attribute name.
        attribute: String,
    },
    /// A tuple had the wrong number of values for its relation.
    ArityMismatch {
        /// Target relation.
        relation: String,
        /// Schema arity.
        expected: usize,
        /// Tuple arity.
        got: usize,
    },
    /// A tuple value had the wrong type for its attribute.
    TypeMismatch {
        /// Target relation.
        relation: String,
        /// Attribute at fault.
        attribute: String,
        /// Declared type.
        expected: ValueType,
        /// Provided type.
        got: ValueType,
    },
    /// A relation name could not be resolved in the catalog.
    UnknownRelation {
        /// The unresolved name.
        relation: String,
    },
    /// A constraint referenced an attribute index out of range.
    BadAttributeIndex {
        /// Relation the constraint targets.
        relation: String,
        /// Offending index.
        index: usize,
        /// Relation arity.
        arity: usize,
    },
    /// An inclusion dependency's attribute lists have different lengths, or
    /// an FD's sides are empty where not allowed.
    MalformedConstraint {
        /// Human-readable description.
        detail: String,
    },
    /// An I/O failure in a durable backend. Carries the rendered error so
    /// `StorageError` stays `Clone + PartialEq`.
    Io {
        /// Context plus the underlying `std::io::Error`, rendered.
        detail: String,
    },
    /// A snapshot file failed validation (bad magic, checksum mismatch,
    /// truncation, malformed payload — see
    /// [`SnapshotCodecError`](crate::codec::SnapshotCodecError)).
    CorruptSnapshot {
        /// The codec error, rendered.
        detail: String,
    },
    /// A snapshot id not present in the backend.
    UnknownSnapshot {
        /// The unresolved id.
        id: String,
    },
}

impl StorageError {
    /// Whether this error came from an injected crash point (see
    /// [`is_injected_crash`](crate::durable::is_injected_crash)) rather
    /// than a real I/O failure.
    pub fn is_injected_crash(&self) -> bool {
        matches!(self, StorageError::Io { detail }
            if detail.contains(crate::durable::INJECTED_CRASH_PREFIX))
    }
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::DuplicateRelation { relation } => {
                write!(f, "relation '{relation}' already declared")
            }
            StorageError::DuplicateAttribute {
                relation,
                attribute,
            } => {
                write!(
                    f,
                    "attribute '{attribute}' declared twice in relation '{relation}'"
                )
            }
            StorageError::ArityMismatch {
                relation,
                expected,
                got,
            } => {
                write!(
                    f,
                    "relation '{relation}' expects arity {expected}, tuple has {got}"
                )
            }
            StorageError::TypeMismatch {
                relation,
                attribute,
                expected,
                got,
            } => write!(
                f,
                "attribute '{relation}.{attribute}' has type {expected}, value has type {got}"
            ),
            StorageError::UnknownRelation { relation } => {
                write!(f, "unknown relation '{relation}'")
            }
            StorageError::BadAttributeIndex {
                relation,
                index,
                arity,
            } => write!(
                f,
                "attribute index {index} out of range for relation '{relation}' (arity {arity})"
            ),
            StorageError::MalformedConstraint { detail } => {
                write!(f, "malformed constraint: {detail}")
            }
            StorageError::Io { detail } => write!(f, "storage i/o error: {detail}"),
            StorageError::CorruptSnapshot { detail } => {
                write!(f, "corrupt snapshot: {detail}")
            }
            StorageError::UnknownSnapshot { id } => write!(f, "unknown snapshot '{id}'"),
        }
    }
}

impl std::error::Error for StorageError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = StorageError::ArityMismatch {
            relation: "TxIn".into(),
            expected: 6,
            got: 5,
        };
        let msg = e.to_string();
        assert!(msg.contains("TxIn") && msg.contains('6') && msg.contains('5'));
    }

    #[test]
    fn implements_error_trait() {
        fn takes_error(_: &dyn std::error::Error) {}
        takes_error(&StorageError::UnknownRelation {
            relation: "R".into(),
        });
    }
}
