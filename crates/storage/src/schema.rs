//! Relation schemas and the catalog.

use crate::error::StorageError;
use crate::tuple::Tuple;
use crate::value::ValueType;
use rustc_hash::FxHashMap;
use std::fmt;

/// Identifier of a relation within a [`Catalog`] (dense, assigned in
/// declaration order).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RelationId(pub u32);

impl RelationId {
    /// The id as an index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for RelationId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rel#{}", self.0)
    }
}

/// The schema of a single relation: a name and typed, named attributes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RelationSchema {
    name: String,
    attributes: Vec<(String, ValueType)>,
}

impl RelationSchema {
    /// Creates a schema. Attribute names must be distinct.
    pub fn new(
        name: impl Into<String>,
        attributes: impl IntoIterator<Item = (impl Into<String>, ValueType)>,
    ) -> Result<Self, StorageError> {
        let name = name.into();
        let attributes: Vec<(String, ValueType)> =
            attributes.into_iter().map(|(n, t)| (n.into(), t)).collect();
        let mut seen = std::collections::HashSet::new();
        for (a, _) in &attributes {
            if !seen.insert(a.clone()) {
                return Err(StorageError::DuplicateAttribute {
                    relation: name,
                    attribute: a.clone(),
                });
            }
        }
        Ok(RelationSchema { name, attributes })
    }

    /// Relation name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of attributes.
    pub fn arity(&self) -> usize {
        self.attributes.len()
    }

    /// Attribute name and type at position `i`.
    pub fn attribute(&self, i: usize) -> Option<(&str, ValueType)> {
        self.attributes.get(i).map(|(n, t)| (n.as_str(), *t))
    }

    /// All attributes.
    pub fn attributes(&self) -> impl Iterator<Item = (&str, ValueType)> {
        self.attributes.iter().map(|(n, t)| (n.as_str(), *t))
    }

    /// Position of the attribute named `name`.
    pub fn attribute_index(&self, name: &str) -> Option<usize> {
        self.attributes.iter().position(|(n, _)| n == name)
    }

    /// Checks that `t` has the right arity and value types for this schema.
    pub fn typecheck(&self, t: &Tuple) -> Result<(), StorageError> {
        if t.arity() != self.arity() {
            return Err(StorageError::ArityMismatch {
                relation: self.name.clone(),
                expected: self.arity(),
                got: t.arity(),
            });
        }
        for (i, (attr, ty)) in self.attributes.iter().enumerate() {
            let vt = t[i].value_type();
            if vt != *ty {
                return Err(StorageError::TypeMismatch {
                    relation: self.name.clone(),
                    attribute: attr.clone(),
                    expected: *ty,
                    got: vt,
                });
            }
        }
        Ok(())
    }
}

/// The set of relation schemas in a database.
#[derive(Clone, Debug, Default)]
pub struct Catalog {
    schemas: Vec<RelationSchema>,
    by_name: FxHashMap<String, RelationId>,
}

impl Catalog {
    /// Creates an empty catalog.
    pub fn new() -> Self {
        Catalog::default()
    }

    /// Adds a relation schema, returning its id. Names must be unique.
    pub fn add(&mut self, schema: RelationSchema) -> Result<RelationId, StorageError> {
        if self.by_name.contains_key(schema.name()) {
            return Err(StorageError::DuplicateRelation {
                relation: schema.name().to_string(),
            });
        }
        let id = RelationId(self.schemas.len() as u32);
        self.by_name.insert(schema.name().to_string(), id);
        self.schemas.push(schema);
        Ok(id)
    }

    /// Looks up a relation by name.
    pub fn resolve(&self, name: &str) -> Option<RelationId> {
        self.by_name.get(name).copied()
    }

    /// The schema of `id`. Panics if the id is foreign to this catalog.
    pub fn schema(&self, id: RelationId) -> &RelationSchema {
        &self.schemas[id.index()]
    }

    /// Number of relations.
    pub fn relation_count(&self) -> usize {
        self.schemas.len()
    }

    /// Iterates `(id, schema)` pairs in declaration order.
    pub fn iter(&self) -> impl Iterator<Item = (RelationId, &RelationSchema)> {
        self.schemas
            .iter()
            .enumerate()
            .map(|(i, s)| (RelationId(i as u32), s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple;

    fn txout_schema() -> RelationSchema {
        RelationSchema::new(
            "TxOut",
            [
                ("txId", ValueType::Text),
                ("ser", ValueType::Int),
                ("pk", ValueType::Text),
                ("amount", ValueType::Int),
            ],
        )
        .unwrap()
    }

    #[test]
    fn schema_lookup() {
        let s = txout_schema();
        assert_eq!(s.arity(), 4);
        assert_eq!(s.attribute_index("pk"), Some(2));
        assert_eq!(s.attribute_index("nope"), None);
        assert_eq!(s.attribute(1), Some(("ser", ValueType::Int)));
        assert_eq!(s.attribute(9), None);
    }

    #[test]
    fn duplicate_attribute_rejected() {
        let err = RelationSchema::new("R", [("a", ValueType::Int), ("a", ValueType::Text)]);
        assert!(matches!(err, Err(StorageError::DuplicateAttribute { .. })));
    }

    #[test]
    fn typecheck_accepts_and_rejects() {
        let s = txout_schema();
        assert!(s.typecheck(&tuple!["t1", 1i64, "pk", 100i64]).is_ok());
        assert!(matches!(
            s.typecheck(&tuple!["t1", 1i64, "pk"]),
            Err(StorageError::ArityMismatch {
                expected: 4,
                got: 3,
                ..
            })
        ));
        assert!(matches!(
            s.typecheck(&tuple!["t1", "oops", "pk", 100i64]),
            Err(StorageError::TypeMismatch { .. })
        ));
    }

    #[test]
    fn catalog_add_resolve() {
        let mut c = Catalog::new();
        let id = c.add(txout_schema()).unwrap();
        assert_eq!(c.resolve("TxOut"), Some(id));
        assert_eq!(c.resolve("TxIn"), None);
        assert_eq!(c.schema(id).name(), "TxOut");
        assert_eq!(c.relation_count(), 1);
    }

    #[test]
    fn catalog_rejects_duplicate_names() {
        let mut c = Catalog::new();
        c.add(txout_schema()).unwrap();
        assert!(matches!(
            c.add(txout_schema()),
            Err(StorageError::DuplicateRelation { .. })
        ));
    }

    #[test]
    fn catalog_iteration_order() {
        let mut c = Catalog::new();
        let a = c
            .add(RelationSchema::new("A", [("x", ValueType::Int)]).unwrap())
            .unwrap();
        let b = c
            .add(RelationSchema::new("B", [("y", ValueType::Int)]).unwrap())
            .unwrap();
        let ids: Vec<RelationId> = c.iter().map(|(id, _)| id).collect();
        assert_eq!(ids, vec![a, b]);
    }
}
