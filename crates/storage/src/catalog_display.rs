//! Small helpers for rendering schema-resolved names.

use crate::schema::RelationSchema;

/// Joins the attribute names at `positions` with `", "`, e.g. `txId, ser`.
pub(crate) fn attrs_to_names(schema: &RelationSchema, positions: &[usize]) -> String {
    positions
        .iter()
        .map(|&i| schema.attribute(i).map(|(n, _)| n).unwrap_or("?"))
        .collect::<Vec<_>>()
        .join(", ")
}
