//! Constraint satisfaction checking (`R |= I`) over masked worlds.
//!
//! The core algorithms need two flavours of check:
//!
//! 1. **Whole-world satisfaction** — does the world selected by a
//!    [`WorldMask`] satisfy every FD and IND? Used by `getMaximal` and by
//!    possible-world recognition (Prop. 1).
//! 2. **Pairwise FD consistency** — are two pending transactions mutually
//!    consistent w.r.t. `I_fd` (the edge relation of `GfTd`, §6.1)? Because
//!    an FD violation is witnessed by exactly two tuples, worlds satisfy
//!    `I_fd` iff all pairs of active sources are mutually consistent; the
//!    [`FdFingerprint`] precomputation makes the pairwise check cheap.

use crate::constraints::{ConstraintSet, Fd, Ind};
use crate::instance::Database;
use crate::relation::RowId;
use crate::schema::RelationId;
use crate::source::{Source, WorldMask};
use crate::value::Value;
use rustc_hash::FxHashMap;
use smallvec::SmallVec;

/// Projection of a tuple onto constraint attributes.
type Projection = SmallVec<[Value; 4]>;
/// FD scan state: determinant -> (first witness row, its dependent values).
type FdSeen = FxHashMap<Projection, (RowId, Projection)>;

/// A violation found while checking a world.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Violation {
    /// Two active tuples agree on an FD's determinant but differ on a
    /// dependent attribute.
    Fd {
        /// Index of the FD in the [`ConstraintSet`].
        fd_index: usize,
        /// Relation the FD constrains.
        relation: RelationId,
        /// First witness row.
        row_a: RowId,
        /// Second witness row.
        row_b: RowId,
    },
    /// An active tuple's IND projection has no active match in the
    /// referenced relation.
    Ind {
        /// Index of the IND in the [`ConstraintSet`].
        ind_index: usize,
        /// Referencing relation.
        relation: RelationId,
        /// The dangling row.
        row: RowId,
    },
}

/// Checks whether the world `mask` satisfies `fd`; returns the first
/// violation found.
pub fn check_fd(db: &Database, fd: &Fd, fd_index: usize, mask: &WorldMask) -> Option<Violation> {
    let store = db.relation(fd.relation);
    let mut seen: FdSeen = FxHashMap::default();
    for (id, row) in store.scan(mask) {
        let lhs = row.tuple.project(&fd.lhs);
        let rhs = row.tuple.project(&fd.rhs);
        match seen.entry(lhs) {
            std::collections::hash_map::Entry::Occupied(e) => {
                let (prev_id, prev_rhs) = e.get();
                if *prev_rhs != rhs {
                    return Some(Violation::Fd {
                        fd_index,
                        relation: fd.relation,
                        row_a: *prev_id,
                        row_b: id,
                    });
                }
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert((id, rhs));
            }
        }
    }
    None
}

/// Checks whether the world `mask` satisfies `ind`; returns the first
/// violation found. Builds (or reuses) an index on the referenced side.
pub fn check_ind(
    db: &Database,
    ind: &Ind,
    ind_index: usize,
    mask: &WorldMask,
) -> Option<Violation> {
    let from = db.relation(ind.from_relation);
    let to = db.relation(ind.to_relation);
    let to_index = to.find_index(&ind.to_attrs);
    for (id, row) in from.scan(mask) {
        let key = row.tuple.project(&ind.from_attrs);
        let found = match to_index {
            Some(idx) => to.index_contains(idx, &key, mask),
            None => to
                .scan(mask)
                .any(|(_, r)| r.tuple.project(&ind.to_attrs) == key),
        };
        if !found {
            return Some(Violation::Ind {
                ind_index,
                relation: ind.from_relation,
                row: id,
            });
        }
    }
    None
}

/// Whether the world `mask` satisfies every constraint in `cs`.
pub fn world_satisfies(db: &Database, cs: &ConstraintSet, mask: &WorldMask) -> bool {
    first_violation(db, cs, mask).is_none()
}

/// The first violation of any constraint in `cs` in the world `mask`.
pub fn first_violation(db: &Database, cs: &ConstraintSet, mask: &WorldMask) -> Option<Violation> {
    for (i, fd) in cs.fds().iter().enumerate() {
        if let Some(v) = check_fd(db, fd, i, mask) {
            return Some(v);
        }
    }
    for (i, ind) in cs.inds().iter().enumerate() {
        if let Some(v) = check_ind(db, ind, i, mask) {
            return Some(v);
        }
    }
    None
}

/// All violations in the world `mask` (one per (constraint, witness) found;
/// FD checks report each conflicting pair against the first representative).
pub fn all_violations(db: &Database, cs: &ConstraintSet, mask: &WorldMask) -> Vec<Violation> {
    let mut out = Vec::new();
    for (i, fd) in cs.fds().iter().enumerate() {
        // Re-scan collecting every conflicting pair with the representative.
        let store = db.relation(fd.relation);
        let mut seen: FdSeen = FxHashMap::default();
        for (id, row) in store.scan(mask) {
            let lhs = row.tuple.project(&fd.lhs);
            let rhs = row.tuple.project(&fd.rhs);
            match seen.entry(lhs) {
                std::collections::hash_map::Entry::Occupied(e) => {
                    let (prev_id, prev_rhs) = e.get();
                    if *prev_rhs != rhs {
                        out.push(Violation::Fd {
                            fd_index: i,
                            relation: fd.relation,
                            row_a: *prev_id,
                            row_b: id,
                        });
                    }
                }
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert((id, rhs));
                }
            }
        }
    }
    for (i, ind) in cs.inds().iter().enumerate() {
        let from = db.relation(ind.from_relation);
        let to = db.relation(ind.to_relation);
        let to_index = to.find_index(&ind.to_attrs);
        for (id, row) in from.scan(mask) {
            let key = row.tuple.project(&ind.from_attrs);
            let found = match to_index {
                Some(idx) => to.index_contains(idx, &key, mask),
                None => to
                    .scan(mask)
                    .any(|(_, r)| r.tuple.project(&ind.to_attrs) == key),
            };
            if !found {
                out.push(Violation::Ind {
                    ind_index: i,
                    relation: ind.from_relation,
                    row: id,
                });
            }
        }
    }
    out
}

/// Builds the referenced-side indexes every IND in `cs` needs, so that
/// subsequent [`check_ind`] calls use hash lookups instead of scans.
pub fn build_ind_indexes(db: &mut Database, cs: &ConstraintSet) {
    for ind in cs.inds() {
        db.relation_mut(ind.to_relation).ensure_index(&ind.to_attrs);
    }
}

/// Dependent projections seen under one determinant, with multiplicities.
/// One entry per *distinct* dependent; two or more entries mark a
/// determinant that is internally inconsistent within the source.
/// Multiplicities make the fingerprint a multiset, so rows can be removed
/// as well as added — the basis of incremental base-state maintenance.
type FpDeps = SmallVec<[(Projection, u32); 1]>;

/// Per-source FD fingerprints: for one FD, the map from determinant values
/// to dependent values over the tuples of one source.
///
/// Two sources are mutually FD-consistent iff their fingerprint maps agree
/// on every shared determinant. This is the edge test of `GfTd` without
/// rescanning tuples.
#[derive(Clone, Debug, Default)]
pub struct FdFingerprint {
    /// determinant projection -> distinct dependent projections with counts.
    map: FxHashMap<Projection, FpDeps>,
}

impl FdFingerprint {
    /// Records one row's `(determinant, dependent)` projection pair.
    fn add(&mut self, lhs: Projection, rhs: Projection) {
        let deps = self.map.entry(lhs).or_default();
        match deps.iter_mut().find(|(r, _)| *r == rhs) {
            Some((_, n)) => *n += 1,
            None => deps.push((rhs, 1)),
        }
    }

    /// Removes one row's `(determinant, dependent)` pair previously added.
    /// Returns whether the pair was present.
    fn remove(&mut self, lhs: &Projection, rhs: &Projection) -> bool {
        let Some(deps) = self.map.get_mut(lhs) else {
            return false;
        };
        let Some(pos) = deps.iter().position(|(r, _)| r == rhs) else {
            return false;
        };
        deps[pos].1 -= 1;
        if deps[pos].1 == 0 {
            let last = deps.len() - 1;
            deps.swap(pos, last);
            deps.pop();
        }
        if deps.is_empty() {
            self.map.remove(lhs);
        }
        true
    }

    /// Collects the fingerprint of `source` for `fd`.
    pub fn collect(db: &Database, fd: &Fd, source: Source) -> Self {
        let store = db.relation(fd.relation);
        let mut fp = FdFingerprint::default();
        for (_, row) in store.scan_all() {
            if row.source != source {
                continue;
            }
            fp.add(row.tuple.project(&fd.lhs), row.tuple.project(&fd.rhs));
        }
        fp
    }

    /// Whether the source is internally consistent for the FD.
    pub fn self_consistent(&self) -> bool {
        self.map.values().all(|deps| deps.len() == 1)
    }

    /// Whether two fingerprints are mutually consistent: no shared
    /// determinant maps to different dependents.
    pub fn consistent_with(&self, other: &FdFingerprint) -> bool {
        // Iterate the smaller map.
        let (small, large) = if self.map.len() <= other.map.len() {
            (&self.map, &other.map)
        } else {
            (&other.map, &self.map)
        };
        for (lhs, deps) in small {
            if let Some(other_deps) = large.get(lhs) {
                if deps.len() != 1 || other_deps.len() != 1 || deps[0].0 != other_deps[0].0 {
                    return false;
                }
            }
        }
        true
    }

    /// Number of distinct determinants in the fingerprint.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the fingerprint covers no tuples.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

/// Fingerprints for every FD of a constraint set, for one source.
#[derive(Clone, Debug, Default)]
pub struct SourceFingerprints {
    per_fd: Vec<FdFingerprint>,
}

impl SourceFingerprints {
    /// Builds fingerprints directly from a transaction's own tuples —
    /// O(|transaction|), used by incremental steady-state maintenance
    /// (no database scan).
    pub fn from_tuples<'a>(
        cs: &ConstraintSet,
        tuples: impl IntoIterator<Item = (RelationId, &'a crate::tuple::Tuple)> + Clone,
    ) -> Self {
        let mut per_fd: Vec<FdFingerprint> = vec![FdFingerprint::default(); cs.fds().len()];
        for (fd_idx, fd) in cs.fds().iter().enumerate() {
            for (rel, tuple) in tuples.clone() {
                if rel != fd.relation {
                    continue;
                }
                per_fd[fd_idx].add(tuple.project(&fd.lhs), tuple.project(&fd.rhs));
            }
        }
        SourceFingerprints { per_fd }
    }

    /// Adds one tuple of `rel` to the fingerprints — O(|FDs on rel|),
    /// the per-row cost of incremental base maintenance.
    pub fn add_tuple(&mut self, cs: &ConstraintSet, rel: RelationId, tuple: &crate::tuple::Tuple) {
        for (fd_idx, fd) in cs.fds().iter().enumerate() {
            if fd.relation == rel {
                self.per_fd[fd_idx].add(tuple.project(&fd.lhs), tuple.project(&fd.rhs));
            }
        }
    }

    /// Removes one previously added tuple of `rel` from the fingerprints.
    pub fn remove_tuple(
        &mut self,
        cs: &ConstraintSet,
        rel: RelationId,
        tuple: &crate::tuple::Tuple,
    ) {
        for (fd_idx, fd) in cs.fds().iter().enumerate() {
            if fd.relation == rel {
                let removed = self.per_fd[fd_idx]
                    .remove(&tuple.project(&fd.lhs), &tuple.project(&fd.rhs));
                debug_assert!(removed, "removing a tuple that was never fingerprinted");
            }
        }
    }

    /// Collects all FD fingerprints of `source`.
    pub fn collect(db: &Database, cs: &ConstraintSet, source: Source) -> Self {
        SourceFingerprints {
            per_fd: cs
                .fds()
                .iter()
                .map(|fd| FdFingerprint::collect(db, fd, source))
                .collect(),
        }
    }

    /// Whether the source alone satisfies every FD.
    pub fn self_consistent(&self) -> bool {
        self.per_fd.iter().all(|f| f.self_consistent())
    }

    /// Whether two sources are mutually consistent w.r.t. every FD.
    pub fn consistent_with(&self, other: &SourceFingerprints) -> bool {
        self.per_fd
            .iter()
            .zip(&other.per_fd)
            .all(|(a, b)| a.consistent_with(b))
    }
}

/// Convenience: whether transactions `a` and `b` (together with the base
/// state) are mutually FD-consistent — the edge relation of `GfTd`.
pub fn txs_fd_consistent(
    base: &SourceFingerprints,
    a: &SourceFingerprints,
    b: &SourceFingerprints,
) -> bool {
    a.consistent_with(b) && base.consistent_with(a) && base.consistent_with(b)
}

/// Collects fingerprints for the base source and each pending transaction
/// in a single scan per relation (calling [`SourceFingerprints::collect`]
/// per transaction would be O(rows × transactions)).
/// Returns `(base, per_tx)` where `per_tx[t]` is the fingerprint of `TxId(t)`.
pub fn collect_all_fingerprints(
    db: &Database,
    cs: &ConstraintSet,
) -> (SourceFingerprints, Vec<SourceFingerprints>) {
    let n = db.tx_count();
    let mut base = SourceFingerprints {
        per_fd: vec![FdFingerprint::default(); cs.fds().len()],
    };
    let mut per_tx = vec![
        SourceFingerprints {
            per_fd: vec![FdFingerprint::default(); cs.fds().len()],
        };
        n
    ];
    for (fd_idx, fd) in cs.fds().iter().enumerate() {
        let store = db.relation(fd.relation);
        for (_, row) in store.scan_all() {
            let target = match row.source {
                Source::Base => &mut base.per_fd[fd_idx],
                Source::Pending(t) => &mut per_tx[t.index()].per_fd[fd_idx],
            };
            target.add(row.tuple.project(&fd.lhs), row.tuple.project(&fd.rhs));
        }
    }
    (base, per_tx)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Catalog, RelationSchema};
    use crate::source::TxId;
    use crate::tuple;
    use crate::value::ValueType;

    /// R(a, b) with key a; S(x) with IND S[x] ⊆ R[a].
    fn setup() -> (Database, ConstraintSet, RelationId, RelationId) {
        let mut cat = Catalog::new();
        let r = cat
            .add(RelationSchema::new("R", [("a", ValueType::Int), ("b", ValueType::Int)]).unwrap())
            .unwrap();
        let s = cat
            .add(RelationSchema::new("S", [("x", ValueType::Int)]).unwrap())
            .unwrap();
        let db = Database::new(cat);
        let mut cs = ConstraintSet::new();
        cs.add_fd(Fd::named_key(db.catalog(), "R", &["a"]).unwrap());
        cs.add_ind(Ind::named(db.catalog(), "S", &["x"], "R", &["a"]).unwrap());
        (db, cs, r, s)
    }

    #[test]
    fn fd_violation_detected() {
        let (mut db, cs, r, _) = setup();
        db.insert_base(r, tuple![1i64, 10i64]).unwrap();
        db.insert(r, tuple![1i64, 20i64], Source::Pending(TxId(0)))
            .unwrap();
        let base = db.base_mask();
        assert!(world_satisfies(&db, &cs, &base));
        let w = db.mask_of([TxId(0)]);
        let v = first_violation(&db, &cs, &w);
        assert!(
            matches!(v, Some(Violation::Fd { fd_index: 0, .. })),
            "{v:?}"
        );
    }

    #[test]
    fn duplicate_tuple_is_not_fd_violation() {
        let (mut db, cs, r, _) = setup();
        db.insert_base(r, tuple![1i64, 10i64]).unwrap();
        db.insert(r, tuple![1i64, 10i64], Source::Pending(TxId(0)))
            .unwrap();
        assert!(world_satisfies(&db, &cs, &db.mask_of([TxId(0)])));
    }

    #[test]
    fn ind_violation_detected_and_satisfied() {
        let (mut db, cs, r, s) = setup();
        db.insert_base(r, tuple![1i64, 10i64]).unwrap();
        db.insert(s, tuple![2i64], Source::Pending(TxId(0)))
            .unwrap();
        db.insert(r, tuple![2i64, 30i64], Source::Pending(TxId(1)))
            .unwrap();
        // T0 alone dangles; T0+T1 is fine.
        assert!(matches!(
            first_violation(&db, &cs, &db.mask_of([TxId(0)])),
            Some(Violation::Ind { ind_index: 0, .. })
        ));
        assert!(world_satisfies(&db, &cs, &db.mask_of([TxId(0), TxId(1)])));
        // Base world fine (S empty in base).
        assert!(world_satisfies(&db, &cs, &db.base_mask()));
    }

    #[test]
    fn ind_check_uses_index_when_built() {
        let (mut db, cs, r, s) = setup();
        db.insert_base(r, tuple![1i64, 10i64]).unwrap();
        db.insert_base(s, tuple![1i64]).unwrap();
        build_ind_indexes(&mut db, &cs);
        assert!(db.relation(r).find_index(&[0]).is_some());
        assert!(world_satisfies(&db, &cs, &db.base_mask()));
    }

    #[test]
    fn all_violations_reports_each() {
        let (mut db, cs, r, s) = setup();
        db.insert_base(r, tuple![1i64, 10i64]).unwrap();
        db.insert(r, tuple![1i64, 20i64], Source::Pending(TxId(0)))
            .unwrap();
        db.insert(s, tuple![9i64], Source::Pending(TxId(0)))
            .unwrap();
        let vs = all_violations(&db, &cs, &db.mask_of([TxId(0)]));
        assert_eq!(vs.len(), 2);
        assert!(vs.iter().any(|v| matches!(v, Violation::Fd { .. })));
        assert!(vs.iter().any(|v| matches!(v, Violation::Ind { .. })));
    }

    #[test]
    fn fingerprints_pairwise_consistency() {
        let (mut db, cs, r, _) = setup();
        db.insert_base(r, tuple![1i64, 10i64]).unwrap();
        // T0: agrees with base on key 1, new key 2.
        db.insert(r, tuple![1i64, 10i64], Source::Pending(TxId(0)))
            .unwrap();
        db.insert(r, tuple![2i64, 20i64], Source::Pending(TxId(0)))
            .unwrap();
        // T1: conflicts with T0 on key 2.
        db.insert(r, tuple![2i64, 99i64], Source::Pending(TxId(1)))
            .unwrap();
        // T2: conflicts with base on key 1.
        db.insert(r, tuple![1i64, 77i64], Source::Pending(TxId(2)))
            .unwrap();
        let (base, txs) = collect_all_fingerprints(&db, &cs);
        assert!(base.self_consistent());
        assert!(txs.iter().all(|t| t.self_consistent()));
        assert!(base.consistent_with(&txs[0]));
        assert!(!txs[0].consistent_with(&txs[1]));
        assert!(!base.consistent_with(&txs[2]));
        assert!(txs_fd_consistent(&base, &txs[0], &txs[0]));
        assert!(!txs_fd_consistent(&base, &txs[0], &txs[1]));
        assert!(!txs_fd_consistent(&base, &txs[0], &txs[2]));
        // T1 and T2 are mutually fine, but T2 clashes with base.
        assert!(txs[1].consistent_with(&txs[2]));
        assert!(!txs_fd_consistent(&base, &txs[1], &txs[2]));
    }

    #[test]
    fn internally_inconsistent_transaction() {
        let (mut db, cs, r, _) = setup();
        db.insert(r, tuple![5i64, 1i64], Source::Pending(TxId(0)))
            .unwrap();
        db.insert(r, tuple![5i64, 2i64], Source::Pending(TxId(0)))
            .unwrap();
        let (_, txs) = collect_all_fingerprints(&db, &cs);
        assert!(!txs[0].self_consistent());
        // An internally broken source is inconsistent with everything,
        // including an empty partner that shares the determinant.
        let mut other = db.clone();
        other
            .insert(r, tuple![5i64, 1i64], Source::Pending(TxId(1)))
            .unwrap();
        let (_, txs2) = collect_all_fingerprints(&other, &cs);
        assert!(!txs2[0].consistent_with(&txs2[1]));
    }

    #[test]
    fn incremental_fingerprint_add_remove_round_trips() {
        let (mut db, cs, r, _) = setup();
        db.insert_base(r, tuple![1i64, 10i64]).unwrap();
        db.insert(r, tuple![1i64, 20i64], Source::Pending(TxId(0)))
            .unwrap();
        let (mut base, txs) = collect_all_fingerprints(&db, &cs);
        assert!(!base.consistent_with(&txs[0]));

        // Adding a conflicting row then removing it restores behaviour,
        // even when another row shares the same (lhs, rhs) pair.
        let clash = tuple![1i64, 20i64];
        base.add_tuple(&cs, r, &clash);
        assert!(!base.self_consistent());
        base.add_tuple(&cs, r, &clash);
        base.remove_tuple(&cs, r, &clash);
        assert!(!base.self_consistent(), "one copy of the clash remains");
        base.remove_tuple(&cs, r, &clash);
        assert!(base.self_consistent());
        assert!(!base.consistent_with(&txs[0]));

        // Removing the original row makes base compatible with T0 again.
        base.remove_tuple(&cs, r, &tuple![1i64, 10i64]);
        assert!(base.consistent_with(&txs[0]));
    }

    #[test]
    fn fingerprint_len_and_empty() {
        let (db, cs, _, _) = setup();
        let fp = FdFingerprint::collect(&db, &cs.fds()[0], Source::Base);
        assert!(fp.is_empty());
        assert_eq!(fp.len(), 0);
    }
}
