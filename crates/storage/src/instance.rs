//! A database instance: a catalog plus one [`RelationStore`] per relation.

use crate::error::StorageError;
use crate::relation::{RelationStore, RowId};
use crate::schema::{Catalog, RelationId};
use crate::source::{Source, TxId, WorldMask};
use crate::tuple::Tuple;
use crate::value::Value;
use rustc_hash::FxHashSet;
use std::sync::Arc;

/// A typed, multi-source database instance.
///
/// Tuples are inserted with a [`Source`] tag — `Base` for the accepted state
/// `R`, `Pending(t)` for tuples of pending transaction `t` — and all reads
/// are filtered through a [`WorldMask`]. The instance also tracks how many
/// distinct pending transactions it has seen so masks can be sized.
#[derive(Clone, Debug)]
pub struct Database {
    catalog: Catalog,
    stores: Vec<RelationStore>,
    tx_count: u32,
    /// Canonical allocation per distinct text value, so equal strings stored
    /// through this instance share one `Arc` and compare by pointer on the
    /// evaluator's innermost loop.
    interned: FxHashSet<Arc<str>>,
}

impl Database {
    /// Creates an empty instance over `catalog`.
    pub fn new(catalog: Catalog) -> Self {
        let stores = (0..catalog.relation_count())
            .map(|_| RelationStore::new())
            .collect();
        Database {
            catalog,
            stores,
            tx_count: 0,
            interned: FxHashSet::default(),
        }
    }

    /// Replaces a text value with the instance's canonical allocation for
    /// that content (first sighting wins). Non-text values pass through
    /// unchanged. Every insert interns its tuple; query preparation interns
    /// constants, so unify/compare in the evaluator usually resolves text
    /// equality with a pointer check.
    pub fn intern_value(&mut self, value: Value) -> Value {
        match value {
            Value::Text(s) => Value::Text(match self.interned.get(&s) {
                Some(canonical) => Arc::clone(canonical),
                None => {
                    self.interned.insert(Arc::clone(&s));
                    s
                }
            }),
            other => other,
        }
    }

    fn intern_tuple(&mut self, tuple: Tuple) -> Tuple {
        if tuple.values().iter().any(|v| matches!(v, Value::Text(_))) {
            tuple
                .values()
                .iter()
                .map(|v| self.intern_value(v.clone()))
                .collect()
        } else {
            tuple
        }
    }

    /// The catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// The store of relation `rel`.
    pub fn relation(&self, rel: RelationId) -> &RelationStore {
        &self.stores[rel.index()]
    }

    /// Mutable access to the store of relation `rel` (e.g. to build indexes).
    pub fn relation_mut(&mut self, rel: RelationId) -> &mut RelationStore {
        &mut self.stores[rel.index()]
    }

    /// Number of distinct pending transactions inserted so far. Masks must
    /// be created with at least this capacity.
    pub fn tx_count(&self) -> usize {
        self.tx_count as usize
    }

    /// Typechecks and inserts `tuple` into `rel` from `source`.
    /// Returns the new row id, or `None` if the (tuple, source) pair was
    /// already present.
    pub fn insert(
        &mut self,
        rel: RelationId,
        tuple: Tuple,
        source: Source,
    ) -> Result<Option<RowId>, StorageError> {
        self.catalog.schema(rel).typecheck(&tuple)?;
        if let Source::Pending(TxId(t)) = source {
            self.tx_count = self.tx_count.max(t + 1);
        }
        let tuple = self.intern_tuple(tuple);
        Ok(self.stores[rel.index()].insert(tuple, source))
    }

    /// Inserts into the base state (`R`).
    pub fn insert_base(
        &mut self,
        rel: RelationId,
        tuple: Tuple,
    ) -> Result<Option<RowId>, StorageError> {
        self.insert(rel, tuple, Source::Base)
    }

    /// A mask for the world `R` (no pending transactions).
    pub fn base_mask(&self) -> WorldMask {
        WorldMask::base_only(self.tx_count())
    }

    /// A mask for `R ∪ ⋃T` (all pending transactions — usually not itself a
    /// possible world, but the superset used by the monotone pre-check).
    pub fn all_mask(&self) -> WorldMask {
        WorldMask::all(self.tx_count())
    }

    /// A mask with exactly `txs` active.
    pub fn mask_of(&self, txs: impl IntoIterator<Item = TxId>) -> WorldMask {
        WorldMask::from_txs(self.tx_count(), txs)
    }

    /// Removes pending transaction `tx` from every relation and renumbers
    /// the remaining pending transactions with larger ids down by one, so
    /// transaction ids stay dense. `tx` must be below [`tx_count`]; the
    /// count shrinks by one.
    ///
    /// [`tx_count`]: Database::tx_count
    pub fn remove_pending_tx(&mut self, tx: TxId) {
        assert!(
            tx.0 < self.tx_count,
            "remove_pending_tx: {tx} out of range ({} pending)",
            self.tx_count
        );
        for store in &mut self.stores {
            store.remove_pending_tx(tx);
        }
        self.tx_count -= 1;
    }

    /// Removes a batch of pending transactions (any order, duplicate-free)
    /// from every relation in one compaction pass per store and renumbers
    /// the survivors dense — equivalent to calling
    /// [`remove_pending_tx`](Database::remove_pending_tx) for each id in
    /// descending order, but O(rows) total instead of O(rows × batch).
    pub fn remove_pending_txs(&mut self, txs: &[TxId]) {
        if txs.is_empty() {
            return;
        }
        let mut sorted = txs.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), txs.len(), "duplicate tx in removal batch");
        assert!(
            sorted.last().unwrap().0 < self.tx_count,
            "remove_pending_txs: {} out of range ({} pending)",
            sorted.last().unwrap(),
            self.tx_count
        );
        for store in &mut self.stores {
            store.remove_pending_txs(&sorted);
        }
        self.tx_count -= sorted.len() as u32;
    }

    /// Typechecks and appends `rows` to the base state *at the end of the
    /// base segment* (before any pending row), skipping tuples that already
    /// have a base copy. Returns the rows actually added per relation, in
    /// order — the inverse delta needed to undo the append.
    pub fn append_base_rows(
        &mut self,
        rows: &[(RelationId, Tuple)],
    ) -> Result<Vec<(RelationId, Tuple)>, StorageError> {
        let mut per_rel: Vec<Vec<Tuple>> = vec![Vec::new(); self.stores.len()];
        for (rel, tuple) in rows {
            self.catalog.schema(*rel).typecheck(tuple)?;
            let t = self.intern_tuple(tuple.clone());
            per_rel[rel.index()].push(t);
        }
        let mut added = Vec::new();
        for (idx, tuples) in per_rel.iter().enumerate() {
            if tuples.is_empty() {
                continue;
            }
            for t in self.stores[idx].append_base_rows(tuples) {
                added.push((RelationId(idx as u32), t));
            }
        }
        Ok(added)
    }

    /// Removes base rows by content (each base tuple is stored at most
    /// once). Returns how many rows were removed.
    pub fn remove_base_rows(&mut self, rows: &[(RelationId, Tuple)]) -> usize {
        let mut per_rel: Vec<Vec<Tuple>> = vec![Vec::new(); self.stores.len()];
        for (rel, tuple) in rows {
            per_rel[rel.index()].push(tuple.clone());
        }
        let mut removed = 0;
        for (idx, tuples) in per_rel.iter().enumerate() {
            if !tuples.is_empty() {
                removed += self.stores[idx].remove_base_rows(tuples);
            }
        }
        removed
    }

    /// Typechecks and inserts a new pending transaction at id `at`,
    /// shifting existing transactions with ids `>= at` up by one. Rows land
    /// where a canonically built store would place them. `at` may equal
    /// [`tx_count`](Database::tx_count) (a plain append).
    pub fn insert_pending_tx_at(
        &mut self,
        at: TxId,
        rows: &[(RelationId, Tuple)],
    ) -> Result<(), StorageError> {
        assert!(
            at.0 <= self.tx_count,
            "insert_pending_tx_at: {at} past the end ({} pending)",
            self.tx_count
        );
        let mut per_rel: Vec<Vec<Tuple>> = vec![Vec::new(); self.stores.len()];
        for (rel, tuple) in rows {
            self.catalog.schema(*rel).typecheck(tuple)?;
            let t = self.intern_tuple(tuple.clone());
            per_rel[rel.index()].push(t);
        }
        for (idx, tuples) in per_rel.iter().enumerate() {
            self.stores[idx].insert_pending_rows_at(at, tuples);
        }
        // Mirror `insert`'s max-id tracking: an empty transaction appended
        // at the tail leaves the count unchanged, exactly as a sequence of
        // plain inserts would have.
        if !rows.is_empty() || at.0 < self.tx_count {
            self.tx_count += 1;
        }
        Ok(())
    }

    /// Total rows across all relations (all sources).
    pub fn total_rows(&self) -> usize {
        self.stores.iter().map(|s| s.row_count()).sum()
    }

    /// Rows contributed by pending transaction `tx`, as `(relation, tuple)`.
    pub fn rows_of_tx(&self, tx: TxId) -> Vec<(RelationId, Tuple)> {
        let mut out = Vec::new();
        for (rel, _) in self.catalog.iter() {
            for (_, row) in self.stores[rel.index()].scan_all() {
                if row.source == Source::Pending(tx) {
                    out.push((rel, row.tuple.clone()));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::RelationSchema;
    use crate::tuple;
    use crate::value::ValueType;

    fn db() -> (Database, RelationId) {
        let mut cat = Catalog::new();
        let r = cat
            .add(RelationSchema::new("R", [("a", ValueType::Int), ("b", ValueType::Text)]).unwrap())
            .unwrap();
        (Database::new(cat), r)
    }

    #[test]
    fn typed_insert_ok_and_err() {
        let (mut db, r) = db();
        assert!(db.insert_base(r, tuple![1i64, "x"]).unwrap().is_some());
        assert!(db.insert_base(r, tuple![1i64, "x"]).unwrap().is_none());
        assert!(db.insert_base(r, tuple!["bad", "x"]).is_err());
        assert_eq!(db.total_rows(), 1);
    }

    #[test]
    fn tx_count_tracks_max_tx_id() {
        let (mut db, r) = db();
        assert_eq!(db.tx_count(), 0);
        db.insert(r, tuple![1i64, "x"], Source::Pending(TxId(4)))
            .unwrap();
        assert_eq!(db.tx_count(), 5);
        db.insert(r, tuple![2i64, "y"], Source::Pending(TxId(1)))
            .unwrap();
        assert_eq!(db.tx_count(), 5);
        assert_eq!(db.base_mask().capacity(), 5);
        assert_eq!(db.all_mask().tx_count(), 5);
    }

    #[test]
    fn rows_of_tx_collects_only_that_tx() {
        let (mut db, r) = db();
        db.insert(r, tuple![1i64, "x"], Source::Pending(TxId(0)))
            .unwrap();
        db.insert(r, tuple![2i64, "y"], Source::Pending(TxId(1)))
            .unwrap();
        db.insert_base(r, tuple![3i64, "z"]).unwrap();
        let rows = db.rows_of_tx(TxId(1));
        assert_eq!(rows, vec![(r, tuple![2i64, "y"])]);
    }

    #[test]
    fn interning_unifies_text_allocations() {
        let (mut db, r) = db();
        db.insert_base(r, tuple![1i64, "addr"]).unwrap();
        db.insert(r, tuple![2i64, "addr"], Source::Pending(TxId(0)))
            .unwrap();
        let texts: Vec<Value> = db
            .relation(r)
            .scan_all()
            .map(|(_, row)| row.tuple[1].clone())
            .collect();
        let (Value::Text(a), Value::Text(b)) = (&texts[0], &texts[1]) else {
            panic!("expected text values");
        };
        assert!(Arc::ptr_eq(a, b), "equal strings share one allocation");
        // And intern_value hands back the same canonical Arc.
        let Value::Text(c) = db.intern_value(Value::text("addr")) else {
            panic!("expected text value");
        };
        assert!(Arc::ptr_eq(a, &c));
    }

    #[test]
    fn remove_pending_tx_shrinks_and_renumbers() {
        let (mut db, r) = db();
        db.insert(r, tuple![1i64, "x"], Source::Pending(TxId(0)))
            .unwrap();
        db.insert(r, tuple![2i64, "y"], Source::Pending(TxId(1)))
            .unwrap();
        db.insert(r, tuple![3i64, "z"], Source::Pending(TxId(2)))
            .unwrap();
        db.remove_pending_tx(TxId(1));
        assert_eq!(db.tx_count(), 2);
        assert_eq!(db.rows_of_tx(TxId(0)), vec![(r, tuple![1i64, "x"])]);
        // Old TxId(2) renumbered to TxId(1).
        assert_eq!(db.rows_of_tx(TxId(1)), vec![(r, tuple![3i64, "z"])]);
        assert!(!db
            .relation(r)
            .contains(&tuple![2i64, "y"], &db.all_mask()));
    }

    #[test]
    fn mask_of_builds_world() {
        let (mut db, r) = db();
        db.insert(r, tuple![1i64, "x"], Source::Pending(TxId(0)))
            .unwrap();
        db.insert(r, tuple![2i64, "y"], Source::Pending(TxId(1)))
            .unwrap();
        let m = db.mask_of([TxId(1)]);
        assert!(db.relation(r).contains(&tuple![2i64, "y"], &m));
        assert!(!db.relation(r).contains(&tuple![1i64, "x"], &m));
    }
}
