//! Tuple provenance and world masks.
//!
//! A blockchain database holds tuples from the accepted state `R` *and* from
//! every pending transaction in `T`. Rather than materialising each possible
//! world `R ∪ ⋃T'` (the paper implements this as updating a Boolean
//! `current` column in Postgres, which it reports as a dominant cost), every
//! stored tuple carries its [`Source`], and readers pass a [`WorldMask`]
//! selecting which pending transactions are "in" the world being examined.

use bcdb_graph::BitSet;
use std::fmt;

/// Identifier of a pending transaction (dense index into `T`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TxId(pub u32);

impl TxId {
    /// The id as an index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for TxId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

/// Where a stored tuple comes from.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Source {
    /// The accepted current state `R` (already on chain).
    Base,
    /// A pending (issued but unaccepted) transaction.
    Pending(TxId),
}

impl Source {
    /// The pending transaction id, if any.
    #[inline]
    pub fn tx(self) -> Option<TxId> {
        match self {
            Source::Base => None,
            Source::Pending(t) => Some(t),
        }
    }
}

/// A possible world, described intensionally: the set of pending
/// transactions considered appended. Base tuples are always active.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct WorldMask {
    active: BitSet,
}

impl WorldMask {
    /// The world `R` itself: no pending transaction active. `tx_capacity`
    /// is the total number of pending transactions.
    pub fn base_only(tx_capacity: usize) -> Self {
        WorldMask {
            active: BitSet::new(tx_capacity),
        }
    }

    /// The (usually hypothetical) world `R ∪ ⋃T`: every pending transaction
    /// active. Used by the monotone pre-check of §6.3.
    pub fn all(tx_capacity: usize) -> Self {
        WorldMask {
            active: BitSet::full(tx_capacity),
        }
    }

    /// A world with exactly the given pending transactions active.
    pub fn from_txs(tx_capacity: usize, txs: impl IntoIterator<Item = TxId>) -> Self {
        WorldMask {
            active: BitSet::from_iter(tx_capacity, txs.into_iter().map(TxId::index)),
        }
    }

    /// Resets to the base-only world of `tx_capacity`, reusing the mask's
    /// allocation: [`WorldMask::base_only`] without the heap traffic, for
    /// callers that build one world per enumerated clique.
    #[inline]
    pub fn reset_to_base(&mut self, tx_capacity: usize) {
        self.active.reset(tx_capacity);
    }

    /// Activates a pending transaction.
    #[inline]
    pub fn activate(&mut self, tx: TxId) {
        self.active.insert(tx.index());
    }

    /// Deactivates a pending transaction.
    #[inline]
    pub fn deactivate(&mut self, tx: TxId) {
        self.active.remove(tx.index());
    }

    /// Whether a tuple from `source` is part of this world.
    #[inline]
    pub fn is_active(&self, source: Source) -> bool {
        match source {
            Source::Base => true,
            Source::Pending(t) => self.active.contains(t.index()),
        }
    }

    /// Whether the pending transaction `tx` is active.
    #[inline]
    pub fn contains_tx(&self, tx: TxId) -> bool {
        self.active.contains(tx.index())
    }

    /// The active pending transactions, ascending.
    pub fn txs(&self) -> impl Iterator<Item = TxId> + '_ {
        self.active.iter().map(|i| TxId(i as u32))
    }

    /// Number of active pending transactions.
    pub fn tx_count(&self) -> usize {
        self.active.len()
    }

    /// Total pending-transaction capacity the mask was built for.
    pub fn capacity(&self) -> usize {
        self.active.capacity()
    }
}

impl fmt::Debug for WorldMask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "R")?;
        for t in self.txs() {
            write!(f, " ∪ {t}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_rows_always_active() {
        let m = WorldMask::base_only(4);
        assert!(m.is_active(Source::Base));
        assert!(!m.is_active(Source::Pending(TxId(0))));
        assert_eq!(m.tx_count(), 0);
    }

    #[test]
    fn all_mask_activates_everything() {
        let m = WorldMask::all(3);
        for i in 0..3 {
            assert!(m.is_active(Source::Pending(TxId(i))));
        }
        assert_eq!(m.tx_count(), 3);
    }

    #[test]
    fn activate_deactivate() {
        let mut m = WorldMask::base_only(5);
        m.activate(TxId(2));
        m.activate(TxId(4));
        assert!(m.contains_tx(TxId(2)));
        assert_eq!(m.txs().collect::<Vec<_>>(), vec![TxId(2), TxId(4)]);
        m.deactivate(TxId(2));
        assert!(!m.contains_tx(TxId(2)));
        assert_eq!(m.tx_count(), 1);
    }

    #[test]
    fn from_txs_constructor() {
        let m = WorldMask::from_txs(10, [TxId(7), TxId(1)]);
        assert_eq!(m.txs().collect::<Vec<_>>(), vec![TxId(1), TxId(7)]);
        assert_eq!(m.capacity(), 10);
    }

    #[test]
    fn debug_rendering() {
        let m = WorldMask::from_txs(4, [TxId(0), TxId(3)]);
        assert_eq!(format!("{m:?}"), "R ∪ T0 ∪ T3");
        assert_eq!(format!("{:?}", WorldMask::base_only(4)), "R");
    }

    #[test]
    fn source_tx_accessor() {
        assert_eq!(Source::Base.tx(), None);
        assert_eq!(Source::Pending(TxId(3)).tx(), Some(TxId(3)));
    }
}
