#![warn(missing_docs)]

//! Relational substrate for blockchain databases.
//!
//! This crate provides the storage layer beneath the possible-worlds
//! reasoning of *Reasoning about the Future in Blockchain Databases*:
//!
//! * typed [`Value`]s, [`Tuple`]s, [`RelationSchema`]s and a [`Catalog`];
//! * a mask-aware [`RelationStore`] where every tuple is tagged with its
//!   [`Source`] — the accepted state `R` or a pending transaction — and all
//!   reads are filtered by a [`WorldMask`], so possible worlds are never
//!   materialised (the in-memory analogue of the paper's Postgres
//!   `current`-column trick, §6.3);
//! * integrity constraints — keys, functional dependencies, inclusion
//!   dependencies (§4) — with whole-world checking and the pairwise
//!   FD-fingerprint machinery behind the `GfTd` transaction graph (§6.1);
//! * pluggable snapshot persistence behind the in-memory store: the
//!   [`StorageBackend`] trait with [`MemoryBackend`] and a durable
//!   [`DiskBackend`] of immutable, CRC-checksummed epoch-snapshot files
//!   ([`codec`]), plus the crash-point-injectable [`DurableFile`] write
//!   layer ([`durable`]) that the recovery tests drive.

pub mod backend;
pub mod checker;
pub mod codec;
pub mod constraints;
pub mod durable;
pub mod error;
pub mod instance;
pub mod relation;
pub mod schema;
pub mod source;
pub mod tuple;
pub mod value;

mod catalog_display;

pub use backend::{DbSnapshot, DiskBackend, MemoryBackend, StorageBackend};
pub use codec::{decode_snapshot, encode_snapshot, SnapshotCodecError, SNAPSHOT_MAGIC};
pub use durable::{
    is_injected_crash, CrashController, CrashPoint, CrashStyle, DurableFile, SyncPolicy,
};

pub use checker::{
    all_violations, build_ind_indexes, check_fd, check_ind, collect_all_fingerprints,
    first_violation, txs_fd_consistent, world_satisfies, FdFingerprint, SourceFingerprints,
    Violation,
};
pub use constraints::{ConstraintKind, ConstraintSet, Fd, Ind};
pub use error::StorageError;
pub use instance::Database;
pub use relation::{RelationStore, Row, RowId};
pub use schema::{Catalog, RelationId, RelationSchema};
pub use source::{Source, TxId, WorldMask};
pub use tuple::Tuple;
pub use value::{Value, ValueType};
