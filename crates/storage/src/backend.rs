//! Pluggable snapshot storage behind the in-memory [`RelationStore`](crate::RelationStore).
//!
//! The store itself ([`RelationStore`](crate::RelationStore)) stays the
//! single in-memory representation of a database; a [`StorageBackend`]
//! is where *epoch snapshots* of that state go so a crashed process can
//! come back. The contract pairs with the monitor's journal: a backend
//! persists an immutable snapshot per accepted epoch, the journal carries
//! the overlay of intra-epoch events plus `snapshot-boundary` records
//! naming the snapshots, and recovery loads the newest loadable snapshot
//! and replays only the journal tail after its boundary record — cost
//! proportional to the WAL tail, not the dataset.
//!
//! Two backends ship:
//!
//! * [`MemoryBackend`] — snapshots held as encoded bytes in memory (the
//!   default flavour: no durability, but the same codec validation);
//! * [`DiskBackend`] — one [codec](crate::codec)-encoded file per
//!   snapshot in a directory, written through a
//!   [`DurableFile`] so crash-point
//!   injection can tear snapshot writes mid-section.

use crate::codec::{decode_snapshot, encode_snapshot, encode_snapshot_chunks};
use crate::durable::{CrashController, DurableFile};
use crate::error::StorageError;
use crate::tuple::Tuple;
use std::fmt;
use std::path::{Path, PathBuf};

/// A full, self-describing snapshot of one database state at one epoch:
/// base rows per relation (every relation of the catalog, in catalog
/// order, rows in store order) and pending transactions in issue order.
/// Relation and transaction references are by *name*, so a snapshot can
/// be decoded without the catalog that produced it.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct DbSnapshot {
    /// The epoch this snapshot captures (monitor epochs: one per
    /// accepted block or reorg).
    pub epoch: u64,
    /// Per relation: name and base (`R`) rows, in insertion order.
    pub base: Vec<(String, Vec<Tuple>)>,
    /// Per pending transaction, in issue order: name and its
    /// `(relation, tuple)` rows.
    pub pending: Vec<(String, Vec<(String, Tuple)>)>,
}

impl DbSnapshot {
    /// Total base rows across all relations.
    pub fn base_rows(&self) -> usize {
        self.base.iter().map(|(_, rows)| rows.len()).sum()
    }
}

/// Where epoch snapshots are persisted and recovered from.
///
/// Snapshot ids are opaque stable strings (the [`DiskBackend`] uses file
/// names); [`list_snapshots`](StorageBackend::list_snapshots) returns
/// them oldest-first. `load_snapshot` must validate: a torn or corrupted
/// snapshot is an error, never a partial result — recovery walks the list
/// newest-first and falls back on the first snapshot that loads.
pub trait StorageBackend: fmt::Debug + Send {
    /// A short stable tag for reports ("memory", "disk").
    fn kind(&self) -> &'static str;
    /// Persists `snap` immutably; returns its id.
    fn persist_snapshot(&mut self, snap: &DbSnapshot) -> Result<String, StorageError>;
    /// Loads and fully validates the snapshot with id `id`.
    fn load_snapshot(&self, id: &str) -> Result<DbSnapshot, StorageError>;
    /// Ids of every persisted snapshot, oldest first.
    fn list_snapshots(&self) -> Result<Vec<String>, StorageError>;
    /// The most recently persisted snapshot id, if any.
    fn latest_snapshot(&self) -> Result<Option<String>, StorageError> {
        Ok(self.list_snapshots()?.pop())
    }
}

fn io_err(context: &str, e: std::io::Error) -> StorageError {
    StorageError::Io {
        detail: format!("{context}: {e}"),
    }
}

fn snapshot_id(seq: u64, epoch: u64) -> String {
    format!("snap-{seq:08}-e{epoch}.bcs")
}

/// Parses the sequence number out of a snapshot id / file name.
fn parse_snapshot_seq(id: &str) -> Option<u64> {
    id.strip_prefix("snap-")?
        .split('-')
        .next()?
        .parse::<u64>()
        .ok()
        .filter(|_| id.ends_with(".bcs"))
}

/// In-memory snapshot storage. Snapshots are still stored *encoded* so
/// loads run the same codec validation as the disk path.
#[derive(Debug, Default)]
pub struct MemoryBackend {
    snaps: Vec<(String, Vec<u8>)>,
    next_seq: u64,
}

impl MemoryBackend {
    /// An empty in-memory backend.
    pub fn new() -> MemoryBackend {
        MemoryBackend::default()
    }
}

impl StorageBackend for MemoryBackend {
    fn kind(&self) -> &'static str {
        "memory"
    }

    fn persist_snapshot(&mut self, snap: &DbSnapshot) -> Result<String, StorageError> {
        let id = snapshot_id(self.next_seq, snap.epoch);
        self.next_seq += 1;
        self.snaps.push((id.clone(), encode_snapshot(snap)));
        Ok(id)
    }

    fn load_snapshot(&self, id: &str) -> Result<DbSnapshot, StorageError> {
        let bytes = self
            .snaps
            .iter()
            .find(|(name, _)| name == id)
            .map(|(_, bytes)| bytes)
            .ok_or_else(|| StorageError::UnknownSnapshot { id: id.to_string() })?;
        Ok(decode_snapshot(bytes)?)
    }

    fn list_snapshots(&self) -> Result<Vec<String>, StorageError> {
        Ok(self.snaps.iter().map(|(name, _)| name.clone()).collect())
    }
}

/// Durable snapshot storage: one immutable file per snapshot in `dir`,
/// written section-by-section through a [`DurableFile`] (each section is
/// a crash-injectable write boundary) and synced before the id is
/// returned — so a snapshot-boundary journal record can only ever name a
/// fully durable snapshot.
#[derive(Debug)]
pub struct DiskBackend {
    dir: PathBuf,
    next_seq: u64,
    ctl: Option<CrashController>,
}

impl DiskBackend {
    /// Opens (creating if needed) a snapshot directory. Existing
    /// snapshots are retained; new ids continue after the highest found.
    pub fn new(dir: impl Into<PathBuf>) -> Result<DiskBackend, StorageError> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir).map_err(|e| io_err("create snapshot dir", e))?;
        let mut backend = DiskBackend {
            dir,
            next_seq: 0,
            ctl: None,
        };
        backend.next_seq = backend
            .list_snapshots()?
            .iter()
            .filter_map(|id| parse_snapshot_seq(id))
            .max()
            .map_or(0, |s| s + 1);
        Ok(backend)
    }

    /// Routes every snapshot write through `ctl` for crash injection.
    pub fn with_crash_controller(mut self, ctl: CrashController) -> DiskBackend {
        self.ctl = Some(ctl);
        self
    }

    /// The snapshot directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }
}

impl StorageBackend for DiskBackend {
    fn kind(&self) -> &'static str {
        "disk"
    }

    fn persist_snapshot(&mut self, snap: &DbSnapshot) -> Result<String, StorageError> {
        let _span = bcdb_telemetry::probes::STORAGE_SNAPSHOT_WRITE_NS.span();
        let id = snapshot_id(self.next_seq, snap.epoch);
        let path = self.dir.join(&id);
        let mut file = DurableFile::create(&path, self.ctl.clone())
            .map_err(|e| io_err("create snapshot file", e))?;
        let mut bytes = 0u64;
        for chunk in encode_snapshot_chunks(snap) {
            bytes += chunk.len() as u64;
            file.write_chunk(&chunk)
                .map_err(|e| io_err("write snapshot section", e))?;
        }
        file.sync().map_err(|e| io_err("sync snapshot", e))?;
        self.next_seq += 1;
        bcdb_telemetry::probes::STORAGE_SNAPSHOTS_PERSISTED.add(1);
        bcdb_telemetry::probes::STORAGE_SNAPSHOT_BYTES_WRITTEN.add(bytes);
        Ok(id)
    }

    fn load_snapshot(&self, id: &str) -> Result<DbSnapshot, StorageError> {
        if parse_snapshot_seq(id).is_none() {
            return Err(StorageError::UnknownSnapshot { id: id.to_string() });
        }
        let bytes = match std::fs::read(self.dir.join(id)) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return Err(StorageError::UnknownSnapshot { id: id.to_string() })
            }
            Err(e) => return Err(io_err("read snapshot", e)),
        };
        Ok(decode_snapshot(&bytes)?)
    }

    fn list_snapshots(&self) -> Result<Vec<String>, StorageError> {
        let entries = std::fs::read_dir(&self.dir).map_err(|e| io_err("list snapshots", e))?;
        let mut ids: Vec<(u64, String)> = entries
            .filter_map(|e| e.ok())
            .filter_map(|e| e.file_name().into_string().ok())
            .filter_map(|name| parse_snapshot_seq(&name).map(|seq| (seq, name)))
            .collect();
        ids.sort();
        Ok(ids.into_iter().map(|(_, name)| name).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::durable::{CrashPoint, CrashStyle};
    use crate::value::Value;

    fn scratch_dir(name: &str) -> PathBuf {
        let dir = Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../../target/storage-scratch")
            .join(name);
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn sample(epoch: u64) -> DbSnapshot {
        DbSnapshot {
            epoch,
            base: vec![(
                "Pay".to_string(),
                vec![Tuple::new([Value::Int(epoch as i64), Value::text("ann")])],
            )],
            pending: vec![(
                format!("t{epoch}"),
                vec![("Pay".to_string(), Tuple::new([Value::Int(9), Value::text("bob")]))],
            )],
        }
    }

    fn roundtrip(backend: &mut dyn StorageBackend) {
        let id0 = backend.persist_snapshot(&sample(0)).unwrap();
        let id1 = backend.persist_snapshot(&sample(1)).unwrap();
        assert_ne!(id0, id1);
        assert_eq!(backend.list_snapshots().unwrap(), vec![id0.clone(), id1.clone()]);
        assert_eq!(backend.latest_snapshot().unwrap(), Some(id1.clone()));
        assert_eq!(backend.load_snapshot(&id0).unwrap(), sample(0));
        assert_eq!(backend.load_snapshot(&id1).unwrap(), sample(1));
        assert!(matches!(
            backend.load_snapshot("snap-99999999-e9.bcs"),
            Err(StorageError::UnknownSnapshot { .. })
        ));
    }

    #[test]
    fn memory_backend_roundtrips() {
        roundtrip(&mut MemoryBackend::new());
    }

    #[test]
    fn disk_backend_roundtrips() {
        roundtrip(&mut DiskBackend::new(scratch_dir("backend_roundtrip")).unwrap());
    }

    #[test]
    fn disk_backend_ids_continue_after_reopen() {
        let dir = scratch_dir("backend_reopen");
        let mut b = DiskBackend::new(&dir).unwrap();
        let id0 = b.persist_snapshot(&sample(0)).unwrap();
        drop(b);
        let mut b = DiskBackend::new(&dir).unwrap();
        let id1 = b.persist_snapshot(&sample(1)).unwrap();
        assert!(id1 > id0, "{id1} should sort after {id0}");
        assert_eq!(b.list_snapshots().unwrap(), vec![id0, id1]);
    }

    #[test]
    fn corrupt_snapshot_file_is_rejected_not_partial() {
        let dir = scratch_dir("backend_corrupt");
        let mut b = DiskBackend::new(&dir).unwrap();
        let id = b.persist_snapshot(&sample(0)).unwrap();
        let path = dir.join(&id);
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x20;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            b.load_snapshot(&id),
            Err(StorageError::CorruptSnapshot { .. })
        ));
    }

    #[test]
    fn crashed_snapshot_write_leaves_an_unloadable_file() {
        let dir = scratch_dir("backend_crash");
        let ctl = CrashController::new();
        let mut b = DiskBackend::new(&dir)
            .unwrap()
            .with_crash_controller(ctl.clone());
        // Crash on the third section write (inside the snapshot body).
        ctl.arm(CrashPoint {
            boundary: 3,
            style: CrashStyle::TornWrite,
        });
        let err = b.persist_snapshot(&sample(0)).unwrap_err();
        assert!(matches!(err, StorageError::Io { .. }));
        ctl.disarm();
        // The torn file exists but never validates.
        let fresh = DiskBackend::new(&dir).unwrap();
        for id in fresh.list_snapshots().unwrap() {
            assert!(fresh.load_snapshot(&id).is_err());
        }
    }
}
