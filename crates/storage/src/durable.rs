//! Crash-injectable durable writes.
//!
//! Durable backends and the journal write through a [`DurableFile`]: an
//! append-only file handle that tracks which bytes have been made durable
//! ([`DurableFile::sync`]) and which are still an *unsynced tail*. Every
//! [`write_chunk`](DurableFile::write_chunk) call is one **write
//! boundary** — the granularity at which a [`CrashController`] can inject
//! a simulated machine crash. When the armed boundary is reached, the
//! on-disk file is rewritten to what a real crash could have left behind
//! (per [`CrashStyle`]: the unsynced tail dropped, torn mid-chunk, or
//! reordered so an early write is lost while later ones survived), the
//! write fails with a marker error ([`is_injected_crash`]), and every
//! subsequent operation on any file sharing the controller fails too —
//! the process is "dead" until the controller is
//! [`disarm`](CrashController::disarm)ed for recovery.
//!
//! In the spirit of `bcdb_chain::faults` and the journal's
//! `tear_last_record`, but at the file layer: the same wrapper serves the
//! journal and the snapshot files, so one crash point can land inside
//! either.

use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

/// When a writer flushes its buffered records to durable storage.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SyncPolicy {
    /// Sync after every record — maximum durability, one sync per append.
    Always,
    /// Sync only when a record advances the epoch (and on explicit
    /// `sync()` calls): intra-epoch churn rides in the unsynced tail and
    /// a crash can lose it, but accepted state never regresses.
    EpochBoundary,
    /// Never sync implicitly; only explicit `sync()` calls flush.
    Never,
}

/// How an injected crash mangles the unsynced tail.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CrashStyle {
    /// The whole unsynced tail (and the in-flight chunk) is lost.
    DropUnsynced,
    /// Earlier unsynced chunks survive; the in-flight chunk is torn in
    /// half mid-write.
    TornWrite,
    /// The first unsynced chunk is lost while *later* ones (and the
    /// in-flight chunk) reached the platter — the reordering a volatile
    /// write cache permits.
    Reorder,
}

/// A crash armed at a specific write boundary.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CrashPoint {
    /// 1-based boundary index: the crash fires on the `boundary`-th
    /// `write_chunk` call counted across every file sharing the
    /// controller.
    pub boundary: u64,
    /// How the unsynced tail is mangled.
    pub style: CrashStyle,
}

#[derive(Debug, Default)]
struct CrashState {
    boundaries: u64,
    armed: Option<CrashPoint>,
    fired: Option<CrashPoint>,
}

/// Shared crash-injection state, cloned into every [`DurableFile`] that
/// should count against (and die with) the same simulated process.
#[derive(Clone, Debug, Default)]
pub struct CrashController {
    inner: Arc<Mutex<CrashState>>,
}

enum BoundaryOutcome {
    Proceed,
    CrashNow(CrashStyle),
    Dead,
}

impl CrashController {
    /// A controller with nothing armed: it only counts boundaries.
    pub fn new() -> CrashController {
        CrashController::default()
    }

    /// Arms a crash. Replaces any previously armed point.
    pub fn arm(&self, point: CrashPoint) {
        let mut st = self.inner.lock().unwrap();
        st.armed = Some(point);
    }

    /// Clears the armed point *and* the fired state, so recovery code can
    /// reuse files attached to this controller.
    pub fn disarm(&self) {
        let mut st = self.inner.lock().unwrap();
        st.armed = None;
        st.fired = None;
    }

    /// Write boundaries observed so far (crash-killed calls included).
    pub fn boundaries(&self) -> u64 {
        self.inner.lock().unwrap().boundaries
    }

    /// The crash point that fired, if any.
    pub fn fired(&self) -> Option<CrashPoint> {
        self.inner.lock().unwrap().fired
    }

    fn on_boundary(&self) -> BoundaryOutcome {
        let mut st = self.inner.lock().unwrap();
        if st.fired.is_some() {
            return BoundaryOutcome::Dead;
        }
        st.boundaries += 1;
        match st.armed {
            Some(p) if p.boundary == st.boundaries => {
                st.fired = Some(p);
                BoundaryOutcome::CrashNow(p.style)
            }
            _ => BoundaryOutcome::Proceed,
        }
    }

    fn dead(&self) -> bool {
        self.inner.lock().unwrap().fired.is_some()
    }
}

/// Marker payload for errors produced by an injected crash.
#[derive(Debug)]
struct InjectedCrash {
    boundary: u64,
    style: CrashStyle,
}

impl fmt::Display for InjectedCrash {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "injected crash at write boundary {} ({:?})",
            self.boundary, self.style
        )
    }
}

impl std::error::Error for InjectedCrash {}

/// The stable prefix of every injected-crash error message; survives
/// stringification through `StorageError::Io`.
pub const INJECTED_CRASH_PREFIX: &str = "injected crash at write boundary";

fn injected_error(boundary: u64, style: CrashStyle) -> io::Error {
    io::Error::other(InjectedCrash { boundary, style })
}

/// Whether an I/O error came from an injected crash (directly or through
/// one level of stringification).
pub fn is_injected_crash(e: &io::Error) -> bool {
    e.get_ref().is_some_and(|inner| inner.is::<InjectedCrash>())
        || e.to_string().contains(INJECTED_CRASH_PREFIX)
}

/// An append-only file with tracked durability and crash injection. See
/// the module docs for the model.
#[derive(Debug)]
pub struct DurableFile {
    path: PathBuf,
    file: File,
    /// Bytes considered durable: everything before this offset survives
    /// any injected crash.
    synced_len: u64,
    /// Chunks written (and visible in the file) but not yet synced, in
    /// write order.
    unsynced: Vec<Vec<u8>>,
    ctl: Option<CrashController>,
}

impl DurableFile {
    /// Creates (truncating) a durable file at `path`.
    pub fn create(
        path: impl Into<PathBuf>,
        ctl: Option<CrashController>,
    ) -> io::Result<DurableFile> {
        let path = path.into();
        let file = File::create(&path)?;
        Ok(DurableFile {
            path,
            file,
            synced_len: 0,
            unsynced: Vec::new(),
            ctl,
        })
    }

    /// Opens an existing file for appending; its current contents count
    /// as durable.
    pub fn open_append(
        path: impl Into<PathBuf>,
        ctl: Option<CrashController>,
    ) -> io::Result<DurableFile> {
        let path = path.into();
        let file = OpenOptions::new().append(true).open(&path)?;
        let synced_len = file.metadata()?.len();
        Ok(DurableFile {
            path,
            file,
            synced_len,
            unsynced: Vec::new(),
            ctl,
        })
    }

    /// Where the file lives.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Chunks written since the last [`sync`](DurableFile::sync).
    pub fn unsynced_chunks(&self) -> usize {
        self.unsynced.len()
    }

    /// Appends one chunk. This is a **write boundary**: if the attached
    /// controller's armed crash point is reached, the on-disk state is
    /// rewritten per the crash style and the call fails with an
    /// [`is_injected_crash`] error.
    pub fn write_chunk(&mut self, chunk: &[u8]) -> io::Result<()> {
        if let Some(ctl) = self.ctl.clone() {
            match ctl.on_boundary() {
                BoundaryOutcome::Proceed => {}
                BoundaryOutcome::Dead => {
                    return Err(injected_error(ctl.boundaries(), CrashStyle::DropUnsynced))
                }
                BoundaryOutcome::CrashNow(style) => {
                    let boundary = ctl.boundaries();
                    self.crash(style, chunk)?;
                    return Err(injected_error(boundary, style));
                }
            }
        }
        self.file.write_all(chunk)?;
        self.file.flush()?;
        self.unsynced.push(chunk.to_vec());
        Ok(())
    }

    /// Marks everything written so far durable. (The simulation treats a
    /// flushed-and-synced prefix as crash-proof; there is no real `fsync`
    /// here — tests exercise *logical* durability, not the platter.)
    pub fn sync(&mut self) -> io::Result<()> {
        if let Some(ctl) = &self.ctl {
            if ctl.dead() {
                return Err(injected_error(ctl.boundaries(), CrashStyle::DropUnsynced));
            }
        }
        self.file.flush()?;
        self.synced_len += self.unsynced.iter().map(|c| c.len() as u64).sum::<u64>();
        self.unsynced.clear();
        Ok(())
    }

    /// Rewrites the on-disk file to a post-crash state: the synced prefix
    /// plus whatever the crash style says survived of the unsynced tail
    /// and the in-flight chunk.
    fn crash(&mut self, style: CrashStyle, in_flight: &[u8]) -> io::Result<()> {
        let f = OpenOptions::new().write(true).open(&self.path)?;
        f.set_len(self.synced_len)?;
        let mut f = OpenOptions::new().append(true).open(&self.path)?;
        match style {
            CrashStyle::DropUnsynced => {}
            CrashStyle::TornWrite => {
                for c in &self.unsynced {
                    f.write_all(c)?;
                }
                f.write_all(&in_flight[..in_flight.len() / 2])?;
            }
            CrashStyle::Reorder => {
                for c in self.unsynced.iter().skip(1) {
                    f.write_all(c)?;
                }
                f.write_all(in_flight)?;
            }
        }
        f.flush()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(name: &str) -> PathBuf {
        let dir = Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../../target/storage-scratch")
            .join("durable");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn boundaries_count_across_files() {
        let ctl = CrashController::new();
        let mut a = DurableFile::create(scratch("count_a"), Some(ctl.clone())).unwrap();
        let mut b = DurableFile::create(scratch("count_b"), Some(ctl.clone())).unwrap();
        a.write_chunk(b"one").unwrap();
        b.write_chunk(b"two").unwrap();
        a.write_chunk(b"three").unwrap();
        assert_eq!(ctl.boundaries(), 3);
    }

    #[test]
    fn drop_style_loses_exactly_the_unsynced_tail() {
        let ctl = CrashController::new();
        let path = scratch("drop");
        let mut f = DurableFile::create(&path, Some(ctl.clone())).unwrap();
        f.write_chunk(b"synced.").unwrap();
        f.sync().unwrap();
        f.write_chunk(b"tail1.").unwrap();
        ctl.arm(CrashPoint {
            boundary: 3,
            style: CrashStyle::DropUnsynced,
        });
        let err = f.write_chunk(b"tail2.").unwrap_err();
        assert!(is_injected_crash(&err));
        assert_eq!(std::fs::read(&path).unwrap(), b"synced.");
    }

    #[test]
    fn torn_style_keeps_half_the_in_flight_chunk() {
        let ctl = CrashController::new();
        let path = scratch("torn");
        let mut f = DurableFile::create(&path, Some(ctl.clone())).unwrap();
        f.write_chunk(b"synced.").unwrap();
        f.sync().unwrap();
        f.write_chunk(b"kept.").unwrap();
        ctl.arm(CrashPoint {
            boundary: 3,
            style: CrashStyle::TornWrite,
        });
        assert!(f.write_chunk(b"abcdef").is_err());
        assert_eq!(std::fs::read(&path).unwrap(), b"synced.kept.abc");
    }

    #[test]
    fn reorder_style_loses_an_early_unsynced_chunk() {
        let ctl = CrashController::new();
        let path = scratch("reorder");
        let mut f = DurableFile::create(&path, Some(ctl.clone())).unwrap();
        f.write_chunk(b"synced.").unwrap();
        f.sync().unwrap();
        f.write_chunk(b"lost.").unwrap();
        f.write_chunk(b"kept.").unwrap();
        ctl.arm(CrashPoint {
            boundary: 4,
            style: CrashStyle::Reorder,
        });
        assert!(f.write_chunk(b"flight.").is_err());
        assert_eq!(std::fs::read(&path).unwrap(), b"synced.kept.flight.");
    }

    #[test]
    fn everything_dies_after_the_crash_until_disarm() {
        let ctl = CrashController::new();
        let mut a = DurableFile::create(scratch("dead_a"), Some(ctl.clone())).unwrap();
        let mut b = DurableFile::create(scratch("dead_b"), Some(ctl.clone())).unwrap();
        ctl.arm(CrashPoint {
            boundary: 1,
            style: CrashStyle::DropUnsynced,
        });
        assert!(a.write_chunk(b"x").is_err());
        assert!(b.write_chunk(b"y").is_err(), "sibling files die too");
        assert!(a.sync().is_err());
        assert!(ctl.fired().is_some());
        ctl.disarm();
        assert!(b.write_chunk(b"y").is_ok(), "disarm revives the controller");
    }

    #[test]
    fn unarmed_controller_is_transparent() {
        let path = scratch("transparent");
        let mut f = DurableFile::create(&path, Some(CrashController::new())).unwrap();
        f.write_chunk(b"hello ").unwrap();
        f.write_chunk(b"world").unwrap();
        f.sync().unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"hello world");
        assert_eq!(f.unsynced_chunks(), 0);
    }

    #[test]
    fn open_append_counts_existing_bytes_as_durable() {
        let path = scratch("reopen");
        std::fs::write(&path, b"existing.").unwrap();
        let ctl = CrashController::new();
        let mut f = DurableFile::open_append(&path, Some(ctl.clone())).unwrap();
        ctl.arm(CrashPoint {
            boundary: 1,
            style: CrashStyle::DropUnsynced,
        });
        assert!(f.write_chunk(b"gone").is_err());
        assert_eq!(std::fs::read(&path).unwrap(), b"existing.");
    }
}
