//! Ground tuples.

use crate::value::Value;
use smallvec::SmallVec;
use std::fmt;
use std::ops::Index;

/// Inline capacity for tuple storage. Every schema in the paper has at most
/// six attributes, so eight inline slots avoid a heap allocation per tuple.
const INLINE: usize = 8;

/// A ground tuple: an ordered sequence of [`Value`]s.
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct Tuple {
    values: SmallVec<[Value; INLINE]>,
}

impl Tuple {
    /// Creates a tuple from values.
    pub fn new(values: impl IntoIterator<Item = Value>) -> Self {
        Tuple {
            values: values.into_iter().collect(),
        }
    }

    /// Arity of the tuple.
    #[inline]
    pub fn arity(&self) -> usize {
        self.values.len()
    }

    /// The value at position `i`, if in range.
    #[inline]
    pub fn get(&self, i: usize) -> Option<&Value> {
        self.values.get(i)
    }

    /// All values as a slice.
    #[inline]
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// The projection of the tuple onto `attrs` (paper notation `t[X]`).
    pub fn project(&self, attrs: &[usize]) -> SmallVec<[Value; 4]> {
        attrs.iter().map(|&i| self.values[i].clone()).collect()
    }

    /// Whether `self[xs] == other[ys]` componentwise. Used by equality
    /// constraints `R[X̄] = S[Ȳ]` (§6.2); `xs` and `ys` must have equal length.
    pub fn projections_equal(&self, xs: &[usize], other: &Tuple, ys: &[usize]) -> bool {
        debug_assert_eq!(xs.len(), ys.len());
        xs.iter()
            .zip(ys)
            .all(|(&i, &j)| self.values[i] == other.values[j])
    }
}

impl Index<usize> for Tuple {
    type Output = Value;
    fn index(&self, i: usize) -> &Value {
        &self.values[i]
    }
}

impl fmt::Debug for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.values.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl FromIterator<Value> for Tuple {
    fn from_iter<I: IntoIterator<Item = Value>>(iter: I) -> Self {
        Tuple::new(iter)
    }
}

/// Builds a [`Tuple`] from heterogeneous literals:
/// `tuple![1, "abc", true]`.
#[macro_export]
macro_rules! tuple {
    ($($v:expr),* $(,)?) => {
        $crate::tuple::Tuple::new([$($crate::value::Value::from($v)),*])
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn macro_builds_mixed_tuple() {
        let t = tuple![1i64, "tx", true];
        assert_eq!(t.arity(), 3);
        assert_eq!(t[0], Value::Int(1));
        assert_eq!(t[1], Value::text("tx"));
        assert_eq!(t[2], Value::Bool(true));
    }

    #[test]
    fn projection() {
        let t = tuple![10i64, "a", 30i64];
        assert_eq!(
            t.project(&[2, 0]).to_vec(),
            vec![Value::Int(30), Value::Int(10)]
        );
        assert!(t.project(&[]).is_empty());
    }

    #[test]
    fn projections_equal_cross_tuple() {
        let t = tuple![1i64, "k", 7i64];
        let s = tuple!["k", 1i64];
        assert!(t.projections_equal(&[0, 1], &s, &[1, 0]));
        assert!(!t.projections_equal(&[0, 1], &s, &[0, 1]));
        assert!(t.projections_equal(&[], &s, &[]));
    }

    #[test]
    fn equality_and_hash_by_content() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(tuple![1i64, "x"]);
        assert!(set.contains(&tuple![1i64, "x"]));
        assert!(!set.contains(&tuple![1i64, "y"]));
    }

    #[test]
    fn display_format() {
        assert_eq!(tuple![1i64, "a"].to_string(), "(1, 'a')");
    }

    #[test]
    fn get_out_of_range() {
        assert_eq!(tuple![1i64].get(1), None);
    }
}
