//! Integrity constraints: keys, functional dependencies, inclusion
//! dependencies (§4 of the paper).

use crate::catalog_display::attrs_to_names;
use crate::error::StorageError;
use crate::schema::{Catalog, RelationId};
use std::fmt;

/// The three constraint types the paper's complexity results range over
/// (the set ∆ ⊆ {key, fd, ind} of §5).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ConstraintKind {
    /// Key constraint (an FD whose right side is the full attribute set).
    Key,
    /// Functional dependency.
    Fd,
    /// Inclusion dependency.
    Ind,
}

/// A functional dependency `X → Y` over one relation, with `X`/`Y` given as
/// attribute positions. Key constraints are FDs with `Y` = all attributes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Fd {
    /// Relation the dependency constrains.
    pub relation: RelationId,
    /// Determinant attribute positions (`X`).
    pub lhs: Vec<usize>,
    /// Dependent attribute positions (`Y`).
    pub rhs: Vec<usize>,
}

impl Fd {
    /// Creates an FD, validating attribute indexes against the catalog.
    pub fn new(
        catalog: &Catalog,
        relation: RelationId,
        lhs: Vec<usize>,
        rhs: Vec<usize>,
    ) -> Result<Self, StorageError> {
        let schema = catalog.schema(relation);
        for &i in lhs.iter().chain(&rhs) {
            if i >= schema.arity() {
                return Err(StorageError::BadAttributeIndex {
                    relation: schema.name().to_string(),
                    index: i,
                    arity: schema.arity(),
                });
            }
        }
        if lhs.is_empty() {
            return Err(StorageError::MalformedConstraint {
                detail: format!("FD on '{}' has empty determinant", schema.name()),
            });
        }
        Ok(Fd { relation, lhs, rhs })
    }

    /// Creates a key constraint: `key → all attributes`.
    pub fn key(
        catalog: &Catalog,
        relation: RelationId,
        key: Vec<usize>,
    ) -> Result<Self, StorageError> {
        let arity = catalog.schema(relation).arity();
        Fd::new(catalog, relation, key, (0..arity).collect())
    }

    /// Convenience: builds an FD from attribute *names*.
    pub fn named(
        catalog: &Catalog,
        relation: &str,
        lhs: &[&str],
        rhs: &[&str],
    ) -> Result<Self, StorageError> {
        let id = catalog
            .resolve(relation)
            .ok_or_else(|| StorageError::UnknownRelation {
                relation: relation.to_string(),
            })?;
        let schema = catalog.schema(id);
        let resolve = |names: &[&str]| -> Result<Vec<usize>, StorageError> {
            names
                .iter()
                .map(|n| {
                    schema
                        .attribute_index(n)
                        .ok_or_else(|| StorageError::MalformedConstraint {
                            detail: format!("unknown attribute '{n}' on '{relation}'"),
                        })
                })
                .collect()
        };
        Fd::new(catalog, id, resolve(lhs)?, resolve(rhs)?)
    }

    /// Convenience: builds a key constraint from attribute names.
    pub fn named_key(
        catalog: &Catalog,
        relation: &str,
        key: &[&str],
    ) -> Result<Self, StorageError> {
        let id = catalog
            .resolve(relation)
            .ok_or_else(|| StorageError::UnknownRelation {
                relation: relation.to_string(),
            })?;
        let schema = catalog.schema(id);
        let key_idx = key
            .iter()
            .map(|n| {
                schema
                    .attribute_index(n)
                    .ok_or_else(|| StorageError::MalformedConstraint {
                        detail: format!("unknown attribute '{n}' on '{relation}'"),
                    })
            })
            .collect::<Result<Vec<usize>, _>>()?;
        Fd::key(catalog, id, key_idx)
    }

    /// Whether this FD is a key constraint for `catalog` (rhs covers every
    /// attribute).
    pub fn is_key(&self, catalog: &Catalog) -> bool {
        let arity = catalog.schema(self.relation).arity();
        let mut covered = vec![false; arity];
        for &i in self.lhs.iter().chain(&self.rhs) {
            covered[i] = true;
        }
        covered.into_iter().all(|c| c)
    }

    /// [`ConstraintKind::Key`] or [`ConstraintKind::Fd`].
    pub fn kind(&self, catalog: &Catalog) -> ConstraintKind {
        if self.is_key(catalog) {
            ConstraintKind::Key
        } else {
            ConstraintKind::Fd
        }
    }

    /// Renders the FD with attribute names, e.g. `TxIn: [prevTxId] -> [pk]`.
    pub fn display<'a>(&'a self, catalog: &'a Catalog) -> impl fmt::Display + 'a {
        struct D<'a>(&'a Fd, &'a Catalog);
        impl fmt::Display for D<'_> {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                let schema = self.1.schema(self.0.relation);
                write!(
                    f,
                    "{}: [{}] -> [{}]",
                    schema.name(),
                    attrs_to_names(schema, &self.0.lhs),
                    attrs_to_names(schema, &self.0.rhs),
                )
            }
        }
        D(self, catalog)
    }
}

/// An inclusion dependency `R[X] ⊆ S[Y]`, positions componentwise.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Ind {
    /// Referencing relation (`R`).
    pub from_relation: RelationId,
    /// Referencing attribute positions (`X`).
    pub from_attrs: Vec<usize>,
    /// Referenced relation (`S`).
    pub to_relation: RelationId,
    /// Referenced attribute positions (`Y`).
    pub to_attrs: Vec<usize>,
}

impl Ind {
    /// Creates an IND, validating shape and attribute indexes.
    pub fn new(
        catalog: &Catalog,
        from_relation: RelationId,
        from_attrs: Vec<usize>,
        to_relation: RelationId,
        to_attrs: Vec<usize>,
    ) -> Result<Self, StorageError> {
        if from_attrs.len() != to_attrs.len() || from_attrs.is_empty() {
            return Err(StorageError::MalformedConstraint {
                detail: format!(
                    "inclusion dependency sides have lengths {} and {}",
                    from_attrs.len(),
                    to_attrs.len()
                ),
            });
        }
        for (&i, rel) in from_attrs
            .iter()
            .map(|i| (i, from_relation))
            .chain(to_attrs.iter().map(|i| (i, to_relation)))
        {
            let schema = catalog.schema(rel);
            if i >= schema.arity() {
                return Err(StorageError::BadAttributeIndex {
                    relation: schema.name().to_string(),
                    index: i,
                    arity: schema.arity(),
                });
            }
        }
        Ok(Ind {
            from_relation,
            from_attrs,
            to_relation,
            to_attrs,
        })
    }

    /// Convenience: builds an IND from relation/attribute names.
    pub fn named(
        catalog: &Catalog,
        from_relation: &str,
        from_attrs: &[&str],
        to_relation: &str,
        to_attrs: &[&str],
    ) -> Result<Self, StorageError> {
        let resolve_rel = |name: &str| {
            catalog
                .resolve(name)
                .ok_or_else(|| StorageError::UnknownRelation {
                    relation: name.to_string(),
                })
        };
        let from = resolve_rel(from_relation)?;
        let to = resolve_rel(to_relation)?;
        let resolve_attrs = |rel: RelationId, names: &[&str]| -> Result<Vec<usize>, StorageError> {
            let schema = catalog.schema(rel);
            names
                .iter()
                .map(|n| {
                    schema
                        .attribute_index(n)
                        .ok_or_else(|| StorageError::MalformedConstraint {
                            detail: format!("unknown attribute '{n}' on '{}'", schema.name()),
                        })
                })
                .collect()
        };
        Ind::new(
            catalog,
            from,
            resolve_attrs(from, from_attrs)?,
            to,
            resolve_attrs(to, to_attrs)?,
        )
    }

    /// Renders the IND with names, e.g. `TxIn[newTxId] ⊆ TxOut[txId]`.
    pub fn display<'a>(&'a self, catalog: &'a Catalog) -> impl fmt::Display + 'a {
        struct D<'a>(&'a Ind, &'a Catalog);
        impl fmt::Display for D<'_> {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                let from = self.1.schema(self.0.from_relation);
                let to = self.1.schema(self.0.to_relation);
                write!(
                    f,
                    "{}[{}] ⊆ {}[{}]",
                    from.name(),
                    attrs_to_names(from, &self.0.from_attrs),
                    to.name(),
                    attrs_to_names(to, &self.0.to_attrs),
                )
            }
        }
        D(self, catalog)
    }
}

/// A set of integrity constraints `I = I_fd ∪ I_ind`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ConstraintSet {
    fds: Vec<Fd>,
    inds: Vec<Ind>,
}

impl ConstraintSet {
    /// Creates an empty constraint set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a functional dependency (or key).
    pub fn add_fd(&mut self, fd: Fd) {
        self.fds.push(fd);
    }

    /// Adds an inclusion dependency.
    pub fn add_ind(&mut self, ind: Ind) {
        self.inds.push(ind);
    }

    /// The functional dependencies (`I_fd`), keys included.
    pub fn fds(&self) -> &[Fd] {
        &self.fds
    }

    /// The inclusion dependencies (`I_ind`).
    pub fn inds(&self) -> &[Ind] {
        &self.inds
    }

    /// Whether there are no constraints at all.
    pub fn is_empty(&self) -> bool {
        self.fds.is_empty() && self.inds.is_empty()
    }

    /// The set ∆ of constraint kinds present — drives the complexity
    /// classification of Theorems 1 and 2.
    pub fn kinds(&self, catalog: &Catalog) -> Vec<ConstraintKind> {
        let mut kinds: Vec<ConstraintKind> = self.fds.iter().map(|fd| fd.kind(catalog)).collect();
        if !self.inds.is_empty() {
            kinds.push(ConstraintKind::Ind);
        }
        kinds.sort_unstable();
        kinds.dedup();
        kinds
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::RelationSchema;
    use crate::value::ValueType;

    fn bitcoin_catalog() -> Catalog {
        let mut c = Catalog::new();
        c.add(
            RelationSchema::new(
                "TxOut",
                [
                    ("txId", ValueType::Text),
                    ("ser", ValueType::Int),
                    ("pk", ValueType::Text),
                    ("amount", ValueType::Int),
                ],
            )
            .unwrap(),
        )
        .unwrap();
        c.add(
            RelationSchema::new(
                "TxIn",
                [
                    ("prevTxId", ValueType::Text),
                    ("prevSer", ValueType::Int),
                    ("pk", ValueType::Text),
                    ("amount", ValueType::Int),
                    ("newTxId", ValueType::Text),
                    ("sig", ValueType::Text),
                ],
            )
            .unwrap(),
        )
        .unwrap();
        c
    }

    #[test]
    fn key_is_recognised_as_key() {
        let c = bitcoin_catalog();
        let key = Fd::named_key(&c, "TxOut", &["txId", "ser"]).unwrap();
        assert!(key.is_key(&c));
        assert_eq!(key.kind(&c), ConstraintKind::Key);
        let fd = Fd::named(&c, "TxOut", &["txId"], &["pk"]).unwrap();
        assert!(!fd.is_key(&c));
        assert_eq!(fd.kind(&c), ConstraintKind::Fd);
    }

    #[test]
    fn fd_rejects_bad_attributes() {
        let c = bitcoin_catalog();
        let id = c.resolve("TxOut").unwrap();
        assert!(matches!(
            Fd::new(&c, id, vec![9], vec![0]),
            Err(StorageError::BadAttributeIndex { .. })
        ));
        assert!(matches!(
            Fd::new(&c, id, vec![], vec![0]),
            Err(StorageError::MalformedConstraint { .. })
        ));
        assert!(Fd::named(&c, "TxOut", &["nope"], &["pk"]).is_err());
        assert!(Fd::named(&c, "Nope", &["txId"], &["pk"]).is_err());
    }

    #[test]
    fn ind_shape_validation() {
        let c = bitcoin_catalog();
        let ind = Ind::named(&c, "TxIn", &["newTxId"], "TxOut", &["txId"]).unwrap();
        assert_eq!(ind.from_attrs, vec![4]);
        assert_eq!(ind.to_attrs, vec![0]);
        assert!(matches!(
            Ind::named(&c, "TxIn", &["newTxId", "pk"], "TxOut", &["txId"]),
            Err(StorageError::MalformedConstraint { .. })
        ));
        assert!(Ind::named(&c, "TxIn", &[], "TxOut", &[]).is_err());
    }

    #[test]
    fn kinds_classification() {
        let c = bitcoin_catalog();
        let mut cs = ConstraintSet::new();
        assert!(cs.kinds(&c).is_empty());
        cs.add_fd(Fd::named(&c, "TxOut", &["txId"], &["pk"]).unwrap());
        assert_eq!(cs.kinds(&c), vec![ConstraintKind::Fd]);
        cs.add_fd(Fd::named_key(&c, "TxOut", &["txId", "ser"]).unwrap());
        assert_eq!(cs.kinds(&c), vec![ConstraintKind::Key, ConstraintKind::Fd]);
        cs.add_ind(Ind::named(&c, "TxIn", &["newTxId"], "TxOut", &["txId"]).unwrap());
        assert_eq!(
            cs.kinds(&c),
            vec![ConstraintKind::Key, ConstraintKind::Fd, ConstraintKind::Ind]
        );
    }

    #[test]
    fn display_forms() {
        let c = bitcoin_catalog();
        let fd = Fd::named(&c, "TxOut", &["txId"], &["pk"]).unwrap();
        assert_eq!(fd.display(&c).to_string(), "TxOut: [txId] -> [pk]");
        let ind = Ind::named(&c, "TxIn", &["newTxId"], "TxOut", &["txId"]).unwrap();
        assert_eq!(ind.display(&c).to_string(), "TxIn[newTxId] ⊆ TxOut[txId]");
    }

    #[test]
    fn paper_example_1_constraints_build() {
        // The two INDs plus both keys from Example 1.
        let c = bitcoin_catalog();
        let mut cs = ConstraintSet::new();
        cs.add_fd(Fd::named_key(&c, "TxOut", &["txId", "ser"]).unwrap());
        cs.add_fd(Fd::named_key(&c, "TxIn", &["prevTxId", "prevSer"]).unwrap());
        cs.add_ind(
            Ind::named(
                &c,
                "TxIn",
                &["prevTxId", "prevSer", "pk", "amount"],
                "TxOut",
                &["txId", "ser", "pk", "amount"],
            )
            .unwrap(),
        );
        cs.add_ind(Ind::named(&c, "TxIn", &["newTxId"], "TxOut", &["txId"]).unwrap());
        assert_eq!(cs.fds().len(), 2);
        assert_eq!(cs.inds().len(), 2);
        assert_eq!(cs.kinds(&c), vec![ConstraintKind::Key, ConstraintKind::Ind]);
    }
}
