//! Ground values and their types.
//!
//! The paper's model works over relations of *ground tuples*. Three scalar
//! types cover every schema the paper uses (and Bitcoin's): integers
//! (amounts in satoshis, serial numbers), text (transaction ids, public
//! keys, signatures), and booleans (e.g. flag columns).

use std::cmp::Ordering;
use std::fmt;
use std::sync::Arc;

/// The type of a [`Value`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ValueType {
    /// 64-bit signed integer. Monetary amounts are stored in satoshis so
    /// that fractional bitcoin values (e.g. the paper's `0.5`) stay exact.
    Int,
    /// Immutable UTF-8 text (cheaply clonable).
    Text,
    /// Boolean.
    Bool,
}

impl fmt::Display for ValueType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValueType::Int => write!(f, "int"),
            ValueType::Text => write!(f, "text"),
            ValueType::Bool => write!(f, "bool"),
        }
    }
}

/// A ground (constant) value.
///
/// `Text` is an `Arc<str>`: tuples are cloned heavily while materialising
/// possible worlds, and a refcount bump beats a string copy. Equality has a
/// pointer fast path for interned text (see
/// [`Database::intern_value`](crate::instance::Database::intern_value)) —
/// two values interned by the same database compare with one pointer check
/// on the join's innermost loop instead of a string compare.
#[derive(Clone, Debug)]
pub enum Value {
    /// Integer value.
    Int(i64),
    /// Text value.
    Text(Arc<str>),
    /// Boolean value.
    Bool(bool),
}

impl Value {
    /// Convenience constructor for text values.
    pub fn text(s: impl AsRef<str>) -> Value {
        Value::Text(Arc::from(s.as_ref()))
    }

    /// The type of this value.
    pub fn value_type(&self) -> ValueType {
        match self {
            Value::Int(_) => ValueType::Int,
            Value::Text(_) => ValueType::Text,
            Value::Bool(_) => ValueType::Bool,
        }
    }

    /// The integer inside, if this is an `Int`.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The text inside, if this is a `Text`.
    pub fn as_text(&self) -> Option<&str> {
        match self {
            Value::Text(s) => Some(s),
            _ => None,
        }
    }

    /// Compares two values of the same type; `None` when the types differ.
    ///
    /// Query comparisons (`<`, `>`) over mismatched types are treated as
    /// unsatisfied rather than panicking, mirroring typed-SQL semantics where
    /// the planner would have rejected the query; the parser/validator also
    /// rejects statically-typed mismatches up front.
    pub fn partial_cmp_same_type(&self, other: &Value) -> Option<Ordering> {
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => Some(a.cmp(b)),
            (Value::Text(a), Value::Text(b)) => Some(a.as_ref().cmp(b.as_ref())),
            (Value::Bool(a), Value::Bool(b)) => Some(a.cmp(b)),
            _ => None,
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => a == b,
            (Value::Bool(a), Value::Bool(b)) => a == b,
            // Interned strings share the allocation, so the common case is
            // settled by the pointer check alone.
            (Value::Text(a), Value::Text(b)) => Arc::ptr_eq(a, b) || a == b,
            _ => false,
        }
    }
}

impl Eq for Value {}

// Content-based, so it stays consistent with the pointer-accelerated
// equality above: `Arc::ptr_eq` implies content equality implies equal
// hashes.
impl std::hash::Hash for Value {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        std::mem::discriminant(self).hash(state);
        match self {
            Value::Int(i) => i.hash(state),
            Value::Text(s) => s.hash(state),
            Value::Bool(b) => b.hash(state),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(i) => write!(f, "{i}"),
            Value::Text(s) => write!(f, "'{s}'"),
            Value::Bool(b) => write!(f, "{b}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::text(v)
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Text(Arc::from(v.as_str()))
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_roundtrip_shapes() {
        assert_eq!(Value::Int(-7).to_string(), "-7");
        assert_eq!(Value::text("abc").to_string(), "'abc'");
        assert_eq!(Value::Bool(true).to_string(), "true");
    }

    #[test]
    fn typed_comparison() {
        assert_eq!(
            Value::Int(1).partial_cmp_same_type(&Value::Int(2)),
            Some(Ordering::Less)
        );
        assert_eq!(
            Value::text("b").partial_cmp_same_type(&Value::text("a")),
            Some(Ordering::Greater)
        );
        assert_eq!(Value::Int(1).partial_cmp_same_type(&Value::text("1")), None);
    }

    #[test]
    fn value_types() {
        assert_eq!(Value::Int(0).value_type(), ValueType::Int);
        assert_eq!(Value::text("x").value_type(), ValueType::Text);
        assert_eq!(Value::Bool(false).value_type(), ValueType::Bool);
    }

    #[test]
    fn accessors() {
        assert_eq!(Value::Int(5).as_int(), Some(5));
        assert_eq!(Value::text("x").as_int(), None);
        assert_eq!(Value::text("x").as_text(), Some("x"));
        assert_eq!(Value::Int(5).as_text(), None);
    }

    #[test]
    fn conversions() {
        let v: Value = 42i64.into();
        assert_eq!(v, Value::Int(42));
        let v: Value = "hi".into();
        assert_eq!(v, Value::text("hi"));
        let v: Value = true.into();
        assert_eq!(v, Value::Bool(true));
    }

    #[test]
    fn text_equality_is_by_content() {
        assert_eq!(Value::text("abc"), Value::text(String::from("abc")));
    }
}
