//! The mask-aware relation store.
//!
//! One [`RelationStore`] holds every tuple of a relation across *all*
//! sources — the accepted state and every pending transaction. Point
//! membership, scans, and index lookups are filtered through a
//! [`WorldMask`], so a possible world is never materialised.

use crate::source::{Source, WorldMask};
use crate::tuple::Tuple;
use crate::value::Value;
use rustc_hash::FxHashMap;
use smallvec::SmallVec;

/// Identifier of a stored row within one relation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct RowId(pub u32);

impl RowId {
    /// The id as an index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A stored row: a tuple plus its provenance.
#[derive(Clone, Debug)]
pub struct Row {
    /// The tuple content.
    pub tuple: Tuple,
    /// Where it came from.
    pub source: Source,
}

/// A secondary hash index over a projection of the relation.
#[derive(Clone, Debug, Default)]
struct SecondaryIndex {
    attrs: Vec<usize>,
    map: FxHashMap<SmallVec<[Value; 4]>, SmallVec<[u32; 4]>>,
}

impl SecondaryIndex {
    fn insert(&mut self, row_id: u32, tuple: &Tuple) {
        self.map
            .entry(tuple.project(&self.attrs))
            .or_default()
            .push(row_id);
    }
}

/// All stored tuples of one relation, with source tags, a content index for
/// O(1) membership, and optional secondary indexes.
///
/// Set semantics are per source: inserting the same tuple twice *from the
/// same source* is a no-op, but the same tuple may be stored once for `R`
/// and once per pending transaction that also contains it (the paper's model
/// is a set union, so membership under a mask asks "is some copy active?").
#[derive(Clone, Debug, Default)]
pub struct RelationStore {
    rows: Vec<Row>,
    /// tuple content -> ids of all rows with that content.
    by_tuple: FxHashMap<Tuple, SmallVec<[u32; 2]>>,
    /// Ids of rows from pending sources, in insertion order — the superset
    /// of every world's delta, used to seed incremental evaluation.
    pending_rows: Vec<u32>,
    indexes: Vec<SecondaryIndex>,
}

impl RelationStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts a tuple from `source`. Returns the row id, or `None` if that
    /// exact tuple from that exact source was already present.
    ///
    /// The caller ([`Database::insert`](crate::instance::Database::insert))
    /// is responsible for typechecking against the schema.
    pub fn insert(&mut self, tuple: Tuple, source: Source) -> Option<RowId> {
        let ids = self.by_tuple.entry(tuple.clone()).or_default();
        if ids
            .iter()
            .any(|&id| self.rows[id as usize].source == source)
        {
            return None;
        }
        let id = self.rows.len() as u32;
        ids.push(id);
        for idx in &mut self.indexes {
            idx.insert(id, &tuple);
        }
        if matches!(source, Source::Pending(_)) {
            self.pending_rows.push(id);
        }
        self.rows.push(Row { tuple, source });
        Some(RowId(id))
    }

    /// Total stored rows (across all sources).
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// The row with id `id`.
    pub fn row(&self, id: RowId) -> &Row {
        &self.rows[id.index()]
    }

    /// Whether `tuple` is in the relation in the world `mask`.
    pub fn contains(&self, tuple: &Tuple, mask: &WorldMask) -> bool {
        self.by_tuple.get(tuple).is_some_and(|ids| {
            ids.iter()
                .any(|&id| mask.is_active(self.rows[id as usize].source))
        })
    }

    /// All sources that contribute `tuple` (regardless of mask).
    pub fn sources_of(&self, tuple: &Tuple) -> impl Iterator<Item = Source> + '_ {
        self.by_tuple
            .get(tuple)
            .into_iter()
            .flatten()
            .map(|&id| self.rows[id as usize].source)
    }

    /// Iterates the rows active in `mask`.
    pub fn scan<'a>(&'a self, mask: &'a WorldMask) -> impl Iterator<Item = (RowId, &'a Row)> + 'a {
        self.rows
            .iter()
            .enumerate()
            .filter(move |(_, r)| mask.is_active(r.source))
            .map(|(i, r)| (RowId(i as u32), r))
    }

    /// Iterates only the rows of the world's *delta* — pending-source rows
    /// active in `mask`. Since base rows are never pending, this is exactly
    /// `W \ R` for the world selected by `mask`, without touching the
    /// (typically much larger) base state.
    pub fn scan_delta<'a>(
        &'a self,
        mask: &'a WorldMask,
    ) -> impl Iterator<Item = (RowId, &'a Row)> + 'a {
        self.pending_rows
            .iter()
            .map(|&id| (RowId(id), &self.rows[id as usize]))
            .filter(move |(_, r)| mask.is_active(r.source))
    }

    /// Iterates every stored row with its id, regardless of mask.
    pub fn scan_all(&self) -> impl Iterator<Item = (RowId, &Row)> + '_ {
        self.rows
            .iter()
            .enumerate()
            .map(|(i, r)| (RowId(i as u32), r))
    }

    /// Ensures a secondary index on the projection `attrs` exists; returns
    /// its handle. Building is idempotent per attribute list.
    pub fn ensure_index(&mut self, attrs: &[usize]) -> usize {
        if let Some(pos) = self.indexes.iter().position(|i| i.attrs == attrs) {
            return pos;
        }
        let mut idx = SecondaryIndex {
            attrs: attrs.to_vec(),
            map: FxHashMap::default(),
        };
        for (i, row) in self.rows.iter().enumerate() {
            idx.insert(i as u32, &row.tuple);
        }
        self.indexes.push(idx);
        self.indexes.len() - 1
    }

    /// The handle of an existing index on `attrs`, if built.
    pub fn find_index(&self, attrs: &[usize]) -> Option<usize> {
        self.indexes.iter().position(|i| i.attrs == attrs)
    }

    /// Rows whose projection onto the index's attributes equals `key`,
    /// filtered by `mask`.
    pub fn lookup<'a>(
        &'a self,
        index: usize,
        key: &SmallVec<[Value; 4]>,
        mask: &'a WorldMask,
    ) -> impl Iterator<Item = (RowId, &'a Row)> + 'a {
        self.indexes[index]
            .map
            .get(key)
            .into_iter()
            .flatten()
            .map(move |&id| (RowId(id), &self.rows[id as usize]))
            .filter(move |(_, r)| mask.is_active(r.source))
    }

    /// Like [`lookup`](Self::lookup) but ignoring the mask (all sources).
    pub fn lookup_all<'a>(
        &'a self,
        index: usize,
        key: &SmallVec<[Value; 4]>,
    ) -> impl Iterator<Item = (RowId, &'a Row)> + 'a {
        self.indexes[index]
            .map
            .get(key)
            .into_iter()
            .flatten()
            .map(move |&id| (RowId(id), &self.rows[id as usize]))
    }

    /// Whether any row active in `mask` matches `key` on the index.
    pub fn index_contains(
        &self,
        index: usize,
        key: &SmallVec<[Value; 4]>,
        mask: &WorldMask,
    ) -> bool {
        self.lookup(index, key, mask).next().is_some()
    }

    /// Removes every row contributed by the pending transaction `tx` and
    /// renumbers the sources of transactions with larger ids down by one, so
    /// pending ids stay dense `0..k-1` after an eviction. Row ids are
    /// compacted too; any previously returned [`RowId`] is invalidated.
    ///
    /// Secondary indexes keep their attribute lists and are rebuilt over the
    /// surviving rows. Survivors keep their relative insertion order, so the
    /// store remains byte-identical to one built by inserting only the
    /// survivors in the first place.
    pub fn remove_pending_tx(&mut self, tx: crate::source::TxId) {
        let untouched = self.rows.iter().all(|r| match r.source {
            Source::Pending(t) => t < tx,
            Source::Base => true,
        });
        if untouched {
            // Nothing from `tx` and nothing to renumber: keep ids stable.
            return;
        }
        let old_rows = std::mem::take(&mut self.rows);
        self.by_tuple.clear();
        self.pending_rows.clear();
        for idx in &mut self.indexes {
            idx.map.clear();
        }
        for row in old_rows {
            if row.source == Source::Pending(tx) {
                continue;
            }
            let source = match row.source {
                Source::Pending(t) if t > tx => Source::Pending(crate::source::TxId(t.0 - 1)),
                s => s,
            };
            let id = self.rows.len() as u32;
            self.by_tuple.entry(row.tuple.clone()).or_default().push(id);
            for idx in &mut self.indexes {
                idx.insert(id, &row.tuple);
            }
            if matches!(source, Source::Pending(_)) {
                self.pending_rows.push(id);
            }
            self.rows.push(Row {
                tuple: row.tuple,
                source,
            });
        }
    }

    /// Number of rows from the base source.
    pub fn base_row_count(&self) -> usize {
        self.rows
            .iter()
            .filter(|r| r.source == Source::Base)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::TxId;
    use crate::tuple;

    fn mask_with(txs: &[u32]) -> WorldMask {
        WorldMask::from_txs(8, txs.iter().map(|&t| TxId(t)))
    }

    #[test]
    fn insert_dedupes_per_source() {
        let mut s = RelationStore::new();
        assert!(s.insert(tuple![1i64, "a"], Source::Base).is_some());
        assert!(s.insert(tuple![1i64, "a"], Source::Base).is_none());
        assert!(s
            .insert(tuple![1i64, "a"], Source::Pending(TxId(0)))
            .is_some());
        assert_eq!(s.row_count(), 2);
    }

    #[test]
    fn contains_respects_mask() {
        let mut s = RelationStore::new();
        s.insert(tuple![1i64], Source::Base);
        s.insert(tuple![2i64], Source::Pending(TxId(0)));
        s.insert(tuple![3i64], Source::Pending(TxId(1)));

        let base = WorldMask::base_only(8);
        assert!(s.contains(&tuple![1i64], &base));
        assert!(!s.contains(&tuple![2i64], &base));

        let w = mask_with(&[0]);
        assert!(s.contains(&tuple![2i64], &w));
        assert!(!s.contains(&tuple![3i64], &w));
        assert!(!s.contains(&tuple![4i64], &WorldMask::all(8)));
    }

    #[test]
    fn duplicate_content_across_sources_is_membership_union() {
        let mut s = RelationStore::new();
        s.insert(tuple![7i64], Source::Pending(TxId(0)));
        s.insert(tuple![7i64], Source::Pending(TxId(1)));
        assert!(!s.contains(&tuple![7i64], &WorldMask::base_only(8)));
        assert!(s.contains(&tuple![7i64], &mask_with(&[0])));
        assert!(s.contains(&tuple![7i64], &mask_with(&[1])));
        let sources: Vec<Source> = s.sources_of(&tuple![7i64]).collect();
        assert_eq!(sources.len(), 2);
    }

    #[test]
    fn scan_filters_by_mask() {
        let mut s = RelationStore::new();
        s.insert(tuple![1i64], Source::Base);
        s.insert(tuple![2i64], Source::Pending(TxId(3)));
        s.insert(tuple![3i64], Source::Pending(TxId(5)));
        let w = mask_with(&[5]);
        let seen: Vec<i64> = s
            .scan(&w)
            .map(|(_, r)| r.tuple[0].as_int().unwrap())
            .collect();
        assert_eq!(seen, vec![1, 3]);
        assert_eq!(s.scan_all().count(), 3);
    }

    #[test]
    fn scan_delta_yields_only_active_pending_rows() {
        let mut s = RelationStore::new();
        s.insert(tuple![1i64], Source::Base);
        s.insert(tuple![2i64], Source::Pending(TxId(0)));
        s.insert(tuple![3i64], Source::Pending(TxId(1)));
        s.insert(tuple![4i64], Source::Base);
        let w = mask_with(&[1]);
        let delta: Vec<i64> = s
            .scan_delta(&w)
            .map(|(_, r)| r.tuple[0].as_int().unwrap())
            .collect();
        assert_eq!(delta, vec![3]);
        // The base world has an empty delta.
        assert_eq!(s.scan_delta(&WorldMask::base_only(8)).count(), 0);
        // All pending txs active: the full pending set, never base rows.
        let all: Vec<i64> = s
            .scan_delta(&WorldMask::all(8))
            .map(|(_, r)| r.tuple[0].as_int().unwrap())
            .collect();
        assert_eq!(all, vec![2, 3]);
    }

    #[test]
    fn index_lookup() {
        let mut s = RelationStore::new();
        s.insert(tuple!["a", 1i64], Source::Base);
        s.insert(tuple!["a", 2i64], Source::Pending(TxId(0)));
        s.insert(tuple!["b", 3i64], Source::Base);
        let idx = s.ensure_index(&[0]);
        // Index built after the fact covers existing rows.
        let key: SmallVec<[Value; 4]> = [Value::text("a")].into_iter().collect();
        let base = WorldMask::base_only(8);
        assert_eq!(s.lookup(idx, &key, &base).count(), 1);
        assert_eq!(s.lookup(idx, &key, &mask_with(&[0])).count(), 2);
        assert_eq!(s.lookup_all(idx, &key).count(), 2);
        // Inserts after building keep the index fresh.
        s.insert(tuple!["a", 9i64], Source::Base);
        assert_eq!(s.lookup(idx, &key, &base).count(), 2);
        assert!(s.index_contains(idx, &key, &base));
        let missing: SmallVec<[Value; 4]> = [Value::text("zzz")].into_iter().collect();
        assert!(!s.index_contains(idx, &missing, &base));
    }

    #[test]
    fn ensure_index_is_idempotent() {
        let mut s = RelationStore::new();
        s.insert(tuple!["a", 1i64], Source::Base);
        let i1 = s.ensure_index(&[0]);
        let i2 = s.ensure_index(&[0]);
        assert_eq!(i1, i2);
        assert_eq!(s.find_index(&[0]), Some(i1));
        assert_eq!(s.find_index(&[1]), None);
        let i3 = s.ensure_index(&[0, 1]);
        assert_ne!(i1, i3);
    }

    #[test]
    fn remove_pending_tx_renumbers_and_rebuilds() {
        let mut s = RelationStore::new();
        s.insert(tuple!["a", 1i64], Source::Base);
        s.insert(tuple!["a", 2i64], Source::Pending(TxId(0)));
        s.insert(tuple!["b", 3i64], Source::Pending(TxId(1)));
        s.insert(tuple!["a", 4i64], Source::Pending(TxId(2)));
        let idx = s.ensure_index(&[0]);

        s.remove_pending_tx(TxId(1));
        assert_eq!(s.row_count(), 3);
        // Old TxId(2) is now TxId(1); TxId(0) unchanged.
        assert!(s.contains(&tuple!["a", 2i64], &mask_with(&[0])));
        assert!(s.contains(&tuple!["a", 4i64], &mask_with(&[1])));
        assert!(!s.contains(&tuple!["b", 3i64], &WorldMask::all(8)));
        // The secondary index was rebuilt over the survivors.
        let key: SmallVec<[Value; 4]> = [Value::text("a")].into_iter().collect();
        assert_eq!(s.lookup_all(idx, &key).count(), 3);
        let gone: SmallVec<[Value; 4]> = [Value::text("b")].into_iter().collect();
        assert_eq!(s.lookup_all(idx, &gone).count(), 0);
        // Delta scan sees survivors in insertion order with renumbered ids.
        let delta: Vec<i64> = s
            .scan_delta(&WorldMask::all(8))
            .map(|(_, r)| r.tuple[1].as_int().unwrap())
            .collect();
        assert_eq!(delta, vec![2, 4]);
        // Equivalent to a store built from only the survivors.
        let mut fresh = RelationStore::new();
        fresh.insert(tuple!["a", 1i64], Source::Base);
        fresh.insert(tuple!["a", 2i64], Source::Pending(TxId(0)));
        fresh.insert(tuple!["a", 4i64], Source::Pending(TxId(1)));
        for ((_, a), (_, b)) in s.scan_all().zip(fresh.scan_all()) {
            assert_eq!(a.tuple, b.tuple);
            assert_eq!(a.source, b.source);
        }
    }

    #[test]
    fn remove_pending_tx_without_rows_still_renumbers_later_txs() {
        let mut s = RelationStore::new();
        s.insert(tuple![1i64], Source::Pending(TxId(0)));
        s.insert(tuple![2i64], Source::Pending(TxId(2)));
        // TxId(1) contributed nothing to this relation, but later ids shift.
        s.remove_pending_tx(TxId(1));
        assert_eq!(s.row_count(), 2);
        assert!(s.contains(&tuple![2i64], &mask_with(&[1])));
        assert!(!s.contains(&tuple![2i64], &mask_with(&[2])));
        // Removing a tx beyond every stored id is a no-op.
        s.remove_pending_tx(TxId(9));
        assert_eq!(s.row_count(), 2);
    }

    #[test]
    fn base_row_count() {
        let mut s = RelationStore::new();
        s.insert(tuple![1i64], Source::Base);
        s.insert(tuple![2i64], Source::Base);
        s.insert(tuple![3i64], Source::Pending(TxId(0)));
        assert_eq!(s.base_row_count(), 2);
    }
}
