//! The mask-aware relation store.
//!
//! One [`RelationStore`] holds every tuple of a relation across *all*
//! sources — the accepted state and every pending transaction. Point
//! membership, scans, and index lookups are filtered through a
//! [`WorldMask`], so a possible world is never materialised.

use crate::source::{Source, WorldMask};
use crate::tuple::Tuple;
use crate::value::Value;
use rustc_hash::FxHashMap;
use smallvec::SmallVec;

/// Identifier of a stored row within one relation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct RowId(pub u32);

impl RowId {
    /// The id as an index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A stored row: a tuple plus its provenance.
#[derive(Clone, Debug)]
pub struct Row {
    /// The tuple content.
    pub tuple: Tuple,
    /// Where it came from.
    pub source: Source,
}

/// A secondary hash index over a projection of the relation.
#[derive(Clone, Debug, Default)]
struct SecondaryIndex {
    attrs: Vec<usize>,
    map: FxHashMap<SmallVec<[Value; 4]>, SmallVec<[u32; 4]>>,
}

/// Inserts `id` into a sorted id list at its ordered position (a push plus
/// a bubble, since the vendored smallvec has no `insert`).
fn sorted_insert<A: smallvec::Array<Item = u32>>(ids: &mut SmallVec<A>, id: u32) {
    ids.push(id);
    let mut i = ids.len() - 1;
    while i > 0 && ids[i - 1] > id {
        ids.swap(i, i - 1);
        i -= 1;
    }
}

impl SecondaryIndex {
    fn insert(&mut self, row_id: u32, tuple: &Tuple) {
        self.map
            .entry(tuple.project(&self.attrs))
            .or_default()
            .push(row_id);
    }
}

/// All stored tuples of one relation, with source tags, a content index for
/// O(1) membership, and optional secondary indexes.
///
/// Set semantics are per source: inserting the same tuple twice *from the
/// same source* is a no-op, but the same tuple may be stored once for `R`
/// and once per pending transaction that also contains it (the paper's model
/// is a set union, so membership under a mask asks "is some copy active?").
#[derive(Clone, Debug, Default)]
pub struct RelationStore {
    rows: Vec<Row>,
    /// tuple content -> ids of all rows with that content.
    by_tuple: FxHashMap<Tuple, SmallVec<[u32; 2]>>,
    /// Ids of rows from pending sources, in insertion order — the superset
    /// of every world's delta, used to seed incremental evaluation.
    pending_rows: Vec<u32>,
    indexes: Vec<SecondaryIndex>,
}

impl RelationStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts a tuple from `source`. Returns the row id, or `None` if that
    /// exact tuple from that exact source was already present.
    ///
    /// The caller ([`Database::insert`](crate::instance::Database::insert))
    /// is responsible for typechecking against the schema.
    pub fn insert(&mut self, tuple: Tuple, source: Source) -> Option<RowId> {
        let ids = self.by_tuple.entry(tuple.clone()).or_default();
        if ids
            .iter()
            .any(|&id| self.rows[id as usize].source == source)
        {
            return None;
        }
        let id = self.rows.len() as u32;
        ids.push(id);
        for idx in &mut self.indexes {
            idx.insert(id, &tuple);
        }
        if matches!(source, Source::Pending(_)) {
            self.pending_rows.push(id);
        }
        self.rows.push(Row { tuple, source });
        Some(RowId(id))
    }

    /// Total stored rows (across all sources).
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// The row with id `id`.
    pub fn row(&self, id: RowId) -> &Row {
        &self.rows[id.index()]
    }

    /// Whether `tuple` is in the relation in the world `mask`.
    pub fn contains(&self, tuple: &Tuple, mask: &WorldMask) -> bool {
        self.by_tuple.get(tuple).is_some_and(|ids| {
            ids.iter()
                .any(|&id| mask.is_active(self.rows[id as usize].source))
        })
    }

    /// All sources that contribute `tuple` (regardless of mask).
    pub fn sources_of(&self, tuple: &Tuple) -> impl Iterator<Item = Source> + '_ {
        self.by_tuple
            .get(tuple)
            .into_iter()
            .flatten()
            .map(|&id| self.rows[id as usize].source)
    }

    /// Iterates the rows active in `mask`.
    pub fn scan<'a>(&'a self, mask: &'a WorldMask) -> impl Iterator<Item = (RowId, &'a Row)> + 'a {
        self.rows
            .iter()
            .enumerate()
            .filter(move |(_, r)| mask.is_active(r.source))
            .map(|(i, r)| (RowId(i as u32), r))
    }

    /// Iterates only the rows of the world's *delta* — pending-source rows
    /// active in `mask`. Since base rows are never pending, this is exactly
    /// `W \ R` for the world selected by `mask`, without touching the
    /// (typically much larger) base state.
    pub fn scan_delta<'a>(
        &'a self,
        mask: &'a WorldMask,
    ) -> impl Iterator<Item = (RowId, &'a Row)> + 'a {
        self.pending_rows
            .iter()
            .map(|&id| (RowId(id), &self.rows[id as usize]))
            .filter(move |(_, r)| mask.is_active(r.source))
    }

    /// Iterates every stored row with its id, regardless of mask.
    pub fn scan_all(&self) -> impl Iterator<Item = (RowId, &Row)> + '_ {
        self.rows
            .iter()
            .enumerate()
            .map(|(i, r)| (RowId(i as u32), r))
    }

    /// Ensures a secondary index on the projection `attrs` exists; returns
    /// its handle. Building is idempotent per attribute list.
    pub fn ensure_index(&mut self, attrs: &[usize]) -> usize {
        if let Some(pos) = self.indexes.iter().position(|i| i.attrs == attrs) {
            return pos;
        }
        let mut idx = SecondaryIndex {
            attrs: attrs.to_vec(),
            map: FxHashMap::default(),
        };
        for (i, row) in self.rows.iter().enumerate() {
            idx.insert(i as u32, &row.tuple);
        }
        self.indexes.push(idx);
        self.indexes.len() - 1
    }

    /// The handle of an existing index on `attrs`, if built.
    pub fn find_index(&self, attrs: &[usize]) -> Option<usize> {
        self.indexes.iter().position(|i| i.attrs == attrs)
    }

    /// Rows whose projection onto the index's attributes equals `key`,
    /// filtered by `mask`.
    pub fn lookup<'a>(
        &'a self,
        index: usize,
        key: &SmallVec<[Value; 4]>,
        mask: &'a WorldMask,
    ) -> impl Iterator<Item = (RowId, &'a Row)> + 'a {
        self.indexes[index]
            .map
            .get(key)
            .into_iter()
            .flatten()
            .map(move |&id| (RowId(id), &self.rows[id as usize]))
            .filter(move |(_, r)| mask.is_active(r.source))
    }

    /// Like [`lookup`](Self::lookup) but ignoring the mask (all sources).
    pub fn lookup_all<'a>(
        &'a self,
        index: usize,
        key: &SmallVec<[Value; 4]>,
    ) -> impl Iterator<Item = (RowId, &'a Row)> + 'a {
        self.indexes[index]
            .map
            .get(key)
            .into_iter()
            .flatten()
            .map(move |&id| (RowId(id), &self.rows[id as usize]))
    }

    /// Whether any row active in `mask` matches `key` on the index.
    pub fn index_contains(
        &self,
        index: usize,
        key: &SmallVec<[Value; 4]>,
        mask: &WorldMask,
    ) -> bool {
        self.lookup(index, key, mask).next().is_some()
    }

    /// Removes every row contributed by the pending transaction `tx` and
    /// renumbers the sources of transactions with larger ids down by one, so
    /// pending ids stay dense `0..k-1` after an eviction. Row ids are
    /// compacted too; any previously returned [`RowId`] is invalidated.
    ///
    /// Secondary indexes keep their attribute lists and are rebuilt over the
    /// surviving rows. Survivors keep their relative insertion order, so the
    /// store remains byte-identical to one built by inserting only the
    /// survivors in the first place.
    pub fn remove_pending_tx(&mut self, tx: crate::source::TxId) {
        self.remove_pending_txs(&[tx]);
    }

    /// Number of rows from the base source.
    pub fn base_row_count(&self) -> usize {
        self.rows
            .iter()
            .filter(|r| r.source == Source::Base)
            .count()
    }

    /// Base-row tuples in scan order — the store's segment of the canonical
    /// base sequence.
    pub fn base_tuples(&self) -> impl Iterator<Item = &Tuple> + '_ {
        self.rows
            .iter()
            .filter(|r| r.source == Source::Base)
            .map(|r| &r.tuple)
    }

    /// Replaces the row sequence with `new_rows`, rewriting the content map,
    /// secondary indexes, and pending-row list *without rehashing surviving
    /// rows*: `old_to_new[old_id]` gives each surviving row's new id (`None`
    /// for dropped rows), and only the `fresh` ids — rows that did not exist
    /// before — are hashed in. This keeps batch mutations (block application,
    /// reorg undo) O(rows) in integer work rather than O(rows) in hashing.
    ///
    /// Every map's id list ends up sorted ascending, matching the insertion
    /// order a cold-built store would produce.
    fn apply_remap(&mut self, new_rows: Vec<Row>, old_to_new: &[Option<u32>], fresh: &[u32]) {
        self.rows = new_rows;
        // Surviving ids are compacted through a monotone map, so each
        // entry's list stays sorted; fresh ids are inserted at their sorted
        // position, so no global re-sort pass is needed.
        self.by_tuple.retain(|_, ids| {
            let mut w = 0;
            for i in 0..ids.len() {
                if let Some(new_id) = old_to_new[ids[i] as usize] {
                    ids[w] = new_id;
                    w += 1;
                }
            }
            while ids.len() > w {
                ids.pop();
            }
            !ids.is_empty()
        });
        for &id in fresh {
            let ids = self
                .by_tuple
                .entry(self.rows[id as usize].tuple.clone())
                .or_default();
            sorted_insert(ids, id);
        }
        for idx in &mut self.indexes {
            idx.map.retain(|_, ids| {
                let mut w = 0;
                for i in 0..ids.len() {
                    if let Some(new_id) = old_to_new[ids[i] as usize] {
                        ids[w] = new_id;
                        w += 1;
                    }
                }
                while ids.len() > w {
                ids.pop();
            }
                !ids.is_empty()
            });
        }
        // The projection borrows the row while the index is mutated, so
        // clone it out of the loop.
        for &id in fresh {
            let tuple = self.rows[id as usize].tuple.clone();
            for idx in &mut self.indexes {
                let ids = idx.map.entry(tuple.project(&idx.attrs)).or_default();
                sorted_insert(ids, id);
            }
        }
        self.pending_rows.clear();
        for (i, row) in self.rows.iter().enumerate() {
            if matches!(row.source, Source::Pending(_)) {
                self.pending_rows.push(i as u32);
            }
        }
    }

    /// The length of the leading base segment if the store is in canonical
    /// layout — every base row before every pending row, which all the
    /// monitor-driven mutators preserve. `None` if a caller interleaved
    /// sources through raw [`insert`](Self::insert) calls.
    fn base_segment(&self) -> Option<usize> {
        let b = self.rows.len() - self.pending_rows.len();
        match self.pending_rows.first() {
            None => Some(self.rows.len()),
            Some(&first) if first as usize == b => Some(b),
            _ => None,
        }
    }

    /// Removes every row contributed by any transaction in `txs` (which must
    /// be sorted ascending and duplicate-free) and renumbers surviving
    /// pending sources down so ids stay dense — the batch counterpart of
    /// [`remove_pending_tx`](Self::remove_pending_tx), one O(rows) pass with
    /// no rehashing regardless of how many transactions leave.
    pub fn remove_pending_txs(&mut self, txs: &[crate::source::TxId]) {
        debug_assert!(txs.windows(2).all(|w| w[0] < w[1]), "txs must be sorted");
        if txs.is_empty() {
            return;
        }
        let affected = self.rows.iter().any(|r| match r.source {
            Source::Pending(t) => t >= txs[0],
            Source::Base => false,
        });
        if !affected {
            return;
        }

        if let Some(b) = self.base_segment() {
            // Fast path: every affected row lives in the pending tail, so
            // the base prefix keeps its ids and only rows `b..` compact in
            // place. Entries that need fixing are found through the tail's
            // own tuples (first occurrence per tuple / per index key), so
            // the whole operation is O(pending) — independent of how large
            // the base segment has grown.
            let n = self.rows.len();
            let bu = b as u32;
            let mut tail_map: Vec<Option<u32>> = vec![None; n - b];
            let mut w = bu;
            for r in b..n {
                if let Source::Pending(t) = self.rows[r].source {
                    if txs.binary_search(&t).is_err() {
                        tail_map[r - b] = Some(w);
                        w += 1;
                    }
                }
            }
            let compact = |ids: &mut SmallVec<[u32; 2]>| {
                let mut wr = 0;
                for i in 0..ids.len() {
                    let id = ids[i];
                    let new_id = if id < bu {
                        Some(id)
                    } else {
                        tail_map[(id - bu) as usize]
                    };
                    if let Some(new_id) = new_id {
                        ids[wr] = new_id;
                        wr += 1;
                    }
                }
                while ids.len() > wr {
                    ids.pop();
                }
                !ids.is_empty()
            };
            {
                let rows = &self.rows;
                let mut seen: rustc_hash::FxHashSet<&Tuple> = rustc_hash::FxHashSet::default();
                let mut dead: Vec<Tuple> = Vec::new();
                for row in &rows[b..n] {
                    let tuple = &row.tuple;
                    if !seen.insert(tuple) {
                        continue;
                    }
                    if let Some(ids) = self.by_tuple.get_mut(tuple) {
                        if !compact(ids) {
                            dead.push(tuple.clone());
                        }
                    }
                }
                for t in dead {
                    self.by_tuple.remove(&t);
                }
                for idx in &mut self.indexes {
                    let mut seen: rustc_hash::FxHashSet<SmallVec<[Value; 4]>> =
                        rustc_hash::FxHashSet::default();
                    for row in &rows[b..n] {
                        let key = row.tuple.project(&idx.attrs);
                        if seen.contains(&key) {
                            continue;
                        }
                        let mut emptied = false;
                        if let Some(ids) = idx.map.get_mut(&key) {
                            let mut wr = 0;
                            for i in 0..ids.len() {
                                let id = ids[i];
                                let new_id = if id < bu {
                                    Some(id)
                                } else {
                                    tail_map[(id - bu) as usize]
                                };
                                if let Some(new_id) = new_id {
                                    ids[wr] = new_id;
                                    wr += 1;
                                }
                            }
                            while ids.len() > wr {
                                ids.pop();
                            }
                            emptied = ids.is_empty();
                        }
                        if emptied {
                            idx.map.remove(&key);
                        }
                        seen.insert(key);
                    }
                }
            }
            let mut wrow = b;
            for r in b..n {
                if tail_map[r - b].is_some() {
                    let Source::Pending(t) = self.rows[r].source else {
                        unreachable!("segmented tail holds only pending rows");
                    };
                    let below = txs.binary_search(&t).unwrap_err();
                    self.rows.swap(wrow, r);
                    self.rows[wrow].source =
                        Source::Pending(crate::source::TxId(t.0 - below as u32));
                    wrow += 1;
                }
            }
            self.rows.truncate(wrow);
            self.pending_rows.clear();
            self.pending_rows.extend(bu..wrow as u32);
            return;
        }

        let old_rows = std::mem::take(&mut self.rows);
        let mut old_to_new = vec![None; old_rows.len()];
        let mut new_rows = Vec::with_capacity(old_rows.len());
        for (old_id, row) in old_rows.into_iter().enumerate() {
            let source = match row.source {
                Source::Pending(t) => match txs.binary_search(&t) {
                    Ok(_) => continue,
                    Err(below) => Source::Pending(crate::source::TxId(t.0 - below as u32)),
                },
                Source::Base => Source::Base,
            };
            old_to_new[old_id] = Some(new_rows.len() as u32);
            new_rows.push(Row {
                tuple: row.tuple,
                source,
            });
        }
        self.apply_remap(new_rows, &old_to_new, &[]);
    }

    /// Appends `tuples` as base rows at the end of the base segment (before
    /// any pending row), preserving canonical layout: base rows first in
    /// insertion order, then pending rows. Tuples that already have a base
    /// copy are skipped (set semantics). Returns the tuples actually added,
    /// in order — the inverse delta a caller needs to undo the append.
    pub fn append_base_rows(&mut self, tuples: &[Tuple]) -> Vec<Tuple> {
        let mut added: Vec<Tuple> = Vec::new();
        let mut fresh_set: rustc_hash::FxHashSet<&Tuple> = rustc_hash::FxHashSet::default();
        for t in tuples {
            let dup = self
                .by_tuple
                .get(t)
                .is_some_and(|ids| ids.iter().any(|&id| self.rows[id as usize].source == Source::Base))
                || !fresh_set.insert(t);
            if !dup {
                added.push(t.clone());
            }
        }
        if added.is_empty() {
            return added;
        }
        let k = added.len() as u32;

        if let Some(b) = self.base_segment() {
            // Fast path: the store is already segmented, so the append
            // inserts `k` rows at the boundary and every pending id shifts
            // up by exactly `k`. The entries holding pending ids are found
            // through the tail's own tuples (first occurrence per tuple /
            // per index key), so the whole operation is O(pending + block)
            // — independent of how large the base segment has grown.
            let bu = b as u32;
            {
                let rows = &self.rows;
                let mut seen: rustc_hash::FxHashSet<&Tuple> = rustc_hash::FxHashSet::default();
                for row in &rows[b..] {
                    let tuple = &row.tuple;
                    if !seen.insert(tuple) {
                        continue;
                    }
                    if let Some(ids) = self.by_tuple.get_mut(tuple) {
                        for id in ids.iter_mut() {
                            if *id >= bu {
                                *id += k;
                            }
                        }
                    }
                }
                for idx in &mut self.indexes {
                    let mut seen: rustc_hash::FxHashSet<SmallVec<[Value; 4]>> =
                        rustc_hash::FxHashSet::default();
                    for row in &rows[b..] {
                        let key = row.tuple.project(&idx.attrs);
                        if seen.contains(&key) {
                            continue;
                        }
                        if let Some(ids) = idx.map.get_mut(&key) {
                            for id in ids.iter_mut() {
                                if *id >= bu {
                                    *id += k;
                                }
                            }
                        }
                        seen.insert(key);
                    }
                }
            }
            self.rows.splice(
                b..b,
                added.iter().map(|t| Row {
                    tuple: t.clone(),
                    source: Source::Base,
                }),
            );
            for (i, t) in added.iter().enumerate() {
                let id = bu + i as u32;
                let ids = self.by_tuple.entry(t.clone()).or_default();
                sorted_insert(ids, id);
                for idx in &mut self.indexes {
                    let ids = idx.map.entry(t.project(&idx.attrs)).or_default();
                    sorted_insert(ids, id);
                }
            }
            for p in &mut self.pending_rows {
                *p += k;
            }
            return added;
        }

        let old_rows = std::mem::take(&mut self.rows);
        let mut old_to_new = vec![None; old_rows.len()];
        let mut base_rows: Vec<(u32, Row)> = Vec::new();
        let mut pending_rows: Vec<(u32, Row)> = Vec::new();
        for (old_id, row) in old_rows.into_iter().enumerate() {
            match row.source {
                Source::Base => base_rows.push((old_id as u32, row)),
                Source::Pending(_) => pending_rows.push((old_id as u32, row)),
            }
        }
        let b = base_rows.len() as u32;
        let mut new_rows = Vec::with_capacity(base_rows.len() + added.len() + pending_rows.len());
        for (old_id, row) in base_rows {
            old_to_new[old_id as usize] = Some(new_rows.len() as u32);
            new_rows.push(row);
        }
        let fresh: Vec<u32> = (b..b + k).collect();
        for t in &added {
            new_rows.push(Row {
                tuple: t.clone(),
                source: Source::Base,
            });
        }
        for (old_id, row) in pending_rows {
            old_to_new[old_id as usize] = Some(new_rows.len() as u32);
            new_rows.push(row);
        }
        self.apply_remap(new_rows, &old_to_new, &fresh);
        added
    }

    /// Removes the base rows whose tuples appear in `tuples` (each base
    /// tuple is stored at most once, so content identifies the row).
    /// Surviving rows keep their relative order. Returns how many rows
    /// were actually removed.
    pub fn remove_base_rows(&mut self, tuples: &[Tuple]) -> usize {
        let mut drop_ids: Vec<u32> = Vec::new();
        for t in tuples {
            if let Some(ids) = self.by_tuple.get(t) {
                for &id in ids.iter() {
                    if self.rows[id as usize].source == Source::Base {
                        drop_ids.push(id);
                    }
                }
            }
        }
        if drop_ids.is_empty() {
            return 0;
        }
        drop_ids.sort_unstable();
        drop_ids.dedup();
        let removed = drop_ids.len();
        let old_rows = std::mem::take(&mut self.rows);
        let mut old_to_new = vec![None; old_rows.len()];
        let mut new_rows = Vec::with_capacity(old_rows.len() - removed);
        for (old_id, row) in old_rows.into_iter().enumerate() {
            if drop_ids.binary_search(&(old_id as u32)).is_ok() {
                continue;
            }
            old_to_new[old_id] = Some(new_rows.len() as u32);
            new_rows.push(row);
        }
        self.apply_remap(new_rows, &old_to_new, &[]);
        removed
    }

    /// Inserts a new pending transaction *at* id `at`: existing sources
    /// `Pending(t >= at)` shift up by one, and `tuples` (deduplicated — set
    /// semantics per source) are placed where a canonically built store
    /// would put them: after every row of transactions below `at`, before
    /// every row of transactions at or above it.
    pub fn insert_pending_rows_at(&mut self, at: crate::source::TxId, tuples: &[Tuple]) {
        let mut dedup: Vec<Tuple> = Vec::new();
        for t in tuples {
            if !dedup.contains(t) {
                dedup.push(t.clone());
            }
        }
        let needs_shift = self.rows.iter().any(|r| match r.source {
            Source::Pending(t) => t >= at,
            Source::Base => false,
        });
        if dedup.is_empty() && !needs_shift {
            return;
        }
        let pos = self
            .rows
            .iter()
            .position(|r| matches!(r.source, Source::Pending(t) if t >= at))
            .unwrap_or(self.rows.len());
        let k = dedup.len();
        let old_rows = std::mem::take(&mut self.rows);
        let mut old_to_new = vec![None; old_rows.len()];
        let mut new_rows = Vec::with_capacity(old_rows.len() + k);
        let mut fresh = Vec::with_capacity(k);
        for (old_id, row) in old_rows.into_iter().enumerate() {
            if old_id == pos {
                for t in dedup.drain(..) {
                    fresh.push(new_rows.len() as u32);
                    new_rows.push(Row {
                        tuple: t,
                        source: Source::Pending(at),
                    });
                }
            }
            let source = match row.source {
                Source::Pending(t) if t >= at => Source::Pending(crate::source::TxId(t.0 + 1)),
                s => s,
            };
            old_to_new[old_id] = Some(new_rows.len() as u32);
            new_rows.push(Row {
                tuple: row.tuple,
                source,
            });
        }
        for t in dedup.drain(..) {
            // `pos` was at or past the end: the new rows go last.
            fresh.push(new_rows.len() as u32);
            new_rows.push(Row {
                tuple: t,
                source: Source::Pending(at),
            });
        }
        self.apply_remap(new_rows, &old_to_new, &fresh);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::TxId;
    use crate::tuple;

    fn mask_with(txs: &[u32]) -> WorldMask {
        WorldMask::from_txs(8, txs.iter().map(|&t| TxId(t)))
    }

    #[test]
    fn insert_dedupes_per_source() {
        let mut s = RelationStore::new();
        assert!(s.insert(tuple![1i64, "a"], Source::Base).is_some());
        assert!(s.insert(tuple![1i64, "a"], Source::Base).is_none());
        assert!(s
            .insert(tuple![1i64, "a"], Source::Pending(TxId(0)))
            .is_some());
        assert_eq!(s.row_count(), 2);
    }

    #[test]
    fn contains_respects_mask() {
        let mut s = RelationStore::new();
        s.insert(tuple![1i64], Source::Base);
        s.insert(tuple![2i64], Source::Pending(TxId(0)));
        s.insert(tuple![3i64], Source::Pending(TxId(1)));

        let base = WorldMask::base_only(8);
        assert!(s.contains(&tuple![1i64], &base));
        assert!(!s.contains(&tuple![2i64], &base));

        let w = mask_with(&[0]);
        assert!(s.contains(&tuple![2i64], &w));
        assert!(!s.contains(&tuple![3i64], &w));
        assert!(!s.contains(&tuple![4i64], &WorldMask::all(8)));
    }

    #[test]
    fn duplicate_content_across_sources_is_membership_union() {
        let mut s = RelationStore::new();
        s.insert(tuple![7i64], Source::Pending(TxId(0)));
        s.insert(tuple![7i64], Source::Pending(TxId(1)));
        assert!(!s.contains(&tuple![7i64], &WorldMask::base_only(8)));
        assert!(s.contains(&tuple![7i64], &mask_with(&[0])));
        assert!(s.contains(&tuple![7i64], &mask_with(&[1])));
        let sources: Vec<Source> = s.sources_of(&tuple![7i64]).collect();
        assert_eq!(sources.len(), 2);
    }

    #[test]
    fn scan_filters_by_mask() {
        let mut s = RelationStore::new();
        s.insert(tuple![1i64], Source::Base);
        s.insert(tuple![2i64], Source::Pending(TxId(3)));
        s.insert(tuple![3i64], Source::Pending(TxId(5)));
        let w = mask_with(&[5]);
        let seen: Vec<i64> = s
            .scan(&w)
            .map(|(_, r)| r.tuple[0].as_int().unwrap())
            .collect();
        assert_eq!(seen, vec![1, 3]);
        assert_eq!(s.scan_all().count(), 3);
    }

    #[test]
    fn scan_delta_yields_only_active_pending_rows() {
        let mut s = RelationStore::new();
        s.insert(tuple![1i64], Source::Base);
        s.insert(tuple![2i64], Source::Pending(TxId(0)));
        s.insert(tuple![3i64], Source::Pending(TxId(1)));
        s.insert(tuple![4i64], Source::Base);
        let w = mask_with(&[1]);
        let delta: Vec<i64> = s
            .scan_delta(&w)
            .map(|(_, r)| r.tuple[0].as_int().unwrap())
            .collect();
        assert_eq!(delta, vec![3]);
        // The base world has an empty delta.
        assert_eq!(s.scan_delta(&WorldMask::base_only(8)).count(), 0);
        // All pending txs active: the full pending set, never base rows.
        let all: Vec<i64> = s
            .scan_delta(&WorldMask::all(8))
            .map(|(_, r)| r.tuple[0].as_int().unwrap())
            .collect();
        assert_eq!(all, vec![2, 3]);
    }

    #[test]
    fn index_lookup() {
        let mut s = RelationStore::new();
        s.insert(tuple!["a", 1i64], Source::Base);
        s.insert(tuple!["a", 2i64], Source::Pending(TxId(0)));
        s.insert(tuple!["b", 3i64], Source::Base);
        let idx = s.ensure_index(&[0]);
        // Index built after the fact covers existing rows.
        let key: SmallVec<[Value; 4]> = [Value::text("a")].into_iter().collect();
        let base = WorldMask::base_only(8);
        assert_eq!(s.lookup(idx, &key, &base).count(), 1);
        assert_eq!(s.lookup(idx, &key, &mask_with(&[0])).count(), 2);
        assert_eq!(s.lookup_all(idx, &key).count(), 2);
        // Inserts after building keep the index fresh.
        s.insert(tuple!["a", 9i64], Source::Base);
        assert_eq!(s.lookup(idx, &key, &base).count(), 2);
        assert!(s.index_contains(idx, &key, &base));
        let missing: SmallVec<[Value; 4]> = [Value::text("zzz")].into_iter().collect();
        assert!(!s.index_contains(idx, &missing, &base));
    }

    #[test]
    fn ensure_index_is_idempotent() {
        let mut s = RelationStore::new();
        s.insert(tuple!["a", 1i64], Source::Base);
        let i1 = s.ensure_index(&[0]);
        let i2 = s.ensure_index(&[0]);
        assert_eq!(i1, i2);
        assert_eq!(s.find_index(&[0]), Some(i1));
        assert_eq!(s.find_index(&[1]), None);
        let i3 = s.ensure_index(&[0, 1]);
        assert_ne!(i1, i3);
    }

    #[test]
    fn remove_pending_tx_renumbers_and_rebuilds() {
        let mut s = RelationStore::new();
        s.insert(tuple!["a", 1i64], Source::Base);
        s.insert(tuple!["a", 2i64], Source::Pending(TxId(0)));
        s.insert(tuple!["b", 3i64], Source::Pending(TxId(1)));
        s.insert(tuple!["a", 4i64], Source::Pending(TxId(2)));
        let idx = s.ensure_index(&[0]);

        s.remove_pending_tx(TxId(1));
        assert_eq!(s.row_count(), 3);
        // Old TxId(2) is now TxId(1); TxId(0) unchanged.
        assert!(s.contains(&tuple!["a", 2i64], &mask_with(&[0])));
        assert!(s.contains(&tuple!["a", 4i64], &mask_with(&[1])));
        assert!(!s.contains(&tuple!["b", 3i64], &WorldMask::all(8)));
        // The secondary index was rebuilt over the survivors.
        let key: SmallVec<[Value; 4]> = [Value::text("a")].into_iter().collect();
        assert_eq!(s.lookup_all(idx, &key).count(), 3);
        let gone: SmallVec<[Value; 4]> = [Value::text("b")].into_iter().collect();
        assert_eq!(s.lookup_all(idx, &gone).count(), 0);
        // Delta scan sees survivors in insertion order with renumbered ids.
        let delta: Vec<i64> = s
            .scan_delta(&WorldMask::all(8))
            .map(|(_, r)| r.tuple[1].as_int().unwrap())
            .collect();
        assert_eq!(delta, vec![2, 4]);
        // Equivalent to a store built from only the survivors.
        let mut fresh = RelationStore::new();
        fresh.insert(tuple!["a", 1i64], Source::Base);
        fresh.insert(tuple!["a", 2i64], Source::Pending(TxId(0)));
        fresh.insert(tuple!["a", 4i64], Source::Pending(TxId(1)));
        for ((_, a), (_, b)) in s.scan_all().zip(fresh.scan_all()) {
            assert_eq!(a.tuple, b.tuple);
            assert_eq!(a.source, b.source);
        }
    }

    #[test]
    fn remove_pending_tx_without_rows_still_renumbers_later_txs() {
        let mut s = RelationStore::new();
        s.insert(tuple![1i64], Source::Pending(TxId(0)));
        s.insert(tuple![2i64], Source::Pending(TxId(2)));
        // TxId(1) contributed nothing to this relation, but later ids shift.
        s.remove_pending_tx(TxId(1));
        assert_eq!(s.row_count(), 2);
        assert!(s.contains(&tuple![2i64], &mask_with(&[1])));
        assert!(!s.contains(&tuple![2i64], &mask_with(&[2])));
        // Removing a tx beyond every stored id is a no-op.
        s.remove_pending_tx(TxId(9));
        assert_eq!(s.row_count(), 2);
    }

    /// Exact (tuple, source) scan-sequence equality — the identity the
    /// monitor's incremental-vs-cold comparisons rely on.
    fn assert_same_rows(a: &RelationStore, b: &RelationStore) {
        assert_eq!(a.row_count(), b.row_count());
        for ((_, x), (_, y)) in a.scan_all().zip(b.scan_all()) {
            assert_eq!(x.tuple, y.tuple);
            assert_eq!(x.source, y.source);
        }
    }

    #[test]
    fn append_base_rows_lands_before_pending_and_dedupes() {
        let mut s = RelationStore::new();
        s.insert(tuple![1i64], Source::Base);
        s.insert(tuple![2i64], Source::Pending(TxId(0)));
        s.insert(tuple![3i64], Source::Pending(TxId(1)));
        let idx = s.ensure_index(&[0]);
        let added = s.append_base_rows(&[tuple![4i64], tuple![1i64], tuple![2i64], tuple![4i64]]);
        // 1 already base; 4 repeated in the batch; 2 only exists as pending.
        assert_eq!(added, vec![tuple![4i64], tuple![2i64]]);

        let mut cold = RelationStore::new();
        cold.insert(tuple![1i64], Source::Base);
        cold.insert(tuple![4i64], Source::Base);
        cold.insert(tuple![2i64], Source::Base);
        cold.insert(tuple![2i64], Source::Pending(TxId(0)));
        cold.insert(tuple![3i64], Source::Pending(TxId(1)));
        assert_same_rows(&s, &cold);
        // The secondary index saw the new rows.
        let key: SmallVec<[Value; 4]> = [Value::Int(4)].into_iter().collect();
        assert!(s.index_contains(idx, &key, &WorldMask::base_only(8)));
        // Pending-row bookkeeping survived the remap.
        assert_eq!(s.scan_delta(&WorldMask::all(8)).count(), 2);
    }

    #[test]
    fn remove_base_rows_by_content_keeps_pending_copies() {
        let mut s = RelationStore::new();
        s.insert(tuple![1i64], Source::Base);
        s.insert(tuple![2i64], Source::Base);
        s.insert(tuple![2i64], Source::Pending(TxId(0)));
        let idx = s.ensure_index(&[0]);
        assert_eq!(s.remove_base_rows(&[tuple![2i64], tuple![9i64]]), 1);
        assert_eq!(s.base_row_count(), 1);
        // The pending copy of 2 survives; the base copy is gone.
        assert!(!s.contains(&tuple![2i64], &WorldMask::base_only(8)));
        assert!(s.contains(&tuple![2i64], &mask_with(&[0])));
        let key: SmallVec<[Value; 4]> = [Value::Int(2)].into_iter().collect();
        assert_eq!(s.lookup_all(idx, &key).count(), 1);
    }

    #[test]
    fn remove_pending_txs_batch_matches_sequential() {
        let build = || {
            let mut s = RelationStore::new();
            s.insert(tuple![0i64], Source::Base);
            for t in 0..5u32 {
                s.insert(tuple![10 + t as i64], Source::Pending(TxId(t)));
                s.insert(tuple![20 + t as i64], Source::Pending(TxId(t)));
            }
            s.ensure_index(&[0]);
            s
        };
        let mut batch = build();
        batch.remove_pending_txs(&[TxId(1), TxId(3)]);
        let mut seq = build();
        // Descending order keeps earlier ids stable, as the monitor does.
        seq.remove_pending_tx(TxId(3));
        seq.remove_pending_tx(TxId(1));
        assert_same_rows(&batch, &seq);
        assert_eq!(
            batch.scan_delta(&WorldMask::all(8)).count(),
            seq.scan_delta(&WorldMask::all(8)).count()
        );
        // No-ops: empty list, and ids beyond every stored row.
        let before = batch.row_count();
        batch.remove_pending_txs(&[]);
        batch.remove_pending_txs(&[TxId(7)]);
        assert_eq!(batch.row_count(), before);
    }

    #[test]
    fn insert_pending_rows_at_matches_cold_build() {
        let mut s = RelationStore::new();
        s.insert(tuple![1i64], Source::Base);
        s.insert(tuple![10i64], Source::Pending(TxId(0)));
        s.insert(tuple![11i64], Source::Pending(TxId(1)));
        let idx = s.ensure_index(&[0]);
        s.insert_pending_rows_at(TxId(1), &[tuple![99i64], tuple![99i64], tuple![98i64]]);

        let mut cold = RelationStore::new();
        cold.insert(tuple![1i64], Source::Base);
        cold.insert(tuple![10i64], Source::Pending(TxId(0)));
        cold.insert(tuple![99i64], Source::Pending(TxId(1)));
        cold.insert(tuple![98i64], Source::Pending(TxId(1)));
        cold.insert(tuple![11i64], Source::Pending(TxId(2)));
        assert_same_rows(&s, &cold);
        let key: SmallVec<[Value; 4]> = [Value::Int(99)].into_iter().collect();
        assert!(s.index_contains(idx, &key, &mask_with(&[1])));
        assert!(!s.index_contains(idx, &key, &mask_with(&[2])));

        // Appending at the tail (no shift) also matches a plain insert.
        let mut tail = RelationStore::new();
        tail.insert(tuple![5i64], Source::Pending(TxId(0)));
        tail.insert_pending_rows_at(TxId(1), &[tuple![6i64]]);
        let mut cold_tail = RelationStore::new();
        cold_tail.insert(tuple![5i64], Source::Pending(TxId(0)));
        cold_tail.insert(tuple![6i64], Source::Pending(TxId(1)));
        assert_same_rows(&tail, &cold_tail);
    }

    #[test]
    fn base_row_count() {
        let mut s = RelationStore::new();
        s.insert(tuple![1i64], Source::Base);
        s.insert(tuple![2i64], Source::Base);
        s.insert(tuple![3i64], Source::Pending(TxId(0)));
        assert_eq!(s.base_row_count(), 2);
    }
}
