//! Thin entry point for the `bcdb` CLI; all logic lives in the library so
//! it is unit-testable.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match bcdb_cli::parse_args(&args).and_then(bcdb_cli::run) {
        Ok(out) => {
            print!("{}", out.text);
            if out.exit_code != 0 {
                std::process::exit(out.exit_code);
            }
        }
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("{}", bcdb_cli::USAGE);
            std::process::exit(2);
        }
    }
}
