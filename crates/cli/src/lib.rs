#![warn(missing_docs)]

//! `bcdb` — a command-line interface over the blockchain-database library.
//!
//! ```text
//! bcdb stats   [--dataset d200] [--seed 42]
//! bcdb check   [--dataset small] [--seed 42] [--algorithm auto] [--minimize] '<constraint>'
//! bcdb explain [--dataset small] '<constraint>'
//! bcdb worlds  [--dataset small] [--seed 42] [--limit 50]
//! ```
//!
//! Constraints use the paper's syntax over the `TxOut`/`TxIn` schema, e.g.
//! `q() <- TxOut(t, s, 'pkabc', a)` or `[q(sum(a)) <- TxOut(t, s, 'pkabc', a)] > 100`.

use bcdb_bench::datasets::{load_dataset, load_export, LoadedDataset};
use bcdb_chain::Dataset;
use bcdb_core::{
    estimate_violation_risk, for_each_possible_world, Algorithm, BlockchainDb, BudgetSpec,
    ExhaustionReason, PerTxAcceptance, Precomputed, PreparedConstraint, RetryPolicy, Solver,
    UniformAcceptance, Verdict,
};
use bcdb_storage::{encode_snapshot, DiskBackend, StorageBackend};
use bcdb_query::{
    atom_graph_complete, is_connected, monotonicity, parse_denial_constraint, DenialConstraint,
};
use std::fmt::Write as _;
use std::ops::ControlFlow;
use std::path::PathBuf;

/// A parsed command line.
#[derive(Clone, Debug, PartialEq)]
pub enum Command {
    /// `stats`: dataset sizes.
    Stats {
        /// Which dataset preset.
        dataset: Dataset,
        /// Generator seed.
        seed: u64,
    },
    /// `check`: run DCSat on a constraint.
    Check {
        /// Which dataset preset.
        dataset: Dataset,
        /// Generator seed.
        seed: u64,
        /// Load from a dumped export file instead of generating.
        file: Option<PathBuf>,
        /// Which algorithm.
        algorithm: Algorithm,
        /// Minimize the witness on violation.
        minimize: bool,
        /// Resource limits (`--timeout-ms`, `--max-cliques`, `--max-worlds`,
        /// `--max-tuples`); any limit switches to the governed solver.
        budget: BudgetSpec,
        /// Retry schedule for *transient* `unknown` verdicts — deadline
        /// exhaustion, cancellation, worker panics (`--retries`,
        /// `--retry-backoff-ms`). Deterministic limits are never retried.
        retry: RetryPolicy,
        /// Record per-phase telemetry during the check and print the
        /// phase table plus a JSON snapshot (`--telemetry`).
        telemetry: bool,
        /// Storage backend: `None` checks in memory; `Some(dir)` persists
        /// the loaded database as an epoch snapshot under `dir`, reloads
        /// it, verifies the round trip byte-for-byte, and checks the
        /// reloaded state (`--storage {memory,disk:<dir>}`).
        storage: Option<PathBuf>,
        /// The constraint text.
        constraint: String,
    },
    /// `explain`: classify a constraint.
    Explain {
        /// Which dataset preset (for the schema + tractability context).
        dataset: Dataset,
        /// Generator seed.
        seed: u64,
        /// The constraint text.
        constraint: String,
    },
    /// `risk`: Monte Carlo violation-probability estimate.
    Risk {
        /// Which dataset preset.
        dataset: Dataset,
        /// Generator seed.
        seed: u64,
        /// Monte Carlo samples.
        samples: usize,
        /// Uniform acceptance probability; `None` uses the fee-rate model.
        prob: Option<f64>,
        /// The constraint text.
        constraint: String,
    },
    /// `worlds`: enumerate possible worlds.
    Worlds {
        /// Which dataset preset.
        dataset: Dataset,
        /// Generator seed.
        seed: u64,
        /// Maximum worlds to print.
        limit: usize,
    },
    /// `dump`: serialize a generated dataset to a file.
    Dump {
        /// Which dataset preset.
        dataset: Dataset,
        /// Generator seed.
        seed: u64,
        /// Output path.
        out: PathBuf,
    },
    /// `serve`: run the multi-tenant solver service over TCP.
    Serve {
        /// Listen address, e.g. `127.0.0.1:7450`.
        addr: String,
        /// Durable store directory. Recovers from it when it already
        /// holds a journal; otherwise starts fresh.
        store: PathBuf,
    },
    /// `help`.
    Help,
}

/// A CLI-level error (bad flags, bad constraint, …).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CliError(pub String);

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for CliError {}

fn parse_dataset(s: &str) -> Result<Dataset, CliError> {
    match s.to_ascii_lowercase().as_str() {
        "d100" => Ok(Dataset::D100),
        "d200" => Ok(Dataset::D200),
        "d300" => Ok(Dataset::D300),
        "small" => Ok(Dataset::Small),
        other => Err(CliError(format!(
            "unknown dataset '{other}' (choose d100, d200, d300, small, or a dumped file path)"
        ))),
    }
}

/// Loads a database from a dumped export file (the `--dataset <path>` form).
pub fn load_file(path: &std::path::Path) -> Result<bcdb_core::BlockchainDb, CliError> {
    let e = bcdb_chain::read_export_file(path).map_err(|err| CliError(err.to_string()))?;
    Ok(load_export(&e))
}

fn parse_storage(s: &str) -> Result<Option<PathBuf>, CliError> {
    if s.eq_ignore_ascii_case("memory") {
        return Ok(None);
    }
    match s.strip_prefix("disk:") {
        Some(dir) if !dir.trim().is_empty() => Ok(Some(PathBuf::from(dir))),
        _ => Err(CliError(format!(
            "unknown storage '{s}' (choose memory or disk:<dir>)"
        ))),
    }
}

fn parse_algorithm(s: &str) -> Result<Algorithm, CliError> {
    match s.to_ascii_lowercase().as_str() {
        "auto" => Ok(Algorithm::Auto),
        "naive" => Ok(Algorithm::Naive),
        "opt" => Ok(Algorithm::Opt),
        "tractable" => Ok(Algorithm::Tractable),
        "oracle" => Ok(Algorithm::Oracle),
        other => Err(CliError(format!(
            "unknown algorithm '{other}' (choose auto, naive, opt, tractable, oracle)"
        ))),
    }
}

/// Parses the argument vector (without the program name).
pub fn parse_args(args: &[String]) -> Result<Command, CliError> {
    let Some((sub, rest)) = args.split_first() else {
        return Ok(Command::Help);
    };
    let mut dataset = Dataset::Small;
    let mut seed = 42u64;
    let mut algorithm = Algorithm::Auto;
    let mut minimize = false;
    let mut limit = 50usize;
    let mut samples = 1000usize;
    let mut prob: Option<f64> = None;
    let mut out_path: Option<PathBuf> = None;
    let mut file: Option<PathBuf> = None;
    let mut budget = BudgetSpec::UNLIMITED;
    let mut retries = 0u32;
    let mut retry_backoff = std::time::Duration::from_millis(50);
    let mut telemetry = false;
    let mut storage: Option<PathBuf> = None;
    let mut addr = "127.0.0.1:7450".to_string();
    let mut store: Option<PathBuf> = None;
    let mut positional: Vec<String> = Vec::new();
    let mut it = rest.iter();
    while let Some(a) = it.next() {
        let mut flag_value = |name: &str| -> Result<String, CliError> {
            it.next()
                .cloned()
                .ok_or_else(|| CliError(format!("{name} requires a value")))
        };
        match a.as_str() {
            "--dataset" => dataset = parse_dataset(&flag_value("--dataset")?)?,
            "--seed" => {
                seed = flag_value("--seed")?
                    .parse()
                    .map_err(|_| CliError("--seed requires an integer".into()))?;
            }
            "--algorithm" => algorithm = parse_algorithm(&flag_value("--algorithm")?)?,
            "--minimize" => minimize = true,
            "--telemetry" => telemetry = true,
            "--storage" => storage = parse_storage(&flag_value("--storage")?)?,
            "--out" => out_path = Some(PathBuf::from(flag_value("--out")?)),
            "--addr" => addr = flag_value("--addr")?,
            "--store" => store = Some(PathBuf::from(flag_value("--store")?)),
            "--file" => file = Some(PathBuf::from(flag_value("--file")?)),
            "--limit" => {
                limit = flag_value("--limit")?
                    .parse()
                    .map_err(|_| CliError("--limit requires an integer".into()))?;
            }
            "--samples" => {
                samples = flag_value("--samples")?
                    .parse()
                    .map_err(|_| CliError("--samples requires an integer".into()))?;
            }
            "--prob" => {
                let p: f64 = flag_value("--prob")?
                    .parse()
                    .map_err(|_| CliError("--prob requires a number in [0,1]".into()))?;
                if !(0.0..=1.0).contains(&p) {
                    return Err(CliError("--prob must be in [0,1]".into()));
                }
                prob = Some(p);
            }
            "--timeout-ms" => {
                let ms: u64 = flag_value("--timeout-ms")?
                    .parse()
                    .map_err(|_| CliError("--timeout-ms requires an integer".into()))?;
                budget.timeout = Some(std::time::Duration::from_millis(ms));
            }
            "--max-cliques" => {
                budget.max_cliques = Some(flag_value("--max-cliques")?.parse().map_err(|_| {
                    CliError("--max-cliques requires an integer".into())
                })?);
            }
            "--max-worlds" => {
                budget.max_worlds = Some(flag_value("--max-worlds")?.parse().map_err(|_| {
                    CliError("--max-worlds requires an integer".into())
                })?);
            }
            "--max-tuples" => {
                budget.max_tuples = Some(flag_value("--max-tuples")?.parse().map_err(|_| {
                    CliError("--max-tuples requires an integer".into())
                })?);
            }
            "--retries" => {
                retries = flag_value("--retries")?
                    .parse()
                    .map_err(|_| CliError("--retries requires an integer".into()))?;
            }
            "--retry-backoff-ms" => {
                let ms: u64 = flag_value("--retry-backoff-ms")?.parse().map_err(|_| {
                    CliError("--retry-backoff-ms requires an integer".into())
                })?;
                retry_backoff = std::time::Duration::from_millis(ms);
            }
            other if other.starts_with("--") => {
                return Err(CliError(format!("unknown flag '{other}'")));
            }
            other => positional.push(other.to_string()),
        }
    }
    let constraint = || -> Result<String, CliError> {
        match positional.as_slice() {
            [one] => Ok(one.clone()),
            [] => Err(CliError("expected a denial constraint argument".into())),
            _ => Err(CliError(
                "expected exactly one constraint (quote the whole expression)".into(),
            )),
        }
    };
    match sub.as_str() {
        "stats" => Ok(Command::Stats { dataset, seed }),
        "check" => Ok(Command::Check {
            dataset,
            seed,
            file,
            algorithm,
            minimize,
            budget,
            retry: if retries == 0 {
                RetryPolicy::NONE
            } else {
                RetryPolicy::new(retries, retry_backoff, seed)
            },
            telemetry,
            storage,
            constraint: constraint()?,
        }),
        "explain" => Ok(Command::Explain {
            dataset,
            seed,
            constraint: constraint()?,
        }),
        "risk" => Ok(Command::Risk {
            dataset,
            seed,
            samples,
            prob,
            constraint: constraint()?,
        }),
        "worlds" => Ok(Command::Worlds {
            dataset,
            seed,
            limit,
        }),
        "dump" => Ok(Command::Dump {
            dataset,
            seed,
            out: out_path.ok_or_else(|| CliError("dump requires --out <path>".into()))?,
        }),
        "serve" => Ok(Command::Serve {
            addr,
            store: store.ok_or_else(|| CliError("serve requires --store <dir>".into()))?,
        }),
        "help" | "--help" | "-h" => Ok(Command::Help),
        other => Err(CliError(format!("unknown subcommand '{other}'"))),
    }
}

/// Usage text.
pub const USAGE: &str = "\
bcdb — reasoning about the future in blockchain databases

USAGE:
  bcdb stats   [--dataset d200]  [--seed 42]
  bcdb check   [--dataset small] [--seed 42] [--algorithm auto] [--minimize]
               [--timeout-ms N] [--max-cliques N] [--max-worlds N] [--max-tuples N]
               [--retries N] [--retry-backoff-ms MS] [--telemetry]
               [--storage memory|disk:<dir>]
               '<constraint>'
  bcdb explain [--dataset small] '<constraint>'
  bcdb risk    [--dataset small] [--seed 42] [--samples 1000] [--prob P] '<constraint>'
  bcdb worlds  [--dataset small] [--seed 42] [--limit 50]
  bcdb dump    [--dataset d100]  [--seed 42] --out <path>
  bcdb serve   [--addr 127.0.0.1:7450] --store <dir>

`check` with any resource limit runs the governed solver: it degrades
gracefully when the budget runs out and may answer `unknown` (exit code 3)
instead of guessing. Without limits it runs to completion. --retries N
re-runs a *transient* unknown (deadline, cancellation, worker panic) up to
N times with jittered exponential backoff starting at --retry-backoff-ms
(default 50); deterministic limits are never retried, and total wall time
stays bounded by timeout-ms × (1 + N).

`check --telemetry` records per-phase telemetry (precompute, Θq, covers,
enumeration, world checks, …) during the run and prints the phase table
followed by a machine-readable JSON snapshot.

`check --storage disk:<dir>` exercises the durable storage path before
checking: the loaded database is persisted as a CRC-checksummed epoch
snapshot under <dir>, reloaded, verified byte-identical, and the check
runs against the reloaded state. The default (--storage memory) checks
in memory and touches no files.

`risk` estimates the probability that the constraint is ever violated,
drawing future worlds from an acceptance model: --prob P accepts every
pending transaction with probability P; without it, acceptance follows the
fee-rate rank (miners prefer high fee rates).

`serve` runs the fault-isolated multi-tenant solver service: a
line-delimited JSON protocol over TCP (subscribe / unsubscribe / poll /
event / stats / shutdown — one flat object per line). Verdict re-checks
are scheduled by weighted fair queueing with per-tenant budget
envelopes, so one pathological constraint degrades only its own tenant.
--store <dir> is the durable root: the event journal, epoch snapshots,
and the subscription registry live there, and a restart with the same
directory recovers every subscription before accepting connections.
SIGINT/SIGTERM trigger a graceful shutdown that flushes the journal and
persists a snapshot.

EXIT CODES:
  0  success (constraint holds, or command completed)
  1  constraint violated (a witness world exists)
  2  usage or input error
  3  unknown: the budget was exhausted before a definite answer

Constraints use the paper's syntax over TxOut(txId, ser, pk, amount) and
TxIn(prevTxId, prevSer, pk, amount, newTxId, sig), e.g.:
  q() <- TxOut(t, s, 'pkabc', a)
  [q(sum(a)) <- TxOut(t, s, 'pkabc', a)] > 100
";

fn load(dataset: Dataset, seed: u64) -> LoadedDataset {
    load_dataset(dataset, seed)
}

/// What a command produced: text to print plus the process exit code
/// (see `EXIT CODES` in [`USAGE`]).
#[derive(Clone, Debug)]
pub struct RunOutput {
    /// Text for stdout.
    pub text: String,
    /// Process exit code: 0 holds/ok, 1 violated, 3 unknown.
    pub exit_code: i32,
}

/// Executes a command, returning the text to print and the exit code.
pub fn run(cmd: Command) -> Result<RunOutput, CliError> {
    let mut exit_code = 0;
    let mut out = String::new();
    match cmd {
        Command::Help => out.push_str(USAGE),
        Command::Stats { dataset, seed } => {
            let d = load(dataset, seed);
            writeln!(out, "dataset {} (seed {seed})", d.name).unwrap();
            writeln!(
                out,
                "current state: {} blocks, {} transactions, {} inputs, {} outputs",
                d.base_counts.blocks,
                d.base_counts.transactions,
                d.base_counts.inputs,
                d.base_counts.outputs
            )
            .unwrap();
            writeln!(
                out,
                "pending:       {} transactions, {} inputs, {} outputs",
                d.pending_counts.transactions, d.pending_counts.inputs, d.pending_counts.outputs
            )
            .unwrap();
        }
        Command::Check {
            dataset,
            seed,
            file,
            algorithm,
            minimize,
            budget,
            retry,
            telemetry,
            storage,
            constraint,
        } => {
            let db = match file {
                Some(path) => load_file(&path)?,
                None => load(dataset, seed).db,
            };
            // `--storage disk:<dir>` proves the durable path end to end:
            // persist the loaded state as an epoch snapshot, reload it,
            // insist the round trip is byte-identical, and run the check
            // against the *reloaded* database.
            let db = match &storage {
                None => db,
                Some(dir) => {
                    let mut backend =
                        DiskBackend::new(dir).map_err(|e| CliError(e.to_string()))?;
                    let snap = db.to_db_snapshot(0);
                    let id = backend
                        .persist_snapshot(&snap)
                        .map_err(|e| CliError(e.to_string()))?;
                    let reloaded = backend
                        .load_snapshot(&id)
                        .map_err(|e| CliError(e.to_string()))?;
                    if encode_snapshot(&reloaded) != encode_snapshot(&snap) {
                        return Err(CliError(format!(
                            "storage round-trip mismatch for snapshot {id} under {}",
                            dir.display()
                        )));
                    }
                    writeln!(
                        out,
                        "storage: disk:{} — snapshot {id} ({} base rows, {} pending) \
                         persisted, reloaded, byte-identical",
                        dir.display(),
                        snap.base_rows(),
                        snap.pending.len()
                    )
                    .unwrap();
                    BlockchainDb::from_db_snapshot(
                        db.database().catalog().clone(),
                        db.constraints().clone(),
                        &reloaded,
                    )
                    .map_err(|e| CliError(e.to_string()))?
                }
            };
            let dc = parse_denial_constraint(&constraint, db.database().catalog())
                .map_err(|e| CliError(e.to_string()))?;
            if telemetry {
                bcdb_telemetry::reset();
                bcdb_telemetry::set_enabled(true);
            }
            let mut solver = Solver::builder(db)
                .algorithm(algorithm)
                .budget(budget)
                .build();
            let (satisfied, witness, stats, extra) = if budget.is_unlimited() {
                let outcome = solver
                    .check_ungoverned(&dc)
                    .map_err(|e| CliError(e.to_string()))?;
                (
                    Some(outcome.satisfied),
                    outcome.witness,
                    outcome.stats,
                    String::new(),
                )
            } else {
                // Transient exhaustion (deadline, cancellation, a worker
                // panic) may clear on a later attempt; deterministic limits
                // (cliques/worlds/tuples) never will, so they break out
                // immediately. The overall wall-clock stays bounded by
                // timeout × (1 + max_retries).
                let mut attempts = 0u32;
                let deadline = budget
                    .timeout
                    .map(|t| std::time::Instant::now() + t.saturating_mul(retry.max_retries + 1));
                let outcome = retry
                    .run(deadline, |_| {
                        attempts += 1;
                        match solver.check(&dc) {
                            Ok(outcome) => match &outcome.verdict {
                                Verdict::Unknown(
                                    ExhaustionReason::DeadlineExceeded { .. }
                                    | ExhaustionReason::Cancelled
                                    | ExhaustionReason::WorkerPanicked { .. },
                                ) => ControlFlow::Continue(Ok(outcome)),
                                _ => ControlFlow::Break(Ok(outcome)),
                            },
                            Err(e) => ControlFlow::Break(Err(e)),
                        }
                    })
                    .map_err(|e| CliError(e.to_string()))?;
                let mut extra = format!(", elapsed: {:?}", outcome.elapsed);
                if attempts > 1 {
                    write!(extra, ", attempts: {attempts}").unwrap();
                }
                if let Some(d) = outcome.degraded_to {
                    write!(extra, ", {d}").unwrap();
                }
                match outcome.verdict {
                    Verdict::Holds => (Some(true), None, outcome.stats, extra),
                    Verdict::Violated(w) => (Some(false), Some(w), outcome.stats, extra),
                    Verdict::Unknown(reason) => {
                        write!(extra, "; {reason}").unwrap();
                        (None, None, outcome.stats, extra)
                    }
                }
            };
            let verdict_text = match satisfied {
                Some(true) => "satisfied: true",
                Some(false) => "satisfied: false",
                None => "satisfied: unknown",
            };
            writeln!(
                out,
                "{verdict_text} (algorithm: {}, worlds evaluated: {}, cliques: {}{extra})",
                stats.algorithm, stats.worlds_evaluated, stats.cliques_enumerated
            )
            .unwrap();
            exit_code = match satisfied {
                Some(true) => 0,
                Some(false) => 1,
                None => 3,
            };
            if let Some(w) = witness {
                let w = if minimize { solver.minimize(&dc, &w) } else { w };
                let db = solver.db();
                let names: Vec<&str> = w.txs().map(|t| db.transaction(t).name.as_str()).collect();
                writeln!(
                    out,
                    "witness world: R plus {} pending transaction(s){}{}",
                    names.len(),
                    if names.is_empty() { "" } else { ": " },
                    names.join(", ")
                )
                .unwrap();
            }
            if telemetry {
                bcdb_telemetry::set_enabled(false);
                let snap = bcdb_telemetry::snapshot();
                writeln!(out, "\ntelemetry ({} probes fired):", snap.active_probes()).unwrap();
                out.push_str(&snap.render_table());
                writeln!(out, "\ntelemetry json: {}", snap.to_json()).unwrap();
            }
        }
        Command::Explain {
            dataset,
            seed,
            constraint,
        } => {
            let mut d = load(dataset, seed);
            let dc = parse_denial_constraint(&constraint, d.db.database().catalog())
                .map_err(|e| CliError(e.to_string()))?;
            let body = dc.body();
            writeln!(
                out,
                "form:        {}",
                if dc.is_aggregate() {
                    "aggregate"
                } else {
                    "conjunctive"
                }
            )
            .unwrap();
            writeln!(out, "positive:    {}", body.is_positive()).unwrap();
            writeln!(out, "monotone:    {:?}", monotonicity(&dc)).unwrap();
            writeln!(out, "connected:   {}", is_connected(body)).unwrap();
            writeln!(out, "prop2-safe:  {}", atom_graph_complete(body)).unwrap();
            let case = bcdb_core::dcsat::tractable::classify(&d.db, &dc);
            writeln!(out, "tractable:   {case:?}").unwrap();
            // What Auto would do, without running the check.
            let route = if case.is_some() {
                "tractable decider"
            } else if monotonicity(&dc).is_monotone() {
                match &dc {
                    DenialConstraint::Conjunctive(q)
                        if is_connected(q) && atom_graph_complete(q) =>
                    {
                        "OptDCSat"
                    }
                    _ => "NaiveDCSat",
                }
            } else {
                "exhaustive oracle"
            };
            writeln!(out, "auto route:  {route}").unwrap();
            // Evaluation plan for the (body) query.
            let plan = bcdb_query::prepare(d.db.database_mut(), dc.body())
                .explain(d.db.database().catalog());
            writeln!(out, "plan:").unwrap();
            for line in plan.lines() {
                writeln!(out, "  {line}").unwrap();
            }
        }
        Command::Risk {
            dataset,
            seed,
            samples,
            prob,
            constraint,
        } => {
            let mut d = load(dataset, seed);
            let dc = parse_denial_constraint(&constraint, d.db.database().catalog())
                .map_err(|e| CliError(e.to_string()))?;
            let pre = Precomputed::build(&d.db);
            let pc = PreparedConstraint::prepare(d.db.database_mut(), &dc);
            let estimate = match prob {
                Some(p) => {
                    estimate_violation_risk(&d.db, &pre, &pc, &UniformAcceptance(p), samples, seed)
                }
                None => {
                    let probs = bcdb_chain::feerate_probabilities(&d.scenario, 0.25, 0.95);
                    estimate_violation_risk(
                        &d.db,
                        &pre,
                        &pc,
                        &PerTxAcceptance(probs),
                        samples,
                        seed,
                    )
                }
            };
            writeln!(
                out,
                "violation probability ≈ {:.4} (± {:.4}, {} samples, model: {})",
                estimate.violation_probability,
                estimate.std_error,
                estimate.samples,
                match prob {
                    Some(p) => format!("uniform {p}"),
                    None => "fee-rate rank".into(),
                }
            )
            .unwrap();
            if let Some(w) = estimate.example_violation {
                let names: Vec<&str> = w.txs().map(|t| d.db.transaction(t).name.as_str()).collect();
                writeln!(
                    out,
                    "example violating future: {} pending transaction(s) accepted",
                    names.len()
                )
                .unwrap();
            }
        }
        Command::Dump {
            dataset,
            seed,
            out: path,
        } => {
            let d = load(dataset, seed);
            let e = bcdb_chain::export(&d.scenario).map_err(|err| CliError(err.to_string()))?;
            bcdb_chain::write_export_file(&e, &path).map_err(|err| CliError(err.to_string()))?;
            writeln!(
                out,
                "wrote {} ({} base rows, {} pending transactions)",
                path.display(),
                e.base.len(),
                e.pending.len()
            )
            .unwrap();
        }
        Command::Serve { addr, store } => {
            let (catalog, constraints) = bcdb_chain::bitcoin_catalog();
            let cfg = bcdb_server::ServeConfig::default();
            // A registry on disk means a previous daemon ran here:
            // recover every subscription before accepting connections.
            let had_store = store.join("subs.registry").exists();
            let core = if had_store {
                let (core, recovery) = bcdb_server::ServerCore::recover(
                    catalog,
                    constraints,
                    &store,
                    cfg,
                )
                .map_err(|err| CliError(err.to_string()))?;
                eprintln!(
                    "recovered {} subscription(s) from {} ({} WAL-tail records replayed)",
                    recovery.subscriptions_restored,
                    store.display(),
                    recovery.monitor.wal_tail_records,
                );
                core
            } else {
                bcdb_server::ServerCore::open(catalog, constraints, &store, cfg)
                    .map_err(|err| CliError(err.to_string()))?
            };
            let listener = std::net::TcpListener::bind(&addr)
                .map_err(|err| CliError(format!("bind {addr}: {err}")))?;
            let shutdown = bcdb_server::ShutdownFlag::new();
            bcdb_server::install_signal_handlers(&shutdown);
            eprintln!("serving on {addr}, store {} (SIGINT/SIGTERM to stop)", store.display());
            let summary = bcdb_server::serve(
                std::sync::Arc::new(std::sync::Mutex::new(core)),
                listener,
                shutdown,
                bcdb_server::NetConfig::default(),
            )
            .map_err(|err| CliError(err.to_string()))?;
            writeln!(
                out,
                "served {} connection(s) ({} refused at the admission limit)",
                summary.connections, summary.refused
            )
            .unwrap();
            writeln!(
                out,
                "shutdown: {} subscription(s) durable{}",
                summary.shutdown.subscriptions,
                match &summary.shutdown.snapshot {
                    Some(id) => format!(", snapshot {id}"),
                    None => String::new(),
                }
            )
            .unwrap();
        }
        Command::Worlds {
            dataset,
            seed,
            limit,
        } => {
            let d = load(dataset, seed);
            let pre = Precomputed::build(&d.db);
            let mut shown = 0usize;
            let mut total = 0usize;
            for_each_possible_world(&d.db, &pre, |w| {
                total += 1;
                if shown < limit {
                    let names: Vec<&str> =
                        w.txs().map(|t| d.db.transaction(t).name.as_str()).collect();
                    if names.is_empty() {
                        writeln!(out, "R").unwrap();
                    } else {
                        writeln!(out, "R + {{{}}}", names.join(", ")).unwrap();
                    }
                    shown += 1;
                    ControlFlow::Continue(())
                } else {
                    ControlFlow::Break(())
                }
            });
            if shown < total || shown == limit {
                writeln!(
                    out,
                    "... (stopped after {shown} worlds; Poss(D) may be exponential)"
                )
                .unwrap();
            } else {
                writeln!(out, "total: {total} possible worlds").unwrap();
            }
        }
    }
    Ok(RunOutput {
        text: out,
        exit_code,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(|x| x.to_string()).collect()
    }

    #[test]
    fn parses_stats() {
        let cmd = parse_args(&argv("stats --dataset d100 --seed 7")).unwrap();
        assert_eq!(
            cmd,
            Command::Stats {
                dataset: Dataset::D100,
                seed: 7
            }
        );
    }

    #[test]
    fn parses_check_with_flags() {
        let mut args = argv("check --algorithm naive --minimize");
        args.push("q() <- TxOut(t, s, 'x', a)".into());
        let cmd = parse_args(&args).unwrap();
        assert_eq!(
            cmd,
            Command::Check {
                dataset: Dataset::Small,
                seed: 42,
                file: None,
                algorithm: Algorithm::Naive,
                minimize: true,
                budget: BudgetSpec::UNLIMITED,
                retry: RetryPolicy::NONE,
                telemetry: false,
                storage: None,
                constraint: "q() <- TxOut(t, s, 'x', a)".into(),
            }
        );
    }

    #[test]
    fn parses_budget_flags() {
        let mut args = argv("check --timeout-ms 50 --max-cliques 10 --max-worlds 20 --max-tuples 30");
        args.push("q() <- TxOut(t, s, 'x', a)".into());
        let cmd = parse_args(&args).unwrap();
        let Command::Check { budget, .. } = cmd else {
            panic!("expected Check, got {cmd:?}");
        };
        assert!(!budget.is_unlimited());
        assert_eq!(budget.timeout, Some(std::time::Duration::from_millis(50)));
        assert_eq!(budget.max_cliques, Some(10));
        assert_eq!(budget.max_worlds, Some(20));
        assert_eq!(budget.max_tuples, Some(30));
        // Bad values rejected.
        assert!(parse_args(&argv("check --timeout-ms soon x")).is_err());
        assert!(parse_args(&argv("check --max-cliques")).is_err());
    }

    #[test]
    fn parses_retry_flags() {
        let mut args = argv("check --seed 9 --retries 3 --retry-backoff-ms 20");
        args.push("q() <- TxOut(t, s, 'x', a)".into());
        let cmd = parse_args(&args).unwrap();
        let Command::Check { retry, .. } = cmd else {
            panic!("expected Check, got {cmd:?}");
        };
        assert_eq!(
            retry,
            RetryPolicy::new(3, std::time::Duration::from_millis(20), 9)
        );
        // No --retries means no retrying at all.
        let mut args = argv("check");
        args.push("q() <- TxOut(t, s, 'x', a)".into());
        let Command::Check { retry, .. } = parse_args(&args).unwrap() else {
            panic!("expected Check");
        };
        assert_eq!(retry, RetryPolicy::NONE);
        // Bad values rejected.
        assert!(parse_args(&argv("check --retries many x")).is_err());
        assert!(parse_args(&argv("check --retry-backoff-ms")).is_err());
    }

    #[test]
    fn parses_storage_flag() {
        let mut args = argv("check --storage disk:/tmp/bcdb-snaps");
        args.push("q() <- TxOut(t, s, 'x', a)".into());
        let Command::Check { storage, .. } = parse_args(&args).unwrap() else {
            panic!("expected Check");
        };
        assert_eq!(storage, Some(PathBuf::from("/tmp/bcdb-snaps")));
        // `memory` is the explicit spelling of the default.
        let mut args = argv("check --storage memory");
        args.push("q() <- TxOut(t, s, 'x', a)".into());
        let Command::Check { storage, .. } = parse_args(&args).unwrap() else {
            panic!("expected Check");
        };
        assert_eq!(storage, None);
        // Bad values rejected.
        assert!(parse_args(&argv("check --storage floppy x")).is_err());
        assert!(parse_args(&argv("check --storage disk: x")).is_err());
        assert!(parse_args(&argv("check --storage")).is_err());
    }

    #[test]
    fn check_with_disk_storage_round_trips() {
        let dir = std::env::temp_dir().join("bcdb_cli_storage_test");
        std::fs::remove_dir_all(&dir).ok();
        let out = run(Command::Check {
            dataset: Dataset::Small,
            seed: 42,
            file: None,
            algorithm: Algorithm::Auto,
            minimize: false,
            budget: BudgetSpec::UNLIMITED,
            retry: RetryPolicy::NONE,
            telemetry: false,
            storage: Some(dir.clone()),
            constraint: "q() <- TxOut(t, s, 'pkNOSUCH', a)".into(),
        })
        .unwrap();
        assert!(out.text.contains("byte-identical"), "{}", out.text);
        assert!(out.text.contains("satisfied: true"), "{}", out.text);
        assert_eq!(out.exit_code, 0);
        // The snapshot really landed on disk.
        let files: Vec<_> = std::fs::read_dir(&dir).unwrap().collect();
        assert_eq!(files.len(), 1, "expected exactly one snapshot file");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rejects_bad_input() {
        assert!(parse_args(&argv("frobnicate")).is_err());
        assert!(parse_args(&argv("check")).is_err()); // missing constraint
        assert!(parse_args(&argv("stats --dataset mars")).is_err());
        assert!(parse_args(&argv("stats --seed notanumber")).is_err());
        assert!(parse_args(&argv("stats --bogus")).is_err());
        assert_eq!(parse_args(&[]).unwrap(), Command::Help);
        assert_eq!(parse_args(&argv("help")).unwrap(), Command::Help);
    }

    #[test]
    fn check_and_explain_run_end_to_end() {
        let out = run(Command::Check {
            dataset: Dataset::Small,
            seed: 42,
            file: None,
            algorithm: Algorithm::Auto,
            minimize: true,
            budget: BudgetSpec::UNLIMITED,
            retry: RetryPolicy::NONE,
            telemetry: false,
            storage: None,
            constraint: "q() <- TxOut(t, s, 'pkNOSUCH', a)".into(),
        })
        .unwrap();
        assert!(out.text.contains("satisfied: true"), "{}", out.text);
        assert_eq!(out.exit_code, 0);

        let out = run(Command::Explain {
            dataset: Dataset::Small,
            seed: 42,
            constraint: "[q(sum(a)) <- TxOut(t, s, 'pkNOSUCH', a)] > 5".into(),
        })
        .unwrap();
        assert!(out.text.contains("form:        aggregate"), "{}", out.text);
        assert!(out.text.contains("auto route:"), "{}", out.text);

        let err = run(Command::Check {
            dataset: Dataset::Small,
            seed: 42,
            file: None,
            algorithm: Algorithm::Auto,
            minimize: false,
            budget: BudgetSpec::UNLIMITED,
            retry: RetryPolicy::NONE,
            telemetry: false,
            storage: None,
            constraint: "q() <- Nope(x)".into(),
        })
        .unwrap_err();
        assert!(err.0.contains("Nope"));
    }

    #[test]
    fn violated_check_exits_one() {
        // Every generated dataset pays someone, so this monotone constraint
        // ("no output at all exists") is violated already in the base world.
        let out = run(Command::Check {
            dataset: Dataset::Small,
            seed: 42,
            file: None,
            algorithm: Algorithm::Auto,
            minimize: false,
            budget: BudgetSpec::UNLIMITED,
            retry: RetryPolicy::NONE,
            telemetry: false,
            storage: None,
            constraint: "q() <- TxOut(t, s, p, a)".into(),
        })
        .unwrap();
        assert!(out.text.contains("satisfied: false"), "{}", out.text);
        assert_eq!(out.exit_code, 1);
    }

    #[test]
    fn governed_check_reports_verdict_and_exit_code() {
        // A zero tuple budget exhausts immediately; the monotone-precheck
        // fallback still proves this monotone, unsatisfiable constraint holds.
        let mut budget = BudgetSpec::UNLIMITED;
        budget.max_tuples = Some(0);
        let out = run(Command::Check {
            dataset: Dataset::Small,
            seed: 42,
            file: None,
            algorithm: Algorithm::Auto,
            minimize: false,
            budget,
            retry: RetryPolicy::NONE,
            telemetry: false,
            storage: None,
            constraint: "q() <- TxOut(t, s, 'pkNOSUCH', a)".into(),
        })
        .unwrap();
        assert!(out.text.contains("satisfied: true"), "{}", out.text);
        assert!(out.text.contains("elapsed:"), "{}", out.text);
        assert_eq!(out.exit_code, 0);

        // Non-monotone constraint: the oracle runs out of worlds and no
        // fallback rung applies, so the answer is unknown and the exit code 3.
        let mut budget = BudgetSpec::UNLIMITED;
        budget.max_worlds = Some(4);
        let out = run(Command::Check {
            dataset: Dataset::Small,
            seed: 42,
            file: None,
            algorithm: Algorithm::Auto,
            minimize: false,
            budget,
            retry: RetryPolicy::NONE,
            telemetry: false,
            storage: None,
            constraint:
                "q() <- TxOut(t, s, 'pkNOSUCH', a), !TxIn(t, s, 'pkNOSUCH', a, t, 'sig')".into(),
        })
        .unwrap();
        assert!(out.text.contains("satisfied: unknown"), "{}", out.text);
        assert_eq!(out.exit_code, 3);
    }

    #[test]
    fn retries_skip_deterministic_limits_and_respect_deadlines() {
        // A worlds limit is deterministic: retrying cannot help, so the
        // governed solver answers unknown after a single attempt even with
        // retries configured.
        let mut budget = BudgetSpec::UNLIMITED;
        budget.max_worlds = Some(4);
        let out = run(Command::Check {
            dataset: Dataset::Small,
            seed: 42,
            file: None,
            algorithm: Algorithm::Auto,
            minimize: false,
            budget,
            retry: RetryPolicy::new(5, std::time::Duration::from_millis(1), 42),
            telemetry: false,
            storage: None,
            constraint:
                "q() <- TxOut(t, s, 'pkNOSUCH', a), !TxIn(t, s, 'pkNOSUCH', a, t, 'sig')".into(),
        })
        .unwrap();
        assert!(out.text.contains("satisfied: unknown"), "{}", out.text);
        assert!(!out.text.contains("attempts:"), "{}", out.text);
        assert_eq!(out.exit_code, 3);

        // A zero deadline is transient in principle, but the overall retry
        // deadline (timeout × (1 + retries)) is already spent, so the run
        // returns promptly instead of sleeping through five backoffs.
        let mut budget = BudgetSpec::UNLIMITED;
        budget.timeout = Some(std::time::Duration::ZERO);
        let started = std::time::Instant::now();
        let out = run(Command::Check {
            dataset: Dataset::Small,
            seed: 42,
            file: None,
            algorithm: Algorithm::Auto,
            minimize: false,
            budget,
            retry: RetryPolicy::new(5, std::time::Duration::from_secs(10), 42),
            telemetry: false,
            storage: None,
            constraint:
                "q() <- TxOut(t, s, 'pkNOSUCH', a), !TxIn(t, s, 'pkNOSUCH', a, t, 'sig')".into(),
        })
        .unwrap();
        assert!(started.elapsed() < std::time::Duration::from_secs(5));
        assert_eq!(out.exit_code, 3, "{}", out.text);
    }

    #[test]
    fn parses_and_runs_risk() {
        let mut args = argv("risk --samples 200 --prob 0.5");
        args.push("q() <- TxOut(t, s, 'pkNOSUCH', a)".into());
        let cmd = parse_args(&args).unwrap();
        assert!(matches!(
            &cmd,
            Command::Risk { samples: 200, prob: Some(p), .. } if *p == 0.5
        ));
        let out = run(cmd).unwrap();
        assert!(
            out.text.contains("violation probability ≈ 0.0000"),
            "{}",
            out.text
        );
        // Fee-rate model path.
        let mut args = argv("risk --samples 50");
        args.push("q() <- TxOut(t, s, 'pkNOSUCH', a)".into());
        let out = run(parse_args(&args).unwrap()).unwrap();
        assert!(out.text.contains("fee-rate rank"), "{}", out.text);
        // Bad probability rejected.
        let mut args = argv("risk --prob 1.5");
        args.push("q() <- TxOut(t, s, 'x', a)".into());
        assert!(parse_args(&args).is_err());
    }

    #[test]
    fn dump_then_check_from_file() {
        let dir = std::env::temp_dir().join("bcdb_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.bcdb");
        run(Command::Dump {
            dataset: Dataset::Small,
            seed: 42,
            out: path.clone(),
        })
        .unwrap();
        let out = run(Command::Check {
            dataset: Dataset::Small,
            seed: 42,
            file: Some(path.clone()),
            algorithm: Algorithm::Auto,
            minimize: false,
            budget: BudgetSpec::UNLIMITED,
            retry: RetryPolicy::NONE,
            telemetry: false,
            storage: None,
            constraint: "q() <- TxOut(t, s, 'pkNOSUCH', a)".into(),
        })
        .unwrap();
        assert!(out.text.contains("satisfied: true"), "{}", out.text);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn worlds_respects_limit() {
        let out = run(Command::Worlds {
            dataset: Dataset::Small,
            seed: 42,
            limit: 3,
        })
        .unwrap();
        let lines: Vec<&str> = out.text.lines().collect();
        assert!(lines.len() <= 5, "{}", out.text);
        assert!(lines[0] == "R", "{}", out.text);
    }
}
