#![warn(missing_docs)]

//! Blockchain databases and denial-constraint satisfaction.
//!
//! A Rust implementation of *Reasoning about the Future in Blockchain
//! Databases* (Cohen, Rosenthal, Zohar; ICDE 2020). A [`BlockchainDb`] is
//! the paper's `D = (R, I, T)`: a consistent current state `R`, integrity
//! constraints `I` (keys, functional dependencies, inclusion dependencies),
//! and pending transactions `T` whose eventual acceptance is uncertain.
//! The database therefore represents a set of **possible worlds**
//! ([`worlds`]), and the central question is **denial-constraint
//! satisfaction**: is a given Boolean query false in *every* possible
//! world? Checks run through a [`Solver`] session, which owns the database
//! plus the steady-state precomputed structures and amortizes them across
//! single checks ([`Solver::check`]) and shared-precompute batches
//! ([`Solver::check_batch`]).
//!
//! ```
//! use bcdb_core::{BlockchainDb, Solver};
//! use bcdb_query::parse_denial_constraint;
//! use bcdb_storage::{tuple, Catalog, ConstraintSet, Fd, RelationSchema, ValueType};
//!
//! let mut cat = Catalog::new();
//! cat.add(RelationSchema::new("Pay", [
//!     ("id", ValueType::Int), ("to", ValueType::Text),
//! ]).unwrap()).unwrap();
//! let mut cs = ConstraintSet::new();
//! cs.add_fd(Fd::named_key(&cat, "Pay", &["id"]).unwrap());
//!
//! let mut db = BlockchainDb::new(cat, cs);
//! let pay = db.database().catalog().resolve("Pay").unwrap();
//! // Two pending payments reusing the same id — only one can ever land.
//! db.add_transaction("first", [(pay, tuple![1i64, "bob"])]).unwrap();
//! db.add_transaction("reissue", [(pay, tuple![1i64, "carol"])]).unwrap();
//!
//! // "Bob and Carol are never both paid."
//! let dc = parse_denial_constraint(
//!     "q() <- Pay(i, 'bob'), Pay(j, 'carol')", db.database().catalog()).unwrap();
//! let mut solver = Solver::builder(db).build();
//! let outcome = solver.check(&dc).unwrap();
//! assert_eq!(outcome.verdict.satisfied(), Some(true));
//! ```

pub mod cache;
pub mod db;
pub mod dcsat;
pub mod error;
pub mod likelihood;
pub mod precompute;
pub mod solver;
pub mod witness;
pub mod worlds;

pub use bcdb_governor::{Budget, BudgetSpec, ExhaustionReason, RetryPolicy};
pub use cache::{SharedCacheStats, SharedEnumCache};
pub use db::{BlockchainDb, PendingTransaction};
#[allow(deprecated)]
pub use dcsat::{
    dcsat, dcsat_governed, dcsat_governed_with, dcsat_governed_with_budget, dcsat_with, Algorithm,
    DcSatOptions, DcSatOutcome, DcSatStats, Exhausted, GovernedOutcome, PreparedConstraint,
    Verdict,
};
pub use solver::{BatchOutcome, Solver, SolverBuilder, SolverStats};
pub use error::CoreError;
pub use likelihood::{
    estimate_violation_risk, AcceptanceModel, PerTxAcceptance, RiskEstimate, UniformAcceptance,
};
pub use precompute::{query_components, Precomputed};
pub use witness::minimize_witness;
pub use worlds::{
    can_append, delta_row_count, for_each_possible_world, for_each_possible_world_governed,
    get_maximal, get_maximal_into, is_possible_world, possible_worlds, MaximalScratch,
};
