//! The blockchain database `D = (R, I, T)` (§4 of the paper).

use crate::error::CoreError;
use bcdb_storage::{
    build_ind_indexes, first_violation, ConstraintSet, Database, DbSnapshot, RelationId, Source,
    Tuple, TxId,
};

/// A pending (issued but unaccepted) insert transaction: a named set of
/// ground tuples for (some of) the relations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PendingTransaction {
    /// Display name (e.g. `"T1"`, or a txid from a chain).
    pub name: String,
    /// The tuples the transaction would append.
    pub tuples: Vec<(RelationId, Tuple)>,
}

/// A blockchain database `D = (R, I, T)`:
///
/// * `R` — the **current state**: relations already accepted on chain,
///   required to satisfy `I`;
/// * `I` — the **integrity constraints** (keys, FDs, INDs);
/// * `T` — the **pending transactions**, which may be appended in any order
///   and combination that keeps every intermediate state consistent.
///
/// Internally, base and pending tuples live in one [`Database`], tagged by
/// [`Source`], so possible worlds are world-masks rather than copies.
#[derive(Clone, Debug)]
pub struct BlockchainDb {
    db: Database,
    constraints: ConstraintSet,
    pending: Vec<PendingTransaction>,
}

impl BlockchainDb {
    /// Creates an empty blockchain database over `catalog` with constraints
    /// `constraints`. Referenced-side IND indexes are built eagerly.
    pub fn new(catalog: bcdb_storage::Catalog, constraints: ConstraintSet) -> Self {
        let mut db = Database::new(catalog);
        build_ind_indexes(&mut db, &constraints);
        BlockchainDb {
            db,
            constraints,
            pending: Vec::new(),
        }
    }

    /// Appends a tuple directly to the current state `R`.
    ///
    /// Consistency of `R` is *not* re-checked per insert (bulk loading a
    /// chain would be quadratic); call
    /// [`check_current_state`](Self::check_current_state) after loading.
    pub fn insert_current(&mut self, rel: RelationId, tuple: Tuple) -> Result<(), CoreError> {
        self.db.insert_base(rel, tuple)?;
        Ok(())
    }

    /// Verifies `R |= I` (the definition of a blockchain database).
    pub fn check_current_state(&self) -> Result<(), CoreError> {
        let base = self.db.base_mask();
        if let Some(v) = first_violation(&self.db, &self.constraints, &base) {
            return Err(CoreError::InconsistentCurrentState {
                detail: format!("{v:?}"),
            });
        }
        Ok(())
    }

    /// Issues a pending transaction; returns its [`TxId`].
    ///
    /// Tuples are typechecked, but the transaction is *not* required to be
    /// consistent with `R` or with other pending transactions — mutually
    /// contradicting pending transactions are exactly what the paper
    /// reasons about.
    pub fn add_transaction(
        &mut self,
        name: impl Into<String>,
        tuples: impl IntoIterator<Item = (RelationId, Tuple)>,
    ) -> Result<TxId, CoreError> {
        let id = TxId(self.pending.len() as u32);
        let tuples: Vec<(RelationId, Tuple)> = tuples.into_iter().collect();
        for (rel, tuple) in &tuples {
            self.db.catalog().schema(*rel).typecheck(tuple)?;
        }
        for (rel, tuple) in &tuples {
            self.db.insert(*rel, tuple.clone(), Source::Pending(id))?;
        }
        self.pending.push(PendingTransaction {
            name: name.into(),
            tuples,
        });
        Ok(id)
    }

    /// Removes the pending transaction `tx` (it was evicted or superseded)
    /// and renumbers the remaining pending transactions with larger ids down
    /// by one, keeping [`TxId`]s dense. Returns the removed transaction.
    ///
    /// The result is indistinguishable from a database where the survivors
    /// were issued in their original relative order and `tx` never existed —
    /// the invariant the incremental
    /// [`Precomputed::note_transaction_removed`](crate::Precomputed::note_transaction_removed)
    /// maintenance relies on.
    pub fn remove_transaction(&mut self, tx: TxId) -> PendingTransaction {
        assert!(
            tx.index() < self.pending.len(),
            "remove_transaction: {tx} out of range ({} pending)",
            self.pending.len()
        );
        // A transaction with no tuples never bumped the store's tx counter;
        // only touch the stores when `tx` is within their id space.
        if tx.index() < self.db.tx_count() {
            self.db.remove_pending_tx(tx);
        }
        self.pending.remove(tx.index())
    }

    /// Removes several pending transactions in one store pass. Equivalent
    /// to calling [`remove_transaction`](Self::remove_transaction) on each
    /// id in descending order, but renumbers survivors once instead of once
    /// per removal. Returns the removed transactions in ascending-id order.
    pub fn remove_transactions(&mut self, txs: &[TxId]) -> Vec<PendingTransaction> {
        let mut sorted = txs.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        for &tx in &sorted {
            assert!(
                tx.index() < self.pending.len(),
                "remove_transactions: {tx} out of range ({} pending)",
                self.pending.len()
            );
        }
        // Trailing empty transactions never bumped the store's tx counter;
        // only hand the stores ids within their id space.
        let store_txs: Vec<TxId> = sorted
            .iter()
            .copied()
            .filter(|t| t.index() < self.db.tx_count())
            .collect();
        self.db.remove_pending_txs(&store_txs);
        let mut removed = Vec::with_capacity(sorted.len());
        for &tx in sorted.iter().rev() {
            removed.push(self.pending.remove(tx.index()));
        }
        removed.reverse();
        removed
    }

    /// Folds the pending transactions `txs` into the current state `R` (in
    /// the order given) and removes them from `T`, renumbering survivors
    /// down. The in-place equivalent of
    /// [`accept_transactions`](Self::accept_transactions): the resulting
    /// stores are byte-identical to a database rebuilt with `txs` accepted,
    /// but no row outside the promoted set is rehashed or re-interned.
    /// Returns the base rows actually added (duplicates of existing base
    /// tuples are skipped, exactly as a cold bulk load would skip them).
    pub fn promote_transactions(
        &mut self,
        txs: &[TxId],
    ) -> Result<Vec<(RelationId, Tuple)>, CoreError> {
        let mut rows: Vec<(RelationId, Tuple)> = Vec::new();
        for &tx in txs {
            assert!(
                tx.index() < self.pending.len(),
                "promote_transactions: {tx} out of range ({} pending)",
                self.pending.len()
            );
            rows.extend(self.pending[tx.index()].tuples.iter().cloned());
        }
        let added = self.db.append_base_rows(&rows)?;
        self.remove_transactions(txs);
        Ok(added)
    }

    /// Promotes a single pending transaction into the current state.
    /// See [`promote_transactions`](Self::promote_transactions).
    pub fn promote_transaction(&mut self, tx: TxId) -> Result<Vec<(RelationId, Tuple)>, CoreError> {
        self.promote_transactions(&[tx])
    }

    /// Issues a pending transaction at position `at` (shifting ids `>= at`
    /// up by one), producing stores byte-identical to a database where the
    /// transaction had been issued in that relative order all along. The
    /// inverse of [`remove_transaction`](Self::remove_transaction) — reorg
    /// undo uses it to put a de-mined transaction back at its original slot.
    pub fn insert_transaction_at(
        &mut self,
        at: TxId,
        name: impl Into<String>,
        tuples: impl IntoIterator<Item = (RelationId, Tuple)>,
    ) -> Result<(), CoreError> {
        assert!(
            at.index() <= self.pending.len(),
            "insert_transaction_at: {at} out of range ({} pending)",
            self.pending.len()
        );
        let tuples: Vec<(RelationId, Tuple)> = tuples.into_iter().collect();
        for (rel, tuple) in &tuples {
            self.db.catalog().schema(*rel).typecheck(tuple)?;
        }
        if at.index() >= self.db.tx_count() {
            // Every transaction at or above `at` is empty (none bumped the
            // store counter), so there is nothing to shift: plain inserts
            // reproduce the cold build.
            for (rel, tuple) in &tuples {
                self.db.insert(*rel, tuple.clone(), Source::Pending(at))?;
            }
        } else {
            self.db.insert_pending_tx_at(at, &tuples)?;
        }
        self.pending.insert(
            at.index(),
            PendingTransaction {
                name: name.into(),
                tuples,
            },
        );
        Ok(())
    }

    /// Appends `rows` to the current state `R` in one batch, skipping
    /// tuples already present as base rows (the dedup a cold bulk load
    /// performs). Returns the rows actually added, in append order.
    pub fn append_base_rows(
        &mut self,
        rows: &[(RelationId, Tuple)],
    ) -> Result<Vec<(RelationId, Tuple)>, CoreError> {
        Ok(self.db.append_base_rows(rows)?)
    }

    /// Removes the base copies of `rows` from the current state `R`
    /// (pending copies of the same tuples survive). Returns how many rows
    /// were dropped. Reorg undo uses this to retract a block's appends.
    pub fn remove_base_rows(&mut self, rows: &[(RelationId, Tuple)]) -> usize {
        self.db.remove_base_rows(rows)
    }

    /// The underlying multi-source database.
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// Mutable access (query preparation builds indexes).
    pub fn database_mut(&mut self) -> &mut Database {
        &mut self.db
    }

    /// The integrity constraints `I`.
    pub fn constraints(&self) -> &ConstraintSet {
        &self.constraints
    }

    /// The pending transactions `T`, indexed by [`TxId`].
    pub fn pending(&self) -> &[PendingTransaction] {
        &self.pending
    }

    /// Number of pending transactions.
    pub fn pending_count(&self) -> usize {
        self.pending.len()
    }

    /// The pending transaction with id `tx`.
    pub fn transaction(&self, tx: TxId) -> &PendingTransaction {
        &self.pending[tx.index()]
    }

    /// All pending transaction ids.
    pub fn tx_ids(&self) -> impl Iterator<Item = TxId> {
        (0..self.pending.len() as u32).map(TxId)
    }

    /// Captures the full state as a self-describing [`DbSnapshot`] at
    /// `epoch`: every relation of the catalog (in catalog order, base
    /// rows in store order) plus the pending transactions in issue order.
    /// The inverse of [`from_db_snapshot`](Self::from_db_snapshot): a
    /// round trip produces byte-identical stores.
    pub fn to_db_snapshot(&self, epoch: u64) -> DbSnapshot {
        let base = self
            .db
            .catalog()
            .iter()
            .map(|(rel, schema)| {
                let rows = self
                    .db
                    .relation(rel)
                    .scan_all()
                    .filter(|(_, row)| row.source == Source::Base)
                    .map(|(_, row)| row.tuple.clone())
                    .collect();
                (schema.name().to_string(), rows)
            })
            .collect();
        let pending = self
            .pending
            .iter()
            .map(|pt| {
                let rows = pt
                    .tuples
                    .iter()
                    .map(|(rel, tuple)| {
                        (
                            self.db.catalog().schema(*rel).name().to_string(),
                            tuple.clone(),
                        )
                    })
                    .collect();
                (pt.name.clone(), rows)
            })
            .collect();
        DbSnapshot {
            epoch,
            base,
            pending,
        }
    }

    /// Reconstructs a database from a snapshot: base rows first (per
    /// relation, in snapshot order), then pending transactions in issue
    /// order. Relation names are resolved against `catalog`; an
    /// unresolvable name is an error.
    pub fn from_db_snapshot(
        catalog: bcdb_storage::Catalog,
        constraints: ConstraintSet,
        snap: &DbSnapshot,
    ) -> Result<BlockchainDb, CoreError> {
        let mut bc = BlockchainDb::new(catalog, constraints);
        for (rel_name, rows) in &snap.base {
            let rel = bc.db.catalog().resolve(rel_name).ok_or_else(|| {
                CoreError::Storage(bcdb_storage::StorageError::UnknownRelation {
                    relation: rel_name.clone(),
                })
            })?;
            for tuple in rows {
                bc.insert_current(rel, tuple.clone())?;
            }
        }
        for (tx_name, rows) in &snap.pending {
            let resolved: Result<Vec<_>, CoreError> = rows
                .iter()
                .map(|(rel_name, tuple)| {
                    bc.db
                        .catalog()
                        .resolve(rel_name)
                        .map(|rel| (rel, tuple.clone()))
                        .ok_or_else(|| {
                            CoreError::Storage(bcdb_storage::StorageError::UnknownRelation {
                                relation: rel_name.clone(),
                            })
                        })
                })
                .collect();
            bc.add_transaction(tx_name.clone(), resolved?)?;
        }
        Ok(bc)
    }

    /// Rebuilds the database with `accepted` folded into the current state
    /// and the remaining pending transactions re-issued (with fresh,
    /// renumbered [`TxId`]s, in their original order).
    ///
    /// This models a block being mined: some of `T` moves into `R`.
    /// Returns the new database and the mapping `old TxId -> new TxId` for
    /// the surviving pending transactions.
    pub fn accept_transactions(
        &self,
        accepted: &[TxId],
    ) -> Result<(BlockchainDb, Vec<(TxId, TxId)>), CoreError> {
        let mut next = BlockchainDb::new(self.db.catalog().clone(), self.constraints.clone());
        // Copy the current state.
        for (rel, _) in self.db.catalog().iter() {
            for (_, row) in self.db.relation(rel).scan_all() {
                if row.source == Source::Base {
                    next.insert_current(rel, row.tuple.clone())?;
                }
            }
        }
        // Fold in the accepted transactions, in the order given.
        for &tx in accepted {
            for (rel, tuple) in &self.pending[tx.index()].tuples {
                next.insert_current(*rel, tuple.clone())?;
            }
        }
        // Re-issue the survivors.
        let mut mapping = Vec::new();
        for old in self.tx_ids() {
            if accepted.contains(&old) {
                continue;
            }
            let pt = &self.pending[old.index()];
            let new = next.add_transaction(pt.name.clone(), pt.tuples.iter().cloned())?;
            mapping.push((old, new));
        }
        Ok((next, mapping))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bcdb_storage::{tuple, Catalog, Fd, Ind, RelationSchema, ValueType};

    pub(crate) fn simple_setup() -> (BlockchainDb, RelationId, RelationId) {
        let mut cat = Catalog::new();
        let r = cat
            .add(RelationSchema::new("R", [("a", ValueType::Int), ("b", ValueType::Int)]).unwrap())
            .unwrap();
        let s = cat
            .add(RelationSchema::new("S", [("x", ValueType::Int)]).unwrap())
            .unwrap();
        let mut cs = ConstraintSet::new();
        cs.add_fd(Fd::named_key(&cat, "R", &["a"]).unwrap());
        cs.add_ind(Ind::named(&cat, "S", &["x"], "R", &["a"]).unwrap());
        (BlockchainDb::new(cat, cs), r, s)
    }

    #[test]
    fn build_and_check_current_state() {
        let (mut bc, r, s) = simple_setup();
        bc.insert_current(r, tuple![1i64, 10i64]).unwrap();
        bc.insert_current(s, tuple![1i64]).unwrap();
        bc.check_current_state().unwrap();
        // Violate the IND.
        bc.insert_current(s, tuple![99i64]).unwrap();
        assert!(matches!(
            bc.check_current_state(),
            Err(CoreError::InconsistentCurrentState { .. })
        ));
    }

    #[test]
    fn transactions_get_sequential_ids() {
        let (mut bc, r, _) = simple_setup();
        let t0 = bc.add_transaction("T0", [(r, tuple![1i64, 1i64])]).unwrap();
        let t1 = bc.add_transaction("T1", [(r, tuple![2i64, 2i64])]).unwrap();
        assert_eq!(t0, TxId(0));
        assert_eq!(t1, TxId(1));
        assert_eq!(bc.pending_count(), 2);
        assert_eq!(bc.transaction(t1).name, "T1");
        assert_eq!(bc.database().tx_count(), 2);
    }

    #[test]
    fn conflicting_transactions_are_accepted_into_t() {
        let (mut bc, r, _) = simple_setup();
        bc.add_transaction("T0", [(r, tuple![1i64, 1i64])]).unwrap();
        // Conflicts with T0 on the key — still a legal pending transaction.
        bc.add_transaction("T1", [(r, tuple![1i64, 2i64])]).unwrap();
        assert_eq!(bc.pending_count(), 2);
    }

    #[test]
    fn typecheck_on_add_transaction() {
        let (mut bc, r, _) = simple_setup();
        let err = bc.add_transaction("bad", [(r, tuple!["oops", 1i64])]);
        assert!(err.is_err());
        // Nothing staged.
        assert_eq!(bc.pending_count(), 0);
        assert_eq!(bc.database().total_rows(), 0);
    }

    #[test]
    fn remove_transaction_matches_fresh_issue_order() {
        let (mut bc, r, s) = simple_setup();
        bc.insert_current(r, tuple![1i64, 10i64]).unwrap();
        bc.add_transaction("T0", [(r, tuple![2i64, 20i64])]).unwrap();
        bc.add_transaction("T1", [(s, tuple![2i64])]).unwrap();
        bc.add_transaction("T2", [(r, tuple![3i64, 30i64])]).unwrap();

        let removed = bc.remove_transaction(TxId(1));
        assert_eq!(removed.name, "T1");
        assert_eq!(bc.pending_count(), 2);
        assert_eq!(bc.database().tx_count(), 2);
        assert_eq!(bc.transaction(TxId(1)).name, "T2");

        // Byte-for-byte the same stores as issuing only the survivors.
        let (mut fresh, r2, _) = simple_setup();
        fresh.insert_current(r2, tuple![1i64, 10i64]).unwrap();
        fresh
            .add_transaction("T0", [(r2, tuple![2i64, 20i64])])
            .unwrap();
        fresh
            .add_transaction("T2", [(r2, tuple![3i64, 30i64])])
            .unwrap();
        for (rel, _) in bc.database().catalog().iter() {
            let a: Vec<_> = bc.database().relation(rel).scan_all().collect();
            let b: Vec<_> = fresh.database().relation(rel).scan_all().collect();
            assert_eq!(a.len(), b.len());
            for ((_, ra), (_, rb)) in a.iter().zip(&b) {
                assert_eq!(ra.tuple, rb.tuple);
                assert_eq!(ra.source, rb.source);
            }
        }
    }

    #[test]
    fn remove_transaction_with_empty_tuple_set() {
        let (mut bc, r, _) = simple_setup();
        bc.add_transaction("T0", [(r, tuple![1i64, 1i64])]).unwrap();
        bc.add_transaction("empty", std::iter::empty()).unwrap();
        assert_eq!(bc.database().tx_count(), 1);
        let removed = bc.remove_transaction(TxId(1));
        assert_eq!(removed.name, "empty");
        assert_eq!(bc.pending_count(), 1);
        assert_eq!(bc.database().tx_count(), 1);
    }

    fn assert_same_stores(a: &BlockchainDb, b: &BlockchainDb) {
        assert_eq!(a.pending_count(), b.pending_count());
        for (pa, pb) in a.pending().iter().zip(b.pending()) {
            assert_eq!(pa.name, pb.name);
            assert_eq!(pa.tuples, pb.tuples);
        }
        assert_eq!(a.database().tx_count(), b.database().tx_count());
        for (rel, _) in a.database().catalog().iter() {
            let ra: Vec<_> = a.database().relation(rel).scan_all().collect();
            let rb: Vec<_> = b.database().relation(rel).scan_all().collect();
            assert_eq!(ra.len(), rb.len(), "{rel:?} row counts differ");
            for ((_, x), (_, y)) in ra.iter().zip(&rb) {
                assert_eq!(x.tuple, y.tuple);
                assert_eq!(x.source, y.source);
            }
        }
    }

    #[test]
    fn promote_transactions_matches_accept_transactions() {
        let (mut bc, r, s) = simple_setup();
        bc.insert_current(r, tuple![1i64, 10i64]).unwrap();
        let t0 = bc.add_transaction("T0", [(r, tuple![2i64, 20i64])]).unwrap();
        bc.add_transaction("T1", [(s, tuple![2i64])]).unwrap();
        let t2 = bc
            .add_transaction("T2", [(r, tuple![3i64, 30i64]), (s, tuple![3i64])])
            .unwrap();

        let (oracle, _) = bc.accept_transactions(&[t0, t2]).unwrap();
        let added = bc.promote_transactions(&[t0, t2]).unwrap();
        assert_eq!(
            added,
            vec![
                (r, tuple![2i64, 20i64]),
                (r, tuple![3i64, 30i64]),
                (s, tuple![3i64]),
            ]
        );
        assert_same_stores(&bc, &oracle);
        bc.check_current_state().unwrap();
    }

    #[test]
    fn promote_skips_tuples_already_in_base() {
        let (mut bc, r, _) = simple_setup();
        bc.insert_current(r, tuple![1i64, 10i64]).unwrap();
        let t0 = bc.add_transaction("T0", [(r, tuple![1i64, 10i64])]).unwrap();
        let added = bc.promote_transaction(t0).unwrap();
        assert!(added.is_empty());
        assert_eq!(bc.database().relation(r).base_row_count(), 1);
        assert_eq!(bc.pending_count(), 0);
    }

    #[test]
    fn remove_transactions_batch_matches_sequential() {
        let build = |setup: &mut BlockchainDb, r: RelationId, s: RelationId| {
            setup.insert_current(r, tuple![1i64, 10i64]).unwrap();
            for i in 0..5i64 {
                setup
                    .add_transaction(format!("T{i}"), [(r, tuple![i + 2, i]), (s, tuple![1i64])])
                    .unwrap();
            }
        };
        let (mut batch, r, s) = simple_setup();
        build(&mut batch, r, s);
        let (mut seq, r2, s2) = simple_setup();
        build(&mut seq, r2, s2);

        let removed = batch.remove_transactions(&[TxId(3), TxId(1)]);
        assert_eq!(removed.len(), 2);
        assert_eq!(removed[0].name, "T1");
        assert_eq!(removed[1].name, "T3");
        // Sequential removal must go high-to-low to keep ids stable.
        seq.remove_transaction(TxId(3));
        seq.remove_transaction(TxId(1));
        assert_same_stores(&batch, &seq);
    }

    #[test]
    fn insert_transaction_at_matches_cold_build() {
        let (mut bc, r, s) = simple_setup();
        bc.insert_current(r, tuple![1i64, 10i64]).unwrap();
        bc.add_transaction("T0", [(r, tuple![2i64, 20i64])]).unwrap();
        bc.add_transaction("T2", [(s, tuple![2i64])]).unwrap();
        bc.insert_transaction_at(TxId(1), "T1", [(r, tuple![3i64, 30i64])])
            .unwrap();

        let (mut cold, rc, sc) = simple_setup();
        cold.insert_current(rc, tuple![1i64, 10i64]).unwrap();
        cold.add_transaction("T0", [(rc, tuple![2i64, 20i64])]).unwrap();
        cold.add_transaction("T1", [(rc, tuple![3i64, 30i64])]).unwrap();
        cold.add_transaction("T2", [(sc, tuple![2i64])]).unwrap();
        assert_same_stores(&bc, &cold);
    }

    #[test]
    fn insert_transaction_at_past_store_counter() {
        // Trailing empty transaction: the store counter lags the pending
        // list, and an insert at the tail must still match a cold build.
        let (mut bc, r, _) = simple_setup();
        bc.add_transaction("T0", [(r, tuple![1i64, 1i64])]).unwrap();
        bc.add_transaction("empty", std::iter::empty()).unwrap();
        assert_eq!(bc.database().tx_count(), 1);
        bc.insert_transaction_at(TxId(2), "T2", [(r, tuple![2i64, 2i64])])
            .unwrap();

        let (mut cold, rc, _) = simple_setup();
        cold.add_transaction("T0", [(rc, tuple![1i64, 1i64])]).unwrap();
        cold.add_transaction("empty", std::iter::empty()).unwrap();
        cold.add_transaction("T2", [(rc, tuple![2i64, 2i64])]).unwrap();
        assert_same_stores(&bc, &cold);
    }

    #[test]
    fn accept_transactions_folds_into_base() {
        let (mut bc, r, s) = simple_setup();
        bc.insert_current(r, tuple![1i64, 10i64]).unwrap();
        let t0 = bc
            .add_transaction("T0", [(r, tuple![2i64, 20i64])])
            .unwrap();
        let _t1 = bc.add_transaction("T1", [(s, tuple![2i64])]).unwrap();
        let (next, mapping) = bc.accept_transactions(&[t0]).unwrap();
        assert_eq!(next.pending_count(), 1);
        assert_eq!(next.transaction(TxId(0)).name, "T1");
        assert_eq!(mapping, vec![(TxId(1), TxId(0))]);
        // The accepted tuple is now base.
        let base = next.database().base_mask();
        assert!(next
            .database()
            .relation(r)
            .contains(&tuple![2i64, 20i64], &base));
        next.check_current_state().unwrap();
    }
}
