//! Session-oriented DCSat solving: one handle, many constraints.
//!
//! The paper's steady-state design (§6.3) builds the precomputed structures
//! — inclusion status, `GfTd`, `Gind` — once per chain snapshot and reuses
//! them across denial constraints. The [`Solver`] is that design as an API:
//! it owns the [`BlockchainDb`], the epoch-tagged [`Precomputed`], a
//! base-verdict cache over `R`, and the check options, and exposes
//!
//! * [`Solver::check`] — one governed constraint check amortizing the
//!   session state, and
//! * [`Solver::check_batch`] — the multi-constraint engine: one shared
//!   governor budget, refined `Gq,ind` partitions computed once per
//!   distinct Θq, and complete per-component clique enumerations cached and
//!   replayed across every constraint whose partition touches the same
//!   component members.
//!
//! # Lifecycle and epoch invalidation
//!
//! The solver tracks the chain through its own mutators:
//! [`add_transaction`](Solver::add_transaction) and
//! [`remove_transaction`](Solver::remove_transaction) update `Precomputed`
//! incrementally and keep the base-verdict cache (the base state `R` did
//! not change). Base-state changes come in two flavours: the **batch
//! delta mutators** ([`promote_transactions`](Solver::promote_transactions),
//! [`append_base_rows`](Solver::append_base_rows),
//! [`remove_base_rows`](Solver::remove_base_rows),
//! [`insert_transaction_at`](Solver::insert_transaction_at)) apply a mined
//! block or reorg step in place — state reuse, no rebuild — dropping the
//! base-verdict cache, with the caller advancing the epoch once per chain
//! event via [`advance_epoch`](Solver::advance_epoch); and
//! [`replace_db`](Solver::replace_db) — the rebuild oracle — reconstructs
//! everything from scratch and advances the epoch itself.
//! Direct mutation through [`db_mut`](Solver::db_mut) marks the session
//! stale, and the next check transparently rebuilds. Batch reuse state
//! (partitions, cliques) never outlives a single `check_batch` call by
//! default, so it needs no invalidation at all.
//!
//! # Shared enumeration cache
//!
//! Attaching a [`SharedEnumCache`] (via
//! [`SolverBuilder::shared_cache`] or [`Solver::set_shared_cache`])
//! replaces the per-call reuse state with a long-lived, `Arc`-shared store:
//! partitions, complete clique enumerations, and definite verdicts then
//! survive across checks, batches, and sibling sessions (e.g. the read
//! forks of a parallel round executor, see
//! [`fork_for_read`](Solver::fork_for_read)). Every mutator above reports
//! its delta to the cache so only the entries the delta actually touched
//! are dropped — the soundness mapping is tabulated in the
//! [`cache`](crate::cache) module docs. All sessions attached to one cache
//! must observe the same logical database state.

#![deny(missing_docs)]

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::Duration;

use crate::cache::SharedEnumCache;
use crate::db::{BlockchainDb, PendingTransaction};
use crate::dcsat::{
    check_governed, check_ungoverned, Algorithm, DcSatOptions, DcSatOutcome, DcSatStats,
    GovernedOutcome, PreparedConstraint, ReuseCtx, Verdict,
};
use crate::error::CoreError;
use crate::precompute::Precomputed;
use crate::witness::minimize_witness;
use bcdb_governor::{Budget, BudgetSpec, ExhaustionReason};
use bcdb_graph::CliqueStrategy;
use bcdb_query::DenialConstraint;
use bcdb_storage::{DbSnapshot, RelationId, StorageBackend, Tuple, TxId, WorldMask};
use bcdb_telemetry::probes;

/// Builds a [`Solver`], absorbing [`DcSatOptions`] and the soundness-
/// sensitive knobs that the plain options struct no longer exposes.
#[derive(Debug)]
pub struct SolverBuilder {
    db: BlockchainDb,
    opts: DcSatOptions,
    backend: Option<Box<dyn StorageBackend>>,
    starting_epoch: u64,
    shared_cache: Option<Arc<SharedEnumCache>>,
}

impl SolverBuilder {
    /// Replaces the whole option set (including the budget). Call before
    /// the targeted setters below: it overwrites everything, including the
    /// builder-only hint and fault-injection knobs.
    pub fn options(mut self, opts: DcSatOptions) -> Self {
        self.opts = opts;
        self
    }

    /// Forces an algorithm (default: [`Algorithm::Auto`]).
    pub fn algorithm(mut self, algorithm: Algorithm) -> Self {
        self.opts.algorithm = algorithm;
        self
    }

    /// Sets the maximal-clique enumeration strategy.
    pub fn clique_strategy(mut self, strategy: CliqueStrategy) -> Self {
        self.opts.clique_strategy = strategy;
        self
    }

    /// Toggles §6.3's monotone pre-check.
    pub fn precheck(mut self, on: bool) -> Self {
        self.opts.use_precheck = on;
        self
    }

    /// Toggles `OptDCSat`'s constant-covers pruning.
    pub fn covers(mut self, on: bool) -> Self {
        self.opts.use_covers = on;
        self
    }

    /// Toggles cross-component parallelism.
    pub fn parallel(mut self, on: bool) -> Self {
        self.opts.parallel = on;
        self
    }

    /// Toggles intra-component Bron–Kerbosch splitting (two-level
    /// scheduler).
    pub fn parallel_intra(mut self, on: bool) -> Self {
        self.opts.parallel_intra = on;
        self
    }

    /// Toggles delta-seeded world evaluation.
    pub fn delta(mut self, on: bool) -> Self {
        self.opts.use_delta = on;
        self
    }

    /// Worker-thread count for the parallel paths (`None` asks the OS).
    pub fn threads(mut self, threads: Option<usize>) -> Self {
        self.opts.threads = threads;
        self
    }

    /// Resource limits for every check started by the solver.
    pub fn budget(mut self, budget: BudgetSpec) -> Self {
        self.opts.budget = budget;
        self
    }

    /// Supplies a fixed external verdict of the constraint over the base
    /// world `R` alone, overriding the solver's own epoch-tagged cache.
    ///
    /// **Soundness contract**: the hint must describe the *current* `R`
    /// for **every** constraint this solver will check, and every mutation
    /// of the base state invalidates it. A wrong hint produces wrong
    /// verdicts, not errors. Prefer letting the solver manage hints itself
    /// — this hook exists for callers with a pre-existing external cache
    /// and for tests.
    pub fn base_verdict_hint(mut self, hint: Option<bool>) -> Self {
        self.opts.base_verdict_hint = hint;
        self
    }

    /// Fault injection for robustness tests: any check whose component
    /// contains this pending-transaction index panics mid-enumeration.
    /// Not part of the stable API.
    #[doc(hidden)]
    pub fn fault_inject_panic_tx(mut self, tx: Option<usize>) -> Self {
        self.opts.fault_inject_panic_tx = tx;
        self
    }

    /// Attaches a [`StorageBackend`]: [`Solver::persist_snapshot`] writes
    /// epoch snapshots through it (without a backend the call is a no-op).
    pub fn backend(mut self, backend: Box<dyn StorageBackend>) -> Self {
        self.backend = Some(backend);
        self
    }

    /// Attaches a cross-session [`SharedEnumCache`]: partitions, complete
    /// clique enumerations, and definite verdicts are read from and seeded
    /// into the shared store instead of per-call reuse state (see the
    /// module docs for the sharing contract). Without this call the
    /// classic per-batch behaviour is unchanged.
    pub fn shared_cache(mut self, cache: Arc<SharedEnumCache>) -> Self {
        self.shared_cache = Some(cache);
        self
    }

    /// Seeds the session epoch (default 0). Recovery uses this to resume
    /// a session from a persisted snapshot at the epoch it captured, so
    /// replayed epoch-advancing events land on the same epoch numbers a
    /// never-crashed session would have.
    pub fn starting_epoch(mut self, epoch: u64) -> Self {
        self.starting_epoch = epoch;
        self
    }

    /// Builds the solver, constructing the steady-state [`Precomputed`]
    /// structures for the current pending set.
    pub fn build(self) -> Solver {
        let pre = Precomputed::build(&self.db);
        Solver {
            db: self.db,
            pre,
            opts: self.opts,
            epoch: self.starting_epoch,
            stale: false,
            base_cache: HashMap::new(),
            stats: SolverStats::default(),
            backend: self.backend,
            shared: self.shared_cache,
        }
    }
}

/// Session counters, cumulative since [`SolverBuilder::build`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SolverStats {
    /// Single-constraint checks issued ([`Solver::check`] and
    /// [`Solver::check_with_budget`]).
    pub checks: u64,
    /// [`Solver::check_batch`] calls.
    pub batches: u64,
    /// Constraints submitted across all batches.
    pub batch_constraints: u64,
    /// Base-world evaluations actually performed for the hint cache.
    pub base_probes: u64,
    /// Hint-cache lookups answered without re-evaluating `R`.
    pub base_cache_hits: u64,
    /// Checks that ran with a base-verdict hint supplied.
    pub base_hints_supplied: u64,
    /// Components whose cliques were enumerated fresh during batches (and,
    /// with a shared cache attached, single checks).
    pub components_enumerated: u64,
    /// Component checks answered by replaying a cached enumeration.
    pub components_reused: u64,
    /// Checks answered outright from the shared cache's generation-checked
    /// definite-verdict memo (always 0 without an attached
    /// [`SharedEnumCache`]).
    pub verdict_memo_hits: u64,
    /// Epoch advances since the session started — full rebuilds
    /// ([`Solver::replace_db`], staleness) plus incremental
    /// [`Solver::advance_epoch`] calls. Each one dropped the base-verdict
    /// cache.
    pub epoch_invalidations: u64,
}

/// The result of one [`Solver::check_batch`] call.
#[derive(Debug)]
pub struct BatchOutcome {
    /// Per-constraint results, in submission order. A constraint whose
    /// check panicked is reported as [`Verdict::Unknown`] with
    /// [`ExhaustionReason::WorkerPanicked`]; the rest of the batch is
    /// unaffected.
    pub outcomes: Vec<Result<GovernedOutcome, CoreError>>,
    /// Components whose cliques were enumerated fresh in this batch.
    pub components_enumerated: u64,
    /// Component checks answered by replaying a cached enumeration.
    pub components_reused: u64,
    /// Wall-clock time for the whole batch.
    pub elapsed: Duration,
}

impl BatchOutcome {
    /// Clique-enumeration work sharing: total component checks divided by
    /// fresh enumerations. `1.0` means no sharing happened (every component
    /// was enumerated exactly once — including the degenerate empty batch);
    /// `N` means each enumeration served `N` constraints on average.
    pub fn clique_reuse_ratio(&self) -> f64 {
        let total = self.components_enumerated + self.components_reused;
        if total == 0 {
            return 1.0;
        }
        total as f64 / self.components_enumerated.max(1) as f64
    }

    /// The verdicts, in submission order; configuration errors surface as
    /// `Err`.
    pub fn verdicts(&self) -> Vec<Result<&Verdict, &CoreError>> {
        self.outcomes
            .iter()
            .map(|r| r.as_ref().map(|o| &o.verdict))
            .collect()
    }
}

/// A DCSat session over one blockchain database (see the module docs).
///
/// The solver **owns** its [`BlockchainDb`]; clone the database first if the
/// caller needs an independent copy, or take it back with
/// [`into_db`](Solver::into_db).
#[derive(Debug)]
pub struct Solver {
    db: BlockchainDb,
    pre: Precomputed,
    opts: DcSatOptions,
    epoch: u64,
    stale: bool,
    /// Verdict of each constraint (keyed by its display form) over the base
    /// world `R` alone. Valid for the current epoch only: cleared on every
    /// rebuild.
    base_cache: HashMap<String, bool>,
    stats: SolverStats,
    /// Destination for epoch snapshots, if persistence is wanted.
    backend: Option<Box<dyn StorageBackend>>,
    /// Cross-session shared enumeration cache, when attached.
    shared: Option<Arc<SharedEnumCache>>,
}

impl Solver {
    /// Starts building a solver session over `db`.
    pub fn builder(db: BlockchainDb) -> SolverBuilder {
        SolverBuilder {
            db,
            opts: DcSatOptions::default(),
            backend: None,
            starting_epoch: 0,
            shared_cache: None,
        }
    }

    /// Checks one constraint under a fresh budget from the session options.
    pub fn check(&mut self, dc: &DenialConstraint) -> Result<GovernedOutcome, CoreError> {
        let budget = self.opts.budget.start();
        self.check_with_budget(dc, &budget)
    }

    /// Checks one constraint drawing from an externally-started [`Budget`]
    /// — the caller keeps a handle and can [`Budget::cancel`] from another
    /// thread (the session's own budget spec is ignored for this call).
    pub fn check_with_budget(
        &mut self,
        dc: &DenialConstraint,
        budget: &Budget,
    ) -> Result<GovernedOutcome, CoreError> {
        self.refresh();
        self.stats.checks += 1;
        let memo = self.memo_key(dc);
        if let Some(outcome) = self.memo_lookup(&memo, budget) {
            return Ok(outcome);
        }
        let opts = self.opts_with_hint(dc);
        let reuse = self
            .shared
            .as_ref()
            .map(|cache| ReuseCtx::with_shared(Arc::clone(cache)));
        let result = check_governed(&mut self.db, &self.pre, dc, &opts, budget, reuse.as_ref());
        if let Some(ctx) = &reuse {
            self.stats.components_reused += ctx.hits();
            self.stats.components_enumerated += ctx.misses();
        }
        if let Ok(outcome) = &result {
            self.memo_store(memo, &outcome.verdict);
        }
        result
    }

    /// Checks one constraint to completion, ignoring the session budget
    /// (the classic ungoverned semantics: a definite outcome or an error).
    pub fn check_ungoverned(&mut self, dc: &DenialConstraint) -> Result<DcSatOutcome, CoreError> {
        self.refresh();
        self.stats.checks += 1;
        let opts = self.opts_with_hint(dc);
        check_ungoverned(&mut self.db, &self.pre, dc, &opts)
    }

    /// Checks a set of constraints against the current snapshot, sharing
    /// one governor budget, the refined `Gq,ind` partitions, and complete
    /// per-component clique enumerations across the whole batch.
    ///
    /// Verdict agreement: every definite verdict equals what a sequential
    /// [`check`](Solver::check) of the same constraint would produce. Under
    /// a tight shared budget, later constraints may come back
    /// [`Verdict::Unknown`] where fresh-budget sequential checks would have
    /// finished — never the reverse flip of a definite answer. A panic
    /// while checking one constraint is contained to that constraint.
    pub fn check_batch(&mut self, dcs: &[DenialConstraint]) -> BatchOutcome {
        self.check_batch_with_budget(dcs, self.opts.budget)
    }

    /// [`check_batch`](Solver::check_batch) under an explicit budget
    /// envelope instead of the session's own spec. This is the serving
    /// layer's entry point: a multi-tenant caller runs each tenant's
    /// constraint set as one batch governed by that tenant's fair-share
    /// envelope, so exhaustion degrades only that batch to
    /// [`Verdict::Unknown`] and never touches another tenant's budget.
    pub fn check_batch_with_budget(
        &mut self,
        dcs: &[DenialConstraint],
        spec: BudgetSpec,
    ) -> BatchOutcome {
        self.refresh();
        self.stats.batches += 1;
        self.stats.batch_constraints += dcs.len() as u64;
        probes::CORE_SOLVER_BATCH_CONSTRAINTS.add(dcs.len() as u64);
        let budget = spec.start();
        let reuse = match &self.shared {
            Some(cache) => ReuseCtx::with_shared(Arc::clone(cache)),
            None => ReuseCtx::new(),
        };
        let mut outcomes = Vec::with_capacity(dcs.len());
        for dc in dcs {
            // Tags the work units scheduled for this constraint so stolen
            // units stay attributable to their batch position.
            reuse.begin_constraint();
            let memo = self.memo_key(dc);
            if let Some(outcome) = self.memo_lookup(&memo, &budget) {
                outcomes.push(Ok(outcome));
                continue;
            }
            let opts = self.opts_with_hint(dc);
            let db = &mut self.db;
            let pre = &self.pre;
            let result = catch_unwind(AssertUnwindSafe(|| {
                check_governed(db, pre, dc, &opts, &budget, Some(&reuse))
            }));
            let outcome = match result {
                Ok(outcome) => outcome,
                Err(payload) => Ok(GovernedOutcome {
                    verdict: Verdict::Unknown(ExhaustionReason::WorkerPanicked {
                        component: 0,
                        message: crate::dcsat::opt::payload_message(payload.as_ref()),
                    }),
                    stats: DcSatStats {
                        algorithm: "solver/panicked",
                        ..DcSatStats::default()
                    },
                    degraded_to: None,
                    elapsed: budget.elapsed(),
                }),
            };
            if let Ok(out) = &outcome {
                self.memo_store(memo, &out.verdict);
            }
            outcomes.push(outcome);
        }
        let (reused, enumerated) = (reuse.hits(), reuse.misses());
        self.stats.components_enumerated += enumerated;
        self.stats.components_reused += reused;
        BatchOutcome {
            outcomes,
            components_enumerated: enumerated,
            components_reused: reused,
            elapsed: budget.elapsed(),
        }
    }

    /// Shrinks a violation witness to an inclusion-minimal possible world
    /// still satisfying the query (see [`minimize_witness`]).
    pub fn minimize(&mut self, dc: &DenialConstraint, witness: &WorldMask) -> WorldMask {
        self.refresh();
        let pc = PreparedConstraint::prepare(self.db.database_mut(), dc);
        minimize_witness(&self.db, &self.pre, &pc, witness)
    }

    /// Adds a pending transaction, updating the steady-state structures
    /// incrementally. The base state is untouched, so the base-verdict
    /// cache stays valid and the epoch does not advance.
    pub fn add_transaction(
        &mut self,
        name: impl Into<String>,
        tuples: impl IntoIterator<Item = (RelationId, Tuple)>,
    ) -> Result<TxId, CoreError> {
        self.refresh();
        let tx = self.db.add_transaction(name, tuples)?;
        self.pre.note_transaction_added(&self.db, tx);
        if let Some(cache) = &self.shared {
            cache.note_pending_appended();
        }
        Ok(tx)
    }

    /// Removes a pending transaction (eviction), updating the steady-state
    /// structures incrementally. Like
    /// [`add_transaction`](Solver::add_transaction), this keeps the epoch
    /// and base cache.
    pub fn remove_transaction(&mut self, tx: TxId) -> PendingTransaction {
        self.refresh();
        let removed = self.db.remove_transaction(tx);
        self.pre.note_transaction_removed(tx);
        if let Some(cache) = &self.shared {
            cache.note_pending_removed(&[tx.index()]);
        }
        removed
    }

    /// Batch eviction: removes several pending transactions in one store
    /// pass, updating the steady-state structures in one batch shrink
    /// (one graph rebuild and one `Gind` reconstruction for all of them).
    /// Keeps the epoch and base cache, like
    /// [`remove_transaction`](Solver::remove_transaction). Returns the
    /// removed transactions in ascending-id order.
    pub fn remove_transactions(&mut self, txs: &[TxId]) -> Vec<PendingTransaction> {
        self.refresh();
        let mut sorted = txs.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        let removed = self.db.remove_transactions(&sorted);
        self.pre.note_transactions_removed(&sorted);
        if let Some(cache) = &self.shared {
            let idxs: Vec<usize> = sorted.iter().map(|t| t.index()).collect();
            cache.note_pending_removed(&idxs);
        }
        removed
    }

    /// Promotes pending transactions into the current state in place — a
    /// mined block as a batch delta. Their tuples become base rows (in the
    /// order given), survivors renumber down, and the steady-state
    /// structures absorb both deltas without a rebuild. `R` changed, so
    /// the base-verdict cache is dropped; the caller advances the epoch
    /// once per chain event via [`advance_epoch`](Solver::advance_epoch).
    /// Returns the base rows actually added.
    pub fn promote_transactions(
        &mut self,
        txs: &[TxId],
    ) -> Result<Vec<(RelationId, Tuple)>, CoreError> {
        self.refresh();
        let added = self.db.promote_transactions(txs)?;
        let mut sorted = txs.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        self.pre.note_transactions_removed(&sorted);
        let flipped = self.pre.note_base_rows_added(&self.db, &added);
        if let Some(cache) = &self.shared {
            // Removal remap first (survivors renumber down), then the
            // viability flips, which are already in post-removal numbering.
            let idxs: Vec<usize> = sorted.iter().map(|t| t.index()).collect();
            cache.note_pending_removed(&idxs);
            cache.note_base_flips(&flipped);
        }
        self.base_cache.clear();
        Ok(added)
    }

    /// Promotes a single pending transaction; see
    /// [`promote_transactions`](Solver::promote_transactions).
    pub fn promote_transaction(&mut self, tx: TxId) -> Result<Vec<(RelationId, Tuple)>, CoreError> {
        self.promote_transactions(&[tx])
    }

    /// Appends rows to the current state `R` as one batch delta (the
    /// non-promoted part of a mined block, e.g. coinbase rows), updating
    /// the steady-state structures in place and dropping the base-verdict
    /// cache. Returns the rows actually added (existing base duplicates
    /// are skipped).
    pub fn append_base_rows(
        &mut self,
        rows: &[(RelationId, Tuple)],
    ) -> Result<Vec<(RelationId, Tuple)>, CoreError> {
        self.refresh();
        let added = self.db.append_base_rows(rows)?;
        let flipped = self.pre.note_base_rows_added(&self.db, &added);
        if let Some(cache) = &self.shared {
            cache.note_base_flips(&flipped);
        }
        self.base_cache.clear();
        Ok(added)
    }

    /// Retracts previously-appended base rows (reorg undo) as one batch
    /// delta, updating the steady-state structures in place and dropping
    /// the base-verdict cache. Every row must currently be a base row —
    /// pass back exactly what an earlier append reported as added.
    pub fn remove_base_rows(&mut self, rows: &[(RelationId, Tuple)]) -> usize {
        self.refresh();
        let removed = self.db.remove_base_rows(rows);
        let flipped = self.pre.note_base_rows_removed(&self.db, rows);
        if let Some(cache) = &self.shared {
            cache.note_base_flips(&flipped);
        }
        self.base_cache.clear();
        removed
    }

    /// Re-issues a pending transaction at slot `at` (reorg undo putting a
    /// de-mined transaction back at its original position), updating the
    /// steady-state structures incrementally. Pending-only, so the base
    /// cache survives; the surrounding chain event owns the epoch.
    pub fn insert_transaction_at(
        &mut self,
        at: TxId,
        name: impl Into<String>,
        tuples: impl IntoIterator<Item = (RelationId, Tuple)>,
    ) -> Result<(), CoreError> {
        self.refresh();
        self.db.insert_transaction_at(at, name, tuples)?;
        self.pre.note_transaction_inserted(&self.db, at);
        if let Some(cache) = &self.shared {
            cache.note_pending_inserted_at(at.index());
        }
        Ok(())
    }

    /// Advances the session epoch without rebuilding: the incremental
    /// mutators already left the steady-state structures current, so only
    /// the epoch tag and the base-verdict cache move. Callers applying an
    /// epoch-advancing chain event (mined block, reorg) as batch deltas
    /// call this exactly once per event, keeping epoch numbers aligned
    /// with what the [`replace_db`](Solver::replace_db) oracle would
    /// produce.
    pub fn advance_epoch(&mut self) {
        self.epoch += 1;
        self.stats.epoch_invalidations += 1;
        self.base_cache.clear();
        // The incremental mutators already applied their targeted
        // invalidations; the epoch tick itself only has to kill the
        // verdict memo, which any generation bump does.
        if let Some(cache) = &self.shared {
            cache.note_base_flips(&[]);
        }
    }

    /// Replaces the database wholesale — a mined block, a reorg, any base-
    /// state change. Rebuilds the precomputed structures, advances the
    /// epoch, and drops the base-verdict cache. This is the oracle path
    /// the batch delta mutators are checked against.
    pub fn replace_db(&mut self, db: BlockchainDb) {
        self.db = db;
        self.rebuild();
    }

    /// Read access to the underlying database.
    pub fn db(&self) -> &BlockchainDb {
        &self.db
    }

    /// Mutable access to the underlying database. Marks the session stale:
    /// the next check rebuilds the precomputed structures and advances the
    /// epoch (the solver cannot see *what* changed, so it assumes the base
    /// state did).
    pub fn db_mut(&mut self) -> &mut BlockchainDb {
        self.stale = true;
        &mut self.db
    }

    /// Consumes the session, returning the database.
    pub fn into_db(self) -> BlockchainDb {
        self.db
    }

    /// The steady-state structures for the current snapshot (rebuilding
    /// first if the session is stale).
    pub fn precomputed(&mut self) -> &Precomputed {
        self.refresh();
        &self.pre
    }

    /// The steady-state structures as of the last rebuild, without the
    /// staleness check. The session mutators keep them current; only
    /// [`db_mut`](Solver::db_mut) can leave them stale until the next
    /// check or [`refresh`](Solver::refresh).
    pub fn precomputed_ref(&self) -> &Precomputed {
        &self.pre
    }

    /// The session's invalidation epoch: how many times the precomputed
    /// structures were rebuilt from scratch (plus the builder's
    /// [`starting_epoch`](SolverBuilder::starting_epoch)).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Attaches (or replaces) the storage backend after construction.
    pub fn attach_backend(&mut self, backend: Box<dyn StorageBackend>) {
        self.backend = Some(backend);
    }

    /// The attached backend's kind tag, if one is attached.
    pub fn backend_kind(&self) -> Option<&'static str> {
        self.backend.as_deref().map(|b| b.kind())
    }

    /// Captures the session's full state as a [`DbSnapshot`] tagged with
    /// the current epoch.
    pub fn snapshot(&self) -> DbSnapshot {
        self.db.to_db_snapshot(self.epoch)
    }

    /// Persists the current state through the attached backend; returns
    /// the new snapshot id, or `None` if no backend is attached. The
    /// snapshot is fully durable before the id is returned, so callers
    /// can safely journal a boundary record naming it.
    pub fn persist_snapshot(&mut self) -> Result<Option<String>, CoreError> {
        let Some(backend) = self.backend.as_deref_mut() else {
            return Ok(None);
        };
        let snap = self.db.to_db_snapshot(self.epoch);
        Ok(Some(backend.persist_snapshot(&snap)?))
    }

    /// The session's current options.
    pub fn options(&self) -> &DcSatOptions {
        &self.opts
    }

    /// Replaces the session options (budget included). The builder-only
    /// hint and fault-injection knobs come along with the new options —
    /// values constructed outside the core crate always carry the safe
    /// defaults.
    pub fn set_options(&mut self, opts: DcSatOptions) {
        self.opts = opts;
    }

    /// Cumulative session counters.
    pub fn session_stats(&self) -> SolverStats {
        self.stats
    }

    /// Forces a rebuild now if the session is stale (normally implicit in
    /// every check).
    pub fn refresh(&mut self) {
        if self.stale {
            self.rebuild();
        }
    }

    fn rebuild(&mut self) {
        self.pre = Precomputed::build(&self.db);
        self.epoch += 1;
        self.stats.epoch_invalidations += 1;
        self.base_cache.clear();
        self.stale = false;
        // A rebuild means the session cannot name what changed — the only
        // sound shared-cache action is a full flush.
        if let Some(cache) = &self.shared {
            cache.invalidate_all();
        }
    }

    /// The shared cache attached to this session, if any.
    pub fn shared_cache(&self) -> Option<&Arc<SharedEnumCache>> {
        self.shared.as_ref()
    }

    /// Attaches (or detaches) a cross-session shared cache after
    /// construction. See [`SolverBuilder::shared_cache`] for the sharing
    /// contract; attaching a cache that older sessions seeded against a
    /// *different* database state is unsound — when in doubt, attach a
    /// fresh cache or call [`SharedEnumCache::invalidate_all`] first.
    pub fn set_shared_cache(&mut self, cache: Option<Arc<SharedEnumCache>>) {
        self.shared = cache;
    }

    /// A read-only fork for parallel round executors: an independent
    /// session over a clone of the database and precomputed structures,
    /// sharing the attached [`SharedEnumCache`] (if any) with its parent.
    /// The fork carries no storage backend and starts with zeroed session
    /// counters, so the caller can absorb its per-round stat deltas back
    /// into the parent with [`absorb_fork_stats`](Solver::absorb_fork_stats).
    ///
    /// Checks are logically read-only (their `&mut` is lazy index
    /// building), so a fork's verdicts equal the parent's for the same
    /// constraints — the basis of the deterministic parallel round
    /// executor in `bcdb-server`.
    pub fn fork_for_read(&mut self) -> Solver {
        self.refresh();
        Solver {
            db: self.db.clone(),
            pre: self.pre.clone(),
            opts: self.opts.clone(),
            epoch: self.epoch,
            stale: false,
            base_cache: self.base_cache.clone(),
            stats: SolverStats::default(),
            backend: None,
            shared: self.shared.clone(),
        }
    }

    /// Adds a fork's session counters into this session's, so work done on
    /// [`fork_for_read`](Solver::fork_for_read) forks stays visible in the
    /// parent's [`session_stats`](Solver::session_stats).
    pub fn absorb_fork_stats(&mut self, delta: &SolverStats) {
        self.stats.checks += delta.checks;
        self.stats.batches += delta.batches;
        self.stats.batch_constraints += delta.batch_constraints;
        self.stats.base_probes += delta.base_probes;
        self.stats.base_cache_hits += delta.base_cache_hits;
        self.stats.base_hints_supplied += delta.base_hints_supplied;
        self.stats.components_enumerated += delta.components_enumerated;
        self.stats.components_reused += delta.components_reused;
        self.stats.verdict_memo_hits += delta.verdict_memo_hits;
        self.stats.epoch_invalidations += delta.epoch_invalidations;
    }

    /// The shared-memo coordinates for `dc`: its canonical shape (alpha-
    /// renamed duplicates across tenants share one key) and the cache
    /// generation observed *before* the check runs (so a concurrent
    /// mutation between lookup and store can never stamp a stale proof).
    /// `None` without an attached cache.
    fn memo_key(&self, dc: &DenialConstraint) -> Option<(String, u64)> {
        let cache = self.shared.as_ref()?;
        Some((
            dc.canonical_shape(self.db.database().catalog()),
            cache.generation(),
        ))
    }

    /// Serves a memoized definite verdict for the memo coordinates, if the
    /// shared cache holds one proven under the same generation.
    fn memo_lookup(
        &mut self,
        memo: &Option<(String, u64)>,
        budget: &Budget,
    ) -> Option<GovernedOutcome> {
        let (key, gen) = memo.as_ref()?;
        let verdict = self.shared.as_ref()?.lookup_verdict(key, *gen)?;
        self.stats.verdict_memo_hits += 1;
        probes::CORE_SOLVER_VERDICT_MEMO.incr();
        Some(GovernedOutcome {
            verdict,
            stats: DcSatStats {
                algorithm: "solver/memo",
                ..DcSatStats::default()
            },
            degraded_to: None,
            elapsed: budget.elapsed(),
        })
    }

    /// Publishes a freshly-proven verdict under the pre-check generation;
    /// `Unknown` verdicts and stale generations are dropped by the cache.
    fn memo_store(&self, memo: Option<(String, u64)>, verdict: &Verdict) {
        if let (Some(cache), Some((key, gen))) = (&self.shared, memo) {
            cache.store_verdict(key, gen, verdict);
        }
    }

    /// The session options with a base-verdict hint filled in from the
    /// epoch-tagged cache (conjunctive constraints only — the aggregate
    /// paths never consult the hint). A builder-supplied hint wins.
    fn opts_with_hint(&mut self, dc: &DenialConstraint) -> DcSatOptions {
        let mut opts = self.opts.clone();
        if opts.base_verdict_hint.is_none() {
            opts.base_verdict_hint = self.base_hint(dc);
        } else {
            self.stats.base_hints_supplied += 1;
        }
        opts
    }

    /// The constraint's verdict over the base world `R` alone, from the
    /// epoch-tagged cache, evaluating (under the session budget) at most
    /// once per constraint per epoch. `None` when the constraint is not
    /// conjunctive or the probe itself ran out of budget or panicked.
    fn base_hint(&mut self, dc: &DenialConstraint) -> Option<bool> {
        if !matches!(dc, DenialConstraint::Conjunctive(_)) {
            return None;
        }
        let key = dc.display(self.db.database().catalog()).to_string();
        if let Some(&verdict) = self.base_cache.get(&key) {
            self.stats.base_cache_hits += 1;
            self.stats.base_hints_supplied += 1;
            return Some(verdict);
        }
        let pc = PreparedConstraint::prepare(self.db.database_mut(), dc);
        let budget = self.opts.budget.start();
        let db = self.db.database();
        let verdict = catch_unwind(AssertUnwindSafe(|| {
            pc.holds_governed(db, &db.base_mask(), &budget)
        }))
        .ok()?
        .ok()?;
        self.stats.base_probes += 1;
        self.stats.base_hints_supplied += 1;
        self.base_cache.insert(key, verdict);
        Some(verdict)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bcdb_storage::{tuple, Catalog, ConstraintSet, Fd, Ind, RelationSchema, ValueType};

    fn setup() -> BlockchainDb {
        let mut cat = Catalog::new();
        cat.add(RelationSchema::new("R", [("a", ValueType::Int), ("b", ValueType::Int)]).unwrap())
            .unwrap();
        cat.add(RelationSchema::new("S", [("x", ValueType::Int)]).unwrap())
            .unwrap();
        let mut cs = ConstraintSet::new();
        cs.add_fd(Fd::named_key(&cat, "R", &["a"]).unwrap());
        cs.add_ind(Ind::named(&cat, "S", &["x"], "R", &["a"]).unwrap());
        BlockchainDb::new(cat, cs)
    }

    /// A mined block applied as batch deltas leaves the solver with the
    /// same database, precomputed judgements, and epoch as the
    /// `replace_db` rebuild oracle.
    #[test]
    fn delta_mined_block_matches_replace_db_oracle() {
        let mut bc = setup();
        let r = bc.database().catalog().resolve("R").unwrap();
        let s = bc.database().catalog().resolve("S").unwrap();
        bc.insert_current(r, tuple![1i64, 10i64]).unwrap();
        bc.add_transaction("T0", [(r, tuple![5i64, 50i64])]).unwrap();
        bc.add_transaction("T1", [(s, tuple![5i64])]).unwrap();
        bc.add_transaction("T2", [(r, tuple![5i64, 99i64])]).unwrap();

        let mut incr = Solver::builder(bc.clone()).build();
        let mut oracle = Solver::builder(bc.clone()).build();

        // Mine T0: incremental promote + epoch advance vs. full rebuild of
        // the equivalent accepted database.
        incr.promote_transactions(&[TxId(0)]).unwrap();
        incr.advance_epoch();
        let (next, _) = bc.accept_transactions(&[TxId(0)]).unwrap();
        oracle.replace_db(next);

        assert_eq!(incr.epoch(), oracle.epoch());
        assert_eq!(
            incr.precomputed_ref().viable,
            oracle.precomputed_ref().viable
        );
        assert_eq!(
            incr.precomputed_ref().includable,
            oracle.precomputed_ref().includable
        );
        assert_eq!(incr.db().pending_count(), oracle.db().pending_count());
        for (rel, _) in incr.db().database().catalog().iter() {
            let a: Vec<_> = incr.db().database().relation(rel).scan_all().collect();
            let b: Vec<_> = oracle.db().database().relation(rel).scan_all().collect();
            assert_eq!(a.len(), b.len());
            for ((_, x), (_, y)) in a.iter().zip(&b) {
                assert_eq!(x.tuple, y.tuple);
                assert_eq!(x.source, y.source);
            }
        }
    }

    /// Undoing a mined block with the retraction mutators restores the
    /// pre-block state exactly.
    #[test]
    fn delta_undo_restores_pre_block_state() {
        let mut bc = setup();
        let r = bc.database().catalog().resolve("R").unwrap();
        let s = bc.database().catalog().resolve("S").unwrap();
        bc.insert_current(r, tuple![1i64, 10i64]).unwrap();
        bc.add_transaction("T0", [(r, tuple![5i64, 50i64])]).unwrap();
        bc.add_transaction("T1", [(s, tuple![5i64])]).unwrap();

        let mut solver = Solver::builder(bc).build();
        let before_viable = solver.precomputed_ref().viable.clone();
        let before_incl = solver.precomputed_ref().includable.clone();
        let mined = solver.db().transaction(TxId(0)).clone();
        let added = solver.promote_transactions(&[TxId(0)]).unwrap();
        solver.advance_epoch();

        // Reorg the block out: retract its rows, re-issue the transaction
        // at its original slot.
        solver.remove_base_rows(&added);
        solver
            .insert_transaction_at(TxId(0), mined.name.clone(), mined.tuples.clone())
            .unwrap();
        solver.advance_epoch();

        assert_eq!(solver.precomputed_ref().viable, before_viable);
        assert_eq!(solver.precomputed_ref().includable, before_incl);
        assert_eq!(solver.db().transaction(TxId(0)).name, "T0");
        assert_eq!(solver.epoch(), 2);
    }
}
