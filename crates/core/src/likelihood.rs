//! Likelihood-weighted possible worlds (the paper's future-work item:
//! "denial constraint satisfaction when weighting possible worlds by
//! learning an estimation of their actual likelihood").
//!
//! [`crate::dcsat()`] answers the *possibilistic* question — can the bad
//! outcome happen at all? This module answers the *probabilistic* one —
//! roughly how likely is it? Each pending transaction gets an acceptance
//! probability (an [`AcceptanceModel`]; e.g. derived from fee rates, since
//! miners prefer high-fee transactions), worlds are drawn from a simple
//! generative consensus model, and the violation probability is estimated
//! by Monte Carlo.
//!
//! The generative model: process the pending transactions in a uniformly
//! random order (miners see and pick transactions in effectively arbitrary
//! order); each transaction that is *appendable* to the world built so far
//! is accepted with its model probability. This respects all integrity
//! constraints by construction — every sample is a genuine possible world —
//! and first-come-wins between conflicting transactions, like real mining.

use crate::db::BlockchainDb;
use crate::dcsat::PreparedConstraint;
use crate::precompute::Precomputed;
use crate::worlds::can_append;
use bcdb_storage::{TxId, WorldMask};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Assigns each pending transaction an acceptance probability in `[0, 1]`.
pub trait AcceptanceModel {
    /// The probability that `tx` is accepted when a miner considers it.
    fn probability(&self, tx: TxId) -> f64;
}

/// Every transaction accepted with the same probability.
#[derive(Clone, Copy, Debug)]
pub struct UniformAcceptance(pub f64);

impl AcceptanceModel for UniformAcceptance {
    fn probability(&self, _tx: TxId) -> f64 {
        self.0.clamp(0.0, 1.0)
    }
}

/// Explicit per-transaction probabilities (e.g. learned from fee rates —
/// see `bcdb_chain::feerate_probabilities`).
#[derive(Clone, Debug)]
pub struct PerTxAcceptance(pub Vec<f64>);

impl AcceptanceModel for PerTxAcceptance {
    fn probability(&self, tx: TxId) -> f64 {
        self.0
            .get(tx.index())
            .copied()
            .unwrap_or(0.5)
            .clamp(0.0, 1.0)
    }
}

/// A Monte Carlo risk estimate.
#[derive(Clone, Debug, PartialEq)]
pub struct RiskEstimate {
    /// Fraction of sampled future worlds in which the query held.
    pub violation_probability: f64,
    /// Number of sampled worlds.
    pub samples: usize,
    /// Samples in which the query held.
    pub violations: usize,
    /// Binomial standard error of the estimate.
    pub std_error: f64,
    /// One violating sampled world, if any was seen.
    pub example_violation: Option<WorldMask>,
}

/// Estimates the probability that the denial constraint's query holds in a
/// future world drawn from the generative model. Deterministic given
/// `seed`.
///
/// If [`crate::dcsat()`] says the constraint is satisfied, the true
/// probability is exactly 0 (no possible world violates) — this estimator
/// will agree. The converse does not hold: a violable constraint can still
/// have negligible probability, which is precisely the refinement this
/// analysis adds.
pub fn estimate_violation_risk(
    bcdb: &BlockchainDb,
    pre: &Precomputed,
    pc: &PreparedConstraint,
    model: &dyn AcceptanceModel,
    samples: usize,
    seed: u64,
) -> RiskEstimate {
    assert!(samples > 0, "at least one sample required");
    let db = bcdb.database();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut order: Vec<TxId> = bcdb.tx_ids().collect();
    let mut violations = 0usize;
    let mut example = None;
    for _ in 0..samples {
        order.shuffle(&mut rng);
        let mut world = db.base_mask();
        for &tx in &order {
            let p = model.probability(tx);
            // Draw first so the rng stream is independent of appendability
            // (keeps estimates comparable across models).
            let accept = rng.random_bool(p.clamp(0.0, 1.0));
            if accept && can_append(bcdb, pre, &world, tx) {
                world.activate(tx);
            }
        }
        if pc.holds(db, &world) {
            violations += 1;
            if example.is_none() {
                example = Some(world);
            }
        }
    }
    let p_hat = violations as f64 / samples as f64;
    RiskEstimate {
        violation_probability: p_hat,
        samples,
        violations,
        std_error: (p_hat * (1.0 - p_hat) / samples as f64).sqrt(),
        example_violation: example,
    }
}

#[cfg(test)]
// In-crate tests exercise the low-level entry point directly; the public
// session facade is covered by the integration suite.
#[allow(deprecated)]
mod tests {
    use super::*;
    use crate::dcsat::{dcsat, DcSatOptions};
    use bcdb_query::parse_denial_constraint;
    use bcdb_storage::{tuple, Catalog, ConstraintSet, Fd, RelationSchema, ValueType};

    fn setup() -> BlockchainDb {
        let mut cat = Catalog::new();
        cat.add(
            RelationSchema::new("Pay", [("id", ValueType::Int), ("to", ValueType::Text)]).unwrap(),
        )
        .unwrap();
        let mut cs = ConstraintSet::new();
        cs.add_fd(Fd::named_key(&cat, "Pay", &["id"]).unwrap());
        BlockchainDb::new(cat, cs)
    }

    fn constraint(db: &mut BlockchainDb, text: &str) -> PreparedConstraint {
        let dc = parse_denial_constraint(text, db.database().catalog()).unwrap();
        PreparedConstraint::prepare(db.database_mut(), &dc)
    }

    #[test]
    fn zero_probability_means_base_world_only() {
        let mut db = setup();
        let pay = db.database().catalog().resolve("Pay").unwrap();
        db.insert_current(pay, tuple![1i64, "bob"]).unwrap();
        db.add_transaction("t", [(pay, tuple![2i64, "carol"])])
            .unwrap();
        let pre = Precomputed::build(&db);
        let q_bob = constraint(&mut db, "q() <- Pay(i, 'bob')");
        let q_carol = constraint(&mut db, "q() <- Pay(i, 'carol')");
        let r = estimate_violation_risk(&db, &pre, &q_bob, &UniformAcceptance(0.0), 50, 1);
        assert_eq!(r.violation_probability, 1.0); // bob is already in R
        let r = estimate_violation_risk(&db, &pre, &q_carol, &UniformAcceptance(0.0), 50, 1);
        assert_eq!(r.violation_probability, 0.0);
        assert_eq!(r.std_error, 0.0);
    }

    #[test]
    fn certain_acceptance_without_conflicts_reaches_the_maximal_world() {
        let mut db = setup();
        let pay = db.database().catalog().resolve("Pay").unwrap();
        db.add_transaction("t0", [(pay, tuple![1i64, "bob"])])
            .unwrap();
        db.add_transaction("t1", [(pay, tuple![2i64, "carol"])])
            .unwrap();
        let pre = Precomputed::build(&db);
        let q = constraint(&mut db, "q() <- Pay(i, 'bob'), Pay(j, 'carol')");
        let r = estimate_violation_risk(&db, &pre, &q, &UniformAcceptance(1.0), 20, 2);
        assert_eq!(r.violation_probability, 1.0);
        assert!(r.example_violation.is_some());
    }

    #[test]
    fn satisfied_constraints_have_zero_risk() {
        let mut db = setup();
        let pay = db.database().catalog().resolve("Pay").unwrap();
        // Conflicting pending payments: at most one of bob/carol.
        db.add_transaction("t0", [(pay, tuple![1i64, "bob"])])
            .unwrap();
        db.add_transaction("t1", [(pay, tuple![1i64, "carol"])])
            .unwrap();
        let dc = parse_denial_constraint(
            "q() <- Pay(i, 'bob'), Pay(j, 'carol')",
            db.database().catalog(),
        )
        .unwrap();
        assert!(
            dcsat(&mut db, &dc, &DcSatOptions::default())
                .unwrap()
                .satisfied
        );
        let pre = Precomputed::build(&db);
        let pc = PreparedConstraint::prepare(db.database_mut(), &dc);
        let r = estimate_violation_risk(&db, &pre, &pc, &UniformAcceptance(0.9), 200, 3);
        assert_eq!(r.violation_probability, 0.0, "no possible world violates");
    }

    #[test]
    fn risk_tracks_acceptance_probability() {
        let mut db = setup();
        let pay = db.database().catalog().resolve("Pay").unwrap();
        db.add_transaction("t", [(pay, tuple![1i64, "bob"])])
            .unwrap();
        let pre = Precomputed::build(&db);
        let q = constraint(&mut db, "q() <- Pay(i, 'bob')");
        // Violation iff the single tx is accepted: risk ≈ p.
        for (p, lo, hi) in [(0.2, 0.1, 0.3), (0.8, 0.7, 0.9)] {
            let r = estimate_violation_risk(&db, &pre, &q, &UniformAcceptance(p), 2_000, 4);
            assert!(
                (lo..=hi).contains(&r.violation_probability),
                "p={p}: got {}",
                r.violation_probability
            );
        }
    }

    #[test]
    fn conflicting_transactions_split_the_probability() {
        let mut db = setup();
        let pay = db.database().catalog().resolve("Pay").unwrap();
        db.add_transaction("t0", [(pay, tuple![1i64, "bob"])])
            .unwrap();
        db.add_transaction("t1", [(pay, tuple![1i64, "carol"])])
            .unwrap();
        let pre = Precomputed::build(&db);
        let q_bob = constraint(&mut db, "q() <- Pay(i, 'bob')");
        // With p=1 and a uniformly random order, bob wins the conflict
        // about half the time.
        let r = estimate_violation_risk(&db, &pre, &q_bob, &UniformAcceptance(1.0), 2_000, 5);
        assert!(
            (0.4..=0.6).contains(&r.violation_probability),
            "got {}",
            r.violation_probability
        );
    }

    #[test]
    fn per_tx_model_biases_outcomes() {
        let mut db = setup();
        let pay = db.database().catalog().resolve("Pay").unwrap();
        db.add_transaction("t0", [(pay, tuple![1i64, "bob"])])
            .unwrap();
        db.add_transaction("t1", [(pay, tuple![1i64, "carol"])])
            .unwrap();
        let pre = Precomputed::build(&db);
        let q_bob = constraint(&mut db, "q() <- Pay(i, 'bob')");
        // carol's transaction is almost never accepted (dust fee, say).
        let model = PerTxAcceptance(vec![0.9, 0.05]);
        let r = estimate_violation_risk(&db, &pre, &q_bob, &model, 2_000, 6);
        assert!(
            r.violation_probability > 0.8,
            "got {}",
            r.violation_probability
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let mut db = setup();
        let pay = db.database().catalog().resolve("Pay").unwrap();
        db.add_transaction("t", [(pay, tuple![1i64, "bob"])])
            .unwrap();
        let pre = Precomputed::build(&db);
        let q = constraint(&mut db, "q() <- Pay(i, 'bob')");
        let a = estimate_violation_risk(&db, &pre, &q, &UniformAcceptance(0.5), 500, 7);
        let b = estimate_violation_risk(&db, &pre, &q, &UniformAcceptance(0.5), 500, 7);
        assert_eq!(a, b);
    }
}
