//! Possible worlds: the can-append relation, `getMaximal`, possible-world
//! recognition (Proposition 1), and exhaustive enumeration.

use crate::db::BlockchainDb;
use crate::precompute::Precomputed;
use bcdb_governor::{Budget, ExhaustionReason, UNGOVERNED};
use bcdb_storage::{Database, TxId, WorldMask};
use rustc_hash::FxHashSet;
use std::ops::ControlFlow;

/// Total pending-tuple (delta) rows active in `mask` across all relations —
/// exactly the rows a delta-seeded evaluation may seed a join from (see
/// `bcdb_query::evaluate_bool_delta_governed`). Diagnostic used by
/// benchmarks and tests; `0` iff the world is the base state `R`.
pub fn delta_row_count(db: &Database, mask: &WorldMask) -> usize {
    db.catalog()
        .iter()
        .map(|(rel, _)| db.relation(rel).scan_delta(mask).count())
        .sum()
}

/// Whether transaction `tx` can be appended to the (assumed consistent)
/// world `mask`: `mask ∪ {tx} |= I`.
///
/// FD consistency is checked pairwise against the base state and every
/// active transaction via precomputed fingerprints (an FD violation needs
/// exactly two tuples, so pairwise suffices); IND obligations are checked
/// only for the incoming transaction's own tuples (existing tuples cannot
/// lose support — tuples are never removed).
pub fn can_append(bcdb: &BlockchainDb, pre: &Precomputed, mask: &WorldMask, tx: TxId) -> bool {
    if mask.contains_tx(tx) {
        return true; // R' = R case: appending an already-active tx is a no-op
    }
    if !pre.viable[tx.index()] {
        return false;
    }
    for active in mask.txs() {
        if !pre.fd_graph.has_edge(tx.index(), active.index()) {
            return false;
        }
    }
    let db = bcdb.database();
    let cs = bcdb.constraints();
    if cs.inds().is_empty() {
        return true;
    }
    let mut candidate = mask.clone();
    candidate.activate(tx);
    cs.inds().iter().enumerate().all(|(i, ind)| {
        bcdb.transaction(tx)
            .tuples
            .iter()
            .filter(|(rel, _)| *rel == ind.from_relation)
            .all(|(_, tuple)| {
                db.relation(ind.to_relation).index_contains(
                    pre.ind_to_index[i],
                    &tuple.project(&ind.from_attrs),
                    &candidate,
                )
            })
    })
}

/// The paper's `getMaximal(R, I, T')`: starting from `R`, repeatedly append
/// any transaction from `candidates` that keeps the world consistent, until
/// a fixpoint. Returns the resulting world mask.
///
/// When `candidates` is a clique of `GfTd` the result is *the* unique
/// maximal possible world over `(R, I, candidates)`: FDs never block within
/// a clique, and IND support only grows.
pub fn get_maximal(bcdb: &BlockchainDb, pre: &Precomputed, candidates: &[TxId]) -> WorldMask {
    let mut world = bcdb.database().base_mask();
    get_maximal_into(bcdb, pre, candidates, &mut world, &mut MaximalScratch::default());
    world
}

/// Reusable buffers for [`get_maximal_into`], so the per-clique maximal
/// world construction in `OptDCSat`'s drive loop reaches a steady state of
/// zero allocations.
#[derive(Default)]
pub struct MaximalScratch {
    allowed: bcdb_graph::BitSet,
    remaining: Vec<TxId>,
}

/// Allocation-reusing variant of [`get_maximal`]: resets `world` to the
/// base-only world (reusing its backing storage) and runs the same fixpoint,
/// keeping the working sets in `scratch`. Semantics are identical.
pub fn get_maximal_into(
    bcdb: &BlockchainDb,
    pre: &Precomputed,
    candidates: &[TxId],
    world: &mut WorldMask,
    scratch: &mut MaximalScratch,
) {
    let n = bcdb.pending_count();
    world.reset_to_base(n);
    // FD feasibility is maintained incrementally: `allowed` holds the
    // transactions still mutually consistent with everything activated so
    // far (the running intersection of the active nodes' GfTd adjacency).
    // This turns the per-candidate pairwise check into one bit test.
    let MaximalScratch { allowed, remaining } = scratch;
    allowed.reset(n);
    for &tx in candidates {
        if pre.viable[tx.index()] {
            allowed.insert(tx.index());
        }
    }
    remaining.clear();
    remaining.extend(
        candidates
            .iter()
            .copied()
            .filter(|tx| pre.viable[tx.index()]),
    );
    loop {
        let before = remaining.len();
        remaining.retain(|&tx| {
            if !allowed.contains(tx.index()) {
                return false; // conflicts with an activated transaction
            }
            if ind_obligations_met(bcdb, pre, world, tx) {
                world.activate(tx);
                allowed.intersect_with(pre.fd_graph.neighbors(tx.index()));
                false
            } else {
                true
            }
        });
        if remaining.is_empty() || remaining.len() == before {
            return;
        }
    }
}

/// Whether `tx`'s own IND obligations are resolvable in `mask ∪ {tx}`.
/// Restores `mask` to its input state before returning.
fn ind_obligations_met(
    bcdb: &BlockchainDb,
    pre: &Precomputed,
    mask: &mut WorldMask,
    tx: TxId,
) -> bool {
    let cs = bcdb.constraints();
    if cs.inds().is_empty() {
        return true;
    }
    let db = bcdb.database();
    mask.activate(tx);
    let ok = cs.inds().iter().enumerate().all(|(i, ind)| {
        bcdb.transaction(tx)
            .tuples
            .iter()
            .filter(|(rel, _)| *rel == ind.from_relation)
            .all(|(_, tuple)| {
                db.relation(ind.to_relation).index_contains(
                    pre.ind_to_index[i],
                    &tuple.project(&ind.from_attrs),
                    mask,
                )
            })
    });
    mask.deactivate(tx);
    ok
}

/// Proposition 1: decides in PTIME whether `R ∪ ⋃txs` is a possible world,
/// i.e. whether some append order of exactly `txs` keeps every intermediate
/// state consistent.
///
/// Greedy is complete here: FDs cannot block any order once the final set
/// is pairwise consistent, and IND support is monotone, so if any order
/// exists the greedy one does.
pub fn is_possible_world(bcdb: &BlockchainDb, pre: &Precomputed, txs: &[TxId]) -> bool {
    let mut mask = bcdb.database().base_mask();
    let mut remaining: Vec<TxId> = txs.to_vec();
    remaining.dedup();
    loop {
        let before = remaining.len();
        remaining.retain(|&tx| {
            if can_append(bcdb, pre, &mask, tx) {
                mask.activate(tx);
                false
            } else {
                true
            }
        });
        if remaining.is_empty() {
            return true;
        }
        if remaining.len() == before {
            return false;
        }
    }
}

/// Streams every possible world of `D` (the set `Poss(D)`), starting from
/// `R` itself, in breadth-first order. The callback may stop the
/// enumeration early. Returns `true` if enumeration ran to completion.
///
/// `Poss(D)` can be exponential in `|T|`; this is the validation oracle and
/// the last-resort algorithm for non-monotonic constraints, not the fast
/// path.
pub fn for_each_possible_world(
    bcdb: &BlockchainDb,
    pre: &Precomputed,
    cb: impl FnMut(&WorldMask) -> ControlFlow<()>,
) -> bool {
    // The static unlimited budget never exhausts (and nothing cancels it).
    for_each_possible_world_governed(bcdb, pre, &UNGOVERNED, cb)
        .expect("unlimited budget cannot exhaust")
}

/// Budget-aware variant of [`for_each_possible_world`]: charges the budget
/// one world per visited member of `Poss(D)` and ticks it per frontier
/// expansion. Returns `Ok(true)` on complete enumeration, `Ok(false)` if
/// the callback stopped it, `Err(reason)` on exhaustion — the worlds
/// already visited are genuine possible worlds either way.
pub fn for_each_possible_world_governed(
    bcdb: &BlockchainDb,
    pre: &Precomputed,
    budget: &Budget,
    mut cb: impl FnMut(&WorldMask) -> ControlFlow<()>,
) -> Result<bool, ExhaustionReason> {
    let base = bcdb.database().base_mask();
    let mut visited: FxHashSet<WorldMask> = FxHashSet::default();
    let mut queue: Vec<WorldMask> = vec![base.clone()];
    visited.insert(base);
    let mut head = 0;
    while head < queue.len() {
        let world = queue[head].clone();
        head += 1;
        budget.charge_world()?;
        if cb(&world).is_break() {
            return Ok(false);
        }
        for tx in bcdb.tx_ids() {
            budget.tick()?;
            if world.contains_tx(tx) || !can_append(bcdb, pre, &world, tx) {
                continue;
            }
            let mut next = world.clone();
            next.activate(tx);
            if visited.insert(next.clone()) {
                queue.push(next);
            }
        }
    }
    Ok(true)
}

/// Collects `Poss(D)` into a vector (small inputs only).
pub fn possible_worlds(bcdb: &BlockchainDb, pre: &Precomputed) -> Vec<WorldMask> {
    let mut out = Vec::new();
    for_each_possible_world(bcdb, pre, |w| {
        out.push(w.clone());
        ControlFlow::Continue(())
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use bcdb_storage::{tuple, Catalog, ConstraintSet, Fd, Ind, RelationSchema, ValueType};

    /// R(a,b) key a; S(x) ⊆ R[a].
    fn setup() -> BlockchainDb {
        let mut cat = Catalog::new();
        cat.add(RelationSchema::new("R", [("a", ValueType::Int), ("b", ValueType::Int)]).unwrap())
            .unwrap();
        cat.add(RelationSchema::new("S", [("x", ValueType::Int)]).unwrap())
            .unwrap();
        let mut cs = ConstraintSet::new();
        cs.add_fd(Fd::named_key(&cat, "R", &["a"]).unwrap());
        cs.add_ind(Ind::named(&cat, "S", &["x"], "R", &["a"]).unwrap());
        BlockchainDb::new(cat, cs)
    }

    #[test]
    fn can_append_respects_order_dependencies() {
        let mut bc = setup();
        let r = bc.database().catalog().resolve("R").unwrap();
        let s = bc.database().catalog().resolve("S").unwrap();
        let t0 = bc
            .add_transaction("T0", [(r, tuple![5i64, 50i64])])
            .unwrap();
        let t1 = bc.add_transaction("T1", [(s, tuple![5i64])]).unwrap();
        let pre = Precomputed::build(&bc);
        let base = bc.database().base_mask();
        assert!(can_append(&bc, &pre, &base, t0));
        assert!(!can_append(&bc, &pre, &base, t1)); // needs T0 first
        let mut with_t0 = base.clone();
        with_t0.activate(t0);
        assert!(can_append(&bc, &pre, &with_t0, t1));
        // Appending an active tx is a no-op (the R' = R case).
        assert!(can_append(&bc, &pre, &with_t0, t0));
    }

    #[test]
    fn get_maximal_reaches_fixpoint_through_dependencies() {
        let mut bc = setup();
        let r = bc.database().catalog().resolve("R").unwrap();
        let s = bc.database().catalog().resolve("S").unwrap();
        // Chain: T0 creates R(5); T1 = S(5)+R(6); T2 = S(6).
        let t0 = bc
            .add_transaction("T0", [(r, tuple![5i64, 50i64])])
            .unwrap();
        let t1 = bc
            .add_transaction("T1", [(s, tuple![5i64]), (r, tuple![6i64, 60i64])])
            .unwrap();
        let t2 = bc.add_transaction("T2", [(s, tuple![6i64])]).unwrap();
        let pre = Precomputed::build(&bc);
        // Listing them in worst-case order still converges.
        let world = get_maximal(&bc, &pre, &[t2, t1, t0]);
        assert_eq!(world.tx_count(), 3);
        // Without T0, nothing can enter.
        let world = get_maximal(&bc, &pre, &[t1, t2]);
        assert_eq!(world.tx_count(), 0);
    }

    #[test]
    fn possible_world_recognition() {
        let mut bc = setup();
        let r = bc.database().catalog().resolve("R").unwrap();
        let s = bc.database().catalog().resolve("S").unwrap();
        let t0 = bc
            .add_transaction("T0", [(r, tuple![5i64, 50i64])])
            .unwrap();
        let t1 = bc.add_transaction("T1", [(s, tuple![5i64])]).unwrap();
        let t2 = bc
            .add_transaction("T2", [(r, tuple![5i64, 99i64])])
            .unwrap(); // conflicts T0
        let pre = Precomputed::build(&bc);
        assert!(is_possible_world(&bc, &pre, &[]));
        assert!(is_possible_world(&bc, &pre, &[t0]));
        assert!(is_possible_world(&bc, &pre, &[t0, t1]));
        assert!(is_possible_world(&bc, &pre, &[t1, t0])); // order-insensitive
        assert!(!is_possible_world(&bc, &pre, &[t1])); // dangling IND
        assert!(is_possible_world(&bc, &pre, &[t2]));
        assert!(!is_possible_world(&bc, &pre, &[t0, t2])); // FD conflict
    }

    #[test]
    fn enumeration_matches_hand_count() {
        let mut bc = setup();
        let r = bc.database().catalog().resolve("R").unwrap();
        let s = bc.database().catalog().resolve("S").unwrap();
        let _t0 = bc
            .add_transaction("T0", [(r, tuple![5i64, 50i64])])
            .unwrap();
        let _t1 = bc.add_transaction("T1", [(s, tuple![5i64])]).unwrap();
        let _t2 = bc
            .add_transaction("T2", [(r, tuple![5i64, 99i64])])
            .unwrap();
        let pre = Precomputed::build(&bc);
        let worlds = possible_worlds(&bc, &pre);
        // {}, {T0}, {T2}, {T0,T1}, and {T2,T1} — T2's R(5,99) also supports
        // T1's S(5): 5 worlds.
        assert_eq!(worlds.len(), 5);
        // Every enumerated world passes recognition.
        for w in &worlds {
            let txs: Vec<TxId> = w.txs().collect();
            assert!(is_possible_world(&bc, &pre, &txs), "{w:?}");
        }
    }

    #[test]
    fn world_budget_stops_enumeration() {
        use bcdb_governor::BudgetSpec;
        let mut bc = setup();
        let r = bc.database().catalog().resolve("R").unwrap();
        for i in 0..5 {
            bc.add_transaction(format!("T{i}"), [(r, tuple![i as i64, 0i64])])
                .unwrap();
        }
        let pre = Precomputed::build(&bc);
        let budget = BudgetSpec {
            max_worlds: Some(10),
            ..BudgetSpec::UNLIMITED
        }
        .start();
        let mut seen = Vec::new();
        let result = for_each_possible_world_governed(&bc, &pre, &budget, |w| {
            seen.push(w.clone());
            ControlFlow::Continue(())
        });
        assert_eq!(result, Err(ExhaustionReason::WorldLimit(10)));
        assert_eq!(seen.len(), 10, "worlds before exhaustion are reported");
        // Everything visited before exhaustion is a genuine possible world.
        for w in &seen {
            let txs: Vec<TxId> = w.txs().collect();
            assert!(is_possible_world(&bc, &pre, &txs));
        }
    }

    #[test]
    fn enumeration_early_stop() {
        let mut bc = setup();
        let r = bc.database().catalog().resolve("R").unwrap();
        for i in 0..5 {
            bc.add_transaction(format!("T{i}"), [(r, tuple![i as i64, 0i64])])
                .unwrap();
        }
        let pre = Precomputed::build(&bc);
        let mut n = 0;
        let completed = for_each_possible_world(&bc, &pre, |_| {
            n += 1;
            if n == 3 {
                ControlFlow::Break(())
            } else {
                ControlFlow::Continue(())
            }
        });
        assert!(!completed);
        assert_eq!(n, 3);
        // Full enumeration: 2^5 = 32 independent subsets.
        let worlds = possible_worlds(&bc, &pre);
        assert_eq!(worlds.len(), 32);
    }
}
