//! Cross-session shared enumeration cache (ROADMAP item 1).
//!
//! One standing-constraint workload — many subscriptions re-checked against
//! one evolving chain state — keeps re-deriving three artifacts whose
//! inputs repeat across constraints and across tenants:
//!
//! 1. the refined `Gq,ind` **partition** per canonical Θq list,
//! 2. the complete maximal-clique **enumeration** per component member
//!    list, and
//! 3. the definite **verdict** per constraint text, for byte-identical
//!    duplicate shapes.
//!
//! [`SharedEnumCache`] hoists all three out of the per-batch
//! `ReuseCtx` so that every [`Solver`](crate::Solver) attached to the same
//! `Arc` — e.g. one per tenant inside `bcdb-server`, or the per-worker
//! read forks of a parallel round executor — shares one copy.
//!
//! # Sharing contract
//!
//! Every solver attached to one cache must observe the **same** logical
//! database state: the cache is meant for forks/sessions serving one chain
//! snapshot that all advance through the same mutation sequence (the
//! server's monitor session and its read forks). Attaching solvers over
//! *different* databases to one cache is unsound and unsupported.
//!
//! # Invalidation
//!
//! Instead of flushing everything on every event, the cache consumes the
//! same incremental delta primitives that keep
//! [`Precomputed`](crate::precompute::Precomputed) fresh, each mapped to
//! the narrowest sound action (see the solver's mutators for the hook
//! sites):
//!
//! | mutation                  | partitions | cliques                         | verdict memo |
//! |---------------------------|------------|---------------------------------|--------------|
//! | pending append            | flush      | keep (old induced subgraphs intact) | drop     |
//! | pending removal / promote | flush      | drop touched, renumber survivors    | drop     |
//! | positional insert         | flush      | renumber keys ≥ insertion point     | drop     |
//! | base-row viability flips  | keep       | drop entries containing a flipped tx | drop    |
//! | epoch advance / rebuild   | flush      | flush                               | drop     |
//!
//! Soundness arguments:
//!
//! * **Appends** add only the new transaction's conflict edges — the
//!   induced subgraph (hence clique list) of every existing member list is
//!   unchanged. Partitions must flush because the new transaction can merge
//!   previously separate components.
//! * **Removals** renumber the survivors down; cached cliques are stored in
//!   *local* indices (positions within the member list) so a pure
//!   renumbering of the key preserves the enumeration verbatim. Entries
//!   containing a removed transaction are dropped.
//! * **Base-row deltas** never touch pending membership, but a viability
//!   flip rewires the flipped transaction's conflict edges
//!   (`fd_graph.isolate`/re-add) while member lists stay put — exactly the
//!   case where a member-list key would serve a stale enumeration, so every
//!   entry containing a flipped transaction is dropped. Partitions survive:
//!   the IND groups and Θq edges they refine are pending-only.
//! * **Verdicts** are memoized only when definite ([`Verdict::is_definite`])
//!   and only within one *generation*: any mutation bumps the generation
//!   counter, and both lookup and store are generation-checked, so a
//!   verdict computed against an older state can never be served. `Unknown`
//!   is never memoized — an exhausted check must stay re-checkable under a
//!   bigger budget.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::dcsat::Verdict;
use bcdb_graph::CliqueCache;
use bcdb_query::EqualityConstraint;

/// A refined `Gq,ind` partition (component member lists) shared across
/// constraints and sessions.
pub(crate) type SharedPartition = Arc<Vec<Vec<usize>>>;

/// Cumulative counters for one [`SharedEnumCache`], all monotone.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SharedCacheStats {
    /// Charged component probes answered from the cache.
    pub clique_hits: u64,
    /// Charged component probes that required a fresh enumeration.
    pub clique_misses: u64,
    /// Definite verdicts served from the generation-checked memo.
    pub verdict_hits: u64,
    /// Cached entries dropped by targeted invalidation (not counting full
    /// flushes).
    pub invalidated_entries: u64,
    /// Generation bumps, i.e. observed mutations.
    pub generations: u64,
}

/// An epoch-tagged, `Arc`-shareable cache of partitions, complete clique
/// enumerations, and definite verdicts, shared by every solver attached to
/// it. See the [module docs](self) for the sharing contract and the
/// invalidation table.
#[derive(Debug, Default)]
pub struct SharedEnumCache {
    /// Monotone mutation counter gating the verdict memo. Also serves as
    /// the cache's epoch tag: two reads of [`SharedEnumCache::generation`]
    /// bracketing equal values bracket an unchanged logical state.
    generation: AtomicU64,
    /// Refined partitions keyed by the *exact* canonical Θq list — a hash
    /// signature could collide two refinements, which would be silently
    /// unsound (see `bcdb_query::canonical_equalities`).
    partitions: Mutex<HashMap<Vec<EqualityConstraint>, SharedPartition>>,
    /// Complete per-component enumerations keyed by sorted member lists.
    cliques: CliqueCache,
    /// Definite verdicts keyed by constraint display text, stamped with the
    /// generation they were proven under.
    verdicts: Mutex<HashMap<String, (u64, Verdict)>>,
    verdict_hits: AtomicU64,
    invalidated: AtomicU64,
}

impl SharedEnumCache {
    /// Creates an empty cache at generation 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// The current generation (mutation counter / epoch tag).
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Acquire)
    }

    /// Cumulative counters.
    pub fn stats(&self) -> SharedCacheStats {
        SharedCacheStats {
            clique_hits: self.cliques.hits(),
            clique_misses: self.cliques.misses(),
            verdict_hits: self.verdict_hits.load(Ordering::Relaxed),
            invalidated_entries: self.invalidated.load(Ordering::Relaxed),
            generations: self.generation(),
        }
    }

    /// Number of cached clique enumerations (diagnostic).
    pub fn cached_components(&self) -> usize {
        self.cliques.len()
    }

    fn bump(&self) {
        self.generation.fetch_add(1, Ordering::AcqRel);
    }

    // ------------------------------------------------------------------
    // Invalidation hooks (driven by the solver's incremental mutators).
    // ------------------------------------------------------------------

    /// A transaction was appended to the pending set: flush partitions
    /// (components can merge), keep cliques (existing induced subgraphs are
    /// untouched), drop the verdict memo.
    pub fn note_pending_appended(&self) {
        self.partitions.lock().unwrap().clear();
        self.bump();
    }

    /// Pending transactions at `removed` (sorted ascending, pre-removal
    /// indices) were removed or promoted: flush partitions, drop clique
    /// entries containing a removed index, renumber survivors down, drop
    /// the verdict memo.
    pub fn note_pending_removed(&self, removed: &[usize]) {
        self.partitions.lock().unwrap().clear();
        let dropped = self.cliques.remap_removed(removed);
        self.invalidated.fetch_add(dropped as u64, Ordering::Relaxed);
        self.bump();
    }

    /// A transaction was inserted at pending position `at`: flush
    /// partitions, renumber clique keys at or above `at` up by one, drop
    /// the verdict memo.
    pub fn note_pending_inserted_at(&self, at: usize) {
        self.partitions.lock().unwrap().clear();
        self.cliques.remap_inserted_at(at);
        self.bump();
    }

    /// Base-relation rows changed and the viability of the pending
    /// transactions in `flipped` (sorted ascending) flipped with them:
    /// their conflict edges were rewired in place, so every cached
    /// enumeration containing one of them is stale. Partitions survive —
    /// base rows never contribute `Gq,ind` edges. The verdict memo drops
    /// regardless (base rows are part of every world).
    pub fn note_base_flips(&self, flipped: &[usize]) {
        let dropped = self.cliques.invalidate_members(flipped);
        self.invalidated.fetch_add(dropped as u64, Ordering::Relaxed);
        self.bump();
    }

    /// Full flush: epoch advance, whole-database replacement, or any
    /// mutation without a narrower hook.
    pub fn invalidate_all(&self) {
        self.partitions.lock().unwrap().clear();
        let dropped = self.cliques.len();
        self.cliques.purge();
        self.invalidated.fetch_add(dropped as u64, Ordering::Relaxed);
        self.bump();
    }

    // ------------------------------------------------------------------
    // Lookup surfaces (used by the solver / ReuseCtx plumbing).
    // ------------------------------------------------------------------

    /// The shared clique store. Component keys are sorted member lists;
    /// values obey the completeness rule of
    /// [`bcdb_graph::CliqueCache`].
    pub(crate) fn cliques(&self) -> &CliqueCache {
        &self.cliques
    }

    /// The partition for `key`, computing (at most once per distinct
    /// canonical Θq list) via `compute` on a miss.
    pub(crate) fn partition_or_compute(
        &self,
        key: Vec<EqualityConstraint>,
        compute: impl FnOnce() -> Vec<Vec<usize>>,
    ) -> SharedPartition {
        if let Some(p) = self.partitions.lock().unwrap().get(&key) {
            return Arc::clone(p);
        }
        let p = Arc::new(compute());
        self.partitions
            .lock()
            .unwrap()
            .entry(key)
            .or_insert_with(|| Arc::clone(&p))
            .clone()
    }

    /// A memoized definite verdict for the constraint rendered as `key`,
    /// valid only if it was stored under the caller's observed generation
    /// `gen` and no mutation has happened since.
    pub fn lookup_verdict(&self, key: &str, gen: u64) -> Option<Verdict> {
        if self.generation() != gen {
            return None;
        }
        let found = self
            .verdicts
            .lock()
            .unwrap()
            .get(key)
            .filter(|(g, _)| *g == gen)
            .map(|(_, v)| v.clone());
        if found.is_some() {
            self.verdict_hits.fetch_add(1, Ordering::Relaxed);
        }
        found
    }

    /// Stores a definite verdict proven while the caller observed
    /// generation `gen`. No-op for `Unknown` verdicts or when a mutation
    /// has intervened (the proof would describe a stale state).
    pub fn store_verdict(&self, key: String, gen: u64, verdict: &Verdict) {
        if !verdict.is_definite() || self.generation() != gen {
            return;
        }
        let mut memo = self.verdicts.lock().unwrap();
        // Re-check under the lock: a bump between the gate above and the
        // insert would let a stale proof slip in.
        if self.generation() == gen {
            memo.insert(key, (gen, verdict.clone()));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bcdb_governor::ExhaustionReason;

    #[test]
    fn verdict_memo_is_generation_checked() {
        let cache = SharedEnumCache::new();
        let gen = cache.generation();
        cache.store_verdict("q1".into(), gen, &Verdict::Holds);
        assert_eq!(cache.lookup_verdict("q1", gen), Some(Verdict::Holds));
        cache.note_pending_appended();
        assert_eq!(cache.lookup_verdict("q1", gen), None);
        assert_eq!(cache.lookup_verdict("q1", cache.generation()), None);
    }

    #[test]
    fn unknown_verdicts_are_never_memoized() {
        let cache = SharedEnumCache::new();
        let gen = cache.generation();
        cache.store_verdict(
            "q2".into(),
            gen,
            &Verdict::Unknown(ExhaustionReason::Cancelled),
        );
        assert_eq!(cache.lookup_verdict("q2", gen), None);
    }

    #[test]
    fn stale_generation_store_is_dropped() {
        let cache = SharedEnumCache::new();
        let gen = cache.generation();
        cache.note_pending_appended();
        cache.store_verdict("q3".into(), gen, &Verdict::Holds);
        assert_eq!(cache.lookup_verdict("q3", cache.generation()), None);
    }

    #[test]
    fn appends_keep_cliques_but_removals_renumber() {
        let cache = SharedEnumCache::new();
        cache
            .cliques()
            .publish_complete(vec![0, 2, 5], vec![vec![0, 1]]);
        cache.note_pending_appended();
        assert!(cache.cliques().peek(&[0, 2, 5]).is_some());
        cache.note_pending_removed(&[1]);
        assert!(cache.cliques().peek(&[0, 2, 5]).is_none());
        assert_eq!(*cache.cliques().peek(&[0, 1, 4]).unwrap(), vec![vec![0, 1]]);
    }

    #[test]
    fn base_flips_drop_only_touched_entries() {
        let cache = SharedEnumCache::new();
        cache.cliques().publish_complete(vec![0, 2], vec![vec![0]]);
        cache.cliques().publish_complete(vec![1, 3], vec![vec![1]]);
        cache.note_base_flips(&[2]);
        assert!(cache.cliques().peek(&[0, 2]).is_none());
        assert!(cache.cliques().peek(&[1, 3]).is_some());
        assert_eq!(cache.stats().invalidated_entries, 1);
    }

    #[test]
    fn partitions_flush_on_pending_changes_only() {
        let cache = SharedEnumCache::new();
        let key: Vec<EqualityConstraint> = Vec::new();
        let p = cache.partition_or_compute(key.clone(), || vec![vec![0]]);
        assert_eq!(*p, vec![vec![0]]);
        // Base flips keep partitions.
        cache.note_base_flips(&[0]);
        let again = cache.partition_or_compute(key.clone(), || panic!("must be cached"));
        assert_eq!(*again, vec![vec![0]]);
        // Pending appends flush them.
        cache.note_pending_appended();
        let recomputed = cache.partition_or_compute(key, || vec![vec![1]]);
        assert_eq!(*recomputed, vec![vec![1]]);
    }
}
