//! Steady-state precomputed structures (§6.3 of the paper).
//!
//! The paper's implementation stores, as transactions arrive:
//!
//! * per-transaction *inclusion status* — whether `R ∪ {T} |= I`;
//! * the fd-transaction graph `GfTd`;
//! * the IND-derived part of the ind-q-transaction graph (`Gind`), to be
//!   augmented with query-derived edges per denial constraint.
//!
//! [`Precomputed`] holds all three, plus the FD fingerprints that make
//! pairwise consistency checks cheap. `GfTd` is built
//! conflict-first: an FD violation needs two tuples sharing a determinant,
//! so we group tuples by determinant and only materialise the (typically
//! few) conflicting pairs, then take the complement.

use crate::db::BlockchainDb;
use bcdb_graph::{UndirectedGraph, UnionFind};
use bcdb_query::EqualityConstraint;
use bcdb_storage::{Source, SourceFingerprints, TxId, Value};
use rustc_hash::{FxHashMap, FxHashSet};
use smallvec::SmallVec;

/// Projection of a tuple onto constraint attributes.
type Projection = SmallVec<[Value; 4]>;
/// FD grouping: determinant -> (dependent -> contributing sources).
type FdGroups = FxHashMap<Projection, FxHashMap<Projection, SmallVec<[Source; 4]>>>;
/// Equality-constraint grouping: projection value -> (left txs, right txs).
type SideGroups = FxHashMap<Projection, (SmallVec<[u32; 4]>, SmallVec<[u32; 4]>)>;

/// Precomputed reasoning structures for one blockchain database snapshot.
#[derive(Clone, Debug)]
pub struct Precomputed {
    /// FD fingerprints of the current state.
    pub base_fp: SourceFingerprints,
    /// FD fingerprints of each pending transaction.
    pub tx_fp: Vec<SourceFingerprints>,
    /// `viable[t]`: transaction `t` is internally FD-consistent and
    /// FD-consistent with the current state. A non-viable transaction can
    /// never be appended.
    pub viable: Vec<bool>,
    /// The fd-transaction graph `GfTd`: nodes are pending transactions;
    /// edges join *viable*, mutually FD-consistent pairs.
    pub fd_graph: UndirectedGraph,
    /// `includable[t]`: whether `R ∪ {T} |= I` — the paper's per-transaction
    /// inclusion status (true iff `t` could be appended to `R` right now).
    pub includable: Vec<bool>,
    /// Connected components of the IND-derived equality-constraint graph
    /// (`Gind`). Cloned and refined with query-derived edges (Θq) per
    /// denial constraint.
    pub ind_uf: UnionFind,
    /// Per-IND handle of the index on the referenced-side attributes.
    pub(crate) ind_to_index: Vec<usize>,
    /// ΘI (cached from the constraint set).
    thetas_ind: Vec<EqualityConstraint>,
    /// Per-ΘI grouping of transactions by projection value, maintained
    /// incrementally so newly issued transactions join `Gind` in O(|T|).
    ind_groups: Vec<SideGroups>,
}

/// Direction of a base-state delta, used by the post-change refresh to
/// exploit monotonicity: a grow-only change can never create new IND
/// support gaps, so already-includable transactions skip the index probe.
#[derive(Clone, Copy, PartialEq, Eq)]
enum BaseChange {
    /// Rows were only appended to `R`.
    Grew,
    /// Rows were only retracted from `R`.
    Shrank,
}

impl Precomputed {
    /// Builds all structures for `bcdb`.
    pub fn build(bcdb: &BlockchainDb) -> Self {
        let _span = bcdb_telemetry::probes::CORE_PHASE_PRECOMPUTE_NS.span();
        let db = bcdb.database();
        let cs = bcdb.constraints();
        let n = bcdb.pending_count();

        let (base_fp, tx_fp) = bcdb_storage::collect_all_fingerprints(db, cs);

        let mut viable: Vec<bool> = (0..n)
            .map(|t| tx_fp[t].self_consistent() && base_fp.consistent_with(&tx_fp[t]))
            .collect();

        // Conflict-first construction of GfTd: group every stored tuple's
        // FD determinant, then conflicting pairs are within-group pairs
        // whose dependents differ.
        let mut conflicts: FxHashSet<(u32, u32)> = FxHashSet::default();
        for fd in cs.fds() {
            let store = db.relation(fd.relation);
            // determinant -> (dependent -> contributing sources)
            let mut groups: FdGroups = FxHashMap::default();
            for (_, row) in store.scan_all() {
                groups
                    .entry(row.tuple.project(&fd.lhs))
                    .or_default()
                    .entry(row.tuple.project(&fd.rhs))
                    .or_default()
                    .push(row.source);
            }
            for by_rhs in groups.values() {
                if by_rhs.len() < 2 {
                    continue;
                }
                let classes: Vec<&SmallVec<[Source; 4]>> = by_rhs.values().collect();
                for (i, a) in classes.iter().enumerate() {
                    for b in &classes[i + 1..] {
                        for &sa in a.iter() {
                            for &sb in b.iter() {
                                match (sa, sb) {
                                    (Source::Pending(x), Source::Pending(y)) if x != y => {
                                        let (lo, hi) =
                                            if x.0 < y.0 { (x.0, y.0) } else { (y.0, x.0) };
                                        conflicts.insert((lo, hi));
                                    }
                                    (Source::Base, Source::Pending(t))
                                    | (Source::Pending(t), Source::Base) => {
                                        viable[t.index()] = false;
                                    }
                                    _ => {}
                                }
                            }
                        }
                    }
                }
            }
        }

        let mut fd_graph = UndirectedGraph::new(n);
        for (a, &va) in viable.iter().enumerate() {
            if !va {
                continue;
            }
            for (b, &vb) in viable.iter().enumerate().skip(a + 1) {
                if vb && !conflicts.contains(&(a as u32, b as u32)) {
                    fd_graph.add_edge(a, b);
                }
            }
        }

        // Resolve the per-IND referenced-side index handles (built eagerly
        // by BlockchainDb::new).
        let ind_to_index: Vec<usize> = cs
            .inds()
            .iter()
            .map(|ind| {
                db.relation(ind.to_relation)
                    .find_index(&ind.to_attrs)
                    .expect("IND indexes built at construction")
            })
            .collect();

        // Inclusion status: viable (FD part) + every IND projection of the
        // transaction's own tuples resolvable within R ∪ {T}.
        let mut includable = Vec::with_capacity(n);
        for (t, &v) in viable.iter().enumerate() {
            let tx = TxId(t as u32);
            if !v {
                includable.push(false);
                continue;
            }
            let mask = db.mask_of([tx]);
            let ok = cs.inds().iter().enumerate().all(|(i, ind)| {
                bcdb.transaction(tx)
                    .tuples
                    .iter()
                    .filter(|(rel, _)| *rel == ind.from_relation)
                    .all(|(_, tuple)| {
                        db.relation(ind.to_relation).index_contains(
                            ind_to_index[i],
                            &tuple.project(&ind.from_attrs),
                            &mask,
                        )
                    })
            });
            includable.push(ok);
        }

        // ΘI components, built through the same incremental insertion the
        // steady state uses, so batch and incremental paths cannot diverge.
        let thetas_ind = theta_from_inds(cs);
        let mut ind_uf = UnionFind::new(n);
        let mut ind_groups: Vec<SideGroups> = vec![FxHashMap::default(); thetas_ind.len()];
        for tx in bcdb.tx_ids() {
            ind_join_tx(bcdb, &thetas_ind, &mut ind_groups, &mut ind_uf, tx);
        }

        Precomputed {
            base_fp,
            tx_fp,
            viable,
            fd_graph,
            includable,
            ind_uf,
            ind_to_index,
            thetas_ind,
            ind_groups,
        }
    }

    /// Incrementally extends the steady-state structures for a transaction
    /// just issued via [`BlockchainDb::add_transaction`] (§6.3's "as new
    /// transactions are issued"). Must be called with consecutive
    /// [`TxId`]s; `O(|T| + |tx|)` instead of a full rebuild.
    pub fn note_transaction_added(&mut self, bcdb: &BlockchainDb, tx: TxId) {
        assert_eq!(
            tx.index(),
            self.tx_fp.len(),
            "transactions must be noted in issue order"
        );
        let db = bcdb.database();
        let cs = bcdb.constraints();
        let tuples = &bcdb.transaction(tx).tuples;

        // Fingerprints and viability.
        let fp = bcdb_storage::SourceFingerprints::from_tuples(
            cs,
            tuples.iter().map(|(rel, t)| (*rel, t)),
        );
        let viable = fp.self_consistent() && self.base_fp.consistent_with(&fp);

        // GfTd: one new node, edges to every mutually consistent viable tx.
        let node = self.fd_graph.add_node();
        debug_assert_eq!(node, tx.index());
        if viable {
            for (other, other_viable) in self.viable.iter().enumerate() {
                if *other_viable && fp.consistent_with(&self.tx_fp[other]) {
                    self.fd_graph.add_edge(node, other);
                }
            }
        }

        // Inclusion status (R ∪ {tx} |= I).
        let includable = viable && {
            let mask = db.mask_of([tx]);
            cs.inds().iter().enumerate().all(|(i, ind)| {
                tuples
                    .iter()
                    .filter(|(rel, _)| *rel == ind.from_relation)
                    .all(|(_, tuple)| {
                        db.relation(ind.to_relation).index_contains(
                            self.ind_to_index[i],
                            &tuple.project(&ind.from_attrs),
                            &mask,
                        )
                    })
            })
        };

        // Gind components.
        let id = self.ind_uf.push();
        debug_assert_eq!(id, tx.index());
        let thetas = std::mem::take(&mut self.thetas_ind);
        ind_join_tx(bcdb, &thetas, &mut self.ind_groups, &mut self.ind_uf, tx);
        self.thetas_ind = thetas;

        self.tx_fp.push(fp);
        self.viable.push(viable);
        self.includable.push(includable);
    }

    /// Incrementally shrinks the steady-state structures after `tx` was
    /// evicted via [`BlockchainDb::remove_transaction`] — the inverse of
    /// [`note_transaction_added`](Self::note_transaction_added). All ids
    /// above `tx` shift down by one, mirroring the database's renumbering.
    ///
    /// Viability, inclusion status, and `GfTd` edges of the surviving
    /// transactions are unaffected by the eviction: each depends only on
    /// the current state `R` and the survivors' own tuples, both untouched
    /// here (a change to `R` itself — mining, reorg — is a separate batch
    /// delta, handled by [`note_base_rows_added`](Self::note_base_rows_added)
    /// / [`note_base_rows_removed`](Self::note_base_rows_removed)). The
    /// per-tx rows are therefore removed *and shifted*, never left in
    /// place, so a transaction issued later that reuses the evicted
    /// transaction's keys is fingerprinted against the correct rows. `Gind`
    /// components are rebuilt from the remapped ΘI value groups: an active
    /// group (both sides non-empty) is exactly one component, so the
    /// rebuild is `O(|groups|)` and cannot diverge from the incremental
    /// insertion path.
    pub fn note_transaction_removed(&mut self, tx: TxId) {
        self.note_transactions_removed(&[tx]);
    }

    /// The batch counterpart of
    /// [`note_transaction_removed`](Self::note_transaction_removed): shrinks
    /// the steady state after every transaction in `txs` (sorted ascending,
    /// duplicate-free, in *pre-removal* ids) was removed at once via
    /// [`BlockchainDb::remove_transactions`]. One graph rebuild, one ΘI
    /// group remap, and one `Gind` component reconstruction cover all `k`
    /// departures, instead of `k` full rebuilds — the difference between
    /// O(k·(n+m)) and O(n+m) when a mined block flushes a large conflict
    /// set out of the pool.
    pub fn note_transactions_removed(&mut self, txs: &[TxId]) {
        debug_assert!(
            txs.windows(2).all(|w| w[0] < w[1]),
            "note_transactions_removed: txs must be sorted and distinct"
        );
        if txs.is_empty() {
            return;
        }
        let n = self.tx_fp.len();
        let last = txs[txs.len() - 1];
        assert!(
            last.index() < n,
            "note_transactions_removed: {last} out of range ({n} noted)"
        );

        let removed: Vec<u32> = txs.iter().map(|t| t.0).collect();
        let keep = |id: u32| removed.binary_search(&id).is_err();
        let mut i = 0u32;
        self.tx_fp.retain(|_| {
            let k = keep(i);
            i += 1;
            k
        });
        let mut i = 0u32;
        self.viable.retain(|_| {
            let k = keep(i);
            i += 1;
            k
        });
        let mut i = 0u32;
        self.includable.retain(|_| {
            let k = keep(i);
            i += 1;
            k
        });
        let idxs: Vec<usize> = txs.iter().map(|t| t.index()).collect();
        self.fd_graph.remove_nodes(&idxs);

        // Remap the ΘI value groups: drop the departed ids, shift each
        // survivor down by the number of departures below it, and forget
        // emptied value groups entirely.
        for groups in &mut self.ind_groups {
            for entry in groups.values_mut() {
                for side in [&mut entry.0, &mut entry.1] {
                    side.retain(|t| keep(*t));
                    for t in side.iter_mut() {
                        *t -= removed.partition_point(|&r| r < *t) as u32;
                    }
                }
            }
            groups.retain(|_, (lefts, rights)| !lefts.is_empty() || !rights.is_empty());
        }

        let mut uf = UnionFind::new(n - txs.len());
        for groups in &self.ind_groups {
            for (lefts, rights) in groups.values() {
                if lefts.is_empty() || rights.is_empty() {
                    continue;
                }
                let anchor = lefts[0] as usize;
                for &x in lefts.iter().chain(rights.iter()) {
                    uf.union(anchor, x as usize);
                }
            }
        }
        self.ind_uf = uf;
    }

    /// Incrementally absorbs a batch of rows just appended to the current
    /// state `R` (a mined block's tuples, via
    /// [`BlockchainDb::append_base_rows`] or
    /// [`BlockchainDb::promote_transactions`]). Base fingerprints gain the
    /// rows' FD projections; viability, `GfTd`, and inclusion status are
    /// re-derived against the new `R` without rehashing any stored row.
    /// `Gind` is untouched: ΘI groups range over pending transactions only.
    ///
    /// Returns the pending-transaction indices whose viability flipped
    /// (ascending): their `GfTd` edges were rewired in place, which is
    /// exactly the set a member-list-keyed enumeration cache must drop
    /// (see [`bcdb_graph::CliqueCache::invalidate_members`]).
    pub fn note_base_rows_added(
        &mut self,
        bcdb: &BlockchainDb,
        rows: &[(bcdb_storage::RelationId, bcdb_storage::Tuple)],
    ) -> Vec<usize> {
        let cs = bcdb.constraints();
        for (rel, tuple) in rows {
            self.base_fp.add_tuple(cs, *rel, tuple);
        }
        self.refresh_after_base_change(bcdb, BaseChange::Grew)
    }

    /// The inverse of [`note_base_rows_added`](Self::note_base_rows_added):
    /// absorbs a batch of rows just retracted from `R` (a reorged-out
    /// block's tuples, via [`BlockchainDb::remove_base_rows`]). The rows
    /// must actually have been base rows — fingerprint counts underflow
    /// otherwise (checked in debug builds).
    ///
    /// Returns the viability-flipped pending-transaction indices, as
    /// [`note_base_rows_added`](Self::note_base_rows_added) does.
    pub fn note_base_rows_removed(
        &mut self,
        bcdb: &BlockchainDb,
        rows: &[(bcdb_storage::RelationId, bcdb_storage::Tuple)],
    ) -> Vec<usize> {
        let cs = bcdb.constraints();
        for (rel, tuple) in rows {
            self.base_fp.remove_tuple(cs, *rel, tuple);
        }
        self.refresh_after_base_change(bcdb, BaseChange::Shrank)
    }

    /// Re-derives every per-transaction judgement that depends on `R` after
    /// [`base_fp`](Self::base_fp) changed. Viability flips are repaired in
    /// the graph locally (`isolate` on an off-flip, edge scan on an
    /// on-flip); inclusion status is re-probed through the IND indexes,
    /// since a base change can create or destroy IND support.
    ///
    /// The `change` direction prunes the IND probe. When `R` only grew,
    /// both judgements are monotone: viability can only flip off (the base
    /// fingerprints gained projections, so a new FD clash can appear but an
    /// old one cannot vanish) and IND support can only grow. A transaction
    /// that was includable and is still viable therefore stays includable
    /// without a probe — only viable, not-yet-includable transactions need
    /// re-probing. When `R` shrank the direction reverses for support, so
    /// every viable transaction is re-probed.
    ///
    /// Returns the transactions whose viability flipped, ascending.
    fn refresh_after_base_change(&mut self, bcdb: &BlockchainDb, change: BaseChange) -> Vec<usize> {
        let db = bcdb.database();
        let cs = bcdb.constraints();
        let n = self.tx_fp.len();
        let mut flipped = Vec::new();

        for t in 0..n {
            let now =
                self.tx_fp[t].self_consistent() && self.base_fp.consistent_with(&self.tx_fp[t]);
            if self.viable[t] && !now {
                flipped.push(t);
                self.fd_graph.isolate(t);
                self.viable[t] = false;
            } else if !self.viable[t] && now {
                flipped.push(t);
                // Peers processed later still carry their pre-change
                // viability bit here; an edge added against a peer that
                // flips off afterwards is removed by that peer's `isolate`,
                // and a peer that flips on afterwards adds its own edges.
                self.viable[t] = true;
                for other in 0..n {
                    if other != t
                        && self.viable[other]
                        && self.tx_fp[t].consistent_with(&self.tx_fp[other])
                    {
                        self.fd_graph.add_edge(t, other);
                    }
                }
            }
        }

        for t in 0..n {
            if change == BaseChange::Grew && self.includable[t] {
                // Monotone fast path: support only grew, so includability
                // survives as long as viability did.
                self.includable[t] = self.viable[t];
                continue;
            }
            let tx = TxId(t as u32);
            self.includable[t] = self.viable[t] && {
                let mask = db.mask_of([tx]);
                cs.inds().iter().enumerate().all(|(i, ind)| {
                    bcdb.transaction(tx)
                        .tuples
                        .iter()
                        .filter(|(rel, _)| *rel == ind.from_relation)
                        .all(|(_, tuple)| {
                            db.relation(ind.to_relation).index_contains(
                                self.ind_to_index[i],
                                &tuple.project(&ind.from_attrs),
                                &mask,
                            )
                        })
                })
            };
        }
        flipped
    }

    /// Incrementally extends the structures for a transaction just placed
    /// at position `at` via [`BlockchainDb::insert_transaction_at`] — the
    /// inverse of [`note_transaction_removed`](Self::note_transaction_removed),
    /// used by reorg undo to put a de-mined transaction back at its
    /// original slot. All ids `>= at` shift up by one, mirroring the
    /// database's renumbering.
    pub fn note_transaction_inserted(&mut self, bcdb: &BlockchainDb, at: TxId) {
        let n = self.tx_fp.len();
        assert!(
            at.index() <= n,
            "note_transaction_inserted: {at} out of range ({n} noted)"
        );
        let cs = bcdb.constraints();
        let db = bcdb.database();
        let tuples = &bcdb.transaction(at).tuples;

        let fp = bcdb_storage::SourceFingerprints::from_tuples(
            cs,
            tuples.iter().map(|(rel, t)| (*rel, t)),
        );
        let viable = fp.self_consistent() && self.base_fp.consistent_with(&fp);
        let includable = viable && {
            let mask = db.mask_of([at]);
            cs.inds().iter().enumerate().all(|(i, ind)| {
                tuples
                    .iter()
                    .filter(|(rel, _)| *rel == ind.from_relation)
                    .all(|(_, tuple)| {
                        db.relation(ind.to_relation).index_contains(
                            self.ind_to_index[i],
                            &tuple.project(&ind.from_attrs),
                            &mask,
                        )
                    })
            })
        };

        self.fd_graph.insert_node_at(at.index());
        self.tx_fp.insert(at.index(), fp);
        self.viable.insert(at.index(), viable);
        self.includable.insert(at.index(), includable);
        if viable {
            for other in 0..n + 1 {
                if other != at.index()
                    && self.viable[other]
                    && self.tx_fp[at.index()].consistent_with(&self.tx_fp[other])
                {
                    self.fd_graph.add_edge(at.index(), other);
                }
            }
        }

        // Remap the ΘI value groups for the shift, join the new
        // transaction, and rebuild components from the groups (the same
        // O(|groups|) reconstruction the removal path uses).
        for groups in &mut self.ind_groups {
            for entry in groups.values_mut() {
                for side in [&mut entry.0, &mut entry.1] {
                    for t in side.iter_mut() {
                        if *t >= at.0 {
                            *t += 1;
                        }
                    }
                }
            }
        }
        let mut uf = UnionFind::new(n + 1);
        let thetas = std::mem::take(&mut self.thetas_ind);
        ind_join_tx(bcdb, &thetas, &mut self.ind_groups, &mut uf, at);
        self.thetas_ind = thetas;
        let mut uf = UnionFind::new(n + 1);
        for groups in &self.ind_groups {
            for (lefts, rights) in groups.values() {
                if lefts.is_empty() || rights.is_empty() {
                    continue;
                }
                let anchor = lefts[0] as usize;
                for &x in lefts.iter().chain(rights.iter()) {
                    uf.union(anchor, x as usize);
                }
            }
        }
        self.ind_uf = uf;
    }

    /// Whether transactions `a` and `b` are mutually FD-consistent (and
    /// each viable) — the edge relation of `GfTd`, extended so that
    /// `a == b` reduces to viability.
    pub fn fd_consistent_pair(&self, a: TxId, b: TxId) -> bool {
        if a == b {
            self.viable[a.index()]
        } else {
            self.fd_graph.has_edge(a.index(), b.index())
        }
    }

    /// Whether every pair in `txs` is mutually FD-consistent and viable.
    pub fn fd_consistent_set(&self, txs: &[TxId]) -> bool {
        txs.iter().all(|t| self.viable[t.index()])
            && txs.iter().enumerate().all(|(i, &a)| {
                txs[i + 1..]
                    .iter()
                    .all(|&b| a == b || self.fd_graph.has_edge(a.index(), b.index()))
            })
    }
}

/// Joins one transaction into the ΘI groups, unioning components per the
/// group-activation rule: a value group links every left-side transaction
/// with every right-side transaction as soon as both sides are non-empty.
fn ind_join_tx(
    bcdb: &BlockchainDb,
    thetas: &[EqualityConstraint],
    groups: &mut [SideGroups],
    uf: &mut UnionFind,
    tx: TxId,
) {
    for (ti, theta) in thetas.iter().enumerate() {
        for (rel, tuple) in &bcdb.transaction(tx).tuples {
            for (is_left, my_rel, attrs) in [
                (true, theta.left_relation, &theta.left_attrs),
                (false, theta.right_relation, &theta.right_attrs),
            ] {
                if *rel != my_rel {
                    continue;
                }
                let key = tuple.project(attrs);
                let entry = groups[ti].entry(key).or_default();
                let (mine, other) = if is_left {
                    (&mut entry.0, &entry.1)
                } else {
                    (&mut entry.1, &entry.0)
                };
                if mine.contains(&tx.0) {
                    continue; // several tuples of tx may share the key
                }
                let first_on_my_side = mine.is_empty();
                mine.push(tx.0);
                if !other.is_empty() {
                    if first_on_my_side {
                        // Group transitions inactive -> active: the other
                        // side's members were not yet mutually connected.
                        for &o in other.iter() {
                            uf.union(tx.index(), o as usize);
                        }
                    } else {
                        // Already active: everyone is transitively linked.
                        uf.union(tx.index(), other[0] as usize);
                    }
                }
            }
        }
    }
}

/// ΘI: the equality constraints implied by the inclusion dependencies
/// (`R[X̄] ⊆ S[Ȳ]` gives `R[X̄] = S[Ȳ]`, §6.2).
pub fn theta_from_inds(cs: &bcdb_storage::ConstraintSet) -> Vec<EqualityConstraint> {
    cs.inds()
        .iter()
        .map(|ind| EqualityConstraint {
            left_relation: ind.from_relation,
            left_attrs: ind.from_attrs.clone(),
            right_relation: ind.to_relation,
            right_attrs: ind.to_attrs.clone(),
        })
        .collect()
}

/// The connected components of `Gq,ind` for one conjunctive query: the ΘI
/// components of [`Precomputed::ind_uf`] refined with the query-derived
/// equality constraints Θq. Proposition 2 lets `OptDCSat` solve each
/// component independently; benchmarks use this to report the component
/// structure a workload induces.
pub fn query_components(
    bcdb: &BlockchainDb,
    pre: &Precomputed,
    q: &bcdb_query::ConjunctiveQuery,
) -> Vec<Vec<usize>> {
    let mut uf = pre.ind_uf.clone();
    let thetas_q = bcdb_query::derive_query_equalities(q);
    union_by_equalities(bcdb, &thetas_q, &mut uf);
    uf.into_components()
}

/// Merges, in `uf`, every pair of pending transactions joined by some
/// equality constraint in `thetas`: `T` and `T'` are joined when tuples
/// `t ∈ T`, `t' ∈ T'` match on the constraint's projections.
///
/// Implemented by grouping projections: within one value group, every
/// left-side transaction connects to every right-side transaction, which
/// collapses the whole group into one component whenever both sides are
/// non-empty.
pub fn union_by_equalities(bcdb: &BlockchainDb, thetas: &[EqualityConstraint], uf: &mut UnionFind) {
    for theta in thetas {
        let mut groups: SideGroups = FxHashMap::default();
        for tx in bcdb.tx_ids() {
            for (rel, tuple) in &bcdb.transaction(tx).tuples {
                if *rel == theta.left_relation {
                    groups
                        .entry(tuple.project(&theta.left_attrs))
                        .or_default()
                        .0
                        .push(tx.0);
                }
                if *rel == theta.right_relation {
                    groups
                        .entry(tuple.project(&theta.right_attrs))
                        .or_default()
                        .1
                        .push(tx.0);
                }
            }
        }
        for (lefts, rights) in groups.values() {
            if lefts.is_empty() || rights.is_empty() {
                continue;
            }
            let anchor = lefts[0] as usize;
            for &x in lefts.iter().chain(rights.iter()) {
                uf.union(anchor, x as usize);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bcdb_storage::{tuple, Catalog, ConstraintSet, Fd, Ind, RelationSchema, ValueType};

    /// R(a,b) key a; S(x) with S[x] ⊆ R[a].
    fn setup() -> BlockchainDb {
        let mut cat = Catalog::new();
        cat.add(RelationSchema::new("R", [("a", ValueType::Int), ("b", ValueType::Int)]).unwrap())
            .unwrap();
        cat.add(RelationSchema::new("S", [("x", ValueType::Int)]).unwrap())
            .unwrap();
        let mut cs = ConstraintSet::new();
        cs.add_fd(Fd::named_key(&cat, "R", &["a"]).unwrap());
        cs.add_ind(Ind::named(&cat, "S", &["x"], "R", &["a"]).unwrap());
        BlockchainDb::new(cat, cs)
    }

    #[test]
    fn viability_and_fd_graph() {
        let mut bc = setup();
        let r = bc.database().catalog().resolve("R").unwrap();
        bc.insert_current(r, tuple![1i64, 10i64]).unwrap();
        // T0 fine; T1 conflicts with T0 (key 2); T2 conflicts with base
        // (key 1); T3 internally inconsistent.
        bc.add_transaction("T0", [(r, tuple![2i64, 20i64])])
            .unwrap();
        bc.add_transaction("T1", [(r, tuple![2i64, 99i64])])
            .unwrap();
        bc.add_transaction("T2", [(r, tuple![1i64, 99i64])])
            .unwrap();
        bc.add_transaction("T3", [(r, tuple![5i64, 1i64]), (r, tuple![5i64, 2i64])])
            .unwrap();
        let pre = Precomputed::build(&bc);
        assert_eq!(pre.viable, vec![true, true, false, false]);
        assert!(!pre.fd_graph.has_edge(0, 1)); // conflict
        assert!(!pre.fd_graph.has_edge(0, 2)); // T2 not viable
        assert!(!pre.fd_graph.has_edge(1, 3));
        assert!(pre.fd_consistent_pair(TxId(0), TxId(0)));
        assert!(!pre.fd_consistent_pair(TxId(0), TxId(1)));
        assert!(pre.fd_consistent_set(&[TxId(0)]));
        assert!(!pre.fd_consistent_set(&[TxId(0), TxId(1)]));
    }

    #[test]
    fn identical_tuples_do_not_conflict() {
        let mut bc = setup();
        let r = bc.database().catalog().resolve("R").unwrap();
        bc.add_transaction("T0", [(r, tuple![1i64, 10i64])])
            .unwrap();
        bc.add_transaction("T1", [(r, tuple![1i64, 10i64])])
            .unwrap();
        let pre = Precomputed::build(&bc);
        assert!(pre.fd_graph.has_edge(0, 1));
    }

    #[test]
    fn includable_requires_ind_support() {
        let mut bc = setup();
        let r = bc.database().catalog().resolve("R").unwrap();
        let s = bc.database().catalog().resolve("S").unwrap();
        bc.insert_current(r, tuple![1i64, 10i64]).unwrap();
        // T0: S(1) supported by base. T1: S(7) dangling. T2: R(7,_) + S(7)
        // self-supporting.
        bc.add_transaction("T0", [(s, tuple![1i64])]).unwrap();
        bc.add_transaction("T1", [(s, tuple![7i64])]).unwrap();
        bc.add_transaction("T2", [(r, tuple![7i64, 70i64]), (s, tuple![7i64])])
            .unwrap();
        let pre = Precomputed::build(&bc);
        assert_eq!(pre.includable, vec![true, false, true]);
    }

    #[test]
    fn ind_components_group_dependent_transactions() {
        let mut bc = setup();
        let r = bc.database().catalog().resolve("R").unwrap();
        let s = bc.database().catalog().resolve("S").unwrap();
        // T0 creates R(5,_); T1 consumes via S(5); T2 unrelated R(9,_).
        bc.add_transaction("T0", [(r, tuple![5i64, 50i64])])
            .unwrap();
        bc.add_transaction("T1", [(s, tuple![5i64])]).unwrap();
        bc.add_transaction("T2", [(r, tuple![9i64, 90i64])])
            .unwrap();
        let pre = Precomputed::build(&bc);
        let mut uf = pre.ind_uf.clone();
        assert!(uf.connected(0, 1));
        assert!(!uf.connected(0, 2));
    }

    #[test]
    fn empty_database_builds() {
        let bc = setup();
        let pre = Precomputed::build(&bc);
        assert!(pre.viable.is_empty());
        assert_eq!(pre.fd_graph.node_count(), 0);
    }

    /// Structural equality of two precomputations (components compared up
    /// to renaming).
    fn assert_equivalent(a: &Precomputed, b: &Precomputed) {
        assert_eq!(a.viable, b.viable, "viable");
        assert_eq!(a.includable, b.includable, "includable");
        assert_eq!(a.fd_graph.node_count(), b.fd_graph.node_count());
        assert_eq!(a.fd_graph.edge_count(), b.fd_graph.edge_count(), "edges");
        for u in 0..a.fd_graph.node_count() {
            for v in u + 1..a.fd_graph.node_count() {
                assert_eq!(
                    a.fd_graph.has_edge(u, v),
                    b.fd_graph.has_edge(u, v),
                    "edge {u}-{v}"
                );
            }
        }
        assert_eq!(
            a.ind_uf.clone().into_components(),
            b.ind_uf.clone().into_components(),
            "Gind components"
        );
    }

    #[test]
    fn incremental_matches_rebuild_on_running_shapes() {
        let mut bc = setup();
        let r = bc.database().catalog().resolve("R").unwrap();
        let s = bc.database().catalog().resolve("S").unwrap();
        bc.insert_current(r, tuple![1i64, 10i64]).unwrap();
        let mut pre = Precomputed::build(&bc);
        let additions: Vec<Vec<(bcdb_storage::RelationId, bcdb_storage::Tuple)>> = vec![
            vec![(r, tuple![2i64, 20i64])],                         // fresh key
            vec![(r, tuple![2i64, 99i64])],                         // conflicts prev
            vec![(r, tuple![1i64, 99i64])],                         // conflicts base
            vec![(s, tuple![2i64])],                                // depends on T0/T1
            vec![(r, tuple![5i64, 1i64]), (r, tuple![5i64, 2i64])], // self-broken
            vec![(r, tuple![7i64, 0i64]), (s, tuple![7i64])],       // self-supporting
            vec![(s, tuple![7i64])],                                // same key as T5's S row
        ];
        for tuples in additions {
            let tx = bc.add_transaction("t", tuples).unwrap();
            pre.note_transaction_added(&bc, tx);
            let rebuilt = Precomputed::build(&bc);
            assert_equivalent(&pre, &rebuilt);
        }
    }

    #[test]
    fn removal_matches_rebuild_and_splits_components() {
        let mut bc = setup();
        let r = bc.database().catalog().resolve("R").unwrap();
        let s = bc.database().catalog().resolve("S").unwrap();
        // T0 creates R(5,_); T1 consumes via S(5); T2 unrelated.
        bc.add_transaction("T0", [(r, tuple![5i64, 50i64])]).unwrap();
        bc.add_transaction("T1", [(s, tuple![5i64])]).unwrap();
        bc.add_transaction("T2", [(r, tuple![9i64, 90i64])]).unwrap();
        let mut pre = Precomputed::build(&bc);
        assert!(pre.ind_uf.clone().connected(0, 1));

        // Evicting T0 severs the IND link: S(5) loses its producer.
        bc.remove_transaction(TxId(0));
        pre.note_transaction_removed(TxId(0));
        assert_equivalent(&pre, &Precomputed::build(&bc));
        assert!(!pre.ind_uf.clone().connected(0, 1));
        assert_eq!(pre.viable.len(), 2);
    }

    /// Satellite regression: a transaction issued *after* an eviction that
    /// reuses the evicted transaction's key must be checked against the
    /// shifted fingerprint rows, not the stale pre-eviction layout.
    #[test]
    fn add_after_removal_sees_fresh_fd_rows() {
        let mut bc = setup();
        let r = bc.database().catalog().resolve("R").unwrap();
        // T0 and T1 fight over key 2; T2 is independent.
        bc.add_transaction("T0", [(r, tuple![2i64, 20i64])]).unwrap();
        bc.add_transaction("T1", [(r, tuple![2i64, 99i64])]).unwrap();
        bc.add_transaction("T2", [(r, tuple![3i64, 30i64])]).unwrap();
        let mut pre = Precomputed::build(&bc);

        // Evict T0; survivors renumber to T1->0, T2->1.
        bc.remove_transaction(TxId(0));
        pre.note_transaction_removed(TxId(0));

        // T3 reuses the evicted key 2: it must conflict with old-T1 (now
        // TxId(0)) and stay consistent with old-T2 (now TxId(1)).
        let t3 = bc.add_transaction("T3", [(r, tuple![2i64, 55i64])]).unwrap();
        pre.note_transaction_added(&bc, t3);
        assert_eq!(t3, TxId(2));
        assert!(!pre.fd_consistent_pair(TxId(0), TxId(2)), "key-2 conflict");
        assert!(pre.fd_consistent_pair(TxId(1), TxId(2)));
        assert!(pre.fd_consistent_set(&[TxId(1), TxId(2)]));
        assert_equivalent(&pre, &Precomputed::build(&bc));
    }

    /// Promoting a mined block = per-tx removal (descending) + base-row
    /// absorption; the result must match a cold rebuild, including the
    /// inclusion-status flip of a transaction whose IND support got mined.
    #[test]
    fn promotion_matches_rebuild_and_flips_includable() {
        let mut bc = setup();
        let r = bc.database().catalog().resolve("R").unwrap();
        let s = bc.database().catalog().resolve("S").unwrap();
        bc.insert_current(r, tuple![1i64, 10i64]).unwrap();
        // T0 creates R(5,_); T1 consumes via S(5) — not includable until
        // T0's row is base; T2 conflicts with T0 on key 5.
        bc.add_transaction("T0", [(r, tuple![5i64, 50i64])]).unwrap();
        bc.add_transaction("T1", [(s, tuple![5i64])]).unwrap();
        bc.add_transaction("T2", [(r, tuple![5i64, 99i64])]).unwrap();
        let mut pre = Precomputed::build(&bc);
        assert_eq!(pre.includable, vec![true, false, true]);

        let added = bc.promote_transactions(&[TxId(0)]).unwrap();
        pre.note_transaction_removed(TxId(0));
        pre.note_base_rows_added(&bc, &added);

        assert_equivalent(&pre, &Precomputed::build(&bc));
        // Old T1 (now 0) gained IND support; old T2 (now 1) now fights the
        // base over key 5.
        assert_eq!(pre.includable, vec![true, false]);
        assert_eq!(pre.viable, vec![true, false]);
    }

    /// Retracting base rows (a reorged-out block) restores viability and
    /// severs inclusion support, matching a cold rebuild.
    #[test]
    fn base_removal_matches_rebuild() {
        let mut bc = setup();
        let r = bc.database().catalog().resolve("R").unwrap();
        let s = bc.database().catalog().resolve("S").unwrap();
        bc.insert_current(r, tuple![1i64, 10i64]).unwrap();
        bc.insert_current(r, tuple![5i64, 50i64]).unwrap();
        // T0 conflicts with base key 5; T1 leans on base row 5 for its IND.
        bc.add_transaction("T0", [(r, tuple![5i64, 99i64])]).unwrap();
        bc.add_transaction("T1", [(s, tuple![5i64])]).unwrap();
        let mut pre = Precomputed::build(&bc);
        assert_eq!(pre.viable, vec![false, true]);
        assert_eq!(pre.includable, vec![false, true]);

        let rows = vec![(r, tuple![5i64, 50i64])];
        assert_eq!(bc.remove_base_rows(&rows), 1);
        pre.note_base_rows_removed(&bc, &rows);

        assert_equivalent(&pre, &Precomputed::build(&bc));
        assert_eq!(pre.viable, vec![true, true]);
        assert_eq!(pre.includable, vec![true, false]);
    }

    /// Inserting a transaction at its original slot (reorg undo) matches a
    /// cold rebuild of the same issue order.
    #[test]
    fn insertion_matches_rebuild() {
        let mut bc = setup();
        let r = bc.database().catalog().resolve("R").unwrap();
        let s = bc.database().catalog().resolve("S").unwrap();
        bc.insert_current(r, tuple![1i64, 10i64]).unwrap();
        bc.add_transaction("T0", [(r, tuple![5i64, 50i64])]).unwrap();
        bc.add_transaction("T2", [(r, tuple![5i64, 99i64])]).unwrap();
        let mut pre = Precomputed::build(&bc);

        // Put T1 between them: consumes T0's key via the IND and is
        // FD-consistent with both.
        bc.insert_transaction_at(TxId(1), "T1", [(s, tuple![5i64])])
            .unwrap();
        pre.note_transaction_inserted(&bc, TxId(1));

        assert_equivalent(&pre, &Precomputed::build(&bc));
        let mut uf = pre.ind_uf.clone();
        assert!(uf.connected(0, 1), "S(5) joins R(5,_) producer");
    }

    mod incremental_props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

            /// Incrementally maintained structures equal a from-scratch
            /// rebuild after every single addition.
            #[test]
            fn incremental_equals_rebuild(
                base in prop::collection::vec((0..4i64, 0..4i64), 0..3),
                txs in prop::collection::vec(
                    (prop::collection::vec((0..4i64, 0..4i64), 0..3),
                     prop::collection::vec(0..4i64, 0..2)),
                    1..6),
            ) {
                let mut bc = setup();
                let r = bc.database().catalog().resolve("R").unwrap();
                let s = bc.database().catalog().resolve("S").unwrap();
                let mut keys = std::collections::HashSet::new();
                for (a, b) in base {
                    if keys.insert(a) {
                        bc.insert_current(r, tuple![a, b]).unwrap();
                    }
                }
                let mut pre = Precomputed::build(&bc);
                for (i, (rt, st)) in txs.into_iter().enumerate() {
                    if rt.is_empty() && st.is_empty() {
                        continue;
                    }
                    let tuples: Vec<_> = rt
                        .into_iter()
                        .map(|(a, b)| (r, tuple![a, b]))
                        .chain(st.into_iter().map(|x| (s, tuple![x])))
                        .collect();
                    let tx = bc.add_transaction(format!("T{i}"), tuples).unwrap();
                    pre.note_transaction_added(&bc, tx);
                }
                let rebuilt = Precomputed::build(&bc);
                assert_equivalent(&pre, &rebuilt);
            }

            /// Random interleavings of additions and removals stay equal to
            /// a from-scratch rebuild after every step.
            #[test]
            fn interleaved_adds_and_removals_equal_rebuild(
                base in prop::collection::vec((0..4i64, 0..4i64), 0..3),
                ops in prop::collection::vec(
                    (prop::bool::ANY, 0..8usize,
                     prop::collection::vec((0..4i64, 0..4i64), 0..3),
                     prop::collection::vec(0..4i64, 0..2)),
                    1..10),
            ) {
                let mut bc = setup();
                let r = bc.database().catalog().resolve("R").unwrap();
                let s = bc.database().catalog().resolve("S").unwrap();
                let mut keys = std::collections::HashSet::new();
                for (a, b) in base {
                    if keys.insert(a) {
                        bc.insert_current(r, tuple![a, b]).unwrap();
                    }
                }
                let mut pre = Precomputed::build(&bc);
                for (i, (remove, pick, rt, st)) in ops.into_iter().enumerate() {
                    if remove && bc.pending_count() > 0 {
                        let tx = TxId((pick % bc.pending_count()) as u32);
                        bc.remove_transaction(tx);
                        pre.note_transaction_removed(tx);
                    } else {
                        if rt.is_empty() && st.is_empty() {
                            continue;
                        }
                        let tuples: Vec<_> = rt
                            .into_iter()
                            .map(|(a, b)| (r, tuple![a, b]))
                            .chain(st.into_iter().map(|x| (s, tuple![x])))
                            .collect();
                        let tx = bc.add_transaction(format!("T{i}"), tuples).unwrap();
                        pre.note_transaction_added(&bc, tx);
                    }
                    assert_equivalent(&pre, &Precomputed::build(&bc));
                }
            }

            /// Mining (promotion), reorg undo (base retraction + re-insert),
            /// and arrivals interleaved: incremental maintenance equals a
            /// from-scratch rebuild after every step.
            #[test]
            fn promotions_and_insertions_equal_rebuild(
                base in prop::collection::vec((0..4i64, 0..4i64), 0..3),
                ops in prop::collection::vec(
                    (0..4u8, 0..8usize,
                     prop::collection::vec((0..4i64, 0..4i64), 0..3),
                     prop::collection::vec(0..4i64, 0..2)),
                    1..10),
            ) {
                let mut bc = setup();
                let r = bc.database().catalog().resolve("R").unwrap();
                let s = bc.database().catalog().resolve("S").unwrap();
                let mut keys = std::collections::HashSet::new();
                for (a, b) in base {
                    if keys.insert(a) {
                        bc.insert_current(r, tuple![a, b]).unwrap();
                    }
                }
                let mut pre = Precomputed::build(&bc);
                let mut mined: Vec<Vec<(bcdb_storage::RelationId, bcdb_storage::Tuple)>> =
                    Vec::new();
                for (i, (op, pick, rt, st)) in ops.into_iter().enumerate() {
                    let tuples: Vec<_> = rt
                        .into_iter()
                        .map(|(a, b)| (r, tuple![a, b]))
                        .chain(st.into_iter().map(|x| (s, tuple![x])))
                        .collect();
                    match op {
                        // Promote a pending transaction into the base.
                        0 if bc.pending_count() > 0 => {
                            let tx = TxId((pick % bc.pending_count()) as u32);
                            let added = bc.promote_transaction(tx).unwrap();
                            pre.note_transaction_removed(tx);
                            pre.note_base_rows_added(&bc, &added);
                            mined.push(added);
                        }
                        // Retract the rows of an earlier promotion.
                        1 if !mined.is_empty() => {
                            let rows = mined.remove(pick % mined.len());
                            bc.remove_base_rows(&rows);
                            pre.note_base_rows_removed(&bc, &rows);
                        }
                        // Insert at an arbitrary slot.
                        2 if !tuples.is_empty() => {
                            let at = TxId((pick % (bc.pending_count() + 1)) as u32);
                            bc.insert_transaction_at(at, format!("I{i}"), tuples)
                                .unwrap();
                            pre.note_transaction_inserted(&bc, at);
                        }
                        // Plain arrival.
                        _ => {
                            if tuples.is_empty() {
                                continue;
                            }
                            let tx = bc.add_transaction(format!("T{i}"), tuples).unwrap();
                            pre.note_transaction_added(&bc, tx);
                        }
                    }
                    assert_equivalent(&pre, &Precomputed::build(&bc));
                }
            }
        }
    }
}
