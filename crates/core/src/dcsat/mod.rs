//! Denial-constraint satisfaction (§5–§6 of the paper).
//!
//! `D |= ¬q` iff the Boolean query `q` is false over *every* possible world
//! of the blockchain database `D`. Four algorithms are provided:
//!
//! * [`naive`] — the paper's `NaiveDCSat`: enumerate maximal cliques of
//!   `GfTd`, build each maximal world with `getMaximal`, evaluate `q`.
//!   Sound for monotonic constraints.
//! * [`opt`] — the paper's `OptDCSat`: additionally decompose along the
//!   connected components of `Gq,ind` and prune components that cannot
//!   cover the query's constants. Sound for monotonic *connected
//!   conjunctive* constraints.
//! * [`tractable`] — PTIME deciders for the polynomial cases of
//!   Theorems 1–2 (e.g. conjunctive constraints under FDs-only or
//!   INDs-only).
//! * [`oracle`] — exhaustive enumeration of `Poss(D)`; exponential, but
//!   sound for *every* constraint. Used as the validation oracle and as
//!   the fallback for non-monotonic constraints outside the tractable
//!   cases.
//!
//! The top-level [`dcsat`] routes automatically; [`DcSatOptions`] can force
//! an algorithm and toggle each optimization (for the ablation benchmarks).

pub mod naive;
pub mod opt;
pub mod oracle;
pub mod tractable;

#[cfg(test)]
mod tests;

use crate::db::BlockchainDb;
use crate::error::CoreError;
use crate::precompute::Precomputed;
use bcdb_graph::CliqueStrategy;
use bcdb_query::{
    atom_graph_complete, evaluate_aggregate, evaluate_bool, is_connected, monotonicity, prepare,
    prepare_aggregate, DenialConstraint, Monotonicity, PreparedAggregate, PreparedQuery,
};
use bcdb_storage::{Database, WorldMask};

/// Which algorithm to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Algorithm {
    /// Route automatically: tractable case if one applies, else
    /// `OptDCSat` (monotonic + connected conjunctive), else `NaiveDCSat`
    /// (monotonic), else the exhaustive oracle.
    #[default]
    Auto,
    /// Force the paper's `NaiveDCSat` (requires a monotonic constraint).
    Naive,
    /// Force the paper's `OptDCSat` (requires monotonic, connected,
    /// conjunctive).
    Opt,
    /// Force a tractable decider (errors if none applies).
    Tractable,
    /// Force exhaustive possible-world enumeration.
    Oracle,
}

/// Options controlling [`dcsat`].
#[derive(Clone, Copy, Debug)]
pub struct DcSatOptions {
    /// Algorithm selection.
    pub algorithm: Algorithm,
    /// Maximal-clique enumeration strategy.
    pub clique_strategy: CliqueStrategy,
    /// §6.3's monotone pre-check: evaluate `q` over `R ∪ ⋃T` first; if
    /// false there, it is false in every world.
    pub use_precheck: bool,
    /// `OptDCSat`'s constant-covers pruning of components.
    pub use_covers: bool,
    /// Process `OptDCSat` components on multiple threads (extension).
    pub parallel: bool,
}

impl Default for DcSatOptions {
    fn default() -> Self {
        DcSatOptions {
            algorithm: Algorithm::Auto,
            clique_strategy: CliqueStrategy::Pivot,
            use_precheck: true,
            use_covers: true,
            parallel: false,
        }
    }
}

/// Counters describing what an algorithm did.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DcSatStats {
    /// Name of the algorithm that actually ran.
    pub algorithm: &'static str,
    /// Whether the `R ∪ ⋃T` pre-check short-circuited.
    pub precheck_short_circuit: bool,
    /// Maximal cliques enumerated.
    pub cliques_enumerated: usize,
    /// Possible worlds on which the constraint was evaluated.
    pub worlds_evaluated: usize,
    /// `Gq,ind` components in total (OptDCSat).
    pub components_total: usize,
    /// Components that survived the covers check (OptDCSat).
    pub components_checked: usize,
    /// Query matches examined (tractable deciders).
    pub matches_examined: usize,
}

/// The result of a denial-constraint satisfaction check.
#[derive(Clone, Debug)]
pub struct DcSatOutcome {
    /// `true` iff `D |= ¬q`: the constraint holds in every possible world.
    pub satisfied: bool,
    /// When unsatisfied: a possible world over which `q` evaluates to true
    /// (useful for diagnosing which pending transactions are dangerous).
    pub witness: Option<WorldMask>,
    /// What the algorithm did.
    pub stats: DcSatStats,
}

impl DcSatOutcome {
    pub(crate) fn satisfied(stats: DcSatStats) -> Self {
        DcSatOutcome {
            satisfied: true,
            witness: None,
            stats,
        }
    }

    pub(crate) fn unsatisfied(witness: WorldMask, stats: DcSatStats) -> Self {
        DcSatOutcome {
            satisfied: false,
            witness: Some(witness),
            stats,
        }
    }
}

/// A denial constraint compiled against the database (join order and probe
/// indexes fixed). Reusable across many [`dcsat_with`] calls.
#[derive(Clone, Debug)]
pub enum PreparedConstraint {
    /// A conjunctive constraint.
    Conjunctive(PreparedQuery),
    /// An aggregate constraint.
    Aggregate(PreparedAggregate),
}

impl PreparedConstraint {
    /// Compiles `dc` (building any indexes its plan probes).
    pub fn prepare(db: &mut Database, dc: &DenialConstraint) -> Self {
        match dc {
            DenialConstraint::Conjunctive(q) => PreparedConstraint::Conjunctive(prepare(db, q)),
            DenialConstraint::Aggregate(a) => {
                PreparedConstraint::Aggregate(prepare_aggregate(db, a))
            }
        }
    }

    /// Whether the underlying query evaluates to true in the world `mask`.
    pub fn holds(&self, db: &Database, mask: &WorldMask) -> bool {
        match self {
            PreparedConstraint::Conjunctive(pq) => evaluate_bool(db, pq, mask),
            PreparedConstraint::Aggregate(pa) => evaluate_aggregate(db, pa, mask),
        }
    }

    /// The conjunctive prepared query, if this is one.
    pub fn as_conjunctive(&self) -> Option<&PreparedQuery> {
        match self {
            PreparedConstraint::Conjunctive(pq) => Some(pq),
            PreparedConstraint::Aggregate(_) => None,
        }
    }
}

/// Decides `D |= ¬q`, building the precomputed structures internally.
/// See [`dcsat_with`] to reuse structures across calls.
pub fn dcsat(
    bcdb: &mut BlockchainDb,
    dc: &DenialConstraint,
    opts: &DcSatOptions,
) -> Result<DcSatOutcome, CoreError> {
    dc.validate(bcdb.database().catalog())?;
    let pre = Precomputed::build(bcdb);
    dcsat_with(bcdb, &pre, dc, opts)
}

/// Decides `D |= ¬q` using already-built steady-state structures `pre`
/// (which must reflect the current pending set).
pub fn dcsat_with(
    bcdb: &mut BlockchainDb,
    pre: &Precomputed,
    dc: &DenialConstraint,
    opts: &DcSatOptions,
) -> Result<DcSatOutcome, CoreError> {
    dc.validate(bcdb.database().catalog())?;
    let pc = PreparedConstraint::prepare(bcdb.database_mut(), dc);
    let mono = monotonicity(dc);
    let connected = match dc {
        DenialConstraint::Conjunctive(q) => is_connected(q),
        DenialConstraint::Aggregate(_) => false, // the paper's notion applies to CQs only
    };

    match opts.algorithm {
        Algorithm::Auto => {
            if let Some(case) = tractable::classify(bcdb, dc) {
                return Ok(tractable::run(bcdb, pre, dc, &pc, case, opts));
            }
            match mono {
                Monotonicity::Monotone => {
                    // Auto picks OptDCSat only when Proposition 2's
                    // decomposition is provably complete for this query
                    // (see `atom_graph_complete`); forcing Algorithm::Opt
                    // trusts the paper's proposition as stated.
                    let prop2_safe = match dc {
                        DenialConstraint::Conjunctive(q) => atom_graph_complete(q),
                        DenialConstraint::Aggregate(_) => false,
                    };
                    if connected && prop2_safe {
                        // Covers info needs &mut for index building — do it
                        // before entering the read-only phase.
                        let covers = opt::CoversInfo::build(bcdb, pc.as_conjunctive().unwrap());
                        Ok(opt::run(bcdb, pre, &pc, &covers, opts))
                    } else {
                        Ok(naive::run(bcdb, pre, &pc, opts))
                    }
                }
                Monotonicity::NonMonotone { .. } => Ok(oracle::run(bcdb, pre, &pc)),
            }
        }
        Algorithm::Naive => {
            if let Monotonicity::NonMonotone { reason } = mono {
                return Err(CoreError::NotMonotonic { reason });
            }
            Ok(naive::run(bcdb, pre, &pc, opts))
        }
        Algorithm::Opt => {
            if let Monotonicity::NonMonotone { reason } = mono {
                return Err(CoreError::NotMonotonic { reason });
            }
            let Some(pq) = pc.as_conjunctive() else {
                return Err(CoreError::NotConnected);
            };
            if !connected {
                return Err(CoreError::NotConnected);
            }
            let covers = opt::CoversInfo::build(bcdb, pq);
            Ok(opt::run(bcdb, pre, &pc, &covers, opts))
        }
        Algorithm::Tractable => match tractable::classify(bcdb, dc) {
            Some(case) => Ok(tractable::run(bcdb, pre, dc, &pc, case, opts)),
            None => Err(CoreError::NotTractable {
                detail: "no PTIME case of Theorems 1-2 matches this query/constraint combination"
                    .into(),
            }),
        },
        Algorithm::Oracle => Ok(oracle::run(bcdb, pre, &pc)),
    }
}
