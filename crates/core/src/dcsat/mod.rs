//! Denial-constraint satisfaction (§5–§6 of the paper).
//!
//! `D |= ¬q` iff the Boolean query `q` is false over *every* possible world
//! of the blockchain database `D`. Four algorithms are provided:
//!
//! * [`naive`] — the paper's `NaiveDCSat`: enumerate maximal cliques of
//!   `GfTd`, build each maximal world with `getMaximal`, evaluate `q`.
//!   Sound for monotonic constraints.
//! * [`opt`] — the paper's `OptDCSat`: additionally decompose along the
//!   connected components of `Gq,ind` and prune components that cannot
//!   cover the query's constants. Sound for monotonic *connected
//!   conjunctive* constraints.
//! * [`tractable`] — PTIME deciders for the polynomial cases of
//!   Theorems 1–2 (e.g. conjunctive constraints under FDs-only or
//!   INDs-only).
//! * [`oracle`] — exhaustive enumeration of `Poss(D)`; exponential, but
//!   sound for *every* constraint. Used as the validation oracle and as
//!   the fallback for non-monotonic constraints outside the tractable
//!   cases.
//!
//! The top-level [`dcsat`] routes automatically; [`DcSatOptions`] can force
//! an algorithm and toggle each optimization (for the ablation benchmarks).

// The internal algorithm drivers return `Result<DcSatOutcome, Exhausted>`
// where the error deliberately carries the partial `DcSatStats` accumulated
// before the budget ran out — the stats are the point, not payload bloat.
#[allow(clippy::result_large_err)]
pub mod naive;
#[allow(clippy::result_large_err)]
pub mod opt;
#[allow(clippy::result_large_err)]
pub mod oracle;
#[allow(clippy::result_large_err)]
pub mod tractable;

// The in-crate tests intentionally exercise the deprecated free-function
// wrappers alongside the `Solver` facade.
#[cfg(test)]
#[allow(deprecated)]
mod tests;

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use crate::db::BlockchainDb;
use crate::error::CoreError;
use crate::precompute::{query_components, Precomputed};
use bcdb_governor::{Budget, BudgetSpec, ExhaustionReason, UNGOVERNED};
use bcdb_graph::{CliqueCache, CliqueStrategy};
use bcdb_query::{canonical_equalities, ConjunctiveQuery, EqualityConstraint};
use bcdb_query::{
    atom_graph_complete, evaluate_aggregate, evaluate_aggregate_governed, evaluate_bool,
    evaluate_bool_delta_governed, evaluate_bool_governed, is_connected, monotonicity, prepare,
    prepare_aggregate, DenialConstraint, Monotonicity, PreparedAggregate, PreparedQuery,
};
use bcdb_storage::{Database, WorldMask};
use bcdb_telemetry::probes;

/// Which algorithm to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Algorithm {
    /// Route automatically: tractable case if one applies, else
    /// `OptDCSat` (monotonic + connected conjunctive), else `NaiveDCSat`
    /// (monotonic), else the exhaustive oracle.
    #[default]
    Auto,
    /// Force the paper's `NaiveDCSat` (requires a monotonic constraint).
    Naive,
    /// Force the paper's `OptDCSat` (requires monotonic, connected,
    /// conjunctive).
    Opt,
    /// Force a tractable decider (errors if none applies).
    Tractable,
    /// Force exhaustive possible-world enumeration.
    Oracle,
}

/// Options controlling a DCSat check.
///
/// The struct is `#[non_exhaustive]`: construct it with
/// [`DcSatOptions::default`] and the chainable `with_*` setters (or absorb
/// it into a [`Solver`](crate::Solver) builder, which adds the
/// soundness-sensitive knobs the plain options no longer expose).
#[derive(Clone, Debug)]
#[non_exhaustive]
pub struct DcSatOptions {
    /// Algorithm selection.
    pub algorithm: Algorithm,
    /// Maximal-clique enumeration strategy.
    pub clique_strategy: CliqueStrategy,
    /// §6.3's monotone pre-check: evaluate `q` over `R ∪ ⋃T` first; if
    /// false there, it is false in every world.
    pub use_precheck: bool,
    /// `OptDCSat`'s constant-covers pruning of components.
    pub use_covers: bool,
    /// Process `OptDCSat` components on multiple threads (extension).
    pub parallel: bool,
    /// Second level of parallelism (extension): when [`parallel`] is on,
    /// split large components into independent Bron–Kerbosch subproblems so
    /// a single giant component still saturates the thread pool. Has no
    /// effect on the serial path.
    ///
    /// [`parallel`]: DcSatOptions::parallel
    pub parallel_intra: bool,
    /// Delta-seeded world evaluation (extension): for negation-free
    /// conjunctive constraints whose base verdict is known false, evaluate
    /// each world with plans seeded from its pending (delta) tuples instead
    /// of re-joining from scratch. Sound by monotonicity — any new
    /// satisfying assignment must touch at least one delta tuple.
    pub use_delta: bool,
    /// Worker-thread count for the parallel paths. `None` asks the OS via
    /// `available_parallelism`. Mostly useful to tests and benchmarks that
    /// must exercise multi-threaded scheduling regardless of the machine.
    pub threads: Option<usize>,
    /// Fault injection for robustness tests: a worker whose component
    /// contains this pending-transaction index panics mid-check. `None`
    /// (the default) injects nothing. Builder-only: set through the hidden
    /// [`SolverBuilder::fault_inject_panic_tx`](crate::SolverBuilder) hook.
    pub(crate) fault_inject_panic_tx: Option<usize>,
    /// Resource limits for governed entry points ([`dcsat_governed`] and
    /// friends). Ignored by the ungoverned [`dcsat`]/[`dcsat_with`], which
    /// always run to completion.
    pub budget: BudgetSpec,
    /// Caller-supplied verdict of the constraint over the base world `R`
    /// alone, from an external cache (the monitor layer caches it per
    /// epoch). `Some(false)` lets the algorithms skip re-evaluating `R`
    /// before enumerating worlds; `Some(true)` short-circuits to a base
    /// witness outright.
    ///
    /// **Soundness contract**: the hint must describe the *current* `R`.
    /// Any mutation of the base state (a mined block, a reorg) invalidates
    /// it; the caller is responsible for epoch-tagging its cache. A wrong
    /// hint produces wrong verdicts, not errors. Builder-only: set through
    /// [`SolverBuilder::base_verdict_hint`](crate::SolverBuilder); the
    /// [`Solver`](crate::Solver) otherwise manages the hint itself from its
    /// epoch-tagged base-verdict cache.
    pub(crate) base_verdict_hint: Option<bool>,
}

impl DcSatOptions {
    /// Returns the options with [`algorithm`](Self::algorithm) replaced.
    pub fn with_algorithm(mut self, algorithm: Algorithm) -> Self {
        self.algorithm = algorithm;
        self
    }

    /// Returns the options with [`clique_strategy`](Self::clique_strategy)
    /// replaced.
    pub fn with_clique_strategy(mut self, strategy: CliqueStrategy) -> Self {
        self.clique_strategy = strategy;
        self
    }

    /// Returns the options with [`use_precheck`](Self::use_precheck) set.
    pub fn with_precheck(mut self, on: bool) -> Self {
        self.use_precheck = on;
        self
    }

    /// Returns the options with [`use_covers`](Self::use_covers) set.
    pub fn with_covers(mut self, on: bool) -> Self {
        self.use_covers = on;
        self
    }

    /// Returns the options with [`parallel`](Self::parallel) set.
    pub fn with_parallel(mut self, on: bool) -> Self {
        self.parallel = on;
        self
    }

    /// Returns the options with [`parallel_intra`](Self::parallel_intra)
    /// set.
    pub fn with_parallel_intra(mut self, on: bool) -> Self {
        self.parallel_intra = on;
        self
    }

    /// Returns the options with [`use_delta`](Self::use_delta) set.
    pub fn with_delta(mut self, on: bool) -> Self {
        self.use_delta = on;
        self
    }

    /// Returns the options with [`threads`](Self::threads) replaced.
    pub fn with_threads(mut self, threads: Option<usize>) -> Self {
        self.threads = threads;
        self
    }

    /// Returns the options with [`budget`](Self::budget) replaced.
    pub fn with_budget(mut self, budget: BudgetSpec) -> Self {
        self.budget = budget;
        self
    }

    /// Fault-injection hook for robustness harnesses that reach the solver
    /// only through a config struct (e.g. the monitor's `MonitorConfig`):
    /// a worker whose component contains pending-transaction index `tx`
    /// panics mid-check. Mirrors the hidden
    /// [`SolverBuilder::fault_inject_panic_tx`](crate::SolverBuilder) hook.
    #[doc(hidden)]
    pub fn with_fault_inject_panic_tx(mut self, tx: Option<usize>) -> Self {
        self.fault_inject_panic_tx = tx;
        self
    }
}

impl Default for DcSatOptions {
    fn default() -> Self {
        DcSatOptions {
            algorithm: Algorithm::Auto,
            clique_strategy: CliqueStrategy::Pivot,
            use_precheck: true,
            use_covers: true,
            parallel: false,
            parallel_intra: true,
            use_delta: true,
            threads: None,
            fault_inject_panic_tx: None,
            budget: BudgetSpec::UNLIMITED,
            base_verdict_hint: None,
        }
    }
}

/// Counters describing what an algorithm did.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DcSatStats {
    /// Name of the algorithm that actually ran.
    pub algorithm: &'static str,
    /// Whether the `R ∪ ⋃T` pre-check short-circuited.
    pub precheck_short_circuit: bool,
    /// Maximal cliques enumerated.
    pub cliques_enumerated: usize,
    /// Possible worlds on which the constraint was evaluated.
    pub worlds_evaluated: usize,
    /// `Gq,ind` components in total (OptDCSat).
    pub components_total: usize,
    /// Components that survived the covers check (OptDCSat).
    pub components_checked: usize,
    /// Query matches examined (tractable deciders).
    pub matches_examined: usize,
    /// Parallel workers isolated after a panic (always 0 unless a bug in a
    /// worker was contained by the panic guard).
    pub poisoned_workers: usize,
    /// Intra-component Bron–Kerbosch subproblems spawned by the two-level
    /// parallel scheduler (0 on the serial path and for unsplit components).
    pub subproblems_spawned: usize,
    /// World evaluations answered by a delta-seeded plan instead of a full
    /// re-join (see [`DcSatOptions::use_delta`]).
    pub delta_seeded_evals: usize,
    /// World evaluations that reused the cached base-world verdict — every
    /// delta-seeded evaluation, plus empty-delta worlds answered outright.
    pub base_cache_hits: usize,
    /// Work units claimed from another worker's deque by the stealing
    /// scheduler (0 on the serial path; see
    /// [`bcdb_graph::StealScheduler`]).
    pub work_steals: usize,
}

/// An algorithm stopped before reaching a definite answer. Internal result
/// type of the budget-aware algorithm drivers; governed entry points
/// convert it into [`Verdict::Unknown`], ungoverned ones into
/// [`CoreError::Exhausted`].
#[derive(Clone, Debug)]
pub struct Exhausted {
    /// What ran out (or went wrong).
    pub reason: ExhaustionReason,
    /// Work done before stopping — partial, but accurate.
    pub stats: DcSatStats,
}

/// The result of a denial-constraint satisfaction check.
#[derive(Clone, Debug)]
pub struct DcSatOutcome {
    /// `true` iff `D |= ¬q`: the constraint holds in every possible world.
    pub satisfied: bool,
    /// When unsatisfied: a possible world over which `q` evaluates to true
    /// (useful for diagnosing which pending transactions are dangerous).
    pub witness: Option<WorldMask>,
    /// What the algorithm did.
    pub stats: DcSatStats,
}

impl DcSatOutcome {
    pub(crate) fn satisfied(stats: DcSatStats) -> Self {
        DcSatOutcome {
            satisfied: true,
            witness: None,
            stats,
        }
    }

    pub(crate) fn unsatisfied(witness: WorldMask, stats: DcSatStats) -> Self {
        DcSatOutcome {
            satisfied: false,
            witness: Some(witness),
            stats,
        }
    }
}

/// The answer of a *governed* denial-constraint satisfaction check.
///
/// Soundness invariant: `Holds` and `Violated` are only ever returned when
/// fully proven — `Holds` means every possible world was covered by a sound
/// argument (complete enumeration, or monotonicity from the `R ∪ ⋃T`
/// pre-check), and `Violated`'s witness is a genuine possible world over
/// which the query evaluates to true. A run that exhausts its budget
/// returns `Unknown`, never a guess.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// `D |= ¬q`: the constraint holds in every possible world.
    Holds,
    /// The constraint can be violated; the witness world proves it.
    Violated(WorldMask),
    /// The budget ran out (or a worker was lost) before either could be
    /// proven.
    Unknown(ExhaustionReason),
}

impl Verdict {
    /// `Some(satisfied)` for definite verdicts, `None` for `Unknown`.
    pub fn satisfied(&self) -> Option<bool> {
        match self {
            Verdict::Holds => Some(true),
            Verdict::Violated(_) => Some(false),
            Verdict::Unknown(_) => None,
        }
    }

    /// Whether this is a definite (proven) answer.
    pub fn is_definite(&self) -> bool {
        !matches!(self, Verdict::Unknown(_))
    }

    /// The witness world, if the constraint was proven violated.
    pub fn witness(&self) -> Option<&WorldMask> {
        match self {
            Verdict::Violated(w) => Some(w),
            _ => None,
        }
    }
}

/// The result of a governed denial-constraint satisfaction check.
#[derive(Clone, Debug)]
pub struct GovernedOutcome {
    /// The (possibly indefinite) answer. See [`Verdict`].
    pub verdict: Verdict,
    /// What the algorithms did, including work done before any exhaustion.
    pub stats: DcSatStats,
    /// When the primary algorithm exhausted its budget but a cheaper sound
    /// fallback still produced a definite answer, the fallback's name
    /// (e.g. `"degraded/naive"`, `"degraded/monotone-precheck"`,
    /// `"degraded/base-world"`). `None` when the primary answer stood.
    pub degraded_to: Option<&'static str>,
    /// Wall-clock time consumed by the check (primary + any fallbacks).
    pub elapsed: std::time::Duration,
}

/// A denial constraint compiled against the database (join order and probe
/// indexes fixed). Reusable across many [`dcsat_with`] calls.
#[derive(Clone, Debug)]
pub enum PreparedConstraint {
    /// A conjunctive constraint.
    Conjunctive(PreparedQuery),
    /// An aggregate constraint.
    Aggregate(PreparedAggregate),
}

impl PreparedConstraint {
    /// Compiles `dc` (building any indexes its plan probes).
    pub fn prepare(db: &mut Database, dc: &DenialConstraint) -> Self {
        match dc {
            DenialConstraint::Conjunctive(q) => PreparedConstraint::Conjunctive(prepare(db, q)),
            DenialConstraint::Aggregate(a) => {
                PreparedConstraint::Aggregate(prepare_aggregate(db, a))
            }
        }
    }

    /// Whether the underlying query evaluates to true in the world `mask`.
    pub fn holds(&self, db: &Database, mask: &WorldMask) -> bool {
        match self {
            PreparedConstraint::Conjunctive(pq) => evaluate_bool(db, pq, mask),
            PreparedConstraint::Aggregate(pa) => evaluate_aggregate(db, pa, mask),
        }
    }

    /// Budget-aware variant of [`PreparedConstraint::holds`]: `Ok` answers
    /// are definite, `Err` means the budget ran out mid-evaluation.
    pub fn holds_governed(
        &self,
        db: &Database,
        mask: &WorldMask,
        budget: &Budget,
    ) -> Result<bool, ExhaustionReason> {
        match self {
            PreparedConstraint::Conjunctive(pq) => evaluate_bool_governed(db, pq, mask, budget),
            PreparedConstraint::Aggregate(pa) => {
                evaluate_aggregate_governed(db, pa, mask, budget)
            }
        }
    }

    /// The conjunctive prepared query, if this is one.
    pub fn as_conjunctive(&self) -> Option<&PreparedQuery> {
        match self {
            PreparedConstraint::Conjunctive(pq) => Some(pq),
            PreparedConstraint::Aggregate(_) => None,
        }
    }

    /// Whether [`eval_world`] may take the delta-seeded path for this
    /// constraint: conjunctive and negation-free (monotone in the delta).
    pub(crate) fn delta_capable(&self) -> bool {
        matches!(self, PreparedConstraint::Conjunctive(pq) if pq.seedable())
    }
}

/// Evaluates the constraint over one maximal world, preferring a
/// delta-seeded plan when sound. Increments `worlds_evaluated` and the
/// delta counters.
///
/// Soundness precondition for the delta path: the caller has already
/// established that the query is **false over the base world** `R` (both
/// `NaiveDCSat` and `OptDCSat` check `R` before enumerating worlds when
/// `use_delta` applies). Every world is `R` plus its active pending tuples,
/// and the query is negation-free, hence monotone in the added tuples: a
/// satisfying assignment either exists in `R` alone (excluded by the cached
/// base verdict) or touches at least one delta tuple — exactly what the
/// delta-seeded plans enumerate. An empty-delta world *is* `R` and is
/// answered from the cache without any evaluation.
pub(crate) fn eval_world(
    db: &Database,
    pc: &PreparedConstraint,
    world: &WorldMask,
    opts: &DcSatOptions,
    budget: &Budget,
    stats: &mut DcSatStats,
) -> Result<bool, ExhaustionReason> {
    let _wc_span = probes::CORE_PHASE_WORLD_CHECKS_NS.span();
    stats.worlds_evaluated += 1;
    if opts.use_delta {
        if let PreparedConstraint::Conjunctive(pq) = pc {
            if pq.seedable() {
                stats.base_cache_hits += 1;
                probes::CORE_BASE_CACHE_HITS.incr();
                if world.txs().next().is_none() {
                    return Ok(false);
                }
                stats.delta_seeded_evals += 1;
                return evaluate_bool_delta_governed(db, pq, world, budget);
            }
        }
    }
    pc.holds_governed(db, world, budget)
}

/// A refined `Gq,ind` partition (component member lists), shared across
/// the constraints of a batch.
type SharedPartition = Arc<Vec<Vec<usize>>>;

/// Reuse view for one governed check or one [`Solver::check_batch`] run
/// (see `crate::solver`): the refined `Gq,ind` partition per canonical Θq
/// list, and the component-keyed clique cache.
///
/// By default both stores are private to the view and die with it — sound
/// because the pending set is frozen for the view's lifetime. When backed
/// by a [`SharedEnumCache`](crate::cache::SharedEnumCache)
/// (via [`ReuseCtx::with_shared`]) the stores outlive the view and are
/// shared across sessions; the shared cache's generation-checked
/// invalidation hooks keep them sound across mutations. Either way the
/// view keeps its *own* hit/miss counters, so per-batch (and per-tenant)
/// reuse accounting stays exact against a long-lived backing store.
pub(crate) struct ReuseCtx {
    /// Long-lived backing store, when attached.
    shared: Option<Arc<crate::cache::SharedEnumCache>>,
    /// Refined partitions keyed by the *exact* canonical Θq list — a hash
    /// signature alone could collide two different refinements, which would
    /// be silently unsound. Used only when no shared backing is attached.
    partitions: Mutex<HashMap<Vec<EqualityConstraint>, SharedPartition>>,
    /// Complete per-component clique enumerations, in local induced-subgraph
    /// indices (the component member list is the local→global mapping).
    /// Used only when no shared backing is attached.
    local_cliques: CliqueCache,
    /// Components answered from the clique store through *this* view.
    hits: std::sync::atomic::AtomicU64,
    /// Components this view had to enumerate afresh.
    misses: std::sync::atomic::AtomicU64,
    /// Sequence number of the batch constraint currently being checked;
    /// labels the work-stealing scheduler's (constraint × component ×
    /// subproblem) units. Purely diagnostic — results never depend on it.
    constraint_seq: std::sync::atomic::AtomicUsize,
}

impl ReuseCtx {
    pub(crate) fn new() -> Self {
        ReuseCtx {
            shared: None,
            partitions: Mutex::new(HashMap::new()),
            local_cliques: CliqueCache::new(),
            hits: std::sync::atomic::AtomicU64::new(0),
            misses: std::sync::atomic::AtomicU64::new(0),
            constraint_seq: std::sync::atomic::AtomicUsize::new(0),
        }
    }

    /// A view backed by a cross-session shared cache: partition and clique
    /// probes read and seed the shared stores instead of view-local ones.
    pub(crate) fn with_shared(cache: Arc<crate::cache::SharedEnumCache>) -> Self {
        let mut ctx = ReuseCtx::new();
        ctx.shared = Some(cache);
        ctx
    }

    /// The clique store this view reads and seeds.
    fn cliques(&self) -> &CliqueCache {
        match &self.shared {
            Some(cache) => cache.cliques(),
            None => &self.local_cliques,
        }
    }

    /// Uncharged peek (shaping work items before the charged probe).
    pub(crate) fn peek_cliques(&self, component: &[usize]) -> Option<Arc<Vec<Vec<usize>>>> {
        self.cliques().peek(component)
    }

    /// Charged probe: counts a hit or miss on both the backing store and
    /// this view, returning the cached enumeration or a vacant slot.
    pub(crate) fn clique_entry<'a>(&'a self, component: &[usize]) -> bcdb_graph::CliqueEntry<'a> {
        let entry = self.cliques().entry(component);
        match &entry {
            bcdb_graph::CliqueEntry::Hit(_) => {
                self.hits.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
            }
            bcdb_graph::CliqueEntry::Miss(_) => {
                self.misses.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
            }
        };
        entry
    }

    /// Uncharged publish of a **complete** enumeration (deferred-harvest
    /// path; the charged probe already ran through [`ReuseCtx::clique_entry`]).
    pub(crate) fn publish_cliques(&self, component: Vec<usize>, cliques: Vec<Vec<usize>>) {
        self.cliques().publish_complete(component, cliques);
    }

    /// Components answered from the cache through this view.
    pub(crate) fn hits(&self) -> u64 {
        self.hits.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Components this view enumerated afresh.
    pub(crate) fn misses(&self) -> u64 {
        self.misses.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Advances to the next batch constraint (called once per constraint
    /// by `Solver::check_batch`), returning its sequence number.
    pub(crate) fn begin_constraint(&self) -> usize {
        self.constraint_seq
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed)
    }

    /// The current constraint's sequence number (0 before any
    /// `begin_constraint`, i.e. outside a batch).
    pub(crate) fn constraint_tag(&self) -> usize {
        self.constraint_seq
            .load(std::sync::atomic::Ordering::Relaxed)
            .saturating_sub(1)
    }

    /// The refined `Gq,ind` partition for `q`, computed at most once per
    /// distinct canonical Θq list (per backing-store lifetime).
    pub(crate) fn partition(
        &self,
        bcdb: &BlockchainDb,
        pre: &Precomputed,
        q: &ConjunctiveQuery,
    ) -> Arc<Vec<Vec<usize>>> {
        let key = canonical_equalities(q);
        if let Some(cache) = &self.shared {
            return cache.partition_or_compute(key, || query_components(bcdb, pre, q));
        }
        if let Some(p) = self.partitions.lock().unwrap().get(&key) {
            return Arc::clone(p);
        }
        let p = Arc::new(query_components(bcdb, pre, q));
        self.partitions
            .lock()
            .unwrap()
            .entry(key)
            .or_insert_with(|| Arc::clone(&p))
            .clone()
    }
}

/// Decides `D |= ¬q`, building the precomputed structures internally.
#[deprecated(note = "use Solver")]
pub fn dcsat(
    bcdb: &mut BlockchainDb,
    dc: &DenialConstraint,
    opts: &DcSatOptions,
) -> Result<DcSatOutcome, CoreError> {
    dc.validate(bcdb.database().catalog())?;
    let pre = Precomputed::build(bcdb);
    check_ungoverned(bcdb, &pre, dc, opts)
}

/// Decides `D |= ¬q` using already-built steady-state structures `pre`
/// (which must reflect the current pending set).
#[deprecated(note = "use Solver")]
pub fn dcsat_with(
    bcdb: &mut BlockchainDb,
    pre: &Precomputed,
    dc: &DenialConstraint,
    opts: &DcSatOptions,
) -> Result<DcSatOutcome, CoreError> {
    check_ungoverned(bcdb, pre, dc, opts)
}

/// Decides `D |= ¬q` under the resource limits in `opts.budget`, building
/// the precomputed structures internally. Never guesses: when the budget
/// runs out, cheap *sound* fallbacks are tried (see [`GovernedOutcome`]),
/// and failing those the verdict is [`Verdict::Unknown`].
#[deprecated(note = "use Solver")]
pub fn dcsat_governed(
    bcdb: &mut BlockchainDb,
    dc: &DenialConstraint,
    opts: &DcSatOptions,
) -> Result<GovernedOutcome, CoreError> {
    dc.validate(bcdb.database().catalog())?;
    let pre = Precomputed::build(bcdb);
    let budget = opts.budget.start();
    check_governed(bcdb, &pre, dc, opts, &budget, None)
}

/// [`dcsat_governed`] over already-built steady-state structures.
#[deprecated(note = "use Solver")]
pub fn dcsat_governed_with(
    bcdb: &mut BlockchainDb,
    pre: &Precomputed,
    dc: &DenialConstraint,
    opts: &DcSatOptions,
) -> Result<GovernedOutcome, CoreError> {
    let budget = opts.budget.start();
    check_governed(bcdb, pre, dc, opts, &budget, None)
}

/// [`dcsat_governed`] drawing from an externally-started [`Budget`] — the
/// caller keeps a handle and can [`Budget::cancel`] from another thread
/// (`opts.budget` is ignored; the supplied budget rules).
#[deprecated(note = "use Solver")]
pub fn dcsat_governed_with_budget(
    bcdb: &mut BlockchainDb,
    pre: &Precomputed,
    dc: &DenialConstraint,
    opts: &DcSatOptions,
    budget: &Budget,
) -> Result<GovernedOutcome, CoreError> {
    check_governed(bcdb, pre, dc, opts, budget, None)
}

/// Ungoverned check: runs to completion under the static unlimited budget;
/// a worker panic is the only way it can report exhaustion.
pub(crate) fn check_ungoverned(
    bcdb: &mut BlockchainDb,
    pre: &Precomputed,
    dc: &DenialConstraint,
    opts: &DcSatOptions,
) -> Result<DcSatOutcome, CoreError> {
    match route(bcdb, pre, dc, opts, &UNGOVERNED, None)? {
        Ok(outcome) => Ok(outcome),
        Err(ex) => Err(CoreError::Exhausted { reason: ex.reason }),
    }
}

/// Governed check over an externally-started budget, optionally drawing on
/// a batch [`ReuseCtx`]. The single implementation behind the deprecated
/// free functions and the [`Solver`](crate::Solver) facade.
pub(crate) fn check_governed(
    bcdb: &mut BlockchainDb,
    pre: &Precomputed,
    dc: &DenialConstraint,
    opts: &DcSatOptions,
    budget: &Budget,
    reuse: Option<&ReuseCtx>,
) -> Result<GovernedOutcome, CoreError> {
    let outcome = match route(bcdb, pre, dc, opts, budget, reuse)? {
        Ok(outcome) => {
            let verdict = match outcome.witness {
                Some(w) => Verdict::Violated(w),
                None => Verdict::Holds,
            };
            GovernedOutcome {
                verdict,
                stats: outcome.stats,
                degraded_to: None,
                elapsed: budget.elapsed(),
            }
        }
        Err(ex) => degrade(bcdb, pre, dc, opts, budget, ex),
    };
    Ok(outcome)
}

/// Validates, prepares, and dispatches to the selected algorithm. The outer
/// error is a configuration problem (invalid constraint, forced algorithm
/// that does not apply); the inner `Err` is budget exhaustion.
#[allow(clippy::type_complexity)]
fn route(
    bcdb: &mut BlockchainDb,
    pre: &Precomputed,
    dc: &DenialConstraint,
    opts: &DcSatOptions,
    budget: &Budget,
    reuse: Option<&ReuseCtx>,
) -> Result<Result<DcSatOutcome, Exhausted>, CoreError> {
    dc.validate(bcdb.database().catalog())?;
    let pc = PreparedConstraint::prepare(bcdb.database_mut(), dc);
    let mono = monotonicity(dc);
    let connected = match dc {
        DenialConstraint::Conjunctive(q) => is_connected(q),
        DenialConstraint::Aggregate(_) => false, // the paper's notion applies to CQs only
    };

    match opts.algorithm {
        Algorithm::Auto => {
            if let Some(case) = tractable::classify(bcdb, dc) {
                return Ok(tractable::run(bcdb, pre, dc, &pc, case, opts, budget));
            }
            match mono {
                Monotonicity::Monotone => {
                    // Auto picks OptDCSat only when Proposition 2's
                    // decomposition is provably complete for this query
                    // (see `atom_graph_complete`); forcing Algorithm::Opt
                    // trusts the paper's proposition as stated.
                    let prop2_safe = match dc {
                        DenialConstraint::Conjunctive(q) => atom_graph_complete(q),
                        DenialConstraint::Aggregate(_) => false,
                    };
                    if connected && prop2_safe {
                        // Covers info needs &mut for index building — do it
                        // before entering the read-only phase.
                        let covers = {
                            let _span = probes::CORE_PHASE_COVERS_NS.span();
                            opt::CoversInfo::build(bcdb, pc.as_conjunctive().unwrap())
                        };
                        Ok(opt::run(bcdb, pre, &pc, &covers, opts, budget, reuse))
                    } else {
                        Ok(naive::run(bcdb, pre, &pc, opts, budget))
                    }
                }
                Monotonicity::NonMonotone { .. } => Ok(oracle::run(bcdb, pre, &pc, budget)),
            }
        }
        Algorithm::Naive => {
            if let Monotonicity::NonMonotone { reason } = mono {
                return Err(CoreError::NotMonotonic { reason });
            }
            Ok(naive::run(bcdb, pre, &pc, opts, budget))
        }
        Algorithm::Opt => {
            if let Monotonicity::NonMonotone { reason } = mono {
                return Err(CoreError::NotMonotonic { reason });
            }
            let Some(pq) = pc.as_conjunctive() else {
                return Err(CoreError::NotConnected);
            };
            if !connected {
                return Err(CoreError::NotConnected);
            }
            let covers = {
                let _span = probes::CORE_PHASE_COVERS_NS.span();
                opt::CoversInfo::build(bcdb, pq)
            };
            Ok(opt::run(bcdb, pre, &pc, &covers, opts, budget, reuse))
        }
        Algorithm::Tractable => match tractable::classify(bcdb, dc) {
            Some(case) => Ok(tractable::run(bcdb, pre, dc, &pc, case, opts, budget)),
            None => Err(CoreError::NotTractable {
                detail: "no PTIME case of Theorems 1-2 matches this query/constraint combination"
                    .into(),
            }),
        },
        Algorithm::Oracle => Ok(oracle::run(bcdb, pre, &pc, budget)),
    }
}

/// Tuple allowance for each post-exhaustion fallback evaluation. Generous
/// enough for realistic prechecks, small enough that the whole ladder stays
/// within one extra deadline window even without a timeout set.
const GRACE_TUPLES: u64 = 1 << 20;

/// The graceful-degradation ladder, entered after the primary algorithm
/// exhausted its budget. Every rung is *sound*:
///
/// 1. **Base world** — `R` is always a possible world; if the query holds
///    over it, the constraint is definitely [`Verdict::Violated`].
/// 2. **Monotone pre-check** — for a monotone constraint, the query being
///    false over `R ∪ ⋃T` proves it false over every world:
///    [`Verdict::Holds`].
/// 3. **NaiveDCSat retry** — when the *oracle* ran out on a monotone
///    constraint, the far smaller maximal-world search may still fit in a
///    grace budget.
///
/// The rungs share one grace budget whose wall-clock allowance equals the
/// original timeout, so a deadline-bound caller waits at most ~2× the
/// deadline in total. A *cancelled* run skips the ladder entirely —
/// cancellation means stop, not "try harder".
fn degrade(
    bcdb: &mut BlockchainDb,
    pre: &Precomputed,
    dc: &DenialConstraint,
    opts: &DcSatOptions,
    budget: &Budget,
    ex: Exhausted,
) -> GovernedOutcome {
    let mut stats = ex.stats;
    let unknown = |stats: DcSatStats, degraded_to, budget: &Budget| GovernedOutcome {
        verdict: Verdict::Unknown(ex.reason.clone()),
        stats,
        degraded_to,
        elapsed: budget.elapsed(),
    };
    if matches!(ex.reason, ExhaustionReason::Cancelled) {
        return unknown(stats, None, budget);
    }
    let grace = BudgetSpec {
        timeout: opts.budget.timeout,
        max_cliques: Some(1 << 16),
        max_worlds: Some(1 << 16),
        max_tuples: Some(GRACE_TUPLES),
    }
    .start();
    let pc = PreparedConstraint::prepare(bcdb.database_mut(), dc);
    let db = bcdb.database();

    // Rung 1: the base world is always possible.
    probes::GOVERNOR_DEGRADATION_TRANSITIONS.incr();
    probes::GOVERNOR_DEGRADATION_RUNG.fetch_max(1);
    if let Ok(true) = pc.holds_governed(db, &db.base_mask(), &grace) {
        stats.worlds_evaluated += 1;
        return GovernedOutcome {
            verdict: Verdict::Violated(db.base_mask()),
            stats,
            degraded_to: Some("degraded/base-world"),
            elapsed: budget.elapsed() + grace.elapsed(),
        };
    }

    let mono = monotonicity(dc);
    if !mono.is_monotone() {
        return unknown(stats, None, budget);
    }

    // Rung 2: monotone pre-check over R ∪ ⋃T.
    probes::GOVERNOR_DEGRADATION_TRANSITIONS.incr();
    probes::GOVERNOR_DEGRADATION_RUNG.fetch_max(2);
    if let Ok(false) = pc.holds_governed(db, &db.all_mask(), &grace) {
        stats.precheck_short_circuit = true;
        probes::CORE_PRECHECK_SHORT_CIRCUITS.incr();
        return GovernedOutcome {
            verdict: Verdict::Holds,
            stats,
            degraded_to: Some("degraded/monotone-precheck"),
            elapsed: budget.elapsed() + grace.elapsed(),
        };
    }

    // Rung 3: the maximal-world search is exponentially smaller than the
    // oracle's full Poss(D) sweep; worth one bounded retry.
    if stats.algorithm == "oracle" {
        probes::GOVERNOR_DEGRADATION_TRANSITIONS.incr();
        probes::GOVERNOR_DEGRADATION_RUNG.fetch_max(3);
        if let Ok(outcome) = naive::run(bcdb, pre, &pc, opts, &grace) {
            stats.cliques_enumerated += outcome.stats.cliques_enumerated;
            stats.worlds_evaluated += outcome.stats.worlds_evaluated;
            let verdict = match outcome.witness {
                Some(w) => Verdict::Violated(w),
                None => Verdict::Holds,
            };
            return GovernedOutcome {
                verdict,
                stats,
                degraded_to: Some("degraded/naive"),
                elapsed: budget.elapsed() + grace.elapsed(),
            };
        }
    }

    unknown(stats, None, budget)
}
