//! `OptDCSat` (Figure 5 of the paper).
//!
//! For *connected* monotonic conjunctive constraints, Proposition 2 lets us
//! partition the pending transactions into the connected components of the
//! ind-q-transaction graph `Gq,ind` (equality constraints Θ = ΘI ∪ Θq) and
//! solve each component independently — no satisfying assignment can span
//! two components. Components that cannot cover the query's constants are
//! pruned entirely. As an extension over the paper, components can be
//! checked on multiple threads.

use crate::db::BlockchainDb;
use crate::dcsat::{DcSatOptions, DcSatOutcome, DcSatStats, PreparedConstraint};
use crate::precompute::{union_by_equalities, Precomputed};
use crate::worlds::get_maximal;
use bcdb_graph::{maximal_cliques, BitSet, Visit};
use bcdb_query::{constant_patterns, derive_query_equalities, ConstantPattern, PreparedQuery};
use bcdb_storage::{Source, TxId, WorldMask};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;

/// Precomputed covers information for one query: per constant pattern,
/// whether the current state covers it and which pending transactions do.
#[derive(Clone, Debug)]
pub struct CoversInfo {
    per_pattern: Vec<PatternCover>,
}

#[derive(Clone, Debug)]
struct PatternCover {
    /// A base tuple matches the pattern.
    base_covered: bool,
    /// Pending transactions containing a matching tuple.
    txs: BitSet,
}

impl CoversInfo {
    /// Builds covers information for the query (requires `&mut` to ensure
    /// the base-probe indexes exist).
    pub fn build(bcdb: &mut BlockchainDb, pq: &PreparedQuery) -> CoversInfo {
        let patterns = constant_patterns(pq.query());
        let n = bcdb.pending_count();
        let mut per_pattern = Vec::with_capacity(patterns.len());
        for pattern in &patterns {
            let idx = bcdb
                .database_mut()
                .relation_mut(pattern.relation)
                .ensure_index(&pattern.positions);
            let db = bcdb.database();
            let key = pattern.values.iter().cloned().collect();
            let mut base_covered = false;
            let mut txs = BitSet::new(n);
            for (_, row) in db.relation(pattern.relation).lookup_all(idx, &key) {
                match row.source {
                    Source::Base => base_covered = true,
                    Source::Pending(t) => txs.insert(t.index()),
                }
            }
            per_pattern.push(PatternCover { base_covered, txs });
        }
        CoversInfo { per_pattern }
    }

    /// The paper's `Covers(R, T', q)`: every constant pattern of `q` is
    /// matched by some tuple of `R` or of a transaction in `component`.
    fn covers(&self, component: &BitSet) -> bool {
        self.per_pattern
            .iter()
            .all(|p| p.base_covered || !p.txs.is_disjoint(component))
    }

    /// Number of constant-bearing atoms tracked.
    pub fn pattern_count(&self) -> usize {
        self.per_pattern.len()
    }
}

/// Extracts the constant patterns of a prepared conjunctive query (exposed
/// for tests and diagnostics).
pub fn patterns_of(pq: &PreparedQuery) -> Vec<ConstantPattern> {
    constant_patterns(pq.query())
}

/// Runs `OptDCSat`. The caller must have established that the constraint
/// is monotonic, conjunctive, and connected.
pub fn run(
    bcdb: &BlockchainDb,
    pre: &Precomputed,
    pc: &PreparedConstraint,
    covers: &CoversInfo,
    opts: &DcSatOptions,
) -> DcSatOutcome {
    let db = bcdb.database();
    let pq = pc
        .as_conjunctive()
        .expect("OptDCSat requires a conjunctive constraint");
    let mut stats = DcSatStats {
        algorithm: "opt",
        ..DcSatStats::default()
    };

    if opts.use_precheck && !pc.holds(db, &db.all_mask()) {
        stats.precheck_short_circuit = true;
        return DcSatOutcome::satisfied(stats);
    }

    // The world `R` itself is always possible but belongs to no component
    // (components partition pending transactions); check it explicitly so
    // assignments living entirely in the current state are not missed when
    // every component is pruned — or none exists.
    let base = db.base_mask();
    stats.worlds_evaluated += 1;
    if pc.holds(db, &base) {
        return DcSatOutcome::unsatisfied(base, stats);
    }

    // Components of Gq,ind = ΘI components refined with Θq edges.
    let mut uf = pre.ind_uf.clone();
    let thetas_q = derive_query_equalities(pq.query());
    union_by_equalities(bcdb, &thetas_q, &mut uf);
    let components = uf.into_components();
    stats.components_total = components.len();

    let n = bcdb.pending_count();
    let candidates: Vec<&Vec<usize>> = components
        .iter()
        .filter(|comp| {
            if !opts.use_covers {
                return true;
            }
            let set = BitSet::from_iter(n, comp.iter().copied());
            covers.covers(&set)
        })
        .collect();
    stats.components_checked = candidates.len();

    if opts.parallel && candidates.len() > 1 {
        run_parallel(bcdb, pre, pc, &candidates, opts, stats)
    } else {
        let mut witness = None;
        for comp in candidates {
            if let Some(w) = check_component(bcdb, pre, pc, comp, opts, &mut stats) {
                witness = Some(w);
                break;
            }
        }
        match witness {
            Some(w) => DcSatOutcome::unsatisfied(w, stats),
            None => DcSatOutcome::satisfied(stats),
        }
    }
}

/// Enumerates the maximal cliques of `GfTd` restricted to `component`,
/// builds each maximal world, and evaluates the constraint. Returns a
/// witness world if one satisfies the query.
fn check_component(
    bcdb: &BlockchainDb,
    pre: &Precomputed,
    pc: &PreparedConstraint,
    component: &[usize],
    opts: &DcSatOptions,
    stats: &mut DcSatStats,
) -> Option<WorldMask> {
    let db = bcdb.database();
    let (sub, mapping) = pre.fd_graph.induced_subgraph(component);
    let mut witness = None;
    maximal_cliques(&sub, opts.clique_strategy, |clique| {
        stats.cliques_enumerated += 1;
        let txs: Vec<TxId> = clique.iter().map(|&i| TxId(mapping[i] as u32)).collect();
        let world = get_maximal(bcdb, pre, &txs);
        stats.worlds_evaluated += 1;
        if pc.holds(db, &world) {
            witness = Some(world);
            Visit::Stop
        } else {
            Visit::Continue
        }
    });
    witness
}

/// Extension: check components concurrently with crossbeam scoped threads.
/// First witness wins; other workers observe the stop flag and bail.
fn run_parallel(
    bcdb: &BlockchainDb,
    pre: &Precomputed,
    pc: &PreparedConstraint,
    candidates: &[&Vec<usize>],
    opts: &DcSatOptions,
    mut stats: DcSatStats,
) -> DcSatOutcome {
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(2)
        .min(candidates.len());
    let next = AtomicUsize::new(0);
    let stop = AtomicBool::new(false);
    let witness: Mutex<Option<WorldMask>> = Mutex::new(None);
    let cliques = AtomicUsize::new(0);
    let worlds = AtomicUsize::new(0);

    crossbeam::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|_| loop {
                if stop.load(Ordering::Relaxed) {
                    return;
                }
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= candidates.len() {
                    return;
                }
                let mut local = DcSatStats::default();
                let found = check_component(bcdb, pre, pc, candidates[i], opts, &mut local);
                cliques.fetch_add(local.cliques_enumerated, Ordering::Relaxed);
                worlds.fetch_add(local.worlds_evaluated, Ordering::Relaxed);
                if let Some(w) = found {
                    *witness.lock().unwrap() = Some(w);
                    stop.store(true, Ordering::Relaxed);
                    return;
                }
            });
        }
    })
    .expect("worker panicked");

    stats.cliques_enumerated = cliques.load(Ordering::Relaxed);
    stats.worlds_evaluated = worlds.load(Ordering::Relaxed);
    let w = witness.into_inner().unwrap();
    match w {
        Some(w) => DcSatOutcome::unsatisfied(w, stats),
        None => DcSatOutcome::satisfied(stats),
    }
}
