//! `OptDCSat` (Figure 5 of the paper).
//!
//! For *connected* monotonic conjunctive constraints, Proposition 2 lets us
//! partition the pending transactions into the connected components of the
//! ind-q-transaction graph `Gq,ind` (equality constraints Θ = ΘI ∪ Θq) and
//! solve each component independently — no satisfying assignment can span
//! two components. Components that cannot cover the query's constants are
//! pruned entirely. As an extension over the paper, the work is checked on
//! multiple threads at two levels: across components, and *within* a large
//! component by splitting its Bron–Kerbosch search tree into independent
//! subproblems (see [`bcdb_graph::split_subproblems`]) so a single giant
//! component still saturates the pool.

use crate::db::BlockchainDb;
use crate::dcsat::{
    eval_world, DcSatOptions, DcSatOutcome, DcSatStats, Exhausted, PreparedConstraint, ReuseCtx,
};
use crate::precompute::{query_components, Precomputed};
use crate::worlds::{get_maximal_into, MaximalScratch};
use std::sync::Arc;
use bcdb_governor::{Budget, ExhaustionReason};
use bcdb_graph::{
    expand_subproblem_governed_in, maximal_cliques_governed_in, split_subproblems, BitSet,
    CliqueEntry, CliqueSubproblem, ExpandArena, StealScheduler, UndirectedGraph, Visit, WorkUnit,
};
use bcdb_query::{constant_patterns, ConstantPattern, PreparedQuery};
use bcdb_storage::{Source, TxId, WorldMask};
use bcdb_telemetry::probes;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;

/// A per-work-item collection slot for a complete clique enumeration,
/// filled by the worker that enumerated it and harvested into the batch
/// [`ReuseCtx`] cache afterwards.
type CliqueSlot = Mutex<Option<Vec<Vec<usize>>>>;

/// Precomputed covers information for one query: per constant pattern,
/// whether the current state covers it and which pending transactions do.
#[derive(Clone, Debug)]
pub struct CoversInfo {
    per_pattern: Vec<PatternCover>,
}

#[derive(Clone, Debug)]
struct PatternCover {
    /// A base tuple matches the pattern.
    base_covered: bool,
    /// Pending transactions containing a matching tuple.
    txs: BitSet,
}

impl CoversInfo {
    /// Builds covers information for the query (requires `&mut` to ensure
    /// the base-probe indexes exist).
    pub fn build(bcdb: &mut BlockchainDb, pq: &PreparedQuery) -> CoversInfo {
        let patterns = constant_patterns(pq.query());
        let n = bcdb.pending_count();
        let mut per_pattern = Vec::with_capacity(patterns.len());
        for pattern in &patterns {
            let idx = bcdb
                .database_mut()
                .relation_mut(pattern.relation)
                .ensure_index(&pattern.positions);
            let db = bcdb.database();
            let key = pattern.values.iter().cloned().collect();
            let mut base_covered = false;
            let mut txs = BitSet::new(n);
            for (_, row) in db.relation(pattern.relation).lookup_all(idx, &key) {
                match row.source {
                    Source::Base => base_covered = true,
                    Source::Pending(t) => txs.insert(t.index()),
                }
            }
            per_pattern.push(PatternCover { base_covered, txs });
        }
        CoversInfo { per_pattern }
    }

    /// The paper's `Covers(R, T', q)`: every constant pattern of `q` is
    /// matched by some tuple of `R` or of a transaction in `component`.
    fn covers(&self, component: &BitSet) -> bool {
        self.per_pattern
            .iter()
            .all(|p| p.base_covered || !p.txs.is_disjoint(component))
    }

    /// Number of constant-bearing atoms tracked.
    pub fn pattern_count(&self) -> usize {
        self.per_pattern.len()
    }
}

/// Extracts the constant patterns of a prepared conjunctive query (exposed
/// for tests and diagnostics).
pub fn patterns_of(pq: &PreparedQuery) -> Vec<ConstantPattern> {
    constant_patterns(pq.query())
}

/// Components with at least this many transactions are split into
/// intra-component Bron–Kerbosch subproblems when
/// [`DcSatOptions::parallel_intra`] is on. Below it the whole component is
/// cheaper to check as a single unit of work.
const SPLIT_THRESHOLD: usize = 16;

/// Robustness-test fault injection (see
/// [`DcSatOptions::fault_inject_panic_tx`]): panics when the component
/// being checked contains the poisoned transaction index.
fn inject_fault(opts: &DcSatOptions, component: &[usize]) {
    if let Some(poison) = opts.fault_inject_panic_tx {
        if component.contains(&poison) {
            panic!("injected fault: component contains tx {poison}");
        }
    }
}

/// Worker threads for the parallel paths.
fn worker_threads(opts: &DcSatOptions) -> usize {
    opts.threads
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(2)
        })
        .max(1)
}

/// One surviving component with its induced `GfTd` subgraph built once and
/// shared by every work item derived from it.
struct ComponentPlan<'a> {
    component: &'a [usize],
    graph: UndirectedGraph,
    /// Subgraph node index → pending-transaction index.
    mapping: Vec<usize>,
    /// `Some` when the component was split for intra-component parallelism;
    /// `None` → the whole component is one work item.
    subproblems: Option<Vec<CliqueSubproblem>>,
    /// `Some` when a batch [`ReuseCtx`] already holds this component's
    /// complete clique enumeration: the single work item replays the cached
    /// cliques instead of re-running Bron–Kerbosch (never split).
    cached: Option<Arc<Vec<Vec<usize>>>>,
}

// A unit of parallel work is a [`WorkUnit`]: a whole component, or one
// Bron–Kerbosch subproblem of a split component, labelled with the batch
// constraint it belongs to. The flattened work list preserves sequential
// order (components in candidate order, a split component's subproblems in
// branch order), so "lowest work index" below is a deterministic,
// schedule-independent tiebreak — regardless of which worker's deque a
// unit was stolen from.

/// Builds one [`ComponentPlan`] per candidate, splitting components that
/// are large enough to be worth sharing among threads.
fn build_plans<'a>(
    pre: &Precomputed,
    candidates: &[&'a Vec<usize>],
    opts: &DcSatOptions,
    threads: usize,
    reuse: Option<&ReuseCtx>,
) -> Vec<ComponentPlan<'a>> {
    // Oversubscribe so uneven subproblem sizes still balance.
    let target = (4 * threads).max(2);
    candidates
        .iter()
        .map(|comp| {
            // An uncharged peek: the hit/miss counters are charged exactly
            // once per component, either by `run`'s parallel branch or by
            // the serial `check_component` fallback.
            if let Some(cached) = reuse.and_then(|ctx| ctx.peek_cliques(comp)) {
                return ComponentPlan {
                    component: comp,
                    graph: UndirectedGraph::new(0),
                    mapping: comp.to_vec(),
                    subproblems: None,
                    cached: Some(cached),
                };
            }
            let (graph, mapping) = pre.fd_graph.induced_subgraph(comp);
            let subproblems = if opts.parallel_intra && comp.len() >= SPLIT_THRESHOLD {
                let subs = split_subproblems(&graph, opts.clique_strategy, target);
                (subs.len() > 1).then_some(subs)
            } else {
                None
            };
            ComponentPlan {
                component: comp,
                graph,
                mapping,
                subproblems,
                cached: None,
            }
        })
        .collect()
}

/// Runs `OptDCSat` under `budget`. The caller must have established that
/// the constraint is monotonic, conjunctive, and connected. A batch
/// [`ReuseCtx`] shares refined partitions and complete per-component clique
/// enumerations across the constraints of one `Solver::check_batch`.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run(
    bcdb: &BlockchainDb,
    pre: &Precomputed,
    pc: &PreparedConstraint,
    covers: &CoversInfo,
    opts: &DcSatOptions,
    budget: &Budget,
    reuse: Option<&ReuseCtx>,
) -> Result<DcSatOutcome, Exhausted> {
    let db = bcdb.database();
    let pq = pc
        .as_conjunctive()
        .expect("OptDCSat requires a conjunctive constraint");
    let mut stats = DcSatStats {
        algorithm: "opt",
        ..DcSatStats::default()
    };

    if opts.use_precheck {
        match pc.holds_governed(db, &db.all_mask(), budget) {
            Ok(false) => {
                stats.precheck_short_circuit = true;
                probes::CORE_PRECHECK_SHORT_CIRCUITS.incr();
                return Ok(DcSatOutcome::satisfied(stats));
            }
            Ok(true) => {}
            Err(reason) => return Err(Exhausted { reason, stats }),
        }
    }

    // The world `R` itself is always possible but belongs to no component
    // (components partition pending transactions); check it explicitly so
    // assignments living entirely in the current state are not missed when
    // every component is pruned — or none exists.
    let base = db.base_mask();
    match opts.base_verdict_hint {
        // An epoch-valid external cache already knows R's verdict.
        Some(true) => {
            stats.base_cache_hits += 1;
            probes::CORE_BASE_CACHE_HITS.incr();
            return Ok(DcSatOutcome::unsatisfied(base, stats));
        }
        Some(false) => {
            stats.base_cache_hits += 1;
            probes::CORE_BASE_CACHE_HITS.incr();
        }
        None => {
            stats.worlds_evaluated += 1;
            match pc.holds_governed(db, &base, budget) {
                Ok(true) => return Ok(DcSatOutcome::unsatisfied(base, stats)),
                Ok(false) => {}
                Err(reason) => return Err(Exhausted { reason, stats }),
            }
        }
    }

    // Components of Gq,ind = ΘI components refined with Θq edges. In a
    // batch, constraints with the same canonical Θq share one partition.
    let components: Arc<Vec<Vec<usize>>> = {
        let _span = probes::CORE_PHASE_THETA_NS.span();
        match reuse {
            Some(ctx) => ctx.partition(bcdb, pre, pq.query()),
            None => Arc::new(query_components(bcdb, pre, pq.query())),
        }
    };
    stats.components_total = components.len();

    let n = bcdb.pending_count();
    let candidates: Vec<&Vec<usize>> = components
        .iter()
        .filter(|comp| {
            if !opts.use_covers {
                return true;
            }
            let set = BitSet::from_iter(n, comp.iter().copied());
            covers.covers(&set)
        })
        .collect();
    stats.components_checked = candidates.len();

    if opts.parallel {
        let threads = worker_threads(opts);
        let plans = build_plans(pre, &candidates, opts, threads, reuse);
        // Label every unit with the position of its constraint within the
        // batch (0 outside one) so stolen units remain attributable.
        let ctag = reuse.map_or(0, |ctx| ctx.constraint_tag());
        let mut work = Vec::new();
        for (pi, plan) in plans.iter().enumerate() {
            match &plan.subproblems {
                Some(subs) => {
                    work.extend((0..subs.len()).map(|si| WorkUnit::subproblem(ctag, pi, si)))
                }
                None => work.push(WorkUnit::component(ctag, pi)),
            }
        }
        stats.subproblems_spawned = plans
            .iter()
            .filter_map(|p| p.subproblems.as_ref().map(Vec::len))
            .sum();
        if work.len() > 1 {
            // Charge the reuse counters (one lookup per component) and set
            // up per-item collection slots for the uncached plans, so their
            // complete enumerations can seed the cache for the rest of the
            // batch.
            let collect: Option<Vec<CliqueSlot>> = reuse.map(|ctx| {
                for plan in &plans {
                    // A dropped vacant slot records the miss; the plan's
                    // enumeration is harvested (uncharged) below.
                    if let CliqueEntry::Hit(_) = ctx.clique_entry(plan.component) {
                        probes::CORE_SOLVER_CLIQUE_REUSE.incr();
                    }
                }
                work.iter().map(|_| Mutex::new(None)).collect()
            });
            let result = run_parallel(
                bcdb,
                pre,
                pc,
                &plans,
                &work,
                opts,
                budget,
                stats,
                threads,
                collect.as_deref(),
            );
            if let (Some(ctx), Some(slots)) = (reuse, collect) {
                harvest_completed_plans(ctx, &plans, &work, &slots);
            }
            return result;
        }
    }

    let _enum_span = probes::CORE_PHASE_ENUMERATION_NS
        .span_excluding(&probes::CORE_PHASE_WORLD_CHECKS_NS);
    let mut witness = None;
    let mut arena = ExpandArena::new();
    for comp in candidates {
        match check_component(bcdb, pre, pc, comp, opts, budget, &mut stats, reuse, &mut arena) {
            Ok(Some(w)) => {
                witness = Some(w);
                break;
            }
            Ok(None) => {}
            Err(reason) => return Err(Exhausted { reason, stats }),
        }
    }
    Ok(match witness {
        Some(w) => DcSatOutcome::unsatisfied(w, stats),
        None => DcSatOutcome::satisfied(stats),
    })
}

/// Inserts into the batch cache every uncached plan whose work items *all*
/// ran their enumeration to completion (concatenating subproblem clique
/// lists in work order reproduces the sequential enumeration exactly). A
/// plan cut short by a witness, exhaustion, or a panic leaves at least one
/// empty slot and is skipped — caching a partial enumeration would be
/// unsound.
fn harvest_completed_plans(
    ctx: &ReuseCtx,
    plans: &[ComponentPlan<'_>],
    work: &[WorkUnit],
    slots: &[Mutex<Option<Vec<Vec<usize>>>>],
) {
    for (pi, plan) in plans.iter().enumerate() {
        if plan.cached.is_some() {
            continue;
        }
        let mut cliques = Vec::new();
        let mut complete = true;
        for (wi, item) in work.iter().enumerate() {
            if item.component != pi {
                continue;
            }
            match slots[wi].lock().unwrap().take() {
                Some(part) => cliques.extend(part),
                None => {
                    complete = false;
                    break;
                }
            }
        }
        if complete {
            ctx.publish_cliques(plan.component.to_vec(), cliques);
        }
    }
}

/// Shared clique-visitor driver: `enumerate` yields maximal cliques (of a
/// whole component or of one of its subproblems, as subgraph node indexes),
/// each becomes a maximal world via `getMaximal` and is evaluated with
/// [`eval_world`]. Returns a witness world if the query holds over one,
/// `Err` if the budget ran out mid-enumeration.
#[allow(clippy::too_many_arguments)]
fn drive<F>(
    bcdb: &BlockchainDb,
    pre: &Precomputed,
    pc: &PreparedConstraint,
    mapping: &[usize],
    opts: &DcSatOptions,
    budget: &Budget,
    stats: &mut DcSatStats,
    enumerate: F,
) -> Result<Option<WorldMask>, ExhaustionReason>
where
    F: FnOnce(&mut dyn FnMut(&[usize]) -> Visit) -> Result<bool, ExhaustionReason>,
{
    let db = bcdb.database();
    let mut witness = None;
    // Exhaustion inside the visitor unwinds the enumeration via
    // `Visit::Stop` and is re-raised from `broke`.
    let mut broke: Option<ExhaustionReason> = None;
    // One world/tx/fixpoint scratch set per drive, reset per clique: the
    // visitor runs once per maximal clique, so per-clique allocation is the
    // hot path. The world is cloned only when it becomes the witness.
    let mut txs: Vec<TxId> = Vec::new();
    let mut world = db.base_mask();
    let mut scratch = MaximalScratch::default();
    let enumeration = enumerate(&mut |clique| {
        stats.cliques_enumerated += 1;
        if let Err(reason) = budget.charge_world() {
            broke = Some(reason);
            return Visit::Stop;
        }
        txs.clear();
        txs.extend(clique.iter().map(|&i| TxId(mapping[i] as u32)));
        get_maximal_into(bcdb, pre, &txs, &mut world, &mut scratch);
        match eval_world(db, pc, &world, opts, budget, stats) {
            Ok(true) => {
                witness = Some(world.clone());
                Visit::Stop
            }
            Ok(false) => Visit::Continue,
            Err(reason) => {
                broke = Some(reason);
                Visit::Stop
            }
        }
    });
    if witness.is_some() {
        return Ok(witness);
    }
    if let Some(reason) = broke {
        return Err(reason);
    }
    enumeration?;
    Ok(None)
}

/// Replays a cached complete enumeration through the visitor, charging the
/// clique budget exactly as the live enumerator's `report` would (the
/// per-expansion deadline ticks and pivot probes of a live run are skipped;
/// replays may therefore exhaust slightly later, never earlier with respect
/// to cliques).
fn replay_cliques(
    cliques: &[Vec<usize>],
    budget: &Budget,
    visit: &mut dyn FnMut(&[usize]) -> Visit,
) -> Result<bool, ExhaustionReason> {
    for clique in cliques {
        budget.charge_clique()?;
        if matches!(visit(clique), Visit::Stop) {
            return Ok(false);
        }
    }
    Ok(true)
}

/// Enumerates the maximal cliques of `GfTd` restricted to `component`,
/// builds each maximal world, and evaluates the constraint (serial path —
/// builds the induced subgraph itself). With a batch [`ReuseCtx`], a cached
/// component is replayed without touching `GfTd`, and a fresh complete
/// enumeration is recorded for the rest of the batch.
#[allow(clippy::too_many_arguments)]
fn check_component(
    bcdb: &BlockchainDb,
    pre: &Precomputed,
    pc: &PreparedConstraint,
    component: &[usize],
    opts: &DcSatOptions,
    budget: &Budget,
    stats: &mut DcSatStats,
    reuse: Option<&ReuseCtx>,
    arena: &mut ExpandArena,
) -> Result<Option<WorldMask>, ExhaustionReason> {
    inject_fault(opts, component);
    if let Some(ctx) = reuse {
        match ctx.clique_entry(component) {
            CliqueEntry::Hit(cached) => {
                probes::CORE_SOLVER_CLIQUE_REUSE.incr();
                // Cached cliques are local indices of the induced subgraph,
                // whose mapping is the component member list itself.
                return drive(bcdb, pre, pc, component, opts, budget, stats, |visit| {
                    replay_cliques(&cached, budget, visit)
                });
            }
            CliqueEntry::Miss(vacant) => {
                let (sub, mapping) = pre.fd_graph.induced_subgraph(component);
                let mut collected = Vec::new();
                let out = drive(bcdb, pre, pc, &mapping, opts, budget, stats, |visit| {
                    maximal_cliques_governed_in(
                        &sub,
                        opts.clique_strategy,
                        budget,
                        arena,
                        |c: &[usize]| {
                            collected.push(c.to_vec());
                            visit(c)
                        },
                    )
                });
                // `Ok(None)` is the only complete-enumeration outcome: a
                // witness or an exhaustion stopped early and must not seed
                // the cache (the vacant slot is simply dropped).
                if matches!(out, Ok(None)) {
                    vacant.insert_complete(collected);
                }
                return out;
            }
        }
    }
    let (sub, mapping) = pre.fd_graph.induced_subgraph(component);
    drive(bcdb, pre, pc, &mapping, opts, budget, stats, |visit| {
        maximal_cliques_governed_in(&sub, opts.clique_strategy, budget, arena, visit)
    })
}

/// Checks a whole (unsplit) component from its prepared plan, replaying the
/// cached enumeration when the batch already has one, and streaming fresh
/// cliques into `sink` so a completed run can seed the batch cache.
#[allow(clippy::too_many_arguments)]
fn check_plan_component(
    bcdb: &BlockchainDb,
    pre: &Precomputed,
    pc: &PreparedConstraint,
    plan: &ComponentPlan<'_>,
    opts: &DcSatOptions,
    budget: &Budget,
    stats: &mut DcSatStats,
    sink: Option<&mut Vec<Vec<usize>>>,
    arena: &mut ExpandArena,
) -> Result<Option<WorldMask>, ExhaustionReason> {
    inject_fault(opts, plan.component);
    if let Some(cached) = &plan.cached {
        return drive(bcdb, pre, pc, &plan.mapping, opts, budget, stats, |visit| {
            replay_cliques(cached, budget, visit)
        });
    }
    match sink {
        Some(out) => drive(bcdb, pre, pc, &plan.mapping, opts, budget, stats, |visit| {
            maximal_cliques_governed_in(
                &plan.graph,
                opts.clique_strategy,
                budget,
                arena,
                |c: &[usize]| {
                    out.push(c.to_vec());
                    visit(c)
                },
            )
        }),
        None => drive(bcdb, pre, pc, &plan.mapping, opts, budget, stats, |visit| {
            maximal_cliques_governed_in(&plan.graph, opts.clique_strategy, budget, arena, visit)
        }),
    }
}

/// Checks one Bron–Kerbosch subproblem of a split component. The
/// subproblems of a component are independent and their maximal cliques
/// partition the component's, so checking them on different workers is
/// sound and enumerates nothing twice.
#[allow(clippy::too_many_arguments)]
fn check_subproblem(
    bcdb: &BlockchainDb,
    pre: &Precomputed,
    pc: &PreparedConstraint,
    plan: &ComponentPlan<'_>,
    sub: &CliqueSubproblem,
    opts: &DcSatOptions,
    budget: &Budget,
    stats: &mut DcSatStats,
    sink: Option<&mut Vec<Vec<usize>>>,
    arena: &mut ExpandArena,
) -> Result<Option<WorldMask>, ExhaustionReason> {
    inject_fault(opts, plan.component);
    match sink {
        Some(out) => drive(bcdb, pre, pc, &plan.mapping, opts, budget, stats, |visit| {
            let collect = |c: &[usize]| {
                out.push(c.to_vec());
                visit(c)
            };
            expand_subproblem_governed_in(
                &plan.graph,
                opts.clique_strategy,
                sub,
                budget,
                arena,
                collect,
            )
        }),
        None => drive(bcdb, pre, pc, &plan.mapping, opts, budget, stats, |visit| {
            expand_subproblem_governed_in(&plan.graph, opts.clique_strategy, sub, budget, arena, visit)
        }),
    }
}

/// Extension: drain the work list (whole components and intra-component
/// subproblems) with std scoped threads over a work-stealing scheduler:
/// each worker owns a contiguous block of the flattened list and steals
/// from the back of a neighbour's deque when its own runs dry (see
/// [`StealScheduler`]). First witness wins; other workers observe the stop
/// flag and bail. Every worker reuses one [`ExpandArena`] across all the
/// units it claims, so R/P/X stacks are allocated once per worker rather
/// than once per recursion frame.
///
/// Robustness guarantees (deterministic regardless of scheduling):
/// - every worker is joined before this function returns, even when a
///   worker panics, exhausts the budget, or errs early;
/// - a panicking worker is isolated with `catch_unwind` and surfaces as
///   the *lowest-indexed* poisoned work item (reported under its component
///   index), so repeated runs report the same failure rather than
///   whichever thread lost the race — including when the item was stolen;
/// - likewise the lowest-indexed exhausted item's reason is the one
///   propagated.
///
/// Result preference after joining: a concrete witness (definite even if
/// another worker failed) > a worker panic > budget exhaustion > satisfied.
#[allow(clippy::too_many_arguments)]
fn run_parallel(
    bcdb: &BlockchainDb,
    pre: &Precomputed,
    pc: &PreparedConstraint,
    plans: &[ComponentPlan<'_>],
    work: &[WorkUnit],
    opts: &DcSatOptions,
    budget: &Budget,
    mut stats: DcSatStats,
    threads: usize,
    collect: Option<&[CliqueSlot]>,
) -> Result<DcSatOutcome, Exhausted> {
    let _enum_span = probes::CORE_PHASE_ENUMERATION_NS
        .span_excluding(&probes::CORE_PHASE_WORLD_CHECKS_NS);
    let threads = threads.min(work.len());
    // The scheduler distributes *global work indexes*: the units themselves
    // stay in `work`, and every cross-worker decision below (lowest-index
    // error, slot harvest, budget attribution) keys on the index, never on
    // which deque the unit was claimed from.
    let sched = StealScheduler::new(threads, 0..work.len());
    let stop = AtomicBool::new(false);
    let witness: Mutex<Option<WorldMask>> = Mutex::new(None);
    // First panicked item: (work index, component index, payload message);
    // the lowest work index wins so the propagated error is deterministic.
    let poisoned: Mutex<Option<(usize, usize, String)>> = Mutex::new(None);
    // First exhausted work index + reason, same lowest-index rule.
    let exhausted: Mutex<Option<(usize, ExhaustionReason)>> = Mutex::new(None);
    let cliques = AtomicUsize::new(0);
    let worlds = AtomicUsize::new(0);
    let delta_evals = AtomicUsize::new(0);
    let cache_hits = AtomicUsize::new(0);

    std::thread::scope(|scope| {
        for wid in 0..threads {
            let sched = &sched;
            let stop = &stop;
            let witness = &witness;
            let poisoned = &poisoned;
            let exhausted = &exhausted;
            let cliques = &cliques;
            let worlds = &worlds;
            let delta_evals = &delta_evals;
            let cache_hits = &cache_hits;
            scope.spawn(move || {
                let mut arena = ExpandArena::new();
                loop {
                    if stop.load(Ordering::Relaxed) {
                        return;
                    }
                    let Some(i) = sched.pop(wid) else { return };
                    let item = &work[i];
                    let plan = &plans[item.component];
                    let mut local = DcSatStats::default();
                    // Collection feeds the batch clique cache: only uncached
                    // plans collect, and only items that run to completion
                    // publish their slot (see `harvest_completed_plans`).
                    let mut sink_store: Option<Vec<Vec<usize>>> =
                        (collect.is_some() && plan.cached.is_none()).then(Vec::new);
                    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(
                        || match item.subproblem {
                            None => check_plan_component(
                                bcdb,
                                pre,
                                pc,
                                plan,
                                opts,
                                budget,
                                &mut local,
                                sink_store.as_mut(),
                                &mut arena,
                            ),
                            Some(si) => {
                                let sub = &plan.subproblems.as_ref().expect("split plan")[si];
                                check_subproblem(
                                    bcdb,
                                    pre,
                                    pc,
                                    plan,
                                    sub,
                                    opts,
                                    budget,
                                    &mut local,
                                    sink_store.as_mut(),
                                    &mut arena,
                                )
                            }
                        },
                    ));
                    if let (Some(slots), Some(done)) = (collect, sink_store) {
                        if matches!(&result, Ok(Ok(None))) {
                            *slots[i].lock().unwrap() = Some(done);
                        }
                    }
                    cliques.fetch_add(local.cliques_enumerated, Ordering::Relaxed);
                    worlds.fetch_add(local.worlds_evaluated, Ordering::Relaxed);
                    delta_evals.fetch_add(local.delta_seeded_evals, Ordering::Relaxed);
                    cache_hits.fetch_add(local.base_cache_hits, Ordering::Relaxed);
                    match result {
                        Ok(Ok(Some(w))) => {
                            *witness.lock().unwrap() = Some(w);
                            stop.store(true, Ordering::Relaxed);
                            return;
                        }
                        Ok(Ok(None)) => {}
                        Ok(Err(reason)) => {
                            let mut slot = exhausted.lock().unwrap();
                            if slot.as_ref().is_none_or(|(j, _)| i < *j) {
                                *slot = Some((i, reason));
                            }
                            stop.store(true, Ordering::Relaxed);
                            return;
                        }
                        Err(payload) => {
                            // `as_ref` reaches the inner `dyn Any` — a plain
                            // `&payload` would downcast against `Box<dyn Any>`
                            // itself and always miss.
                            let msg = payload_message(payload.as_ref());
                            let mut slot = poisoned.lock().unwrap();
                            if slot.as_ref().is_none_or(|(j, _, _)| i < *j) {
                                *slot = Some((i, item.component, msg));
                            }
                            stop.store(true, Ordering::Relaxed);
                            return;
                        }
                    }
                }
            });
        }
    });
    stats.work_steals += sched.steal_count() as usize;

    stats.cliques_enumerated += cliques.load(Ordering::Relaxed);
    stats.worlds_evaluated += worlds.load(Ordering::Relaxed);
    stats.delta_seeded_evals += delta_evals.load(Ordering::Relaxed);
    stats.base_cache_hits += cache_hits.load(Ordering::Relaxed);
    // Scheduling may have let another worker find a witness before the
    // stop flag propagated; a concrete witness is still sound and takes
    // precedence over any concurrent failure.
    let found = witness.into_inner().unwrap();
    if let Some((_, comp, msg)) = poisoned.into_inner().unwrap() {
        stats.poisoned_workers += 1;
        if let Some(w) = found {
            return Ok(DcSatOutcome::unsatisfied(w, stats));
        }
        return Err(Exhausted {
            reason: ExhaustionReason::WorkerPanicked {
                component: comp,
                message: msg,
            },
            stats,
        });
    }
    if let Some((_, reason)) = exhausted.into_inner().unwrap() {
        if let Some(w) = found {
            return Ok(DcSatOutcome::unsatisfied(w, stats));
        }
        return Err(Exhausted { reason, stats });
    }
    Ok(match found {
        Some(w) => DcSatOutcome::unsatisfied(w, stats),
        None => DcSatOutcome::satisfied(stats),
    })
}

/// Best-effort extraction of a panic payload's message.
pub(crate) fn payload_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}
