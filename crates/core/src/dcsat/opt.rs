//! `OptDCSat` (Figure 5 of the paper).
//!
//! For *connected* monotonic conjunctive constraints, Proposition 2 lets us
//! partition the pending transactions into the connected components of the
//! ind-q-transaction graph `Gq,ind` (equality constraints Θ = ΘI ∪ Θq) and
//! solve each component independently — no satisfying assignment can span
//! two components. Components that cannot cover the query's constants are
//! pruned entirely. As an extension over the paper, components can be
//! checked on multiple threads.

use crate::db::BlockchainDb;
use crate::dcsat::{DcSatOptions, DcSatOutcome, DcSatStats, Exhausted, PreparedConstraint};
use crate::precompute::{union_by_equalities, Precomputed};
use crate::worlds::get_maximal;
use bcdb_governor::{Budget, ExhaustionReason};
use bcdb_graph::{maximal_cliques_governed, BitSet, Visit};
use bcdb_query::{constant_patterns, derive_query_equalities, ConstantPattern, PreparedQuery};
use bcdb_storage::{Source, TxId, WorldMask};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;

/// Precomputed covers information for one query: per constant pattern,
/// whether the current state covers it and which pending transactions do.
#[derive(Clone, Debug)]
pub struct CoversInfo {
    per_pattern: Vec<PatternCover>,
}

#[derive(Clone, Debug)]
struct PatternCover {
    /// A base tuple matches the pattern.
    base_covered: bool,
    /// Pending transactions containing a matching tuple.
    txs: BitSet,
}

impl CoversInfo {
    /// Builds covers information for the query (requires `&mut` to ensure
    /// the base-probe indexes exist).
    pub fn build(bcdb: &mut BlockchainDb, pq: &PreparedQuery) -> CoversInfo {
        let patterns = constant_patterns(pq.query());
        let n = bcdb.pending_count();
        let mut per_pattern = Vec::with_capacity(patterns.len());
        for pattern in &patterns {
            let idx = bcdb
                .database_mut()
                .relation_mut(pattern.relation)
                .ensure_index(&pattern.positions);
            let db = bcdb.database();
            let key = pattern.values.iter().cloned().collect();
            let mut base_covered = false;
            let mut txs = BitSet::new(n);
            for (_, row) in db.relation(pattern.relation).lookup_all(idx, &key) {
                match row.source {
                    Source::Base => base_covered = true,
                    Source::Pending(t) => txs.insert(t.index()),
                }
            }
            per_pattern.push(PatternCover { base_covered, txs });
        }
        CoversInfo { per_pattern }
    }

    /// The paper's `Covers(R, T', q)`: every constant pattern of `q` is
    /// matched by some tuple of `R` or of a transaction in `component`.
    fn covers(&self, component: &BitSet) -> bool {
        self.per_pattern
            .iter()
            .all(|p| p.base_covered || !p.txs.is_disjoint(component))
    }

    /// Number of constant-bearing atoms tracked.
    pub fn pattern_count(&self) -> usize {
        self.per_pattern.len()
    }
}

/// Extracts the constant patterns of a prepared conjunctive query (exposed
/// for tests and diagnostics).
pub fn patterns_of(pq: &PreparedQuery) -> Vec<ConstantPattern> {
    constant_patterns(pq.query())
}

/// Test-only fault injection: a worker processing a component that contains
/// this pending-transaction index panics, exercising the panic-isolation
/// path of [`run_parallel`]. `usize::MAX` (the default) never matches.
#[cfg(test)]
pub(crate) static PANIC_ON_TX: AtomicUsize = AtomicUsize::new(usize::MAX);

/// Runs `OptDCSat` under `budget`. The caller must have established that
/// the constraint is monotonic, conjunctive, and connected.
pub fn run(
    bcdb: &BlockchainDb,
    pre: &Precomputed,
    pc: &PreparedConstraint,
    covers: &CoversInfo,
    opts: &DcSatOptions,
    budget: &Budget,
) -> Result<DcSatOutcome, Exhausted> {
    let db = bcdb.database();
    let pq = pc
        .as_conjunctive()
        .expect("OptDCSat requires a conjunctive constraint");
    let mut stats = DcSatStats {
        algorithm: "opt",
        ..DcSatStats::default()
    };

    if opts.use_precheck {
        match pc.holds_governed(db, &db.all_mask(), budget) {
            Ok(false) => {
                stats.precheck_short_circuit = true;
                return Ok(DcSatOutcome::satisfied(stats));
            }
            Ok(true) => {}
            Err(reason) => return Err(Exhausted { reason, stats }),
        }
    }

    // The world `R` itself is always possible but belongs to no component
    // (components partition pending transactions); check it explicitly so
    // assignments living entirely in the current state are not missed when
    // every component is pruned — or none exists.
    let base = db.base_mask();
    stats.worlds_evaluated += 1;
    match pc.holds_governed(db, &base, budget) {
        Ok(true) => return Ok(DcSatOutcome::unsatisfied(base, stats)),
        Ok(false) => {}
        Err(reason) => return Err(Exhausted { reason, stats }),
    }

    // Components of Gq,ind = ΘI components refined with Θq edges.
    let mut uf = pre.ind_uf.clone();
    let thetas_q = derive_query_equalities(pq.query());
    union_by_equalities(bcdb, &thetas_q, &mut uf);
    let components = uf.into_components();
    stats.components_total = components.len();

    let n = bcdb.pending_count();
    let candidates: Vec<&Vec<usize>> = components
        .iter()
        .filter(|comp| {
            if !opts.use_covers {
                return true;
            }
            let set = BitSet::from_iter(n, comp.iter().copied());
            covers.covers(&set)
        })
        .collect();
    stats.components_checked = candidates.len();

    if opts.parallel && candidates.len() > 1 {
        run_parallel(bcdb, pre, pc, &candidates, opts, budget, stats)
    } else {
        let mut witness = None;
        for comp in candidates {
            match check_component(bcdb, pre, pc, comp, opts, budget, &mut stats) {
                Ok(Some(w)) => {
                    witness = Some(w);
                    break;
                }
                Ok(None) => {}
                Err(reason) => return Err(Exhausted { reason, stats }),
            }
        }
        Ok(match witness {
            Some(w) => DcSatOutcome::unsatisfied(w, stats),
            None => DcSatOutcome::satisfied(stats),
        })
    }
}

/// Enumerates the maximal cliques of `GfTd` restricted to `component`,
/// builds each maximal world, and evaluates the constraint. Returns a
/// witness world if one satisfies the query, `Err` if the budget ran out
/// mid-component.
fn check_component(
    bcdb: &BlockchainDb,
    pre: &Precomputed,
    pc: &PreparedConstraint,
    component: &[usize],
    opts: &DcSatOptions,
    budget: &Budget,
    stats: &mut DcSatStats,
) -> Result<Option<WorldMask>, ExhaustionReason> {
    #[cfg(test)]
    {
        let poison = PANIC_ON_TX.load(Ordering::Relaxed);
        if component.contains(&poison) {
            panic!("injected fault: component contains tx {poison}");
        }
    }
    let db = bcdb.database();
    let (sub, mapping) = pre.fd_graph.induced_subgraph(component);
    let mut witness = None;
    // Exhaustion inside the visitor unwinds the enumeration via
    // `Visit::Stop` and is re-raised from `broke`.
    let mut broke: Option<ExhaustionReason> = None;
    let enumeration = maximal_cliques_governed(&sub, opts.clique_strategy, budget, |clique| {
        stats.cliques_enumerated += 1;
        if let Err(reason) = budget.charge_world() {
            broke = Some(reason);
            return Visit::Stop;
        }
        let txs: Vec<TxId> = clique.iter().map(|&i| TxId(mapping[i] as u32)).collect();
        let world = get_maximal(bcdb, pre, &txs);
        stats.worlds_evaluated += 1;
        match pc.holds_governed(db, &world, budget) {
            Ok(true) => {
                witness = Some(world);
                Visit::Stop
            }
            Ok(false) => Visit::Continue,
            Err(reason) => {
                broke = Some(reason);
                Visit::Stop
            }
        }
    });
    if witness.is_some() {
        return Ok(witness);
    }
    if let Some(reason) = broke {
        return Err(reason);
    }
    enumeration?;
    Ok(None)
}

/// Extension: check components concurrently with std scoped threads.
/// First witness wins; other workers observe the stop flag and bail.
///
/// Robustness guarantees (deterministic regardless of scheduling):
/// - every worker is joined before this function returns, even when a
///   worker panics, exhausts the budget, or errs early;
/// - a panicking worker is isolated with `catch_unwind` and surfaces as
///   the *lowest-indexed* poisoned component, so repeated runs report the
///   same failure rather than whichever thread lost the race;
/// - likewise the lowest-indexed exhausted component's reason is the one
///   propagated.
///
/// Result preference after joining: a concrete witness (definite even if
/// another worker failed) > a worker panic > budget exhaustion > satisfied.
fn run_parallel(
    bcdb: &BlockchainDb,
    pre: &Precomputed,
    pc: &PreparedConstraint,
    candidates: &[&Vec<usize>],
    opts: &DcSatOptions,
    budget: &Budget,
    mut stats: DcSatStats,
) -> Result<DcSatOutcome, Exhausted> {
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(2)
        .min(candidates.len());
    let next = AtomicUsize::new(0);
    let stop = AtomicBool::new(false);
    let witness: Mutex<Option<WorldMask>> = Mutex::new(None);
    // First panicked component index + payload message; the lowest index
    // wins so the propagated error is deterministic.
    let poisoned: Mutex<Option<(usize, String)>> = Mutex::new(None);
    // First exhausted component index + reason, same lowest-index rule.
    let exhausted: Mutex<Option<(usize, ExhaustionReason)>> = Mutex::new(None);
    let cliques = AtomicUsize::new(0);
    let worlds = AtomicUsize::new(0);

    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                if stop.load(Ordering::Relaxed) {
                    return;
                }
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= candidates.len() {
                    return;
                }
                let mut local = DcSatStats::default();
                let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    check_component(bcdb, pre, pc, candidates[i], opts, budget, &mut local)
                }));
                cliques.fetch_add(local.cliques_enumerated, Ordering::Relaxed);
                worlds.fetch_add(local.worlds_evaluated, Ordering::Relaxed);
                match result {
                    Ok(Ok(Some(w))) => {
                        *witness.lock().unwrap() = Some(w);
                        stop.store(true, Ordering::Relaxed);
                        return;
                    }
                    Ok(Ok(None)) => {}
                    Ok(Err(reason)) => {
                        let mut slot = exhausted.lock().unwrap();
                        if slot.as_ref().is_none_or(|(j, _)| i < *j) {
                            *slot = Some((i, reason));
                        }
                        stop.store(true, Ordering::Relaxed);
                        return;
                    }
                    Err(payload) => {
                        // `as_ref` reaches the inner `dyn Any` — a plain
                        // `&payload` would downcast against `Box<dyn Any>`
                        // itself and always miss.
                        let msg = payload_message(payload.as_ref());
                        let mut slot = poisoned.lock().unwrap();
                        if slot.as_ref().is_none_or(|(j, _)| i < *j) {
                            *slot = Some((i, msg));
                        }
                        stop.store(true, Ordering::Relaxed);
                        return;
                    }
                }
            });
        }
    });

    stats.cliques_enumerated += cliques.load(Ordering::Relaxed);
    stats.worlds_evaluated += worlds.load(Ordering::Relaxed);
    // Scheduling may have let another worker find a witness before the
    // stop flag propagated; a concrete witness is still sound and takes
    // precedence over any concurrent failure.
    let found = witness.into_inner().unwrap();
    if let Some((comp, msg)) = poisoned.into_inner().unwrap() {
        stats.poisoned_workers += 1;
        if let Some(w) = found {
            return Ok(DcSatOutcome::unsatisfied(w, stats));
        }
        return Err(Exhausted {
            reason: ExhaustionReason::WorkerPanicked {
                component: comp,
                message: msg,
            },
            stats,
        });
    }
    if let Some((_, reason)) = exhausted.into_inner().unwrap() {
        if let Some(w) = found {
            return Ok(DcSatOutcome::unsatisfied(w, stats));
        }
        return Err(Exhausted { reason, stats });
    }
    Ok(match found {
        Some(w) => DcSatOutcome::unsatisfied(w, stats),
        None => DcSatOutcome::satisfied(stats),
    })
}

/// Best-effort extraction of a panic payload's message.
fn payload_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}
