//! PTIME deciders for the tractable cases of Theorems 1 and 2.
//!
//! The paper proves several (query class, constraint kinds) combinations of
//! DCSat polynomial; this module implements deciders for the cases whose
//! algorithms follow from the structure of the problem:
//!
//! * **`Qc` over `{key, fd}`** (Thm 1.1): evaluate the positive part of the
//!   query over `R ∪ ⋃T` with transaction provenance. An assignment is
//!   *realisable* iff its support transactions are pairwise FD-consistent
//!   (worlds need not be maximal, so `R ∪ support` itself is a world) and
//!   no negated ground atom lies in `R` or in the support.
//! * **`Qc` over `{ind}`** (Thm 1.1): per assignment, collect the
//!   *forbidden* transactions (those containing a negated ground tuple);
//!   the assignment is realisable iff its support is contained in
//!   `getMaximal(R, I, T \ forbidden)`.
//! * **Positive aggregates over `{key, fd}` with θ ∈ {<, ≤}, plus
//!   max/min with θ = `=`** (Thm 2.1/2.2): for every assignment with
//!   realisable support `S`, evaluate the aggregate over the *exact* world
//!   `R ∪ S` and test θ. Completeness: any witness world `W` contains an
//!   achiever assignment whose `R ∪ S` sub-world already satisfies θ
//!   (sub-worlds only shrink count/cntd/sum/max and only grow min).
//!   `sum` additionally assumes non-negative summands (documented in
//!   DESIGN.md; monetary amounts always qualify).
//! * **Positive monotone aggregates over `{ind}`** (Thm 2.4/2.7): worlds
//!   under INDs alone form a lattice with a unique maximum
//!   `getMaximal(R, I, T)`; a monotone constraint holds in some world iff
//!   it holds there.
//!
//! Cases the paper proves CoNP-complete (anything mixing keys with INDs,
//! aggregate `=`/`>` in the wrong combinations) are routed to
//! `NaiveDCSat`/`OptDCSat`/oracle by [`super::dcsat`]. Aggregates with
//! negated bodies are likewise routed to the general algorithms — the
//! paper's Thm 2.2 covers them, but its proof (in the technical report) is
//! not reconstructible from the paper alone; see DESIGN.md.

use crate::db::BlockchainDb;
use crate::dcsat::{DcSatOptions, DcSatOutcome, DcSatStats, Exhausted, PreparedConstraint};
use crate::precompute::Precomputed;
use crate::worlds::get_maximal;
use bcdb_governor::{Budget, ExhaustionReason};
use bcdb_query::{
    for_each_match_governed, AggFunc, CmpOp, DenialConstraint, EvalOptions, Term,
};
use bcdb_storage::{Source, Tuple, TxId, Value, WorldMask};
use rustc_hash::{FxHashMap, FxHashSet};
use smallvec::SmallVec;
use std::ops::ControlFlow;

/// Which tractable decider applies.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TractableCase {
    /// Conjunctive query, constraints contain no INDs.
    ConjunctiveFdOnly,
    /// Conjunctive query, constraints contain no FDs/keys.
    ConjunctiveIndOnly,
    /// Positive aggregate, no INDs, θ ∈ {<, ≤} (any α) or θ = `=`
    /// (max/min): decide via exact sub-worlds `R ∪ support`.
    AggregateSubsetWorld,
    /// Positive monotone aggregate, no FDs/keys: decide on the unique
    /// maximal world.
    AggregateMaxWorld,
}

/// Classifies `dc` against the database's constraint kinds; `None` when no
/// tractable case applies (the CoNP-complete territory).
pub fn classify(bcdb: &BlockchainDb, dc: &DenialConstraint) -> Option<TractableCase> {
    let cs = bcdb.constraints();
    let has_fd = !cs.fds().is_empty();
    let has_ind = !cs.inds().is_empty();
    match dc {
        DenialConstraint::Conjunctive(_) => {
            if !has_ind {
                Some(TractableCase::ConjunctiveFdOnly)
            } else if !has_fd {
                Some(TractableCase::ConjunctiveIndOnly)
            } else {
                None
            }
        }
        DenialConstraint::Aggregate(agg) => {
            if !agg.body.is_positive() {
                return None;
            }
            if !has_ind {
                let subset_world_ok = matches!(agg.op, CmpOp::Lt | CmpOp::Le)
                    || (agg.op == CmpOp::Eq && matches!(agg.func, AggFunc::Max | AggFunc::Min));
                if subset_world_ok {
                    return Some(TractableCase::AggregateSubsetWorld);
                }
            }
            if !has_fd && bcdb_query::monotonicity(dc).is_monotone() {
                return Some(TractableCase::AggregateMaxWorld);
            }
            None
        }
    }
}

/// Runs the classified tractable decider under `budget`.
pub fn run(
    bcdb: &BlockchainDb,
    pre: &Precomputed,
    dc: &DenialConstraint,
    pc: &PreparedConstraint,
    case: TractableCase,
    _opts: &DcSatOptions,
    budget: &Budget,
) -> Result<DcSatOutcome, Exhausted> {
    match case {
        TractableCase::ConjunctiveFdOnly => conj_fd_only(bcdb, pre, dc, pc, budget),
        TractableCase::ConjunctiveIndOnly => conj_ind_only(bcdb, pre, dc, pc, budget),
        TractableCase::AggregateSubsetWorld => agg_subset_world(bcdb, pre, pc, budget),
        TractableCase::AggregateMaxWorld => agg_max_world(bcdb, pre, pc, budget),
    }
}

/// The distinct pending transactions supporting a match.
fn support_of(sources: &[Source]) -> SmallVec<[TxId; 8]> {
    let mut s: SmallVec<[TxId; 8]> = sources.iter().filter_map(|s| s.tx()).collect();
    s.sort_unstable();
    s.dedup();
    s
}

/// Grounds the negated atoms of `dc` under `assignment`.
fn ground_negated(
    dc: &DenialConstraint,
    assignment: &[Value],
) -> Vec<(bcdb_storage::RelationId, Tuple)> {
    dc.body()
        .negated
        .iter()
        .map(|atom| {
            let t: Tuple = atom
                .terms
                .iter()
                .map(|t| match t {
                    Term::Const(c) => c.clone(),
                    Term::Var(v) => assignment[v.index()].clone(),
                })
                .collect();
            (atom.relation, t)
        })
        .collect()
}

/// `Qc` over `{key, fd}`: provenance-checked assignment search.
fn conj_fd_only(
    bcdb: &BlockchainDb,
    pre: &Precomputed,
    dc: &DenialConstraint,
    pc: &PreparedConstraint,
    budget: &Budget,
) -> Result<DcSatOutcome, Exhausted> {
    let db = bcdb.database();
    let pq = pc.as_conjunctive().expect("conjunctive case");
    let mut stats = DcSatStats {
        algorithm: "tractable/fd-only",
        ..DcSatStats::default()
    };
    let all = db.all_mask();
    let mut witness: Option<WorldMask> = None;
    let search = for_each_match_governed(
        db,
        pq,
        &all,
        EvalOptions {
            check_negated: false,
        },
        budget,
        |m| {
            stats.matches_examined += 1;
            let support = support_of(m.sources);
            if !pre.fd_consistent_set(&support) {
                return ControlFlow::Continue(());
            }
            // Negated atoms must miss R and the support transactions.
            for (rel, tuple) in ground_negated(dc, m.assignment) {
                for src in db.relation(rel).sources_of(&tuple) {
                    match src {
                        Source::Base => return ControlFlow::Continue(()),
                        Source::Pending(t) if support.contains(&t) => {
                            return ControlFlow::Continue(())
                        }
                        Source::Pending(_) => {}
                    }
                }
            }
            // R ∪ support is itself a possible world (no INDs to order).
            witness = Some(db.mask_of(support.iter().copied()));
            ControlFlow::Break(())
        },
    );
    // A found witness is a definite answer even if the enumeration was cut
    // short; `Holds` requires the search to have been complete.
    if witness.is_none() {
        if let Err(reason) = search {
            return Err(Exhausted { reason, stats });
        }
    }
    stats.worlds_evaluated = usize::from(witness.is_some());
    Ok(match witness {
        Some(w) => DcSatOutcome::unsatisfied(w, stats),
        None => DcSatOutcome::satisfied(stats),
    })
}

/// `Qc` over `{ind}`: forbidden-transaction closure search.
fn conj_ind_only(
    bcdb: &BlockchainDb,
    pre: &Precomputed,
    dc: &DenialConstraint,
    pc: &PreparedConstraint,
    budget: &Budget,
) -> Result<DcSatOutcome, Exhausted> {
    let db = bcdb.database();
    let pq = pc.as_conjunctive().expect("conjunctive case");
    let mut stats = DcSatStats {
        algorithm: "tractable/ind-only",
        ..DcSatStats::default()
    };
    let all = db.all_mask();
    let all_txs: Vec<TxId> = bcdb.tx_ids().collect();
    // Cache closures per forbidden set (F = ∅ is by far the common case).
    let mut closures: FxHashMap<Vec<TxId>, WorldMask> = FxHashMap::default();
    let mut witness: Option<WorldMask> = None;
    let mut broke: Option<ExhaustionReason> = None;
    let search = for_each_match_governed(
        db,
        pq,
        &all,
        EvalOptions {
            check_negated: false,
        },
        budget,
        |m| {
            stats.matches_examined += 1;
            let support = support_of(m.sources);
            // Forbidden transactions: any pending transaction containing a
            // negated ground tuple. A negated tuple in R (or in the
            // support itself) kills the assignment outright.
            let mut forbidden: FxHashSet<TxId> = FxHashSet::default();
            for (rel, tuple) in ground_negated(dc, m.assignment) {
                for src in db.relation(rel).sources_of(&tuple) {
                    match src {
                        Source::Base => return ControlFlow::Continue(()),
                        Source::Pending(t) => {
                            if support.contains(&t) {
                                return ControlFlow::Continue(());
                            }
                            forbidden.insert(t);
                        }
                    }
                }
            }
            let mut key: Vec<TxId> = forbidden.iter().copied().collect();
            key.sort_unstable();
            if !closures.contains_key(&key) {
                if let Err(reason) = budget.charge_world() {
                    broke = Some(reason);
                    return ControlFlow::Break(());
                }
                let allowed: Vec<TxId> = all_txs
                    .iter()
                    .copied()
                    .filter(|t| !forbidden.contains(t))
                    .collect();
                closures.insert(key.clone(), get_maximal(bcdb, pre, &allowed));
            }
            let closure = &closures[&key];
            if support.iter().all(|t| closure.contains_tx(*t)) {
                witness = Some(closure.clone());
                ControlFlow::Break(())
            } else {
                ControlFlow::Continue(())
            }
        },
    );
    stats.worlds_evaluated = closures.len();
    if witness.is_none() {
        if let Some(reason) = broke {
            return Err(Exhausted { reason, stats });
        }
        if let Err(reason) = search {
            return Err(Exhausted { reason, stats });
        }
    }
    Ok(match witness {
        Some(w) => DcSatOutcome::unsatisfied(w, stats),
        None => DcSatOutcome::satisfied(stats),
    })
}

/// Positive aggregates over `{key, fd}` with θ ∈ {<, ≤} (or max/min with
/// `=`): test the aggregate over `R ∪ S` for every realisable support `S`.
fn agg_subset_world(
    bcdb: &BlockchainDb,
    pre: &Precomputed,
    pc: &PreparedConstraint,
    budget: &Budget,
) -> Result<DcSatOutcome, Exhausted> {
    let db = bcdb.database();
    let PreparedConstraint::Aggregate(pa) = pc else {
        unreachable!("classified as aggregate")
    };
    let mut stats = DcSatStats {
        algorithm: "tractable/agg-subset",
        ..DcSatStats::default()
    };
    let all = db.all_mask();
    // Collect the distinct realisable supports. `Holds` needs all of them,
    // so exhaustion here is terminal.
    let mut supports: FxHashSet<SmallVec<[TxId; 8]>> = FxHashSet::default();
    let collection = for_each_match_governed(
        db,
        pa.body(),
        &all,
        EvalOptions {
            check_negated: false,
        },
        budget,
        |m| {
            stats.matches_examined += 1;
            let support = support_of(m.sources);
            if pre.fd_consistent_set(&support) {
                supports.insert(support);
            }
            ControlFlow::Continue(())
        },
    );
    if let Err(reason) = collection {
        return Err(Exhausted { reason, stats });
    }
    for support in supports {
        let mask = db.mask_of(support.iter().copied());
        if let Err(reason) = budget.charge_world() {
            return Err(Exhausted { reason, stats });
        }
        stats.worlds_evaluated += 1;
        match bcdb_query::evaluate_aggregate_governed(db, pa, &mask, budget) {
            Ok(true) => return Ok(DcSatOutcome::unsatisfied(mask, stats)),
            Ok(false) => {}
            Err(reason) => return Err(Exhausted { reason, stats }),
        }
    }
    Ok(DcSatOutcome::satisfied(stats))
}

/// Positive monotone aggregates over `{ind}`: evaluate on the unique
/// maximal world.
fn agg_max_world(
    bcdb: &BlockchainDb,
    pre: &Precomputed,
    pc: &PreparedConstraint,
    budget: &Budget,
) -> Result<DcSatOutcome, Exhausted> {
    let db = bcdb.database();
    let mut stats = DcSatStats {
        algorithm: "tractable/agg-maxworld",
        ..DcSatStats::default()
    };
    let all_txs: Vec<TxId> = bcdb.tx_ids().collect();
    let max_world = get_maximal(bcdb, pre, &all_txs);
    stats.worlds_evaluated = 1;
    match pc.holds_governed(db, &max_world, budget) {
        Ok(true) => Ok(DcSatOutcome::unsatisfied(max_world, stats)),
        Ok(false) => Ok(DcSatOutcome::satisfied(stats)),
        Err(reason) => Err(Exhausted { reason, stats }),
    }
}
