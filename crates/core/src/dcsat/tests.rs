//! Cross-algorithm tests for denial-constraint satisfaction.

use crate::db::BlockchainDb;
use crate::dcsat::{
    dcsat, dcsat_governed, dcsat_governed_with_budget, tractable, Algorithm, DcSatOptions,
    DcSatOutcome, Verdict,
};
use crate::precompute::Precomputed;
use crate::worlds::is_possible_world;
use bcdb_governor::{BudgetSpec, ExhaustionReason};
use bcdb_query::{parse_denial_constraint, DenialConstraint};
use bcdb_storage::{tuple, Catalog, ConstraintSet, Fd, Ind, RelationSchema, TxId, ValueType};
use std::time::Duration;

/// Pay(id, payer, payee, amt) with key id; Ack(ref) with Ack[ref] ⊆ Pay[id].
fn payments_catalog() -> Catalog {
    let mut cat = Catalog::new();
    cat.add(
        RelationSchema::new(
            "Pay",
            [
                ("id", ValueType::Int),
                ("payer", ValueType::Text),
                ("payee", ValueType::Text),
                ("amt", ValueType::Int),
            ],
        )
        .unwrap(),
    )
    .unwrap();
    cat.add(RelationSchema::new("Ack", [("payRef", ValueType::Int)]).unwrap())
        .unwrap();
    cat.add(RelationSchema::new("Trusted", [("who", ValueType::Text)]).unwrap())
        .unwrap();
    cat
}

fn payments_db(with_key: bool, with_ind: bool) -> BlockchainDb {
    let cat = payments_catalog();
    let mut cs = ConstraintSet::new();
    if with_key {
        cs.add_fd(Fd::named_key(&cat, "Pay", &["id"]).unwrap());
    }
    if with_ind {
        cs.add_ind(Ind::named(&cat, "Ack", &["payRef"], "Pay", &["id"]).unwrap());
    }
    BlockchainDb::new(cat, cs)
}

fn opts(algorithm: Algorithm) -> DcSatOptions {
    DcSatOptions {
        algorithm,
        ..DcSatOptions::default()
    }
}

/// Runs every applicable algorithm and asserts they agree; returns the
/// auto outcome.
fn check_all(db: &mut BlockchainDb, dc: &DenialConstraint) -> DcSatOutcome {
    let auto = dcsat(db, dc, &opts(Algorithm::Auto)).unwrap();
    let oracle = dcsat(db, dc, &opts(Algorithm::Oracle)).unwrap();
    assert_eq!(
        auto.satisfied, oracle.satisfied,
        "auto ({}) vs oracle disagree",
        auto.stats.algorithm
    );
    for alg in [Algorithm::Naive, Algorithm::Opt, Algorithm::Tractable] {
        // An Err means the algorithm is not applicable to this constraint.
        if let Ok(out) = dcsat(db, dc, &opts(alg)) {
            assert_eq!(
                out.satisfied, oracle.satisfied,
                "{alg:?} disagrees with oracle"
            );
        }
    }
    // A witness, when present, must be a genuine possible world satisfying q.
    if let Some(w) = &oracle.witness {
        let pre = Precomputed::build(db);
        let txs: Vec<TxId> = w.txs().collect();
        assert!(is_possible_world(db, &pre, &txs), "oracle witness invalid");
    }
    auto
}

#[test]
fn double_payment_blocked_by_key() {
    let mut db = payments_db(true, true);
    let pay = db.database().catalog().resolve("Pay").unwrap();
    db.insert_current(pay, tuple![1i64, "alice", "bob", 10i64])
        .unwrap();
    // Reissue with the SAME id — the key makes them mutually exclusive
    // with the accepted one, so "bob paid twice" cannot happen.
    db.add_transaction("reissue", [(pay, tuple![1i64, "alice", "bob", 10i64])])
        .unwrap();
    let dc = parse_denial_constraint(
        "q() <- Pay(i, 'alice', 'bob', a), Pay(j, 'alice', 'bob', b), i != j",
        db.database().catalog(),
    )
    .unwrap();
    let out = check_all(&mut db, &dc);
    assert!(out.satisfied);
}

#[test]
fn double_payment_possible_with_fresh_id() {
    let mut db = payments_db(true, true);
    let pay = db.database().catalog().resolve("Pay").unwrap();
    db.insert_current(pay, tuple![1i64, "alice", "bob", 10i64])
        .unwrap();
    // Reissue with a DIFFERENT id — both can land.
    db.add_transaction("reissue", [(pay, tuple![2i64, "alice", "bob", 10i64])])
        .unwrap();
    let dc = parse_denial_constraint(
        "q() <- Pay(i, 'alice', 'bob', a), Pay(j, 'alice', 'bob', b), i != j",
        db.database().catalog(),
    )
    .unwrap();
    let out = check_all(&mut db, &dc);
    assert!(!out.satisfied);
    let w = out.witness.unwrap();
    assert!(w.contains_tx(TxId(0)));
}

#[test]
fn conflicting_reissues_cannot_both_land() {
    let mut db = payments_db(true, false);
    let pay = db.database().catalog().resolve("Pay").unwrap();
    // Two pending payments with the same id to different payees.
    db.add_transaction("v1", [(pay, tuple![7i64, "alice", "bob", 10i64])])
        .unwrap();
    db.add_transaction("v2", [(pay, tuple![7i64, "alice", "carol", 10i64])])
        .unwrap();
    let dc = parse_denial_constraint(
        "q() <- Pay(i, 'alice', 'bob', a), Pay(j, 'alice', 'carol', b)",
        db.database().catalog(),
    )
    .unwrap();
    assert!(check_all(&mut db, &dc).satisfied);
    // But each individually can land.
    let dc1 = parse_denial_constraint("q() <- Pay(i, 'alice', 'bob', a)", db.database().catalog())
        .unwrap();
    assert!(!check_all(&mut db, &dc1).satisfied);
}

#[test]
fn ind_dependency_chains_gate_satisfaction() {
    let mut db = payments_db(false, true);
    let pay = db.database().catalog().resolve("Pay").unwrap();
    let ack = db.database().catalog().resolve("Ack").unwrap();
    // Ack(5) requires Pay(5,..) first; both pending.
    db.add_transaction("pay5", [(pay, tuple![5i64, "a", "b", 1i64])])
        .unwrap();
    db.add_transaction("ack5", [(ack, tuple![5i64])]).unwrap();
    // Dangling ack (no payment 9 anywhere).
    db.add_transaction("ack9", [(ack, tuple![9i64])]).unwrap();
    let dc5 = parse_denial_constraint("q() <- Ack(5)", db.database().catalog()).unwrap();
    assert!(!check_all(&mut db, &dc5).satisfied); // pay5 then ack5
    let dc9 = parse_denial_constraint("q() <- Ack(9)", db.database().catalog()).unwrap();
    assert!(check_all(&mut db, &dc9).satisfied); // ack9 can never enter
}

#[test]
fn negation_needs_non_maximal_worlds() {
    // The classic case where maximal-world reasoning fails: q asks for a
    // payment with no acknowledgement. In the maximal world the ack is
    // present, but a smaller world omits it.
    let mut db = payments_db(false, true);
    let pay = db.database().catalog().resolve("Pay").unwrap();
    let ack = db.database().catalog().resolve("Ack").unwrap();
    db.add_transaction("pay5", [(pay, tuple![5i64, "a", "b", 1i64])])
        .unwrap();
    db.add_transaction("ack5", [(ack, tuple![5i64])]).unwrap();
    let dc = parse_denial_constraint("q() <- Pay(i, p, q2, a), !Ack(i)", db.database().catalog())
        .unwrap();
    // World {pay5} satisfies the query (payment without ack) -> unsatisfied.
    let out = check_all(&mut db, &dc);
    assert!(!out.satisfied);
    assert!(out.stats.algorithm.starts_with("tractable"));
}

#[test]
fn negation_with_base_tuple_blocks() {
    let mut db = payments_db(true, false);
    let pay = db.database().catalog().resolve("Pay").unwrap();
    let trusted = db.database().catalog().resolve("Trusted").unwrap();
    db.insert_current(trusted, tuple!["bob"]).unwrap();
    db.add_transaction("p", [(pay, tuple![1i64, "alice", "bob", 10i64])])
        .unwrap();
    // q: a payment to an untrusted payee. bob is trusted in R, so never.
    let dc = parse_denial_constraint(
        "q() <- Pay(i, p, who, a), !Trusted(who)",
        db.database().catalog(),
    )
    .unwrap();
    assert!(check_all(&mut db, &dc).satisfied);
    // Add a pending payment to carol (untrusted) — now violable.
    db.add_transaction("p2", [(pay, tuple![2i64, "alice", "carol", 10i64])])
        .unwrap();
    assert!(!check_all(&mut db, &dc).satisfied);
}

#[test]
fn aggregate_sum_constraint() {
    let mut db = payments_db(true, false);
    let pay = db.database().catalog().resolve("Pay").unwrap();
    db.insert_current(pay, tuple![1i64, "alice", "bob", 3i64])
        .unwrap();
    db.add_transaction("t2", [(pay, tuple![2i64, "alice", "bob", 3i64])])
        .unwrap();
    db.add_transaction("t3", [(pay, tuple![2i64, "alice", "bob", 4i64])])
        .unwrap(); // conflicts with t2
                   // "alice never pays more than 7 in total": worst consistent world is
                   // {base, t3} = 3 + 4 = 7, not > 7 -> satisfied.
    let dc = parse_denial_constraint(
        "[q(sum(a)) <- Pay(i, 'alice', w, a)] > 7",
        db.database().catalog(),
    )
    .unwrap();
    assert!(check_all(&mut db, &dc).satisfied);
    // "more than 6" is violable via {base, t3}.
    let dc = parse_denial_constraint(
        "[q(sum(a)) <- Pay(i, 'alice', w, a)] > 6",
        db.database().catalog(),
    )
    .unwrap();
    let out = check_all(&mut db, &dc);
    assert!(!out.satisfied);
    assert!(out.witness.unwrap().contains_tx(TxId(1)));
}

#[test]
fn aggregate_count_lt_uses_subset_worlds() {
    // count < c is non-monotone: true in small worlds, false in big ones.
    let mut db = payments_db(true, false);
    let pay = db.database().catalog().resolve("Pay").unwrap();
    for i in 0..4i64 {
        db.add_transaction(format!("t{i}"), [(pay, tuple![i, "a", "b", 1i64])])
            .unwrap();
    }
    // "there is a world with at least one payment but fewer than 3":
    // e.g. R ∪ {t0}.
    let dc = parse_denial_constraint(
        "[q(count()) <- Pay(i, p, w, a)] < 3",
        db.database().catalog(),
    )
    .unwrap();
    let out = check_all(&mut db, &dc);
    assert!(!out.satisfied);
    assert!(out.stats.algorithm.starts_with("tractable"));
    // With an always-present base payment and threshold 1, no world can
    // have count < 1 while nonempty (empty bag is false): satisfied.
    db.insert_current(pay, tuple![100i64, "x", "y", 1i64])
        .unwrap();
    let dc = parse_denial_constraint(
        "[q(count()) <- Pay(i, p, w, a)] < 1",
        db.database().catalog(),
    )
    .unwrap();
    assert!(check_all(&mut db, &dc).satisfied);
}

#[test]
fn aggregate_cntd_distinct_payees() {
    let mut db = payments_db(true, false);
    let pay = db.database().catalog().resolve("Pay").unwrap();
    db.add_transaction("t0", [(pay, tuple![1i64, "alice", "bob", 1i64])])
        .unwrap();
    db.add_transaction("t1", [(pay, tuple![2i64, "alice", "carol", 1i64])])
        .unwrap();
    db.add_transaction("t2", [(pay, tuple![2i64, "alice", "dave", 1i64])])
        .unwrap(); // conflicts t1
                   // At most 2 distinct payees ever (t1 and t2 exclusive): cntd > 2 never.
    let dc = parse_denial_constraint(
        "[q(cntd(w)) <- Pay(i, 'alice', w, a)] > 2",
        db.database().catalog(),
    )
    .unwrap();
    assert!(check_all(&mut db, &dc).satisfied);
    let dc = parse_denial_constraint(
        "[q(cntd(w)) <- Pay(i, 'alice', w, a)] > 1",
        db.database().catalog(),
    )
    .unwrap();
    assert!(!check_all(&mut db, &dc).satisfied);
}

#[test]
fn aggregate_max_eq() {
    let mut db = payments_db(true, false);
    let pay = db.database().catalog().resolve("Pay").unwrap();
    db.insert_current(pay, tuple![1i64, "a", "b", 5i64])
        .unwrap();
    db.add_transaction("t0", [(pay, tuple![2i64, "a", "b", 9i64])])
        .unwrap();
    // Is there a world where the maximum payment is exactly 9? Yes: add t0.
    let dc = parse_denial_constraint(
        "[q(max(a)) <- Pay(i, p, w, a)] = 9",
        db.database().catalog(),
    )
    .unwrap();
    assert!(!check_all(&mut db, &dc).satisfied);
    // Exactly 7? No world produces it.
    let dc = parse_denial_constraint(
        "[q(max(a)) <- Pay(i, p, w, a)] = 7",
        db.database().catalog(),
    )
    .unwrap();
    assert!(check_all(&mut db, &dc).satisfied);
}

#[test]
fn aggregate_over_ind_only_uses_max_world() {
    // Positive monotone aggregate with only INDs: Thm 2.4's unique maximal
    // world decides.
    let mut db = payments_db(false, true);
    let pay = db.database().catalog().resolve("Pay").unwrap();
    let ack = db.database().catalog().resolve("Ack").unwrap();
    db.add_transaction("p1", [(pay, tuple![1i64, "a", "b", 4i64])])
        .unwrap();
    db.add_transaction("p2", [(pay, tuple![2i64, "a", "b", 5i64])])
        .unwrap();
    db.add_transaction("ack1", [(ack, tuple![1i64])]).unwrap();
    // sum can reach 9 (both payments) but not 10.
    let dc = parse_denial_constraint(
        "[q(sum(a)) <- Pay(i, 'a', w, a)] >= 9",
        db.database().catalog(),
    )
    .unwrap();
    let out = check_all(&mut db, &dc);
    assert!(!out.satisfied);
    assert_eq!(out.stats.algorithm, "tractable/agg-maxworld");
    assert_eq!(out.stats.worlds_evaluated, 1);
    let dc = parse_denial_constraint(
        "[q(sum(a)) <- Pay(i, 'a', w, a)] >= 10",
        db.database().catalog(),
    )
    .unwrap();
    assert!(check_all(&mut db, &dc).satisfied);
}

#[test]
fn degeneracy_strategy_agrees_end_to_end() {
    let mut db = payments_db(true, true);
    let pay = db.database().catalog().resolve("Pay").unwrap();
    let ack = db.database().catalog().resolve("Ack").unwrap();
    for i in 0..5i64 {
        db.add_transaction(format!("p{i}"), [(pay, tuple![i, "a", "b", 1i64])])
            .unwrap();
    }
    // One conflict pair and one dependency.
    db.add_transaction("dup", [(pay, tuple![0i64, "a", "c", 1i64])])
        .unwrap();
    db.add_transaction("ack0", [(ack, tuple![0i64])]).unwrap();
    let dc = parse_denial_constraint("q() <- Pay(i, p, 'c', a), Ack(i)", db.database().catalog())
        .unwrap();
    let mut results = Vec::new();
    for strategy in [
        bcdb_graph::CliqueStrategy::Plain,
        bcdb_graph::CliqueStrategy::Pivot,
        bcdb_graph::CliqueStrategy::Degeneracy,
    ] {
        let out = dcsat(
            &mut db,
            &dc,
            &DcSatOptions {
                algorithm: Algorithm::Naive,
                clique_strategy: strategy,
                use_precheck: false,
                ..DcSatOptions::default()
            },
        )
        .unwrap();
        results.push(out.satisfied);
    }
    assert!(results.windows(2).all(|w| w[0] == w[1]), "{results:?}");
    let oracle = dcsat(&mut db, &dc, &opts(Algorithm::Oracle)).unwrap();
    assert_eq!(results[0], oracle.satisfied);
}

#[test]
fn mixed_key_and_ind_uses_maximal_world_algorithms() {
    let mut db = payments_db(true, true);
    let pay = db.database().catalog().resolve("Pay").unwrap();
    let ack = db.database().catalog().resolve("Ack").unwrap();
    db.add_transaction("pay1", [(pay, tuple![1i64, "a", "b", 1i64])])
        .unwrap();
    db.add_transaction("pay1b", [(pay, tuple![1i64, "a", "c", 1i64])])
        .unwrap();
    db.add_transaction("ack1", [(ack, tuple![1i64])]).unwrap();
    let dc = parse_denial_constraint("q() <- Ack(1)", db.database().catalog()).unwrap();
    let out = check_all(&mut db, &dc);
    assert!(!out.satisfied);
    // Auto must route to a maximal-world algorithm (key+ind: CoNP case).
    assert!(out.stats.algorithm == "opt" || out.stats.algorithm == "naive");
    assert!(tractable::classify(&db, &dc).is_none());
}

#[test]
fn precheck_short_circuits_satisfied_constraints() {
    let mut db = payments_db(true, true);
    let pay = db.database().catalog().resolve("Pay").unwrap();
    db.add_transaction("t", [(pay, tuple![1i64, "a", "b", 1i64])])
        .unwrap();
    let dc =
        parse_denial_constraint("q() <- Pay(i, 'zelda', w, a)", db.database().catalog()).unwrap();
    let out = dcsat(&mut db, &dc, &opts(Algorithm::Naive)).unwrap();
    assert!(out.satisfied);
    assert!(out.stats.precheck_short_circuit);
    assert_eq!(out.stats.cliques_enumerated, 0);
    // With the pre-check disabled the cliques are enumerated.
    let out = dcsat(
        &mut db,
        &dc,
        &DcSatOptions {
            algorithm: Algorithm::Naive,
            use_precheck: false,
            ..DcSatOptions::default()
        },
    )
    .unwrap();
    assert!(out.satisfied);
    assert!(out.stats.cliques_enumerated > 0);
}

#[test]
fn opt_covers_prunes_components() {
    let mut db = payments_db(true, true);
    let pay = db.database().catalog().resolve("Pay").unwrap();
    let ack = db.database().catalog().resolve("Ack").unwrap();
    // Two independent chains: pay1<-ack1 and pay2<-ack2.
    db.add_transaction("pay1", [(pay, tuple![1i64, "a", "bob", 1i64])])
        .unwrap();
    db.add_transaction("ack1", [(ack, tuple![1i64])]).unwrap();
    db.add_transaction("pay2", [(pay, tuple![2i64, "a", "carol", 1i64])])
        .unwrap();
    db.add_transaction("ack2", [(ack, tuple![2i64])]).unwrap();
    // Constant 'carol' appears only in the second chain.
    let dc = parse_denial_constraint(
        "q() <- Pay(i, p, 'carol', a), Ack(i)",
        db.database().catalog(),
    )
    .unwrap();
    let out = dcsat(
        &mut db,
        &dc,
        &DcSatOptions {
            algorithm: Algorithm::Opt,
            use_precheck: false, // force component machinery to run
            ..DcSatOptions::default()
        },
    )
    .unwrap();
    assert!(!out.satisfied);
    assert_eq!(out.stats.components_total, 2);
    assert_eq!(out.stats.components_checked, 1);
}

#[test]
fn parallel_opt_agrees_with_sequential() {
    let mut db = payments_db(true, true);
    let pay = db.database().catalog().resolve("Pay").unwrap();
    let ack = db.database().catalog().resolve("Ack").unwrap();
    for i in 0..6i64 {
        db.add_transaction(format!("pay{i}"), [(pay, tuple![i, "a", "b", 1i64])])
            .unwrap();
        db.add_transaction(format!("ack{i}"), [(ack, tuple![i])])
            .unwrap();
    }
    let dc = parse_denial_constraint("q() <- Pay(i, p, 'b', a), Ack(i)", db.database().catalog())
        .unwrap();
    {
        let unsat_expected = true;
        let seq = dcsat(
            &mut db,
            &dc,
            &DcSatOptions {
                algorithm: Algorithm::Opt,
                use_precheck: false,
                parallel: false,
                ..DcSatOptions::default()
            },
        )
        .unwrap();
        let par = dcsat(
            &mut db,
            &dc,
            &DcSatOptions {
                algorithm: Algorithm::Opt,
                use_precheck: false,
                parallel: true,
                ..DcSatOptions::default()
            },
        )
        .unwrap();
        assert_eq!(seq.satisfied, par.satisfied);
        assert_eq!(seq.satisfied, !unsat_expected);
    }
}

#[test]
fn forced_algorithm_errors() {
    let mut db = payments_db(true, true);
    let pay = db.database().catalog().resolve("Pay").unwrap();
    db.add_transaction("t", [(pay, tuple![1i64, "a", "b", 1i64])])
        .unwrap();
    // Non-monotone (negation) forced onto Naive -> error.
    let dc = parse_denial_constraint(
        "q() <- Pay(i, p, w, a), !Trusted(w)",
        db.database().catalog(),
    )
    .unwrap();
    assert!(matches!(
        dcsat(&mut db, &dc, &opts(Algorithm::Naive)),
        Err(crate::CoreError::NotMonotonic { .. })
    ));
    // Aggregate forced onto Opt -> NotConnected.
    let dc = parse_denial_constraint(
        "[q(count()) <- Pay(i, p, w, a)] > 1",
        db.database().catalog(),
    )
    .unwrap();
    assert!(matches!(
        dcsat(&mut db, &dc, &opts(Algorithm::Opt)),
        Err(crate::CoreError::NotConnected)
    ));
    // key+ind conjunctive forced onto Tractable -> NotTractable.
    let dc = parse_denial_constraint("q() <- Ack(1)", db.database().catalog()).unwrap();
    assert!(matches!(
        dcsat(&mut db, &dc, &opts(Algorithm::Tractable)),
        Err(crate::CoreError::NotTractable { .. })
    ));
}

#[test]
fn disconnected_query_routes_to_naive() {
    let mut db = payments_db(true, true);
    let pay = db.database().catalog().resolve("Pay").unwrap();
    db.add_transaction("t0", [(pay, tuple![1i64, "a", "b", 1i64])])
        .unwrap();
    db.add_transaction("t1", [(pay, tuple![2i64, "c", "d", 1i64])])
        .unwrap();
    // Two atoms sharing nothing: disconnected.
    let dc = parse_denial_constraint(
        "q() <- Pay(i, 'a', w, x), Pay(j, 'c', v, y)",
        db.database().catalog(),
    )
    .unwrap();
    let out = dcsat(&mut db, &dc, &opts(Algorithm::Auto)).unwrap();
    assert!(!out.satisfied);
    assert_eq!(out.stats.algorithm, "naive");
    // Forcing Opt errors on connectivity.
    assert!(matches!(
        dcsat(&mut db, &dc, &opts(Algorithm::Opt)),
        Err(crate::CoreError::NotConnected)
    ));
}

/// Documents the Proposition 2 corner case (see DESIGN.md): a base tuple
/// can bridge two `Gq,ind` components invisibly, so the paper's `OptDCSat`
/// (forced) misses a witness that the oracle finds. `Auto` detects that
/// the query's atom graph is not complete and stays on the sound
/// `NaiveDCSat`.
#[test]
fn prop2_counterexample_documented() {
    let mut cat = Catalog::new();
    for r in ["A", "B", "C"] {
        cat.add(RelationSchema::new(r, [("l", ValueType::Int), ("r", ValueType::Int)]).unwrap())
            .unwrap();
    }
    let mut cs = ConstraintSet::new();
    // key + ind so no tractable decider applies and Opt is eligible.
    cs.add_fd(Fd::named_key(&cat, "A", &["l"]).unwrap());
    cs.add_ind(Ind::named(&cat, "C", &["l"], "B", &["r"]).unwrap());
    let mut db = BlockchainDb::new(cat, cs);
    let a = db.database().catalog().resolve("A").unwrap();
    let b = db.database().catalog().resolve("B").unwrap();
    let c = db.database().catalog().resolve("C").unwrap();
    db.insert_current(b, tuple![5i64, 6i64]).unwrap(); // the invisible bridge
    db.add_transaction("T1", [(a, tuple![1i64, 5i64])]).unwrap();
    db.add_transaction("T2", [(c, tuple![6i64, 9i64])]).unwrap();
    // Connected query whose middle atom the base tuple instantiates.
    let dc = parse_denial_constraint("q() <- A(x, y), B(y, z), C(z, w)", db.database().catalog())
        .unwrap();
    let oracle = dcsat(&mut db, &dc, &opts(Algorithm::Oracle)).unwrap();
    assert!(!oracle.satisfied, "R ∪ {{T1, T2}} satisfies q");
    let naive = dcsat(&mut db, &dc, &opts(Algorithm::Naive)).unwrap();
    assert!(!naive.satisfied, "NaiveDCSat is sound here");
    let auto = dcsat(&mut db, &dc, &opts(Algorithm::Auto)).unwrap();
    assert!(!auto.satisfied);
    assert_eq!(auto.stats.algorithm, "naive", "Auto must avoid Opt here");
    // The paper's OptDCSat, forced, exhibits the incompleteness: T1 and T2
    // fall in different components and no single component has a witness.
    let opt_forced = dcsat(&mut db, &dc, &opts(Algorithm::Opt)).unwrap();
    assert!(
        opt_forced.satisfied,
        "documented divergence: forced OptDCSat misses the bridged witness"
    );
}

#[test]
fn auto_still_uses_opt_for_atom_complete_queries() {
    let mut db = payments_db(true, true);
    let pay = db.database().catalog().resolve("Pay").unwrap();
    db.add_transaction("t", [(pay, tuple![1i64, "a", "bob", 5i64])])
        .unwrap();
    // Two atoms sharing the payer constant: atom graph complete.
    let dc = parse_denial_constraint(
        "q() <- Pay(i, 'a', w, x), Pay(j, 'a', v, y), i != j",
        db.database().catalog(),
    )
    .unwrap();
    let out = dcsat(&mut db, &dc, &opts(Algorithm::Auto)).unwrap();
    assert_eq!(out.stats.algorithm, "opt");
}

#[test]
fn empty_pending_set_reduces_to_plain_evaluation() {
    let mut db = payments_db(true, true);
    let pay = db.database().catalog().resolve("Pay").unwrap();
    db.insert_current(pay, tuple![1i64, "a", "bob", 1i64])
        .unwrap();
    let dc =
        parse_denial_constraint("q() <- Pay(i, p, 'bob', a)", db.database().catalog()).unwrap();
    let out = check_all(&mut db, &dc);
    assert!(!out.satisfied);
    assert_eq!(out.witness.unwrap().tx_count(), 0);
}

// ---------------------------------------------------------------------------
// Governed (budgeted) DCSat
// ---------------------------------------------------------------------------

fn governed_opts(algorithm: Algorithm, budget: BudgetSpec) -> DcSatOptions {
    DcSatOptions {
        algorithm,
        budget,
        ..DcSatOptions::default()
    }
}

#[test]
fn governed_with_unlimited_budget_matches_ungoverned() {
    let mut db = payments_db(true, true);
    let pay = db.database().catalog().resolve("Pay").unwrap();
    db.insert_current(pay, tuple![1i64, "alice", "bob", 10i64])
        .unwrap();
    db.add_transaction("reissue", [(pay, tuple![2i64, "alice", "bob", 10i64])])
        .unwrap();
    for text in [
        "q() <- Pay(i, 'alice', 'bob', a), Pay(j, 'alice', 'bob', b), i != j",
        "q() <- Pay(i, 'alice', 'carol', a)",
    ] {
        let dc = parse_denial_constraint(text, db.database().catalog()).unwrap();
        let plain = dcsat(&mut db, &dc, &opts(Algorithm::Auto)).unwrap();
        let gov = dcsat_governed(&mut db, &dc, &governed_opts(Algorithm::Auto, BudgetSpec::UNLIMITED))
            .unwrap();
        assert_eq!(gov.verdict.satisfied(), Some(plain.satisfied), "{text}");
        assert!(gov.verdict.is_definite());
        assert_eq!(gov.degraded_to, None);
        assert_eq!(gov.stats.algorithm, plain.stats.algorithm);
    }
}

/// Acceptance criterion: an adversarial instance with ≥2^20 possible worlds
/// under a 50 ms deadline must come back `Unknown` well within 2× the
/// deadline — the deadline bounds the primary run and the grace ladder gets
/// at most one more deadline's worth of wall clock.
#[test]
fn governed_deadline_on_adversarial_instance_returns_unknown_quickly() {
    let mut db = payments_db(true, true);
    let pay = db.database().catalog().resolve("Pay").unwrap();
    // 21 pairwise-independent pending payments: every subset is a possible
    // world, so Poss(D) has 2^21 > 2^20 elements.
    for i in 0..21i64 {
        db.add_transaction(format!("p{i}"), [(pay, tuple![i, "alice", "bob", 1i64])])
            .unwrap();
    }
    // Negation makes the constraint non-monotone (Auto routes to the
    // oracle, and the monotone fallback rungs do not apply); the base
    // world is empty so the base-world rung proves nothing either. Nobody
    // pays 'zelda', so there is no early witness: proving `Holds` requires
    // sweeping all 2^21 worlds, which cannot finish in 50 ms.
    let dc = parse_denial_constraint(
        "q() <- Pay(i, p, 'zelda', a), !Ack(i)",
        db.database().catalog(),
    )
    .unwrap();
    let deadline = Duration::from_millis(50);
    let out = dcsat_governed(
        &mut db,
        &dc,
        &governed_opts(
            Algorithm::Auto,
            BudgetSpec {
                timeout: Some(deadline),
                ..BudgetSpec::UNLIMITED
            },
        ),
    )
    .unwrap();
    assert_eq!(out.stats.algorithm, "oracle");
    assert!(
        matches!(
            out.verdict,
            Verdict::Unknown(ExhaustionReason::DeadlineExceeded { .. })
        ),
        "expected deadline-Unknown, got {:?}",
        out.verdict
    );
    assert!(
        out.elapsed < 2 * deadline,
        "took {:?}, over 2x the {deadline:?} deadline",
        out.elapsed
    );
    // Partial stats still describe real work.
    assert!(out.stats.worlds_evaluated > 0);
}

#[test]
fn governed_base_world_fallback_proves_violation() {
    let mut db = payments_db(true, false);
    let pay = db.database().catalog().resolve("Pay").unwrap();
    db.insert_current(pay, tuple![1i64, "alice", "bob", 10i64])
        .unwrap();
    db.add_transaction("t", [(pay, tuple![2i64, "alice", "bob", 10i64])])
        .unwrap();
    // A zero-clique budget kills NaiveDCSat immediately, but the *base
    // world already violates* — rung 1 of the ladder proves it. Delta
    // seeding is disabled because its own up-front base check would answer
    // before the budget bites, bypassing the ladder under test.
    let dc =
        parse_denial_constraint("q() <- Pay(i, p, 'bob', a)", db.database().catalog()).unwrap();
    let out = dcsat_governed(
        &mut db,
        &dc,
        &DcSatOptions {
            use_delta: false,
            ..governed_opts(
                Algorithm::Naive,
                BudgetSpec {
                    max_cliques: Some(0),
                    ..BudgetSpec::UNLIMITED
                },
            )
        },
    )
    .unwrap();
    assert_eq!(out.degraded_to, Some("degraded/base-world"));
    let w = out.verdict.witness().expect("definite violation");
    assert_eq!(w.tx_count(), 0, "witness is the base world");
}

#[test]
fn governed_monotone_precheck_fallback_proves_holds() {
    let mut db = payments_db(true, false);
    let pay = db.database().catalog().resolve("Pay").unwrap();
    db.add_transaction("t", [(pay, tuple![1i64, "alice", "bob", 10i64])])
        .unwrap();
    // max_tuples = 0 exhausts on the very first examined row, before the
    // primary algorithm can conclude anything. The query needs two distinct
    // payments and only one exists anywhere, so the grace-budget monotone
    // pre-check over R ∪ ⋃T proves Holds.
    let dc = parse_denial_constraint(
        "q() <- Pay(i, p, w, a), Pay(j, p2, w2, b), i != j",
        db.database().catalog(),
    )
    .unwrap();
    let out = dcsat_governed(
        &mut db,
        &dc,
        &governed_opts(
            Algorithm::Naive,
            BudgetSpec {
                max_tuples: Some(0),
                ..BudgetSpec::UNLIMITED
            },
        ),
    )
    .unwrap();
    assert_eq!(out.verdict, Verdict::Holds);
    assert_eq!(out.degraded_to, Some("degraded/monotone-precheck"));
}

#[test]
fn governed_oracle_exhaustion_degrades_to_naive() {
    let mut db = payments_db(true, false);
    let pay = db.database().catalog().resolve("Pay").unwrap();
    // 8 independent payments: 256 possible worlds but a single maximal one.
    for i in 0..8i64 {
        db.add_transaction(format!("p{i}"), [(pay, tuple![i, "alice", "bob", 1i64])])
            .unwrap();
    }
    let dc = parse_denial_constraint(
        "q() <- Pay(i, 'alice', w, a), Pay(j, 'alice', v, b), i != j",
        db.database().catalog(),
    )
    .unwrap();
    // Force the oracle with a world budget it must blow; the monotone
    // constraint lets the ladder rerun NaiveDCSat, which needs one clique.
    let out = dcsat_governed(
        &mut db,
        &dc,
        &governed_opts(
            Algorithm::Oracle,
            BudgetSpec {
                max_worlds: Some(4),
                ..BudgetSpec::UNLIMITED
            },
        ),
    )
    .unwrap();
    assert_eq!(out.degraded_to, Some("degraded/naive"));
    assert_eq!(out.verdict.satisfied(), Some(false));
    // The degraded answer agrees with an unbudgeted run.
    let plain = dcsat(&mut db, &dc, &opts(Algorithm::Oracle)).unwrap();
    assert_eq!(out.verdict.satisfied(), Some(plain.satisfied));
}

#[test]
fn governed_cancellation_skips_fallbacks() {
    let mut db = payments_db(true, false);
    let pay = db.database().catalog().resolve("Pay").unwrap();
    // The base world violates, so any fallback WOULD find a definite
    // answer — but cancellation means stop, and the ladder must not run.
    db.insert_current(pay, tuple![1i64, "alice", "bob", 10i64])
        .unwrap();
    db.add_transaction("t", [(pay, tuple![2i64, "alice", "bob", 10i64])])
        .unwrap();
    let dc =
        parse_denial_constraint("q() <- Pay(i, p, 'bob', a)", db.database().catalog()).unwrap();
    let pre = Precomputed::build(&db);
    let budget = BudgetSpec::UNLIMITED.start();
    budget.cancel();
    let out = dcsat_governed_with_budget(
        &mut db,
        &pre,
        &dc,
        &governed_opts(Algorithm::Naive, BudgetSpec::UNLIMITED),
        &budget,
    )
    .unwrap();
    assert_eq!(out.verdict, Verdict::Unknown(ExhaustionReason::Cancelled));
    assert_eq!(out.degraded_to, None);
}

#[test]
fn governed_budget_shared_across_parallel_workers() {
    let mut db = payments_db(true, true);
    let pay = db.database().catalog().resolve("Pay").unwrap();
    let ack = db.database().catalog().resolve("Ack").unwrap();
    // Several independent pay<-ack chains: each is its own Gq,ind component.
    for i in 0..6i64 {
        db.add_transaction(format!("pay{i}"), [(pay, tuple![i, "a", "b", 1i64])])
            .unwrap();
        db.add_transaction(format!("ack{i}"), [(ack, tuple![i])])
            .unwrap();
    }
    let dc = parse_denial_constraint(
        "q() <- Pay(i, p, 'zelda', a), Ack(i)",
        db.database().catalog(),
    )
    .unwrap();
    let out = dcsat_governed(
        &mut db,
        &dc,
        &DcSatOptions {
            algorithm: Algorithm::Opt,
            use_precheck: false,
            use_covers: false,
            parallel: true,
            budget: BudgetSpec {
                max_cliques: Some(2),
                ..BudgetSpec::UNLIMITED
            },
            ..DcSatOptions::default()
        },
    )
    .unwrap();
    // 6 components but a global pool of 2 cliques: workers exhaust the
    // shared budget, and nobody pays 'zelda' so no fallback proves either
    // verdict (all-mask pre-check can't run: the query holds nowhere, so
    // rung 2 DOES prove Holds here... unless the grace check fails).
    // Rung 2 proves Holds: q is false over R ∪ ⋃T.
    assert_eq!(out.verdict, Verdict::Holds);
    assert_eq!(out.degraded_to, Some("degraded/monotone-precheck"));
}

/// A single `Gq,ind` component of 20 transactions. Pairs `a_j`/`b_j`
/// conflict on Pay key `j` (so `GfTd` is `K_{2×10}` with 2^10 maximal
/// cliques), and `a_j` also acks the *next* pair's key, chaining every pair
/// into one component via Θq = (Pay[id] = Ack[payRef]). The query pays
/// nobody named 'z', so every world evaluates false and the enumeration
/// runs to completion — identical work on every schedule.
fn giant_component_db() -> (BlockchainDb, DenialConstraint) {
    let mut db = payments_db(true, true);
    let pay = db.database().catalog().resolve("Pay").unwrap();
    let ack = db.database().catalog().resolve("Ack").unwrap();
    for j in 0..10i64 {
        db.add_transaction(
            format!("a{j}"),
            [(pay, tuple![j, "a", "b", 1i64]), (ack, tuple![(j + 1) % 10])],
        )
        .unwrap();
        db.add_transaction(format!("b{j}"), [(pay, tuple![j, "a", "c", 1i64])])
            .unwrap();
    }
    let dc = parse_denial_constraint("q() <- Pay(i, p, 'z', a), Ack(i)", db.database().catalog())
        .unwrap();
    (db, dc)
}

#[test]
fn two_level_parallel_agrees_with_serial_on_giant_component() {
    let (mut db, dc) = giant_component_db();
    let base = DcSatOptions {
        algorithm: Algorithm::Opt,
        use_precheck: false,
        use_covers: false,
        ..DcSatOptions::default()
    };
    let serial = dcsat(&mut db, &dc, &base).unwrap();
    assert_eq!(serial.stats.components_total, 1, "one giant component");
    // Component-level parallelism alone cannot split the single component.
    let comp_only = dcsat(
        &mut db,
        &dc,
        &DcSatOptions {
            parallel: true,
            parallel_intra: false,
            threads: Some(4),
            ..base
        },
    )
    .unwrap();
    assert_eq!(comp_only.stats.subproblems_spawned, 0);
    // Two-level splits it and still agrees exactly: the subproblems
    // partition the clique set, so the work counters match the serial run.
    let two_level = dcsat(
        &mut db,
        &dc,
        &DcSatOptions {
            parallel: true,
            parallel_intra: true,
            threads: Some(4),
            ..base
        },
    )
    .unwrap();
    assert!(two_level.stats.subproblems_spawned > 1);
    for out in [&comp_only, &two_level] {
        assert_eq!(out.satisfied, serial.satisfied);
        assert_eq!(out.stats.cliques_enumerated, serial.stats.cliques_enumerated);
        assert_eq!(out.stats.worlds_evaluated, serial.stats.worlds_evaluated);
    }
}

#[test]
fn delta_seeding_counters_and_ablation_agree() {
    let (mut db, dc) = giant_component_db();
    let base = DcSatOptions {
        algorithm: Algorithm::Opt,
        use_precheck: false,
        use_covers: false,
        ..DcSatOptions::default()
    };
    let with_delta = dcsat(&mut db, &dc, &base).unwrap();
    assert!(with_delta.stats.delta_seeded_evals > 0);
    assert!(with_delta.stats.base_cache_hits >= with_delta.stats.delta_seeded_evals);
    let without = dcsat(
        &mut db,
        &dc,
        &DcSatOptions {
            use_delta: false,
            ..base
        },
    )
    .unwrap();
    assert_eq!(without.stats.delta_seeded_evals, 0);
    assert_eq!(without.stats.base_cache_hits, 0);
    assert_eq!(with_delta.satisfied, without.satisfied);
    assert_eq!(
        with_delta.stats.worlds_evaluated,
        without.stats.worlds_evaluated
    );
}

#[test]
fn governed_worker_panic_is_isolated_and_deterministic() {
    let mut db = payments_db(true, true);
    let pay = db.database().catalog().resolve("Pay").unwrap();
    let ack = db.database().catalog().resolve("Ack").unwrap();
    for i in 0..6i64 {
        db.add_transaction(format!("pay{i}"), [(pay, tuple![i, "a", "b", 1i64])])
            .unwrap();
        db.add_transaction(format!("ack{i}"), [(ack, tuple![i])])
            .unwrap();
    }
    let dc = parse_denial_constraint(
        "q() <- Pay(i, p, 'zelda', a), Ack(i)",
        db.database().catalog(),
    )
    .unwrap();
    let popts = DcSatOptions {
        algorithm: Algorithm::Opt,
        use_precheck: false,
        use_covers: false,
        parallel: true,
        fault_inject_panic_tx: Some(4), // poison the component with pay2/ack2
        ..DcSatOptions::default()
    };
    let result = dcsat(&mut db, &dc, &popts);
    // The panic must be contained (no abort, all workers joined) and
    // surfaced as a deterministic error on the ungoverned path.
    match result {
        Err(crate::CoreError::Exhausted {
            reason: ExhaustionReason::WorkerPanicked { message, .. },
        }) => assert!(message.contains("injected fault"), "{message}"),
        other => panic!("expected WorkerPanicked, got {other:?}"),
    }

    // The governed path turns the same failure into Unknown (the query
    // holds nowhere, but the lost component means rung 2 must decide; it
    // proves Holds — so check the fallback fires rather than Unknown).
    let gov = dcsat_governed(
        &mut db,
        &dc,
        &DcSatOptions {
            budget: BudgetSpec::UNLIMITED,
            ..popts
        },
    )
    .unwrap();
    assert_eq!(gov.verdict, Verdict::Holds);
    assert_eq!(gov.degraded_to, Some("degraded/monotone-precheck"));
    assert!(gov.stats.poisoned_workers >= 1);
}

#[test]
fn base_verdict_hint_skips_base_eval_and_agrees() {
    // Base has one bob payment; the pending reissue (fresh id) makes a
    // second possible. q is false over R alone, so Some(false) is truthful.
    let mut db = payments_db(true, false);
    let pay = db.database().catalog().resolve("Pay").unwrap();
    db.insert_current(pay, tuple![1i64, "alice", "bob", 10i64])
        .unwrap();
    db.add_transaction("reissue", [(pay, tuple![2i64, "alice", "bob", 10i64])])
        .unwrap();
    let dc = parse_denial_constraint(
        "q() <- Pay(i, 'alice', 'bob', a), Pay(j, 'alice', 'bob', b), i != j",
        db.database().catalog(),
    )
    .unwrap();
    for alg in [Algorithm::Naive, Algorithm::Opt] {
        let plain = dcsat(&mut db, &dc, &opts(alg)).unwrap();
        let hinted = dcsat(
            &mut db,
            &dc,
            &DcSatOptions {
                base_verdict_hint: Some(false),
                ..opts(alg)
            },
        )
        .unwrap();
        assert_eq!(plain.satisfied, hinted.satisfied, "{alg:?}");
        assert!(!hinted.satisfied);
        // One base-world evaluation traded for one cache hit.
        assert_eq!(
            hinted.stats.worlds_evaluated + 1,
            plain.stats.worlds_evaluated,
            "{alg:?}"
        );
        assert_eq!(
            hinted.stats.base_cache_hits,
            plain.stats.base_cache_hits + 1,
            "{alg:?}"
        );
    }
}

#[test]
fn base_verdict_hint_true_short_circuits_to_base_witness() {
    // Two bob payments already in R: q holds over the base world itself.
    let mut db = payments_db(true, false);
    let pay = db.database().catalog().resolve("Pay").unwrap();
    db.insert_current(pay, tuple![1i64, "alice", "bob", 10i64])
        .unwrap();
    db.insert_current(pay, tuple![2i64, "alice", "bob", 10i64])
        .unwrap();
    db.add_transaction("noise", [(pay, tuple![3i64, "carol", "dan", 5i64])])
        .unwrap();
    let dc = parse_denial_constraint(
        "q() <- Pay(i, 'alice', 'bob', a), Pay(j, 'alice', 'bob', b), i != j",
        db.database().catalog(),
    )
    .unwrap();
    for alg in [Algorithm::Naive, Algorithm::Opt] {
        let o = DcSatOptions {
            base_verdict_hint: Some(true),
            use_precheck: false, // isolate the hint path
            ..opts(alg)
        };
        let out = dcsat(&mut db, &dc, &o).unwrap();
        assert!(!out.satisfied, "{alg:?}");
        let w = out.witness.expect("base witness");
        assert_eq!(w.tx_count(), 0, "witness must be R itself");
        assert_eq!(out.stats.worlds_evaluated, 0, "{alg:?}: no eval at all");
        assert_eq!(out.stats.base_cache_hits, 1, "{alg:?}");
    }
}
