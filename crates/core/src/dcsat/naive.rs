//! `NaiveDCSat` (Figure 4 of the paper).
//!
//! For a monotonic denial constraint it suffices to examine maximal
//! possible worlds. Every possible world's transaction set is a clique of
//! `GfTd`; for each *maximal* clique there is a unique maximal world,
//! produced by `getMaximal`. The constraint is unsatisfied iff the query
//! holds over some such world.

use crate::db::BlockchainDb;
use crate::dcsat::{eval_world, DcSatOptions, DcSatOutcome, DcSatStats, Exhausted, PreparedConstraint};
use crate::precompute::Precomputed;
use crate::worlds::get_maximal;
use bcdb_governor::{Budget, ExhaustionReason};
use bcdb_graph::{maximal_cliques_governed, Visit};
use bcdb_storage::TxId;
use bcdb_telemetry::probes;

/// Runs `NaiveDCSat` under `budget`. The caller must have established
/// monotonicity. `Err` carries the partial stats accumulated before the
/// budget ran out.
pub fn run(
    bcdb: &BlockchainDb,
    pre: &Precomputed,
    pc: &PreparedConstraint,
    opts: &DcSatOptions,
    budget: &Budget,
) -> Result<DcSatOutcome, Exhausted> {
    let db = bcdb.database();
    let mut stats = DcSatStats {
        algorithm: "naive",
        ..DcSatStats::default()
    };
    let exhausted = |reason: ExhaustionReason, stats: DcSatStats| Exhausted { reason, stats };

    // §6.3 pre-check: q false over R ∪ ⋃T ⟹ false over every subset.
    if opts.use_precheck {
        match pc.holds_governed(db, &db.all_mask(), budget) {
            Ok(false) => {
                stats.precheck_short_circuit = true;
                probes::CORE_PRECHECK_SHORT_CIRCUITS.incr();
                return Ok(DcSatOutcome::satisfied(stats));
            }
            Ok(true) => {}
            Err(reason) => return Err(exhausted(reason, stats)),
        }
    }

    // Delta-seeded world evaluation needs the base verdict cached: `R` is
    // always a possible world, so if the query holds there the constraint
    // is already violated, and otherwise every maximal world below can be
    // answered from its delta tuples alone (see `eval_world`).
    if opts.use_delta && pc.delta_capable() {
        match opts.base_verdict_hint {
            // An epoch-valid external cache already knows R's verdict.
            Some(true) => {
                stats.base_cache_hits += 1;
                probes::CORE_BASE_CACHE_HITS.incr();
                return Ok(DcSatOutcome::unsatisfied(db.base_mask(), stats));
            }
            Some(false) => {
                stats.base_cache_hits += 1;
                probes::CORE_BASE_CACHE_HITS.incr();
            }
            None => {
                stats.worlds_evaluated += 1;
                match pc.holds_governed(db, &db.base_mask(), budget) {
                    Ok(true) => return Ok(DcSatOutcome::unsatisfied(db.base_mask(), stats)),
                    Ok(false) => {}
                    Err(reason) => return Err(exhausted(reason, stats)),
                }
            }
        }
    }

    let _enum_span = probes::CORE_PHASE_ENUMERATION_NS
        .span_excluding(&probes::CORE_PHASE_WORLD_CHECKS_NS);
    let mut witness = None;
    // Budget exhaustion inside the visitor (world materialisation or query
    // evaluation) is smuggled out through `broke`, using `Visit::Stop` to
    // unwind the clique enumeration.
    let mut broke: Option<ExhaustionReason> = None;
    let enumeration =
        maximal_cliques_governed(&pre.fd_graph, opts.clique_strategy, budget, |clique| {
            stats.cliques_enumerated += 1;
            if let Err(reason) = budget.charge_world() {
                broke = Some(reason);
                return Visit::Stop;
            }
            let txs: Vec<TxId> = clique.iter().map(|&i| TxId(i as u32)).collect();
            let world = get_maximal(bcdb, pre, &txs);
            match eval_world(db, pc, &world, opts, budget, &mut stats) {
                Ok(true) => {
                    witness = Some(world);
                    Visit::Stop
                }
                Ok(false) => Visit::Continue,
                Err(reason) => {
                    broke = Some(reason);
                    Visit::Stop
                }
            }
        });
    if let Some(reason) = broke {
        return Err(exhausted(reason, stats));
    }
    if let Err(reason) = enumeration {
        return Err(exhausted(reason, stats));
    }
    Ok(match witness {
        Some(w) => DcSatOutcome::unsatisfied(w, stats),
        None => DcSatOutcome::satisfied(stats),
    })
}
