//! `NaiveDCSat` (Figure 4 of the paper).
//!
//! For a monotonic denial constraint it suffices to examine maximal
//! possible worlds. Every possible world's transaction set is a clique of
//! `GfTd`; for each *maximal* clique there is a unique maximal world,
//! produced by `getMaximal`. The constraint is unsatisfied iff the query
//! holds over some such world.

use crate::db::BlockchainDb;
use crate::dcsat::{DcSatOptions, DcSatOutcome, DcSatStats, PreparedConstraint};
use crate::precompute::Precomputed;
use crate::worlds::get_maximal;
use bcdb_graph::{maximal_cliques, Visit};
use bcdb_storage::TxId;

/// Runs `NaiveDCSat`. The caller must have established monotonicity.
pub fn run(
    bcdb: &BlockchainDb,
    pre: &Precomputed,
    pc: &PreparedConstraint,
    opts: &DcSatOptions,
) -> DcSatOutcome {
    let db = bcdb.database();
    let mut stats = DcSatStats {
        algorithm: "naive",
        ..DcSatStats::default()
    };

    // §6.3 pre-check: q false over R ∪ ⋃T ⟹ false over every subset.
    if opts.use_precheck && !pc.holds(db, &db.all_mask()) {
        stats.precheck_short_circuit = true;
        return DcSatOutcome::satisfied(stats);
    }

    let mut witness = None;
    maximal_cliques(&pre.fd_graph, opts.clique_strategy, |clique| {
        stats.cliques_enumerated += 1;
        let txs: Vec<TxId> = clique.iter().map(|&i| TxId(i as u32)).collect();
        let world = get_maximal(bcdb, pre, &txs);
        stats.worlds_evaluated += 1;
        if pc.holds(db, &world) {
            witness = Some(world);
            Visit::Stop
        } else {
            Visit::Continue
        }
    });
    match witness {
        Some(w) => DcSatOutcome::unsatisfied(w, stats),
        None => DcSatOutcome::satisfied(stats),
    }
}
