//! Exhaustive denial-constraint checking over `Poss(D)`.
//!
//! Sound and complete for *every* denial constraint — including
//! non-monotonic ones, which the maximal-world algorithms cannot handle —
//! at exponential cost. This is the validation oracle for the property
//! tests and the last-resort fallback of [`super::dcsat`].

use crate::db::BlockchainDb;
use crate::dcsat::{DcSatOutcome, DcSatStats, PreparedConstraint};
use crate::precompute::Precomputed;
use crate::worlds::for_each_possible_world;
use std::ops::ControlFlow;

/// Enumerates every possible world and evaluates the constraint on each.
pub fn run(bcdb: &BlockchainDb, pre: &Precomputed, pc: &PreparedConstraint) -> DcSatOutcome {
    let db = bcdb.database();
    let mut stats = DcSatStats {
        algorithm: "oracle",
        ..DcSatStats::default()
    };
    let mut witness = None;
    for_each_possible_world(bcdb, pre, |world| {
        stats.worlds_evaluated += 1;
        if pc.holds(db, world) {
            witness = Some(world.clone());
            ControlFlow::Break(())
        } else {
            ControlFlow::Continue(())
        }
    });
    match witness {
        Some(w) => DcSatOutcome::unsatisfied(w, stats),
        None => DcSatOutcome::satisfied(stats),
    }
}
