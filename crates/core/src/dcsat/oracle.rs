//! Exhaustive denial-constraint checking over `Poss(D)`.
//!
//! Sound and complete for *every* denial constraint — including
//! non-monotonic ones, which the maximal-world algorithms cannot handle —
//! at exponential cost. This is the validation oracle for the property
//! tests and the last-resort fallback of [`super::dcsat`].

use crate::db::BlockchainDb;
use crate::dcsat::{DcSatOutcome, DcSatStats, Exhausted, PreparedConstraint};
use crate::precompute::Precomputed;
use crate::worlds::for_each_possible_world_governed;
use bcdb_governor::{Budget, ExhaustionReason};
use std::ops::ControlFlow;

/// Enumerates every possible world and evaluates the constraint on each,
/// stopping (with partial stats) if `budget` runs out.
pub fn run(
    bcdb: &BlockchainDb,
    pre: &Precomputed,
    pc: &PreparedConstraint,
    budget: &Budget,
) -> Result<DcSatOutcome, Exhausted> {
    let db = bcdb.database();
    let mut stats = DcSatStats {
        algorithm: "oracle",
        ..DcSatStats::default()
    };
    let mut witness = None;
    // Exhaustion during query evaluation is smuggled out through `broke`,
    // using `Break` to unwind the world enumeration.
    let mut broke: Option<ExhaustionReason> = None;
    let enumeration = for_each_possible_world_governed(bcdb, pre, budget, |world| {
        stats.worlds_evaluated += 1;
        match pc.holds_governed(db, world, budget) {
            Ok(true) => {
                witness = Some(world.clone());
                ControlFlow::Break(())
            }
            Ok(false) => ControlFlow::Continue(()),
            Err(reason) => {
                broke = Some(reason);
                ControlFlow::Break(())
            }
        }
    });
    if let Some(reason) = broke {
        return Err(Exhausted { reason, stats });
    }
    if let Err(reason) = enumeration {
        return Err(Exhausted { reason, stats });
    }
    Ok(match witness {
        Some(w) => DcSatOutcome::unsatisfied(w, stats),
        None => DcSatOutcome::satisfied(stats),
    })
}
