//! Errors of the blockchain-database layer.

use bcdb_governor::ExhaustionReason;
use bcdb_query::QueryError;
use bcdb_storage::StorageError;
use std::fmt;

/// Errors raised by [`crate::BlockchainDb`] and the DCSat algorithms.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CoreError {
    /// A storage-level failure (typing, unknown relation, …).
    Storage(StorageError),
    /// A query-level failure (validation, parsing, …).
    Query(QueryError),
    /// The current state `R` violates the integrity constraints — the
    /// definition of a blockchain database requires `R |= I`.
    InconsistentCurrentState {
        /// Human-readable description of the first violation.
        detail: String,
    },
    /// A caller forced `NaiveDCSat`/`OptDCSat` on a non-monotonic denial
    /// constraint; those algorithms only examine maximal worlds and would
    /// be unsound.
    NotMonotonic {
        /// Why the constraint is not monotone.
        reason: String,
    },
    /// A caller forced `OptDCSat` on a constraint that is not a connected
    /// conjunctive query (Proposition 2's hypothesis).
    NotConnected,
    /// A forced tractable decider does not apply to this
    /// (query class, constraint kinds) combination.
    NotTractable {
        /// Which hypothesis failed.
        detail: String,
    },
    /// An *ungoverned* entry point ([`crate::Solver::check_ungoverned`]
    /// and the deprecated free functions)
    /// could not complete — with an unlimited budget this only happens when
    /// a parallel worker panics. Governed callers receive
    /// `Verdict::Unknown` instead of this error.
    Exhausted {
        /// Why the computation stopped.
        reason: ExhaustionReason,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Storage(e) => write!(f, "{e}"),
            CoreError::Query(e) => write!(f, "{e}"),
            CoreError::InconsistentCurrentState { detail } => {
                write!(f, "current state violates integrity constraints: {detail}")
            }
            CoreError::NotMonotonic { reason } => write!(
                f,
                "denial constraint is not monotonic ({reason}); maximal-world algorithms are unsound"
            ),
            CoreError::NotConnected => {
                write!(f, "denial constraint is not a connected conjunctive query")
            }
            CoreError::NotTractable { detail } => {
                write!(f, "no tractable decider applies: {detail}")
            }
            CoreError::Exhausted { reason } => {
                write!(f, "computation did not complete: {reason}")
            }
        }
    }
}

impl std::error::Error for CoreError {}

impl From<StorageError> for CoreError {
    fn from(e: StorageError) -> Self {
        CoreError::Storage(e)
    }
}

impl From<QueryError> for CoreError {
    fn from(e: QueryError) -> Self {
        CoreError::Query(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: CoreError = StorageError::UnknownRelation {
            relation: "R".into(),
        }
        .into();
        assert!(e.to_string().contains("'R'"));
        let e: CoreError = QueryError::UnsafeVariable {
            variable: "x".into(),
        }
        .into();
        assert!(e.to_string().contains("'x'"));
        assert!(CoreError::NotConnected.to_string().contains("connected"));
    }
}
