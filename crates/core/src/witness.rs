//! Witness minimization.
//!
//! When a denial constraint is *unsatisfied*, [`crate::dcsat()`] returns a
//! witness world over which the query holds. The algorithms return whatever
//! world they found first — usually a maximal one, containing many pending
//! transactions irrelevant to the violation. Minimizing the witness
//! isolates the transactions that actually cause the undesirable outcome,
//! which is what a user needs in order to act (e.g. to craft a
//! contradicting transaction — the paper's future-work item — against
//! exactly the dangerous ones).

use crate::db::BlockchainDb;
use crate::dcsat::PreparedConstraint;
use crate::precompute::Precomputed;
use crate::worlds::is_possible_world;
use bcdb_storage::{TxId, WorldMask};

/// Greedily shrinks `witness` to a *minimal* world still satisfying the
/// query: no single pending transaction can be removed without either
/// breaking possibility (IND dependants would dangle) or losing the
/// query's satisfaction.
///
/// The result is minimal, not minimum — finding a smallest witness is as
/// hard as the satisfaction problem itself.
pub fn minimize_witness(
    bcdb: &BlockchainDb,
    pre: &Precomputed,
    pc: &PreparedConstraint,
    witness: &WorldMask,
) -> WorldMask {
    let db = bcdb.database();
    debug_assert!(pc.holds(db, witness), "witness must satisfy the query");
    let mut current: Vec<TxId> = witness.txs().collect();
    loop {
        let mut removed = None;
        for (i, _) in current.iter().enumerate() {
            let candidate: Vec<TxId> = current
                .iter()
                .enumerate()
                .filter(|(j, _)| *j != i)
                .map(|(_, &t)| t)
                .collect();
            if !is_possible_world(bcdb, pre, &candidate) {
                continue;
            }
            let mask = db.mask_of(candidate.iter().copied());
            if pc.holds(db, &mask) {
                removed = Some(i);
                break;
            }
        }
        match removed {
            Some(i) => {
                current.remove(i);
            }
            None => break,
        }
    }
    db.mask_of(current)
}

#[cfg(test)]
// In-crate tests exercise the low-level entry point directly; the public
// session facade is covered by the integration suite.
#[allow(deprecated)]
mod tests {
    use super::*;
    use crate::dcsat::{dcsat, Algorithm, DcSatOptions};
    use bcdb_query::parse_denial_constraint;
    use bcdb_storage::{tuple, Catalog, ConstraintSet, Fd, Ind, RelationSchema, ValueType};

    fn setup() -> BlockchainDb {
        let mut cat = Catalog::new();
        cat.add(
            RelationSchema::new(
                "Pay",
                [
                    ("id", ValueType::Int),
                    ("to", ValueType::Text),
                    ("amt", ValueType::Int),
                ],
            )
            .unwrap(),
        )
        .unwrap();
        cat.add(RelationSchema::new("Ack", [("payRef", ValueType::Int)]).unwrap())
            .unwrap();
        let mut cs = ConstraintSet::new();
        cs.add_fd(Fd::named_key(&cat, "Pay", &["id"]).unwrap());
        cs.add_ind(Ind::named(&cat, "Ack", &["payRef"], "Pay", &["id"]).unwrap());
        BlockchainDb::new(cat, cs)
    }

    #[test]
    fn minimization_isolates_the_culprits() {
        let mut db = setup();
        let pay = db.database().catalog().resolve("Pay").unwrap();
        let ack = db.database().catalog().resolve("Ack").unwrap();
        // Many irrelevant payments plus one chain paying bob.
        for i in 0..6i64 {
            db.add_transaction(format!("noise{i}"), [(pay, tuple![i, "x", 1i64])])
                .unwrap();
        }
        let pay_bob = db
            .add_transaction("paybob", [(pay, tuple![100i64, "bob", 9i64])])
            .unwrap();
        let ack_bob = db
            .add_transaction("ackbob", [(ack, tuple![100i64])])
            .unwrap();
        let dc =
            parse_denial_constraint("q() <- Pay(i, 'bob', a), Ack(i)", db.database().catalog())
                .unwrap();
        let out = dcsat(
            &mut db,
            &dc,
            &DcSatOptions {
                algorithm: Algorithm::Naive,
                ..DcSatOptions::default()
            },
        )
        .unwrap();
        assert!(!out.satisfied);
        let witness = out.witness.unwrap();
        // Naive returns a maximal world: noise included.
        assert!(witness.tx_count() > 2);
        let pre = Precomputed::build(&db);
        let pc = PreparedConstraint::prepare(db.database_mut(), &dc);
        let minimal = minimize_witness(&db, &pre, &pc, &witness);
        let txs: Vec<TxId> = minimal.txs().collect();
        assert_eq!(
            txs,
            vec![pay_bob, ack_bob],
            "only the culprit chain remains"
        );
        // Minimality: dropping either breaks the witness.
        assert!(!pc.holds(db.database(), &db.database().mask_of([pay_bob])));
        assert!(!is_possible_world(&db, &pre, &[ack_bob]));
    }

    #[test]
    fn base_only_witness_stays_empty() {
        let mut db = setup();
        let pay = db.database().catalog().resolve("Pay").unwrap();
        db.insert_current(pay, tuple![1i64, "bob", 2i64]).unwrap();
        db.add_transaction("noise", [(pay, tuple![2i64, "x", 1i64])])
            .unwrap();
        let dc =
            parse_denial_constraint("q() <- Pay(i, 'bob', a)", db.database().catalog()).unwrap();
        let out = dcsat(
            &mut db,
            &dc,
            &DcSatOptions {
                algorithm: Algorithm::Naive,
                use_precheck: false,
                ..DcSatOptions::default()
            },
        )
        .unwrap();
        assert!(!out.satisfied);
        let pre = Precomputed::build(&db);
        let pc = PreparedConstraint::prepare(db.database_mut(), &dc);
        let minimal = minimize_witness(&db, &pre, &pc, &out.witness.unwrap());
        assert_eq!(minimal.tx_count(), 0, "the violation lives in R alone");
    }
}
