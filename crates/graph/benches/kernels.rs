//! Criterion microbenchmarks for the word-parallel bitset kernels and the
//! degeneracy ordering.
//!
//! Run with `cargo bench -p bcdb-graph`. The kernel benches compare the
//! scalar and wide flavours directly (both are always compiled), so the
//! report shows what the `simd` feature buys on this machine; the
//! `degeneracy_order` benches cover the sparse and dense extremes that
//! bracket the fd-transaction graphs.

use bcdb_graph::bitset::{kernels, BitSet};
use bcdb_graph::UndirectedGraph;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

fn random_words(len: usize, seed: u64) -> Vec<u64> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..len).map(|_| rng.next_u64()).collect()
}

fn bench_and_count(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernels/and_count");
    for words in [16usize, 64, 256, 1024] {
        let a = random_words(words, 1);
        let b = random_words(words, 2);
        group.bench_with_input(BenchmarkId::new("scalar", words), &words, |bench, _| {
            bench.iter(|| kernels::and_count_scalar(&a, &b))
        });
        group.bench_with_input(BenchmarkId::new("wide", words), &words, |bench, _| {
            bench.iter(|| kernels::and_count_wide(&a, &b))
        });
    }
    group.finish();
}

fn bench_and_count_into(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernels/and_count_into");
    for words in [16usize, 64, 256, 1024] {
        let a = random_words(words, 3);
        let b = random_words(words, 4);
        let mut out = vec![0u64; words];
        group.bench_with_input(BenchmarkId::new("scalar", words), &words, |bench, _| {
            bench.iter(|| kernels::and_count_into_scalar(&a, &b, &mut out))
        });
        group.bench_with_input(BenchmarkId::new("wide", words), &words, |bench, _| {
            bench.iter(|| kernels::and_count_into_wide(&a, &b, &mut out))
        });
    }
    group.finish();
}

fn bench_fused_vs_two_step(c: &mut Criterion) {
    // The win the enumeration rewrite banks on: intersect + count in one
    // pass into a reused set, versus allocate-intersect-then-popcount.
    let mut group = c.benchmark_group("bitset/intersect");
    let n = 4096;
    let mut rng = StdRng::seed_from_u64(5);
    let a = BitSet::from_iter(n, (0..n).filter(|_| rng.random_bool(0.5)));
    let b = BitSet::from_iter(n, (0..n).filter(|_| rng.random_bool(0.5)));
    let mut out = BitSet::new(n);
    group.bench_function("fused_into_reused", |bench| {
        bench.iter(|| a.intersect_count_into(&b, &mut out))
    });
    group.bench_function("alloc_then_len", |bench| {
        bench.iter(|| a.intersection(&b).len())
    });
    group.finish();
}

/// A Moon–Moser graph K_{3,3,...,3}: the dense extreme.
fn moon_moser(groups: usize) -> UndirectedGraph {
    let n = groups * 3;
    let mut g = UndirectedGraph::new(n);
    for u in 0..n {
        for v in u + 1..n {
            if u / 3 != v / 3 {
                g.add_edge(u, v);
            }
        }
    }
    g
}

/// A sparse random graph at average degree ~8: the sparse extreme.
fn sparse_random(n: usize, seed: u64) -> UndirectedGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = UndirectedGraph::new(n);
    for _ in 0..n * 4 {
        let u = rng.random_range(0..n);
        let v = rng.random_range(0..n);
        g.add_edge(u, v);
    }
    g
}

fn bench_degeneracy_order(c: &mut Criterion) {
    let mut group = c.benchmark_group("graph/degeneracy_order");
    group.sample_size(20);
    for groups in [16usize, 64] {
        let g = moon_moser(groups);
        group.bench_with_input(
            BenchmarkId::new("moon_moser", groups * 3),
            &groups,
            |bench, _| bench.iter(|| g.degeneracy_order()),
        );
    }
    for n in [512usize, 4096] {
        let g = sparse_random(n, 9);
        group.bench_with_input(BenchmarkId::new("sparse", n), &n, |bench, _| {
            bench.iter(|| g.degeneracy_order())
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_and_count,
    bench_and_count_into,
    bench_fused_vs_two_step,
    bench_degeneracy_order
);
criterion_main!(benches);
