#![warn(missing_docs)]

//! Graph substrate for blockchain-database reasoning.
//!
//! The algorithms of *Reasoning about the Future in Blockchain Databases*
//! reduce possible-world enumeration to graph problems over the pending
//! transaction set:
//!
//! * FD-consistent transaction subsets are **cliques** of the fd-transaction
//!   graph `GfTd`, and for monotonic denial constraints only the **maximal
//!   cliques** matter — enumerated here by Bron–Kerbosch with Tomita
//!   pivoting ([`bron_kerbosch`]).
//! * `OptDCSat` decomposes the problem along the **connected components** of
//!   the ind-q-transaction graph `Gq,ind` ([`components`]).
//!
//! The crate is deliberately generic — it knows nothing about transactions —
//! and is reused by the core crate and by the benchmark harness.

pub mod bitset;
pub mod bron_kerbosch;
pub mod clique_cache;
pub mod components;
pub mod graph;
pub mod scheduler;

pub use bitset::BitSet;
pub use bron_kerbosch::{
    collect_maximal_cliques, count_maximal_cliques, expand_subproblem_governed,
    expand_subproblem_governed_in, maximal_cliques, maximal_cliques_governed,
    maximal_cliques_governed_in, split_subproblems, CliqueStrategy, CliqueSubproblem, ExpandArena,
    Visit,
};
pub use clique_cache::{CachedCliques, CliqueCache, CliqueEntry, VacantCliqueEntry};
pub use components::{connected_components, Components, UnionFind};
pub use graph::UndirectedGraph;
pub use scheduler::{StealScheduler, WorkUnit};
