//! Connected components.
//!
//! `OptDCSat` (§6.2) partitions the pending transactions into the connected
//! components of the ind-q-transaction graph `Gq,ind` and solves each
//! independently (Proposition 2).

use crate::graph::UndirectedGraph;

/// The connected components of a graph: a label per node plus the member
/// list of each component.
#[derive(Clone, Debug)]
pub struct Components {
    /// `label[v]` is the component index of node `v`.
    pub label: Vec<usize>,
    /// `members[c]` lists the nodes of component `c`, in increasing order.
    pub members: Vec<Vec<usize>>,
}

impl Components {
    /// Number of components.
    pub fn count(&self) -> usize {
        self.members.len()
    }
}

/// Computes connected components with an iterative DFS.
pub fn connected_components(g: &UndirectedGraph) -> Components {
    let n = g.node_count();
    let mut label = vec![usize::MAX; n];
    let mut members: Vec<Vec<usize>> = Vec::new();
    let mut stack = Vec::new();
    for start in 0..n {
        if label[start] != usize::MAX {
            continue;
        }
        let c = members.len();
        members.push(Vec::new());
        label[start] = c;
        stack.push(start);
        while let Some(u) = stack.pop() {
            members[c].push(u);
            for v in g.neighbors(u).iter() {
                if label[v] == usize::MAX {
                    label[v] = c;
                    stack.push(v);
                }
            }
        }
        members[c].sort_unstable();
    }
    Components { label, members }
}

/// A disjoint-set (union–find) structure with path halving and union by
/// size. Used to maintain components incrementally as edges are discovered
/// (e.g. while streaming equality-constraint matches between transactions).
#[derive(Clone, Debug)]
pub struct UnionFind {
    parent: Vec<usize>,
    size: Vec<usize>,
    components: usize,
}

impl UnionFind {
    /// Creates `n` singleton sets.
    pub fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n).collect(),
            size: vec![1; n],
            components: n,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Whether the structure is empty.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Number of disjoint sets.
    pub fn component_count(&self) -> usize {
        self.components
    }

    /// Appends a new singleton element, returning its id.
    pub fn push(&mut self) -> usize {
        let id = self.parent.len();
        self.parent.push(id);
        self.size.push(1);
        self.components += 1;
        id
    }

    /// Finds the representative of `x` (with path halving).
    pub fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    /// Merges the sets of `a` and `b`; returns `true` if they were distinct.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (mut ra, mut rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        if self.size[ra] < self.size[rb] {
            std::mem::swap(&mut ra, &mut rb);
        }
        self.parent[rb] = ra;
        self.size[ra] += self.size[rb];
        self.components -= 1;
        true
    }

    /// Whether `a` and `b` are in the same set.
    pub fn connected(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }

    /// Size of the set containing `x`.
    pub fn set_size(&mut self, x: usize) -> usize {
        let r = self.find(x);
        self.size[r]
    }

    /// Extracts the member lists of each set, sorted, in a deterministic
    /// order (by smallest member).
    pub fn into_components(mut self) -> Vec<Vec<usize>> {
        let n = self.len();
        let mut by_root: rustc_hash::FxHashMap<usize, Vec<usize>> = Default::default();
        for x in 0..n {
            let r = self.find(x);
            by_root.entry(r).or_default().push(x);
        }
        let mut out: Vec<Vec<usize>> = by_root.into_values().collect();
        for c in &mut out {
            c.sort_unstable();
        }
        out.sort_by_key(|c| c[0]);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn components_of_two_paths() {
        let mut g = UndirectedGraph::new(6);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.add_edge(4, 5);
        let c = connected_components(&g);
        assert_eq!(c.count(), 3);
        assert_eq!(c.members[c.label[0]], vec![0, 1, 2]);
        assert_eq!(c.members[c.label[3]], vec![3]);
        assert_eq!(c.members[c.label[4]], vec![4, 5]);
        assert_eq!(c.label[4], c.label[5]);
        assert_ne!(c.label[0], c.label[4]);
    }

    #[test]
    fn components_of_empty_graph() {
        let g = UndirectedGraph::new(0);
        let c = connected_components(&g);
        assert_eq!(c.count(), 0);
    }

    #[test]
    fn union_find_basic() {
        let mut uf = UnionFind::new(5);
        assert_eq!(uf.component_count(), 5);
        assert!(uf.union(0, 1));
        assert!(uf.union(1, 2));
        assert!(!uf.union(0, 2)); // already merged
        assert_eq!(uf.component_count(), 3);
        assert!(uf.connected(0, 2));
        assert!(!uf.connected(0, 3));
        assert_eq!(uf.set_size(1), 3);
        assert_eq!(uf.set_size(4), 1);
    }

    #[test]
    fn union_find_push_extends() {
        let mut uf = UnionFind::new(2);
        uf.union(0, 1);
        let c = uf.push();
        assert_eq!(c, 2);
        assert_eq!(uf.component_count(), 2);
        assert!(!uf.connected(0, 2));
        uf.union(1, 2);
        assert!(uf.connected(0, 2));
    }

    #[test]
    fn union_find_components_extraction() {
        let mut uf = UnionFind::new(6);
        uf.union(0, 3);
        uf.union(4, 5);
        let comps = uf.into_components();
        assert_eq!(comps, vec![vec![0, 3], vec![1], vec![2], vec![4, 5]]);
    }

    #[test]
    fn union_find_agrees_with_graph_components() {
        let edges = [(0, 1), (2, 3), (3, 4), (6, 7), (7, 0)];
        let mut g = UndirectedGraph::new(8);
        let mut uf = UnionFind::new(8);
        for (u, v) in edges {
            g.add_edge(u, v);
            uf.union(u, v);
        }
        let c = connected_components(&g);
        let mut sorted_members = c.members.clone();
        sorted_members.sort_by_key(|m| m[0]);
        assert_eq!(sorted_members, uf.into_components());
    }
}
