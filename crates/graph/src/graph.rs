//! Undirected graphs over dense node ids `0..n`, with bitset adjacency rows.
//!
//! The transaction graphs of the paper (`GfTd`, `Gq,ind`) are graphs over the
//! pending-transaction set, whose node ids we keep dense so adjacency can be
//! a bitset row per node — the representation Bron–Kerbosch wants.

use crate::bitset::BitSet;

/// An undirected graph on nodes `0..n` with self-loop-free bitset adjacency.
#[derive(Clone, Debug)]
pub struct UndirectedGraph {
    adj: Vec<BitSet>,
    edge_count: usize,
}

impl UndirectedGraph {
    /// Creates a graph with `n` isolated nodes.
    pub fn new(n: usize) -> Self {
        UndirectedGraph {
            adj: (0..n).map(|_| BitSet::new(n)).collect(),
            edge_count: 0,
        }
    }

    /// Number of nodes.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.adj.len()
    }

    /// Number of edges.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Adds the undirected edge `{u, v}`. Self-loops are ignored; adding an
    /// existing edge is a no-op.
    pub fn add_edge(&mut self, u: usize, v: usize) {
        if u == v || self.adj[u].contains(v) {
            return;
        }
        self.adj[u].insert(v);
        self.adj[v].insert(u);
        self.edge_count += 1;
    }

    /// Whether `{u, v}` is an edge.
    #[inline]
    pub fn has_edge(&self, u: usize, v: usize) -> bool {
        self.adj[u].contains(v)
    }

    /// The adjacency row of `u` as a bitset.
    #[inline]
    pub fn neighbors(&self, u: usize) -> &BitSet {
        &self.adj[u]
    }

    /// Degree of `u`.
    #[inline]
    pub fn degree(&self, u: usize) -> usize {
        self.adj[u].len()
    }

    /// Appends a new isolated node, returning its id. Existing adjacency
    /// is preserved (rows grow lazily). Supports the incremental
    /// steady-state maintenance of the transaction graphs: a newly issued
    /// transaction becomes a new node.
    pub fn add_node(&mut self) -> usize {
        let id = self.adj.len();
        let cap = id + 1;
        for row in &mut self.adj {
            row.grow(cap);
        }
        self.adj.push(BitSet::new(cap));
        id
    }

    /// Removes node `u`, shifting every node id greater than `u` down by
    /// one so ids stay dense `0..n-1`. The inverse of [`add_node`] for the
    /// incremental steady state: when a pending transaction is evicted its
    /// node disappears and the remaining transactions are renumbered, which
    /// matches how `TxId`s compact after a mempool eviction.
    ///
    /// Runs in `O(n + m)` — it rebuilds the adjacency rows once.
    ///
    /// [`add_node`]: UndirectedGraph::add_node
    pub fn remove_node(&mut self, u: usize) {
        let n = self.adj.len();
        assert!(u < n, "remove_node: node {u} out of range ({n} nodes)");
        let mut next = UndirectedGraph::new(n - 1);
        for a in 0..n {
            if a == u {
                continue;
            }
            let na = a - usize::from(a > u);
            for b in self.adj[a].iter() {
                if b == u || b < a {
                    continue; // each undirected edge visited once, from its lower end
                }
                let nb = b - usize::from(b > u);
                next.add_edge(na, nb);
            }
        }
        *self = next;
    }

    /// Removes every node in `sorted` (which must be sorted ascending and
    /// duplicate-free), shifting each surviving id down by the number of
    /// removed ids below it — the batch counterpart of [`remove_node`],
    /// one `O(n + m)` rebuild regardless of how many nodes leave.
    ///
    /// [`remove_node`]: UndirectedGraph::remove_node
    pub fn remove_nodes(&mut self, sorted: &[usize]) {
        debug_assert!(
            sorted.windows(2).all(|w| w[0] < w[1]),
            "remove_nodes: ids must be sorted and distinct"
        );
        if sorted.is_empty() {
            return;
        }
        let n = self.adj.len();
        if let Some(&last) = sorted.last() {
            assert!(last < n, "remove_nodes: node {last} out of range ({n} nodes)");
        }
        // new_id[a] = a's id after removal, or usize::MAX if a is removed.
        let mut new_id = vec![usize::MAX; n];
        let mut cursor = 0;
        let mut next_free = 0;
        for (a, slot) in new_id.iter_mut().enumerate() {
            if cursor < sorted.len() && sorted[cursor] == a {
                cursor += 1;
            } else {
                *slot = next_free;
                next_free += 1;
            }
        }
        let mut next = UndirectedGraph::new(n - sorted.len());
        for a in 0..n {
            let na = new_id[a];
            if na == usize::MAX {
                continue;
            }
            for b in self.adj[a].iter() {
                if b < a {
                    continue; // each undirected edge visited once, from its lower end
                }
                let nb = new_id[b];
                if nb != usize::MAX {
                    next.add_edge(na, nb);
                }
            }
        }
        *self = next;
    }

    /// Removes the undirected edge `{u, v}` if present. The inverse of
    /// [`add_edge`](UndirectedGraph::add_edge): a transaction whose
    /// viability flips off under a base-state delta keeps its node but
    /// sheds its edges.
    pub fn remove_edge(&mut self, u: usize, v: usize) {
        if u == v || !self.adj[u].contains(v) {
            return;
        }
        self.adj[u].remove(v);
        self.adj[v].remove(u);
        self.edge_count -= 1;
    }

    /// Removes every edge incident to `u`, keeping the node. O(deg(u)).
    pub fn isolate(&mut self, u: usize) {
        let neighbors = self.adj[u].to_vec();
        for v in neighbors {
            self.adj[v].remove(u);
            self.edge_count -= 1;
        }
        self.adj[u].clear();
    }

    /// Inserts a new isolated node *at* id `at`, shifting every node id
    /// `>= at` up by one — the inverse of [`remove_node`] and the graph
    /// half of re-inserting a pending transaction at its original id
    /// during reorg undo. Runs in `O(n + m)`.
    ///
    /// [`remove_node`]: UndirectedGraph::remove_node
    pub fn insert_node_at(&mut self, at: usize) {
        let n = self.adj.len();
        assert!(at <= n, "insert_node_at: {at} past the end ({n} nodes)");
        let mut next = UndirectedGraph::new(n + 1);
        for a in 0..n {
            let na = a + usize::from(a >= at);
            for b in self.adj[a].iter() {
                if b < a {
                    continue; // each undirected edge visited once, from its lower end
                }
                let nb = b + usize::from(b >= at);
                next.add_edge(na, nb);
            }
        }
        *self = next;
    }

    /// Whether `nodes` forms a clique (pairwise adjacent).
    pub fn is_clique(&self, nodes: &[usize]) -> bool {
        for (i, &u) in nodes.iter().enumerate() {
            for &v in &nodes[i + 1..] {
                if !self.has_edge(u, v) {
                    return false;
                }
            }
        }
        true
    }

    /// Builds the subgraph induced by `nodes`, together with the mapping from
    /// new dense ids to the original node ids (`result.1[new] == old`).
    pub fn induced_subgraph(&self, nodes: &[usize]) -> (UndirectedGraph, Vec<usize>) {
        let mut sub = UndirectedGraph::new(nodes.len());
        for (i, &u) in nodes.iter().enumerate() {
            for (j, &v) in nodes.iter().enumerate().skip(i + 1) {
                if self.has_edge(u, v) {
                    sub.add_edge(i, j);
                }
            }
        }
        (sub, nodes.to_vec())
    }

    /// The complement graph (no self-loops).
    pub fn complement(&self) -> UndirectedGraph {
        let n = self.node_count();
        let mut g = UndirectedGraph::new(n);
        for u in 0..n {
            for v in u + 1..n {
                if !self.has_edge(u, v) {
                    g.add_edge(u, v);
                }
            }
        }
        g
    }

    /// A degeneracy ordering of the nodes: repeatedly remove a minimum-degree
    /// node. Returns the removal order. Used for the degeneracy-ordered
    /// Bron–Kerbosch variant, which bounds the recursion width by the graph's
    /// degeneracy rather than its maximum degree.
    pub fn degeneracy_ordering(&self) -> Vec<usize> {
        self.degeneracy_order().0
    }

    /// A degeneracy ordering together with the degeneracy itself — the
    /// largest minimum-degree seen while peeling (every node has at most
    /// this many neighbors later in the order). The degeneracy bounds the
    /// candidate-set width of the enumeration's first recursion level, so
    /// callers can use it to size arenas or decide whether the
    /// degeneracy-ordered outer loop is worthwhile.
    pub fn degeneracy_order(&self) -> (Vec<usize>, usize) {
        let n = self.node_count();
        let mut degree: Vec<usize> = (0..n).map(|u| self.degree(u)).collect();
        let maxd = degree.iter().copied().max().unwrap_or(0);
        // Bucket queue over current degrees.
        let mut buckets: Vec<Vec<usize>> = vec![Vec::new(); maxd + 1];
        for u in 0..n {
            buckets[degree[u]].push(u);
        }
        let mut removed = vec![false; n];
        let mut order = Vec::with_capacity(n);
        let mut cursor = 0usize;
        let mut degeneracy = 0usize;
        while order.len() < n {
            // Find the lowest non-empty bucket; degrees only ever decrease by
            // one per removal, so the cursor may need to back up by one.
            cursor = cursor.saturating_sub(1);
            while buckets[cursor].is_empty() {
                cursor += 1;
            }
            let u = buckets[cursor].pop().unwrap();
            if removed[u] || degree[u] != cursor {
                continue; // stale entry
            }
            removed[u] = true;
            degeneracy = degeneracy.max(cursor);
            order.push(u);
            for v in self.neighbors(u).iter() {
                if !removed[v] {
                    degree[v] -= 1;
                    buckets[degree[v]].push(v);
                }
            }
        }
        (order, degeneracy)
    }

    /// Tomita pivot selection as fused kernel sweeps: the vertex
    /// `u ∈ P ∪ X` maximising `|P ∩ N(u)|`, each score a single word-level
    /// AND+popcount pass over `P` and `u`'s adjacency row. Ties break
    /// toward the earlier vertex in `P`-then-`X` iteration order, matching
    /// the enumeration's historical pivot choice. Returns `None` when both
    /// sets are empty.
    pub fn pivot_max_intersection(&self, p: &BitSet, x: &BitSet) -> Option<usize> {
        let mut best = None;
        let mut best_score = 0usize;
        for u in p.iter().chain(x.iter()) {
            let score = p.intersection_len(self.neighbors(u));
            if best.is_none() || score > best_score {
                best = Some(u);
                best_score = score;
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path(n: usize) -> UndirectedGraph {
        let mut g = UndirectedGraph::new(n);
        for i in 0..n.saturating_sub(1) {
            g.add_edge(i, i + 1);
        }
        g
    }

    #[test]
    fn add_edge_is_idempotent_and_symmetric() {
        let mut g = UndirectedGraph::new(3);
        g.add_edge(0, 1);
        g.add_edge(1, 0);
        g.add_edge(0, 0); // ignored self-loop
        assert_eq!(g.edge_count(), 1);
        assert!(g.has_edge(0, 1) && g.has_edge(1, 0));
        assert!(!g.has_edge(0, 0));
    }

    #[test]
    fn degree_and_neighbors() {
        let g = path(4);
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.degree(1), 2);
        assert_eq!(g.neighbors(1).to_vec(), vec![0, 2]);
    }

    #[test]
    fn clique_detection() {
        let mut g = UndirectedGraph::new(4);
        for (u, v) in [(0, 1), (0, 2), (1, 2)] {
            g.add_edge(u, v);
        }
        assert!(g.is_clique(&[0, 1, 2]));
        assert!(g.is_clique(&[0, 1]));
        assert!(g.is_clique(&[3]));
        assert!(g.is_clique(&[]));
        assert!(!g.is_clique(&[0, 1, 3]));
    }

    #[test]
    fn induced_subgraph_preserves_edges() {
        let g = path(5);
        let (sub, map) = g.induced_subgraph(&[1, 2, 4]);
        assert_eq!(sub.node_count(), 3);
        assert_eq!(map, vec![1, 2, 4]);
        assert!(sub.has_edge(0, 1)); // 1-2
        assert!(!sub.has_edge(1, 2)); // 2-4 not adjacent
        assert_eq!(sub.edge_count(), 1);
    }

    #[test]
    fn complement_of_path() {
        let g = path(3);
        let c = g.complement();
        assert!(c.has_edge(0, 2));
        assert!(!c.has_edge(0, 1));
        assert_eq!(c.edge_count(), 1);
    }

    #[test]
    fn degeneracy_ordering_of_path_is_valid() {
        let g = path(6);
        let order = g.degeneracy_ordering();
        assert_eq!(order.len(), 6);
        let mut seen = std::collections::HashSet::new();
        for u in &order {
            seen.insert(*u);
        }
        assert_eq!(seen.len(), 6);
        // A path has degeneracy 1: each removed node has ≤1 remaining neighbor.
        let mut removed = [false; 6];
        for &u in &order {
            let remaining = g.neighbors(u).iter().filter(|&v| !removed[v]).count();
            assert!(
                remaining <= 1,
                "node {u} had {remaining} remaining neighbors"
            );
            removed[u] = true;
        }
    }

    #[test]
    fn degeneracy_ordering_of_complete_graph() {
        let mut g = UndirectedGraph::new(5);
        for u in 0..5 {
            for v in u + 1..5 {
                g.add_edge(u, v);
            }
        }
        assert_eq!(g.degeneracy_ordering().len(), 5);
    }

    #[test]
    fn add_node_grows_graph() {
        let mut g = path(2);
        let id = g.add_node();
        assert_eq!(id, 2);
        assert_eq!(g.node_count(), 3);
        assert!(g.has_edge(0, 1));
        assert!(!g.has_edge(0, 2));
        g.add_edge(2, 0);
        assert!(g.has_edge(0, 2));
        assert_eq!(g.degree(2), 1);
    }

    #[test]
    fn remove_node_shifts_ids_down() {
        // Path 0-1-2-3 plus chord 0-3; remove node 1.
        let mut g = path(4);
        g.add_edge(0, 3);
        g.remove_node(1);
        // Old nodes 2,3 become 1,2; the 0-1 and 1-2 edges die with node 1.
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 2);
        assert!(g.has_edge(1, 2)); // old 2-3
        assert!(g.has_edge(0, 2)); // old 0-3
        assert!(!g.has_edge(0, 1));
    }

    #[test]
    fn remove_nodes_matches_sequential_removals() {
        // Random-ish dense graph on 8 nodes; remove {1, 4, 6} both ways.
        let mut g = UndirectedGraph::new(8);
        for (u, v) in [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 6), (6, 7), (0, 7), (2, 6), (1, 5), (0, 4)] {
            g.add_edge(u, v);
        }
        let mut batch = g.clone();
        batch.remove_nodes(&[1, 4, 6]);
        // Sequential removal in descending order leaves lower ids stable.
        let mut seq = g;
        for u in [6, 4, 1] {
            seq.remove_node(u);
        }
        assert_eq!(batch.node_count(), seq.node_count());
        assert_eq!(batch.edge_count(), seq.edge_count());
        for u in 0..batch.node_count() {
            for v in 0..batch.node_count() {
                assert_eq!(batch.has_edge(u, v), seq.has_edge(u, v), "edge {u}-{v}");
            }
        }
        // Empty batch is a no-op.
        let before = batch.edge_count();
        batch.remove_nodes(&[]);
        assert_eq!(batch.edge_count(), before);
    }

    #[test]
    fn remove_node_endpoints_and_isolated() {
        let mut g = path(3);
        g.remove_node(2);
        assert_eq!((g.node_count(), g.edge_count()), (2, 1));
        assert!(g.has_edge(0, 1));
        g.remove_node(0);
        assert_eq!((g.node_count(), g.edge_count()), (1, 0));
        g.remove_node(0);
        assert_eq!(g.node_count(), 0);
    }

    #[test]
    fn remove_then_add_node_round_trips() {
        let mut g = UndirectedGraph::new(4);
        for (u, v) in [(0, 1), (1, 2), (2, 3), (0, 3)] {
            g.add_edge(u, v);
        }
        g.remove_node(3);
        let id = g.add_node();
        assert_eq!(id, 3);
        g.add_edge(2, 3);
        g.add_edge(0, 3);
        for (u, v) in [(0, 1), (1, 2), (2, 3), (0, 3)] {
            assert!(g.has_edge(u, v));
        }
        assert_eq!(g.edge_count(), 4);
    }

    #[test]
    fn remove_edge_and_isolate() {
        let mut g = path(4);
        g.add_edge(0, 3);
        g.remove_edge(1, 2);
        g.remove_edge(1, 2); // absent: no-op
        g.remove_edge(2, 2); // self-loop: no-op
        assert_eq!(g.edge_count(), 3); // 0-1, 2-3, 0-3 remain
        assert!(!g.has_edge(1, 2) && !g.has_edge(2, 1));
        g.isolate(0);
        assert_eq!(g.edge_count(), 1); // only 2-3 remains
        assert_eq!(g.degree(0), 0);
        assert!(!g.has_edge(3, 0));
        assert!(g.has_edge(2, 3));
        assert_eq!(g.node_count(), 4);
    }

    #[test]
    fn insert_node_at_inverts_remove_node() {
        let mut g = UndirectedGraph::new(4);
        for (u, v) in [(0, 1), (1, 2), (2, 3), (0, 3)] {
            g.add_edge(u, v);
        }
        let mut h = g.clone();
        h.remove_node(1);
        h.insert_node_at(1);
        assert_eq!(h.node_count(), 4);
        assert_eq!(h.degree(1), 0);
        // Restoring node 1's edges recovers the original graph.
        h.add_edge(0, 1);
        h.add_edge(1, 2);
        for u in 0..4 {
            for v in 0..4 {
                assert_eq!(g.has_edge(u, v), h.has_edge(u, v), "edge {u}-{v}");
            }
        }
        // Insert at the end behaves like add_node.
        let mut tail = path(2);
        tail.insert_node_at(2);
        assert_eq!(tail.node_count(), 3);
        assert!(tail.has_edge(0, 1));
        assert_eq!(tail.degree(2), 0);
    }

    #[test]
    fn empty_graph_edge_cases() {
        let g = UndirectedGraph::new(0);
        assert_eq!(g.node_count(), 0);
        assert!(g.degeneracy_ordering().is_empty());
        assert_eq!(g.degeneracy_order().1, 0);
    }

    #[test]
    fn degeneracy_number_of_known_graphs() {
        assert_eq!(path(6).degeneracy_order().1, 1);
        let mut k5 = UndirectedGraph::new(5);
        for u in 0..5 {
            for v in u + 1..5 {
                k5.add_edge(u, v);
            }
        }
        assert_eq!(k5.degeneracy_order().1, 4);
        // A 4-cycle is 2-regular: degeneracy 2.
        let mut c4 = path(4);
        c4.add_edge(3, 0);
        assert_eq!(c4.degeneracy_order().1, 2);
    }

    #[test]
    fn pivot_maximises_candidate_coverage() {
        // Star: center 0 adjacent to 1..4. With P = {1..4} ∪ {0}, the
        // center covers all of P ∩ N(0) = 4 candidates.
        let mut g = UndirectedGraph::new(5);
        for v in 1..5 {
            g.add_edge(0, v);
        }
        let p = BitSet::full(5);
        let x = BitSet::new(5);
        assert_eq!(g.pivot_max_intersection(&p, &x), Some(0));
        assert_eq!(g.pivot_max_intersection(&BitSet::new(5), &x), None);
        // X-only still yields a pivot.
        let xonly = BitSet::from_iter(5, [2]);
        assert_eq!(
            g.pivot_max_intersection(&BitSet::new(5), &xonly),
            Some(2)
        );
    }
}
