//! Maximal-clique enumeration.
//!
//! The paper's `NaiveDCSat`/`OptDCSat` iterate over the *maximal cliques* of
//! the fd-transaction graph `GfTd` — every FD-consistent set of pending
//! transactions is a clique, and for monotonic denial constraints only the
//! maximal ones matter (§6.1). Following the paper's implementation notes
//! (§6.3) we use the Bron–Kerbosch algorithm (the paper's reference \[9\])
//! with the pivoting rule of Tomita, Tanaka and Takahashi (\[44\]), plus an
//! optional degeneracy-ordered
//! outer loop for sparse graphs.

use crate::bitset::BitSet;
use crate::graph::UndirectedGraph;
use bcdb_governor::{Budget, ExhaustionReason, UNGOVERNED};

/// Which enumeration strategy to use.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum CliqueStrategy {
    /// Plain Bron–Kerbosch, no pivoting. Exponentially worse on dense
    /// graphs; kept for ablation benchmarks.
    Plain,
    /// Bron–Kerbosch with Tomita pivoting (the paper's choice).
    #[default]
    Pivot,
    /// Degeneracy-ordered outer level, Tomita pivoting below. Best for
    /// sparse graphs with a few dense pockets.
    Degeneracy,
}

/// Control flow signal returned by the visitor callback.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Visit {
    /// Keep enumerating.
    Continue,
    /// Stop the whole enumeration (e.g. a witness world was found).
    Stop,
}

/// Enumerates all maximal cliques of `g`, invoking `visit` on each.
///
/// The visitor receives the clique as a sorted slice of node ids and may
/// abort the enumeration early by returning [`Visit::Stop`] — `OptDCSat`
/// stops as soon as one possible world satisfies the query. Returns `true`
/// if the enumeration ran to completion, `false` if it was stopped.
///
/// The empty graph on zero nodes has exactly one maximal clique (the empty
/// clique), matching the convention that `R` itself is always a possible
/// world.
pub fn maximal_cliques(
    g: &UndirectedGraph,
    strategy: CliqueStrategy,
    visit: impl FnMut(&[usize]) -> Visit,
) -> bool {
    // The static unlimited budget never exhausts (and nothing cancels it),
    // so the governed variant cannot err on this path.
    maximal_cliques_governed(g, strategy, &UNGOVERNED, visit)
        .expect("unlimited budget cannot exhaust")
}

/// Budget-aware variant of [`maximal_cliques`].
///
/// Charges the budget one clique per reported maximal clique and ticks it
/// (cancellation + amortized deadline) once per recursive expansion, so
/// even clique-free stretches of a pathological search tree observe an
/// expired deadline promptly. Returns `Ok(true)` if enumeration ran to
/// completion, `Ok(false)` if the visitor stopped it, and
/// `Err(reason)` if the budget was exhausted mid-enumeration (any cliques
/// already reported remain valid — enumeration is sound, just incomplete).
pub fn maximal_cliques_governed(
    g: &UndirectedGraph,
    strategy: CliqueStrategy,
    budget: &Budget,
    mut visit: impl FnMut(&[usize]) -> Visit,
) -> Result<bool, ExhaustionReason> {
    let n = g.node_count();
    let mut r: Vec<usize> = Vec::new();
    let p = BitSet::full(n);
    let x = BitSet::new(n);
    match strategy {
        CliqueStrategy::Plain => expand_plain(g, &mut r, p, x, budget, &mut visit),
        CliqueStrategy::Pivot => expand_pivot(g, &mut r, p, x, budget, &mut visit),
        CliqueStrategy::Degeneracy => {
            if n == 0 {
                // The empty clique is the unique maximal clique of the
                // zero-node graph; the outer loop below would never emit it.
                budget.charge_clique()?;
                return Ok(visit(&[]) == Visit::Continue);
            }
            let order = g.degeneracy_ordering();
            let mut p = BitSet::full(n);
            let mut x = BitSet::new(n);
            for &v in &order {
                let mut pv = p.intersection(g.neighbors(v));
                let mut xv = x.intersection(g.neighbors(v));
                // Shrink to the still-candidate neighborhood of v.
                r.push(v);
                let cont = expand_pivot(
                    g,
                    &mut r,
                    std::mem::take(&mut pv),
                    std::mem::take(&mut xv),
                    budget,
                    &mut visit,
                );
                r.pop();
                if !cont? {
                    return Ok(false);
                }
                p.remove(v);
                x.insert(v);
            }
            Ok(true)
        }
    }
}

/// Collects all maximal cliques into a vector (each sorted ascending).
/// Convenience wrapper for tests and small inputs; prefer the visitor API
/// when early exit matters.
pub fn collect_maximal_cliques(g: &UndirectedGraph, strategy: CliqueStrategy) -> Vec<Vec<usize>> {
    let mut out = Vec::new();
    maximal_cliques(g, strategy, |c| {
        out.push(c.to_vec());
        Visit::Continue
    });
    out
}

/// Counts maximal cliques without materialising them.
pub fn count_maximal_cliques(g: &UndirectedGraph, strategy: CliqueStrategy) -> usize {
    let mut n = 0usize;
    maximal_cliques(g, strategy, |_| {
        n += 1;
        Visit::Continue
    });
    n
}

fn report(
    r: &mut [usize],
    budget: &Budget,
    visit: &mut impl FnMut(&[usize]) -> Visit,
) -> Result<bool, ExhaustionReason> {
    budget.charge_clique()?;
    r.sort_unstable();
    Ok(visit(r) == Visit::Continue)
}

fn expand_plain(
    g: &UndirectedGraph,
    r: &mut Vec<usize>,
    mut p: BitSet,
    mut x: BitSet,
    budget: &Budget,
    visit: &mut impl FnMut(&[usize]) -> Visit,
) -> Result<bool, ExhaustionReason> {
    budget.tick()?;
    if p.is_empty() && x.is_empty() {
        let mut clique = r.clone();
        return report(&mut clique, budget, visit);
    }
    while let Some(v) = p.first() {
        let pv = p.intersection(g.neighbors(v));
        let xv = x.intersection(g.neighbors(v));
        r.push(v);
        let cont = expand_plain(g, r, pv, xv, budget, visit);
        r.pop();
        if !cont? {
            return Ok(false);
        }
        p.remove(v);
        x.insert(v);
    }
    Ok(true)
}

/// Picks the pivot `u ∈ P ∪ X` maximising `|P ∩ N(u)|` (Tomita's rule),
/// so that the branching set `P \ N(u)` is as small as possible.
fn choose_pivot(g: &UndirectedGraph, p: &BitSet, x: &BitSet) -> usize {
    let mut best = usize::MAX;
    let mut best_score = usize::MAX; // sentinel: "none chosen yet"
    for u in p.iter().chain(x.iter()) {
        let score = p.intersection_len(g.neighbors(u));
        if best_score == usize::MAX || score > best_score {
            best_score = score;
            best = u;
        }
    }
    best
}

fn expand_pivot(
    g: &UndirectedGraph,
    r: &mut Vec<usize>,
    mut p: BitSet,
    mut x: BitSet,
    budget: &Budget,
    visit: &mut impl FnMut(&[usize]) -> Visit,
) -> Result<bool, ExhaustionReason> {
    budget.tick()?;
    if p.is_empty() && x.is_empty() {
        let mut clique = r.clone();
        return report(&mut clique, budget, visit);
    }
    if p.is_empty() {
        return Ok(true); // X non-empty: not maximal, prune
    }
    let pivot = choose_pivot(g, &p, &x);
    let mut branch = p.clone();
    branch.difference_with(g.neighbors(pivot));
    for v in branch.iter() {
        if !p.contains(v) {
            continue; // removed by an earlier branch iteration
        }
        let pv = p.intersection(g.neighbors(v));
        let xv = x.intersection(g.neighbors(v));
        r.push(v);
        let cont = expand_pivot(g, r, pv, xv, budget, visit);
        r.pop();
        if !cont? {
            return Ok(false);
        }
        p.remove(v);
        x.insert(v);
    }
    Ok(true)
}

#[cfg(test)]
mod tests {
    use super::*;

    const ALL: [CliqueStrategy; 3] = [
        CliqueStrategy::Plain,
        CliqueStrategy::Pivot,
        CliqueStrategy::Degeneracy,
    ];

    fn sorted(mut cs: Vec<Vec<usize>>) -> Vec<Vec<usize>> {
        cs.sort();
        cs
    }

    #[test]
    fn empty_graph_has_the_empty_clique() {
        let g = UndirectedGraph::new(0);
        for s in ALL {
            assert_eq!(
                collect_maximal_cliques(&g, s),
                vec![Vec::<usize>::new()],
                "{s:?}"
            );
        }
    }

    #[test]
    fn isolated_nodes_are_singleton_cliques() {
        let g = UndirectedGraph::new(3);
        for s in ALL {
            assert_eq!(
                sorted(collect_maximal_cliques(&g, s)),
                vec![vec![0], vec![1], vec![2]],
                "{s:?}"
            );
        }
    }

    #[test]
    fn triangle_plus_pendant() {
        // 0-1-2 triangle, 3 attached to 2.
        let mut g = UndirectedGraph::new(4);
        for (u, v) in [(0, 1), (0, 2), (1, 2), (2, 3)] {
            g.add_edge(u, v);
        }
        for s in ALL {
            assert_eq!(
                sorted(collect_maximal_cliques(&g, s)),
                vec![vec![0, 1, 2], vec![2, 3]],
                "{s:?}"
            );
        }
    }

    #[test]
    fn complete_graph_single_clique() {
        let mut g = UndirectedGraph::new(6);
        for u in 0..6 {
            for v in u + 1..6 {
                g.add_edge(u, v);
            }
        }
        for s in ALL {
            assert_eq!(
                collect_maximal_cliques(&g, s),
                vec![vec![0, 1, 2, 3, 4, 5]],
                "{s:?}"
            );
        }
    }

    /// Moon–Moser graphs K_{3,3,...,3} have the maximum possible number of
    /// maximal cliques: 3^(n/3).
    fn moon_moser(groups: usize) -> UndirectedGraph {
        let n = groups * 3;
        let mut g = UndirectedGraph::new(n);
        for u in 0..n {
            for v in u + 1..n {
                if u / 3 != v / 3 {
                    g.add_edge(u, v);
                }
            }
        }
        g
    }

    #[test]
    fn moon_moser_counts() {
        for groups in 1..=5 {
            let g = moon_moser(groups);
            let want = 3usize.pow(groups as u32);
            for s in ALL {
                assert_eq!(count_maximal_cliques(&g, s), want, "groups={groups} {s:?}");
            }
        }
    }

    #[test]
    fn early_stop_is_honoured() {
        let g = moon_moser(4); // 81 cliques
        let mut seen = 0;
        let completed = maximal_cliques(&g, CliqueStrategy::Pivot, |_| {
            seen += 1;
            if seen == 5 {
                Visit::Stop
            } else {
                Visit::Continue
            }
        });
        assert!(!completed);
        assert_eq!(seen, 5);
    }

    #[test]
    fn strategies_agree_on_running_example_shape() {
        // GfTd of the paper's Figure 3: nodes T1..T5 (as 0..4); T5 conflicts
        // with T1 only.
        let mut g = UndirectedGraph::new(5);
        for (u, v) in [
            (0, 1),
            (0, 2),
            (0, 3),
            (1, 2),
            (1, 3),
            (2, 3),
            (1, 4),
            (2, 4),
            (3, 4),
        ] {
            g.add_edge(u, v);
        }
        for s in ALL {
            assert_eq!(
                sorted(collect_maximal_cliques(&g, s)),
                vec![vec![0, 1, 2, 3], vec![1, 2, 3, 4]],
                "{s:?}"
            );
        }
    }

    #[test]
    fn clique_budget_stops_enumeration() {
        use bcdb_governor::BudgetSpec;
        let g = moon_moser(4); // 81 cliques
        for s in ALL {
            let budget = BudgetSpec {
                max_cliques: Some(5),
                ..BudgetSpec::UNLIMITED
            }
            .start();
            let mut seen = 0usize;
            let result = maximal_cliques_governed(&g, s, &budget, |c| {
                assert!(g.is_clique(c), "budgeted enumeration emitted non-clique");
                seen += 1;
                Visit::Continue
            });
            assert_eq!(result, Err(ExhaustionReason::CliqueLimit(5)), "{s:?}");
            assert_eq!(seen, 5, "{s:?}: cliques before exhaustion are reported");
        }
    }

    #[test]
    fn cancelled_budget_stops_before_first_clique() {
        use bcdb_governor::BudgetSpec;
        let g = moon_moser(3);
        let budget = BudgetSpec::UNLIMITED.start();
        budget.cancel();
        let result = maximal_cliques_governed(&g, CliqueStrategy::Pivot, &budget, |_| {
            panic!("no clique should be visited after cancellation")
        });
        assert_eq!(result, Err(ExhaustionReason::Cancelled));
    }

    #[test]
    fn governed_with_unlimited_budget_matches_ungoverned() {
        use bcdb_governor::Budget;
        let g = moon_moser(3);
        let budget = Budget::unlimited();
        let mut governed = Vec::new();
        let completed = maximal_cliques_governed(&g, CliqueStrategy::Pivot, &budget, |c| {
            governed.push(c.to_vec());
            Visit::Continue
        })
        .unwrap();
        assert!(completed);
        assert_eq!(
            sorted(governed),
            sorted(collect_maximal_cliques(&g, CliqueStrategy::Pivot))
        );
    }

    #[test]
    fn all_reported_cliques_are_maximal_cliques() {
        // Random-ish fixed graph; verify the defining property directly.
        let mut g = UndirectedGraph::new(10);
        let edges = [
            (0, 1),
            (0, 2),
            (1, 2),
            (2, 3),
            (3, 4),
            (4, 5),
            (5, 6),
            (6, 7),
            (7, 8),
            (8, 9),
            (9, 0),
            (1, 5),
            (2, 6),
            (3, 7),
            (4, 8),
        ];
        for (u, v) in edges {
            g.add_edge(u, v);
        }
        let cliques = collect_maximal_cliques(&g, CliqueStrategy::Pivot);
        for c in &cliques {
            assert!(g.is_clique(c), "{c:?} not a clique");
            for w in 0..10 {
                if !c.contains(&w) {
                    let extended: Vec<usize> = c.iter().copied().chain([w]).collect();
                    assert!(!g.is_clique(&extended), "{c:?} extensible by {w}");
                }
            }
        }
        // And the three strategies agree.
        let a = sorted(collect_maximal_cliques(&g, CliqueStrategy::Plain));
        let b = sorted(collect_maximal_cliques(&g, CliqueStrategy::Pivot));
        let c = sorted(collect_maximal_cliques(&g, CliqueStrategy::Degeneracy));
        assert_eq!(a, b);
        assert_eq!(b, c);
    }
}
