//! Maximal-clique enumeration.
//!
//! The paper's `NaiveDCSat`/`OptDCSat` iterate over the *maximal cliques* of
//! the fd-transaction graph `GfTd` — every FD-consistent set of pending
//! transactions is a clique, and for monotonic denial constraints only the
//! maximal ones matter (§6.1). Following the paper's implementation notes
//! (§6.3) we use the Bron–Kerbosch algorithm (the paper's reference \[9\])
//! with the pivoting rule of Tomita, Tanaka and Takahashi (\[44\]), plus an
//! optional degeneracy-ordered
//! outer loop for sparse graphs.

use crate::bitset::BitSet;
use crate::graph::UndirectedGraph;
use bcdb_governor::{Budget, ExhaustionReason, UNGOVERNED};
use bcdb_telemetry::probes;

/// Which enumeration strategy to use.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum CliqueStrategy {
    /// Plain Bron–Kerbosch, no pivoting. Exponentially worse on dense
    /// graphs; kept for ablation benchmarks.
    Plain,
    /// Bron–Kerbosch with Tomita pivoting (the paper's choice).
    #[default]
    Pivot,
    /// Degeneracy-ordered outer level, Tomita pivoting below. Best for
    /// sparse graphs with a few dense pockets.
    Degeneracy,
}

/// Control flow signal returned by the visitor callback.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Visit {
    /// Keep enumerating.
    Continue,
    /// Stop the whole enumeration (e.g. a witness world was found).
    Stop,
}

/// Enumerates all maximal cliques of `g`, invoking `visit` on each.
///
/// The visitor receives the clique as a sorted slice of node ids and may
/// abort the enumeration early by returning [`Visit::Stop`] — `OptDCSat`
/// stops as soon as one possible world satisfies the query. Returns `true`
/// if the enumeration ran to completion, `false` if it was stopped.
///
/// The empty graph on zero nodes has exactly one maximal clique (the empty
/// clique), matching the convention that `R` itself is always a possible
/// world.
pub fn maximal_cliques(
    g: &UndirectedGraph,
    strategy: CliqueStrategy,
    visit: impl FnMut(&[usize]) -> Visit,
) -> bool {
    // The static unlimited budget never exhausts (and nothing cancels it),
    // so the governed variant cannot err on this path.
    maximal_cliques_governed(g, strategy, &UNGOVERNED, visit)
        .expect("unlimited budget cannot exhaust")
}

/// Budget-aware variant of [`maximal_cliques`].
///
/// Charges the budget one clique per reported maximal clique and ticks it
/// (cancellation + amortized deadline) once per recursive expansion, so
/// even clique-free stretches of a pathological search tree observe an
/// expired deadline promptly. Returns `Ok(true)` if enumeration ran to
/// completion, `Ok(false)` if the visitor stopped it, and
/// `Err(reason)` if the budget was exhausted mid-enumeration (any cliques
/// already reported remain valid — enumeration is sound, just incomplete).
pub fn maximal_cliques_governed(
    g: &UndirectedGraph,
    strategy: CliqueStrategy,
    budget: &Budget,
    visit: impl FnMut(&[usize]) -> Visit,
) -> Result<bool, ExhaustionReason> {
    maximal_cliques_governed_in(g, strategy, budget, &mut ExpandArena::new(), visit)
}

/// Arena-reusing variant of [`maximal_cliques_governed`]: all `P`/`X`
/// recursion sets come from (and return to) `arena`, so a worker that
/// enumerates many components or subproblems touches the allocator only
/// while the arena warms up. Semantics are identical.
pub fn maximal_cliques_governed_in(
    g: &UndirectedGraph,
    strategy: CliqueStrategy,
    budget: &Budget,
    arena: &mut ExpandArena,
    mut visit: impl FnMut(&[usize]) -> Visit,
) -> Result<bool, ExhaustionReason> {
    let _bk_span = probes::GRAPH_COMPONENT_BK_NS.span();
    let n = g.node_count();
    let mut r: Vec<usize> = Vec::new();
    let result = match strategy {
        CliqueStrategy::Plain | CliqueStrategy::Pivot => {
            let mut p = arena.take(n);
            for v in 0..n {
                p.insert(v);
            }
            let mut x = arena.take(n);
            let out = if strategy == CliqueStrategy::Plain {
                expand_plain(g, &mut r, &mut p, &mut x, arena, budget, &mut visit)
            } else {
                expand_pivot(g, &mut r, &mut p, &mut x, arena, budget, &mut visit)
            };
            arena.put(p);
            arena.put(x);
            out
        }
        CliqueStrategy::Degeneracy => 'deg: {
            if n == 0 {
                // The empty clique is the unique maximal clique of the
                // zero-node graph; the outer loop below would never emit it.
                let out = budget.charge_clique().map(|()| visit(&[]) == Visit::Continue);
                break 'deg out;
            }
            let order = g.degeneracy_ordering();
            let mut p = arena.take(n);
            for v in 0..n {
                p.insert(v);
            }
            let mut x = arena.take(n);
            let mut out = Ok(true);
            for &v in &order {
                // Shrink to the still-candidate neighborhood of v.
                let mut pv = arena.take(n);
                let mut xv = arena.take(n);
                p.intersect_count_into(g.neighbors(v), &mut pv);
                x.intersect_count_into(g.neighbors(v), &mut xv);
                arena.words += 2 * p.word_len() as u64;
                r.push(v);
                let cont = expand_pivot(g, &mut r, &mut pv, &mut xv, arena, budget, &mut visit);
                r.pop();
                arena.put(pv);
                arena.put(xv);
                match cont {
                    Ok(true) => {}
                    stop_or_err => {
                        out = stop_or_err;
                        break;
                    }
                }
                p.remove(v);
                x.insert(v);
            }
            arena.put(p);
            arena.put(x);
            out
        }
    };
    arena.flush_words();
    result
}

/// Collects all maximal cliques into a vector (each sorted ascending).
/// Convenience wrapper for tests and small inputs; prefer the visitor API
/// when early exit matters.
pub fn collect_maximal_cliques(g: &UndirectedGraph, strategy: CliqueStrategy) -> Vec<Vec<usize>> {
    let mut out = Vec::new();
    maximal_cliques(g, strategy, |c| {
        out.push(c.to_vec());
        Visit::Continue
    });
    out
}

/// Counts maximal cliques without materialising them.
pub fn count_maximal_cliques(g: &UndirectedGraph, strategy: CliqueStrategy) -> usize {
    let mut n = 0usize;
    maximal_cliques(g, strategy, |_| {
        n += 1;
        Visit::Continue
    });
    n
}

/// A reusable per-worker allocation arena for the `(R, P, X)` recursion.
///
/// Every recursion level needs two fresh candidate sets (`P ∩ N(v)`,
/// `X ∩ N(v)`) plus a branching set and a sorted copy of each reported
/// clique. Allocating those on the heap per level is the dominant
/// non-kernel cost of enumeration; the arena keeps a free list of retired
/// [`BitSet`]s (reset in place, allocation reused) and one clique scratch
/// buffer, so a long-lived worker reaches a steady state of zero
/// allocator traffic. It also accumulates the kernel words-scanned count,
/// flushed to the `graph.kernel_words_scanned` probe once per governed
/// enumeration call rather than per kernel invocation.
#[derive(Default)]
pub struct ExpandArena {
    pool: Vec<BitSet>,
    clique: Vec<usize>,
    words: u64,
    flushed: u64,
}

impl ExpandArena {
    /// Creates an empty arena; it warms up as the first enumeration runs.
    pub fn new() -> Self {
        ExpandArena::default()
    }

    /// Total 64-bit words scanned by fused kernels through this arena.
    pub fn words_scanned(&self) -> u64 {
        self.words
    }

    /// A clean set of exactly `capacity`, reusing a retired allocation
    /// when one is pooled.
    #[inline]
    fn take(&mut self, capacity: usize) -> BitSet {
        let mut s = self.pool.pop().unwrap_or_default();
        s.reset(capacity);
        s
    }

    /// Retires a set back into the pool.
    #[inline]
    fn put(&mut self, s: BitSet) {
        self.pool.push(s);
    }

    /// Flushes words scanned since the last flush to the telemetry probe.
    fn flush_words(&mut self) {
        let delta = self.words - self.flushed;
        if delta > 0 {
            probes::GRAPH_KERNEL_WORDS_SCANNED.add(delta);
            self.flushed = self.words;
        }
    }
}

fn report(
    r: &[usize],
    scratch: &mut Vec<usize>,
    budget: &Budget,
    visit: &mut impl FnMut(&[usize]) -> Visit,
) -> Result<bool, ExhaustionReason> {
    budget.charge_clique()?;
    probes::GRAPH_CLIQUES_EMITTED.incr();
    scratch.clear();
    scratch.extend_from_slice(r);
    scratch.sort_unstable();
    Ok(visit(scratch) == Visit::Continue)
}

fn expand_plain(
    g: &UndirectedGraph,
    r: &mut Vec<usize>,
    p: &mut BitSet,
    x: &mut BitSet,
    arena: &mut ExpandArena,
    budget: &Budget,
    visit: &mut impl FnMut(&[usize]) -> Visit,
) -> Result<bool, ExhaustionReason> {
    budget.tick()?;
    if p.is_empty() && x.is_empty() {
        return report(r, &mut arena.clique, budget, visit);
    }
    while let Some(v) = p.first() {
        let mut pv = arena.take(p.capacity());
        let mut xv = arena.take(p.capacity());
        p.intersect_count_into(g.neighbors(v), &mut pv);
        x.intersect_count_into(g.neighbors(v), &mut xv);
        arena.words += 2 * p.word_len() as u64;
        r.push(v);
        let cont = expand_plain(g, r, &mut pv, &mut xv, arena, budget, visit);
        r.pop();
        arena.put(pv);
        arena.put(xv);
        if !cont? {
            return Ok(false);
        }
        p.remove(v);
        x.insert(v);
    }
    Ok(true)
}

fn expand_pivot(
    g: &UndirectedGraph,
    r: &mut Vec<usize>,
    p: &mut BitSet,
    x: &mut BitSet,
    arena: &mut ExpandArena,
    budget: &Budget,
    visit: &mut impl FnMut(&[usize]) -> Visit,
) -> Result<bool, ExhaustionReason> {
    budget.tick()?;
    let p_len = p.len();
    if p_len == 0 {
        if x.is_empty() {
            return report(r, &mut arena.clique, budget, visit);
        }
        return Ok(true); // X non-empty: not maximal, prune
    }
    // Tomita pivot: one fused AND+popcount sweep per u ∈ P ∪ X.
    arena.words += ((p_len + x.len()) * p.word_len()) as u64;
    let pivot = g
        .pivot_max_intersection(p, x)
        .expect("P is non-empty, a pivot exists");
    let mut branch = arena.take(p.capacity());
    let branch_len = p.difference_count_into(g.neighbors(pivot), &mut branch);
    arena.words += p.word_len() as u64;
    if bcdb_telemetry::enabled() {
        probes::GRAPH_PIVOT_CANDIDATES_PRUNED.add((p_len - branch_len) as u64);
    }
    let mut result = Ok(true);
    for v in branch.iter() {
        if !p.contains(v) {
            continue; // removed by an earlier branch iteration
        }
        let mut pv = arena.take(p.capacity());
        let mut xv = arena.take(p.capacity());
        p.intersect_count_into(g.neighbors(v), &mut pv);
        x.intersect_count_into(g.neighbors(v), &mut xv);
        arena.words += 2 * p.word_len() as u64;
        r.push(v);
        let cont = expand_pivot(g, r, &mut pv, &mut xv, arena, budget, visit);
        r.pop();
        arena.put(pv);
        arena.put(xv);
        match cont {
            Ok(true) => {}
            stop_or_err => {
                result = stop_or_err;
                break;
            }
        }
        p.remove(v);
        x.insert(v);
    }
    arena.put(branch);
    result
}

/// An independent Bron–Kerbosch subproblem `(R, P, X)`.
///
/// Produced by [`split_subproblems`]: the cliques reachable from distinct
/// subproblems are disjoint, and concatenating the enumerations of all
/// subproblems **in vector order** yields exactly the cliques of
/// [`maximal_cliques_governed`] on the same graph, in the same order. This
/// is what lets `OptDCSat` fan the inside of one giant component out across
/// worker threads while keeping deterministic lowest-index semantics.
#[derive(Clone, Debug)]
pub struct CliqueSubproblem {
    r: Vec<usize>,
    p: BitSet,
    x: BitSet,
}

impl CliqueSubproblem {
    /// The partial clique `R` shared by every clique of this subproblem.
    pub fn partial(&self) -> &[usize] {
        &self.r
    }

    /// Number of candidate vertices still in `P` (a rough size estimate).
    pub fn candidate_count(&self) -> usize {
        self.p.len()
    }
}

/// Expands one subproblem into the child subproblems the sequential
/// expansion would branch into, in the same order. May return fewer
/// children than branch vertices (children dominated by `X` are pruned) or
/// none at all (the whole subtree is prunable).
fn branch_once(
    g: &UndirectedGraph,
    strategy: CliqueStrategy,
    sub: &CliqueSubproblem,
) -> Vec<CliqueSubproblem> {
    let branch: Vec<usize> = match strategy {
        CliqueStrategy::Plain => sub.p.iter().collect(),
        CliqueStrategy::Pivot | CliqueStrategy::Degeneracy => {
            let pivot = g
                .pivot_max_intersection(&sub.p, &sub.x)
                .expect("split only branches subproblems with candidates");
            let mut b = sub.p.clone();
            b.difference_with(g.neighbors(pivot));
            b.iter().collect()
        }
    };
    let mut p = sub.p.clone();
    let mut x = sub.x.clone();
    let mut out = Vec::with_capacity(branch.len());
    for v in branch {
        let pv = p.intersection(g.neighbors(v));
        let xv = x.intersection(g.neighbors(v));
        // A child with empty P and non-empty X can never reach a maximal
        // clique; drop it here instead of shipping it to a worker.
        if !pv.is_empty() || xv.is_empty() {
            let mut r = sub.r.clone();
            r.push(v);
            out.push(CliqueSubproblem { r, p: pv, x: xv });
        }
        p.remove(v);
        x.insert(v);
    }
    out
}

/// Splits the maximal-clique enumeration of `g` into at least `target`
/// independent subproblems where possible.
///
/// Starting from the root `(∅, V, ∅)` — or, for
/// [`CliqueStrategy::Degeneracy`], from the degeneracy-ordered top level —
/// the subproblem with the largest candidate set is repeatedly replaced by
/// its branch children (the sets `(R∪{v}, P∩N(v), X∩N(v))` the sequential
/// expansion would recurse into) until the frontier reaches `target` or no
/// subproblem has more than one candidate left. Order is preserved:
/// enumerating the returned subproblems front to back with
/// [`expand_subproblem_governed`] reproduces the sequential clique order
/// exactly.
///
/// A subproblem with no candidates and no excluded vertices is a *leaf*
/// whose `R` is itself a maximal clique; [`expand_subproblem_governed`]
/// reports it. The zero-node graph yields a single such leaf (the empty
/// clique).
pub fn split_subproblems(
    g: &UndirectedGraph,
    strategy: CliqueStrategy,
    target: usize,
) -> Vec<CliqueSubproblem> {
    let n = g.node_count();
    let root = CliqueSubproblem {
        r: Vec::new(),
        p: BitSet::full(n),
        x: BitSet::new(n),
    };
    let mut frontier = if strategy == CliqueStrategy::Degeneracy && n > 0 {
        // Mirror the degeneracy-ordered outer loop of
        // `maximal_cliques_governed` so subproblem order matches it.
        branch_degeneracy(g, &root)
    } else {
        vec![root]
    };
    while frontier.len() < target {
        let Some(idx) = frontier
            .iter()
            .enumerate()
            .filter(|(_, s)| s.p.len() > 1)
            .max_by_key(|(_, s)| s.p.len())
            .map(|(i, _)| i)
        else {
            break; // nothing left worth splitting
        };
        let sub = frontier.remove(idx);
        // Sub-splits below the top level always branch with pivoting, which
        // is exactly what the sequential Degeneracy strategy does too.
        let inner = match strategy {
            CliqueStrategy::Plain => CliqueStrategy::Plain,
            _ => CliqueStrategy::Pivot,
        };
        let children = branch_once(g, inner, &sub);
        frontier.splice(idx..idx, children);
    }
    probes::GRAPH_SUBPROBLEMS_SPAWNED.add(frontier.len() as u64);
    frontier
}

/// The top-level children in degeneracy order, with the same running
/// `P`/`X` semantics as the outer loop of [`maximal_cliques_governed`].
fn branch_degeneracy(g: &UndirectedGraph, root: &CliqueSubproblem) -> Vec<CliqueSubproblem> {
    let order = g.degeneracy_ordering();
    let mut p = root.p.clone();
    let mut x = root.x.clone();
    let mut out = Vec::with_capacity(order.len());
    for v in order {
        let pv = p.intersection(g.neighbors(v));
        let xv = x.intersection(g.neighbors(v));
        if !pv.is_empty() || xv.is_empty() {
            let mut r = root.r.clone();
            r.push(v);
            out.push(CliqueSubproblem { r, p: pv, x: xv });
        }
        p.remove(v);
        x.insert(v);
    }
    out
}

/// Enumerates the maximal cliques of one subproblem, with the same budget
/// charging, visitor contract, and return convention as
/// [`maximal_cliques_governed`].
///
/// Leaf subproblems (empty `P` and `X`) report their `R` as a maximal
/// clique; subproblems whose `P` is empty but `X` is not report nothing.
pub fn expand_subproblem_governed(
    g: &UndirectedGraph,
    strategy: CliqueStrategy,
    sub: &CliqueSubproblem,
    budget: &Budget,
    visit: impl FnMut(&[usize]) -> Visit,
) -> Result<bool, ExhaustionReason> {
    expand_subproblem_governed_in(g, strategy, sub, budget, &mut ExpandArena::new(), visit)
}

/// Arena-reusing variant of [`expand_subproblem_governed`] for workers
/// that drain many subproblems: `P`/`X` recursion sets are pooled in
/// `arena` across calls. Semantics are identical.
pub fn expand_subproblem_governed_in(
    g: &UndirectedGraph,
    strategy: CliqueStrategy,
    sub: &CliqueSubproblem,
    budget: &Budget,
    arena: &mut ExpandArena,
    mut visit: impl FnMut(&[usize]) -> Visit,
) -> Result<bool, ExhaustionReason> {
    let _bk_span = probes::GRAPH_COMPONENT_BK_NS.span();
    let mut r = sub.r.clone();
    let mut p = arena.take(sub.p.capacity());
    p.copy_from(&sub.p);
    let mut x = arena.take(sub.x.capacity());
    x.copy_from(&sub.x);
    let result = match strategy {
        CliqueStrategy::Plain => expand_plain(g, &mut r, &mut p, &mut x, arena, budget, &mut visit),
        // Below the top level Degeneracy branches with pivoting, so both
        // strategies expand identically here.
        CliqueStrategy::Pivot | CliqueStrategy::Degeneracy => {
            expand_pivot(g, &mut r, &mut p, &mut x, arena, budget, &mut visit)
        }
    };
    arena.put(p);
    arena.put(x);
    arena.flush_words();
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    const ALL: [CliqueStrategy; 3] = [
        CliqueStrategy::Plain,
        CliqueStrategy::Pivot,
        CliqueStrategy::Degeneracy,
    ];

    fn sorted(mut cs: Vec<Vec<usize>>) -> Vec<Vec<usize>> {
        cs.sort();
        cs
    }

    #[test]
    fn empty_graph_has_the_empty_clique() {
        let g = UndirectedGraph::new(0);
        for s in ALL {
            assert_eq!(
                collect_maximal_cliques(&g, s),
                vec![Vec::<usize>::new()],
                "{s:?}"
            );
        }
    }

    #[test]
    fn isolated_nodes_are_singleton_cliques() {
        let g = UndirectedGraph::new(3);
        for s in ALL {
            assert_eq!(
                sorted(collect_maximal_cliques(&g, s)),
                vec![vec![0], vec![1], vec![2]],
                "{s:?}"
            );
        }
    }

    #[test]
    fn triangle_plus_pendant() {
        // 0-1-2 triangle, 3 attached to 2.
        let mut g = UndirectedGraph::new(4);
        for (u, v) in [(0, 1), (0, 2), (1, 2), (2, 3)] {
            g.add_edge(u, v);
        }
        for s in ALL {
            assert_eq!(
                sorted(collect_maximal_cliques(&g, s)),
                vec![vec![0, 1, 2], vec![2, 3]],
                "{s:?}"
            );
        }
    }

    #[test]
    fn complete_graph_single_clique() {
        let mut g = UndirectedGraph::new(6);
        for u in 0..6 {
            for v in u + 1..6 {
                g.add_edge(u, v);
            }
        }
        for s in ALL {
            assert_eq!(
                collect_maximal_cliques(&g, s),
                vec![vec![0, 1, 2, 3, 4, 5]],
                "{s:?}"
            );
        }
    }

    /// Moon–Moser graphs K_{3,3,...,3} have the maximum possible number of
    /// maximal cliques: 3^(n/3).
    fn moon_moser(groups: usize) -> UndirectedGraph {
        let n = groups * 3;
        let mut g = UndirectedGraph::new(n);
        for u in 0..n {
            for v in u + 1..n {
                if u / 3 != v / 3 {
                    g.add_edge(u, v);
                }
            }
        }
        g
    }

    #[test]
    fn moon_moser_counts() {
        for groups in 1..=5 {
            let g = moon_moser(groups);
            let want = 3usize.pow(groups as u32);
            for s in ALL {
                assert_eq!(count_maximal_cliques(&g, s), want, "groups={groups} {s:?}");
            }
        }
    }

    #[test]
    fn early_stop_is_honoured() {
        let g = moon_moser(4); // 81 cliques
        let mut seen = 0;
        let completed = maximal_cliques(&g, CliqueStrategy::Pivot, |_| {
            seen += 1;
            if seen == 5 {
                Visit::Stop
            } else {
                Visit::Continue
            }
        });
        assert!(!completed);
        assert_eq!(seen, 5);
    }

    #[test]
    fn strategies_agree_on_running_example_shape() {
        // GfTd of the paper's Figure 3: nodes T1..T5 (as 0..4); T5 conflicts
        // with T1 only.
        let mut g = UndirectedGraph::new(5);
        for (u, v) in [
            (0, 1),
            (0, 2),
            (0, 3),
            (1, 2),
            (1, 3),
            (2, 3),
            (1, 4),
            (2, 4),
            (3, 4),
        ] {
            g.add_edge(u, v);
        }
        for s in ALL {
            assert_eq!(
                sorted(collect_maximal_cliques(&g, s)),
                vec![vec![0, 1, 2, 3], vec![1, 2, 3, 4]],
                "{s:?}"
            );
        }
    }

    #[test]
    fn clique_budget_stops_enumeration() {
        use bcdb_governor::BudgetSpec;
        let g = moon_moser(4); // 81 cliques
        for s in ALL {
            let budget = BudgetSpec {
                max_cliques: Some(5),
                ..BudgetSpec::UNLIMITED
            }
            .start();
            let mut seen = 0usize;
            let result = maximal_cliques_governed(&g, s, &budget, |c| {
                assert!(g.is_clique(c), "budgeted enumeration emitted non-clique");
                seen += 1;
                Visit::Continue
            });
            assert_eq!(result, Err(ExhaustionReason::CliqueLimit(5)), "{s:?}");
            assert_eq!(seen, 5, "{s:?}: cliques before exhaustion are reported");
        }
    }

    #[test]
    fn cancelled_budget_stops_before_first_clique() {
        use bcdb_governor::BudgetSpec;
        let g = moon_moser(3);
        let budget = BudgetSpec::UNLIMITED.start();
        budget.cancel();
        let result = maximal_cliques_governed(&g, CliqueStrategy::Pivot, &budget, |_| {
            panic!("no clique should be visited after cancellation")
        });
        assert_eq!(result, Err(ExhaustionReason::Cancelled));
    }

    #[test]
    fn governed_with_unlimited_budget_matches_ungoverned() {
        use bcdb_governor::Budget;
        let g = moon_moser(3);
        let budget = Budget::unlimited();
        let mut governed = Vec::new();
        let completed = maximal_cliques_governed(&g, CliqueStrategy::Pivot, &budget, |c| {
            governed.push(c.to_vec());
            Visit::Continue
        })
        .unwrap();
        assert!(completed);
        assert_eq!(
            sorted(governed),
            sorted(collect_maximal_cliques(&g, CliqueStrategy::Pivot))
        );
    }

    #[test]
    fn all_reported_cliques_are_maximal_cliques() {
        // Random-ish fixed graph; verify the defining property directly.
        let mut g = UndirectedGraph::new(10);
        let edges = [
            (0, 1),
            (0, 2),
            (1, 2),
            (2, 3),
            (3, 4),
            (4, 5),
            (5, 6),
            (6, 7),
            (7, 8),
            (8, 9),
            (9, 0),
            (1, 5),
            (2, 6),
            (3, 7),
            (4, 8),
        ];
        for (u, v) in edges {
            g.add_edge(u, v);
        }
        let cliques = collect_maximal_cliques(&g, CliqueStrategy::Pivot);
        for c in &cliques {
            assert!(g.is_clique(c), "{c:?} not a clique");
            for w in 0..10 {
                if !c.contains(&w) {
                    let extended: Vec<usize> = c.iter().copied().chain([w]).collect();
                    assert!(!g.is_clique(&extended), "{c:?} extensible by {w}");
                }
            }
        }
        // And the three strategies agree.
        let a = sorted(collect_maximal_cliques(&g, CliqueStrategy::Plain));
        let b = sorted(collect_maximal_cliques(&g, CliqueStrategy::Pivot));
        let c = sorted(collect_maximal_cliques(&g, CliqueStrategy::Degeneracy));
        assert_eq!(a, b);
        assert_eq!(b, c);
    }

    /// Enumerates `g` via split_subproblems + expand_subproblem_governed,
    /// concatenating in frontier order.
    fn collect_via_subproblems(
        g: &UndirectedGraph,
        strategy: CliqueStrategy,
        target: usize,
    ) -> Vec<Vec<usize>> {
        let subs = split_subproblems(g, strategy, target);
        let mut out = Vec::new();
        for sub in &subs {
            expand_subproblem_governed(g, strategy, sub, &UNGOVERNED, |c| {
                out.push(c.to_vec());
                Visit::Continue
            })
            .unwrap();
        }
        out
    }

    fn test_graphs() -> Vec<UndirectedGraph> {
        let mut graphs = vec![
            UndirectedGraph::new(0),
            UndirectedGraph::new(3),
            moon_moser(1),
            moon_moser(3),
            moon_moser(4),
        ];
        let mut complete = UndirectedGraph::new(6);
        for u in 0..6 {
            for v in u + 1..6 {
                complete.add_edge(u, v);
            }
        }
        graphs.push(complete);
        let mut ring = UndirectedGraph::new(10);
        for (u, v) in [
            (0, 1),
            (0, 2),
            (1, 2),
            (2, 3),
            (3, 4),
            (4, 5),
            (5, 6),
            (6, 7),
            (7, 8),
            (8, 9),
            (9, 0),
            (1, 5),
            (2, 6),
            (3, 7),
            (4, 8),
        ] {
            ring.add_edge(u, v);
        }
        graphs.push(ring);
        graphs
    }

    /// The ordered concatenation of subproblem enumerations must equal the
    /// sequential enumeration exactly (same cliques, same order), for every
    /// strategy and a sweep of split targets.
    #[test]
    fn subproblem_union_preserves_sequential_order() {
        for (gi, g) in test_graphs().iter().enumerate() {
            for s in ALL {
                let mut sequential = Vec::new();
                maximal_cliques(g, s, |c| {
                    sequential.push(c.to_vec());
                    Visit::Continue
                });
                for target in [1, 2, 4, 8, 64] {
                    // Degeneracy always expands its top level, so skip the
                    // degenerate target only where order is undefined.
                    let got = collect_via_subproblems(g, s, target);
                    assert_eq!(
                        got, sequential,
                        "graph {gi}, {s:?}, target {target}: subproblem union diverges"
                    );
                }
            }
        }
    }

    #[test]
    fn split_reaches_target_on_moon_moser() {
        let g = moon_moser(5); // 243 cliques: plenty to split
        for s in ALL {
            let subs = split_subproblems(&g, s, 16);
            assert!(
                subs.len() >= 16,
                "{s:?}: wanted ≥16 subproblems, got {}",
                subs.len()
            );
        }
    }

    #[test]
    fn zero_node_graph_splits_to_single_leaf() {
        let g = UndirectedGraph::new(0);
        for s in ALL {
            let subs = split_subproblems(&g, s, 8);
            assert_eq!(subs.len(), 1, "{s:?}");
            assert_eq!(subs[0].partial(), &[] as &[usize]);
            assert_eq!(subs[0].candidate_count(), 0);
            let got = collect_via_subproblems(&g, s, 8);
            assert_eq!(got, vec![Vec::<usize>::new()], "{s:?}");
        }
    }

    /// A shared budget across subproblems charges exactly as many cliques
    /// as the sequential run, and exhausts at the same count.
    #[test]
    fn shared_budget_across_subproblems_matches_sequential_charging() {
        use bcdb_governor::BudgetSpec;
        let g = moon_moser(4); // 81 cliques
        let subs = split_subproblems(&g, CliqueStrategy::Pivot, 8);
        let budget = BudgetSpec {
            max_cliques: Some(10),
            ..BudgetSpec::UNLIMITED
        }
        .start();
        let mut seen = 0usize;
        let mut exhausted = None;
        for sub in &subs {
            match expand_subproblem_governed(&g, CliqueStrategy::Pivot, sub, &budget, |c| {
                assert!(g.is_clique(c));
                seen += 1;
                Visit::Continue
            }) {
                Ok(_) => {}
                Err(reason) => {
                    exhausted = Some(reason);
                    break;
                }
            }
        }
        assert_eq!(exhausted, Some(ExhaustionReason::CliqueLimit(10)));
        assert_eq!(seen, 10);
    }

    #[test]
    fn subproblem_early_stop_is_honoured() {
        let g = moon_moser(4);
        let subs = split_subproblems(&g, CliqueStrategy::Pivot, 4);
        let sub = subs
            .iter()
            .max_by_key(|s| s.candidate_count())
            .expect("non-empty frontier");
        let mut seen = 0usize;
        let completed = expand_subproblem_governed(&g, CliqueStrategy::Pivot, sub, &UNGOVERNED, |_| {
            seen += 1;
            if seen == 2 {
                Visit::Stop
            } else {
                Visit::Continue
            }
        })
        .unwrap();
        assert!(!completed);
        assert_eq!(seen, 2);
    }
}
