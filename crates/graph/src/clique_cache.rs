//! Component-keyed cache of complete maximal-clique enumerations.
//!
//! A batch of denial constraints checked against one chain snapshot keeps
//! re-deriving the same conflict structure: the refined `Gq,ind` partitions
//! differ per constraint, but the *members* of a component determine its
//! induced `GfTd` subgraph — and therefore its maximal cliques — exactly.
//! The cache maps a component's (sorted) global member list to the full
//! clique list of its induced subgraph, expressed in **local** indices of
//! [`UndirectedGraph::induced_subgraph`](crate::UndirectedGraph::induced_subgraph)
//! (whose mapping is the member list itself, in order), so a replay through
//! the same mapping reproduces the original enumeration verbatim.
//!
//! Soundness rule: an entry may only be inserted after a *complete*
//! enumeration of the component — a run cut short by a witness, a budget,
//! or a panic must not populate the cache, because a later replay would
//! silently miss cliques. Callers enforce this; the cache itself only
//! stores what it is given.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A complete maximal-clique enumeration in local induced-subgraph
/// indices, shared between the cache and its consumers.
pub type CachedCliques = Arc<Vec<Vec<usize>>>;

/// A concurrency-safe map from component member lists to the complete
/// maximal-clique enumeration of the component's induced subgraph.
///
/// Hit/miss counters are monotone and race-free (relaxed atomics): the
/// reuse ratio they imply is exact for a quiesced batch.
#[derive(Debug, Default)]
pub struct CliqueCache {
    inner: Mutex<HashMap<Vec<usize>, CachedCliques>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl CliqueCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Looks up a component's cached clique list, counting a hit or miss.
    ///
    /// The returned cliques are in local indices of the component's induced
    /// subgraph; replay them through the component member list as the
    /// local→global mapping.
    pub fn lookup(&self, component: &[usize]) -> Option<Arc<Vec<Vec<usize>>>> {
        let found = self.inner.lock().unwrap().get(component).cloned();
        match &found {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    /// Peeks without touching the hit/miss counters (used when deciding how
    /// to shape work items before the charged lookup happens).
    pub fn peek(&self, component: &[usize]) -> Option<Arc<Vec<Vec<usize>>>> {
        self.inner.lock().unwrap().get(component).cloned()
    }

    /// Inserts a component's **complete** clique enumeration.
    ///
    /// The caller must guarantee the list covers every maximal clique of
    /// the induced subgraph in enumeration order; partial lists are unsound
    /// to insert (see the module docs).
    pub fn insert(&self, component: Vec<usize>, cliques: Vec<Vec<usize>>) {
        self.inner
            .lock()
            .unwrap()
            .entry(component)
            .or_insert_with(|| Arc::new(cliques));
    }

    /// Number of lookups answered from the cache.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Number of lookups that required a fresh enumeration.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Number of cached components.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().unwrap().is_empty()
    }

    /// Drops every entry and zeroes the counters.
    pub fn clear(&self) {
        self.inner.lock().unwrap().clear();
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_counts_hits_and_misses() {
        let cache = CliqueCache::new();
        assert!(cache.lookup(&[0, 2, 5]).is_none());
        cache.insert(vec![0, 2, 5], vec![vec![0, 1], vec![2]]);
        let got = cache.lookup(&[0, 2, 5]).expect("cached");
        assert_eq!(*got, vec![vec![0, 1], vec![2]]);
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn peek_does_not_charge_counters() {
        let cache = CliqueCache::new();
        cache.insert(vec![1, 3], vec![vec![0, 1]]);
        assert!(cache.peek(&[1, 3]).is_some());
        assert!(cache.peek(&[9]).is_none());
        assert_eq!((cache.hits(), cache.misses()), (0, 0));
    }

    #[test]
    fn first_insert_wins() {
        let cache = CliqueCache::new();
        cache.insert(vec![4, 7], vec![vec![0]]);
        cache.insert(vec![4, 7], vec![vec![0, 1]]);
        assert_eq!(*cache.peek(&[4, 7]).unwrap(), vec![vec![0]]);
    }

    #[test]
    fn clear_resets_everything() {
        let cache = CliqueCache::new();
        cache.insert(vec![0], vec![]);
        cache.lookup(&[0]);
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!((cache.hits(), cache.misses()), (0, 0));
    }
}
