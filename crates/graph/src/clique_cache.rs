//! Component-keyed cache of complete maximal-clique enumerations.
//!
//! A batch of denial constraints checked against one chain snapshot keeps
//! re-deriving the same conflict structure: the refined `Gq,ind` partitions
//! differ per constraint, but the *members* of a component determine its
//! induced `GfTd` subgraph — and therefore its maximal cliques — exactly.
//! The cache maps a component's (sorted) global member list to the full
//! clique list of its induced subgraph, expressed in **local** indices of
//! [`UndirectedGraph::induced_subgraph`](crate::UndirectedGraph::induced_subgraph)
//! (whose mapping is the member list itself, in order), so a replay through
//! the same mapping reproduces the original enumeration verbatim.
//!
//! Soundness rule: an entry may only be inserted after a *complete*
//! enumeration of the component — a run cut short by a witness, a budget,
//! or a panic must not populate the cache, because a later replay would
//! silently miss cliques. Callers enforce this; the cache itself only
//! stores what it is given.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A complete maximal-clique enumeration in local induced-subgraph
/// indices, shared between the cache and its consumers.
pub type CachedCliques = Arc<Vec<Vec<usize>>>;

/// A concurrency-safe map from component member lists to the complete
/// maximal-clique enumeration of the component's induced subgraph.
///
/// Hit/miss counters are monotone and race-free (relaxed atomics): the
/// reuse ratio they imply is exact for a quiesced batch.
#[derive(Debug, Default)]
pub struct CliqueCache {
    inner: Mutex<HashMap<Vec<usize>, CachedCliques>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

/// Outcome of a charged cache probe from [`CliqueCache::entry`].
///
/// A `Hit` carries the cached enumeration; a `Miss` carries a vacant slot
/// that can be filled with [`VacantCliqueEntry::insert_complete`] once the
/// caller has produced a *complete* enumeration, or simply dropped when the
/// enumeration was cut short. Either way the hit/miss counter was charged
/// exactly once, at probe time — the race-prone charged-`lookup` /
/// separate-`insert` two-step is no longer needed.
pub enum CliqueEntry<'a> {
    /// The component was cached; replay the carried cliques.
    Hit(CachedCliques),
    /// The component was not cached; fill the slot after a complete run.
    Miss(VacantCliqueEntry<'a>),
}

impl CliqueEntry<'_> {
    /// The cached cliques on a hit, `None` on a miss (without consuming the
    /// vacant slot's right to insert).
    pub fn cached(&self) -> Option<CachedCliques> {
        match self {
            CliqueEntry::Hit(c) => Some(Arc::clone(c)),
            CliqueEntry::Miss(_) => None,
        }
    }
}

/// A vacant slot returned by a [`CliqueCache::entry`] miss.
///
/// Dropping it without inserting is the correct way to abandon an
/// enumeration that ended early (witness, budget, panic) — the miss was
/// already counted and the cache stays free of partial lists.
pub struct VacantCliqueEntry<'a> {
    cache: &'a CliqueCache,
    key: Vec<usize>,
}

impl VacantCliqueEntry<'_> {
    /// Fills the slot with a **complete** enumeration (first insert wins
    /// under a race; the stored list is returned either way).
    ///
    /// The caller must guarantee the list covers every maximal clique of
    /// the induced subgraph in enumeration order; partial lists are unsound
    /// to insert (see the module docs).
    pub fn insert_complete(self, cliques: Vec<Vec<usize>>) -> CachedCliques {
        self.cache
            .inner
            .lock()
            .unwrap()
            .entry(self.key)
            .or_insert_with(|| Arc::new(cliques))
            .clone()
    }
}

impl CliqueCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Probes a component, charging exactly one hit or miss, and returns
    /// either the cached enumeration or a vacant slot to fill.
    ///
    /// Cached cliques are in local indices of the component's induced
    /// subgraph; replay them through the component member list as the
    /// local→global mapping.
    pub fn entry(&self, component: &[usize]) -> CliqueEntry<'_> {
        match self.inner.lock().unwrap().get(component).cloned() {
            Some(c) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                CliqueEntry::Hit(c)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                CliqueEntry::Miss(VacantCliqueEntry {
                    cache: self,
                    key: component.to_vec(),
                })
            }
        }
    }

    /// Charged probe-or-compute: on a miss, `enumerate` runs and its result
    /// (when `Some`, i.e. the enumeration ran to completion) is stored and
    /// returned. Returning `None` from `enumerate` leaves the cache
    /// untouched beyond the counted miss.
    pub fn get_or_insert_with(
        &self,
        component: &[usize],
        enumerate: impl FnOnce() -> Option<Vec<Vec<usize>>>,
    ) -> Option<CachedCliques> {
        match self.entry(component) {
            CliqueEntry::Hit(c) => Some(c),
            CliqueEntry::Miss(vacant) => enumerate().map(|cl| vacant.insert_complete(cl)),
        }
    }

    /// Peeks without touching the hit/miss counters (used when deciding how
    /// to shape work items before the charged probe happens).
    pub fn peek(&self, component: &[usize]) -> Option<Arc<Vec<Vec<usize>>>> {
        self.inner.lock().unwrap().get(component).cloned()
    }

    /// Publishes a **complete** enumeration without charging the counters
    /// (first insert wins). For deferred-harvest paths where the charged
    /// probe already happened through [`CliqueCache::entry`] earlier.
    pub fn publish_complete(&self, component: Vec<usize>, cliques: Vec<Vec<usize>>) {
        self.inner
            .lock()
            .unwrap()
            .entry(component)
            .or_insert_with(|| Arc::new(cliques));
    }

    /// Looks up a component's cached clique list, counting a hit or miss.
    #[deprecated(note = "use `entry` or `get_or_insert_with`, which charge \
                         hit/miss and fill the slot atomically")]
    pub fn lookup(&self, component: &[usize]) -> Option<Arc<Vec<Vec<usize>>>> {
        match self.entry(component) {
            CliqueEntry::Hit(c) => Some(c),
            CliqueEntry::Miss(_) => None,
        }
    }

    /// Inserts a component's **complete** clique enumeration.
    #[deprecated(note = "use `entry`/`get_or_insert_with` (charged) or \
                         `publish_complete` (uncharged)")]
    pub fn insert(&self, component: Vec<usize>, cliques: Vec<Vec<usize>>) {
        self.publish_complete(component, cliques);
    }

    /// Drops every entry whose member list intersects `members` (both the
    /// entry keys and `members` must be sorted ascending). Returns the
    /// number of entries dropped.
    ///
    /// This is the targeted invalidation primitive for base-relation
    /// deltas: a viability flip rewires a transaction's conflict edges
    /// without changing any component member list, so every cached
    /// enumeration *containing* that transaction is stale while the rest
    /// remain exact.
    pub fn invalidate_members(&self, members: &[usize]) -> usize {
        if members.is_empty() {
            return 0;
        }
        let mut inner = self.inner.lock().unwrap();
        let before = inner.len();
        inner.retain(|key, _| sorted_disjoint(key, members));
        before - inner.len()
    }

    /// Applies the index shift of a pending-set removal: entries containing
    /// a removed index are dropped; every surviving key index `i` becomes
    /// `i - #{removed < i}` (`removed` must be sorted ascending). Returns
    /// the number of entries dropped.
    ///
    /// Sound because cached cliques are stored in *local* induced-subgraph
    /// indices — positions within the member list — which a pure renumbering
    /// of the members does not disturb.
    pub fn remap_removed(&self, removed: &[usize]) -> usize {
        if removed.is_empty() {
            return 0;
        }
        let mut inner = self.inner.lock().unwrap();
        let before = inner.len();
        let remapped: HashMap<Vec<usize>, CachedCliques> = inner
            .drain()
            .filter(|(key, _)| sorted_disjoint(key, removed))
            .map(|(key, v)| {
                let key = key
                    .into_iter()
                    .map(|i| i - removed.partition_point(|&r| r < i))
                    .collect();
                (key, v)
            })
            .collect();
        let after = remapped.len();
        *inner = remapped;
        before - after
    }

    /// Applies the index shift of a positional pending insert: every key
    /// index `>= at` moves up by one. No entry is dropped — the new
    /// transaction is not a member of any cached component, and survivors
    /// keep their induced subgraphs verbatim.
    pub fn remap_inserted_at(&self, at: usize) {
        let mut inner = self.inner.lock().unwrap();
        let remapped: HashMap<Vec<usize>, CachedCliques> = inner
            .drain()
            .map(|(key, v)| {
                let key = key
                    .into_iter()
                    .map(|i| if i >= at { i + 1 } else { i })
                    .collect();
                (key, v)
            })
            .collect();
        *inner = remapped;
    }

    /// Drops every entry but — unlike [`CliqueCache::clear`] — keeps the
    /// hit/miss counters, so long-lived shared caches report cumulative
    /// ratios across invalidation storms.
    pub fn purge(&self) {
        self.inner.lock().unwrap().clear();
    }

    /// Number of lookups answered from the cache.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Number of lookups that required a fresh enumeration.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Number of cached components.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().unwrap().is_empty()
    }

    /// Drops every entry and zeroes the counters.
    pub fn clear(&self) {
        self.inner.lock().unwrap().clear();
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
    }
}

/// Whether two ascending-sorted index slices share no element (merge scan).
fn sorted_disjoint(a: &[usize], b: &[usize]) -> bool {
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => return false,
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entry_counts_hits_and_misses_and_fills() {
        let cache = CliqueCache::new();
        match cache.entry(&[0, 2, 5]) {
            CliqueEntry::Hit(_) => panic!("empty cache cannot hit"),
            CliqueEntry::Miss(vacant) => {
                let stored = vacant.insert_complete(vec![vec![0, 1], vec![2]]);
                assert_eq!(*stored, vec![vec![0, 1], vec![2]]);
            }
        }
        let got = cache.entry(&[0, 2, 5]).cached().expect("cached");
        assert_eq!(*got, vec![vec![0, 1], vec![2]]);
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn abandoned_vacant_charges_miss_but_stores_nothing() {
        let cache = CliqueCache::new();
        drop(cache.entry(&[1, 2]));
        assert!(cache.peek(&[1, 2]).is_none());
        assert_eq!((cache.hits(), cache.misses()), (0, 1));
    }

    #[test]
    fn get_or_insert_with_skips_store_on_incomplete_run() {
        let cache = CliqueCache::new();
        assert!(cache.get_or_insert_with(&[3, 4], || None).is_none());
        assert!(cache.is_empty());
        let got = cache
            .get_or_insert_with(&[3, 4], || Some(vec![vec![0]]))
            .expect("stored");
        assert_eq!(*got, vec![vec![0]]);
        let again = cache
            .get_or_insert_with(&[3, 4], || panic!("must not re-enumerate"))
            .expect("hit");
        assert_eq!(*again, vec![vec![0]]);
        assert_eq!((cache.hits(), cache.misses()), (1, 2));
    }

    #[test]
    fn peek_does_not_charge_counters() {
        let cache = CliqueCache::new();
        cache.publish_complete(vec![1, 3], vec![vec![0, 1]]);
        assert!(cache.peek(&[1, 3]).is_some());
        assert!(cache.peek(&[9]).is_none());
        assert_eq!((cache.hits(), cache.misses()), (0, 0));
    }

    #[test]
    fn first_publish_wins() {
        let cache = CliqueCache::new();
        cache.publish_complete(vec![4, 7], vec![vec![0]]);
        cache.publish_complete(vec![4, 7], vec![vec![0, 1]]);
        assert_eq!(*cache.peek(&[4, 7]).unwrap(), vec![vec![0]]);
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_two_step_still_routes_through_entry() {
        let cache = CliqueCache::new();
        assert!(cache.lookup(&[0, 2]).is_none());
        cache.insert(vec![0, 2], vec![vec![0]]);
        assert_eq!(*cache.lookup(&[0, 2]).unwrap(), vec![vec![0]]);
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
    }

    #[test]
    fn clear_resets_everything() {
        let cache = CliqueCache::new();
        cache.publish_complete(vec![0], vec![]);
        cache.entry(&[0]);
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!((cache.hits(), cache.misses()), (0, 0));
    }

    #[test]
    fn purge_drops_entries_but_keeps_counters() {
        let cache = CliqueCache::new();
        cache.get_or_insert_with(&[0, 1], || Some(vec![vec![0, 1]]));
        cache.entry(&[0, 1]);
        cache.purge();
        assert!(cache.is_empty());
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
    }

    #[test]
    fn invalidate_members_drops_only_intersecting_entries() {
        let cache = CliqueCache::new();
        cache.publish_complete(vec![0, 2, 5], vec![vec![0, 1, 2]]);
        cache.publish_complete(vec![1, 3], vec![vec![0, 1]]);
        cache.publish_complete(vec![4], vec![vec![0]]);
        assert_eq!(cache.invalidate_members(&[2, 4]), 2);
        assert!(cache.peek(&[0, 2, 5]).is_none());
        assert!(cache.peek(&[4]).is_none());
        assert!(cache.peek(&[1, 3]).is_some());
    }

    #[test]
    fn remap_removed_drops_and_renumbers() {
        let cache = CliqueCache::new();
        cache.publish_complete(vec![0, 3, 6], vec![vec![0, 2]]);
        cache.publish_complete(vec![2, 4], vec![vec![0, 1]]);
        // Removing pending indices 1 and 4: [2,4] dies, [0,3,6] survives as
        // [0,2,4] with its local-index cliques untouched.
        assert_eq!(cache.remap_removed(&[1, 4]), 1);
        assert!(cache.peek(&[2, 4]).is_none());
        assert!(cache.peek(&[0, 3, 6]).is_none());
        assert_eq!(*cache.peek(&[0, 2, 4]).unwrap(), vec![vec![0, 2]]);
    }

    #[test]
    fn remap_inserted_at_shifts_keys_up() {
        let cache = CliqueCache::new();
        cache.publish_complete(vec![0, 2], vec![vec![0, 1]]);
        cache.remap_inserted_at(1);
        assert!(cache.peek(&[0, 2]).is_none());
        assert_eq!(*cache.peek(&[0, 3]).unwrap(), vec![vec![0, 1]]);
        cache.remap_inserted_at(0);
        assert_eq!(*cache.peek(&[1, 4]).unwrap(), vec![vec![0, 1]]);
    }
}
