//! A fixed-capacity bitset tuned for clique enumeration.
//!
//! Clique enumeration spends nearly all of its time intersecting candidate
//! sets with adjacency rows, so the set representation must support word-wise
//! `AND`/`AND-NOT` and fast population counts. This is a small, dependency-free
//! implementation specialised for those operations.

/// A fixed-capacity set of `usize` elements in `0..capacity`, stored as a
/// packed array of 64-bit words.
///
/// Unlike `std::collections::HashSet`, intersection and difference are
/// word-parallel, and iteration is in increasing order.
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct BitSet {
    words: Vec<u64>,
    capacity: usize,
}

const BITS: usize = 64;

#[inline]
fn word_index(bit: usize) -> (usize, u64) {
    (bit / BITS, 1u64 << (bit % BITS))
}

impl BitSet {
    /// Creates an empty set able to hold elements in `0..capacity`.
    pub fn new(capacity: usize) -> Self {
        BitSet {
            words: vec![0; capacity.div_ceil(BITS)],
            capacity,
        }
    }

    /// Creates a set containing every element in `0..capacity`.
    pub fn full(capacity: usize) -> Self {
        let mut s = Self::new(capacity);
        for (i, w) in s.words.iter_mut().enumerate() {
            let lo = i * BITS;
            if lo + BITS <= capacity {
                *w = !0;
            } else if lo < capacity {
                *w = (1u64 << (capacity - lo)) - 1;
            }
        }
        s
    }

    /// Creates a set from an iterator of elements; capacity must bound them all.
    pub fn from_iter(capacity: usize, iter: impl IntoIterator<Item = usize>) -> Self {
        let mut s = Self::new(capacity);
        for x in iter {
            s.insert(x);
        }
        s
    }

    /// Number of elements this set can hold (the universe size).
    #[inline]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Inserts `bit`. Panics in debug builds if out of range.
    #[inline]
    pub fn insert(&mut self, bit: usize) {
        debug_assert!(
            bit < self.capacity,
            "bit {bit} out of range {}",
            self.capacity
        );
        let (w, m) = word_index(bit);
        self.words[w] |= m;
    }

    /// Removes `bit` if present.
    #[inline]
    pub fn remove(&mut self, bit: usize) {
        let (w, m) = word_index(bit);
        if w < self.words.len() {
            self.words[w] &= !m;
        }
    }

    /// Returns whether `bit` is in the set.
    #[inline]
    pub fn contains(&self, bit: usize) -> bool {
        let (w, m) = word_index(bit);
        w < self.words.len() && self.words[w] & m != 0
    }

    /// Grows the capacity to `new_capacity` (no-op if already that large).
    /// Existing elements are preserved.
    pub fn grow(&mut self, new_capacity: usize) {
        if new_capacity > self.capacity {
            self.capacity = new_capacity;
            self.words.resize(new_capacity.div_ceil(BITS), 0);
        }
    }

    /// Removes all elements.
    pub fn clear(&mut self) {
        self.words.iter_mut().for_each(|w| *w = 0);
    }

    /// Number of elements present.
    #[inline]
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether the set is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// In-place intersection: `self &= other`.
    #[inline]
    pub fn intersect_with(&mut self, other: &BitSet) {
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= *b;
        }
        // If other is shorter (smaller capacity), the tail must vanish.
        for a in self.words.iter_mut().skip(other.words.len()) {
            *a = 0;
        }
    }

    /// In-place union: `self |= other`. The capacities must agree.
    #[inline]
    pub fn union_with(&mut self, other: &BitSet) {
        debug_assert!(other.words.len() <= self.words.len());
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= *b;
        }
    }

    /// In-place difference: `self &= !other`.
    #[inline]
    pub fn difference_with(&mut self, other: &BitSet) {
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= !*b;
        }
    }

    /// Returns a new set `self & other`.
    pub fn intersection(&self, other: &BitSet) -> BitSet {
        let mut out = self.clone();
        out.intersect_with(other);
        out
    }

    /// Size of `self & other` without allocating (fused AND+popcount).
    #[inline]
    pub fn intersection_len(&self, other: &BitSet) -> usize {
        kernels::and_count(&self.words, &other.words)
    }

    /// Whether `self & other` is empty, without allocating.
    #[inline]
    pub fn is_disjoint(&self, other: &BitSet) -> bool {
        self.words.iter().zip(&other.words).all(|(a, b)| a & b == 0)
    }

    /// Whether every element of `self` is in `other`.
    pub fn is_subset(&self, other: &BitSet) -> bool {
        self.words
            .iter()
            .zip(other.words.iter().chain(std::iter::repeat(&0)))
            .all(|(a, b)| a & !b == 0)
    }

    /// The smallest element, if any.
    pub fn first(&self) -> Option<usize> {
        for (i, &w) in self.words.iter().enumerate() {
            if w != 0 {
                return Some(i * BITS + w.trailing_zeros() as usize);
            }
        }
        None
    }

    /// Iterates elements in increasing order.
    pub fn iter(&self) -> BitSetIter<'_> {
        BitSetIter {
            words: &self.words,
            word_idx: 0,
            current: self.words.first().copied().unwrap_or(0),
        }
    }

    /// Collects the elements into a `Vec`.
    pub fn to_vec(&self) -> Vec<usize> {
        self.iter().collect()
    }

    /// Number of backing 64-bit words — what one kernel pass scans.
    #[inline]
    pub fn word_len(&self) -> usize {
        self.words.len()
    }

    /// Resets to an empty set of exactly `capacity`, reusing the backing
    /// allocation when it is large enough. The workhorse of
    /// [`ExpandArena`](crate::ExpandArena) pooling: a pooled set from any
    /// previous recursion depth becomes a clean set for the next one
    /// without touching the allocator.
    #[inline]
    pub fn reset(&mut self, capacity: usize) {
        self.capacity = capacity;
        self.words.clear();
        self.words.resize(capacity.div_ceil(BITS), 0);
    }

    /// Copies `other` into `self`, reusing `self`'s allocation.
    #[inline]
    pub fn copy_from(&mut self, other: &BitSet) {
        self.capacity = other.capacity;
        self.words.clear();
        self.words.extend_from_slice(&other.words);
    }

    /// Fused intersection into a reusable target: sets `out = self & other`
    /// and returns `|out|` from the same word-level AND+popcount pass.
    /// `out` is reset to `self`'s capacity first, so its previous contents
    /// and capacity are irrelevant (only its allocation is reused).
    #[inline]
    pub fn intersect_count_into(&self, other: &BitSet, out: &mut BitSet) -> usize {
        out.reset(self.capacity);
        kernels::and_count_into(&self.words, &other.words, &mut out.words)
    }

    /// Fused difference into a reusable target: sets `out = self & !other`
    /// and returns `|out|` from the same pass. `out` is reset to `self`'s
    /// capacity first; `other` is treated as zero-extended if shorter.
    #[inline]
    pub fn difference_count_into(&self, other: &BitSet, out: &mut BitSet) -> usize {
        out.reset(self.capacity);
        kernels::andnot_count_into(&self.words, &other.words, &mut out.words)
    }
}

/// Word-parallel fused kernels behind the hot [`BitSet`] operations.
///
/// Each kernel comes in two always-compiled flavours: a plain scalar loop
/// and a wide variant that processes four words per iteration through
/// independent accumulator lanes — the shape LLVM auto-vectorizes to
/// SIMD AND+POPCNT on stable Rust (no nightly `std::simd` required). The
/// `simd` cargo feature selects which flavour the un-suffixed dispatch
/// functions use; both stay available so the kernel-equivalence proptests
/// can validate them against each other regardless of the build's default.
pub mod kernels {
    /// Words per wide-loop iteration (accumulator lanes).
    const LANES: usize = 4;

    /// `|a & b|`, scalar loop. Slices may differ in length; the shorter
    /// one is treated as zero-extended.
    #[inline]
    pub fn and_count_scalar(a: &[u64], b: &[u64]) -> usize {
        a.iter()
            .zip(b)
            .map(|(x, y)| (x & y).count_ones() as usize)
            .sum()
    }

    /// `|a & b|`, four-lane wide loop.
    #[inline]
    pub fn and_count_wide(a: &[u64], b: &[u64]) -> usize {
        let n = a.len().min(b.len());
        let mut ca = a[..n].chunks_exact(LANES);
        let mut cb = b[..n].chunks_exact(LANES);
        let mut acc = [0u64; LANES];
        for (wa, wb) in ca.by_ref().zip(cb.by_ref()) {
            for l in 0..LANES {
                acc[l] += u64::from((wa[l] & wb[l]).count_ones());
            }
        }
        let mut total: u64 = acc.iter().sum();
        for (x, y) in ca.remainder().iter().zip(cb.remainder()) {
            total += u64::from((x & y).count_ones());
        }
        total as usize
    }

    /// `out = a & b` returning `|out|`, scalar loop. Any tail of `out`
    /// beyond the shorter input is zeroed.
    #[inline]
    pub fn and_count_into_scalar(a: &[u64], b: &[u64], out: &mut [u64]) -> usize {
        let n = a.len().min(b.len()).min(out.len());
        let mut total = 0usize;
        for i in 0..n {
            let w = a[i] & b[i];
            out[i] = w;
            total += w.count_ones() as usize;
        }
        out[n..].fill(0);
        total
    }

    /// `out = a & b` returning `|out|`, four-lane wide loop.
    #[inline]
    pub fn and_count_into_wide(a: &[u64], b: &[u64], out: &mut [u64]) -> usize {
        let n = a.len().min(b.len()).min(out.len());
        let mut acc = [0u64; LANES];
        let chunks = n / LANES;
        for c in 0..chunks {
            let base = c * LANES;
            for l in 0..LANES {
                let w = a[base + l] & b[base + l];
                out[base + l] = w;
                acc[l] += u64::from(w.count_ones());
            }
        }
        let mut total: u64 = acc.iter().sum();
        for i in chunks * LANES..n {
            let w = a[i] & b[i];
            out[i] = w;
            total += u64::from(w.count_ones());
        }
        out[n..].fill(0);
        total as usize
    }

    /// `out = a & !b` returning `|out|`, scalar loop. `b` is treated as
    /// zero-extended if shorter than `a`; any tail of `out` beyond `a` is
    /// zeroed.
    #[inline]
    pub fn andnot_count_into_scalar(a: &[u64], b: &[u64], out: &mut [u64]) -> usize {
        let n = a.len().min(out.len());
        let mut total = 0usize;
        for i in 0..n {
            let w = a[i] & !b.get(i).copied().unwrap_or(0);
            out[i] = w;
            total += w.count_ones() as usize;
        }
        out[n..].fill(0);
        total
    }

    /// `out = a & !b` returning `|out|`, four-lane wide loop.
    #[inline]
    pub fn andnot_count_into_wide(a: &[u64], b: &[u64], out: &mut [u64]) -> usize {
        let n = a.len().min(out.len());
        let m = b.len().min(n);
        let mut acc = [0u64; LANES];
        let chunks = m / LANES;
        for c in 0..chunks {
            let base = c * LANES;
            for l in 0..LANES {
                let w = a[base + l] & !b[base + l];
                out[base + l] = w;
                acc[l] += u64::from(w.count_ones());
            }
        }
        let mut total: u64 = acc.iter().sum();
        for i in chunks * LANES..m {
            let w = a[i] & !b[i];
            out[i] = w;
            total += u64::from(w.count_ones());
        }
        // b exhausted: the rest of a survives unmasked.
        for i in m..n {
            out[i] = a[i];
            total += u64::from(a[i].count_ones());
        }
        out[n..].fill(0);
        total as usize
    }

    /// `|a & b|` with the build's selected flavour.
    #[cfg(feature = "simd")]
    #[inline]
    pub fn and_count(a: &[u64], b: &[u64]) -> usize {
        and_count_wide(a, b)
    }

    /// `|a & b|` with the build's selected flavour.
    #[cfg(not(feature = "simd"))]
    #[inline]
    pub fn and_count(a: &[u64], b: &[u64]) -> usize {
        and_count_scalar(a, b)
    }

    /// `out = a & b` returning `|out|` with the build's selected flavour.
    #[cfg(feature = "simd")]
    #[inline]
    pub fn and_count_into(a: &[u64], b: &[u64], out: &mut [u64]) -> usize {
        and_count_into_wide(a, b, out)
    }

    /// `out = a & b` returning `|out|` with the build's selected flavour.
    #[cfg(not(feature = "simd"))]
    #[inline]
    pub fn and_count_into(a: &[u64], b: &[u64], out: &mut [u64]) -> usize {
        and_count_into_scalar(a, b, out)
    }

    /// `out = a & !b` returning `|out|` with the build's selected flavour.
    #[cfg(feature = "simd")]
    #[inline]
    pub fn andnot_count_into(a: &[u64], b: &[u64], out: &mut [u64]) -> usize {
        andnot_count_into_wide(a, b, out)
    }

    /// `out = a & !b` returning `|out|` with the build's selected flavour.
    #[cfg(not(feature = "simd"))]
    #[inline]
    pub fn andnot_count_into(a: &[u64], b: &[u64], out: &mut [u64]) -> usize {
        andnot_count_into_scalar(a, b, out)
    }
}

impl std::fmt::Debug for BitSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

impl FromIterator<usize> for BitSet {
    /// Builds a set whose capacity is one past the largest element.
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        let items: Vec<usize> = iter.into_iter().collect();
        let cap = items.iter().max().map_or(0, |m| m + 1);
        BitSet::from_iter(cap, items)
    }
}

/// Iterator over the elements of a [`BitSet`], in increasing order.
pub struct BitSetIter<'a> {
    words: &'a [u64],
    word_idx: usize,
    current: u64,
}

impl Iterator for BitSetIter<'_> {
    type Item = usize;

    #[inline]
    fn next(&mut self) -> Option<usize> {
        while self.current == 0 {
            self.word_idx += 1;
            if self.word_idx >= self.words.len() {
                return None;
            }
            self.current = self.words[self.word_idx];
        }
        let bit = self.current.trailing_zeros() as usize;
        self.current &= self.current - 1;
        Some(self.word_idx * BITS + bit)
    }
}

impl<'a> IntoIterator for &'a BitSet {
    type Item = usize;
    type IntoIter = BitSetIter<'a>;
    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove() {
        let mut s = BitSet::new(130);
        assert!(!s.contains(0));
        s.insert(0);
        s.insert(63);
        s.insert(64);
        s.insert(129);
        assert!(s.contains(0) && s.contains(63) && s.contains(64) && s.contains(129));
        assert_eq!(s.len(), 4);
        s.remove(64);
        assert!(!s.contains(64));
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn full_respects_capacity() {
        for cap in [0usize, 1, 63, 64, 65, 128, 200] {
            let s = BitSet::full(cap);
            assert_eq!(s.len(), cap, "cap {cap}");
            assert_eq!(s.to_vec(), (0..cap).collect::<Vec<_>>());
        }
    }

    #[test]
    fn iteration_order_is_increasing() {
        let s = BitSet::from_iter(300, [250, 3, 97, 4, 190]);
        assert_eq!(s.to_vec(), vec![3, 4, 97, 190, 250]);
    }

    #[test]
    fn set_algebra() {
        let a = BitSet::from_iter(100, [1, 2, 3, 50, 99]);
        let b = BitSet::from_iter(100, [2, 3, 4, 99]);
        assert_eq!(a.intersection(&b).to_vec(), vec![2, 3, 99]);
        assert_eq!(a.intersection_len(&b), 3);
        let mut d = a.clone();
        d.difference_with(&b);
        assert_eq!(d.to_vec(), vec![1, 50]);
        let mut u = a.clone();
        u.union_with(&b);
        assert_eq!(u.to_vec(), vec![1, 2, 3, 4, 50, 99]);
    }

    #[test]
    fn subset_and_disjoint() {
        let a = BitSet::from_iter(100, [5, 6]);
        let b = BitSet::from_iter(100, [5, 6, 7]);
        let c = BitSet::from_iter(100, [8]);
        assert!(a.is_subset(&b));
        assert!(!b.is_subset(&a));
        assert!(a.is_disjoint(&c));
        assert!(!a.is_disjoint(&b));
        assert!(BitSet::new(100).is_subset(&a));
    }

    #[test]
    fn first_element() {
        assert_eq!(BitSet::new(10).first(), None);
        assert_eq!(BitSet::from_iter(100, [70, 3]).first(), Some(3));
    }

    #[test]
    fn grow_preserves_and_extends() {
        let mut s = BitSet::from_iter(10, [3, 9]);
        s.grow(130);
        assert_eq!(s.capacity(), 130);
        assert!(s.contains(3) && s.contains(9));
        s.insert(129);
        assert!(s.contains(129));
        s.grow(5); // shrinking is a no-op
        assert_eq!(s.capacity(), 130);
    }

    #[test]
    fn clear_empties() {
        let mut s = BitSet::from_iter(10, [1, 2]);
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.capacity(), 10);
    }

    #[test]
    fn from_iterator_trait_sizes_capacity() {
        let s: BitSet = [9usize, 2, 5].into_iter().collect();
        assert_eq!(s.capacity(), 10);
        assert_eq!(s.to_vec(), vec![2, 5, 9]);
    }

    #[test]
    fn reset_reuses_allocation_and_copy_from_round_trips() {
        let mut s = BitSet::from_iter(300, [3, 250]);
        s.reset(40);
        assert_eq!(s.capacity(), 40);
        assert!(s.is_empty());
        s.insert(39);
        let mut t = BitSet::new(5);
        t.copy_from(&s);
        assert_eq!(t.capacity(), 40);
        assert_eq!(t.to_vec(), vec![39]);
    }

    #[test]
    fn fused_intersect_and_difference_match_two_step() {
        let a = BitSet::from_iter(200, [1, 2, 3, 64, 65, 130, 199]);
        let b = BitSet::from_iter(200, [2, 3, 65, 131, 199]);
        let mut out = BitSet::from_iter(10, [7]); // stale contents must not leak
        let n = a.intersect_count_into(&b, &mut out);
        assert_eq!(out, a.intersection(&b));
        assert_eq!(n, out.len());
        let n = a.difference_count_into(&b, &mut out);
        let mut d = a.clone();
        d.difference_with(&b);
        assert_eq!(out, d);
        assert_eq!(n, out.len());
    }

    #[test]
    fn kernel_flavours_agree_on_fixed_vectors() {
        let a: Vec<u64> = (0..13u64)
            .map(|i| i.wrapping_mul(0x9e37_79b9_7f4a_7c15))
            .collect();
        let b: Vec<u64> = (0..13).map(|i| !(i as u64) ^ 0x0123_4567_89ab_cdef).collect();
        assert_eq!(
            kernels::and_count_scalar(&a, &b),
            kernels::and_count_wide(&a, &b)
        );
        let mut o1 = vec![0u64; 13];
        let mut o2 = vec![0u64; 13];
        assert_eq!(
            kernels::and_count_into_scalar(&a, &b, &mut o1),
            kernels::and_count_into_wide(&a, &b, &mut o2)
        );
        assert_eq!(o1, o2);
        assert_eq!(
            kernels::andnot_count_into_scalar(&a, &b, &mut o1),
            kernels::andnot_count_into_wide(&a, &b, &mut o2)
        );
        assert_eq!(o1, o2);
        // Mismatched lengths: b zero-extended for AND-NOT, truncated for AND.
        let short = &b[..5];
        assert_eq!(
            kernels::and_count_scalar(&a, short),
            kernels::and_count_wide(&a, short)
        );
        assert_eq!(
            kernels::andnot_count_into_scalar(&a, short, &mut o1),
            kernels::andnot_count_into_wide(&a, short, &mut o2)
        );
        assert_eq!(o1, o2);
    }
}
