//! A hand-rolled work-stealing scheduler for clique enumeration.
//!
//! The two-level parallel `OptDCSat` flattens its work into a static list
//! of units — one per (constraint × component × subproblem) — before any
//! worker starts. A central shared counter over that list serialises every
//! claim through one contended cache line; the crossbeam-style alternative
//! used here gives each worker its own double-ended queue seeded with a
//! contiguous block of the list, so the common case (pop from your own
//! front) is uncontended, and an idle worker *steals* from the back of a
//! victim's queue — the unit farthest from where the owner is working.
//!
//! The work list is static (no unit ever spawns another unit), which keeps
//! the protocol tiny: a `Mutex<VecDeque>` per worker instead of the lock-free
//! Chase–Lev deque, with no ABA or shrink hazards, and an empty sweep over
//! all victims is a definitive "everything has been claimed" signal.
//! Determinism of *results* is preserved not by the schedule (steals are
//! timing-dependent) but by the units themselves carrying their global list
//! index: budget charging is shared and exact, error aggregation picks the
//! lowest-index loser, and clique harvesting concatenates in list order.

use bcdb_telemetry::probes;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Labels one unit of enumeration work in the global order.
///
/// The scheduler itself is generic over the queued item type; this label
/// is what `OptDCSat` queues (alongside the unit's global index) so a
/// debugger or telemetry consumer can see *what* was stolen, not just that
/// a steal happened.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct WorkUnit {
    /// Batch constraint sequence number (0 outside `check_batch`).
    pub constraint: usize,
    /// Component index within the constraint's candidate set.
    pub component: usize,
    /// Subproblem index within a split component; `None` means the unit
    /// enumerates the whole component.
    pub subproblem: Option<usize>,
}

impl WorkUnit {
    /// A unit covering a whole component (no intra-component split).
    pub fn component(constraint: usize, component: usize) -> Self {
        WorkUnit {
            constraint,
            component,
            subproblem: None,
        }
    }

    /// A unit covering one [`CliqueSubproblem`](crate::CliqueSubproblem)
    /// of a split component.
    pub fn subproblem(constraint: usize, component: usize, subproblem: usize) -> Self {
        WorkUnit {
            constraint,
            component,
            subproblem: Some(subproblem),
        }
    }
}

/// Per-worker deques plus the stealing protocol over a static work list.
pub struct StealScheduler<T> {
    deques: Vec<Mutex<VecDeque<T>>>,
    steals: AtomicU64,
}

impl<T> StealScheduler<T> {
    /// Distributes `items` across `workers` deques in contiguous blocks:
    /// worker 0 owns the lowest-indexed block, the last worker the
    /// highest. Block distribution keeps each worker's uncontended path
    /// walking the global order, so a steal-free run visits units in
    /// nearly the same order as the old central counter.
    pub fn new(workers: usize, items: impl IntoIterator<Item = T>) -> Self {
        let items: Vec<T> = items.into_iter().collect();
        let workers = workers.max(1);
        let per = items.len().div_ceil(workers).max(1);
        let mut deques: Vec<VecDeque<T>> = (0..workers).map(|_| VecDeque::new()).collect();
        for (i, item) in items.into_iter().enumerate() {
            deques[(i / per).min(workers - 1)].push_back(item);
        }
        StealScheduler {
            deques: deques.into_iter().map(Mutex::new).collect(),
            steals: AtomicU64::new(0),
        }
    }

    /// Claims the next unit for `worker`: the front of its own deque when
    /// non-empty, otherwise a unit stolen from the *back* of the first
    /// non-empty victim, scanning ringwise from `worker + 1`. Returns
    /// `None` only when every deque is empty — since the work list is
    /// static, that means all units have been claimed and the worker can
    /// exit.
    pub fn pop(&self, worker: usize) -> Option<T> {
        if let Some(item) = self.deques[worker].lock().unwrap().pop_front() {
            return Some(item);
        }
        let n = self.deques.len();
        for offset in 1..n {
            let victim = (worker + offset) % n;
            if let Some(item) = self.deques[victim].lock().unwrap().pop_back() {
                self.steals.fetch_add(1, Ordering::Relaxed);
                probes::GRAPH_STEAL_COUNT.incr();
                return Some(item);
            }
        }
        None
    }

    /// Number of worker deques.
    pub fn worker_count(&self) -> usize {
        self.deques.len()
    }

    /// Units claimed through a steal (any worker, so far).
    pub fn steal_count(&self) -> u64 {
        self.steals.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_worker_drains_in_order() {
        let s = StealScheduler::new(1, 0..5);
        let drained: Vec<usize> = std::iter::from_fn(|| s.pop(0)).collect();
        assert_eq!(drained, vec![0, 1, 2, 3, 4]);
        assert_eq!(s.steal_count(), 0);
    }

    #[test]
    fn blocks_are_contiguous_and_ordered() {
        let s = StealScheduler::new(3, 0..7);
        // ceil(7/3) = 3: blocks [0,1,2], [3,4,5], [6].
        let mine: Vec<usize> = std::iter::from_fn(|| s.deques[0].lock().unwrap().pop_front())
            .collect();
        assert_eq!(mine, vec![0, 1, 2]);
        let last: Vec<usize> = std::iter::from_fn(|| s.deques[2].lock().unwrap().pop_front())
            .collect();
        assert_eq!(last, vec![6]);
    }

    #[test]
    fn idle_worker_steals_from_the_back() {
        let s = StealScheduler::new(2, 0..4); // worker 0: [0,1], worker 1: [2,3]
        // Worker 1 drains its own block, then steals worker 0's back unit.
        assert_eq!(s.pop(1), Some(2));
        assert_eq!(s.pop(1), Some(3));
        assert_eq!(s.pop(1), Some(1)); // stolen from the back
        assert_eq!(s.steal_count(), 1);
        assert_eq!(s.pop(0), Some(0)); // owner still gets its front
        assert_eq!(s.pop(0), None);
        assert_eq!(s.pop(1), None);
    }

    #[test]
    fn more_workers_than_items() {
        let s: StealScheduler<usize> = StealScheduler::new(8, 0..3);
        let mut got: Vec<usize> = (0..8).filter_map(|w| s.pop(w)).collect();
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 2]);
        for w in 0..8 {
            assert_eq!(s.pop(w), None);
        }
    }

    #[test]
    fn concurrent_drain_claims_each_unit_exactly_once() {
        use std::sync::atomic::AtomicUsize;
        const UNITS: usize = 10_000;
        const WORKERS: usize = 4;
        let s = StealScheduler::new(WORKERS, 0..UNITS);
        let claimed: Vec<AtomicUsize> = (0..UNITS).map(|_| AtomicUsize::new(0)).collect();
        std::thread::scope(|scope| {
            for w in 0..WORKERS {
                let s = &s;
                let claimed = &claimed;
                scope.spawn(move || {
                    while let Some(i) = s.pop(w) {
                        claimed[i].fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
        });
        assert!(claimed.iter().all(|c| c.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn work_unit_ordering_matches_global_order() {
        let a = WorkUnit::component(0, 0);
        let b = WorkUnit::subproblem(0, 0, 0);
        let c = WorkUnit::subproblem(0, 1, 2);
        let d = WorkUnit::component(1, 0);
        // None sorts before Some: whole-component units precede split ones
        // of the same component, and constraints dominate.
        let mut v = vec![d, c, b, a];
        v.sort();
        assert_eq!(v, vec![a, b, c, d]);
    }
}
