//! Property tests: Bron–Kerbosch (all strategies) against a brute-force
//! maximal-clique reference on random graphs.

use bcdb_graph::{collect_maximal_cliques, CliqueStrategy, UndirectedGraph};
use proptest::prelude::*;

/// Brute force: every subset, keep cliques, filter to maximal ones.
fn reference_maximal_cliques(g: &UndirectedGraph) -> Vec<Vec<usize>> {
    let n = g.node_count();
    let mut cliques: Vec<Vec<usize>> = Vec::new();
    for bits in 0u32..(1u32 << n) {
        let set: Vec<usize> = (0..n).filter(|i| bits & (1 << i) != 0).collect();
        if g.is_clique(&set) {
            cliques.push(set);
        }
    }
    let mut maximal: Vec<Vec<usize>> = cliques
        .iter()
        .filter(|c| {
            !cliques
                .iter()
                .any(|d| d.len() > c.len() && c.iter().all(|x| d.contains(x)))
        })
        .cloned()
        .collect();
    maximal.sort();
    maximal
}

fn graph_strategy(max_n: usize) -> impl Strategy<Value = UndirectedGraph> {
    (1..=max_n).prop_flat_map(|n| {
        prop::collection::vec(prop::bool::ANY, n * (n - 1) / 2).prop_map(move |edges| {
            let mut g = UndirectedGraph::new(n);
            let mut k = 0;
            for u in 0..n {
                for v in u + 1..n {
                    if edges[k] {
                        g.add_edge(u, v);
                    }
                    k += 1;
                }
            }
            g
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    #[test]
    fn all_strategies_match_brute_force(g in graph_strategy(9)) {
        let want = reference_maximal_cliques(&g);
        for strategy in [
            CliqueStrategy::Plain,
            CliqueStrategy::Pivot,
            CliqueStrategy::Degeneracy,
        ] {
            let mut got = collect_maximal_cliques(&g, strategy);
            got.sort();
            prop_assert_eq!(&got, &want, "{:?}", strategy);
        }
    }

    #[test]
    fn degeneracy_ordering_is_a_permutation(g in graph_strategy(12)) {
        let order = g.degeneracy_ordering();
        let mut sorted = order.clone();
        sorted.sort_unstable();
        prop_assert_eq!(sorted, (0..g.node_count()).collect::<Vec<_>>());
    }

    #[test]
    fn complement_is_involutive(g in graph_strategy(10)) {
        let cc = g.complement().complement();
        for u in 0..g.node_count() {
            for v in 0..g.node_count() {
                if u != v {
                    prop_assert_eq!(g.has_edge(u, v), cc.has_edge(u, v));
                }
            }
        }
    }
}
