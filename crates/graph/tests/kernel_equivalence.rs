//! Kernel and ordering equivalence properties.
//!
//! Two families of properties protect the enumeration rewrite:
//!
//! 1. The scalar and wide (SIMD-shaped) flavours of every bitset kernel
//!    agree bit-for-bit on random word slices, including mismatched
//!    lengths — so the `simd` cargo feature can never change results.
//! 2. Degeneracy-ordered enumeration emits exactly the same maximal-clique
//!    *set* (sorted-canonical comparison) as the Tomita-pivot and plain
//!    orderings on random graphs, and the fused arena-based expansion
//!    matches a brute-force maximal-clique oracle.

use bcdb_graph::bitset::{kernels, BitSet};
use bcdb_graph::{collect_maximal_cliques, CliqueStrategy, UndirectedGraph};
use proptest::prelude::*;

fn sorted(mut cliques: Vec<Vec<usize>>) -> Vec<Vec<usize>> {
    cliques.sort();
    cliques
}

/// Brute-force oracle: every subset-maximal clique, by subset enumeration.
/// Only callable for small `n`.
fn oracle_maximal_cliques(g: &UndirectedGraph) -> Vec<Vec<usize>> {
    let n = g.node_count();
    assert!(n <= 16, "oracle is exponential");
    let is_clique = |mask: u32| {
        let nodes: Vec<usize> = (0..n).filter(|&v| mask & (1 << v) != 0).collect();
        g.is_clique(&nodes)
    };
    let mut out = Vec::new();
    for mask in 0u32..(1 << n) {
        if !is_clique(mask) {
            continue;
        }
        let maximal = (0..n)
            .filter(|&v| mask & (1 << v) == 0)
            .all(|v| !is_clique(mask | (1 << v)));
        if maximal {
            out.push((0..n).filter(|&v| mask & (1 << v) != 0).collect());
        }
    }
    out
}

fn arb_words() -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec(0u64..=u64::MAX, 0..40)
}

/// A random graph as (node count, edge bits over the upper triangle).
fn arb_graph(max_n: usize) -> impl Strategy<Value = UndirectedGraph> {
    (2..=max_n).prop_flat_map(|n| {
        prop::collection::vec(prop::bool::ANY, n * (n - 1) / 2).prop_map(move |edges| {
            let mut g = UndirectedGraph::new(n);
            let mut k = 0;
            for u in 0..n {
                for v in u + 1..n {
                    if edges[k] {
                        g.add_edge(u, v);
                    }
                    k += 1;
                }
            }
            g
        })
    })
}

proptest! {
    #[test]
    fn and_count_flavours_agree(a in arb_words(), b in arb_words()) {
        prop_assert_eq!(
            kernels::and_count_scalar(&a, &b),
            kernels::and_count_wide(&a, &b)
        );
    }

    #[test]
    fn and_count_into_flavours_agree(a in arb_words(), b in arb_words()) {
        let len = a.len().max(b.len());
        let mut out_scalar = vec![u64::MAX; len];
        let mut out_wide = vec![u64::MAX; len];
        let ns = kernels::and_count_into_scalar(&a, &b, &mut out_scalar);
        let nw = kernels::and_count_into_wide(&a, &b, &mut out_wide);
        prop_assert_eq!(ns, nw);
        prop_assert_eq!(&out_scalar, &out_wide);
        // And against the obvious reference.
        let reference: Vec<u64> = (0..len)
            .map(|i| a.get(i).copied().unwrap_or(0) & b.get(i).copied().unwrap_or(0))
            .collect();
        prop_assert_eq!(&out_scalar[..a.len().min(b.len())], &reference[..a.len().min(b.len())]);
        prop_assert_eq!(ns, reference.iter().map(|w| w.count_ones() as usize).sum::<usize>());
    }

    #[test]
    fn andnot_count_into_flavours_agree(a in arb_words(), b in arb_words()) {
        let mut out_scalar = vec![u64::MAX; a.len()];
        let mut out_wide = vec![u64::MAX; a.len()];
        let ns = kernels::andnot_count_into_scalar(&a, &b, &mut out_scalar);
        let nw = kernels::andnot_count_into_wide(&a, &b, &mut out_wide);
        prop_assert_eq!(ns, nw);
        prop_assert_eq!(&out_scalar, &out_wide);
        let reference: Vec<u64> = (0..a.len())
            .map(|i| a[i] & !b.get(i).copied().unwrap_or(0))
            .collect();
        prop_assert_eq!(&out_scalar, &reference);
    }

    #[test]
    fn fused_bitset_ops_match_two_step(
        xs in prop::collection::vec(0usize..200, 0..40),
        ys in prop::collection::vec(0usize..200, 0..40),
    ) {
        let a = BitSet::from_iter(200, xs);
        let b = BitSet::from_iter(200, ys);
        let mut out = BitSet::new(1); // wrong capacity on purpose; reset inside
        let n = a.intersect_count_into(&b, &mut out);
        prop_assert_eq!(&out, &a.intersection(&b));
        prop_assert_eq!(n, out.len());
        prop_assert_eq!(n, a.intersection_len(&b));
        let n = a.difference_count_into(&b, &mut out);
        let mut reference = a.clone();
        reference.difference_with(&b);
        prop_assert_eq!(&out, &reference);
        prop_assert_eq!(n, out.len());
    }

    /// Degeneracy-ordered enumeration yields the exact same maximal-clique
    /// set as pivot and plain orderings, and all three match the
    /// subset-enumeration oracle.
    #[test]
    fn orderings_agree_with_oracle(g in arb_graph(9)) {
        let oracle = sorted(oracle_maximal_cliques(&g));
        let plain = sorted(collect_maximal_cliques(&g, CliqueStrategy::Plain));
        let pivot = sorted(collect_maximal_cliques(&g, CliqueStrategy::Pivot));
        let degeneracy = sorted(collect_maximal_cliques(&g, CliqueStrategy::Degeneracy));
        prop_assert_eq!(&plain, &oracle);
        prop_assert_eq!(&pivot, &oracle);
        prop_assert_eq!(&degeneracy, &oracle);
    }

    /// The degeneracy number really bounds later-neighbor counts.
    #[test]
    fn degeneracy_order_is_a_valid_peeling(g in arb_graph(12)) {
        let (order, degeneracy) = g.degeneracy_order();
        prop_assert_eq!(order.len(), g.node_count());
        let mut removed = vec![false; g.node_count()];
        for &u in &order {
            let remaining = g.neighbors(u).iter().filter(|&v| !removed[v]).count();
            prop_assert!(remaining <= degeneracy,
                "node {} had {} remaining neighbors > degeneracy {}", u, remaining, degeneracy);
            removed[u] = true;
        }
    }
}
